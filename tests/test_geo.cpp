// Unit and property tests for leodivide::geo.

#include <gtest/gtest.h>

#include <cmath>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/bbox.hpp"
#include "leodivide/geo/ecef.hpp"
#include "leodivide/geo/geopoint.hpp"
#include "leodivide/geo/greatcircle.hpp"
#include "leodivide/geo/polygon.hpp"
#include "leodivide/geo/projection.hpp"
#include "leodivide/geo/us_outline.hpp"

namespace leodivide::geo {
namespace {

// ------------------------------------------------------------------ angle ----

TEST(Angle, Deg2RadRoundTrip) {
  for (double d : {-180.0, -90.0, 0.0, 45.0, 180.0, 359.0}) {
    EXPECT_NEAR(rad2deg(deg2rad(d)), d, 1e-12);
  }
}

TEST(Angle, WrapTwoPiRange) {
  for (double r : {-10.0, -kPi, 0.0, kPi, 10.0, 100.0}) {
    const double w = wrap_two_pi(r);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
    EXPECT_NEAR(std::sin(w), std::sin(r), 1e-9);
  }
}

TEST(Angle, WrapPiRange) {
  for (double r : {-10.0, -kPi, 0.0, kPi, 10.0}) {
    const double w = wrap_pi(r);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    EXPECT_NEAR(std::cos(w), std::cos(r), 1e-9);
  }
}

TEST(Angle, WrapLongitude) {
  EXPECT_DOUBLE_EQ(wrap_longitude_deg(190.0), -170.0);
  EXPECT_DOUBLE_EQ(wrap_longitude_deg(-181.0), 179.0);
  EXPECT_DOUBLE_EQ(wrap_longitude_deg(180.0), 180.0);
  EXPECT_DOUBLE_EQ(wrap_longitude_deg(540.0), 180.0);
}

TEST(Angle, ClampLatitude) {
  EXPECT_DOUBLE_EQ(clamp_latitude_deg(95.0), 90.0);
  EXPECT_DOUBLE_EQ(clamp_latitude_deg(-95.0), -90.0);
  EXPECT_DOUBLE_EQ(clamp_latitude_deg(45.0), 45.0);
}

// --------------------------------------------------------------- geopoint ----

TEST(GeoPointTest, NormalizedCanonicalizes) {
  const GeoPoint p = GeoPoint{95.0, 190.0}.normalized();
  EXPECT_DOUBLE_EQ(p.lat_deg, 90.0);
  EXPECT_DOUBLE_EQ(p.lon_deg, -170.0);
  EXPECT_TRUE(p.valid());
}

TEST(GeoPointTest, ApproxEqualHandlesLongitudeWrap) {
  EXPECT_TRUE(approx_equal({10.0, 180.0}, {10.0, -180.0}, 1e-6));
  EXPECT_FALSE(approx_equal({10.0, 0.0}, {10.0, 1.0}, 1e-6));
}

// ------------------------------------------------------------------- ecef ----

TEST(Vec3Test, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_EQ((2.0 * a), (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), (Vec3{-3, 6, -3}));
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
}

TEST(Vec3Test, UnitVectorThrowsOnZero) {
  EXPECT_THROW((Vec3{0, 0, 0}).unit(), std::domain_error);
  const Vec3 u = Vec3{0, 0, 9}.unit();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
}

TEST(Ecef, EquatorPrimeMeridian) {
  const Vec3 v = geodetic_to_ecef({0.0, 0.0});
  EXPECT_NEAR(v.x, kWgs84AKm, 1e-6);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
  EXPECT_NEAR(v.z, 0.0, 1e-9);
}

TEST(Ecef, RoundTripSurfacePoints) {
  for (const GeoPoint p : {GeoPoint{0.0, 0.0}, GeoPoint{39.5, -98.35},
                           GeoPoint{-33.9, 151.2}, GeoPoint{71.0, -156.8}}) {
    double alt = 0.0;
    const GeoPoint back = ecef_to_geodetic(geodetic_to_ecef(p, 0.3), &alt);
    EXPECT_TRUE(approx_equal(p, back, 1e-7)) << p << " vs " << back;
    EXPECT_NEAR(alt, 0.3, 1e-5);
  }
}

TEST(Ecef, SphericalRoundTrip) {
  for (const GeoPoint p : {GeoPoint{12.0, 34.0}, GeoPoint{-45.0, -120.0}}) {
    const GeoPoint back =
        cartesian_to_spherical(spherical_to_cartesian(p, kEarthRadiusKm));
    EXPECT_TRUE(approx_equal(p, back, 1e-9));
  }
}

TEST(Ecef, SphericalZeroVectorThrows) {
  EXPECT_THROW(cartesian_to_spherical({0, 0, 0}), std::domain_error);
}

// ------------------------------------------------------------ greatcircle ----

TEST(GreatCircle, KnownDistanceSfoToJfk) {
  // SFO (37.6188, -122.3756) to JFK (40.6413, -73.7781): ~4150 km.
  const double d =
      distance_km({37.6188, -122.3756}, {40.6413, -73.7781});
  EXPECT_NEAR(d, 4150.0, 25.0);
}

TEST(GreatCircle, DistanceIsSymmetricAndZeroOnSelf) {
  const GeoPoint a{10.0, 20.0}, b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
  EXPECT_DOUBLE_EQ(distance_km(a, a), 0.0);
}

TEST(GreatCircle, AntipodalDistanceIsHalfCircumference) {
  const double d = distance_km({0.0, 0.0}, {0.0, 180.0});
  EXPECT_NEAR(d, kPi * kEarthRadiusKm, 1e-6);
}

TEST(GreatCircle, BearingCardinalDirections) {
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {10, 0}), 0.0, 1e-9);    // north
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {0, 10}), 90.0, 1e-9);   // east
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {-10, 0}), 180.0, 1e-9); // south
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {0, -10}), 270.0, 1e-9); // west
}

TEST(GreatCircle, DestinationInvertsDistanceAndBearing) {
  const GeoPoint start{42.0, -93.0};
  for (double bearing : {0.0, 77.0, 160.0, 255.0}) {
    const GeoPoint end = destination(start, bearing, 500.0);
    EXPECT_NEAR(distance_km(start, end), 500.0, 1e-6);
    EXPECT_NEAR(initial_bearing_deg(start, end), bearing, 1e-6);
  }
}

TEST(GreatCircle, InterpolateEndpointsAndMidpoint) {
  const GeoPoint a{0.0, 0.0}, b{0.0, 90.0};
  EXPECT_TRUE(approx_equal(interpolate(a, b, 0.0), a, 1e-9));
  EXPECT_TRUE(approx_equal(interpolate(a, b, 1.0), b, 1e-9));
  EXPECT_TRUE(approx_equal(interpolate(a, b, 0.5), {0.0, 45.0}, 1e-9));
}

TEST(GreatCircle, InterpolateRejectsOutOfRangeT) {
  EXPECT_THROW(interpolate({0, 0}, {1, 1}, -0.1), std::invalid_argument);
  EXPECT_THROW(interpolate({0, 0}, {1, 1}, 1.1), std::invalid_argument);
}

TEST(GreatCircle, CapAreaLimits) {
  EXPECT_DOUBLE_EQ(spherical_cap_area_km2(0.0), 0.0);
  EXPECT_NEAR(spherical_cap_area_km2(kPi), kEarthSurfaceAreaKm2, 1.0);
  EXPECT_NEAR(spherical_cap_area_km2(kPi / 2.0), kEarthSurfaceAreaKm2 / 2.0,
              1.0);
}

TEST(GreatCircle, LatitudeBandFractions) {
  EXPECT_NEAR(latitude_band_fraction(-90.0, 90.0), 1.0, 1e-12);
  EXPECT_NEAR(latitude_band_fraction(0.0, 90.0), 0.5, 1e-12);
  EXPECT_NEAR(latitude_band_fraction(-30.0, 30.0), 0.5, 1e-12);
  EXPECT_THROW(latitude_band_fraction(10.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------------- bbox ----

TEST(BBox, ContainsAndCenter) {
  const BoundingBox b{10.0, 20.0, -50.0, -40.0};
  EXPECT_TRUE(b.contains({15.0, -45.0}));
  EXPECT_FALSE(b.contains({25.0, -45.0}));
  EXPECT_FALSE(b.contains({15.0, -55.0}));
  EXPECT_TRUE(approx_equal(b.center(), {15.0, -45.0}));
}

TEST(BBox, ExtendGrowsFromEmpty) {
  BoundingBox b = BoundingBox::empty();
  EXPECT_FALSE(b.valid());
  b.extend({10.0, 20.0});
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(b.contains({10.0, 20.0}));
  b.extend({-5.0, 30.0});
  EXPECT_TRUE(b.contains({0.0, 25.0}));
}

TEST(BBox, AreaOfFullLongitudeBand) {
  const BoundingBox b{-90.0, 90.0, -180.0, 180.0};
  EXPECT_NEAR(b.area_km2(), kEarthSurfaceAreaKm2, 1.0);
}

TEST(BBox, Intersections) {
  const BoundingBox a{0.0, 10.0, 0.0, 10.0};
  const BoundingBox b{5.0, 15.0, 5.0, 15.0};
  const BoundingBox c{20.0, 30.0, 20.0, 30.0};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
}

TEST(BBox, ConusContainsLandmarks) {
  const BoundingBox b = conus_bbox();
  EXPECT_TRUE(b.contains({39.74, -104.99}));  // Denver
  EXPECT_TRUE(b.contains({25.76, -80.19}));   // Miami
  EXPECT_FALSE(b.contains({61.2, -149.9}));   // Anchorage
}

// ---------------------------------------------------------------- polygon ----

TEST(PolygonTest, SquareContainment) {
  const Polygon square({{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  EXPECT_TRUE(square.contains({5.0, 5.0}));
  EXPECT_FALSE(square.contains({15.0, 5.0}));
  EXPECT_FALSE(square.contains({-1.0, 5.0}));
}

TEST(PolygonTest, ConcavePolygon) {
  // A "U" shape: the notch is outside.
  const Polygon u({{0, 0}, {0, 10}, {4, 10}, {4, 4}, {6, 4}, {6, 10},
                   {10, 10}, {10, 0}});
  EXPECT_TRUE(u.contains({2.0, 2.0}));
  EXPECT_TRUE(u.contains({5.0, 2.0}));
  EXPECT_FALSE(u.contains({5.0, 8.0}));  // inside the notch
}

TEST(PolygonTest, RejectsDegenerate) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(PolygonTest, AreaOfOneDegreeSquareAtEquator) {
  const Polygon square({{-0.5, -0.5}, {-0.5, 0.5}, {0.5, 0.5}, {0.5, -0.5}});
  const double km_per_deg = kTwoPi * kEarthRadiusKm / 360.0;
  EXPECT_NEAR(square.area_km2(), km_per_deg * km_per_deg, 25.0);
}

TEST(UsOutline, ContainsInteriorCities) {
  const Polygon& us = conus_outline();
  EXPECT_TRUE(us.contains({39.74, -104.99}));  // Denver
  EXPECT_TRUE(us.contains({35.15, -90.05}));   // Memphis
  EXPECT_TRUE(us.contains({44.98, -93.27}));   // Minneapolis
  EXPECT_TRUE(us.contains({33.45, -112.07}));  // Phoenix
  EXPECT_TRUE(us.contains({30.27, -97.74}));   // Austin
}

TEST(UsOutline, ExcludesExteriorPoints) {
  const Polygon& us = conus_outline();
  EXPECT_FALSE(us.contains({45.42, -75.7}));   // Ottawa
  EXPECT_FALSE(us.contains({19.43, -99.13}));  // Mexico City
  EXPECT_FALSE(us.contains({25.0, -90.0}));    // Gulf of Mexico
  EXPECT_FALSE(us.contains({40.0, -70.0}));    // Atlantic
}

TEST(UsOutline, AreaIsContinentalScale) {
  // CONUS is ~8.1M km^2; the coarse outline should land within 15%.
  EXPECT_NEAR(conus_area_km2(), 8.1e6, 1.3e6);
}

// ------------------------------------------------------------- projection ----

TEST(AzimuthalEquidistantTest, CenterMapsToOrigin) {
  const AzimuthalEquidistant proj({39.5, -98.35});
  const PlanePoint o = proj.forward({39.5, -98.35});
  EXPECT_NEAR(o.x, 0.0, 1e-9);
  EXPECT_NEAR(o.y, 0.0, 1e-9);
}

TEST(AzimuthalEquidistantTest, RadialDistanceIsExact) {
  const AzimuthalEquidistant proj({39.5, -98.35});
  for (const GeoPoint p : {GeoPoint{40.0, -98.35}, GeoPoint{39.5, -90.0},
                           GeoPoint{30.0, -110.0}, GeoPoint{48.0, -70.0}}) {
    const PlanePoint q = proj.forward(p);
    EXPECT_NEAR(std::hypot(q.x, q.y), distance_km({39.5, -98.35}, p), 1e-6);
  }
}

TEST(AzimuthalEquidistantTest, RoundTripAcrossConus) {
  const AzimuthalEquidistant proj({39.5, -98.35});
  for (const GeoPoint p : {GeoPoint{25.8, -80.2}, GeoPoint{47.6, -122.3},
                           GeoPoint{29.8, -95.4}, GeoPoint{44.9, -68.7}}) {
    const GeoPoint back = proj.inverse(proj.forward(p));
    EXPECT_TRUE(approx_equal(p, back, 1e-8)) << p << " vs " << back;
  }
}

TEST(EquirectangularTest, RoundTrip) {
  const Equirectangular proj(39.0);
  for (const GeoPoint p : {GeoPoint{39.0, -98.0}, GeoPoint{10.0, 20.0}}) {
    const GeoPoint back = proj.inverse(proj.forward(p));
    EXPECT_TRUE(approx_equal(p, back, 1e-9));
  }
}

// ---------------------------------------------------- parameterized sweep ----

struct RoundTripCase {
  double lat;
  double lon;
};

class ProjectionRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ProjectionRoundTrip, ForwardInverseIdentity) {
  const auto [lat, lon] = GetParam();
  const AzimuthalEquidistant proj({39.5, -98.35});
  const GeoPoint p{lat, lon};
  EXPECT_TRUE(approx_equal(p, proj.inverse(proj.forward(p)), 1e-7));
}

INSTANTIATE_TEST_SUITE_P(
    ConusGrid, ProjectionRoundTrip,
    ::testing::Values(RoundTripCase{25.0, -120.0}, RoundTripCase{25.0, -80.0},
                      RoundTripCase{49.0, -120.0}, RoundTripCase{49.0, -70.0},
                      RoundTripCase{37.0, -98.0}, RoundTripCase{30.0, -85.0},
                      RoundTripCase{45.0, -110.0}, RoundTripCase{33.0, -95.0}));

class DestinationRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DestinationRoundTrip, ReturnTripComesHome) {
  const double bearing = GetParam();
  const GeoPoint start{36.4, -89.7};
  const GeoPoint out = destination(start, bearing, 750.0);
  const double back_bearing = initial_bearing_deg(out, start);
  const GeoPoint home = destination(out, back_bearing, 750.0);
  EXPECT_LT(distance_km(home, start), 0.001);
}

INSTANTIATE_TEST_SUITE_P(Bearings, DestinationRoundTrip,
                         ::testing::Values(0.0, 30.0, 60.0, 90.0, 135.0,
                                           180.0, 225.0, 300.0, 359.0));

}  // namespace
}  // namespace leodivide::geo
