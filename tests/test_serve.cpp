// serve/ subsystem tests: incremental-engine golden equivalence against
// the plain library on mutated profiles, disk-partial warm restarts,
// paranoid mode, the session dispatcher's reply/error contract, the
// loopback server/client end-to-end path, and the concurrent-session test
// CI runs under TSan.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/delta.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/serve/client.hpp"
#include "leodivide/serve/incremental.hpp"
#include "leodivide/serve/server.hpp"
#include "leodivide/serve/session.hpp"
#include "leodivide/snapshot/artifacts.hpp"
#include "leodivide/snapshot/cache.hpp"

namespace {

using namespace leodivide;
namespace fs = std::filesystem;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

demand::DemandProfile small_profile() {
  return demand::SyntheticGenerator({.seed = 7, .scale = 0.02})
      .generate_profile();
}

// The mutation sequence every equivalence test replays: adds into existing
// and brand-new cells, removals, subsidy upgrades and an income revision.
std::vector<demand::DeltaOp> scripted_ops(const demand::DemandProfile& base) {
  std::vector<demand::DeltaOp> ops;
  demand::DeltaOp add;
  add.kind = demand::DeltaKind::kAddLocations;
  add.position = base.cells()[3].center;
  add.count = 400;
  ops.push_back(add);

  demand::DeltaOp fresh;  // a position no baseline cell covers
  fresh.kind = demand::DeltaKind::kAddLocations;
  fresh.position = {47.9, -69.2};
  fresh.count = 55;
  fresh.county_index = 2;
  ops.push_back(fresh);

  demand::DeltaOp remove;
  remove.kind = demand::DeltaKind::kRemoveLocations;
  remove.position = base.cells()[3].center;
  remove.count = 150;
  ops.push_back(remove);

  demand::DeltaOp upgrade;
  upgrade.kind = demand::DeltaKind::kUpgradeLocations;
  upgrade.position = base.cells()[base.cell_count() / 2].center;
  upgrade.count = 1;
  ops.push_back(upgrade);

  demand::DeltaOp income;
  income.kind = demand::DeltaKind::kSetCountyIncome;
  income.county_index = 1;
  income.value = 23456.0;
  ops.push_back(income);
  return ops;
}

// Asserts every engine answer equals the plain library computation on
// `reference` at the bit level, across several query parameter points.
void expect_engine_matches_library(serve::IncrementalEngine& engine,
                                   const demand::DemandProfile& reference) {
  const core::SizingModel model{};
  runtime::Executor& executor = runtime::serial_executor();
  const double points[][2] = {{10.0, 20.0}, {4.0, 20.0}, {10.0, 5.0}};
  for (const auto& p : points) {
    const serve::ResizeAnswer got = engine.query_resize(p[0], p[1]);
    const core::SizingResult full =
        core::size_full_service(reference, model, p[0]);
    const core::SizingResult capped =
        core::size_with_cap(reference, model, p[0], p[1], executor);
    EXPECT_TRUE(same_bits(got.full.satellites, full.satellites));
    EXPECT_TRUE(same_bits(got.full.binding_lat_deg, full.binding_lat_deg));
    EXPECT_EQ(got.full.beams_on_binding, full.beams_on_binding);
    EXPECT_EQ(got.full.binding_cell_index, full.binding_cell_index);
    EXPECT_TRUE(same_bits(got.capped.satellites, capped.satellites));
    EXPECT_TRUE(same_bits(got.capped.binding_lat_deg, capped.binding_lat_deg));
    EXPECT_EQ(got.capped.beams_on_binding, capped.beams_on_binding);
    EXPECT_EQ(got.capped.binding_cell_index, capped.binding_cell_index);

    const serve::ServedFractionAnswer served =
        engine.query_served_fraction(p[0], p[1]);
    EXPECT_TRUE(same_bits(
        served.cell_fraction,
        core::served_cell_fraction(reference, model.capacity, p[0], p[1])));
    EXPECT_TRUE(same_bits(served.location_fraction,
                          core::served_location_fraction(
                              reference, model.capacity, p[0], p[1])));
    EXPECT_EQ(served.total_locations, reference.total_locations());
  }
  const afford::ServicePlan plan = afford::starlink_residential();
  EXPECT_EQ(engine.query_affordability(plan, afford::kAffordabilityThreshold),
            afford::AffordabilityAnalyzer(reference).evaluate(
                plan, afford::kAffordabilityThreshold));
}

// ----------------------------------------------------- incremental engine --

TEST(ServeIncremental, BaselineAnswersMatchLibrary) {
  const demand::DemandProfile base = small_profile();
  serve::IncrementalEngine engine(base, serve::EngineConfig{});
  EXPECT_GT(engine.region_count(), 1U);
  expect_engine_matches_library(engine, base);
}

TEST(ServeIncremental, GoldenEquivalenceThroughDeltaSequence) {
  const demand::DemandProfile base = small_profile();
  serve::IncrementalEngine engine(base, serve::EngineConfig{});
  (void)engine.query_resize(10.0, 20.0);  // warm the partials

  demand::DemandProfile reference = base;
  const hex::HexGrid grid;
  demand::DeltaApplier applier(reference, grid, hex::kServiceCellResolution);
  for (const demand::DeltaOp& op : scripted_ops(base)) {
    const serve::ApplyOutcome outcome = engine.apply(op);
    (void)applier.apply(op);
    if (op.kind != demand::DeltaKind::kSetCountyIncome) {
      EXPECT_TRUE(outcome.effect.cells_changed);
    }
    expect_engine_matches_library(engine, reference);
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deltas_applied, scripted_ops(base).size());
  EXPECT_GT(stats.partial_hits, 0U);
  // A single-cell delta must not invalidate the other regions: far fewer
  // recomputes than (rounds x regions) full recomputation would take.
  EXPECT_LT(stats.region_recomputes,
            stats.partial_hits + stats.region_recomputes);
}

// A position whose service cell is NOT in `profile` (scans candidates, so
// the test never depends on what the 2% sample happened to include).
geo::GeoPoint vacant_position(const demand::DemandProfile& profile) {
  const hex::HexGrid grid;
  for (double lat = 26.0; lat < 48.0; lat += 1.3) {
    for (double lon = -120.0; lon < -70.0; lon += 1.7) {
      const std::uint64_t bits =
          grid.cell_of({lat, lon}, hex::kServiceCellResolution).bits();
      bool taken = false;
      for (const auto& cell : profile.cells()) {
        if (cell.cell.bits() == bits) {
          taken = true;
          break;
        }
      }
      if (!taken) return {lat, lon};
    }
  }
  throw std::runtime_error("no vacant cell found");
}

TEST(ServeIncremental, AddIntoBrandNewRegionGrowsTheEngine) {
  const demand::DemandProfile base = small_profile();
  serve::IncrementalEngine engine(base, serve::EngineConfig{});
  const std::size_t regions_before = engine.region_count();
  const std::size_t cells_before = engine.profile().cell_count();

  demand::DeltaOp op;
  op.kind = demand::DeltaKind::kAddLocations;
  op.position = vacant_position(base);
  op.count = 10;
  op.county_index = 0;
  const serve::ApplyOutcome outcome = engine.apply(op);
  EXPECT_TRUE(outcome.effect.cell_added);
  EXPECT_EQ(engine.profile().cell_count(), cells_before + 1);
  if (outcome.region_added) {
    EXPECT_EQ(engine.region_count(), regions_before + 1);
  }
  demand::DemandProfile reference = engine.profile();
  expect_engine_matches_library(engine, reference);
}

TEST(ServeIncremental, InvalidOpLeavesAnswersUnchanged) {
  const demand::DemandProfile base = small_profile();
  serve::IncrementalEngine engine(base, serve::EngineConfig{});
  const serve::ResizeAnswer before = engine.query_resize(10.0, 20.0);

  demand::DeltaOp bad;
  bad.kind = demand::DeltaKind::kRemoveLocations;
  bad.position = base.cells()[0].center;
  bad.count = 0xFFFFFFFF;  // more than any cell holds
  EXPECT_THROW((void)engine.apply(bad), std::invalid_argument);

  demand::DeltaOp price;
  price.kind = demand::DeltaKind::kSetPlanPrice;
  price.plan_name = "X";
  price.value = 1.0;
  EXPECT_THROW((void)engine.apply(price), std::invalid_argument);

  const serve::ResizeAnswer after = engine.query_resize(10.0, 20.0);
  EXPECT_EQ(before, after);
}

TEST(ServeIncremental, EmptyProfileConventions) {
  serve::IncrementalEngine engine(demand::DemandProfile{},
                                  serve::EngineConfig{});
  EXPECT_THROW((void)engine.query_resize(10.0, 20.0), std::invalid_argument);
  const serve::ServedFractionAnswer served =
      engine.query_served_fraction(10.0, 20.0);
  EXPECT_TRUE(same_bits(served.cell_fraction, 1.0));
  EXPECT_TRUE(same_bits(served.location_fraction, 1.0));
  EXPECT_EQ(served.total_cells, 0U);
}

TEST(ServeIncremental, ParanoidModeAcceptsCorrectAnswers) {
  const demand::DemandProfile base = small_profile();
  serve::EngineConfig config;
  config.paranoid = true;
  serve::IncrementalEngine engine(base, config);
  for (const demand::DeltaOp& op : scripted_ops(base)) {
    (void)engine.apply(op);
    EXPECT_NO_THROW((void)engine.query_resize(10.0, 20.0));
    EXPECT_NO_THROW((void)engine.query_served_fraction(10.0, 20.0));
    EXPECT_NO_THROW((void)engine.query_affordability(
        afford::starlink_residential(), afford::kAffordabilityThreshold));
  }
  EXPECT_GT(engine.stats().paranoid_checks, 0U);
}

TEST(ServeIncremental, WarmRestartServesPartialsFromDisk) {
  const fs::path dir =
      fs::temp_directory_path() / "leodivide_serve_warm_test";
  fs::remove_all(dir);
  const demand::DemandProfile base = small_profile();
  {
    snapshot::StageCache cache(dir);
    serve::IncrementalEngine engine(base, serve::EngineConfig{}, &cache);
    (void)engine.query_resize(10.0, 20.0);
    (void)engine.query_served_fraction(10.0, 20.0);
    EXPECT_GT(engine.stats().region_recomputes, 0U);  // cold: computed
  }
  {
    snapshot::StageCache cache(dir);
    serve::IncrementalEngine engine(base, serve::EngineConfig{}, &cache);
    const serve::ResizeAnswer got = engine.query_resize(10.0, 20.0);
    (void)engine.query_served_fraction(10.0, 20.0);
    const serve::EngineStats stats = engine.stats();
    // The in-memory partials were cold (misses), but every one of them was
    // restored from the disk cache — nothing was recomputed.
    EXPECT_GT(stats.partial_misses, 0U);
    EXPECT_EQ(stats.region_recomputes, 0U);
    const core::SizingResult full =
        core::size_full_service(base, core::SizingModel{}, 10.0);
    EXPECT_TRUE(same_bits(got.full.satellites, full.satellites));
  }
  fs::remove_all(dir);
}

// -------------------------------------------------------------- session --

serve::ServiceState make_state(bool paranoid = false) {
  serve::ServiceConfig config;
  config.engine.paranoid = paranoid;
  return serve::ServiceState(small_profile(), config);
}

TEST(ServeSession, HelloDescribesTheBaseline) {
  serve::ServiceState state = make_state();
  const serve::protocol::Frame reply = state.handle(
      {serve::protocol::MsgType::kHello,
       encode(serve::protocol::HelloRequest{"test"})});
  ASSERT_EQ(reply.type, serve::protocol::MsgType::kHelloReply);
  const serve::protocol::HelloReply hello =
      serve::protocol::decode_hello_reply(reply.payload);
  EXPECT_EQ(hello.cells, small_profile().cell_count());
  EXPECT_EQ(hello.protocol_version, serve::protocol::kProtocolVersion);
  EXPECT_FALSE(hello.paranoid);
}

TEST(ServeSession, ApplyDeltaReportsDirtyRegionsAndJournals) {
  serve::ServiceState state = make_state();
  serve::protocol::ApplyDeltaRequest req;
  req.ops = scripted_ops(small_profile());
  demand::DeltaOp price;
  price.kind = demand::DeltaKind::kSetPlanPrice;
  price.plan_name = "Starlink Residential";
  price.value = 99.0;
  req.ops.push_back(price);

  const serve::protocol::Frame reply = state.handle(
      {serve::protocol::MsgType::kApplyDelta, encode(req)});
  ASSERT_EQ(reply.type, serve::protocol::MsgType::kDeltaApplied);
  const serve::protocol::DeltaAppliedReply applied =
      serve::protocol::decode_delta_applied_reply(reply.payload);
  EXPECT_EQ(applied.ops_applied, req.ops.size());
  EXPECT_GT(applied.dirty_regions, 0U);
  EXPECT_EQ(applied.journal_length, req.ops.size());
  EXPECT_EQ(state.journal_copy(), req.ops);

  // The journal round-trips through its LDSNAP artifact.
  EXPECT_EQ(snapshot::deserialize_delta_journal(state.serialized_journal()),
            req.ops);
}

TEST(ServeSession, MidBatchFailureReportsProgressAndKeepsPriorOps) {
  serve::ServiceState state = make_state();
  serve::protocol::ApplyDeltaRequest req;
  demand::DeltaOp ok;
  ok.kind = demand::DeltaKind::kAddLocations;
  ok.position = small_profile().cells()[0].center;
  ok.count = 5;
  demand::DeltaOp bad;
  bad.kind = demand::DeltaKind::kSetCountyIncome;
  bad.county_index = 0;
  bad.value = -1.0;  // invalid: income must be positive
  req.ops = {ok, bad, ok};

  const serve::protocol::Frame reply = state.handle(
      {serve::protocol::MsgType::kApplyDelta, encode(req)});
  ASSERT_EQ(reply.type, serve::protocol::MsgType::kError);
  const std::string message =
      serve::protocol::decode_error_reply(reply.payload).message;
  EXPECT_NE(message.find("op 1"), std::string::npos);
  EXPECT_NE(message.find("1 op(s) applied"), std::string::npos);
  EXPECT_EQ(state.journal_copy(), std::vector<demand::DeltaOp>{ok});
}

TEST(ServeSession, RequestLevelErrorsAnswerWithoutKillingTheSession) {
  serve::ServiceState state = make_state();
  // Unknown plan.
  serve::protocol::Frame reply = state.handle(
      {serve::protocol::MsgType::kQueryAffordability,
       encode(serve::protocol::QueryAffordabilityRequest{"no-such-plan",
                                                         0.0})});
  EXPECT_EQ(reply.type, serve::protocol::MsgType::kError);
  EXPECT_NE(serve::protocol::decode_error_reply(reply.payload)
                .message.find("unknown plan"),
            std::string::npos);
  // Malformed payload.
  reply = state.handle({serve::protocol::MsgType::kQueryResize, "xy"});
  EXPECT_EQ(reply.type, serve::protocol::MsgType::kError);
  // Unknown message type.
  reply = state.handle({static_cast<serve::protocol::MsgType>(77), ""});
  EXPECT_EQ(reply.type, serve::protocol::MsgType::kError);
  // The session still answers real queries afterwards.
  reply = state.handle(
      {serve::protocol::MsgType::kQueryServedFraction,
       encode(serve::protocol::QueryServedFractionRequest{10.0, 20.0})});
  EXPECT_EQ(reply.type, serve::protocol::MsgType::kServedFractionResult);
}

TEST(ServeSession, StatsExposesTheEngineCounters) {
  serve::ServiceState state = make_state();
  (void)state.handle(
      {serve::protocol::MsgType::kQueryServedFraction,
       encode(serve::protocol::QueryServedFractionRequest{10.0, 20.0})});
  const serve::protocol::Frame reply =
      state.handle({serve::protocol::MsgType::kStats, ""});
  ASSERT_EQ(reply.type, serve::protocol::MsgType::kStatsReply);
  const serve::protocol::StatsReply stats =
      serve::protocol::decode_stats_reply(reply.payload);
  bool saw_cells = false;
  for (const auto& [name, value] : stats.counters) {
    if (name == "serve.cells") {
      saw_cells = true;
      EXPECT_EQ(value, small_profile().cell_count());
    }
  }
  EXPECT_TRUE(saw_cells);
}

// --------------------------------------------------------- server/client --

TEST(ServeServer, LoopbackEndToEnd) {
  serve::ServiceState state = make_state();
  serve::ServerConfig config;
  config.workers = 2;
  serve::Server server(state, config);
  server.start();
  ASSERT_GT(server.port(), 0);

  serve::Client client;
  client.connect("127.0.0.1", server.port());
  const serve::protocol::HelloReply hello = client.hello("e2e");
  EXPECT_EQ(hello.cells, small_profile().cell_count());

  // Mutate, then check a query against a directly-driven identical state.
  demand::DeltaOp op;
  op.kind = demand::DeltaKind::kAddLocations;
  op.position = small_profile().cells()[1].center;
  op.count = 77;
  const serve::protocol::DeltaAppliedReply applied = client.apply_delta({op});
  EXPECT_EQ(applied.ops_applied, 1U);

  serve::ServiceState direct = make_state();
  (void)direct.handle(
      {serve::protocol::MsgType::kApplyDelta, encode([&] {
         serve::protocol::ApplyDeltaRequest r;
         r.ops = {op};
         return r;
       }())});
  const serve::protocol::Frame expected = direct.handle(
      {serve::protocol::MsgType::kQueryServedFraction,
       encode(serve::protocol::QueryServedFractionRequest{10.0, 20.0})});
  const serve::protocol::ServedFractionReply got =
      client.query_served_fraction(10.0, 20.0);
  EXPECT_EQ(encode(got), expected.payload);

  // Request-level failure surfaces as ServiceError, connection survives.
  EXPECT_THROW((void)client.query_affordability("no-such-plan"),
               serve::ServiceError);
  EXPECT_NO_THROW((void)client.stats());

  client.shutdown_server();
  EXPECT_TRUE(state.shutdown_requested());
  server.stop();
}

TEST(ServeServer, ConcurrentSessionsStayConsistent) {
  // The TSan job runs this: several clients hammer one server from
  // separate threads; every reply must be well-formed and the journal must
  // end with exactly one op per client.
  serve::ServiceState state = make_state();
  serve::ServerConfig config;
  config.workers = 4;
  serve::Server server(state, config);
  server.start();

  constexpr std::size_t kClients = 4;
  const demand::DemandProfile base = small_profile();
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client;
        client.connect("127.0.0.1", server.port());
        (void)client.hello("client-" + std::to_string(c));
        for (int q = 0; q < 10; ++q) {
          const serve::protocol::ServedFractionReply served =
              client.query_served_fraction(10.0, 20.0);
          if (served.total_cells == 0) failures[c] = 1;
          (void)client.query_resize(10.0, 20.0);
        }
        demand::DeltaOp op;
        op.kind = demand::DeltaKind::kAddLocations;
        op.position = base.cells()[c].center;
        op.count = 1;
        if (client.apply_delta({op}).ops_applied != 1) failures[c] = 1;
      } catch (const std::exception&) {
        failures[c] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  EXPECT_EQ(state.journal_copy().size(), kClients);
  server.stop();
}

TEST(ServeServer, UnknownMessageTypeGetsAnErrorFrame) {
  serve::ServiceState state = make_state();
  serve::Server server(state, serve::ServerConfig{});
  server.start();

  serve::Client client;
  client.connect("127.0.0.1", server.port());
  // A well-framed message of a type the server does not know: answered
  // with kError, connection stays up for the next request.
  const serve::protocol::Frame reply = client.call(
      static_cast<serve::protocol::MsgType>(0xDEAD), "not a real payload");
  EXPECT_EQ(reply.type, serve::protocol::MsgType::kError);
  EXPECT_NO_THROW((void)client.hello("still-alive"));
  server.stop();
}

TEST(ServeServer, StopUnblocksIdleSessions) {
  serve::ServiceState state = make_state();
  serve::Server server(state, serve::ServerConfig{});
  server.start();
  serve::Client client;
  client.connect("127.0.0.1", server.port());
  (void)client.hello("idle");
  // The client sits idle in the worker's recv(); stop() must not hang.
  server.stop();
}

}  // namespace
