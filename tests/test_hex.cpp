// Unit and property tests for leodivide::hex (the H3-style spatial index).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

#include "leodivide/geo/greatcircle.hpp"
#include "leodivide/geo/us_outline.hpp"
#include "leodivide/hex/cellid.hpp"
#include "leodivide/hex/hexcoord.hpp"
#include "leodivide/hex/hexgrid.hpp"
#include "leodivide/hex/polyfill.hpp"
#include "leodivide/hex/traversal.hpp"

namespace leodivide::hex {
namespace {

// --------------------------------------------------------------- hexcoord ----

TEST(HexCoordTest, CubeInvariant) {
  const HexCoord h{3, -5};
  EXPECT_EQ(h.q + h.r + h.s(), 0);
}

TEST(HexCoordTest, DirectionsSumToZero) {
  HexCoord sum{0, 0};
  for (const auto& d : hex_directions()) sum = sum + d;
  EXPECT_EQ(sum, (HexCoord{0, 0}));
}

TEST(HexCoordTest, DirectionsAreUnitDistance) {
  for (const auto& d : hex_directions()) {
    EXPECT_EQ(hex_distance({0, 0}, d), 1);
  }
}

TEST(HexCoordTest, DistanceProperties) {
  const HexCoord a{0, 0}, b{3, -1}, c{-2, 5};
  EXPECT_EQ(hex_distance(a, a), 0);
  EXPECT_EQ(hex_distance(a, b), hex_distance(b, a));
  // Triangle inequality.
  EXPECT_LE(hex_distance(a, c),
            hex_distance(a, b) + hex_distance(b, c));
}

TEST(HexCoordTest, RoundingIsIdempotentOnIntegers) {
  for (int q = -3; q <= 3; ++q) {
    for (int r = -3; r <= 3; ++r) {
      const HexCoord h{q, r};
      EXPECT_EQ(hex_round({static_cast<double>(q), static_cast<double>(r)}),
                h);
    }
  }
}

TEST(HexCoordTest, LerpEndpoints) {
  const HexCoord a{1, 2}, b{-4, 7};
  EXPECT_EQ(hex_round(hex_lerp(a, b, 0.0)), a);
  EXPECT_EQ(hex_round(hex_lerp(a, b, 1.0)), b);
}

// ----------------------------------------------------------------- cellid ----

TEST(CellIdTest, PackUnpackRoundTrip) {
  for (int res : {0, 5, 15}) {
    for (const HexCoord h : {HexCoord{0, 0}, HexCoord{123, -456},
                             HexCoord{-100000, 99999}}) {
      const CellId id(res, h);
      EXPECT_EQ(id.resolution(), res);
      EXPECT_EQ(id.coord(), h);
    }
  }
}

TEST(CellIdTest, BitsRoundTrip) {
  const CellId id(5, {42, -17});
  EXPECT_EQ(CellId::from_bits(id.bits()), id);
}

TEST(CellIdTest, InvalidIsDistinct) {
  const CellId invalid = CellId::invalid();
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.resolution(), -1);
  EXPECT_NE(invalid, CellId(0, {0, 0}));
}

TEST(CellIdTest, RejectsOutOfRange) {
  EXPECT_THROW(CellId(16, {0, 0}), std::out_of_range);
  EXPECT_THROW(CellId(-1, {0, 0}), std::out_of_range);
  EXPECT_THROW(CellId(5, {1 << 29, 0}), std::out_of_range);
}

TEST(CellIdTest, FromBitsPreservesInvalid) {
  EXPECT_FALSE(CellId::from_bits(CellId::invalid().bits()).valid());
}

TEST(CellIdTest, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  std::hash<CellId> hasher;
  for (int q = 0; q < 50; ++q) {
    for (int r = 0; r < 50; ++r) hashes.insert(hasher(CellId(5, {q, r})));
  }
  EXPECT_EQ(hashes.size(), 2500U);  // no collisions on a small grid
}

TEST(CellIdTest, OrderingIsTotal) {
  const CellId a(5, {0, 0}), b(5, {0, 1});
  EXPECT_TRUE(a < b || b < a);
}

// ---------------------------------------------------------------- hexgrid ----

TEST(HexGridTest, ResolutionLadderAreas) {
  // Aperture 4: each resolution quarters the area.
  for (int res = 1; res <= 15; ++res) {
    EXPECT_NEAR(cell_area_km2(res - 1) / cell_area_km2(res), 4.0, 1e-9);
  }
}

TEST(HexGridTest, Res5AreaMatchesH3) {
  EXPECT_NEAR(cell_area_km2(5), kH3Res5AreaKm2, 1e-6);
}

TEST(HexGridTest, GlobalCellCountRes5) {
  // ~2.0M cells of ~252.9 km^2 tile the Earth.
  EXPECT_NEAR(global_cell_count(5), 2.017e6, 0.01e6);
}

TEST(HexGridTest, RejectsBadResolution) {
  EXPECT_THROW(edge_length_km(-1), std::out_of_range);
  EXPECT_THROW(edge_length_km(16), std::out_of_range);
}

TEST(HexGridTest, CellOfCenterRoundTrip) {
  const HexGrid grid;
  for (const geo::GeoPoint p :
       {geo::GeoPoint{39.5, -98.35}, geo::GeoPoint{36.4, -89.7},
        geo::GeoPoint{45.0, -110.0}, geo::GeoPoint{30.0, -85.0}}) {
    const CellId id = grid.cell_of(p, 5);
    const geo::GeoPoint center = grid.center_of(id);
    EXPECT_EQ(grid.cell_of(center, 5), id);
  }
}

TEST(HexGridTest, PointIsNearItsCellCenter) {
  const HexGrid grid;
  const geo::GeoPoint p{41.3, -105.6};
  const CellId id = grid.cell_of(p, 5);
  // A point is within the circumradius (= edge length) of its cell center.
  EXPECT_LE(geo::distance_km(p, grid.center_of(id)),
            edge_length_km(5) * 1.001);
}

TEST(HexGridTest, DistinctPointsFarApartGetDistinctCells) {
  const HexGrid grid;
  EXPECT_NE(grid.cell_of({39.0, -98.0}, 5), grid.cell_of({40.0, -98.0}, 5));
}

TEST(HexGridTest, BoundaryHasSixVerticesAroundCenter) {
  const HexGrid grid;
  const CellId id = grid.cell_of({36.4, -89.7}, 5);
  const auto boundary = grid.boundary_of(id);
  const geo::GeoPoint center = grid.center_of(id);
  for (const auto& v : boundary) {
    EXPECT_NEAR(geo::distance_km(center, v), edge_length_km(5), 0.05);
  }
}

TEST(HexGridTest, ParentContainsChildCenter) {
  const HexGrid grid;
  const CellId child = grid.cell_of({38.0, -100.0}, 6);
  const CellId parent = grid.parent_of(child, 5);
  EXPECT_EQ(grid.cell_of(grid.center_of(child), 5), parent);
  EXPECT_EQ(parent.resolution(), 5);
}

TEST(HexGridTest, ParentRejectsFinerTarget) {
  const HexGrid grid;
  const CellId id = grid.cell_of({38.0, -100.0}, 5);
  EXPECT_THROW(grid.parent_of(id, 5), std::invalid_argument);
  EXPECT_THROW(grid.parent_of(id, 7), std::invalid_argument);
}

TEST(HexGridTest, ChildrenRoundTripToParent) {
  const HexGrid grid;
  const CellId parent = grid.cell_of({38.0, -100.0}, 4);
  const auto children = grid.children_of(parent, 5);
  EXPECT_GE(children.size(), 3U);  // aperture-4: ~4 children
  EXPECT_LE(children.size(), 5U);
  for (const CellId c : children) {
    EXPECT_EQ(grid.parent_of(c, 4), parent);
  }
}

TEST(HexGridTest, ChildrenPartitionApproximatesArea) {
  const HexGrid grid;
  const CellId parent = grid.cell_of({40.0, -95.0}, 3);
  const auto children = grid.children_of(parent, 5);
  // 2 levels of aperture 4 -> ~16 children.
  EXPECT_GE(children.size(), 13U);
  EXPECT_LE(children.size(), 19U);
}

// -------------------------------------------------------------- traversal ----

TEST(Traversal, SixNeighborsAtDistanceOne) {
  const CellId id(5, {10, -4});
  const auto n = neighbors(id);
  ASSERT_EQ(n.size(), 6U);
  std::set<CellId> unique(n.begin(), n.end());
  EXPECT_EQ(unique.size(), 6U);
  for (const CellId x : n) EXPECT_EQ(grid_distance(id, x), 1);
}

TEST(Traversal, RingSizes) {
  const CellId id(5, {0, 0});
  EXPECT_EQ(ring(id, 0).size(), 1U);
  EXPECT_EQ(ring(id, 1).size(), 6U);
  EXPECT_EQ(ring(id, 2).size(), 12U);
  EXPECT_EQ(ring(id, 5).size(), 30U);
}

TEST(Traversal, RingCellsAtExactDistance) {
  const CellId id(5, {3, 3});
  for (int k = 1; k <= 4; ++k) {
    for (const CellId x : ring(id, k)) {
      EXPECT_EQ(grid_distance(id, x), k);
    }
  }
}

TEST(Traversal, DiskSizeFormula) {
  const CellId id(5, {-2, 7});
  for (int k = 0; k <= 5; ++k) {
    EXPECT_EQ(disk(id, k).size(),
              static_cast<std::size_t>(1 + 3 * k * (k + 1)));
  }
}

TEST(Traversal, DiskEqualsUnionOfRings) {
  const CellId id(5, {1, 1});
  const int k = 3;
  std::set<CellId> from_rings;
  for (int i = 0; i <= k; ++i) {
    for (const CellId x : ring(id, i)) from_rings.insert(x);
  }
  const auto d = disk(id, k);
  const std::set<CellId> from_disk(d.begin(), d.end());
  EXPECT_EQ(from_rings, from_disk);
}

TEST(Traversal, LineConnectsEndpoints) {
  const CellId a(5, {0, 0}), b(5, {7, -3});
  const auto l = line(a, b);
  ASSERT_GE(l.size(), 2U);
  EXPECT_EQ(l.front(), a);
  EXPECT_EQ(l.back(), b);
  EXPECT_EQ(l.size(), static_cast<std::size_t>(grid_distance(a, b)) + 1);
  // Consecutive line cells are adjacent.
  for (std::size_t i = 1; i < l.size(); ++i) {
    EXPECT_EQ(grid_distance(l[i - 1], l[i]), 1);
  }
}

TEST(Traversal, GridDistanceRejectsMixedResolutions) {
  EXPECT_THROW(grid_distance(CellId(5, {0, 0}), CellId(6, {0, 0})),
               std::invalid_argument);
}

TEST(Traversal, RejectsInvalidInputs) {
  EXPECT_THROW(neighbors(CellId::invalid()), std::invalid_argument);
  EXPECT_THROW(ring(CellId(5, {0, 0}), -1), std::invalid_argument);
  EXPECT_THROW(disk(CellId(5, {0, 0}), -1), std::invalid_argument);
}

// --------------------------------------------------------------- polyfill ----

TEST(Polyfill, BoxFillCountMatchesArea) {
  const HexGrid grid;
  const geo::BoundingBox box{38.0, 40.0, -100.0, -97.0};
  const auto cells = polyfill(grid, box, 5);
  const double expected = box.area_km2() / cell_area_km2(5);
  EXPECT_NEAR(static_cast<double>(cells.size()), expected, expected * 0.05);
  for (const CellId id : cells) {
    EXPECT_TRUE(box.contains(grid.center_of(id)));
  }
}

TEST(Polyfill, CellsAreUnique) {
  const HexGrid grid;
  const auto cells = polyfill(grid, geo::BoundingBox{39.0, 40.0, -99.0, -98.0},
                              5);
  const std::set<CellId> unique(cells.begin(), cells.end());
  EXPECT_EQ(unique.size(), cells.size());
}

TEST(Polyfill, FinerResolutionYieldsMoreCells) {
  const HexGrid grid;
  const geo::BoundingBox box{39.0, 40.0, -99.0, -98.0};
  const auto coarse = polyfill(grid, box, 4);
  const auto fine = polyfill(grid, box, 5);
  EXPECT_GT(fine.size(), coarse.size() * 3);
  EXPECT_LT(fine.size(), coarse.size() * 5);
}

TEST(Polyfill, ConusFillIsContinentScale) {
  const HexGrid grid;
  const auto cells = polyfill(grid, geo::conus_outline(), 5);
  const double expected = geo::conus_area_km2() / cell_area_km2(5);
  EXPECT_NEAR(static_cast<double>(cells.size()), expected, expected * 0.03);
}

TEST(Polyfill, PolygonFillRespectsBoundary) {
  const HexGrid grid;
  const geo::Polygon triangle(
      {{38.0, -100.0}, {40.0, -100.0}, {39.0, -97.0}});
  const auto cells = polyfill(grid, triangle, 5);
  EXPECT_GT(cells.size(), 10U);
  for (const CellId id : cells) {
    EXPECT_TRUE(triangle.contains(grid.center_of(id)));
  }
}

// ----------------------------------------------- parameterized round trips ----

class CellRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(CellRoundTrip, CenterMapsBackToSameCell) {
  const auto [lat, lon, res] = GetParam();
  const HexGrid grid;
  const CellId id = grid.cell_of({lat, lon}, res);
  EXPECT_EQ(grid.cell_of(grid.center_of(id), res), id);
}

INSTANTIATE_TEST_SUITE_P(
    ConusSweep, CellRoundTrip,
    ::testing::Combine(::testing::Values(26.0, 33.0, 39.5, 45.0, 48.5),
                       ::testing::Values(-120.0, -105.0, -98.35, -85.0, -70.0),
                       ::testing::Values(3, 5, 7)));

class NeighborSymmetry : public ::testing::TestWithParam<int> {};

TEST_P(NeighborSymmetry, NeighborOfNeighborIncludesSelf) {
  const int i = GetParam();
  const CellId id(5, {i * 3 - 7, 11 - i * 2});
  for (const CellId n : neighbors(id)) {
    const auto back = neighbors(n);
    EXPECT_NE(std::find(back.begin(), back.end(), id), back.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, NeighborSymmetry, ::testing::Range(0, 8));

}  // namespace
}  // namespace leodivide::hex

// Appended: multi-resolution compaction (hex/compact.hpp).
#include "leodivide/hex/compact.hpp"

namespace leodivide::hex {
namespace {

TEST(Compact, CompleteSiblingGroupBecomesParent) {
  const HexGrid grid;
  const CellId parent = grid.cell_of({39.0, -98.0}, 4);
  const auto children = grid.children_of(parent, 5);
  const auto compacted = compact(grid, children, 0);
  // All children present -> replaced by (at least) the parent.
  EXPECT_LT(compacted.size(), children.size());
  EXPECT_NE(std::find(compacted.begin(), compacted.end(), parent),
            compacted.end());
}

TEST(Compact, IncompleteGroupPassesThrough) {
  const HexGrid grid;
  const CellId parent = grid.cell_of({39.0, -98.0}, 4);
  auto children = grid.children_of(parent, 5);
  ASSERT_GE(children.size(), 2U);
  children.pop_back();  // remove one sibling
  const auto compacted = compact(grid, children, 0);
  EXPECT_EQ(compacted.size(), children.size());
  for (const CellId c : compacted) EXPECT_EQ(c.resolution(), 5);
}

TEST(Compact, UncompactInvertsCompact) {
  const HexGrid grid;
  const auto cells =
      polyfill(grid, geo::BoundingBox{38.0, 39.5, -100.0, -98.0}, 5);
  const auto compacted = compact(grid, cells, 0);
  EXPECT_LT(compacted.size(), cells.size());
  auto expanded = uncompact(grid, compacted, 5);
  std::vector<CellId> original = cells;
  std::sort(original.begin(), original.end());
  EXPECT_EQ(expanded, original);
}

TEST(Compact, DeduplicatesInput) {
  const HexGrid grid;
  const CellId c = grid.cell_of({40.0, -100.0}, 5);
  const auto compacted = compact(grid, {c, c, c}, 0);
  EXPECT_EQ(compacted.size(), 1U);
}

TEST(Compact, EmptyInputYieldsEmptyOutput) {
  const HexGrid grid;
  EXPECT_TRUE(compact(grid, {}, 0).empty());
}

TEST(Compact, RejectsMixedResolutions) {
  const HexGrid grid;
  EXPECT_THROW(
      (void)compact(grid, {CellId(5, {0, 0}), CellId(6, {0, 0})}, 0),
      std::invalid_argument);
  EXPECT_THROW((void)compact(grid, {CellId(5, {0, 0})}, 7),
               std::invalid_argument);
}

TEST(Uncompact, ExpandsCoarseCells) {
  const HexGrid grid;
  const CellId parent = grid.cell_of({39.0, -98.0}, 3);
  const auto expanded = uncompact(grid, {parent}, 5);
  EXPECT_GE(expanded.size(), 13U);  // ~16 descendants two levels down
  for (const CellId c : expanded) {
    EXPECT_EQ(c.resolution(), 5);
    // The hierarchy composes through one-level steps (center-based
    // parents), so check the composed relation.
    EXPECT_EQ(grid.parent_of(grid.parent_of(c, 4), 3), parent);
  }
}

TEST(Uncompact, RejectsFinerThanTarget) {
  const HexGrid grid;
  EXPECT_THROW((void)uncompact(grid, {CellId(6, {0, 0})}, 5),
               std::invalid_argument);
}

TEST(Uncompact, MixedResolutionInputFlattens) {
  const HexGrid grid;
  const CellId coarse = grid.cell_of({39.0, -98.0}, 4);
  const CellId fine = grid.cell_of({45.0, -110.0}, 5);
  const auto expanded = uncompact(grid, {coarse, fine}, 5);
  for (const CellId c : expanded) EXPECT_EQ(c.resolution(), 5);
  EXPECT_NE(std::find(expanded.begin(), expanded.end(), fine),
            expanded.end());
}

}  // namespace
}  // namespace leodivide::hex

// Appended: compact/uncompact round-trip property sweep.
namespace leodivide::hex {
namespace {

struct BoxCase {
  double lat_lo, lat_hi, lon_lo, lon_hi;
  int res;
};

class CompactRoundTrip : public ::testing::TestWithParam<BoxCase> {};

TEST_P(CompactRoundTrip, UncompactRestoresExactSet) {
  const auto& b = GetParam();
  const HexGrid grid;
  const auto cells = polyfill(
      grid, geo::BoundingBox{b.lat_lo, b.lat_hi, b.lon_lo, b.lon_hi}, b.res);
  ASSERT_FALSE(cells.empty());
  const auto compacted = compact(grid, cells, 0);
  EXPECT_LE(compacted.size(), cells.size());
  auto expanded = uncompact(grid, compacted, b.res);
  std::vector<CellId> original = cells;
  std::sort(original.begin(), original.end());
  EXPECT_EQ(expanded, original);
}

INSTANTIATE_TEST_SUITE_P(
    Boxes, CompactRoundTrip,
    ::testing::Values(BoxCase{38.0, 39.0, -100.0, -99.0, 5},
                      BoxCase{30.0, 32.0, -90.0, -88.0, 5},
                      BoxCase{44.0, 46.0, -120.0, -117.0, 5},
                      BoxCase{38.0, 40.0, -100.0, -97.0, 6},
                      BoxCase{36.0, 37.0, -98.0, -97.0, 4}));

}  // namespace
}  // namespace leodivide::hex
