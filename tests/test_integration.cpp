// Integration tests: full pipelines across modules, pinning the paper's
// published findings end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "leodivide/core/report.hpp"
#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/aggregate.hpp"
#include "leodivide/demand/calibration.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/orbit/density.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/stats/percentile.hpp"

namespace leodivide {
namespace {

const demand::DemandProfile& national_profile() {
  static const demand::DemandProfile profile =
      demand::SyntheticGenerator(demand::GeneratorConfig{}).generate_profile();
  return profile;
}

const core::AnalysisResults& national_results() {
  static const core::AnalysisResults results =
      core::run_full_analysis(national_profile());
  return results;
}

// ---- The paper's four findings, end to end ------------------------------

TEST(PaperFindings, F1_OversubscriptionTradeoff) {
  const auto& f1 = national_results().f1;
  // "adopting oversubscription ratios 75% higher than federal guidelines":
  // 35:1 vs 20:1.
  EXPECT_NEAR(f1.peak_oversubscription / core::kFccOversubscriptionCap, 1.75,
              0.05);
  // "serve 99.89% of total locations (all but ~5128)".
  EXPECT_NEAR(f1.servable_fraction_at_cap, 0.9989, 0.0001);
  // "22,428 locations (0.48% of total) served at rates higher than 20:1".
  EXPECT_EQ(f1.locations_above_cap, 22428U);
}

TEST(PaperFindings, F2_ConstellationMustExceed40k) {
  // "to stay within acceptable levels of oversubscription ... beamspread
  // factor less than 2 — which correlates to a constellation size of over
  // 40,000 satellites".
  const auto& table2 = national_results().table2;
  const auto row2 = table2[1];  // beamspread 2
  EXPECT_NEAR(row2.beamspread, 2.0, 1e-12);
  EXPECT_GT(row2.satellites_capped, 40000.0);
  // "more than 32,000 additional satellites" beyond the ~8000 deployed.
  EXPECT_GT(row2.satellites_capped - 8000.0, 32000.0);
}

TEST(PaperFindings, F3_DiminishingReturnsInTheLongTail) {
  // "connecting the final ~3000 locations requires deploying from a couple
  // hundred to a couple thousand of additional satellites".
  for (const auto& curve : national_results().fig3) {
    // leolint:allow(float-eq): oversub is assigned exactly from 20.0
    if (curve.oversub != 20.0) continue;
    const double at_floor = core::satellites_for_unserved_budget(
        curve.points, 1000000ULL);
    const double full = curve.points.front().satellites;
    EXPECT_GT(full - at_floor, 200.0)
        << "beamspread " << curve.beamspread;
  }
}

TEST(PaperFindings, F4_AffordabilityGap) {
  const auto& fig4 = national_results().fig4;
  // Order: Xfinity, Spectrum, Starlink w/ Lifeline, Starlink.
  EXPECT_LE(fig4[0].fraction_unable, 0.0001);
  EXPECT_LE(fig4[1].fraction_unable, 0.0001);
  EXPECT_NEAR(fig4[2].locations_unable, 3.0e6, 0.1e6);
  EXPECT_NEAR(fig4[3].fraction_unable, 0.745, 0.005);
  EXPECT_NEAR(fig4[3].locations_unable, 3.5e6, 0.1e6);
}

// ---- Figure 1 end to end --------------------------------------------------

TEST(Fig1, DistributionStatistics) {
  const auto counts = national_profile().counts_as_doubles();
  EXPECT_NEAR(stats::percentile(counts, 90.0), 552.0, 15.0);
  EXPECT_NEAR(stats::percentile(counts, 99.0), 1437.0, 40.0);
  EXPECT_DOUBLE_EQ(*std::max_element(counts.begin(), counts.end()), 5998.0);
}

// ---- Table 2 cross-validation: calibrated K vs dataset-derived ------------

TEST(Table2, CalibratedAndDerivedAgree) {
  const core::SizingModel model;
  for (double s : {1.0, 2.0, 5.0, 10.0, 15.0}) {
    const double derived =
        core::size_full_service(national_profile(), model, s).satellites;
    const double calibrated = core::satellites_from_k(
        model, demand::paper::kKFullService, s, 4);
    EXPECT_NEAR(derived, calibrated, calibrated * 0.005);
  }
}

// ---- Location-level pipeline: expand -> aggregate -> analyze --------------

TEST(Pipeline, LocationLevelRoundTripPreservesAnalysis) {
  const demand::SyntheticGenerator gen({.seed = 9, .scale = 0.005});
  const demand::DemandProfile profile = gen.generate_profile();
  const demand::DemandDataset dataset = gen.expand_locations(profile);
  const demand::DemandProfile back =
      demand::aggregate(dataset, hex::HexGrid(), 5);

  const core::SatelliteCapacityModel model;
  const auto before = core::analyze_oversubscription(profile, model);
  const auto after = core::analyze_oversubscription(back, model);
  EXPECT_EQ(before.total_locations, after.total_locations);
  EXPECT_EQ(before.locations_above_cap, after.locations_above_cap);
  EXPECT_NEAR(before.peak_oversubscription, after.peak_oversubscription,
              1e-9);
}

// ---- CSV persistence round trip through the full analysis -----------------

TEST(Pipeline, CsvRoundTripPreservesFullAnalysis) {
  const demand::SyntheticGenerator gen({.seed = 13, .scale = 0.01});
  const demand::DemandProfile profile = gen.generate_profile();
  std::ostringstream cells_out, counties_out;
  profile.save_csv(cells_out, counties_out);
  std::istringstream cells_in(cells_out.str()),
      counties_in(counties_out.str());
  const demand::DemandProfile loaded =
      demand::DemandProfile::load_csv(cells_in, counties_in);

  const core::SizingModel model;
  // CSV stores coordinates with 6 decimal places; the derived constellation
  // size is continuous in the binding latitude, so allow sub-satellite
  // rounding error.
  EXPECT_NEAR(core::size_full_service(profile, model, 5.0).satellites,
              core::size_full_service(loaded, model, 5.0).satellites, 1.0);
}

// ---- Analytic density vs the orbital simulator -----------------------------

TEST(CrossValidation, AnalyticDensityMatchesPropagatedShell) {
  // The sizing model hinges on rho(phi); check it against the actual
  // Walker-shell propagation at the paper's binding latitude.
  const orbit::WalkerShell shell = orbit::starlink_shell1();
  const auto empirical = orbit::empirical_density_per_km2(shell, 300, 60);
  // Band containing 37 degrees: [36, 39).
  const std::size_t band = static_cast<std::size_t>((37.0 + 90.0) / 3.0);
  const double analytic =
      orbit::surface_density_per_km2(shell.total_sats(), 37.5, 53.0);
  EXPECT_NEAR(empirical[band], analytic, analytic * 0.1);
}

TEST(CrossValidation, SimulatorConfirmsCurrentShellIsInsufficient) {
  // The paper's core claim: today's constellation cannot serve the national
  // demand profile at acceptable oversubscription. Run shell 1 against a
  // 2%-scale profile and confirm coverage is well below 100%.
  // The shortfall only appears at full demand density: a sparse subsample
  // fits easily in shell 1's beam budget.
  sim::SimulationConfig config;
  config.duration_s = 120.0;
  config.step_s = 120.0;
  config.scheduler.beamspread = 5;
  const sim::SimulationReport report =
      sim::Simulation(config, national_profile()).run_report();
  EXPECT_LT(report.mean_cell_coverage, 0.9);
  EXPECT_GT(report.mean_cell_coverage, 0.05);
}

// ---- Report rendering covers the whole analysis ----------------------------

TEST(Reporting, FullReportMentionsPaperHeadlines) {
  const std::string report = core::render_report(national_results());
  EXPECT_NE(report.find("17.325"), std::string::npos);
  EXPECT_NE(report.find("99.89%"), std::string::npos);
  EXPECT_NE(report.find("5,103"), std::string::npos);
}

}  // namespace
}  // namespace leodivide

// Appended: cross-module extension checks.
#include "leodivide/core/backhaul.hpp"
#include "leodivide/core/economics.hpp"
#include "leodivide/core/uplink.hpp"
#include "leodivide/orbit/shells.hpp"

namespace leodivide {
namespace {

TEST(Extensions, UplinkTightensEveryPaperCell) {
  // For every cell in the calibrated profile the uplink constraint must be
  // at least as tight as the downlink one (constant ratio > 1).
  const core::SatelliteCapacityModel down;
  const core::UplinkModel up;
  for (std::uint32_t locs : {1U, 552U, 1437U, 3465U, 5998U}) {
    const auto r = core::analyze_uplink(down, up, locs);
    EXPECT_GT(r.uplink_oversubscription,
              r.downlink_oversubscription);
  }
}

TEST(Extensions, ShellDesignOrderingAtBindingLatitude) {
  // The shell-design ablation's ordering is stable: for the binding
  // latitude ~36.4 deg, required fleet grows with inclination.
  const core::SizingModel model;
  const auto binding =
      core::size_with_cap(national_results().f1.total_locations == 0
                              ? national_profile()
                              : national_profile(),
                          model, 1.0, 20.0);
  const double area = model.cell_area_km2 * 21.0;  // 1 + 20*1 cells
  double prev = 0.0;
  for (double incl : {43.0, 53.0, 70.0}) {
    const double n = orbit::constellation_size_for_density(
        1.0 / area, binding.binding_lat_deg, incl);
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(Extensions, EconomicsConsistentWithTable2) {
  // The full capped deployment's annual cost equals Table 2's satellite
  // count amortised by the cost model.
  const core::SizingModel model;
  const core::CostModel cost;
  const auto curve =
      core::longtail_curve(national_profile(), model, 10.0, 20.0);
  const auto econ = core::longtail_economics(
      curve, national_profile().total_locations(), cost);
  const double n_full =
      core::size_with_cap(national_profile(), model, 10.0, 20.0).satellites;
  EXPECT_NEAR(econ.back().annual_cost_usd,
              cost.annual_fleet_cost_usd(n_full), 1.0);
}

TEST(Extensions, Gen1MixtureCoversConusButNotEnough) {
  // Today's authorised Gen1 mixture (4,408 satellites) provides density at
  // the binding latitude far below the Table-2 requirement.
  const orbit::MultiShellConstellation gen1 = orbit::starlink_gen1();
  const core::SizingModel model;
  const double needed_density =
      1.0 / (model.cell_area_km2 * 21.0);  // one satellite per 21 cells
  const double required = gen1.size_for_density(needed_density, 36.4);
  EXPECT_GT(required, 10.0 * gen1.total_sats());
}

}  // namespace
}  // namespace leodivide
