// Unit and property tests for leodivide::orbit.

#include <gtest/gtest.h>

#include <cmath>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/greatcircle.hpp"
#include "leodivide/orbit/density.hpp"
#include "leodivide/orbit/footprint.hpp"
#include "leodivide/orbit/groundtrack.hpp"
#include "leodivide/orbit/kepler.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/visibility.hpp"
#include "leodivide/orbit/walker.hpp"

namespace leodivide::orbit {
namespace {

CircularOrbit starlink_orbit() {
  return CircularOrbit{550.0, geo::deg2rad(53.0), 0.0, 0.0};
}

// ----------------------------------------------------------------- kepler ----

TEST(Kepler, PeriodAt550KmIsAbout95Minutes) {
  EXPECT_NEAR(starlink_orbit().period_s(), 95.6 * 60.0, 60.0);
}

TEST(Kepler, SpeedAt550KmIsAbout7_6KmPerS) {
  EXPECT_NEAR(starlink_orbit().speed_km_s(), 7.59, 0.05);
}

TEST(Kepler, HigherOrbitHasLongerPeriod) {
  CircularOrbit low{550.0}, high{1200.0};
  EXPECT_LT(low.period_s(), high.period_s());
}

TEST(Kepler, PositionStaysOnOrbitSphere) {
  const CircularOrbit orbit = starlink_orbit();
  for (double t = 0.0; t < orbit.period_s(); t += 200.0) {
    EXPECT_NEAR(eci_position(orbit, t).norm(), orbit.radius_km(), 1e-6);
  }
}

TEST(Kepler, OrbitIsPeriodicInEci) {
  const CircularOrbit orbit = starlink_orbit();
  const geo::Vec3 p0 = eci_position(orbit, 0.0);
  const geo::Vec3 p1 = eci_position(orbit, orbit.period_s());
  EXPECT_NEAR((p1 - p0).norm(), 0.0, 1e-6);
}

TEST(Kepler, EquatorialOrbitStaysOnEquator) {
  const CircularOrbit orbit{550.0, 0.0, 0.0, 0.0};
  for (double t = 0.0; t < 6000.0; t += 500.0) {
    EXPECT_NEAR(subsatellite_point(orbit, t).lat_deg, 0.0, 1e-9);
  }
}

TEST(Kepler, GroundLatitudeBoundedByInclination) {
  const CircularOrbit orbit = starlink_orbit();
  for (double t = 0.0; t < 2.0 * orbit.period_s(); t += 60.0) {
    EXPECT_LE(std::abs(subsatellite_point(orbit, t).lat_deg), 53.0 + 1e-6);
  }
  EXPECT_NEAR(max_ground_latitude_deg(orbit), 53.0, 1e-9);
}

TEST(Kepler, GroundTrackReachesInclinationLatitude) {
  const CircularOrbit orbit = starlink_orbit();
  double max_lat = 0.0;
  for (double t = 0.0; t < orbit.period_s(); t += 5.0) {
    max_lat = std::max(max_lat, subsatellite_point(orbit, t).lat_deg);
  }
  EXPECT_NEAR(max_lat, 53.0, 0.1);
}

TEST(Kepler, RetrogradeMaxLatitudeIsSupplement) {
  const CircularOrbit orbit{550.0, geo::deg2rad(97.0), 0.0, 0.0};
  EXPECT_NEAR(max_ground_latitude_deg(orbit), 83.0, 1e-9);
}

// ----------------------------------------------------------------- walker ----

TEST(Walker, Shell1Is1584Sats) {
  const WalkerShell shell = starlink_shell1();
  EXPECT_EQ(shell.total_sats(), 1584U);
  EXPECT_EQ(make_constellation(shell).size(), 1584U);
}

TEST(Walker, ToStringFormat) {
  EXPECT_EQ(starlink_shell1().to_string(), "53:1584/72/1 @ 550km");
}

TEST(Walker, AllOrbitsShareAltitudeAndInclination) {
  const auto orbits = make_constellation(starlink_shell1());
  for (const auto& o : orbits) {
    EXPECT_DOUBLE_EQ(o.altitude_km, 550.0);
    EXPECT_NEAR(o.inclination_rad, geo::deg2rad(53.0), 1e-12);
  }
}

TEST(Walker, RaanIsEvenlySpaced) {
  const WalkerShell shell{53.0, 550.0, 8, 3, 1};
  const auto orbits = make_constellation(shell);
  for (std::uint32_t p = 0; p < shell.planes; ++p) {
    EXPECT_NEAR(orbits[p * 3].raan_rad, geo::kTwoPi * p / 8.0, 1e-12);
  }
}

TEST(Walker, PhasesWithinPlaneAreEvenlySpaced) {
  const WalkerShell shell{53.0, 550.0, 4, 5, 0};
  const auto orbits = make_constellation(shell);
  for (std::uint32_t k = 1; k < 5; ++k) {
    EXPECT_NEAR(orbits[k].phase_rad - orbits[k - 1].phase_rad,
                geo::kTwoPi / 5.0, 1e-12);
  }
}

TEST(Walker, RejectsDegenerateShells) {
  EXPECT_THROW(make_constellation({53.0, 550.0, 0, 22, 1}),
               std::invalid_argument);
  EXPECT_THROW(make_constellation({53.0, 550.0, 72, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(make_constellation({53.0, 550.0, 4, 4, 4}),
               std::invalid_argument);
}

// -------------------------------------------------------------- propagate ----

TEST(Propagate, EcefMatchesSubsatellitePoint) {
  const CircularOrbit orbit = starlink_orbit();
  for (double t : {0.0, 1234.0, 5000.0}) {
    const geo::GeoPoint from_ecef =
        geo::cartesian_to_spherical(ecef_position(orbit, t));
    EXPECT_TRUE(geo::approx_equal(from_ecef, subsatellite_point(orbit, t),
                                  1e-9));
  }
}

TEST(Propagate, AllStatesHaveConsistentRadius) {
  const auto orbits = make_constellation(starlink_shell1());
  const auto states = propagate_all(orbits, 777.0);
  ASSERT_EQ(states.size(), orbits.size());
  for (const auto& s : states) {
    EXPECT_NEAR(s.ecef_km.norm(), geo::kEarthRadiusKm + 550.0, 1e-6);
  }
}

// ------------------------------------------------------------- groundtrack ----

TEST(GroundTrack, SampleCountMatchesDuration) {
  const auto track = ground_track(starlink_orbit(), 600.0, 60.0);
  EXPECT_EQ(track.size(), 11U);
}

TEST(GroundTrack, RejectsBadParams) {
  EXPECT_THROW(ground_track(starlink_orbit(), 100.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ground_track(starlink_orbit(), -1.0, 10.0),
               std::invalid_argument);
}

TEST(GroundTrack, NodalRegressionIsAbout24Degrees) {
  // 95.6-minute orbit: Earth rotates ~23.9 deg per orbit.
  EXPECT_NEAR(nodal_regression_per_orbit_deg(starlink_orbit()), 24.0, 0.5);
}

// -------------------------------------------------------------- visibility ----

TEST(Visibility, SatelliteDirectlyOverheadAt90Degrees) {
  const geo::GeoPoint ground{40.0, -100.0};
  const geo::Vec3 sat =
      geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm + 550.0);
  EXPECT_NEAR(elevation_deg(ground, sat), 90.0, 1e-5);
  EXPECT_NEAR(slant_range_km(ground, sat), 550.0, 1e-6);
}

TEST(Visibility, AntipodalSatelliteBelowHorizon) {
  const geo::GeoPoint ground{0.0, 0.0};
  const geo::Vec3 sat =
      geo::spherical_to_cartesian({0.0, 180.0}, geo::kEarthRadiusKm + 550.0);
  EXPECT_LT(elevation_deg(ground, sat), -80.0);
  EXPECT_FALSE(is_visible(ground, sat, 0.0));
}

TEST(Visibility, ElevationDecreasesWithGroundDistance) {
  const geo::GeoPoint subpoint{40.0, -100.0};
  const geo::Vec3 sat =
      geo::spherical_to_cartesian(subpoint, geo::kEarthRadiusKm + 550.0);
  double prev = 90.0;
  for (double off = 1.0; off <= 20.0; off += 1.0) {
    const double el = elevation_deg({40.0, -100.0 + off}, sat);
    EXPECT_LT(el, prev);
    prev = el;
  }
}

TEST(Visibility, CountMatchesIndices) {
  const auto orbits = make_constellation(starlink_shell1());
  const auto states = propagate_all(orbits, 0.0);
  const geo::GeoPoint ground{39.5, -98.35};
  const auto idx = visible_satellites(ground, states, 25.0);
  EXPECT_EQ(idx.size(), count_visible(ground, states, 25.0));
  for (std::size_t i : idx) {
    EXPECT_GE(elevation_deg(ground, states[i].ecef_km), 25.0);
  }
}

TEST(Visibility, Shell1SeesSeveralSatsFromMidLatitudes) {
  // From the CONUS centroid at a 25-degree mask, shell 1 should always show
  // at least one satellite and typically a handful.
  const auto orbits = make_constellation(starlink_shell1());
  for (double t : {0.0, 300.0, 900.0, 2700.0}) {
    const auto states = propagate_all(orbits, t);
    EXPECT_GE(count_visible({39.5, -98.35}, states, 25.0), 1U);
  }
}

// ---------------------------------------------------------------- footprint ----

TEST(Footprint, ZeroElevationGivesWidestFootprint) {
  const double wide = footprint_radius_km(550.0, 0.0);
  const double narrow = footprint_radius_km(550.0, 25.0);
  const double very_narrow = footprint_radius_km(550.0, 60.0);
  EXPECT_GT(wide, narrow);
  EXPECT_GT(narrow, very_narrow);
}

TEST(Footprint, KnownStarlinkGeometry) {
  // 550 km altitude, 25-degree mask: coverage radius ~ 940 km.
  EXPECT_NEAR(footprint_radius_km(550.0, 25.0), 940.0, 40.0);
}

TEST(Footprint, AreaMatchesCapFormula) {
  const double psi = coverage_central_angle_rad(550.0, 25.0);
  EXPECT_NEAR(footprint_area_km2(550.0, 25.0),
              geo::spherical_cap_area_km2(psi), 1e-6);
}

TEST(Footprint, CellsInFootprintIsConsistent) {
  const double cells = cells_in_footprint(550.0, 25.0, 252.9);
  EXPECT_NEAR(cells, footprint_area_km2(550.0, 25.0) / 252.9, 1e-9);
  EXPECT_GT(cells, 1000.0);  // thousands of res-5 cells fit a footprint
}

TEST(Footprint, NadirAngleBelowHorizonLimit) {
  const double nadir = edge_nadir_angle_rad(550.0, 25.0);
  const double horizon_limit =
      std::asin(geo::kEarthRadiusKm / (geo::kEarthRadiusKm + 550.0));
  EXPECT_LT(nadir, horizon_limit);
  EXPECT_GT(nadir, 0.0);
}

TEST(Footprint, RejectsBadInputs) {
  EXPECT_THROW(coverage_central_angle_rad(0.0, 25.0), std::invalid_argument);
  EXPECT_THROW(coverage_central_angle_rad(550.0, 90.0), std::invalid_argument);
  EXPECT_THROW(cells_in_footprint(550.0, 25.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------------ density ----

TEST(Density, PdfIntegratesToOne) {
  double integral = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double lat = -90.0 + 180.0 * (i + 0.5) / n;
    integral += latitude_pdf(lat, 53.0) * geo::deg2rad(180.0 / n);
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Density, ZeroOutsideInclinationBand) {
  EXPECT_DOUBLE_EQ(latitude_pdf(60.0, 53.0), 0.0);
  EXPECT_DOUBLE_EQ(latitude_pdf(-54.0, 53.0), 0.0);
  EXPECT_DOUBLE_EQ(surface_density_per_km2(1000, 75.0, 53.0), 0.0);
}

TEST(Density, IncreasesTowardInclinationLatitude) {
  double prev = 0.0;
  for (double lat = 0.0; lat <= 50.0; lat += 10.0) {
    const double d = surface_density_per_km2(1584, lat, 53.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Density, RelativeDensityIntegratesLikeUniform) {
  // Weighted by area, the relative density must average to 1.
  double integral = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double lat = -90.0 + 180.0 * (i + 0.5) / n;
    const double band = std::cos(geo::deg2rad(lat)) / 2.0;
    integral += relative_density(lat, 53.0) * band * geo::deg2rad(180.0 / n);
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Density, InverseProblemRoundTrip) {
  const double n_sats = 8000.0;
  const double rho = surface_density_per_km2(n_sats, 37.0, 53.0);
  EXPECT_NEAR(constellation_size_for_density(rho, 37.0, 53.0), n_sats, 1e-6);
}

TEST(Density, InverseRejectsOutOfBandLatitude) {
  EXPECT_THROW(constellation_size_for_density(1e-4, 60.0, 53.0),
               std::invalid_argument);
  EXPECT_THROW(constellation_size_for_density(0.0, 30.0, 53.0),
               std::invalid_argument);
}

TEST(Density, EmpiricalMatchesAnalyticAtMidLatitudes) {
  // Time-averaged density from actual propagation should match the analytic
  // formula away from the divergence at the inclination limit.
  const WalkerShell shell = starlink_shell1();
  const auto empirical = empirical_density_per_km2(shell, 200, 36);
  for (int band = 0; band < 36; ++band) {
    const double lat = -90.0 + (band + 0.5) * 5.0;
    if (std::abs(lat) > 45.0) continue;  // skip the divergent edge bands
    const double analytic =
        surface_density_per_km2(shell.total_sats(), lat, 53.0);
    EXPECT_NEAR(empirical[static_cast<std::size_t>(band)], analytic,
                analytic * 0.15)
        << "latitude band " << lat;
  }
}

TEST(Density, EmpiricalRejectsBadInputs) {
  EXPECT_THROW(empirical_density_per_km2(starlink_shell1(), 0, 10),
               std::invalid_argument);
  EXPECT_THROW(empirical_density_per_km2(starlink_shell1(), 10, 0),
               std::invalid_argument);
}

// ------------------------------------------------- parameterized sweeps ----

class PeriodSweep : public ::testing::TestWithParam<double> {};

TEST_P(PeriodSweep, KeplerThirdLawHolds) {
  const double alt = GetParam();
  const CircularOrbit orbit{alt};
  const double r = orbit.radius_km();
  const double t = orbit.period_s();
  // T^2 / a^3 = 4 pi^2 / mu.
  EXPECT_NEAR(t * t / (r * r * r),
              4.0 * geo::kPi * geo::kPi / geo::kMuEarth, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Altitudes, PeriodSweep,
                         ::testing::Values(340.0, 550.0, 570.0, 1150.0,
                                           1325.0));

class FootprintMonotone : public ::testing::TestWithParam<double> {};

TEST_P(FootprintMonotone, HigherAltitudeWiderFootprint) {
  const double elev = GetParam();
  double prev = 0.0;
  for (double alt : {340.0, 550.0, 1150.0}) {
    const double r = footprint_radius_km(alt, elev);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(Elevations, FootprintMonotone,
                         ::testing::Values(0.0, 10.0, 25.0, 40.0, 55.0));

}  // namespace
}  // namespace leodivide::orbit

// Appended: multi-shell constellation tests (orbit/shells.hpp).
#include "leodivide/orbit/shells.hpp"

namespace leodivide::orbit {
namespace {

TEST(MultiShell, Gen1TotalsAndCoverage) {
  const MultiShellConstellation gen1 = starlink_gen1();
  EXPECT_EQ(gen1.shells().size(), 5U);
  // 1584 + 1584 + 720 + 348 + 172 = 4408 authorised Gen1 satellites.
  EXPECT_EQ(gen1.total_sats(), 4408U);
  // Polar shells (97.6 deg retrograde) cover up to 180 - 97.6 = 82.4 deg.
  EXPECT_NEAR(gen1.max_covered_latitude_deg(), 82.4, 1e-9);
}

TEST(MultiShell, DensityIsSumOfShellDensities) {
  MultiShellConstellation mix;
  mix.add_shell({53.0, 550.0, 72, 22, 1});
  mix.add_shell({70.0, 570.0, 36, 20, 1});
  const double at40 = mix.surface_density_per_km2(40.0);
  const double expected =
      surface_density_per_km2(1584, 40.0, 53.0) +
      surface_density_per_km2(720, 40.0, 70.0);
  EXPECT_NEAR(at40, expected, expected * 1e-12);
}

TEST(MultiShell, HighLatitudeOnlyCoveredByHighInclination) {
  const MultiShellConstellation gen1 = starlink_gen1();
  // At 75 deg N only the polar shells contribute.
  const double polar_only =
      surface_density_per_km2(348, 75.0, 97.6) +
      surface_density_per_km2(172, 75.0, 97.6);
  EXPECT_NEAR(gen1.surface_density_per_km2(75.0), polar_only,
              polar_only * 1e-12);
}

TEST(MultiShell, SizeForDensityScalesLinearly) {
  const MultiShellConstellation gen1 = starlink_gen1();
  const double rho = gen1.surface_density_per_km2(36.5);
  // Requiring exactly today's density returns today's fleet.
  EXPECT_NEAR(gen1.size_for_density(rho, 36.5), 4408.0, 1e-6);
  EXPECT_NEAR(gen1.size_for_density(2.0 * rho, 36.5), 8816.0, 1e-6);
}

TEST(MultiShell, SizeForDensityRejectsUncoveredLatitude) {
  MultiShellConstellation mix;
  mix.add_shell({53.0, 550.0, 72, 22, 1});
  EXPECT_THROW((void)mix.size_for_density(1e-4, 60.0), std::invalid_argument);
  EXPECT_THROW((void)mix.size_for_density(0.0, 30.0), std::invalid_argument);
  EXPECT_THROW((void)MultiShellConstellation{}.size_for_density(1e-4, 30.0),
               std::invalid_argument);
}

TEST(MultiShell, LowerInclinationNeedsFewerSatsAtMidLatitudes) {
  // The shell-design ablation's core claim: density at 36.5 deg per
  // satellite is higher for a 43-degree shell than a 53-degree one.
  EXPECT_GT(surface_density_per_km2(1000, 36.5, 43.0),
            surface_density_per_km2(1000, 36.5, 53.0));
}

TEST(MultiShell, AllOrbitsConcatenatesShells) {
  MultiShellConstellation mix;
  mix.add_shell({53.0, 550.0, 4, 3, 1});
  mix.add_shell({70.0, 570.0, 2, 5, 1});
  EXPECT_EQ(mix.all_orbits().size(), 22U);
}

}  // namespace
}  // namespace leodivide::orbit

// Appended: inter-satellite link topology (orbit/isl.hpp).
#include "leodivide/orbit/isl.hpp"

namespace leodivide::orbit {
namespace {

TEST(Isl, AddressRoundTrip) {
  const IslGrid grid(WalkerShell{53.0, 550.0, 8, 5, 1});
  for (std::uint32_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.index_of(grid.address_of(i)), i);
  }
  EXPECT_THROW((void)grid.index_of({8, 0}), std::out_of_range);
  EXPECT_THROW((void)grid.address_of(40), std::out_of_range);
}

TEST(Isl, PlusGridHasFourNeighbors) {
  const IslGrid grid(starlink_shell1());
  const auto n = grid.neighbors(100);
  EXPECT_EQ(n.size(), 4U);
  // Symmetry: every neighbour lists us back.
  for (std::uint32_t x : n) {
    const auto back = grid.neighbors(x);
    EXPECT_NE(std::find(back.begin(), back.end(), 100U), back.end());
  }
}

TEST(Isl, SmallShellsDegradeGracefully) {
  // Two planes: +grid collapses the second inter-plane link.
  const IslGrid grid(WalkerShell{53.0, 550.0, 2, 4, 1});
  EXPECT_EQ(grid.neighbors(0).size(), 3U);
}

TEST(Isl, HopDistanceProperties) {
  const IslGrid grid(WalkerShell{53.0, 550.0, 6, 6, 1});
  EXPECT_EQ(grid.hop_distance(0, 0), 0U);
  // Adjacent satellites are one hop.
  for (std::uint32_t n : grid.neighbors(7)) {
    EXPECT_EQ(grid.hop_distance(7, n), 1U);
  }
  // Symmetric.
  EXPECT_EQ(grid.hop_distance(3, 27), grid.hop_distance(27, 3));
  // Torus diameter bound: planes/2 + per_plane/2.
  for (std::uint32_t b = 0; b < grid.size(); b += 5) {
    EXPECT_LE(grid.hop_distance(0, b), 6U);
  }
}

TEST(Isl, HopsToNearestGateway) {
  const IslGrid grid(WalkerShell{53.0, 550.0, 6, 6, 1});
  const std::vector<std::uint32_t> sources{0, 18};
  const auto hops = grid.hops_to_nearest(sources);
  ASSERT_EQ(hops.size(), grid.size());
  EXPECT_EQ(hops[0], 0U);
  EXPECT_EQ(hops[18], 0U);
  for (std::uint32_t i = 0; i < grid.size(); ++i) {
    EXPECT_LT(hops[i], 7U);  // everything reachable within the diameter
  }
  EXPECT_THROW((void)grid.hops_to_nearest({}), std::invalid_argument);
}

TEST(Isl, IntraPlaneLinkLength) {
  // 22 sats per plane at 550 km: chord of 2*pi/22 on a 6921 km circle.
  const IslGrid grid(starlink_shell1());
  EXPECT_NEAR(grid.intra_plane_link_km(), 1975.0, 15.0);
}

TEST(Isl, PropagationDelays) {
  EXPECT_NEAR(propagation_delay_ms(299.792458), 1.0, 1e-12);
  // Bent pipe with both slants at 600 km: ~4 ms one way.
  EXPECT_NEAR(bent_pipe_delay_ms(600.0, 600.0), 4.0, 0.01);
  EXPECT_THROW((void)propagation_delay_ms(-1.0), std::invalid_argument);
}

TEST(Isl, GeoComparisonFavorsLeo) {
  // The motivation in Section 2.1: GEO at 35,786 km vs LEO at ~600 km.
  const double leo = bent_pipe_delay_ms(600.0, 600.0);
  const double geo_delay = bent_pipe_delay_ms(35786.0, 35786.0);
  EXPECT_GT(geo_delay / leo, 50.0);
}

}  // namespace
}  // namespace leodivide::orbit

// Appended: TLE ephemeris I/O (orbit/tle.hpp).
#include <sstream>

#include "leodivide/orbit/tle.hpp"

namespace leodivide::orbit {
namespace {

// The canonical ISS element set used in TLE format documentation.
const char* kIssLine1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
const char* kIssLine2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

TEST(TleChecksum, MatchesKnownLines) {
  EXPECT_EQ(tle_checksum(std::string(kIssLine1).substr(0, 68)), 7);
  EXPECT_EQ(tle_checksum(std::string(kIssLine2).substr(0, 68)), 7);
}

TEST(TleParse, IssFields) {
  const Tle tle = parse_tle(kIssLine1, kIssLine2, "ISS (ZARYA)");
  EXPECT_EQ(tle.name, "ISS (ZARYA)");
  EXPECT_EQ(tle.catalog_number, 25544U);
  EXPECT_NEAR(tle.inclination_deg, 51.6416, 1e-9);
  EXPECT_NEAR(tle.raan_deg, 247.4627, 1e-9);
  EXPECT_NEAR(tle.eccentricity, 0.0006703, 1e-12);
  EXPECT_NEAR(tle.mean_motion_rev_day, 15.72125391, 1e-7);
  // ISS altitude ~340-360 km at that epoch.
  EXPECT_NEAR(tle.altitude_km(), 350.0, 15.0);
}

TEST(TleParse, RejectsCorruptedLines) {
  std::string bad1 = kIssLine1;
  bad1[20] = '9';  // corrupt a digit -> checksum fails
  EXPECT_THROW((void)parse_tle(bad1, kIssLine2), std::invalid_argument);
  EXPECT_THROW((void)parse_tle(kIssLine2, kIssLine1),
               std::invalid_argument);  // swapped line numbers
  EXPECT_THROW((void)parse_tle("1 short", kIssLine2), std::invalid_argument);
}

TEST(TleParse, RejectsMismatchedCatalogNumbers) {
  // Change line 2's catalog number and fix its checksum.
  std::string l2 = kIssLine2;
  l2[6] = '5';  // 25544 -> 25545
  l2.resize(68);
  l2.push_back(static_cast<char>('0' + tle_checksum(l2)));
  EXPECT_THROW((void)parse_tle(kIssLine1, l2), std::invalid_argument);
}

TEST(TleRoundTrip, GeneratedOrbitSurvives) {
  const CircularOrbit orbit{550.0, geo::deg2rad(53.0),
                            geo::deg2rad(123.4), geo::deg2rad(77.0)};
  const std::string text = to_tle(orbit, 44444, "STARLINK-TEST");
  std::istringstream in(text);
  const auto catalog = read_tle_catalog(in);
  ASSERT_EQ(catalog.size(), 1U);
  EXPECT_EQ(catalog[0].name, "STARLINK-TEST");
  EXPECT_EQ(catalog[0].catalog_number, 44444U);
  const CircularOrbit back = to_circular_orbit(catalog[0]);
  EXPECT_NEAR(back.altitude_km, 550.0, 0.5);
  EXPECT_NEAR(back.inclination_rad, orbit.inclination_rad, 1e-4);
  EXPECT_NEAR(back.raan_rad, orbit.raan_rad, 1e-4);
  EXPECT_NEAR(back.phase_rad, orbit.phase_rad, 1e-4);
}

TEST(TleCatalog, ReadsWholeConstellations) {
  const WalkerShell shell{53.0, 550.0, 4, 3, 1};
  std::ostringstream out;
  std::uint32_t n = 10000;
  for (const auto& orbit : make_constellation(shell)) {
    out << to_tle(orbit, n++);
  }
  std::istringstream in(out.str());
  const auto catalog = read_tle_catalog(in);
  ASSERT_EQ(catalog.size(), 12U);
  for (const auto& tle : catalog) {
    EXPECT_NEAR(tle.inclination_deg, 53.0, 1e-3);
    EXPECT_NEAR(tle.altitude_km(), 550.0, 1.0);
  }
}

TEST(TleCatalog, RejectsDanglingRecords) {
  std::istringstream in(std::string(kIssLine1) + "\n");
  EXPECT_THROW((void)read_tle_catalog(in), std::invalid_argument);
}

TEST(TleConvert, RejectsEccentricOrbits) {
  Tle tle;
  tle.eccentricity = 0.2;
  tle.mean_motion_rev_day = 15.0;
  EXPECT_THROW((void)to_circular_orbit(tle), std::invalid_argument);
}

}  // namespace
}  // namespace leodivide::orbit

// Appended: the per-epoch satellite spatial index (orbit/visindex.hpp).
#include <algorithm>

#include "leodivide/orbit/visindex.hpp"
#include "leodivide/stats/rng.hpp"

namespace leodivide::orbit {
namespace {

std::vector<SatState> shell_states(const WalkerShell& shell, double t_s) {
  return propagate_all(make_constellation(shell), t_s);
}

TEST(VisIndex, IndexesEverySatelliteExactlyOnce) {
  const auto states = shell_states({53.0, 550.0, 24, 18, 5}, 777.0);
  VisIndex index;
  index.build(states, 0.3);
  EXPECT_EQ(index.sat_count(), states.size());
  // Querying every bucket's worth of sky must see each satellite once: walk
  // a dense grid of cells and union the candidates.
  std::vector<std::uint32_t> all, candidates;
  for (double lat = -87.5; lat < 90.0; lat += 5.0) {
    for (double lon = -177.5; lon < 180.0; lon += 5.0) {
      index.query({lat, lon}, candidates);
      all.insert(all.end(), candidates.begin(), candidates.end());
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), states.size());
}

TEST(VisIndex, CandidatesAreSortedUniqueSupersets) {
  stats::Pcg32 rng(42);
  const auto states = shell_states({70.0, 800.0, 16, 14, 3}, 505.0);
  const double psi_rad = 0.25;
  const double cos_psi = std::cos(psi_rad);
  VisIndex index;
  index.build(states, psi_rad);
  std::vector<std::uint32_t> candidates;
  for (int i = 0; i < 300; ++i) {
    const geo::GeoPoint cell{-90.0 + rng.next_double() * 180.0,
                             -180.0 + rng.next_double() * 360.0};
    index.query(cell, candidates);
    ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    ASSERT_EQ(std::adjacent_find(candidates.begin(), candidates.end()),
              candidates.end());
    const geo::Vec3 cu =
        geo::spherical_to_cartesian(cell, geo::kEarthRadiusKm).unit();
    for (std::uint32_t si = 0; si < states.size(); ++si) {
      if (cu.dot(states[si].ecef_km.unit()) >= cos_psi) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       si))
            << "visible sat " << si << " missing for cell " << cell.lat_deg
            << "," << cell.lon_deg;
      }
    }
  }
}

TEST(VisIndex, PolarCellSeesHighLatitudeSatellites) {
  // A pole-centred cap spans all longitudes; every satellite within psi in
  // latitude must be a candidate regardless of its longitude.
  std::vector<SatState> states;
  for (double lon = -180.0; lon < 180.0; lon += 30.0) {
    SatState s;
    s.subpoint = {80.0, lon};
    s.ecef_km =
        geo::spherical_to_cartesian(s.subpoint, geo::kEarthRadiusKm + 550.0);
    states.push_back(s);
  }
  VisIndex index;
  index.build(states, geo::deg2rad(15.0));
  std::vector<std::uint32_t> candidates;
  index.query({88.0, 13.0}, candidates);
  EXPECT_EQ(candidates.size(), states.size());
}

TEST(VisIndex, DateLineWindowWrapsBothWays) {
  std::vector<SatState> states;
  for (double lon : {179.5, -179.5, 170.0, -170.0, 0.0}) {
    SatState s;
    s.subpoint = {10.0, lon};
    s.ecef_km =
        geo::spherical_to_cartesian(s.subpoint, geo::kEarthRadiusKm + 550.0);
    states.push_back(s);
  }
  VisIndex index;
  index.build(states, geo::deg2rad(12.0));
  std::vector<std::uint32_t> candidates;
  index.query({10.0, 179.9}, candidates);
  // Both near-date-line satellites (indices 0 and 1) must be candidates;
  // the one at lon 0 must not.
  EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), 0U));
  EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), 1U));
  EXPECT_FALSE(std::binary_search(candidates.begin(), candidates.end(), 4U));
}

TEST(VisIndex, RebuildReusesStorageAcrossEpochs) {
  const auto orbits = make_constellation(WalkerShell{53.0, 550.0, 12, 10, 1});
  VisIndex index;
  std::vector<SatState> states;
  std::vector<std::uint32_t> candidates;
  for (int e = 0; e < 5; ++e) {
    propagate_all(orbits, 60.0 * e, states);
    index.build(states, 0.3);
    EXPECT_EQ(index.sat_count(), states.size());
    index.query({45.0, -100.0}, candidates);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  }
}

TEST(PropagateBatch, OutParamOverloadMatchesReturningOverload) {
  const auto orbits = make_constellation(WalkerShell{53.0, 550.0, 8, 6, 1});
  std::vector<SatState> reused;
  for (double t : {0.0, 93.5, 4711.0}) {
    propagate_all(orbits, t, reused);
    const auto fresh = propagate_all(orbits, t);
    ASSERT_EQ(reused.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(reused[i].ecef_km.x, fresh[i].ecef_km.x);
      EXPECT_EQ(reused[i].ecef_km.y, fresh[i].ecef_km.y);
      EXPECT_EQ(reused[i].ecef_km.z, fresh[i].ecef_km.z);
      EXPECT_EQ(reused[i].subpoint.lat_deg, fresh[i].subpoint.lat_deg);
      EXPECT_EQ(reused[i].subpoint.lon_deg, fresh[i].subpoint.lon_deg);
    }
  }
}

}  // namespace
}  // namespace leodivide::orbit
