// Unit tests for leodivide::demand — locations, counties, datasets, the
// calibrated synthetic generator, and aggregation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "leodivide/demand/aggregate.hpp"
#include "leodivide/demand/calibration.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/geo/us_outline.hpp"
#include "leodivide/stats/percentile.hpp"
#include "leodivide/stats/rng.hpp"

namespace leodivide::demand {
namespace {

// Shared full-scale profile: generated once for the whole test binary (the
// generator is deterministic, so this is safe and fast).
const DemandProfile& national_profile() {
  static const DemandProfile profile =
      SyntheticGenerator(demand::GeneratorConfig{}).generate_profile();
  return profile;
}

// --------------------------------------------------------------- location ----

TEST(Location, ReliableBroadbandThresholds) {
  EXPECT_TRUE(is_reliable({100.0, 20.0}));
  EXPECT_TRUE(is_reliable({940.0, 35.0}));
  EXPECT_FALSE(is_reliable({99.9, 20.0}));
  EXPECT_FALSE(is_reliable({100.0, 19.9}));
  EXPECT_FALSE(is_reliable({25.0, 3.0}));
}

TEST(Location, UnderservedFollowsBestOffer) {
  Location l;
  l.best_offer = {25.0, 3.0};
  EXPECT_TRUE(l.underserved());
  l.best_offer = {300.0, 30.0};
  EXPECT_FALSE(l.underserved());
}

TEST(Location, DemandIsHundredMegabits) {
  EXPECT_DOUBLE_EQ(location_demand_gbps(), 0.1);
}

TEST(Location, TechnologyStringsRoundTrip) {
  for (Technology t : {Technology::kNone, Technology::kDsl, Technology::kCable,
                       Technology::kFiber, Technology::kFixedWireless,
                       Technology::kGeoSatellite}) {
    EXPECT_EQ(technology_from_string(to_string(t)), t);
  }
  EXPECT_THROW(technology_from_string("carrier-pigeon"),
               std::invalid_argument);
}

// ----------------------------------------------------------------- county ----

TEST(CountyTableTest, AddFindAndTotals) {
  CountyTable table;
  const auto i = table.add({"90001", {36.0, -90.0}, 50000.0, 100});
  const auto j = table.add({"90002", {37.0, -91.0}, 60000.0, 200});
  EXPECT_EQ(table.size(), 2U);
  EXPECT_EQ(table.find("90002"), static_cast<std::int64_t>(j));
  EXPECT_EQ(table.find("99999"), -1);
  EXPECT_EQ(table.at(i).fips, "90001");
  EXPECT_EQ(table.total_underserved(), 300U);
}

TEST(CountyTableTest, RejectsDuplicatesAndBadIndex) {
  CountyTable table;
  table.add({"90001", {}, 1.0, 0});
  EXPECT_THROW(table.add({"90001", {}, 2.0, 0}), std::invalid_argument);
  EXPECT_THROW(table.at(5), std::out_of_range);
}

// ---------------------------------------------------------------- dataset ----

TEST(CellDemandTest, DemandScalesWithLocations) {
  CellDemand cd;
  cd.underserved = 5998;
  EXPECT_NEAR(cd.demand_gbps(), 599.8, 1e-9);
}

TEST(DemandProfileTest, RejectsBadCountyIndex) {
  CountyTable counties;
  counties.add({"90001", {}, 1.0, 0});
  std::vector<CellDemand> cells(1);
  cells[0].county_index = 7;
  EXPECT_THROW(DemandProfile(std::move(cells), std::move(counties)),
               std::invalid_argument);
}

TEST(DemandProfileTest, OrderingAndPeak) {
  CountyTable counties;
  counties.add({"90001", {}, 1.0, 0});
  std::vector<CellDemand> cells(3);
  cells[0].cell = hex::CellId(5, {0, 0});
  cells[0].underserved = 10;
  cells[1].cell = hex::CellId(5, {1, 0});
  cells[1].underserved = 30;
  cells[2].cell = hex::CellId(5, {2, 0});
  cells[2].underserved = 20;
  const DemandProfile profile(std::move(cells), std::move(counties));
  EXPECT_EQ(profile.peak_cell_count(), 30U);
  EXPECT_EQ(profile.total_locations(), 60U);
  const auto order = profile.cells_by_count_desc();
  EXPECT_EQ(profile.cells()[order[0]].underserved, 30U);
  EXPECT_EQ(profile.cells()[order[2]].underserved, 10U);
}

TEST(DemandProfileTest, CsvRoundTrip) {
  const SyntheticGenerator gen({.seed = 7, .scale = 0.002});
  const DemandProfile profile = gen.generate_profile();
  std::ostringstream cells_out, counties_out;
  profile.save_csv(cells_out, counties_out);
  std::istringstream cells_in(cells_out.str()), counties_in(counties_out.str());
  const DemandProfile back = DemandProfile::load_csv(cells_in, counties_in);
  ASSERT_EQ(back.cell_count(), profile.cell_count());
  EXPECT_EQ(back.total_locations(), profile.total_locations());
  EXPECT_EQ(back.counties().size(), profile.counties().size());
  for (std::size_t i = 0; i < profile.cell_count(); ++i) {
    EXPECT_EQ(back.cells()[i].cell, profile.cells()[i].cell);
    EXPECT_EQ(back.cells()[i].underserved, profile.cells()[i].underserved);
  }
}

TEST(DemandDatasetTest, CsvRoundTrip) {
  const SyntheticGenerator gen({.seed = 7, .scale = 0.002});
  const DemandDataset data =
      gen.expand_locations(gen.generate_profile(), 0.05);
  ASSERT_GT(data.size(), 0U);
  std::ostringstream loc_out, county_out;
  data.save_csv(loc_out, county_out);
  std::istringstream loc_in(loc_out.str()), county_in(county_out.str());
  const DemandDataset back = DemandDataset::load_csv(loc_in, county_in);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(back.underserved_count(), data.underserved_count());
  EXPECT_EQ(back.locations()[0].technology, data.locations()[0].technology);
}

// ------------------------------------------------------------- calibration ----

TEST(Calibration, PaperConstantsAreConsistent) {
  // The planted peaks sum to the published 22,428 and top out at 5,998.
  std::uint64_t sum = 0;
  for (std::uint32_t c : paper::kPlantedPeakCells) sum += c;
  EXPECT_EQ(sum, paper::kPeakCellLocationSum);
  EXPECT_EQ(*std::max_element(paper::kPlantedPeakCells.begin(),
                              paper::kPlantedPeakCells.end()),
            static_cast<std::uint32_t>(paper::kPerCellMax));
  // 22,428 is 0.48% of the total (the paper's own derivation).
  EXPECT_NEAR(static_cast<double>(paper::kPeakCellLocationSum) /
                  static_cast<double>(paper::kTotalLocations),
              0.0048, 1e-4);
}

TEST(Calibration, CellQuantilePinsPaperPercentiles) {
  const auto q = paper::cell_count_quantile();
  EXPECT_NEAR(q(0.90), paper::kPerCellP90, 1e-6);
  EXPECT_NEAR(q(0.99), paper::kPerCellP99, 1e-6);
  EXPECT_NEAR(q(0.36), 62.0, 1e-6);
  // No generated cell may exceed the 20:1 limit of 3465 locations.
  EXPECT_LT(q(1.0), 3465.0);
}

TEST(Calibration, MaxLocationsAtOversub) {
  EXPECT_EQ(paper::max_locations_at_oversub(17.325, 20.0), 3465U);
  EXPECT_EQ(paper::max_locations_at_oversub(17.3, 20.0), 3460U);
  EXPECT_THROW(paper::max_locations_at_oversub(0.0, 20.0),
               std::invalid_argument);
}

TEST(Calibration, BindingLatitudesReproduceTable2Constants) {
  const double area = hex::cell_area_km2(5);
  const double lat_full =
      paper::binding_latitude_for_k(paper::kKFullService, area);
  const double lat_cap = paper::binding_latitude_for_k(paper::kK20To1, area);
  // Both binding cells sit in the mid-30s latitudes, full-service slightly
  // north of the 20:1 cell (larger K = further from the inclination).
  EXPECT_NEAR(lat_full, 37.0, 0.5);
  EXPECT_NEAR(lat_cap, 36.4, 0.5);
  EXPECT_GT(lat_full, lat_cap);
}

TEST(Calibration, BindingLatitudeRejectsUnreachableK) {
  EXPECT_THROW(paper::binding_latitude_for_k(1e12, 252.9),
               std::domain_error);
  EXPECT_THROW(paper::binding_latitude_for_k(-1.0, 252.9),
               std::invalid_argument);
}

TEST(Calibration, IncomeQuantilePinsAffordabilityAnchors) {
  const auto q = paper::income_quantile();
  EXPECT_NEAR(q(paper::kFractionBelowLifelineThreshold), 66450.0, 1.0);
  EXPECT_NEAR(q(paper::kFractionBelowStarlinkThreshold), 72000.0, 1.0);
  EXPECT_NEAR(q(0.0), paper::kMinCountyIncomeUsd, 1.0);
  // Almost no mass below the $30k Spectrum threshold.
  EXPECT_LE(q.cdf(29999.0), 1e-4);
}

// --------------------------------------------------------------- generator ----

TEST(Generator, NationalTotalsMatchPaper) {
  const DemandProfile& p = national_profile();
  EXPECT_EQ(p.total_locations(), paper::kTotalLocations);
  EXPECT_EQ(p.peak_cell_count(), 5998U);
}

TEST(Generator, NationalPercentilesMatchFig1) {
  const auto counts = national_profile().counts_as_doubles();
  EXPECT_NEAR(stats::percentile(counts, 90.0), 552.0, 15.0);
  EXPECT_NEAR(stats::percentile(counts, 99.0), 1437.0, 40.0);
}

TEST(Generator, ExactlyFiveCellsExceedTheCap) {
  const DemandProfile& p = national_profile();
  std::size_t above = 0;
  std::uint64_t above_sum = 0;
  for (const auto& c : p.cells()) {
    if (c.underserved > 3465) {
      ++above;
      above_sum += c.underserved;
    }
  }
  EXPECT_EQ(above, 5U);
  EXPECT_EQ(above_sum, paper::kPeakCellLocationSum);
}

TEST(Generator, HeavyCellsRespectLatitudeFloor) {
  const GeneratorConfig config;
  for (const auto& c : national_profile().cells()) {
    if (c.underserved > 650 && c.underserved <= 3465) {
      EXPECT_GE(c.center.lat_deg, config.heavy_cell_min_lat_deg)
          << "cell with " << c.underserved << " locations";
    }
  }
}

TEST(Generator, PlantedBindingCellsSitAtCalibratedLatitudes) {
  const auto targets = SyntheticGenerator::planted_targets(5);
  const DemandProfile& p = national_profile();
  // The 5998 cell sits at the full-service binding latitude target.
  for (const auto& c : p.cells()) {
    if (c.underserved == 5998) {
      EXPECT_NEAR(c.center.lat_deg, targets[0].lat_deg, 0.15);
    }
    if (c.underserved == 4580) {
      EXPECT_NEAR(c.center.lat_deg, targets[1].lat_deg, 0.15);
    }
  }
}

TEST(Generator, IsDeterministic) {
  const SyntheticGenerator a({.seed = 11, .scale = 0.005});
  const SyntheticGenerator b({.seed = 11, .scale = 0.005});
  const DemandProfile pa = a.generate_profile();
  const DemandProfile pb = b.generate_profile();
  ASSERT_EQ(pa.cell_count(), pb.cell_count());
  for (std::size_t i = 0; i < pa.cell_count(); ++i) {
    EXPECT_EQ(pa.cells()[i].cell, pb.cells()[i].cell);
    EXPECT_EQ(pa.cells()[i].underserved, pb.cells()[i].underserved);
  }
}

TEST(Generator, DifferentSeedsChangeGeography) {
  const DemandProfile pa =
      SyntheticGenerator({.seed = 1, .scale = 0.005}).generate_profile();
  const DemandProfile pb =
      SyntheticGenerator({.seed = 2, .scale = 0.005}).generate_profile();
  ASSERT_EQ(pa.cell_count(), pb.cell_count());
  std::size_t same = 0;
  for (std::size_t i = 0; i < pa.cell_count(); ++i) {
    if (pa.cells()[i].cell == pb.cells()[i].cell) ++same;
  }
  EXPECT_LT(same, pa.cell_count() / 2);
}

TEST(Generator, ScaleShrinksTotalsProportionally) {
  const DemandProfile p =
      SyntheticGenerator({.scale = 0.01}).generate_profile();
  EXPECT_NEAR(static_cast<double>(p.total_locations()),
              0.01 * static_cast<double>(paper::kTotalLocations), 5.0);
}

TEST(Generator, SmallScaleSkipsPlanting) {
  // 0.5% of the national total is ~23k locations, close to the planted sum;
  // planting is suppressed below 2x the planted mass.
  const DemandProfile p =
      SyntheticGenerator({.scale = 0.005}).generate_profile();
  EXPECT_LT(p.peak_cell_count(), 3465U);
}

TEST(Generator, CellsAreInsideConus) {
  for (const auto& c : national_profile().cells()) {
    EXPECT_TRUE(geo::conus_outline().contains(c.center))
        << c.center.lat_deg << "," << c.center.lon_deg;
  }
}

TEST(Generator, CountiesCoverAllCells) {
  const DemandProfile& p = national_profile();
  std::uint64_t by_county = 0;
  for (const auto& county : p.counties().all()) {
    by_county += county.underserved_locations;
  }
  EXPECT_EQ(by_county, p.total_locations());
  for (const auto& c : p.cells()) {
    EXPECT_LT(c.county_index, p.counties().size());
  }
}

TEST(Generator, CountyIncomesAreWithinCalibratedRange) {
  for (const auto& county : national_profile().counties().all()) {
    EXPECT_GE(county.median_income_usd, paper::kMinCountyIncomeUsd - 1.0);
    EXPECT_LE(county.median_income_usd, paper::kMaxCountyIncomeUsd + 1.0);
  }
}

TEST(Generator, RejectsBadConfig) {
  EXPECT_THROW(SyntheticGenerator({.scale = 0.0}), std::invalid_argument);
  EXPECT_THROW(SyntheticGenerator({.scale = 1.5}), std::invalid_argument);
  EXPECT_THROW(SyntheticGenerator({.resolution = 3, .county_resolution = 3}),
               std::invalid_argument);
}

TEST(Generator, ExpandLocationsMatchesProfileCounts) {
  const SyntheticGenerator gen({.seed = 5, .scale = 0.002});
  const DemandProfile profile = gen.generate_profile();
  const DemandDataset data = gen.expand_locations(profile);
  EXPECT_EQ(data.size(), profile.total_locations());
  // Every expanded location is un(der)served by construction.
  EXPECT_EQ(data.underserved_count(), data.size());
}

TEST(Generator, ExpandRejectsBadFraction) {
  const SyntheticGenerator gen({.seed = 5, .scale = 0.002});
  const DemandProfile profile = gen.generate_profile();
  EXPECT_THROW(gen.expand_locations(profile, 0.0), std::invalid_argument);
  EXPECT_THROW(gen.expand_locations(profile, 1.1), std::invalid_argument);
}

// --------------------------------------------------------------- aggregate ----

TEST(Aggregate, RoundTripsGeneratorProfile) {
  // Expanding a profile to locations and re-aggregating must reproduce the
  // per-cell counts exactly (locations are scattered within their cell).
  const SyntheticGenerator gen({.seed = 3, .scale = 0.002});
  const DemandProfile profile = gen.generate_profile();
  const DemandDataset data = gen.expand_locations(profile);
  const hex::HexGrid grid;
  const DemandProfile back = aggregate(data, grid, 5);
  EXPECT_EQ(back.total_locations(), profile.total_locations());
  EXPECT_EQ(back.cell_count(), profile.cell_count());
  EXPECT_EQ(back.peak_cell_count(), profile.peak_cell_count());
}

TEST(Aggregate, ServedLocationsAreExcluded) {
  CountyTable counties;
  counties.add({"90001", {39.0, -98.0}, 50000.0, 0});
  std::vector<Location> locs(3);
  locs[0].position = {39.0, -98.0};
  locs[0].best_offer = {25.0, 3.0};  // underserved
  locs[1].position = {39.0, -98.0};
  locs[1].best_offer = {300.0, 30.0};  // served
  locs[2].position = {39.0, -98.0};
  locs[2].best_offer = {0.0, 0.0};  // underserved
  const DemandDataset data(std::move(locs), std::move(counties));
  const DemandProfile profile = aggregate(data, hex::HexGrid(), 5);
  EXPECT_EQ(profile.total_locations(), 2U);
}

TEST(Aggregate, CoarserResolutionMergesCells) {
  // A dense cluster of locations: at a coarser resolution its cells must
  // merge. (Sparse national scatter need not shrink, because this grid's
  // aperture-4 hierarchy is center-based rather than strictly nested.)
  CountyTable counties;
  counties.add({"90001", {39.0, -98.0}, 50000.0, 0});
  std::vector<Location> locs;
  stats::Pcg32 rng(4);
  for (int i = 0; i < 2000; ++i) {
    Location l;
    l.id = static_cast<std::uint64_t>(i);
    l.position = {38.5 + rng.next_double(), -98.5 + rng.next_double()};
    l.best_offer = {25.0, 3.0};
    locs.push_back(l);
  }
  const DemandDataset data(std::move(locs), std::move(counties));
  const hex::HexGrid grid;
  const DemandProfile fine = aggregate(data, grid, 5);
  const DemandProfile coarse = aggregate(data, grid, 3);
  EXPECT_LT(coarse.cell_count(), fine.cell_count());
  EXPECT_EQ(coarse.total_locations(), fine.total_locations());
}

}  // namespace
}  // namespace leodivide::demand

// Appended: parametric region generator (demand/region.hpp).
#include "leodivide/demand/region.hpp"

namespace leodivide::demand {
namespace {

TEST(Region, GeneratesExactTotals) {
  for (const RegionSpec& spec :
       {dense_compact_region(), sparse_expansive_region(),
        temperate_mixed_region()}) {
    const DemandProfile profile = RegionGenerator(spec).generate();
    EXPECT_EQ(profile.total_locations(), spec.total_locations) << spec.name;
    EXPECT_GT(profile.cell_count(), 0U);
    EXPECT_GT(profile.counties().size(), 0U);
  }
}

TEST(Region, CellsLieInsideOutline) {
  const RegionSpec spec = temperate_mixed_region();
  const DemandProfile profile = RegionGenerator(spec).generate();
  for (const auto& cell : profile.cells()) {
    EXPECT_TRUE(spec.outline.contains(cell.center));
  }
}

TEST(Region, IsDeterministicPerSeed) {
  const RegionSpec spec = dense_compact_region();
  const DemandProfile a = RegionGenerator(spec).generate();
  const DemandProfile b = RegionGenerator(spec).generate();
  ASSERT_EQ(a.cell_count(), b.cell_count());
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    EXPECT_EQ(a.cells()[i].cell, b.cells()[i].cell);
    EXPECT_EQ(a.cells()[i].underserved, b.cells()[i].underserved);
  }
}

TEST(Region, CountyWeightsSumToTotal) {
  const DemandProfile profile =
      RegionGenerator(sparse_expansive_region()).generate();
  std::uint64_t sum = 0;
  for (const auto& county : profile.counties().all()) {
    sum += county.underserved_locations;
  }
  EXPECT_EQ(sum, profile.total_locations());
}

TEST(Region, IncomesFollowSpecRange) {
  const RegionSpec spec = dense_compact_region();
  const DemandProfile profile = RegionGenerator(spec).generate();
  for (const auto& county : profile.counties().all()) {
    EXPECT_GE(county.median_income_usd, spec.income_quantile(0.0) - 1.0);
    EXPECT_LE(county.median_income_usd, spec.income_quantile(1.0) + 1.0);
  }
}

TEST(Region, RejectsBadSpecs) {
  RegionSpec zero = temperate_mixed_region();
  zero.total_locations = 0;
  EXPECT_THROW(RegionGenerator{zero}, std::invalid_argument);
  RegionSpec bad_res = temperate_mixed_region();
  bad_res.county_resolution = bad_res.resolution;
  EXPECT_THROW(RegionGenerator{bad_res}, std::invalid_argument);
}

TEST(Region, TinyOutlineStillGenerates) {
  RegionSpec spec = temperate_mixed_region();
  spec.outline = geo::Polygon{std::vector<geo::GeoPoint>{
      {45.0, 8.0}, {45.6, 8.0}, {45.6, 8.8}, {45.0, 8.8}}};
  spec.total_locations = 5000;
  const DemandProfile profile = RegionGenerator(spec).generate();
  EXPECT_EQ(profile.total_locations(), 5000U);
}

}  // namespace
}  // namespace leodivide::demand

// Appended: diurnal activity model (demand/diurnal.hpp).
#include "leodivide/demand/diurnal.hpp"

namespace leodivide::demand {
namespace {

TEST(Diurnal, ResidentialCurveMatchesFccBenchmark) {
  const DiurnalCurve curve = residential_evening_peak();
  // Busy hour at 21:00 with 5% simultaneous activity -> 20:1.
  EXPECT_EQ(curve.busy_hour(), 21U);
  EXPECT_DOUBLE_EQ(curve.busy_hour_activity(), 0.05);
  EXPECT_DOUBLE_EQ(curve.max_acceptable_oversubscription(), 20.0);
}

TEST(Diurnal, ActivityInterpolatesAndWraps) {
  const DiurnalCurve curve = residential_evening_peak();
  EXPECT_DOUBLE_EQ(curve.activity(21.0), 0.05);
  // Halfway between hour 21 (0.050) and 22 (0.044).
  EXPECT_NEAR(curve.activity(21.5), 0.047, 1e-12);
  // Wraparound: 23:30 interpolates toward hour 0.
  EXPECT_NEAR(curve.activity(23.5), (0.028 + 0.012) / 2.0, 1e-12);
  EXPECT_NEAR(curve.activity(-0.5), curve.activity(23.5), 1e-12);
  EXPECT_NEAR(curve.activity(45.0), curve.activity(21.0), 1e-12);
}

TEST(Diurnal, MeanBelowPeak) {
  const DiurnalCurve curve = residential_evening_peak();
  EXPECT_LT(curve.mean_activity(), curve.busy_hour_activity());
  EXPECT_GT(curve.mean_activity(), 0.0);
}

TEST(Diurnal, PeakActivityBoundsEveryHour) {
  const DiurnalCurve curve = residential_evening_peak();
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_LE(curve.activity(h), curve.busy_hour_activity() + 1e-12);
  }
}

TEST(Diurnal, RejectsDegenerateCurves) {
  std::array<double, 24> zeros{};
  EXPECT_THROW(DiurnalCurve{zeros}, std::invalid_argument);
  std::array<double, 24> bad{};
  bad[3] = 1.5;
  EXPECT_THROW(DiurnalCurve{bad}, std::invalid_argument);
}

TEST(Diurnal, FlatCurveGivesUniformOversub) {
  std::array<double, 24> flat{};
  flat.fill(0.1);
  const DiurnalCurve curve(flat);
  EXPECT_DOUBLE_EQ(curve.max_acceptable_oversubscription(), 10.0);
  EXPECT_DOUBLE_EQ(curve.mean_activity(), 0.1);
}

}  // namespace
}  // namespace leodivide::demand

// Appended: GeoJSON export (demand/geojson.hpp).
#include <sstream>

#include "leodivide/demand/geojson.hpp"

namespace leodivide::demand {
namespace {

TEST(GeoJson, EmitsOneFeaturePerCell) {
  const SyntheticGenerator gen({.seed = 7, .scale = 0.002});
  const DemandProfile profile = gen.generate_profile();
  std::ostringstream out;
  write_geojson(out, profile, hex::HexGrid());
  const std::string s = out.str();
  std::size_t features = 0;
  for (std::size_t pos = 0;
       (pos = s.find("\"Feature\"", pos)) != std::string::npos; ++pos) {
    ++features;
  }
  EXPECT_EQ(features, profile.cell_count());
  EXPECT_NE(s.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(s.find("\"underserved\""), std::string::npos);
  EXPECT_NE(s.find("\"median_income_usd\""), std::string::npos);
}

TEST(GeoJson, MinLocationsFilters) {
  const SyntheticGenerator gen({.seed = 7, .scale = 0.002});
  const DemandProfile profile = gen.generate_profile();
  std::ostringstream all_out, some_out;
  write_geojson(all_out, profile, hex::HexGrid(), 0);
  write_geojson(some_out, profile, hex::HexGrid(), 500);
  EXPECT_GT(all_out.str().size(), some_out.str().size());
}

TEST(GeoJson, RingsAreClosedSevenVertexPolygons) {
  // Hexagon boundary + closing vertex = 7 coordinate pairs per ring.
  CountyTable counties;
  counties.add({"90001", {39.0, -98.0}, 50000.0, 10});
  std::vector<CellDemand> cells(1);
  const hex::HexGrid grid;
  cells[0].cell = grid.cell_of({39.0, -98.0}, 5);
  cells[0].center = grid.center_of(cells[0].cell);
  cells[0].underserved = 10;
  const DemandProfile profile(std::move(cells), std::move(counties));
  std::ostringstream out;
  write_geojson(out, profile, grid);
  const std::string s = out.str();
  // Count coordinate pairs "[-9..." inside the single ring: 7 closing
  // brackets pairs appear as "],[" separators -> 6 separators + ends.
  std::size_t pairs = 0;
  for (std::size_t pos = 0;
       (pos = s.find("],[", pos)) != std::string::npos; ++pos) {
    ++pairs;
  }
  EXPECT_EQ(pairs, 6U);
}

}  // namespace
}  // namespace leodivide::demand

// Appended: FCC BDC ingestion (demand/bdc.hpp).
#include "leodivide/demand/bdc.hpp"

namespace leodivide::demand {
namespace {

constexpr const char* kAvailabilityCsv =
    "frn,provider_id,brand_name,location_id,technology,"
    "max_advertised_download_speed,max_advertised_upload_speed,"
    "low_latency,business_residential_code,state_usps\n"
    "0001,100,AcmeFiber,1001,50,1000,1000,1,R,KS\n"
    "0002,200,RuralDSL,1002,10,25,3,1,R,KS\n"
    "0003,300,SkyGeo,1002,60,100,20,0,R,KS\n"       // GEO: not low latency
    "0002,200,RuralDSL,1003,10,10,1,1,R,KS\n"
    "0004,400,WispCo,1003,71,50,10,1,R,KS\n"         // better than the DSL
    "0005,500,CableCo,1004,40,300,30,1,R,KS\n";

constexpr const char* kFabricCsv =
    "location_id,latitude,longitude,unit_count\n"
    "1001,39.10,-98.10,1\n"
    "1002,39.20,-98.20,1\n"
    "1003,39.30,-98.30,1\n";  // 1004 deliberately missing

TEST(Bdc, TechnologyCodeMapping) {
  EXPECT_EQ(technology_from_bdc_code(10), Technology::kDsl);
  EXPECT_EQ(technology_from_bdc_code(40), Technology::kCable);
  EXPECT_EQ(technology_from_bdc_code(50), Technology::kFiber);
  EXPECT_EQ(technology_from_bdc_code(60), Technology::kGeoSatellite);
  EXPECT_EQ(technology_from_bdc_code(71), Technology::kFixedWireless);
  EXPECT_EQ(technology_from_bdc_code(999), Technology::kNone);
}

TEST(Bdc, ParsesAvailabilityWithColumnDetection) {
  std::istringstream in(kAvailabilityCsv);
  const auto records = read_bdc_availability(in);
  ASSERT_EQ(records.size(), 6U);
  EXPECT_EQ(records[0].location_id, 1001U);
  EXPECT_EQ(records[0].technology_code, 50);
  EXPECT_DOUBLE_EQ(records[0].down_mbps, 1000.0);
  EXPECT_FALSE(records[2].low_latency);
  EXPECT_EQ(records[5].state, "KS");
}

TEST(Bdc, RejectsMissingColumns) {
  std::istringstream in("a,b,c\n1,2,3\n");
  EXPECT_THROW((void)read_bdc_availability(in), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW((void)read_bdc_availability(empty), std::runtime_error);
}

TEST(Bdc, FabricParsing) {
  std::istringstream in(kFabricCsv);
  const auto fabric = read_bdc_fabric(in);
  ASSERT_EQ(fabric.size(), 3U);
  EXPECT_NEAR(fabric.at(1002).lat_deg, 39.2, 1e-9);
  EXPECT_NEAR(fabric.at(1002).lon_deg, -98.2, 1e-9);
}

TEST(Bdc, BuildDatasetReducesToBestOffer) {
  std::istringstream avail(kAvailabilityCsv);
  std::istringstream fab(kFabricCsv);
  const auto records = read_bdc_availability(avail);
  const auto fabric = read_bdc_fabric(fab);
  std::size_t dropped = 0;
  const DemandDataset data = build_dataset(
      records, fabric, County{"20001", {39.2, -98.2}, 55000.0, 0}, &dropped);
  // 1004 has no fabric entry.
  EXPECT_EQ(dropped, 1U);
  ASSERT_EQ(data.size(), 3U);
  // 1001: fiber gigabit -> served.
  EXPECT_FALSE(data.locations()[0].underserved());
  EXPECT_EQ(data.locations()[0].technology, Technology::kFiber);
  // 1002: best low-latency offer is 25/3 DSL (the GEO 100/20 offer does
  // not count) -> underserved.
  EXPECT_TRUE(data.locations()[1].underserved());
  EXPECT_EQ(data.locations()[1].technology, Technology::kDsl);
  EXPECT_DOUBLE_EQ(data.locations()[1].best_offer.down_mbps, 25.0);
  // 1003: fixed wireless 50/10 beats DSL 10/1 -> still underserved.
  EXPECT_TRUE(data.locations()[2].underserved());
  EXPECT_EQ(data.locations()[2].technology, Technology::kFixedWireless);
  // County rollup counts the two underserved locations.
  EXPECT_EQ(data.counties().at(0).underserved_locations, 2U);
}

TEST(Bdc, DatasetFeedsAggregationPipeline) {
  std::istringstream avail(kAvailabilityCsv);
  std::istringstream fab(kFabricCsv);
  const DemandDataset data =
      build_dataset(read_bdc_availability(avail), read_bdc_fabric(fab),
                    County{"20001", {39.2, -98.2}, 55000.0, 0});
  const DemandProfile profile = aggregate(data, hex::HexGrid(), 5);
  EXPECT_EQ(profile.total_locations(), 2U);  // the two underserved
}

}  // namespace
}  // namespace leodivide::demand

// Appended: generator scale/seed property sweeps.
namespace leodivide::demand {
namespace {

class GeneratorScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorScaleSweep, TotalsExactAndCellsInRegion) {
  const double scale = GetParam();
  const SyntheticGenerator gen({.seed = 99, .scale = scale});
  const DemandProfile profile = gen.generate_profile();
  const auto target = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(paper::kTotalLocations) * scale));
  EXPECT_EQ(profile.total_locations(), target);
  EXPECT_GT(profile.cell_count(), 0U);
  for (const auto& cell : profile.cells()) {
    EXPECT_GE(cell.underserved, 1U);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorScaleSweep,
                         ::testing::Values(0.001, 0.005, 0.02, 0.1, 0.5));

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, DistributionInvariantsHoldAcrossSeeds) {
  const SyntheticGenerator gen({.seed = GetParam(), .scale = 0.05});
  const DemandProfile profile = gen.generate_profile();
  // Per-cell counts never exceed the generated-cell ceiling at this scale
  // (planting is suppressed below 2x the planted mass at 0.05 they fit).
  const auto counts = profile.counts_as_doubles();
  EXPECT_EQ(profile.total_locations(),
            static_cast<std::uint64_t>(std::llround(
                0.05 * static_cast<double>(paper::kTotalLocations))));
  // County weights are consistent.
  std::uint64_t by_county = 0;
  for (const auto& c : profile.counties().all()) {
    by_county += c.underserved_locations;
  }
  EXPECT_EQ(by_county, profile.total_locations());
  EXPECT_FALSE(counts.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace leodivide::demand
