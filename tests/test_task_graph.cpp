// Tests for the task-graph runtime and its cache-aware snapshot layer:
// TaskGraph scheduling (graph-run results bit-identical to the serial
// reference at 1/4/8 threads), the error/skip contract, AsyncIo
// store/prefetch/drain semantics, StageGraph cold/warm runs with
// digest-edge invalidation, and the observability hooks (flow events in
// the Chrome trace, per-stage queue-wait histograms).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "leodivide/io/json.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/task_graph.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/snapshot/async.hpp"
#include "leodivide/snapshot/cache.hpp"
#include "leodivide/snapshot/fingerprint.hpp"
#include "leodivide/snapshot/format.hpp"
#include "leodivide/snapshot/stage_graph.hpp"

namespace {

using namespace leodivide;
namespace fs = std::filesystem;
using runtime::TaskGraph;

// ---------------------------------------------------------------------------
// TaskGraph: scheduling and determinism
// ---------------------------------------------------------------------------

TEST(TaskGraphTest, EmptyGraphRunsToCompletion) {
  TaskGraph graph;
  EXPECT_EQ(graph.task_count(), 0U);
  graph.run(runtime::serial_executor());
}

TEST(TaskGraphTest, EveryNodeRunsExactlyOnce) {
  TaskGraph graph;
  std::vector<std::atomic<int>> runs(4);
  const auto a = graph.add_task("tg.a", [&] { ++runs[0]; });
  const auto b = graph.add_task("tg.b", [&] { ++runs[1]; }, {a});
  const auto c = graph.add_task("tg.c", [&] { ++runs[2]; }, {a});
  const auto d = graph.add_task("tg.d", [&] { ++runs[3]; }, {b, c});
  ASSERT_EQ(graph.task_count(), 4U);

  runtime::ThreadPool pool(4);
  graph.run(pool);
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  for (const TaskGraph::TaskId id : {a, b, c, d}) {
    EXPECT_EQ(graph.state(id), TaskGraph::NodeState::kDone);
  }
}

TEST(TaskGraphTest, SerialExecutorRunsLowestReadyIdOrder) {
  // Diamond plus an independent tail: the serial reference order is the
  // canonical lowest-ready-id topological order, i.e. ascending ids here
  // (nodes are added in topological order).
  TaskGraph graph;
  std::vector<int> order;
  const auto a = graph.add_task("tg.a", [&] { order.push_back(0); });
  const auto b = graph.add_task("tg.b", [&] { order.push_back(1); }, {a});
  graph.add_task("tg.c", [&] { order.push_back(2); }, {a});
  graph.add_task("tg.d", [&] { order.push_back(3); }, {b});
  graph.add_task("tg.e", [&] { order.push_back(4); });

  graph.run(runtime::serial_executor());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGraphTest, DependencyMustNameAnAlreadyAddedNode) {
  TaskGraph graph;
  EXPECT_THROW(graph.add_task("tg.bad", [] {}, {0}), std::invalid_argument);
  const auto a = graph.add_task("tg.a", [] {});
  EXPECT_THROW(graph.add_task("tg.bad", [] {}, {a + 1}),
               std::invalid_argument);
}

// The load-bearing property: a graph whose nodes write disjoint slots
// produces bit-identical floating-point results on the serial executor and
// on pools of 1, 4 and 8 threads.
TEST(TaskGraphTest, ResultsBitIdenticalAcrossExecutors) {
  const auto run_once = [](runtime::Executor& ex) {
    std::vector<double> slot(6, 0.0);
    TaskGraph graph;
    const auto a = graph.add_task("tg.a", [&] { slot[0] = std::sin(1.0); });
    const auto b = graph.add_task("tg.b", [&] { slot[1] = std::cos(2.0); });
    const auto c = graph.add_task(
        "tg.c", [&] { slot[2] = slot[0] * 3.0 + std::exp(0.5); }, {a});
    const auto d = graph.add_task(
        "tg.d", [&] { slot[3] = slot[1] / 7.0 - std::log(3.0); }, {b});
    const auto e = graph.add_task(
        "tg.e", [&] { slot[4] = slot[2] + slot[3]; }, {c, d});
    graph.add_task(
        "tg.f", [&] { slot[5] = std::sqrt(std::abs(slot[4])); }, {e});
    graph.run(ex);
    return slot;
  };

  const std::vector<double> reference = run_once(runtime::serial_executor());
  for (const std::size_t threads : {1U, 4U, 8U}) {
    runtime::ThreadPool pool(threads);
    const std::vector<double> got = run_once(pool);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                std::bit_cast<std::uint64_t>(reference[i]))
          << "slot " << i << " differs at " << threads << " threads";
    }
  }
}

TEST(TaskGraphTest, LowestIdErrorWinsAndDescendantsSkip) {
  TaskGraph graph;
  std::atomic<int> late_runs{0};
  const auto bad1 = graph.add_task("tg.bad1", [] {
    throw std::runtime_error("first failure");
  });
  const auto bad2 = graph.add_task("tg.bad2", [] {
    throw std::runtime_error("second failure");
  });
  const auto child = graph.add_task("tg.child", [&] { ++late_runs; }, {bad1});
  const auto grandchild =
      graph.add_task("tg.grandchild", [&] { ++late_runs; }, {child});
  const auto independent =
      graph.add_task("tg.independent", [&] { ++late_runs; });

  runtime::ThreadPool pool(4);
  try {
    graph.run(pool);
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
  EXPECT_EQ(graph.state(bad1), TaskGraph::NodeState::kFailed);
  EXPECT_EQ(graph.state(bad2), TaskGraph::NodeState::kFailed);
  EXPECT_EQ(graph.state(child), TaskGraph::NodeState::kSkipped);
  EXPECT_EQ(graph.state(grandchild), TaskGraph::NodeState::kSkipped);
  EXPECT_EQ(graph.state(independent), TaskGraph::NodeState::kDone);
  EXPECT_EQ(late_runs.load(), 1);  // only the independent node ran
}

TEST(TaskGraphTest, GraphIsReusable) {
  TaskGraph graph;
  std::atomic<int> runs{0};
  const auto a = graph.add_task("tg.a", [&] { ++runs; });
  graph.add_task("tg.b", [&] { ++runs; }, {a});

  runtime::ThreadPool pool(2);
  graph.run(pool);
  graph.run(runtime::serial_executor());
  graph.run(pool);
  EXPECT_EQ(runs.load(), 6);
}

// Regression companion to ThreadPool's nested-batch handling: running a
// whole graph from inside a pool task must not deadlock — the pump batch
// runs inline on the calling thread.
TEST(TaskGraphTest, RunsFromInsideAPoolTask) {
  runtime::ThreadPool pool(2);
  std::atomic<int> runs{0};
  pool.run_tasks(2, [&](std::size_t) {
    TaskGraph graph;
    const auto a = graph.add_task("tg.inner_a", [&] { ++runs; });
    graph.add_task("tg.inner_b", [&] { ++runs; }, {a});
    graph.run(pool);
  });
  EXPECT_EQ(runs.load(), 4);
}

// ---------------------------------------------------------------------------
// AsyncIo: stores and prefetches behind compute
// ---------------------------------------------------------------------------

class AsyncIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ld_async_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(AsyncIoTest, StoreIsOnDiskAfterDrain) {
  snapshot::StageCache cache(dir_.string());
  snapshot::AsyncIo io;
  const snapshot::Fingerprint fp = snapshot::stage_fingerprint("tg.stage");
  io.enqueue_store(cache, "tg.stage", fp, "payload-bytes");
  io.drain();
  EXPECT_EQ(io.stores(), 1U);
  const std::optional<std::string> blob = cache.load("tg.stage", fp);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, "payload-bytes");
}

TEST_F(AsyncIoTest, DestructorDrainsOutstandingStores) {
  snapshot::StageCache cache(dir_.string());
  const snapshot::Fingerprint fp = snapshot::stage_fingerprint("tg.stage");
  {
    snapshot::AsyncIo io;
    io.enqueue_store(cache, "tg.stage", fp, "flushed-at-destruction");
  }
  const std::optional<std::string> blob = cache.load("tg.stage", fp);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, "flushed-at-destruction");
}

TEST_F(AsyncIoTest, PrefetchResolvesToBlobOrMiss) {
  snapshot::StageCache cache(dir_.string());
  const snapshot::Fingerprint hit_fp =
      snapshot::stage_fingerprint("tg.stage").mix_u64(1);
  const snapshot::Fingerprint miss_fp =
      snapshot::stage_fingerprint("tg.stage").mix_u64(2);
  cache.store("tg.stage", hit_fp, "prefetched-bytes");

  snapshot::AsyncIo io;
  snapshot::AsyncIo::Ticket hit = io.prefetch(cache, "tg.stage", hit_fp);
  snapshot::AsyncIo::Ticket miss = io.prefetch(cache, "tg.stage", miss_fp);
  EXPECT_EQ(io.prefetches(), 2U);

  const std::optional<std::string> hit_blob = hit->take();
  ASSERT_TRUE(hit_blob.has_value());
  EXPECT_EQ(*hit_blob, "prefetched-bytes");
  EXPECT_FALSE(miss->take().has_value());
}

TEST_F(AsyncIoTest, FifoOrderMakesStoreVisibleToLaterPrefetch) {
  snapshot::StageCache cache(dir_.string());
  const snapshot::Fingerprint fp = snapshot::stage_fingerprint("tg.stage");
  snapshot::AsyncIo io;
  io.enqueue_store(cache, "tg.stage", fp, "store-then-load");
  snapshot::AsyncIo::Ticket ticket = io.prefetch(cache, "tg.stage", fp);
  const std::optional<std::string> blob = ticket->take();
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, "store-then-load");
}

// ---------------------------------------------------------------------------
// staged_compute: the cache-aware building block
// ---------------------------------------------------------------------------

namespace blobs {

// Minimal int codec through the LDSNAP container so deserialize failures
// surface as SnapshotError (the staged_compute recovery path).
std::string serialize_int(int v) {
  snapshot::ByteWriter w;
  w.u64(static_cast<std::uint64_t>(v));
  snapshot::SnapshotWriter sw(snapshot::ArtifactKind::kServePartial);
  sw.add_section("int", std::move(w).take());
  return std::move(sw).finish();
}

int deserialize_int(std::string_view blob) {
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::parse(blob);
  snapshot::ByteReader r(reader.section("int"));
  const int v = static_cast<int>(r.u64());
  r.expect_exhausted("int blob");
  return v;
}

}  // namespace blobs

TEST_F(AsyncIoTest, StagedComputeWithoutCacheIsPureCompute) {
  int computes = 0;
  const auto staged = snapshot::staged_compute(
      nullptr, nullptr, "tg.stage", snapshot::stage_fingerprint("tg.stage"),
      [&] {
        ++computes;
        return 41;
      },
      blobs::serialize_int, blobs::deserialize_int);
  EXPECT_EQ(staged.value, 41);
  EXPECT_EQ(staged.blob_digest, 0U);
  EXPECT_FALSE(staged.restored);
  EXPECT_EQ(computes, 1);
}

TEST_F(AsyncIoTest, StagedComputeStoresThroughIoAndRestoresWarm) {
  snapshot::StageCache cache(dir_.string());
  const snapshot::Fingerprint fp = snapshot::stage_fingerprint("tg.stage");
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 7;
  };

  std::uint64_t cold_digest = 0;
  {
    snapshot::AsyncIo io;
    const auto cold = snapshot::staged_compute(
        &cache, &io, "tg.stage", fp, compute, blobs::serialize_int,
        blobs::deserialize_int);
    EXPECT_EQ(cold.value, 7);
    EXPECT_FALSE(cold.restored);
    EXPECT_NE(cold.blob_digest, 0U);
    cold_digest = cold.blob_digest;
    io.drain();
  }

  const auto warm = snapshot::staged_compute(
      &cache, nullptr, "tg.stage", fp, compute, blobs::serialize_int,
      blobs::deserialize_int);
  EXPECT_EQ(warm.value, 7);
  EXPECT_TRUE(warm.restored);
  EXPECT_EQ(warm.blob_digest, cold_digest);  // digest edges stable
  EXPECT_EQ(computes, 1);                    // warm run never recomputed
}

TEST_F(AsyncIoTest, StagedComputeRecomputesOnCorruptBlob) {
  snapshot::StageCache cache(dir_.string());
  const snapshot::Fingerprint fp = snapshot::stage_fingerprint("tg.stage");
  cache.store("tg.stage", fp, "not an LDSNAP blob");
  int computes = 0;
  const auto staged = snapshot::staged_compute(
      &cache, nullptr, "tg.stage", fp,
      [&] {
        ++computes;
        return 13;
      },
      blobs::serialize_int, blobs::deserialize_int);
  EXPECT_EQ(staged.value, 13);
  EXPECT_FALSE(staged.restored);
  EXPECT_EQ(computes, 1);
  // The recompute overwrote the corrupt blob; the next call restores.
  const auto warm = snapshot::staged_compute(
      &cache, nullptr, "tg.stage", fp,
      [&]() -> int { throw std::logic_error("must not recompute"); },
      blobs::serialize_int, blobs::deserialize_int);
  EXPECT_TRUE(warm.restored);
  EXPECT_EQ(warm.value, 13);
}

// ---------------------------------------------------------------------------
// StageGraph: digest edges drive both scheduling and cache keys
// ---------------------------------------------------------------------------

struct StageGraphRun {
  int value = 0;
  bool a_restored = false;
  bool b_restored = false;
  int a_computes = 0;
  int b_computes = 0;
};

// Two-stage chain a -> b where a's output feeds b through a plain glue
// task (the same shape as the national_analysis --graph pipeline).
StageGraphRun run_stage_chain(const snapshot::StageCache* cache,
                              snapshot::AsyncIo* io, int a_config,
                              runtime::Executor& ex) {
  StageGraphRun out;
  snapshot::StageGraph graph(cache, io);
  auto a = graph.add_stage(
      "tg.stage_a", {},
      [a_config](snapshot::Fingerprint& fp) { fp.mix_u64(a_config); },
      [&out, a_config] {
        ++out.a_computes;
        return a_config * 10;
      },
      blobs::serialize_int, blobs::deserialize_int);
  int carried = 0;
  const auto glue = graph.add_task(
      "tg.glue", [&carried, a] { carried = a.value() + 1; }, {a.id()});
  auto b = graph.add_stage(
      "tg.stage_b", {a}, [](snapshot::Fingerprint&) {},
      [&out, &carried] {
        ++out.b_computes;
        return carried * 2;
      },
      blobs::serialize_int, blobs::deserialize_int, {glue});
  graph.run(ex);
  out.value = b.value();
  out.a_restored = a.restored();
  out.b_restored = b.restored();
  return out;
}

TEST_F(AsyncIoTest, StageGraphColdComputesWarmRestores) {
  snapshot::StageCache cache(dir_.string());
  snapshot::AsyncIo io;
  runtime::ThreadPool pool(4);

  const StageGraphRun cold = run_stage_chain(&cache, &io, 3, pool);
  EXPECT_EQ(cold.value, (3 * 10 + 1) * 2);
  EXPECT_EQ(cold.a_computes, 1);
  EXPECT_EQ(cold.b_computes, 1);
  EXPECT_FALSE(cold.a_restored);
  EXPECT_FALSE(cold.b_restored);

  const StageGraphRun warm = run_stage_chain(&cache, &io, 3, pool);
  EXPECT_EQ(warm.value, cold.value);
  EXPECT_EQ(warm.a_computes, 0);
  EXPECT_EQ(warm.b_computes, 0);
  EXPECT_TRUE(warm.a_restored);
  EXPECT_TRUE(warm.b_restored);
}

TEST_F(AsyncIoTest, StageGraphDigestEdgeInvalidatesDownstream) {
  snapshot::StageCache cache(dir_.string());
  runtime::ThreadPool pool(2);

  const StageGraphRun first = run_stage_chain(&cache, nullptr, 3, pool);
  EXPECT_EQ(first.a_computes, 1);
  EXPECT_EQ(first.b_computes, 1);

  // Changing a's config changes a's blob, so b's upstream digest changes
  // and b recomputes even though b's own config mix is unchanged.
  const StageGraphRun changed = run_stage_chain(&cache, nullptr, 4, pool);
  EXPECT_EQ(changed.value, (4 * 10 + 1) * 2);
  EXPECT_EQ(changed.a_computes, 1);
  EXPECT_EQ(changed.b_computes, 1);
  EXPECT_FALSE(changed.b_restored);

  // And going back to the original config restores both from cache.
  const StageGraphRun back = run_stage_chain(&cache, nullptr, 3, pool);
  EXPECT_EQ(back.value, first.value);
  EXPECT_EQ(back.a_computes, 0);
  EXPECT_EQ(back.b_computes, 0);
}

TEST_F(AsyncIoTest, StageGraphWithoutCacheIsPureCompute) {
  const StageGraphRun run =
      run_stage_chain(nullptr, nullptr, 5, runtime::serial_executor());
  EXPECT_EQ(run.value, (5 * 10 + 1) * 2);
  EXPECT_EQ(run.a_computes, 1);
  EXPECT_FALSE(run.a_restored);
}

TEST(StageGraphTest, ValueBeforeRunThrows) {
  snapshot::StageGraph graph;
  auto a = graph.add_stage(
      "tg.stage_a", {}, [](snapshot::Fingerprint&) {}, [] { return 1; },
      blobs::serialize_int, blobs::deserialize_int);
  EXPECT_THROW((void)a.value(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Observability: flow events on graph edges, per-stage queue-wait
// ---------------------------------------------------------------------------

class TaskGraphObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_observability(); }
  void TearDown() override { reset_observability(); }

  static void reset_observability() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::registry().reset_values();
    obs::TraceRecorder::instance().clear();
  }
};

TEST_F(TaskGraphObsTest, GraphEdgesExportAsChromeFlowEvents) {
  obs::set_tracing_enabled(true);
  TaskGraph graph;
  const auto a = graph.add_task("tg.flow_a", [] {});
  const auto b = graph.add_task("tg.flow_b", [] {}, {a});
  graph.add_task("tg.flow_c", [] {}, {a, b});
  runtime::ThreadPool pool(2);
  graph.run(pool);

  std::ostringstream out;
  obs::TraceRecorder::instance().write_chrome_trace(out);
  const io::JsonValue doc = io::json_parse(out.str());
  const io::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::vector<double> starts;
  std::vector<double> ends;
  for (const auto& e : events.items) {
    const std::string& ph = e.at("ph").str_v;
    if (ph != "s" && ph != "f") continue;
    EXPECT_EQ(e.at("cat").str_v, "leodivide.flow");
    EXPECT_EQ(e.at("name").str_v, "graph.edge");
    ASSERT_TRUE(e.at("id").is_number());
    if (ph == "s") {
      starts.push_back(e.at("id").num_v);
    } else {
      EXPECT_EQ(e.at("bp").str_v, "e");
      ends.push_back(e.at("id").num_v);
    }
  }
  // Three edges (a->b, a->c, b->c), each with one start and one end
  // carrying the same flow id.
  ASSERT_EQ(starts.size(), 3U);
  ASSERT_EQ(ends.size(), 3U);
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  EXPECT_EQ(starts, ends);
}

TEST_F(TaskGraphObsTest, QueueWaitHistogramIsPerStageName) {
  obs::set_tracing_enabled(true);
  obs::set_metrics_enabled(true);
  TaskGraph graph;
  const auto a = graph.add_task("tg.wait_a", [] {});
  graph.add_task("tg.wait_b", [] {}, {a});
  graph.run(runtime::serial_executor());

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  std::uint64_t a_count = 0;
  std::uint64_t b_count = 0;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "graph.queue_wait_us.tg.wait_a") a_count = hist.count;
    if (name == "graph.queue_wait_us.tg.wait_b") b_count = hist.count;
  }
  EXPECT_EQ(a_count, 1U);
  EXPECT_EQ(b_count, 1U);
}

}  // namespace
