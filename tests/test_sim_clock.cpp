// SimClock boundary behaviour: epoch/timestamp arithmetic at horizon
// edges, sub-second steps, large epoch counts, and malformed inputs. The
// event engine's boundary plan leans on this arithmetic being exact, so
// the edge cases get their own file.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "leodivide/sim/clock.hpp"

namespace leodivide::sim {
namespace {

TEST(SimClock, EpochCountIncludesBothEndpointsOnExactMultiples) {
  const SimClock clock(600.0, 60.0);
  EXPECT_EQ(clock.epochs(), 11u);  // 0, 60, ..., 600
  EXPECT_EQ(clock.time_at(0), 0.0);
  EXPECT_EQ(clock.time_at(10), 600.0);
}

TEST(SimClock, FinalEpochNeverExceedsTheHorizon) {
  const SimClock clock(100.0, 33.0);
  EXPECT_EQ(clock.epochs(), 4u);  // 0, 33, 66, 99
  EXPECT_EQ(clock.time_at(3), 99.0);
  EXPECT_THROW((void)clock.time_at(4), std::out_of_range);
}

TEST(SimClock, ZeroDurationIsOneEpochAtTimeZero) {
  const SimClock clock(0.0, 15.0);
  EXPECT_EQ(clock.epochs(), 1u);
  EXPECT_EQ(clock.time_at(0), 0.0);
  EXPECT_THROW((void)clock.time_at(1), std::out_of_range);
}

TEST(SimClock, SubSecondStepsStayExactOnDyadicFractions) {
  // Dyadic steps are exactly representable: i * step must reproduce the
  // grid bit-for-bit — the property the event engine's epoch sampling and
  // the golden-equivalence suite both rely on.
  const SimClock clock(10.0, 0.125);
  EXPECT_EQ(clock.epochs(), 81u);
  EXPECT_EQ(clock.time_at(1), 0.125);
  EXPECT_EQ(clock.time_at(40), 5.0);
  EXPECT_EQ(clock.time_at(80), 10.0);
}

TEST(SimClock, NonDyadicSubSecondStepCountsEpochsByFloor) {
  // 0.1 is not exactly representable; the clock's contract is
  // floor(duration/step) + 1 of the *double* ratio, whatever rounding
  // produced it. 1.0 / 0.1 rounds to exactly 10.0 in binary64.
  const SimClock clock(1.0, 0.1);
  EXPECT_EQ(clock.epochs(), 11u);
  EXPECT_GT(clock.time_at(10), 0.99);
}

TEST(SimClock, LargeEpochCountsSurviveTheSizeCast) {
  const SimClock clock(86400.0 * 365.0, 1.0);  // one year at 1 s
  EXPECT_EQ(clock.epochs(), 31536001u);
  EXPECT_EQ(clock.time_at(31536000u), 86400.0 * 365.0);
}

TEST(SimClock, AbsurdEpochCountsAreAConfigurationError) {
  // Beyond the cast-safety ceiling the constructor must throw instead of
  // invoking undefined behaviour in the double -> size_t conversion.
  EXPECT_THROW(SimClock(1e300, 1e-300), std::invalid_argument);
  EXPECT_THROW(SimClock(std::numeric_limits<double>::max(), 1.0),
               std::invalid_argument);
}

TEST(SimClock, RejectsNonFiniteAndNonPositiveInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SimClock(nan, 1.0), std::invalid_argument);
  EXPECT_THROW(SimClock(1.0, nan), std::invalid_argument);
  EXPECT_THROW(SimClock(inf, 1.0), std::invalid_argument);
  EXPECT_THROW(SimClock(1.0, inf), std::invalid_argument);
  EXPECT_THROW(SimClock(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(SimClock(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SimClock(1.0, -2.0), std::invalid_argument);
}

TEST(SimClock, AccessorsEchoConstruction) {
  const SimClock clock(7200.0, 0.5);
  EXPECT_EQ(clock.duration_s(), 7200.0);
  EXPECT_EQ(clock.step_s(), 0.5);
  EXPECT_EQ(clock.epochs(), 14401u);
}

}  // namespace
}  // namespace leodivide::sim
