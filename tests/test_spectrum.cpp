// Unit tests for leodivide::spectrum — the Table 1 substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "leodivide/spectrum/band.hpp"
#include "leodivide/spectrum/beamplan.hpp"
#include "leodivide/spectrum/efficiency.hpp"
#include "leodivide/spectrum/linkbudget.hpp"

namespace leodivide::spectrum {
namespace {

// ------------------------------------------------------------------ bands ----

TEST(Band, WidthInMhz) {
  const Band b{"test", 10.7, 12.75, 4, BeamUsage::kUserDownlink};
  EXPECT_NEAR(b.width_mhz(), 2050.0, 1e-9);
}

TEST(ScheduleS, MatchesPaperTable1) {
  const SpectrumPlan plan = starlink_schedule_s();
  EXPECT_EQ(plan.bands().size(), 5U);
  EXPECT_NEAR(plan.user_downlink_mhz(), 3850.0, 1e-9);
  EXPECT_NEAR(plan.total_mhz(), 8850.0, 1e-9);
  EXPECT_EQ(plan.user_beams(), 24U);
  EXPECT_EQ(plan.total_beams(), 28U);
}

TEST(ScheduleS, GatewayBandIsExcludedFromUserSpectrum) {
  const SpectrumPlan plan = starlink_schedule_s();
  EXPECT_NEAR(plan.total_mhz() - plan.user_downlink_mhz(), 5000.0, 1e-9);
}

TEST(SpectrumPlan, RejectsEmptyAndInverted) {
  EXPECT_THROW(SpectrumPlan({}), std::invalid_argument);
  EXPECT_THROW(
      SpectrumPlan({{"bad", 12.0, 11.0, 1, BeamUsage::kUserDownlink}}),
      std::invalid_argument);
}

TEST(BeamUsageNames, RoundTripStrings) {
  EXPECT_EQ(to_string(BeamUsage::kUserDownlink), "DL to UTs");
  EXPECT_EQ(to_string(BeamUsage::kUserOrGatewayDownlink), "DL to UTs / GWs");
  EXPECT_EQ(to_string(BeamUsage::kGatewayDownlink), "DL to GWs");
}

// ------------------------------------------------------------- efficiency ----

TEST(Efficiency, PaperCapacityFigure) {
  // 3850 MHz x 4.5 bps/Hz = 17.325 Gbps (~17.3 in the paper).
  EXPECT_NEAR(capacity_gbps(3850.0, kPaperSpectralEfficiency), 17.325, 1e-9);
}

TEST(Efficiency, CapacityScalesLinearly) {
  EXPECT_DOUBLE_EQ(capacity_gbps(100.0, 2.0), 0.2);
  EXPECT_DOUBLE_EQ(capacity_gbps(0.0, 4.5), 0.0);
  EXPECT_THROW(capacity_gbps(-1.0, 4.5), std::invalid_argument);
}

TEST(Efficiency, ShannonKnownValues) {
  EXPECT_DOUBLE_EQ(shannon_efficiency(0.0), 0.0);
  EXPECT_DOUBLE_EQ(shannon_efficiency(1.0), 1.0);
  EXPECT_DOUBLE_EQ(shannon_efficiency(3.0), 2.0);
  EXPECT_THROW(shannon_efficiency(-0.5), std::invalid_argument);
}

TEST(Efficiency, ModcodLadderIsMonotone) {
  double prev = -1.0;
  for (double snr = -5.0; snr <= 25.0; snr += 0.5) {
    const double eff = modcod_efficiency(snr);
    EXPECT_GE(eff, prev);
    prev = eff;
  }
}

TEST(Efficiency, ModcodBelowThresholdIsZero) {
  EXPECT_DOUBLE_EQ(modcod_efficiency(-10.0), 0.0);
}

TEST(Efficiency, ModcodNeverExceedsShannon) {
  for (double snr_db = -2.0; snr_db <= 22.0; snr_db += 1.0) {
    const double shannon =
        shannon_efficiency(std::pow(10.0, snr_db / 10.0));
    EXPECT_LE(modcod_efficiency(snr_db), shannon + 1e-9) << snr_db;
  }
}

// -------------------------------------------------------------- linkbudget ----

TEST(LinkBudgetTest, FsplKnownValue) {
  // 600 km at 11.7 GHz: 20log10(600)+20log10(11.7)+92.45 = ~169.4 dB.
  EXPECT_NEAR(free_space_path_loss_db(600.0, 11.7), 169.38, 0.05);
  EXPECT_THROW(free_space_path_loss_db(0.0, 11.7), std::invalid_argument);
}

TEST(LinkBudgetTest, DefaultBudgetSupportsPaperEfficiency) {
  // The default Ku-band budget should land in the neighbourhood of the
  // paper's adopted 4.5 bps/Hz (within the 32APSK-64APSK MODCOD range).
  const LinkBudget budget;
  const double eff = achievable_efficiency(budget);
  EXPECT_GE(eff, 3.5);
  EXPECT_LE(eff, 5.5);
}

TEST(LinkBudgetTest, ShannonBoundsModcod) {
  const LinkBudget budget;
  EXPECT_LT(achievable_efficiency(budget), shannon_bound_efficiency(budget));
}

TEST(LinkBudgetTest, LongerRangeLowersCn) {
  LinkBudget near_budget;
  LinkBudget far_budget;
  far_budget.slant_range_km = 1200.0;
  EXPECT_GT(carrier_to_noise_db(near_budget), carrier_to_noise_db(far_budget));
}

TEST(LinkBudgetTest, MoreBandwidthLowersCn) {
  LinkBudget narrow;
  LinkBudget wide;
  wide.bandwidth_mhz = narrow.bandwidth_mhz * 4.0;
  EXPECT_GT(carrier_to_noise_db(narrow), carrier_to_noise_db(wide));
}

TEST(LinkBudgetTest, RejectsNonPositiveBandwidth) {
  LinkBudget budget;
  budget.bandwidth_mhz = 0.0;
  EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
  budget.bandwidth_mhz = -240.0;
  EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
}

TEST(LinkBudgetTest, RejectsNonFiniteInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  {
    LinkBudget budget;
    budget.bandwidth_mhz = nan;
    EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
  }
  {
    LinkBudget budget;
    budget.eirp_dbw = inf;
    EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
  }
  {
    LinkBudget budget;
    budget.system_noise_temp_k = nan;
    EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
  }
  {
    LinkBudget budget;
    budget.slant_range_km = inf;
    EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
  }
  {
    LinkBudget budget;
    budget.misc_losses_db = nan;
    EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
  }
}

TEST(LinkBudgetTest, RejectsNonPositiveNoiseTemperature) {
  LinkBudget budget;
  budget.system_noise_temp_k = 0.0;
  EXPECT_THROW(carrier_to_noise_db(budget), std::invalid_argument);
}

TEST(LinkBudgetTest, BoundaryBandwidthStillFinite) {
  // A tiny but positive bandwidth is legal and yields a finite (large) C/N.
  LinkBudget budget;
  budget.bandwidth_mhz = 1e-6;
  EXPECT_TRUE(std::isfinite(carrier_to_noise_db(budget)));
}

// ---------------------------------------------------------------- beamplan ----

TEST(BeamPlanTest, PaperNumbers) {
  const BeamPlan plan = starlink_beam_plan();
  EXPECT_NEAR(plan.full_cell_capacity_gbps(), 17.325, 1e-9);
  EXPECT_NEAR(plan.per_beam_capacity_gbps(), 17.325 / 4.0, 1e-9);
  EXPECT_EQ(plan.user_beams(), 24U);
  EXPECT_EQ(plan.beams_per_full_cell(), 4U);
}

TEST(BeamPlanTest, SpreadDividesCapacity) {
  const BeamPlan plan = starlink_beam_plan();
  EXPECT_NEAR(plan.spread_cell_capacity_gbps(1.0), 17.325, 1e-9);
  EXPECT_NEAR(plan.spread_cell_capacity_gbps(5.0), 3.465, 1e-9);
  EXPECT_THROW(plan.spread_cell_capacity_gbps(0.5), std::invalid_argument);
}

TEST(BeamPlanTest, CellsServedPerSatelliteFormula) {
  const BeamPlan plan = starlink_beam_plan();
  // 1 + (24 - 4) * s — the denominator of the paper's Table-2 model.
  EXPECT_DOUBLE_EQ(plan.cells_served_per_satellite(1.0, 4), 21.0);
  EXPECT_DOUBLE_EQ(plan.cells_served_per_satellite(2.0, 4), 41.0);
  EXPECT_DOUBLE_EQ(plan.cells_served_per_satellite(5.0, 4), 101.0);
  EXPECT_DOUBLE_EQ(plan.cells_served_per_satellite(10.0, 4), 201.0);
  EXPECT_DOUBLE_EQ(plan.cells_served_per_satellite(15.0, 4), 301.0);
  EXPECT_DOUBLE_EQ(plan.cells_served_per_satellite(1.0, 1), 24.0);
}

TEST(BeamPlanTest, RejectsBadConstruction) {
  EXPECT_THROW(BeamPlan(starlink_schedule_s(), 0), std::invalid_argument);
  EXPECT_THROW(BeamPlan(starlink_schedule_s(), 25), std::invalid_argument);
  EXPECT_THROW(BeamPlan(starlink_schedule_s(), 4, -1.0),
               std::invalid_argument);
}

TEST(BeamPlanTest, RejectsBadBeamArguments) {
  const BeamPlan plan = starlink_beam_plan();
  EXPECT_THROW(plan.cells_served_per_satellite(0.5, 4),
               std::invalid_argument);
  EXPECT_THROW(plan.cells_served_per_satellite(1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(plan.cells_served_per_satellite(1.0, 25),
               std::invalid_argument);
}

// ----------------------------------------------- parameterized: spread sweep ----

class SpreadSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpreadSweep, CapacityTimesSpreadIsInvariant) {
  const BeamPlan plan = starlink_beam_plan();
  const double s = GetParam();
  EXPECT_NEAR(plan.spread_cell_capacity_gbps(s) * s,
              plan.full_cell_capacity_gbps(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Spreads, SpreadSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 8.0, 10.0,
                                           15.0, 20.0));

class BudgetRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetRangeSweep, EfficiencyDegradesGracefully) {
  LinkBudget budget;
  budget.slant_range_km = GetParam();
  const double eff = achievable_efficiency(budget);
  EXPECT_GE(eff, 0.0);
  EXPECT_LE(eff, 5.44);
}

INSTANTIATE_TEST_SUITE_P(Ranges, BudgetRangeSweep,
                         ::testing::Values(550.0, 700.0, 900.0, 1100.0,
                                           1500.0, 2000.0));

}  // namespace
}  // namespace leodivide::spectrum
