// Tests for the obs/ observability subsystem: the zero-overhead gate, the
// sharded metrics registry (thread-count-invariant merges), RAII spans,
// the Chrome trace-event exporter — and the load-bearing property that
// turning observability on does not change a single byte of pipeline
// output at any thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/aggregate.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/hex/hexgrid.hpp"
#include "leodivide/io/json.hpp"
#include "leodivide/obs/obs.hpp"
#include "leodivide/orbit/walker.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/parallel_for.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/sim/simulation.hpp"

namespace {

using namespace leodivide;

// Every test starts and ends with observability fully off and all values
// zeroed, so tests are order-independent (the registry and recorder are
// process-wide singletons).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_observability(); }
  void TearDown() override { reset_observability(); }

  static void reset_observability() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::registry().reset_values();
    obs::TraceRecorder::instance().clear();
  }
};

// ---------------------------------------------------------------------------
// Gate: everything off by default, hooks record nothing when disabled
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledByDefault) {
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::observability_enabled());
  obs::set_tracing_enabled(true);
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_TRUE(obs::observability_enabled());
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(false);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_TRUE(obs::observability_enabled());
}

TEST_F(ObsTest, DisabledHooksRecordNothing) {
  obs::Counter& c = obs::registry().counter("test.off.counter");
  c.add(5);
  EXPECT_EQ(c.total(), 0U);

  obs::Gauge& g = obs::registry().gauge("test.off.gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 0);

  obs::Histogram& h = obs::registry().histogram("test.off.hist");
  h.record_us(10);
  EXPECT_EQ(h.count(), 0U);

  obs::Timer& t = obs::registry().timer("test.off.timer");
  t.record_ns(1000);
  EXPECT_EQ(t.count(), 0U);

  { const obs::Span span("test.off.span"); }
  EXPECT_EQ(obs::TraceRecorder::instance().event_count(), 0U);
  EXPECT_EQ(obs::registry().timer("test.off.span").count(), 0U);
}

// ---------------------------------------------------------------------------
// Metrics: sharded merges are identical for every thread count
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAndHistogramMergeDeterministically) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("test.merge.counter");
  obs::Histogram& h = obs::registry().histogram("test.merge.hist");
  obs::Timer& t = obs::registry().timer("test.merge.timer");

  constexpr std::size_t kN = 10000;
  constexpr std::uint64_t kSum = kN * (kN - 1) / 2;
  std::array<std::uint64_t, obs::Histogram::kBuckets> baseline_buckets{};
  bool have_baseline = false;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    c.reset();
    h.reset();
    t.reset();
    runtime::ThreadPool pool(threads);
    runtime::parallel_for_each(pool, 0, kN, [&](std::size_t i) {
      c.add(i);
      h.record_us(i);
      t.record_ns(i * 10);
    });
    EXPECT_EQ(c.total(), kSum) << "threads=" << threads;
    EXPECT_EQ(h.count(), kN) << "threads=" << threads;
    EXPECT_EQ(h.sum_us(), kSum) << "threads=" << threads;
    EXPECT_EQ(t.count(), kN) << "threads=" << threads;
    EXPECT_EQ(t.total_ns(), kSum * 10) << "threads=" << threads;
    const auto buckets = h.bucket_counts();
    if (!have_baseline) {
      baseline_buckets = buckets;
      have_baseline = true;
    } else {
      EXPECT_EQ(buckets, baseline_buckets) << "threads=" << threads;
    }
  }
}

TEST_F(ObsTest, HistogramBucketPlacement) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0U);
  EXPECT_EQ(H::bucket_of(1), 1U);
  EXPECT_EQ(H::bucket_of(2), 2U);
  EXPECT_EQ(H::bucket_of(3), 2U);
  EXPECT_EQ(H::bucket_of(4), 3U);
  EXPECT_EQ(H::bucket_of(1023), 10U);
  EXPECT_EQ(H::bucket_of(1024), 11U);
  EXPECT_EQ(H::bucket_of(UINT64_MAX), H::kBuckets - 1);
  EXPECT_EQ(H::bucket_upper_us(0), 0U);
  EXPECT_EQ(H::bucket_upper_us(1), 1U);
  EXPECT_EQ(H::bucket_upper_us(2), 3U);
  EXPECT_EQ(H::bucket_upper_us(10), 1023U);
  EXPECT_EQ(H::bucket_upper_us(H::kBuckets - 1), UINT64_MAX);
}

TEST_F(ObsTest, ResetValuesKeepsHandlesValid) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("test.reset.counter");
  c.add(3);
  EXPECT_EQ(c.total(), 3U);
  obs::registry().reset_values();
  EXPECT_EQ(c.total(), 0U);
  c.add(2);  // the cached reference still points at the live metric
  EXPECT_EQ(c.total(), 2U);
  EXPECT_EQ(obs::registry().counter("test.reset.counter").total(), 2U);
}

// ---------------------------------------------------------------------------
// Spans: trace events + stage timers, properly nested
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpanFeedsTraceAndStageTimer) {
  obs::set_tracing_enabled(true);
  obs::set_metrics_enabled(true);
  {
    const obs::Span outer("test.span.outer");
    const obs::Span inner("test.span.inner");
  }
  EXPECT_EQ(obs::TraceRecorder::instance().event_count(), 2U);
  EXPECT_EQ(obs::registry().timer("test.span.outer").count(), 1U);
  EXPECT_EQ(obs::registry().timer("test.span.inner").count(), 1U);

  const auto events = obs::TraceRecorder::instance().events();
  ASSERT_EQ(events.size(), 2U);
  const obs::TraceEvent* outer_ev = nullptr;
  const obs::TraceEvent* inner_ev = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "test.span.outer") outer_ev = &e;
    if (std::string(e.name) == "test.span.inner") inner_ev = &e;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_EQ(outer_ev->tid, inner_ev->tid);
  EXPECT_GE(inner_ev->start_ns, outer_ev->start_ns);
  EXPECT_LE(inner_ev->start_ns + inner_ev->dur_ns,
            outer_ev->start_ns + outer_ev->dur_ns);
}

// ---------------------------------------------------------------------------
// The acceptance property: observability never changes pipeline output
// ---------------------------------------------------------------------------

constexpr demand::GeneratorConfig kSmallConfig{.seed = 11, .scale = 0.01};

// Runs the full instrumented pipeline (polyfill -> generate -> expand ->
// aggregate -> sizing -> simulation) and serialises every output to one
// byte string.
std::string run_pipeline_bytes(runtime::Executor& executor) {
  const demand::SyntheticGenerator gen(kSmallConfig);
  const auto profile = gen.generate_profile(executor);
  const auto dataset = gen.expand_locations(profile, 0.25, executor);
  const auto reaggregated =
      demand::aggregate(dataset, hex::HexGrid(), 5, executor);

  std::ostringstream out;
  profile.save_csv(out, out);
  reaggregated.save_csv(out, out);

  const core::SizingModel model;
  const auto sizing = core::size_with_cap(profile, model, 5.0, 20.0, executor);
  out << sizing.satellites << '|' << sizing.binding_lat_deg << '|'
      << sizing.beams_on_binding << '|' << sizing.binding_cell_index << '\n';

  sim::SimulationConfig config;
  config.shell = orbit::WalkerShell{53.0, 550.0, 8, 6, 1};  // tiny shell
  config.duration_s = 180.0;
  config.step_s = 60.0;
  const sim::Simulation simulation(config, profile);
  for (const auto& e : simulation.run(executor)) {
    out << e.time_s << '|' << e.cells_served << '|' << e.locations_served
        << '|' << e.mean_beam_utilization << '|' << e.satellites_in_view
        << '\n';
  }
  return out.str();
}

TEST_F(ObsTest, PipelineByteIdenticalWithObservabilityOnOrOff) {
  const std::string baseline = run_pipeline_bytes(runtime::serial_executor());
  ASSERT_FALSE(baseline.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    // Observability fully on.
    reset_observability();
    obs::set_tracing_enabled(true);
    obs::set_metrics_enabled(true);
    {
      runtime::ThreadPool pool(threads);
      EXPECT_EQ(run_pipeline_bytes(pool), baseline)
          << "obs on, threads=" << threads;
    }
    // Spans actually fired while producing identical bytes.
    EXPECT_GT(obs::TraceRecorder::instance().event_count(), 0U);

    // Observability fully off.
    reset_observability();
    {
      runtime::ThreadPool pool(threads);
      EXPECT_EQ(run_pipeline_bytes(pool), baseline)
          << "obs off, threads=" << threads;
    }
    EXPECT_EQ(obs::TraceRecorder::instance().event_count(), 0U);
  }
}

TEST_F(ObsTest, PipelineMetricsIdenticalAcrossThreadCounts) {
  std::vector<std::pair<std::string, std::uint64_t>> baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    reset_observability();
    obs::set_metrics_enabled(true);
    runtime::ThreadPool pool(threads);
    (void)run_pipeline_bytes(pool);
    const auto snap = obs::registry().snapshot();
    // Keep the pipeline's own counters (test.* ones are zeroed by reset).
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const auto& [name, value] : snap.counters) {
      if (value != 0) counters.emplace_back(name, value);
    }
    ASSERT_FALSE(counters.empty());
    if (baseline.empty()) {
      baseline = counters;
    } else {
      EXPECT_EQ(counters, baseline) << "threads=" << threads;
    }
  }
  // The five instrumented stages all produced timers.
  const auto stages = obs::registry().stage_totals_ms();
  const auto has_stage = [&](const std::string& name) {
    for (const auto& [n, ms] : stages) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_stage("hex.polyfill"));
  EXPECT_TRUE(has_stage("demand.generate_profile"));
  EXPECT_TRUE(has_stage("demand.expand_locations"));
  EXPECT_TRUE(has_stage("demand.aggregate"));
  EXPECT_TRUE(has_stage("core.size_with_cap"));
  EXPECT_TRUE(has_stage("sim.run"));
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceExportsNestedPipelineStages) {
  obs::set_tracing_enabled(true);
  {
    runtime::ThreadPool pool(4);
    (void)run_pipeline_bytes(pool);
  }
  std::ostringstream out;
  obs::TraceRecorder::instance().write_chrome_trace(out);

  const io::JsonValue doc = io::json_parse(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").str_v, "ms");
  const io::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  struct Complete {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
    double tid = 0.0;
  };
  std::vector<Complete> spans;
  bool saw_process_meta = false;
  for (const auto& e : events.items) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").str_v;
    if (ph == "M") {
      saw_process_meta |= (e.at("name").str_v == "process_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ASSERT_TRUE(e.at("ts").is_number());
    ASSERT_TRUE(e.at("dur").is_number());
    spans.push_back({e.at("name").str_v, e.at("ts").num_v, e.at("dur").num_v,
                     e.at("tid").num_v});
  }
  EXPECT_TRUE(saw_process_meta);

  const auto spans_named = [&](const std::string& name) {
    std::vector<Complete> out_spans;
    for (const auto& s : spans) {
      if (s.name == name) out_spans.push_back(s);
    }
    return out_spans;
  };
  for (const char* stage :
       {"hex.polyfill", "demand.generate_profile", "demand.expand_locations",
        "demand.aggregate", "core.size_with_cap", "sim.run", "sim.epoch"}) {
    EXPECT_FALSE(spans_named(stage).empty()) << "missing stage " << stage;
  }

  // Nesting: hex.polyfill runs inside demand.generate_profile on the same
  // thread (chrome://tracing infers the hierarchy from ts/dur containment).
  const auto polyfills = spans_named("hex.polyfill");
  const auto generates = spans_named("demand.generate_profile");
  ASSERT_FALSE(polyfills.empty());
  ASSERT_FALSE(generates.empty());
  bool nested = false;
  for (const auto& p : polyfills) {
    for (const auto& g : generates) {
      // leolint:allow(float-eq): tids are integers carried in doubles
      if (p.tid == g.tid && p.ts >= g.ts &&
          p.ts + p.dur <= g.ts + g.dur + 1e-3) {
        nested = true;
      }
    }
  }
  EXPECT_TRUE(nested);
}

// ---------------------------------------------------------------------------
// Metrics export + bench JSON lines
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MetricsJsonAndCsvExport) {
  obs::set_metrics_enabled(true);
  obs::registry().counter("test.export.counter").add(3);
  obs::registry().gauge("test.export.gauge").set(-2);
  obs::registry().timer("test.export.timer").record_ns(1500000);
  obs::registry().histogram("test.export.hist").record_us(5);

  std::ostringstream json_out;
  obs::registry().write_json(json_out);
  const io::JsonValue doc = io::json_parse(json_out.str());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("test.export.counter").num_v, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("test.export.gauge").num_v, -2.0);
  EXPECT_DOUBLE_EQ(doc.at("timers").at("test.export.timer").at("count").num_v,
                   1.0);
  const io::JsonValue& hist = doc.at("histograms").at("test.export.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").num_v, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum_us").num_v, 5.0);
  ASSERT_EQ(hist.at("buckets").items.size(), obs::Histogram::kBuckets);

  std::ostringstream csv_out;
  obs::registry().write_csv(csv_out);
  EXPECT_NE(csv_out.str().find("counter,test.export.counter,total,3"),
            std::string::npos);
}

TEST_F(ObsTest, BenchLineJsonNeverTruncates) {
  // Long and quote-laden names would have overflowed the old fixed
  // 256-byte snprintf buffer; the obs emitter escapes and grows instead.
  obs::set_metrics_enabled(true);
  obs::registry().timer("stage.alpha").record_ns(2000000);
  obs::registry().timer("stage.beta").record_ns(500000);

  const std::string long_name = std::string(300, 'x') + " \"quoted\"";
  const std::string line = obs::bench_line_json(long_name, 4, 12.5);
  const io::JsonValue v = io::json_parse(line);
  EXPECT_EQ(v.at("bench").str_v, long_name);
  EXPECT_DOUBLE_EQ(v.at("threads").num_v, 4.0);
  EXPECT_DOUBLE_EQ(v.at("wall_ms").num_v, 12.5);
  const io::JsonValue& stages = v.at("stages");
  ASSERT_TRUE(stages.is_object());
  EXPECT_GT(stages.at("stage.alpha").num_v, 0.0);
  EXPECT_GT(stages.at("stage.beta").num_v, 0.0);
}

TEST_F(ObsTest, BenchLineJsonOmitsStagesWhenMetricsOff) {
  const std::string line = obs::bench_line_json("plain", 1, 3.25);
  const io::JsonValue v = io::json_parse(line);
  EXPECT_EQ(v.at("bench").str_v, "plain");
  EXPECT_EQ(v.find("stages"), nullptr);
}

// ---------------------------------------------------------------------------
// Session plumbing: env vars, CLI flags, finalize
// ---------------------------------------------------------------------------

TEST_F(ObsTest, OptionsFromEnv) {
  ::setenv("LEODIVIDE_TRACE", "my_trace.json", 1);
  ::setenv("LEODIVIDE_METRICS", "1", 1);
  obs::Options opts = obs::options_from_env();
  EXPECT_TRUE(opts.trace);
  EXPECT_EQ(opts.trace_path, "my_trace.json");
  EXPECT_TRUE(opts.metrics);
  EXPECT_TRUE(opts.metrics_path.empty());

  ::setenv("LEODIVIDE_TRACE", "1", 1);
  ::setenv("LEODIVIDE_METRICS", "metrics.json", 1);
  opts = obs::options_from_env();
  EXPECT_TRUE(opts.trace);
  EXPECT_EQ(opts.trace_path, "trace.json");
  EXPECT_EQ(opts.metrics_path, "metrics.json");

  ::setenv("LEODIVIDE_TRACE", "0", 1);
  ::unsetenv("LEODIVIDE_METRICS");
  opts = obs::options_from_env();
  EXPECT_FALSE(opts.trace);
  EXPECT_FALSE(opts.metrics);

  ::unsetenv("LEODIVIDE_TRACE");
}

TEST_F(ObsTest, ParseCliArgConsumesObservabilityFlags) {
  std::vector<std::string> raw = {"prog",    "--trace", "t.json",
                                  "--metrics=m.json", "out_dir"};
  std::vector<char*> argv;
  argv.reserve(raw.size());
  for (auto& s : raw) argv.push_back(s.data());
  const int argc = static_cast<int>(argv.size());

  obs::Options opts;
  std::vector<std::string> leftover;
  for (int i = 1; i < argc; ++i) {
    if (!obs::parse_cli_arg(opts, argc, argv.data(), i)) {
      leftover.push_back(argv[i]);
    }
  }
  EXPECT_TRUE(opts.trace);
  EXPECT_EQ(opts.trace_path, "t.json");
  EXPECT_TRUE(opts.metrics);
  EXPECT_EQ(opts.metrics_path, "m.json");
  ASSERT_EQ(leftover.size(), 1U);
  EXPECT_EQ(leftover[0], "out_dir");
}

TEST_F(ObsTest, ApplyAndFinalizeWriteRequestedFiles) {
  namespace fs = std::filesystem;
  const std::string trace_path =
      testing::TempDir() + "leodivide_obs_trace_test.json";
  const std::string metrics_path =
      testing::TempDir() + "leodivide_obs_metrics_test.json";

  obs::Options opts;
  opts.trace = true;
  opts.trace_path = trace_path;
  opts.metrics = true;
  opts.metrics_path = metrics_path;
  obs::apply(opts);
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_TRUE(obs::metrics_enabled());

  { const obs::Span span("test.finalize.stage"); }
  obs::registry().counter("test.finalize.counter").add(1);
  obs::finalize(opts);

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  const io::JsonValue trace_doc = io::json_parse(trace_buf.str());
  ASSERT_TRUE(trace_doc.at("traceEvents").is_array());
  bool found = false;
  for (const auto& e : trace_doc.at("traceEvents").items) {
    if (e.at("name").str_v == "test.finalize.stage") found = true;
  }
  EXPECT_TRUE(found);

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  const io::JsonValue metrics_doc = io::json_parse(metrics_buf.str());
  EXPECT_DOUBLE_EQ(
      metrics_doc.at("counters").at("test.finalize.counter").num_v, 1.0);

  fs::remove(trace_path);
  fs::remove(metrics_path);
}

// ---------------------------------------------------------------------------
// ThreadPool instrumentation
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ThreadPoolRecordsTaskSpansAndQueueWait) {
  obs::set_tracing_enabled(true);
  obs::set_metrics_enabled(true);
  {
    runtime::ThreadPool pool(2);
    pool.run_tasks(16, [](std::size_t) {});
  }
  EXPECT_EQ(obs::registry().timer("runtime.task").count(), 16U);
  EXPECT_EQ(obs::registry().histogram("runtime.queue_wait_us").count(), 16U);
  std::size_t task_events = 0;
  for (const auto& e : obs::TraceRecorder::instance().events()) {
    if (std::string(e.name) == "runtime.task") ++task_events;
  }
  EXPECT_EQ(task_events, 16U);
}

}  // namespace
