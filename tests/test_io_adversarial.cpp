// Adversarial inputs for the io/ parsers. Every case in this deterministic
// corpus must produce a graceful, typed error (or a documented lenient
// parse) — never a crash, hang, or foreign exception type. CI runs this
// suite under ASan/UBSan, and the deep-nesting cases double as
// stack-overflow regression tests for the recursive-descent JSON parser.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "leodivide/io/csv.hpp"
#include "leodivide/io/json.hpp"

namespace {

using leodivide::io::CsvReader;
using leodivide::io::CsvRow;
using leodivide::io::json_parse;
using leodivide::io::JsonParseError;
using leodivide::io::parse_csv_line;

// ------------------------------------------------------------------- CSV --

TEST(CsvAdversarial, TruncatedQuoteInLineThrows) {
  EXPECT_THROW((void)parse_csv_line("\"abc"), std::runtime_error);
  EXPECT_THROW((void)parse_csv_line("a,\"bc"), std::runtime_error);
  EXPECT_THROW((void)parse_csv_line("\""), std::runtime_error);
}

TEST(CsvAdversarial, QuoteInsideUnquotedFieldThrows) {
  EXPECT_THROW((void)parse_csv_line("ab\"c,2"), std::runtime_error);
  EXPECT_THROW((void)parse_csv_line("1,x\"\",3"), std::runtime_error);
}

TEST(CsvAdversarial, UnterminatedQuotedRecordAtEofThrows) {
  std::istringstream in("h1,h2\n\"spans\nlines,but never closes");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));  // header
  EXPECT_THROW((void)reader.next(row), std::runtime_error);
}

TEST(CsvAdversarial, LoneQuoteLineAtEofThrows) {
  std::istringstream in("\"");
  CsvReader reader(in);
  CsvRow row;
  EXPECT_THROW((void)reader.next(row), std::runtime_error);
}

TEST(CsvAdversarial, EmbeddedNulBytesAreFieldContent) {
  const std::string line("a\0b,c", 5);
  const CsvRow row = parse_csv_line(line);
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], std::string("a\0b", 3));
  EXPECT_EQ(row[1], "c");
}

TEST(CsvAdversarial, EmbeddedNulInsideQuotedFieldSurvives) {
  const std::string line("\"x\0y\",z", 7);
  const CsvRow row = parse_csv_line(line);
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], std::string("x\0y", 3));
}

TEST(CsvAdversarial, PathologicallyLongFieldParses) {
  std::string line = "a,";
  line.append(1 << 20, 'x');  // 1 MiB single field
  const std::string big = line.substr(2);
  line += ",b";
  const CsvRow row = parse_csv_line(line);
  ASSERT_EQ(row.size(), 3U);
  EXPECT_EQ(row[1].size(), big.size());
}

TEST(CsvAdversarial, ManyEmptyFields) {
  const CsvRow row = parse_csv_line(std::string(999, ','));
  EXPECT_EQ(row.size(), 1000U);
  for (const auto& f : row) EXPECT_TRUE(f.empty());
}

TEST(CsvAdversarial, CrOnlyRecordIsSkippedAsBlank) {
  std::istringstream in("\r\n\r\na,b\r\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (CsvRow{"a", "b"}));
  EXPECT_FALSE(reader.next(row));
}

TEST(CsvAdversarial, AlternatingEscapedQuotes) {
  const CsvRow row = parse_csv_line("\"a\"\"b\"\"c\",\"\"\"\"");
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "a\"b\"c");
  EXPECT_EQ(row[1], "\"");
}

// ------------------------------------------------------------------ JSON --

TEST(JsonAdversarial, TruncatedDocumentsThrow) {
  for (const char* doc : {"{", "[", "[1,", "{\"a\":", "{\"a\"", "\"abc",
                          "tru", "nul", "fals", "-", "[{\"k\": [", "{}}"}) {
    EXPECT_THROW((void)json_parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonAdversarial, BadEscapesThrow) {
  for (const char* doc : {R"("\x")", R"("\u12")", R"("\u12G4")", R"("\")",
                          R"("\u")", R"(["\q"])"}) {
    EXPECT_THROW((void)json_parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonAdversarial, DeepNestingIsBoundedNotACrash) {
  // 100k opening brackets: a parser without a depth limit would overflow
  // the stack here. The limit must produce a typed error instead.
  const std::string deep_arrays(100000, '[');
  EXPECT_THROW((void)json_parse(deep_arrays), JsonParseError);

  std::string deep_objects;
  for (int i = 0; i < 100000; ++i) deep_objects += "{\"a\":";
  EXPECT_THROW((void)json_parse(deep_objects), JsonParseError);
}

TEST(JsonAdversarial, NestingJustBelowTheLimitParses) {
  const int depth = 200;  // below the parser's 256 cap
  std::string doc(depth, '[');
  doc += "1";
  doc.append(depth, ']');
  const auto v = json_parse(doc);
  EXPECT_TRUE(v.is_array());
}

TEST(JsonAdversarial, NanAndInfLiteralsAreRejected) {
  for (const char* doc : {"NaN", "nan", "Infinity", "-Infinity", "inf",
                          "[NaN]", "{\"x\": Infinity}"}) {
    EXPECT_THROW((void)json_parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonAdversarial, OverflowingNumberIsAParseErrorNotOutOfRange) {
  // Syntactically valid JSON beyond double range must surface as
  // JsonParseError, not leak std::out_of_range from the conversion.
  for (const char* doc : {"1e999", "-1e999", "[1e400]"}) {
    EXPECT_THROW((void)json_parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonAdversarial, MalformedNumbersThrow) {
  for (const char* doc : {"01", "0123", "1.", ".5", "+1", "1e", "1e+",
                          "--1", "0x10", "1.2.3"}) {
    EXPECT_THROW((void)json_parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonAdversarial, EmbeddedNulAndControlCharsInStringsThrow) {
  EXPECT_THROW((void)json_parse(std::string_view("\"a\0b\"", 5)),
               JsonParseError);
  EXPECT_THROW((void)json_parse("\"a\nb\""), JsonParseError);
  EXPECT_THROW((void)json_parse("\"a\tb\""), JsonParseError);
}

TEST(JsonAdversarial, StructuralGarbageThrows) {
  for (const char* doc : {"{} trailing", "[1] 2", "{\"a\" 1}", "{1: 2}",
                          "[1 2]", "[,]", "{,}", "", "  ", ":", ","}) {
    EXPECT_THROW((void)json_parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonAdversarial, EscapedNulIsPreservedContent) {
  const auto v = json_parse(R"("a\u0000b")");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.str_v, std::string("a\0b", 3));
}

}  // namespace
