// Unit tests for leodivide::io — CSV, tables, JSON.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "leodivide/io/csv.hpp"
#include "leodivide/io/json.hpp"
#include "leodivide/io/table.hpp"

namespace leodivide::io {
namespace {

// -------------------------------------------------------------------- csv ----

TEST(CsvParse, SimpleFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3U);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(CsvParse, EmptyFields) {
  const CsvRow row = parse_csv_line("a,,c,");
  ASSERT_EQ(row.size(), 4U);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(CsvParse, QuotedFieldWithComma) {
  const CsvRow row = parse_csv_line(R"(x,"a,b",y)");
  ASSERT_EQ(row.size(), 3U);
  EXPECT_EQ(row[1], "a,b");
}

TEST(CsvParse, EscapedQuotes) {
  const CsvRow row = parse_csv_line(R"("say ""hi""",2)");
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(CsvParse, RejectsMalformedQuoting) {
  EXPECT_THROW(parse_csv_line(R"(a,"unterminated)"), std::runtime_error);
  EXPECT_THROW(parse_csv_line(R"(ab"cd)"), std::runtime_error);
}

TEST(CsvReader, ReadsMultipleRecordsSkippingBlanks) {
  std::istringstream in("a,b\n\n1,2\r\n3,4\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "a");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "2");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "3");
  EXPECT_FALSE(reader.next(row));
  EXPECT_EQ(reader.records_read(), 3U);
}

TEST(CsvReader, QuotedFieldSpanningNewline) {
  std::istringstream in("\"line1\nline2\",x\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "line1\nline2");
  EXPECT_EQ(row[1], "x");
}

TEST(CsvReader, EscapedQuotePairAtRejoinBoundary) {
  // The field content is  a"  then a newline then  b : the escaped "" pair
  // sits at the very end of the first physical line, immediately before the
  // re-join boundary.
  std::istringstream in("\"a\"\"\nb\",x\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "a\"\nb");
  EXPECT_EQ(row[1], "x");
}

TEST(CsvReader, EscapedQuotePairStartsContinuationLine) {
  // Content  a  newline  "b : the continuation line *begins* with an
  // escaped "" pair while the quote state is still open.
  std::istringstream in("\"a\n\"\"b\",x\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "a\n\"b");
  EXPECT_EQ(row[1], "x");
}

TEST(CsvReader, QuotedCommasAcrossRejoinedLines) {
  std::istringstream in("\"x,y\nz,w\",\"p,q\"\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "x,y\nz,w");
  EXPECT_EQ(row[1], "p,q");
}

TEST(CsvReader, EmbeddedCrlfInsideQuotedFieldIsPreserved) {
  // CRLF inside a quoted field is field content (RFC 4180) and must survive
  // the re-join byte-for-byte; CRLF *record terminators* are normalised.
  std::istringstream in("\"a\r\nb\",x\r\n1,2\r\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "a\r\nb");
  EXPECT_EQ(row[1], "x");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "1");
  EXPECT_FALSE(reader.next(row));
}

TEST(CsvReader, ConsecutiveEmbeddedNewlines) {
  std::istringstream in("\"a\n\nb\",x\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[0], "a\n\nb");
  std::istringstream crlf_in("\"a\r\n\r\nb\",x\n");
  CsvReader crlf_reader(crlf_in);
  ASSERT_TRUE(crlf_reader.next(row));
  EXPECT_EQ(row[0], "a\r\n\r\nb");
}

TEST(CsvReader, BareCarriageReturnInsideQuotedField) {
  // A CR that is not part of a CRLF sequence is plain field content.
  std::istringstream in("\"a\rb\",\"c\r\"\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), 2U);
  EXPECT_EQ(row[0], "a\rb");
  EXPECT_EQ(row[1], "c\r");
}

TEST(CsvRoundTrip, CrlfAndQuoteHeavyContentSurvives) {
  const CsvRow original{"a\r\nb", "say \"\"hi\"\"", "tail\"", "\r", ",\n,"};
  std::ostringstream out;
  {
    CsvWriter writer(out);
    writer.write_row(original);
  }
  std::istringstream in(out.str());
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), original.size());
  for (std::size_t i = 0; i < row.size(); ++i) EXPECT_EQ(row[i], original[i]);
  EXPECT_FALSE(reader.next(row));
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRoundTrip, WriterThenReaderPreservesData) {
  std::ostringstream out;
  {
    CsvWriter writer(out);
    writer.write_row({"id", "name", "notes"});
    writer.write_row({"1", "with,comma", "say \"hi\""});
    writer.write_row({"2", "", "multi\nline"});
    EXPECT_EQ(writer.records_written(), 3U);
  }
  std::istringstream in(out.str());
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "with,comma");
  EXPECT_EQ(row[2], "say \"hi\"");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[2], "multi\nline");
}

// ------------------------------------------------------------------ table ----

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Numeric column is right-aligned: "    1" under "12345".
  EXPECT_NE(s.find("    1\n"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRowWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, EmptyTableRendersEmpty) {
  TextTable t;
  EXPECT_EQ(t.render(), "");
}

TEST(TextTableTest, CustomAlignment) {
  TextTable t;
  t.set_header({"x", "y"});
  t.set_alignment({Align::kRight, Align::kLeft});
  t.add_row({"1", "abc"});
  const std::string s = t.render();
  EXPECT_NE(s.find("1  abc"), std::string::npos);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Format, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(79287), "79,287");
  EXPECT_EQ(fmt_count(4672500), "4,672,500");
  EXPECT_EQ(fmt_count(-12345), "-12,345");
}

TEST(Format, Percentages) {
  EXPECT_EQ(fmt_pct(0.745, 1), "74.5%");
  EXPECT_EQ(fmt_pct(0.9989, 2), "99.89%");
}

// ------------------------------------------------------------------- json ----

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\x01") ), "nul\\u0001");
}

TEST(JsonWriterTest, ObjectWithValues) {
  std::ostringstream out;
  {
    JsonWriter w(out, /*pretty=*/false);
    w.begin_object();
    w.value("name", "starlink");
    w.value("sats", 8000LL);
    w.value("eff", 4.5);
    w.value("ok", true);
    w.end_object();
  }
  EXPECT_EQ(out.str(),
            R"({"name":"starlink","sats":8000,"eff":4.5,"ok":true})");
}

TEST(JsonWriterTest, NestedContainers) {
  std::ostringstream out;
  {
    JsonWriter w(out, false);
    w.begin_object();
    w.begin_array("xs");
    w.element(1LL);
    w.element(2LL);
    w.end_array();
    w.begin_object("inner");
    w.value("k", "v");
    w.end_object();
    w.end_object();
  }
  EXPECT_EQ(out.str(), R"({"xs":[1,2],"inner":{"k":"v"}})");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  {
    JsonWriter w(out, false);
    w.begin_array();
    w.element(std::nan(""));
    w.end_array();
  }
  EXPECT_EQ(out.str(), "[null]");
}

TEST(JsonWriterTest, MisuseThrows) {
  std::ostringstream out;
  JsonWriter w(out, false);
  EXPECT_THROW(w.end_object(), std::logic_error);
  EXPECT_THROW(w.value("key", 1.0), std::logic_error);
  w.begin_array();
  EXPECT_THROW(w.value("key", 1.0), std::logic_error);
  EXPECT_THROW(w.end_object(), std::logic_error);
}

TEST(JsonWriterTest, PrettyOutputHasNewlines) {
  std::ostringstream out;
  {
    JsonWriter w(out, true);
    w.begin_object();
    w.value("a", 1LL);
    w.value("b", 2LL);
    w.end_object();
  }
  EXPECT_NE(out.str().find('\n'), std::string::npos);
}

// ------------------------------------------------------------- json parse ----

TEST(JsonParse, Scalars) {
  EXPECT_EQ(json_parse("null").type, JsonValue::Type::kNull);
  EXPECT_TRUE(json_parse("true").bool_v);
  EXPECT_FALSE(json_parse("false").bool_v);
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2").num_v, -1250.0);
  EXPECT_EQ(json_parse("\"a\\nb\"").str_v, "a\nb");
}

TEST(JsonParse, NestedContainers) {
  const JsonValue v =
      json_parse(R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.items.size(), 3U);
  EXPECT_DOUBLE_EQ(a.items[1].num_v, 2.0);
  EXPECT_EQ(a.items[2].at("b").str_v, "x");
  EXPECT_EQ(v.at("c").at("d").type, JsonValue::Type::kNull);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), JsonParseError);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(json_parse("\"\\u0041\"").str_v, "A");
  EXPECT_EQ(json_parse("\"\\u00e9\"").str_v, "\xc3\xa9");
  EXPECT_EQ(json_parse("\"\\u20ac\"").str_v, "\xe2\x82\xac");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(json_parse("{"), JsonParseError);
  EXPECT_THROW(json_parse("[1,]"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(json_parse("01"), JsonParseError);
  EXPECT_THROW(json_parse("nul"), JsonParseError);
  EXPECT_THROW(json_parse("1 2"), JsonParseError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(json_parse("\"tab\tchar\""), JsonParseError);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  std::ostringstream out;
  {
    JsonWriter json(out, /*pretty=*/false);
    json.begin_object();
    json.value("name", "quote \" and backslash \\");
    json.value("n", 42LL);
    json.begin_array("xs");
    json.element(1.5);
    json.element("two");
    json.end_array();
    json.end_object();
  }
  const JsonValue v = json_parse(out.str());
  EXPECT_EQ(v.at("name").str_v, "quote \" and backslash \\");
  EXPECT_DOUBLE_EQ(v.at("n").num_v, 42.0);
  ASSERT_EQ(v.at("xs").items.size(), 2U);
  EXPECT_EQ(v.at("xs").items[1].str_v, "two");
}

}  // namespace
}  // namespace leodivide::io

// Appended: randomized CSV round-trip property tests.
#include "leodivide/stats/rng.hpp"

namespace leodivide::io {
namespace {

std::string random_field(stats::Pcg32& rng) {
  // '\r' included: the reader preserves CR (and CRLF) inside quoted fields
  // exactly, so arbitrary CR/LF mixtures must round-trip.
  static constexpr char kAlphabet[] = "abcXYZ019 ,\"\r\n\t;|-_";
  const std::uint32_t len = 1 + rng.next_below(11);
  std::string out;
  for (std::uint32_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class CsvFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzzRoundTrip, ArbitraryContentSurvives) {
  stats::Pcg32 rng(GetParam());
  std::vector<CsvRow> rows;
  const std::uint32_t n_rows = 2 + rng.next_below(10);
  const std::uint32_t n_cols = 1 + rng.next_below(6);
  for (std::uint32_t r = 0; r < n_rows; ++r) {
    CsvRow row;
    for (std::uint32_t c = 0; c < n_cols; ++c) {
      row.push_back(random_field(rng));
    }
    rows.push_back(std::move(row));
  }
  std::ostringstream out;
  {
    CsvWriter writer(out);
    for (const auto& row : rows) writer.write_row(row);
  }
  std::istringstream in(out.str());
  CsvReader reader(in);
  CsvRow row;
  std::size_t idx = 0;
  while (reader.next(row)) {
    ASSERT_LT(idx, rows.size());
    // Blank-line skipping means all-empty single-field rows may vanish;
    // emit them only when the original row had content.
    EXPECT_EQ(row.size(), rows[idx].size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], rows[idx][c]) << "seed " << GetParam() << " row "
                                      << idx << " col " << c;
    }
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 17));
}  // namespace
}  // namespace leodivide::io
