// Unit tests for leodivide::market — operators, spectrum splits, fairness,
// and the market driver's two load-bearing guarantees: byte-identical
// results for every thread count / operator order, and bit-for-bit
// agreement with the single-operator core/ + afford/ pipeline when one
// Starlink operator runs under the exclusive policy.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/beamspread.hpp"
#include "leodivide/core/longtail.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/market/market.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/snapshot/artifacts.hpp"

namespace leodivide::market {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

const demand::DemandProfile& small_profile() {
  static const demand::DemandProfile profile =
      demand::SyntheticGenerator({.seed = 7, .scale = 0.02})
          .generate_profile();
  return profile;
}

// ---------------------------------------------------------------- operator ----

TEST(OperatorCostsTest, AnnualCostDecomposition) {
  const OperatorCosts costs{.satellite_capex_usd = 1000.0,
                            .launch_capex_usd = 500.0,
                            .ground_capex_usd = 10000.0,
                            .satellite_lifetime_years = 5.0,
                            .annual_opex_fraction = 0.1};
  // 10 satellites: capex = 10*1500 + 10000 = 25000;
  // annual = 25000/5 + 0.1*25000 = 5000 + 2500.
  EXPECT_DOUBLE_EQ(costs.annual_cost_usd(10.0), 7500.0);
  EXPECT_THROW(costs.annual_cost_usd(-1.0), std::invalid_argument);
}

TEST(OperatorCostsTest, RejectsBadParameters) {
  OperatorCosts costs;
  costs.satellite_lifetime_years = 0.0;
  EXPECT_THROW(costs.annual_cost_usd(10.0), std::invalid_argument);
}

TEST(OperatorTest, PresetsValidate) {
  for (const OperatorConfig& op : default_market()) {
    EXPECT_NO_THROW(validate(op)) << op.name;
  }
}

TEST(OperatorTest, StarlinkSizingModelMatchesDefaultBitForBit) {
  // The strict-generalization anchor: the Starlink preset's model must be
  // indistinguishable from core::SizingModel{}.
  const core::SizingModel preset = starlink_operator().sizing_model();
  const core::SizingModel def{};
  EXPECT_TRUE(same_bits(preset.capacity.plan().full_cell_capacity_gbps(),
                        def.capacity.plan().full_cell_capacity_gbps()));
  EXPECT_TRUE(same_bits(preset.capacity.plan().spectral_efficiency(),
                        def.capacity.plan().spectral_efficiency()));
  EXPECT_EQ(preset.capacity.plan().user_beams(),
            def.capacity.plan().user_beams());
  EXPECT_EQ(preset.capacity.plan().beams_per_full_cell(),
            def.capacity.plan().beams_per_full_cell());
  EXPECT_TRUE(same_bits(preset.inclination_deg, def.inclination_deg));
  EXPECT_TRUE(same_bits(preset.cell_area_km2, def.cell_area_km2));
}

TEST(OperatorTest, FullShareReturnsUnscaledModel) {
  const OperatorConfig op = starlink_operator();
  const core::SizingModel full = op.sizing_model();
  const core::SizingModel at_one = op.sizing_model(1.0);
  EXPECT_TRUE(same_bits(full.capacity.plan().full_cell_capacity_gbps(),
                        at_one.capacity.plan().full_cell_capacity_gbps()));
  // A genuine scale halves the user-downlink capacity.
  const core::SizingModel half = op.sizing_model(0.5);
  EXPECT_LT(half.capacity.plan().full_cell_capacity_gbps(),
            full.capacity.plan().full_cell_capacity_gbps());
}

TEST(OperatorTest, SizingModelRejectsBadShare) {
  const OperatorConfig op = starlink_operator();
  EXPECT_THROW(op.sizing_model(0.0), std::invalid_argument);
  EXPECT_THROW(op.sizing_model(1.5), std::invalid_argument);
  EXPECT_THROW(op.sizing_model(-0.5), std::invalid_argument);
}

TEST(OperatorTest, ValidationRejectsMalformedConfigs) {
  {
    OperatorConfig op = starlink_operator();
    op.name.clear();
    EXPECT_THROW(validate(op), std::invalid_argument);
  }
  {
    OperatorConfig op = starlink_operator();
    op.shells.clear();
    EXPECT_THROW(validate(op), std::invalid_argument);
  }
  {
    OperatorConfig op = starlink_operator();
    op.bands.clear();
    EXPECT_THROW(validate(op), std::invalid_argument);
  }
  {
    OperatorConfig op = starlink_operator();
    op.beams_per_full_cell = 0;
    EXPECT_THROW(validate(op), std::invalid_argument);
  }
  {
    OperatorConfig op = starlink_operator();
    op.spectral_efficiency_bps_hz = 0.0;
    EXPECT_THROW(validate(op), std::invalid_argument);
  }
  {
    OperatorConfig op = starlink_operator();
    op.plan.monthly_usd = -1.0;
    EXPECT_THROW(validate(op), std::invalid_argument);
  }
}

// ------------------------------------------------------------------- split ----

TEST(SplitTest, PolicyNamesRoundTrip) {
  for (const SplitPolicy p :
       {SplitPolicy::kExclusive, SplitPolicy::kProportional,
        SplitPolicy::kFairShare}) {
    EXPECT_EQ(split_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW(split_policy_from_string("oligopoly"), std::invalid_argument);
}

TEST(SplitTest, ExclusiveGivesEveryOperatorFullShare) {
  const SpectrumSplit split(default_market(), {});
  for (std::size_t o = 0; o < split.operator_count(); ++o) {
    EXPECT_TRUE(split.uniform(o));
    EXPECT_TRUE(same_bits(split.economic_share(o), 1.0));
    for (std::size_t p = 0; p < split.operator_count(); ++p) {
      EXPECT_TRUE(same_bits(split.share(o, p), 1.0)) << o << "," << p;
    }
  }
}

TEST(SplitTest, SingleOperatorAlwaysHasFullShare) {
  for (const SplitPolicy policy :
       {SplitPolicy::kExclusive, SplitPolicy::kProportional,
        SplitPolicy::kFairShare}) {
    const SpectrumSplit split({starlink_operator()}, {.policy = policy});
    EXPECT_TRUE(split.uniform(0));
    EXPECT_TRUE(same_bits(split.share(0, 0), 1.0)) << to_string(policy);
  }
}

// Two operators with one identical band each: a fully contested table.
std::vector<OperatorConfig> contested_pair() {
  OperatorConfig a = starlink_operator();
  a.name = "alpha";
  OperatorConfig b = starlink_operator();
  b.name = "beta";
  return {std::move(a), std::move(b)};
}

TEST(SplitTest, ProportionalHalvesContestedSpectrum) {
  const SpectrumSplit split(contested_pair(),
                            {.policy = SplitPolicy::kProportional});
  for (std::size_t o = 0; o < 2; ++o) {
    EXPECT_TRUE(split.uniform(o));
    EXPECT_DOUBLE_EQ(split.share(o, 0), 0.5);
    EXPECT_DOUBLE_EQ(split.economic_share(o), 0.5);
  }
}

TEST(SplitTest, FairShareGivesPriorityWeightInOwnZones) {
  const SpectrumSplit split(
      contested_pair(),
      {.policy = SplitPolicy::kFairShare, .priority_weight = 0.7});
  EXPECT_FALSE(split.uniform(0));
  EXPECT_DOUBLE_EQ(split.share(0, 0), 0.7);  // alpha in alpha's zones
  EXPECT_DOUBLE_EQ(split.share(0, 1), 0.3);  // alpha in beta's zones
  EXPECT_DOUBLE_EQ(split.share(1, 1), 0.7);
  EXPECT_DOUBLE_EQ(split.share(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(split.economic_share(0), 0.5);  // zone average
}

TEST(SplitTest, FairShareUncontestedSpectrumStaysWhole) {
  // Starlink (Ku+Ka) vs OneWeb: their Ku tables overlap, Kuiper absent.
  // An operator pair with disjoint tables is untouched by the policy.
  OperatorConfig ku = starlink_operator();
  ku.name = "ku_only";
  ku.bands = {{"10.7-12.7", 10.7, 12.7, 16, spectrum::BeamUsage::kUserDownlink}};
  OperatorConfig ka = starlink_operator();
  ka.name = "ka_only";
  ka.bands = {{"17.8-18.6", 17.8, 18.6, 16, spectrum::BeamUsage::kUserDownlink}};
  const SpectrumSplit split({ku, ka}, {.policy = SplitPolicy::kFairShare});
  for (std::size_t o = 0; o < 2; ++o) {
    EXPECT_TRUE(split.uniform(o));
    EXPECT_TRUE(same_bits(split.share(o, 0), 1.0));
    EXPECT_TRUE(same_bits(split.share(o, 1), 1.0));
  }
}

TEST(SplitTest, PriorityRotatesThroughLatitudeZones) {
  const SpectrumSplit split(
      contested_pair(),
      {.policy = SplitPolicy::kFairShare, .zone_deg = 5.0});
  // Zone k = floor((lat+90)/5), priority = k mod 2.
  EXPECT_EQ(split.priority_operator(-88.0), 0U);  // zone 0
  EXPECT_EQ(split.priority_operator(-83.0), 1U);  // zone 1
  EXPECT_EQ(split.priority_operator(-78.0), 0U);  // zone 2
  EXPECT_EQ(split.priority_operator(42.5), 26U % 2);
  EXPECT_THROW((void)split.priority_operator(91.0), std::invalid_argument);
}

TEST(SplitTest, NonFairShareIgnoresLatitude) {
  const SpectrumSplit split(contested_pair(),
                            {.policy = SplitPolicy::kProportional});
  EXPECT_EQ(split.priority_operator(-88.0), 0U);
  EXPECT_EQ(split.priority_operator(42.5), 0U);
}

TEST(SplitTest, ConfigValidationRejectsBadParameters) {
  EXPECT_THROW(validate(SpectrumSplitConfig{.zone_deg = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(validate(SpectrumSplitConfig{.zone_deg = 200.0}),
               std::invalid_argument);
  EXPECT_THROW(validate(SpectrumSplitConfig{.priority_weight = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(validate(SpectrumSplitConfig{.priority_weight = -0.1}),
               std::invalid_argument);
  EXPECT_NO_THROW(validate(SpectrumSplitConfig{}));
}

// ---------------------------------------------------------------- fairness ----

TEST(JainTest, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0}), 1.0);   // all equal
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0);  // one-hot
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);        // all-zero: equal
  EXPECT_DOUBLE_EQ(jain_index({}), 0.0);                // empty
  EXPECT_NEAR(jain_index({4.0, 2.0}), 36.0 / 40.0, 1e-12);
}

TEST(JainTest, RejectsNegativeAndNonFinite) {
  EXPECT_THROW((void)jain_index({1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW((void)jain_index({1.0, std::nan("")}), std::invalid_argument);
}

// --------------------------------------------------------------- validation ----

TEST(MarketConfigTest, ValidationRejectsBadScenarios) {
  EXPECT_THROW(validate(MarketConfig{}), std::invalid_argument);  // empty
  {
    MarketConfig config;
    config.operators = {starlink_operator(), starlink_operator()};
    EXPECT_THROW(validate(config), std::invalid_argument);  // duplicate name
  }
  {
    MarketConfig config;
    config.operators = {starlink_operator()};
    config.beamspread = 0.5;
    EXPECT_THROW(validate(config), std::invalid_argument);
  }
  {
    MarketConfig config;
    config.operators = {starlink_operator()};
    config.oversub_cap = 0.0;
    EXPECT_THROW(validate(config), std::invalid_argument);
  }
  {
    MarketConfig config;
    config.operators = default_market();
    EXPECT_NO_THROW(validate(config));
  }
}

TEST(MarketSimulationTest, RejectsEmptyProfile) {
  MarketConfig config;
  config.operators = {starlink_operator()};
  const MarketSimulation simulation(std::move(config));
  demand::CountyTable counties;
  counties.add({"90001", {}, 50000.0, 0});
  const demand::DemandProfile empty({}, std::move(counties));
  EXPECT_THROW((void)simulation.run(empty), std::invalid_argument);
}

// ------------------------------------------------- golden: single operator ----

TEST(MarketGoldenTest, SingleStarlinkExclusiveReproducesCorePipeline) {
  const demand::DemandProfile& profile = small_profile();
  MarketConfig config;
  config.operators = {starlink_operator()};
  const MarketSimulation simulation(config);
  const MarketReport report = simulation.run(profile);
  ASSERT_EQ(report.operators.size(), 1U);
  const OperatorOutcome& out = report.operators[0];

  // Every number the single-operator pipeline produces must come back
  // bit-for-bit: the market layer is a strict generalization, not an
  // approximation of it.
  const core::SizingModel model{};
  EXPECT_EQ(out.full,
            core::size_full_service(profile, model, config.beamspread));
  EXPECT_EQ(out.capped, core::size_with_cap(profile, model, config.beamspread,
                                            config.oversub_cap));
  EXPECT_TRUE(same_bits(
      out.served_cell_fraction,
      core::served_cell_fraction(profile, model.capacity, config.beamspread,
                                 config.oversub_cap)));
  EXPECT_TRUE(same_bits(
      out.served_location_fraction,
      core::served_location_fraction(profile, model.capacity,
                                     config.beamspread, config.oversub_cap)));
  EXPECT_EQ(out.longtail,
            core::longtail_curve(profile, model, config.beamspread,
                                 config.oversub_cap));
  const afford::AffordabilityAnalyzer analyzer(profile);
  EXPECT_EQ(out.affordability,
            analyzer.evaluate(config.operators[0].plan));
  EXPECT_TRUE(same_bits(out.economic_share, 1.0));

  // Single operator: it wins every cell it serves; nothing is
  // split-limited.
  EXPECT_EQ(report.fairness.split_limited_cells, 0U);
  EXPECT_DOUBLE_EQ(report.fairness.jain_served_locations, 1.0);
}

// ------------------------------------------------------------- determinism ----

std::string run_serialized(const MarketConfig& config,
                           runtime::Executor& executor) {
  const MarketSimulation simulation(config);
  return snapshot::serialize(simulation.run(small_profile(), executor));
}

TEST(MarketDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  for (const SplitPolicy policy :
       {SplitPolicy::kExclusive, SplitPolicy::kFairShare}) {
    MarketConfig config;
    config.operators = default_market();
    config.split.policy = policy;
    runtime::ThreadPool pool1(1);
    runtime::ThreadPool pool4(4);
    runtime::ThreadPool pool8(8);
    const std::string serial = run_serialized(config, pool1);
    EXPECT_EQ(serial, run_serialized(config, pool4)) << to_string(policy);
    EXPECT_EQ(serial, run_serialized(config, pool8)) << to_string(policy);
  }
}

TEST(MarketDeterminismTest, OperatorOrderOnlyPermutesOutput) {
  // Evaluation order must not change any operator's numbers. (The winner
  // map legitimately differs when the tie-break index order changes, so
  // compare per-operator outcomes and fairness rows by name.)
  MarketConfig forward;
  forward.operators = default_market();
  forward.split.policy = SplitPolicy::kProportional;
  MarketConfig reversed = forward;
  std::reverse(reversed.operators.begin(), reversed.operators.end());

  const MarketReport a = MarketSimulation(forward).run(small_profile());
  const MarketReport b = MarketSimulation(reversed).run(small_profile());
  ASSERT_EQ(a.operators.size(), b.operators.size());
  for (const OperatorOutcome& ours : a.operators) {
    const auto it =
        std::find_if(b.operators.begin(), b.operators.end(),
                     [&ours](const OperatorOutcome& o) {
                       return o.name == ours.name;
                     });
    ASSERT_NE(it, b.operators.end()) << ours.name;
    EXPECT_EQ(ours, *it) << ours.name;
    const std::size_t ia =
        static_cast<std::size_t>(&ours - a.operators.data());
    const std::size_t ib =
        static_cast<std::size_t>(it - b.operators.begin());
    EXPECT_EQ(a.fairness.operators[ia].cells_served,
              b.fairness.operators[ib].cells_served);
    EXPECT_EQ(a.fairness.operators[ia].locations_served,
              b.fairness.operators[ib].locations_served);
  }
  EXPECT_EQ(a.fairness.unserved_cells, b.fairness.unserved_cells);
  EXPECT_EQ(a.fairness.unserved_locations, b.fairness.unserved_locations);
  EXPECT_EQ(a.fairness.capacity_limited_cells,
            b.fairness.capacity_limited_cells);
  EXPECT_EQ(a.fairness.split_limited_cells, b.fairness.split_limited_cells);
}

// -------------------------------------------------------- market invariants ----

MarketReport default_report(SplitPolicy policy) {
  MarketConfig config;
  config.operators = default_market();
  config.split.policy = policy;
  return MarketSimulation(std::move(config)).run(small_profile());
}

TEST(MarketReportTest, WinnerMapAndAttributionAreConsistent) {
  const MarketReport report = default_report(SplitPolicy::kFairShare);
  const std::size_t cells = small_profile().cell_count();
  ASSERT_EQ(report.fairness.winner.size(), cells);

  std::uint64_t won_total = 0;
  for (const OperatorFairness& f : report.fairness.operators) {
    EXPECT_LE(f.cells_won, f.cells_served);
    won_total += f.cells_won;
  }
  EXPECT_EQ(won_total + report.fairness.unserved_cells, cells);
  EXPECT_EQ(report.fairness.capacity_limited_cells +
                report.fairness.split_limited_cells,
            report.fairness.unserved_cells);

  std::uint64_t unserved_in_map = 0;
  for (const std::int32_t w : report.fairness.winner) {
    EXPECT_GE(w, -1);
    EXPECT_LT(w, static_cast<std::int32_t>(report.operators.size()));
    if (w < 0) ++unserved_in_map;
  }
  EXPECT_EQ(unserved_in_map, report.fairness.unserved_cells);
}

TEST(MarketReportTest, SharingNeverServesMoreThanExclusive) {
  const MarketReport exclusive = default_report(SplitPolicy::kExclusive);
  const MarketReport shared = default_report(SplitPolicy::kProportional);
  for (std::size_t o = 0; o < exclusive.operators.size(); ++o) {
    EXPECT_LE(shared.operators[o].served_location_fraction,
              exclusive.operators[o].served_location_fraction)
        << exclusive.operators[o].name;
    // Less spectrum can only grow the capped fleet.
    EXPECT_GE(shared.operators[o].capped.satellites,
              exclusive.operators[o].capped.satellites)
        << exclusive.operators[o].name;
  }
  EXPECT_EQ(exclusive.fairness.split_limited_cells, 0U);
}

TEST(MarketReportTest, CostCurveIsCoherent) {
  const MarketReport report = default_report(SplitPolicy::kExclusive);
  const std::uint64_t total = small_profile().total_locations();
  for (const OperatorOutcome& op : report.operators) {
    ASSERT_FALSE(op.cost_curve.empty()) << op.name;
    const OperatorConfig preset =
        op.name == "starlink"
            ? starlink_operator()
            : (op.name == "oneweb" ? oneweb_operator() : kuiper_operator());
    for (std::size_t i = 0; i < op.cost_curve.size(); ++i) {
      const MarketCostPoint& p = op.cost_curve[i];
      EXPECT_EQ(p.locations_served + p.locations_unserved, total);
      EXPECT_TRUE(same_bits(p.annual_cost_usd,
                            preset.costs.annual_cost_usd(p.satellites)));
      EXPECT_GT(p.cost_per_location_year_usd, 0.0);
      if (i > 0) {
        // Fewest-served first: unserved decreases along the curve.
        EXPECT_LE(p.locations_unserved,
                  op.cost_curve[i - 1].locations_unserved);
      }
    }
  }
}

TEST(MarketReportTest, RenderMentionsEveryOperatorAndPolicy) {
  const MarketReport report = default_report(SplitPolicy::kProportional);
  const std::string text = render_market_report(report);
  EXPECT_NE(text.find("proportional"), std::string::npos);
  for (const OperatorOutcome& op : report.operators) {
    EXPECT_NE(text.find(op.name), std::string::npos) << op.name;
  }
  EXPECT_NE(text.find("Jain"), std::string::npos);
}

TEST(MarketReportTest, FullPriorityWeightStillRuns) {
  // priority_weight = 1: non-priority claimants get zero in contested
  // zones. The run must complete and attribute the casualties to the split.
  MarketConfig config;
  config.operators = contested_pair();
  config.split.policy = SplitPolicy::kFairShare;
  config.split.priority_weight = 1.0;
  const MarketReport report =
      MarketSimulation(std::move(config)).run(small_profile());
  ASSERT_EQ(report.operators.size(), 2U);
  // Fully contested tables: each operator can serve only its own zones.
  EXPECT_LT(report.operators[0].served_cell_fraction, 1.0);
}

}  // namespace
}  // namespace leodivide::market
