// Unit tests for leodivide::afford — plans, income view, the 2% rule.

#include <gtest/gtest.h>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/demand/calibration.hpp"
#include "leodivide/demand/generator.hpp"

namespace leodivide::afford {
namespace {

const demand::DemandProfile& national_profile() {
  static const demand::DemandProfile profile =
      demand::SyntheticGenerator(demand::GeneratorConfig{}).generate_profile();
  return profile;
}

demand::DemandProfile tiny_profile() {
  demand::CountyTable counties;
  counties.add({"90001", {36.0, -90.0}, 30000.0, 100});
  counties.add({"90002", {37.0, -91.0}, 60000.0, 300});
  counties.add({"90003", {38.0, -92.0}, 90000.0, 600});
  std::vector<demand::CellDemand> cells(3);
  for (std::size_t i = 0; i < 3; ++i) {
    cells[i].cell = hex::CellId(5, {static_cast<std::int32_t>(i), 0});
    cells[i].county_index = static_cast<std::uint32_t>(i);
    cells[i].underserved = static_cast<std::uint32_t>(100 * (i == 0 ? 1 : i * 3));
  }
  cells[0].underserved = 100;
  cells[1].underserved = 300;
  cells[2].underserved = 600;
  return {std::move(cells), std::move(counties)};
}

// ------------------------------------------------------------------ plans ----

TEST(Plans, PaperPrices) {
  EXPECT_DOUBLE_EQ(starlink_residential().monthly_usd, 120.0);
  EXPECT_DOUBLE_EQ(starlink_residential_lifeline().monthly_usd, 110.75);
  EXPECT_DOUBLE_EQ(xfinity_300().monthly_usd, 40.0);
  EXPECT_DOUBLE_EQ(spectrum_premier().monthly_usd, 50.0);
}

TEST(Plans, AllPaperPlansAreReliable) {
  for (const auto& p : paper_plans()) {
    EXPECT_TRUE(p.reliable()) << p.name;
  }
}

TEST(Plans, LifelineSubtractsAndFloorsAtZero) {
  EXPECT_DOUBLE_EQ(with_lifeline(120.0), 110.75);
  EXPECT_DOUBLE_EQ(with_lifeline(5.0), 0.0);
}

// -------------------------------------------------------------- thresholds ----

TEST(Threshold, PaperIncomeThresholds) {
  // $120/mo at the 2% rule requires $72,000/yr; with Lifeline $66,450.
  EXPECT_NEAR(income_required_usd(120.0), 72000.0, 1e-9);
  EXPECT_NEAR(income_required_usd(110.75), 66450.0, 1e-9);
  EXPECT_NEAR(income_required_usd(40.0), 24000.0, 1e-9);
  EXPECT_NEAR(income_required_usd(50.0), 30000.0, 1e-9);
}

TEST(Threshold, AffordableBoundaryIsInclusive) {
  EXPECT_TRUE(is_affordable(120.0, 72000.0));
  EXPECT_FALSE(is_affordable(120.0, 71999.0));
}

TEST(Threshold, RejectsBadThreshold) {
  EXPECT_THROW(income_required_usd(100.0, 0.0), std::invalid_argument);
}

// -------------------------------------------------------------- income view ----

TEST(IncomeViewTest, WeightedFractions) {
  const IncomeView view(tiny_profile());
  EXPECT_DOUBLE_EQ(view.total_locations(), 1000.0);
  EXPECT_DOUBLE_EQ(view.locations_with_income_at_most(30000.0), 100.0);
  EXPECT_DOUBLE_EQ(view.locations_with_income_at_most(60000.0), 400.0);
  EXPECT_DOUBLE_EQ(view.fraction_with_income_at_most(90000.0), 1.0);
}

TEST(IncomeViewTest, QuantileWeighted) {
  const IncomeView view(tiny_profile());
  EXPECT_DOUBLE_EQ(view.income_quantile(0.05), 30000.0);
  EXPECT_DOUBLE_EQ(view.income_quantile(0.3), 60000.0);
  EXPECT_DOUBLE_EQ(view.income_quantile(0.9), 90000.0);
  EXPECT_DOUBLE_EQ(view.min_income(), 30000.0);
  EXPECT_DOUBLE_EQ(view.max_income(), 90000.0);
}

TEST(IncomeViewTest, RejectsEmptyProfile) {
  demand::CountyTable counties;
  counties.add({"90001", {}, 50000.0, 0});
  demand::DemandProfile profile({}, std::move(counties));
  EXPECT_THROW(IncomeView{profile}, std::invalid_argument);
}

// ------------------------------------------------------------ affordability ----

TEST(Affordability, TinyProfilePlanEvaluation) {
  const AffordabilityAnalyzer analyzer(tiny_profile());
  // $100/mo requires $60,000: the $30k county (100 locs) is priced out;
  // the $60k county is exactly at the threshold and can afford it.
  const PlanAffordability r =
      analyzer.evaluate({"Test", 100.0, {100.0, 20.0}});
  EXPECT_DOUBLE_EQ(r.income_required_usd, 60000.0);
  EXPECT_DOUBLE_EQ(r.locations_unable, 100.0);
  EXPECT_NEAR(r.fraction_unable, 0.1, 1e-12);
}

TEST(Affordability, NationalF4StarlinkUnaffordableFor74_5Percent) {
  const AffordabilityAnalyzer analyzer(national_profile());
  const auto r = analyzer.evaluate(starlink_residential());
  EXPECT_NEAR(r.fraction_unable, 0.745, 0.005);
  // ~3.5M of 4.7M (F4).
  EXPECT_NEAR(r.locations_unable, 3.48e6, 0.05e6);
}

TEST(Affordability, NationalLifelineLeavesNearly3MUnable) {
  const AffordabilityAnalyzer analyzer(national_profile());
  const auto r = analyzer.evaluate(starlink_residential_lifeline());
  EXPECT_NEAR(r.locations_unable, 2.97e6, 0.05e6);
  EXPECT_NEAR(r.fraction_unable, 0.635, 0.005);
}

TEST(Affordability, NationalComparablePlansAffordableAlmostEverywhere) {
  const AffordabilityAnalyzer analyzer(national_profile());
  for (const auto& plan : {xfinity_300(), spectrum_premier()}) {
    const auto r = analyzer.evaluate(plan);
    EXPECT_LE(r.fraction_unable, 0.0001) << plan.name;  // > 99.99% affordable
  }
}

TEST(Affordability, CurveIsMonotoneDecreasing) {
  const AffordabilityAnalyzer analyzer(national_profile());
  const auto curve = analyzer.curve(starlink_residential(), 0.05, 50);
  ASSERT_EQ(curve.size(), 50U);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].locations_unable, curve[i - 1].locations_unable);
  }
}

TEST(Affordability, CurveAt2PercentMatchesEvaluate) {
  const AffordabilityAnalyzer analyzer(national_profile());
  const auto curve = analyzer.curve(starlink_residential(), 0.05, 100);
  // Point 39 is x = 0.02 exactly (0.05 * 40 / 100).
  const auto& at2pct = curve[39];
  EXPECT_NEAR(at2pct.proportion_of_income, 0.02, 1e-12);
  EXPECT_NEAR(at2pct.locations_unable,
              analyzer.evaluate(starlink_residential()).locations_unable,
              1.0);
}

TEST(Affordability, CurveEndsMatchFig4Annotations) {
  // Fig 4 marks the curve endpoints at proportions 0.050 ($120) and 0.046
  // ($110.75) — the poorest county's income is $28,800.
  const AffordabilityAnalyzer analyzer(national_profile());
  EXPECT_NEAR(analyzer.curve_end(starlink_residential()), 0.050, 0.001);
  EXPECT_NEAR(analyzer.curve_end(starlink_residential_lifeline()), 0.046,
              0.001);
}

TEST(Affordability, EvaluatePaperPlansIsSortedByPrice) {
  const AffordabilityAnalyzer analyzer(national_profile());
  const auto all = analyzer.evaluate_paper_plans();
  ASSERT_EQ(all.size(), 4U);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].plan.monthly_usd, all[i].plan.monthly_usd);
    EXPECT_LE(all[i - 1].locations_unable, all[i].locations_unable);
  }
}

TEST(Affordability, ZeroIncomeCellsAreAlwaysPricedOut) {
  // A county reporting zero median income: any positive price is out of
  // reach, but a free plan (income required $0, inclusive boundary) is not.
  demand::CountyTable counties;
  counties.add({"90001", {36.0, -90.0}, 0.0, 100});
  counties.add({"90002", {37.0, -91.0}, 60000.0, 300});
  std::vector<demand::CellDemand> cells(2);
  cells[0].cell = hex::CellId(5, {0, 0});
  cells[0].county_index = 0;
  cells[0].underserved = 100;
  cells[1].cell = hex::CellId(5, {1, 0});
  cells[1].county_index = 1;
  cells[1].underserved = 300;
  const demand::DemandProfile profile(std::move(cells), std::move(counties));
  const AffordabilityAnalyzer analyzer(profile);

  const PlanAffordability cheap =
      analyzer.evaluate({"Cheap", 0.01, {100.0, 20.0}});
  EXPECT_DOUBLE_EQ(cheap.locations_unable, 100.0);
  EXPECT_NEAR(cheap.fraction_unable, 0.25, 1e-12);

  const PlanAffordability free_plan =
      analyzer.evaluate({"Free", 0.0, {100.0, 20.0}});
  EXPECT_DOUBLE_EQ(free_plan.income_required_usd, 0.0);
  EXPECT_DOUBLE_EQ(free_plan.locations_unable, 0.0);
  EXPECT_DOUBLE_EQ(free_plan.fraction_unable, 0.0);
}

TEST(Affordability, PriceAboveEveryThresholdPricesOutEveryone) {
  // Richest tiny-profile county is $90k: at the 2% rule it affords up to
  // $150/mo. One dollar past the top tier prices out all 1000 locations.
  const AffordabilityAnalyzer analyzer(tiny_profile());
  const PlanAffordability r =
      analyzer.evaluate({"Platinum", 151.0, {1000.0, 100.0}});
  EXPECT_DOUBLE_EQ(r.locations_unable, 1000.0);
  EXPECT_DOUBLE_EQ(r.fraction_unable, 1.0);

  // Exactly at the top tier's threshold the boundary is inclusive: the
  // $90k county (600 locations) can still afford it.
  const PlanAffordability at_top =
      analyzer.evaluate({"AtTop", 150.0, {1000.0, 100.0}});
  EXPECT_DOUBLE_EQ(at_top.locations_unable, 400.0);
  EXPECT_NEAR(at_top.fraction_unable, 0.4, 1e-12);
}

TEST(Affordability, CurveRejectsBadArguments) {
  const AffordabilityAnalyzer analyzer(tiny_profile());
  EXPECT_THROW(analyzer.curve(starlink_residential(), 0.05, 1),
               std::invalid_argument);
  EXPECT_THROW(analyzer.curve(starlink_residential(), 0.0, 10),
               std::invalid_argument);
}

// ------------------------------------------------ parameterized: threshold ----

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, LooserThresholdNeverIncreasesUnaffordability) {
  const double threshold = GetParam();
  const AffordabilityAnalyzer analyzer(national_profile());
  const auto strict =
      analyzer.evaluate(starlink_residential(), threshold);
  const auto loose =
      analyzer.evaluate(starlink_residential(), threshold * 1.5);
  EXPECT_LE(loose.locations_unable, strict.locations_unable);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.01, 0.015, 0.02, 0.025, 0.03,
                                           0.04));

}  // namespace
}  // namespace leodivide::afford
