// Event-driven simulator core tests: certified crossing solver vs brute
// force, deterministic queue ordering, and the golden-equivalence contract
// — the event engine's sampled trace must be byte-identical to the epoch
// kernel's for random Walker shells x all strategies at every thread
// count, including polar and date-line cells. Also pins the steady-state
// event loop's zero-allocation contract via a counting global operator
// new, and checks the trace's exact handover/QoS accounting against the
// naive reference kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "leodivide/demand/dataset.hpp"
#include "leodivide/event/engine.hpp"
#include "leodivide/event/event.hpp"
#include "leodivide/event/queue.hpp"
#include "leodivide/event/trace.hpp"
#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/ecef.hpp"
#include "leodivide/orbit/crossing.hpp"
#include "leodivide/orbit/kepler.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/walker.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/sim/clock.hpp"
#include "leodivide/sim/coverage.hpp"
#include "leodivide/sim/handover.hpp"
#include "leodivide/sim/qos.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/snapshot/artifacts.hpp"
#include "leodivide/stats/rng.hpp"

// ------------------------------------------------------------------------
// Counting allocator hooks (same pin as test_sim_equivalence.cpp): every
// operator new in the process bumps the counter; the steady-state test
// asserts the warmed event loop leaves it untouched.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace leodivide::event {
namespace {

constexpr sim::Strategy kAllStrategies[] = {sim::Strategy::kMostSlack,
                                            sim::Strategy::kFirstFit,
                                            sim::Strategy::kBestFit};

// Minimal one-county table so CellDemand::county_index 0 validates.
demand::CountyTable one_county() {
  demand::CountyTable counties;
  counties.add({"00001", {40.0, -100.0}, 50000.0, 0});
  return counties;
}

// Small synthetic demand profile over a latitude band: enough cells that
// schedules are non-trivial, few enough that the epoch-kernel reference
// runs stay fast.
demand::DemandProfile band_profile(std::uint64_t seed, std::size_t n,
                                   double lat_min, double lat_max) {
  stats::Pcg32 rng(seed);
  std::vector<demand::CellDemand> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    demand::CellDemand c;
    c.center = {lat_min + rng.next_double() * (lat_max - lat_min),
                -180.0 + rng.next_double() * 360.0};
    c.underserved = 1 + static_cast<std::uint32_t>(rng.next_below(2000));
    cells.push_back(c);
  }
  return demand::DemandProfile(std::move(cells), one_county());
}

demand::DemandProfile points_profile(
    const std::vector<geo::GeoPoint>& points) {
  std::vector<demand::CellDemand> cells;
  cells.reserve(points.size());
  std::uint32_t locations = 17;
  for (const geo::GeoPoint& p : points) {
    demand::CellDemand c;
    c.center = p;
    c.underserved = locations;
    locations = locations * 31 % 1900 + 1;
    cells.push_back(c);
  }
  return demand::DemandProfile(std::move(cells), one_county());
}

// ----------------------------------------------------- crossing solver ----

TEST(CrossingSolver, AgreesWithBruteForceFineScan) {
  // Every sign change of g observed on a fine scan must fall inside an
  // emitted window, and outside the windows the scanned sign must be
  // constant between consecutive windows.
  stats::Pcg32 rng(20250808);
  const double horizon = 6000.0;
  const double dt = 0.25;
  for (int trial = 0; trial < 8; ++trial) {
    orbit::CircularOrbit orbit;
    orbit.altitude_km = 400.0 + rng.next_double() * 800.0;
    orbit.inclination_rad = geo::deg2rad(30.0 + rng.next_double() * 68.0);
    orbit.raan_rad = rng.next_double() * 2.0 * 3.141592653589793;
    orbit.phase_rad = rng.next_double() * 2.0 * 3.141592653589793;
    const geo::GeoPoint ground{-80.0 + rng.next_double() * 160.0,
                               -180.0 + rng.next_double() * 360.0};
    const geo::Vec3 u =
        geo::spherical_to_cartesian(ground, geo::kEarthRadiusKm).unit();
    const double cos_psi = std::cos(0.1 + rng.next_double() * 0.3);

    const orbit::ConeCrossingSolver solver(orbit, cos_psi);
    std::vector<orbit::Crossing> crossings;
    orbit::CrossingScratch scratch;
    solver.find(u, 0.0, horizon, crossings, scratch);

    // Windows must be ordered and within the horizon.
    for (std::size_t i = 0; i < crossings.size(); ++i) {
      EXPECT_LE(crossings[i].window_lo_s, crossings[i].window_hi_s);
      EXPECT_GE(crossings[i].window_lo_s, 0.0);
      EXPECT_LE(crossings[i].window_hi_s, horizon);
      if (i > 0) {
        EXPECT_GE(crossings[i].window_lo_s, crossings[i - 1].window_lo_s);
      }
    }

    const auto in_window = [&](double a, double b) {
      for (const orbit::Crossing& c : crossings) {
        if (c.window_lo_s <= b && c.window_hi_s >= a) return true;
      }
      return false;
    };
    std::size_t sign_changes = 0;
    double g_prev = solver.eval(u, 0.0);
    for (double t = dt; t <= horizon; t += dt) {
      const double g = solver.eval(u, t);
      if ((g_prev < 0.0) != (g < 0.0)) {
        ++sign_changes;
        EXPECT_TRUE(in_window(t - dt, t))
            << "unbracketed sign change near t=" << t << " (trial " << trial
            << ")";
      }
      g_prev = g;
    }
    // Certain windows must account for at least the scanned sign changes
    // (scanning can merge a rise+set pair inside one dt, never invent one).
    std::size_t certain = 0;
    for (const orbit::Crossing& c : crossings) {
      if (c.certain) ++certain;
    }
    EXPECT_GE(certain, sign_changes) << "trial " << trial;
  }
}

TEST(CrossingSolver, LatitudePrefilterIsConservative) {
  // An equatorial-ish orbit can never see a polar cell: no crossings, and
  // the scan confirms g stays negative.
  orbit::CircularOrbit orbit;
  orbit.altitude_km = 550.0;
  orbit.inclination_rad = geo::deg2rad(10.0);
  orbit.raan_rad = 0.7;
  orbit.phase_rad = 0.1;
  const geo::Vec3 pole =
      geo::spherical_to_cartesian({88.0, 10.0}, geo::kEarthRadiusKm).unit();
  const double cos_psi = std::cos(geo::deg2rad(20.0));
  const orbit::ConeCrossingSolver solver(orbit, cos_psi);
  EXPECT_FALSE(solver.can_ever_see(pole));
  std::vector<orbit::Crossing> crossings;
  orbit::CrossingScratch scratch;
  solver.find(pole, 0.0, 6000.0, crossings, scratch);
  EXPECT_TRUE(crossings.empty());
  for (double t = 0.0; t <= 6000.0; t += 1.0) {
    ASSERT_LT(solver.eval(pole, t), 0.0) << "t=" << t;
  }
}

TEST(CrossingSolver, RejectsBadConfig) {
  const orbit::CircularOrbit orbit{550.0, 0.9, 0.0, 0.0};
  EXPECT_THROW(orbit::ConeCrossingSolver(orbit, 1.5), std::invalid_argument);
  EXPECT_THROW(orbit::ConeCrossingSolver(orbit, -1.5), std::invalid_argument);
  orbit::CrossingConfig config;
  config.window_s = 0.0;
  EXPECT_THROW(orbit::ConeCrossingSolver(orbit, 0.5, config),
               std::invalid_argument);
}

// ------------------------------------------------- event order + queue ----

TEST(EventOrder, ComparatorIsAStrictTotalOrder) {
  const Event a{1.0, 1.0, 1.1, EventKind::kRise, 2, 3};
  Event b = a;
  EXPECT_FALSE(event_less(a, b));  // irreflexive on equal values
  b.sat = 4;
  EXPECT_TRUE(event_less(a, b));
  EXPECT_FALSE(event_less(b, a));  // antisymmetric
  Event c = b;
  c.cell = 9;
  EXPECT_TRUE(event_less(b, c));
  EXPECT_TRUE(event_less(a, c));  // transitive along the chain
  // Time dominates everything; kind breaks time ties in enum order.
  const Event later{2.0, 2.0, 2.1, EventKind::kInitial, 0, 0};
  EXPECT_TRUE(event_less(c, later));
  const Event initial{1.0, 1.0, 1.1, EventKind::kInitial, 99, 99};
  EXPECT_TRUE(event_less(initial, a));  // kInitial < kRise at equal time
  const Event set{1.0, 1.0, 1.1, EventKind::kSet, 0, 0};
  const Event graze{1.0, 1.0, 1.1, EventKind::kGraze, 0, 0};
  EXPECT_TRUE(event_less(a, set));
  EXPECT_TRUE(event_less(set, graze));
}

TEST(EventQueue, PopOrderIsSortedAndPushOrderInvariant) {
  stats::Pcg32 rng(42);
  std::vector<Event> events;
  for (int i = 0; i < 500; ++i) {
    Event ev;
    ev.time_s = static_cast<double>(rng.next_below(64));  // force time ties
    ev.window_lo_s = ev.time_s;
    ev.window_hi_s = ev.time_s + 0.001;
    ev.kind = static_cast<EventKind>(rng.next_below(4));
    ev.cell = static_cast<std::uint32_t>(rng.next_below(16));
    ev.sat = static_cast<std::uint32_t>(rng.next_below(1000));
    events.push_back(ev);
  }

  const auto drain = [](EventQueue& q) {
    std::vector<Event> out;
    out.reserve(q.size());
    while (!q.empty()) out.push_back(q.pop_min());
    return out;
  };

  EventQueue queue;
  for (const Event& ev : events) queue.push(ev);
  const std::vector<Event> forward = drain(queue);
  ASSERT_EQ(forward.size(), events.size());
  for (std::size_t i = 1; i < forward.size(); ++i) {
    EXPECT_FALSE(event_less(forward[i], forward[i - 1])) << "index " << i;
  }

  // Reversed and shuffled push orders must pop identically.
  for (std::uint64_t shuffle_seed : {1ULL, 2ULL}) {
    std::vector<Event> permuted = events;
    stats::Pcg32 shuffle_rng(shuffle_seed);
    for (std::size_t i = permuted.size(); i > 1; --i) {
      std::swap(permuted[i - 1], permuted[shuffle_rng.next_below(i)]);
    }
    for (const Event& ev : permuted) queue.push(ev);
    EXPECT_TRUE(drain(queue) == forward);
  }
  std::vector<Event> reversed(events.rbegin(), events.rend());
  for (const Event& ev : reversed) queue.push(ev);
  EXPECT_TRUE(drain(queue) == forward);
}

// ---------------------------------------------------- golden equivalence ----

sim::SimulationConfig fine_config(double duration_s, double step_s) {
  sim::SimulationConfig config;
  // Small shell: contact dynamics without epoch-kernel reference runs
  // dominating the test's wall clock.
  config.shell = {53.0, 550.0, 6, 6, 1};
  config.duration_s = duration_s;
  config.step_s = step_s;
  return config;
}

TEST(GoldenEquivalence, RandomShellsAllStrategiesMatchEpochKernel) {
  stats::Pcg32 rng(20250807);
  for (int trial = 0; trial < 3; ++trial) {
    sim::SimulationConfig config = fine_config(1200.0, 7.5);
    config.shell.inclination_deg = 45.0 + rng.next_double() * 52.0;
    config.shell.altitude_km = 400.0 + rng.next_double() * 700.0;
    config.shell.planes = 4 + static_cast<std::uint32_t>(rng.next_below(4));
    config.shell.sats_per_plane =
        4 + static_cast<std::uint32_t>(rng.next_below(4));
    config.shell.phasing =
        static_cast<std::uint32_t>(rng.next_below(config.shell.planes));
    const auto profile = band_profile(1000 + trial, 50, -80.0, 80.0);
    for (const sim::Strategy strategy : kAllStrategies) {
      config.scheduler.strategy = strategy;
      const sim::Simulation epoch_sim(config, profile);
      EventSimulation event_sim(config, profile);
      const auto expected = epoch_sim.run(runtime::serial_executor());
      const auto actual = event_sim.run(runtime::serial_executor());
      ASSERT_EQ(expected.size(), actual.size());
      for (std::size_t e = 0; e < expected.size(); ++e) {
        ASSERT_TRUE(expected[e] == actual[e])
            << "trial " << trial << " strategy "
            << static_cast<int>(strategy) << " epoch " << e;
      }
    }
  }
}

TEST(GoldenEquivalence, PolarAndDateLineCellsMatchEpochKernel) {
  std::vector<geo::GeoPoint> points;
  for (double lat : {90.0, 89.9, 88.0, -88.0, -89.9, -90.0}) {
    for (double lon : {-170.0, -45.0, 0.0, 60.0, 179.0}) {
      points.push_back({lat, lon});
    }
  }
  for (double lon : {179.99, 179.5, 178.0, -178.0, -179.5, -179.99, 180.0}) {
    for (double lat : {-40.0, 0.0, 35.0, 62.0}) {
      points.push_back({lat, lon});
    }
  }
  const auto profile = points_profile(points);
  sim::SimulationConfig config = fine_config(900.0, 6.0);
  config.shell = {97.0, 600.0, 6, 6, 1};  // polar: passes over the caps
  for (const sim::Strategy strategy : kAllStrategies) {
    config.scheduler.strategy = strategy;
    const sim::Simulation epoch_sim(config, profile);
    EventSimulation event_sim(config, profile);
    const auto expected = epoch_sim.run(runtime::serial_executor());
    const auto actual = event_sim.run(runtime::serial_executor());
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t e = 0; e < expected.size(); ++e) {
      ASSERT_TRUE(expected[e] == actual[e])
          << "strategy " << static_cast<int>(strategy) << " epoch " << e;
    }
  }
}

TEST(GoldenEquivalence, IdenticalAcrossThreadCounts) {
  const auto profile = band_profile(7, 60, -80.0, 80.0);
  const sim::SimulationConfig config = fine_config(1200.0, 10.0);

  const sim::Simulation epoch_sim(config, profile);
  const auto expected = epoch_sim.run(runtime::serial_executor());

  EventSimulation event_sim(config, profile);
  const auto serial = event_sim.run(runtime::serial_executor());
  runtime::ThreadPool pool4(4);
  const auto threads4 = event_sim.run(pool4);
  runtime::ThreadPool pool8(8);
  const auto threads8 = event_sim.run(pool8);

  EXPECT_TRUE(serial == expected);
  EXPECT_TRUE(serial == threads4);
  EXPECT_TRUE(serial == threads8);

  // The full trace — events, segments, exact handover totals — must also
  // be thread-count invariant, not just the sampled projection.
  const EventTrace trace_serial = event_sim.run_trace(runtime::serial_executor());
  const EventTrace trace4 = event_sim.run_trace(pool4);
  const EventTrace trace8 = event_sim.run_trace(pool8);
  EXPECT_TRUE(trace_serial == trace4);
  EXPECT_TRUE(trace_serial == trace8);
}

// -------------------------------------------------- exact trace accounting ----

TEST(EventTraceAccounting, SegmentsMatchNaiveKernelAndPartitionHorizon) {
  const auto profile = band_profile(11, 40, -70.0, 70.0);
  const sim::SimulationConfig config = fine_config(1500.0, 12.5);
  EventSimulation event_sim(config, profile);
  const EventTrace trace = event_sim.run_trace(runtime::serial_executor());

  ASSERT_FALSE(trace.segments.empty());
  EXPECT_EQ(trace.segments.front().begin_s, 0.0);
  EXPECT_EQ(trace.segments.back().end_s, config.duration_s);
  for (std::size_t i = 1; i < trace.segments.size(); ++i) {
    EXPECT_EQ(trace.segments[i].begin_s, trace.segments[i - 1].end_s);
  }
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_FALSE(event_less(trace.events[i], trace.events[i - 1]));
  }
  EXPECT_GE(trace.boundaries, trace.segments.size());

  // Each segment's coverage, QoS and the accumulated handover totals must
  // equal what the naive reference kernel computes at the segment starts.
  const auto orbits = orbit::make_constellation(config.shell);
  const core::SatelliteCapacityModel model;
  const auto& scheduler = event_sim.scheduler();
  const std::size_t n_cells = scheduler.cells().size();
  sim::HandoverStats expected_handovers;
  sim::ScheduleResult prev;
  for (std::size_t i = 0; i < trace.segments.size(); ++i) {
    const CoverageSegment& segment = trace.segments[i];
    const sim::ScheduleResult ref = scheduler.schedule_reference(
        orbit::propagate_all(orbits, segment.begin_s));
    const sim::EpochCoverage coverage =
        sim::summarize_epoch(ref, n_cells, segment.begin_s);
    EXPECT_TRUE(segment.coverage == coverage) << "segment " << i;
    const sim::QosSummary qos = sim::summarize_qos(sim::compute_qos(
        scheduler.cells(), ref, model, config.scheduler,
        config.oversub_target));
    EXPECT_TRUE(segment.qos == qos) << "segment " << i;
    if (i > 0) {
      // Consecutive segments hold distinct schedules by construction.
      EXPECT_FALSE(ref == prev) << "segment " << i << " not merged";
      expected_handovers += sim::compare_schedules(prev, ref, n_cells);
    }
    prev = ref;
  }
  EXPECT_TRUE(trace.handovers == expected_handovers);
}

TEST(EventTraceAccounting, SampleEpochsRejectsEmptyTrace) {
  EventTrace trace;
  trace.duration_s = 100.0;
  trace.step_s = 10.0;
  EXPECT_THROW(sample_epochs(trace), std::invalid_argument);
}

TEST(EventTraceAccounting, RejectsBadEventConfig) {
  const auto profile = band_profile(3, 4, -40.0, 40.0);
  EventConfig bad;
  bad.window_s = 0.0;
  EXPECT_THROW(EventSimulation(sim::SimulationConfig{}, profile, {}, bad),
               std::invalid_argument);
  bad = EventConfig{};
  bad.guard_s = -1.0;
  EXPECT_THROW(EventSimulation(sim::SimulationConfig{}, profile, {}, bad),
               std::invalid_argument);
  bad = EventConfig{};
  bad.eval_slack = -1e-9;
  EXPECT_THROW(EventSimulation(sim::SimulationConfig{}, profile, {}, bad),
               std::invalid_argument);
}

// ------------------------------------------------------- zero allocation ----

TEST(EventWorkspaceTest, SteadyStateEventLoopIsAllocationFree) {
  const auto profile = band_profile(13, 30, -60.0, 60.0);
  const sim::SimulationConfig config = fine_config(1200.0, 5.0);
  EventSimulation event_sim(config, profile);
  EventTrace trace;
  // Two warm-up runs: the first sizes every buffer, the second settles any
  // lazily-grown capacity (queue, spans, segments).
  event_sim.run_trace(runtime::serial_executor(), trace);
  event_sim.run_trace(runtime::serial_executor(), trace);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  event_sim.run_trace(runtime::serial_executor(), trace);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "steady-state event loop performed " << (after - before)
      << " heap allocations";
}

// -------------------------------------------------------------- snapshot ----

TEST(EventTraceSnapshot, LiveRunRoundTripsExactly) {
  // A trace produced by a real event-driven run must survive the LDSNAP
  // round trip bit-for-bit, including every drained event and segment.
  const auto profile = band_profile(29, 25, -55.0, 55.0);
  const sim::SimulationConfig config = fine_config(900.0, 7.5);
  EventSimulation event_sim(config, profile);
  const EventTrace trace = [&] {
    EventTrace t;
    event_sim.run_trace(runtime::serial_executor(), t);
    return t;
  }();
  ASSERT_FALSE(trace.segments.empty());

  const std::string blob = snapshot::serialize(trace);
  const EventTrace restored = snapshot::deserialize_event_trace(blob);
  EXPECT_EQ(restored, trace);

  // Sampling the restored trace must reproduce the original projection —
  // the cached-blob-replaces-recomputation contract.
  EXPECT_EQ(sample_epochs(restored), sample_epochs(trace));
}

}  // namespace
}  // namespace leodivide::event
