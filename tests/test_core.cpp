// Unit tests for leodivide::core — the paper's analytical model. These pin
// the library's outputs to the published numbers (Table 1, F1, Table 2,
// Figures 2 and 3).

#include <gtest/gtest.h>

#include <cmath>

#include "leodivide/core/beamspread.hpp"
#include "leodivide/core/capacity_model.hpp"
#include "leodivide/core/longtail.hpp"
#include "leodivide/core/oversubscription.hpp"
#include "leodivide/core/report.hpp"
#include "leodivide/core/scenario.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/calibration.hpp"
#include "leodivide/demand/generator.hpp"

namespace leodivide::core {
namespace {

const demand::DemandProfile& national_profile() {
  static const demand::DemandProfile profile =
      demand::SyntheticGenerator(demand::GeneratorConfig{}).generate_profile();
  return profile;
}

// --------------------------------------------------------- capacity model ----

TEST(CapacityModel, Table1Numbers) {
  const SatelliteCapacityModel model;
  EXPECT_NEAR(model.cell_capacity_gbps(), 17.325, 1e-9);
  EXPECT_NEAR(model.beam_capacity_gbps(), 4.33125, 1e-9);
  EXPECT_NEAR(model.cell_demand_gbps(5998), 599.8, 1e-9);
  EXPECT_NEAR(model.required_oversubscription(5998), 34.62, 0.01);
  EXPECT_EQ(model.max_locations_at(20.0), 3465U);
  EXPECT_EQ(model.max_locations_at(35.0), 6063U);
}

TEST(CapacityModel, Table1SummaryAgainstNationalProfile) {
  const SatelliteCapacityModel model;
  const Table1Summary t = model.table1(national_profile());
  EXPECT_NEAR(t.ut_downlink_mhz, 3850.0, 1e-9);
  EXPECT_NEAR(t.total_mhz, 8850.0, 1e-9);
  EXPECT_EQ(t.ut_beams, 24U);
  EXPECT_EQ(t.total_beams, 28U);
  EXPECT_NEAR(t.spectral_efficiency, 4.5, 1e-12);
  EXPECT_EQ(t.peak_cell_users, 5998U);
  EXPECT_NEAR(t.peak_cell_demand_gbps, 599.8, 1e-9);
  EXPECT_NEAR(t.max_oversubscription, 35.0, 0.5);  // paper rounds ~35:1
}

TEST(CapacityModel, BeamsNeededLadder) {
  const SatelliteCapacityModel model;
  // At 20:1 a beam carries 866 locations.
  EXPECT_EQ(model.beams_needed(0, 20.0), 0U);
  EXPECT_EQ(model.beams_needed(1, 20.0), 1U);
  EXPECT_EQ(model.beams_needed(866, 20.0), 1U);
  EXPECT_EQ(model.beams_needed(867, 20.0), 2U);
  EXPECT_EQ(model.beams_needed(1733, 20.0), 3U);
  EXPECT_EQ(model.beams_needed(2599, 20.0), 4U);
  EXPECT_EQ(model.beams_needed(3465, 20.0), 4U);
  // Above the cap the beam count saturates at 4 (capacity binds instead).
  EXPECT_EQ(model.beams_needed(5998, 20.0), 4U);
}

TEST(CapacityModel, RejectsBadOversub) {
  const SatelliteCapacityModel model;
  EXPECT_THROW(model.max_locations_at(0.0), std::invalid_argument);
  EXPECT_THROW(model.beams_needed(10, -1.0), std::invalid_argument);
}

TEST(CapacityModel, RequiredOversubscriptionIsLinear) {
  const SatelliteCapacityModel model;
  EXPECT_NEAR(model.required_oversubscription(3465), 20.0, 0.01);
  EXPECT_NEAR(model.required_oversubscription(1733) * 2.0,
              model.required_oversubscription(3466), 0.01);
}

// -------------------------------------------------------- oversubscription ----

TEST(Oversubscription, F1NumbersReproduce) {
  const OversubscriptionReport r =
      analyze_oversubscription(national_profile(), SatelliteCapacityModel());
  EXPECT_EQ(r.max_locations_at_cap, 3465U);
  EXPECT_EQ(r.cells_above_cap, 5U);
  EXPECT_EQ(r.locations_above_cap, 22428U);
  EXPECT_EQ(r.locations_unservable_at_cap, 5103U);
  EXPECT_NEAR(r.servable_fraction_at_cap, 0.9989, 0.0001);
  EXPECT_NEAR(r.peak_oversubscription, 34.62, 0.01);
}

TEST(Oversubscription, LooserCapServesEveryone) {
  const OversubscriptionReport r = analyze_oversubscription(
      national_profile(), SatelliteCapacityModel(), 35.0);
  EXPECT_EQ(r.locations_unservable_at_cap, 0U);
  EXPECT_DOUBLE_EQ(r.servable_fraction_at_cap, 1.0);
}

TEST(Oversubscription, EmptyProfileIsFullyServable) {
  demand::CountyTable counties;
  counties.add({"90001", {}, 1.0, 0});
  const demand::DemandProfile empty({}, std::move(counties));
  const OversubscriptionReport r =
      analyze_oversubscription(empty, SatelliteCapacityModel());
  EXPECT_DOUBLE_EQ(r.servable_fraction_at_cap, 1.0);
}

// --------------------------------------------------------------- beamspread ----

TEST(Beamspread, SpreadCapacityAndLimits) {
  const SatelliteCapacityModel model;
  EXPECT_NEAR(spread_cell_capacity_gbps(model, 1.0), 17.325, 1e-9);
  EXPECT_NEAR(spread_cell_capacity_gbps(model, 5.0), 3.465, 1e-9);
  EXPECT_EQ(max_locations_spread(model, 1.0, 20.0), 3465U);
  EXPECT_EQ(max_locations_spread(model, 5.0, 20.0), 693U);
}

TEST(Beamspread, CellServedCriterion) {
  const SatelliteCapacityModel model;
  EXPECT_TRUE(cell_served(model, 693, 5.0, 20.0));
  EXPECT_FALSE(cell_served(model, 694, 5.0, 20.0));
  EXPECT_THROW(cell_served(model, 1, 1.0, 0.0), std::invalid_argument);
}

// ----------------------------------------------------------- served fraction ----

TEST(ServedFraction, Fig2CornersMatchPaperColorbar) {
  const SatelliteCapacityModel model;
  // Bottom-left of Fig 2 (beamspread 14, oversub 5) ~ 0.36; top-right
  // (beamspread 2, oversub 30) ~ 0.99+.
  const double lo = served_cell_fraction(national_profile(), model, 14.0, 5.0);
  const double hi = served_cell_fraction(national_profile(), model, 2.0, 30.0);
  EXPECT_NEAR(lo, 0.36, 0.02);
  EXPECT_GE(hi, 0.99);
}

TEST(ServedFraction, MonotoneInBothAxes) {
  const SatelliteCapacityModel model;
  const auto& p = national_profile();
  EXPECT_LE(served_cell_fraction(p, model, 10.0, 10.0),
            served_cell_fraction(p, model, 5.0, 10.0));
  EXPECT_LE(served_cell_fraction(p, model, 10.0, 10.0),
            served_cell_fraction(p, model, 10.0, 20.0));
}

TEST(ServedFraction, LocationFractionAtUnitSpread) {
  // At beamspread 1 and the 20:1 cap, 99.89% of locations are servable —
  // but served_location_fraction counts whole cells, so cells above the cap
  // contribute nothing: 1 - 22428/4.67M = 0.9952.
  const SatelliteCapacityModel model;
  const double f =
      served_location_fraction(national_profile(), model, 1.0, 20.0);
  EXPECT_NEAR(f, 1.0 - 22428.0 / 4672500.0, 1e-6);
}

TEST(ServedFraction, GridShapeMatchesAxes) {
  const SatelliteCapacityModel model;
  const auto grid = served_fraction_grid(national_profile(), model,
                                         {2.0, 8.0, 14.0}, {5.0, 20.0});
  ASSERT_EQ(grid.size(), 3U);
  ASSERT_EQ(grid[0].size(), 2U);
  // Fractions are fractions.
  for (const auto& row : grid) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

// ------------------------------------------------------------------- sizing ----

TEST(Sizing, CoverageUnitsMatchReverseEngineeredK) {
  // K at the calibrated binding latitudes must reproduce the paper's
  // Table 2 constants (that is how the latitudes were derived).
  const SizingModel model;
  const double lat_full = demand::paper::binding_latitude_for_k(
      demand::paper::kKFullService, model.cell_area_km2);
  EXPECT_NEAR(coverage_units(model, lat_full), demand::paper::kKFullService,
              1.0);
}

TEST(Sizing, SatellitesFromKMatchesPaperFormula) {
  const SizingModel model;
  // N = K / (1 + 20 s) for b = 4.
  EXPECT_NEAR(satellites_from_k(model, 1665076.0, 1.0, 4), 79289.3, 1.0);
  EXPECT_NEAR(satellites_from_k(model, 1665076.0, 5.0, 4), 16486.0, 1.0);
  EXPECT_NEAR(satellites_from_k(model, 1691819.0, 15.0, 4), 5620.7, 1.0);
}

TEST(Sizing, Table2FullServiceWithinHalfPercent) {
  const SizingModel model;
  const struct { double s; double paper; } rows[] = {
      {1, 79287}, {2, 40611}, {5, 16486}, {10, 8284}, {15, 5532}};
  for (const auto& row : rows) {
    const SizingResult r = size_full_service(national_profile(), model, row.s);
    EXPECT_NEAR(r.satellites, row.paper, row.paper * 0.005)
        << "beamspread " << row.s;
    EXPECT_EQ(r.beams_on_binding, 4U);
  }
}

TEST(Sizing, Table2CappedWithinHalfPercent) {
  const SizingModel model;
  const struct { double s; double paper; } rows[] = {
      {1, 80567}, {2, 41261}, {5, 16750}, {10, 8417}, {15, 5621}};
  for (const auto& row : rows) {
    const SizingResult r =
        size_with_cap(national_profile(), model, row.s, 20.0);
    EXPECT_NEAR(r.satellites, row.paper, row.paper * 0.005)
        << "beamspread " << row.s;
    EXPECT_EQ(r.beams_on_binding, 4U);
  }
}

TEST(Sizing, CappedScenarioNeedsMoreSatellitesThanFullService) {
  // The paper's counterintuitive Table-2 property: the 20:1 cap binds at a
  // cell slightly further from the inclination latitude, so it needs MORE
  // satellites than full service at every beamspread.
  const SizingModel model;
  for (double s : {1.0, 2.0, 5.0, 10.0, 15.0}) {
    EXPECT_GT(size_with_cap(national_profile(), model, s, 20.0).satellites,
              size_full_service(national_profile(), model, s).satellites);
  }
}

TEST(Sizing, FullServiceBindingIsThePeakCell) {
  const SizingModel model;
  const SizingResult r = size_full_service(national_profile(), model, 1.0);
  EXPECT_EQ(national_profile().cells()[r.binding_cell_index].underserved,
            5998U);
  EXPECT_NEAR(r.binding_lat_deg, 37.0, 0.5);
}

TEST(Sizing, CappedBindingIsTheSouthernmostFourBeamCell) {
  const SizingModel model;
  const SizingResult r = size_with_cap(national_profile(), model, 1.0, 20.0);
  EXPECT_NEAR(r.binding_lat_deg, 36.4, 0.5);
  // The binding cell is one of the five planted peaks (truncated to 3465).
  EXPECT_GT(national_profile().cells()[r.binding_cell_index].underserved,
            3465U);
}

TEST(Sizing, MoreBeamspreadAlwaysShrinksConstellation) {
  const SizingModel model;
  double prev = 1e18;
  for (double s : {1.0, 2.0, 5.0, 10.0, 15.0}) {
    const double n = size_full_service(national_profile(), model, s).satellites;
    EXPECT_LT(n, prev);
    prev = n;
  }
}

TEST(Sizing, RejectsEmptyProfileAndBadK) {
  demand::CountyTable counties;
  counties.add({"90001", {}, 1.0, 0});
  const demand::DemandProfile empty({}, std::move(counties));
  const SizingModel model;
  EXPECT_THROW(size_full_service(empty, model, 1.0), std::invalid_argument);
  EXPECT_THROW(size_with_cap(empty, model, 1.0, 20.0), std::invalid_argument);
  EXPECT_THROW(satellites_from_k(model, 0.0, 1.0, 4), std::invalid_argument);
}

// ----------------------------------------------------------------- longtail ----

TEST(LongTail, ResidueMatchesF1) {
  const SizingModel model;
  const auto curve = longtail_curve(national_profile(), model, 10.0, 20.0);
  ASSERT_GE(curve.size(), 2U);
  // The first point's unserved count is the 20:1 unservable residue (5103).
  EXPECT_EQ(curve.front().locations_unserved, 5103U);
}

TEST(LongTail, FirstPointMatchesTable2) {
  const SizingModel model;
  for (double s : {1.0, 5.0, 10.0}) {
    const auto curve = longtail_curve(national_profile(), model, s, 20.0);
    const SizingResult direct =
        size_with_cap(national_profile(), model, s, 20.0);
    EXPECT_NEAR(curve.front().satellites, direct.satellites, 1e-6);
  }
}

TEST(LongTail, CurveIsMonotone) {
  const SizingModel model;
  const auto curve = longtail_curve(national_profile(), model, 10.0, 20.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].locations_unserved, curve[i - 1].locations_unserved);
    EXPECT_LE(curve[i].satellites, curve[i - 1].satellites);
  }
}

TEST(LongTail, DiminishingReturnsAreSignificant) {
  // F3: connecting the final few thousand locations costs hundreds to
  // thousands of satellites. Compare the constellation at the residue vs
  // 50k unserved.
  const SizingModel model;
  const auto curve = longtail_curve(national_profile(), model, 10.0, 20.0);
  const double full = satellites_for_unserved_budget(curve, 5103);
  const double relaxed = satellites_for_unserved_budget(curve, 50000);
  EXPECT_GT(full - relaxed, 200.0);
}

TEST(LongTail, BudgetLookupSemantics) {
  const SizingModel model;
  const auto curve = longtail_curve(national_profile(), model, 5.0, 20.0);
  // Exactly at the residue: the full capped deployment.
  EXPECT_NEAR(satellites_for_unserved_budget(curve, 5103),
              curve.front().satellites, 1e-9);
  // Below the residue: impossible.
  EXPECT_THROW(satellites_for_unserved_budget(curve, 0),
               std::invalid_argument);
  // A huge budget reaches the one-beam floor.
  EXPECT_NEAR(satellites_for_unserved_budget(curve, 100000000ULL),
              curve.back().satellites, 1e-9);
}

TEST(LongTail, StricterOversubIncreasesResidue) {
  const SizingModel model;
  const auto at20 = longtail_curve(national_profile(), model, 5.0, 20.0);
  const auto at15 = longtail_curve(national_profile(), model, 5.0, 15.0);
  EXPECT_GT(at15.front().locations_unserved, at20.front().locations_unserved);
}

// ----------------------------------------------------------------- scenario ----

TEST(Scenario, FullAnalysisIsConsistent) {
  const AnalysisResults r = run_full_analysis(national_profile());
  EXPECT_EQ(r.table2.size(), 5U);
  EXPECT_EQ(r.fig2_grid.size(), r.fig2_beamspreads.size());
  EXPECT_EQ(r.fig3.size(), 6U);
  EXPECT_EQ(r.fig4.size(), 4U);
  EXPECT_NEAR(r.fig4_starlink_threshold_income, 72000.0, 1e-6);
  EXPECT_NEAR(r.fig4_lifeline_threshold_income, 66450.0, 1e-6);
}

TEST(Scenario, ReportRendersEverySection) {
  const AnalysisResults r = run_full_analysis(national_profile());
  const std::string report = render_report(r);
  for (const char* needle :
       {"Table 1", "F1", "Table 2", "Figure 2", "Figure 3", "Figure 4",
        "3850", "5,998", "22,428", "74.5%"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

// ----------------------------------------- parameterized: sizing invariants ----

class SizingInvariants : public ::testing::TestWithParam<double> {};

TEST_P(SizingInvariants, KIdentityHoldsAcrossBeamspreads) {
  // N(s) * (1 + 20 s) is constant per scenario — the identity that let us
  // reverse-engineer the paper's Table 2.
  const double s = GetParam();
  const SizingModel model;
  const double n_full =
      size_full_service(national_profile(), model, s).satellites;
  const double n1 =
      size_full_service(national_profile(), model, 1.0).satellites;
  EXPECT_NEAR(n_full * (1.0 + 20.0 * s), n1 * 21.0, n1 * 21.0 * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Beamspreads, SizingInvariants,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 7.5, 10.0,
                                           12.0, 15.0));

}  // namespace
}  // namespace leodivide::core

// Appended: extension modules (core/uplink.hpp, core/backhaul.hpp).
#include "leodivide/core/backhaul.hpp"
#include "leodivide/core/uplink.hpp"

namespace leodivide::core {
namespace {

TEST(Uplink, FederalUplinkDemandIs20Mbps) {
  EXPECT_DOUBLE_EQ(location_uplink_demand_gbps(), 0.02);
}

TEST(Uplink, DefaultModelCapacity) {
  const UplinkModel up;
  EXPECT_NEAR(up.cell_capacity_gbps(), 1.25, 1e-9);  // 500 MHz x 2.5 bps/Hz
}

TEST(Uplink, PeakCellUplinkBindsHarderThanDownlink) {
  const SatelliteCapacityModel down;
  const UplinkModel up;
  const auto r = analyze_uplink(down, up, 5998);
  EXPECT_NEAR(r.downlink_oversubscription, 34.62, 0.01);
  EXPECT_NEAR(r.uplink_oversubscription, 95.97, 0.05);
  EXPECT_GT(r.uplink_to_downlink_ratio, 2.5);
  // At a 20:1 uplink rule the cell serves far fewer locations than the
  // downlink's 3465.
  EXPECT_EQ(r.max_locations_at_20to1_uplink, 1250U);
  EXPECT_LT(r.max_locations_at_20to1_uplink, down.max_locations_at(20.0));
}

TEST(Uplink, RatioIsLocationIndependent) {
  const SatelliteCapacityModel down;
  const UplinkModel up;
  const double r1 = analyze_uplink(down, up, 100).uplink_to_downlink_ratio;
  const double r2 = analyze_uplink(down, up, 5998).uplink_to_downlink_ratio;
  EXPECT_NEAR(r1, r2, 1e-9);
}

TEST(Uplink, RejectsBadModel) {
  const SatelliteCapacityModel down;
  UplinkModel bad;
  bad.ut_uplink_mhz = 0.0;
  EXPECT_THROW((void)analyze_uplink(down, bad, 10), std::invalid_argument);
}

TEST(Backhaul, DefaultModelRoughlySustainsUserBeams) {
  const SatelliteCapacityModel model;
  const BackhaulModel bh;
  const auto r = analyze_backhaul(model, bh);
  // 24 beams x 4.33125 = 103.95 Gbps of user capacity.
  EXPECT_NEAR(r.user_capacity_gbps, 103.95, 0.01);
  // 2 links x 7100 MHz x 4.5 = 63.9 Gbps feeder.
  EXPECT_NEAR(r.feeder_capacity_gbps, 63.9, 0.01);
  EXPECT_NEAR(r.adequacy_ratio, 0.615, 0.005);
  EXPECT_NEAR(r.bent_pipe_fraction, 0.615, 0.005);
}

TEST(Backhaul, MoreFeederLinksImproveAdequacy) {
  const SatelliteCapacityModel model;
  BackhaulModel bh;
  bh.feeder_links = 4;
  const auto r = analyze_backhaul(model, bh);
  EXPECT_GT(r.adequacy_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.bent_pipe_fraction, 1.0);
}

TEST(Backhaul, GatewaySitesScaleWithFleet) {
  const BackhaulModel bh;
  const double small = gateway_sites_needed(bh, 8000.0, 53.0, 39.5, 8.1e6);
  const double large = gateway_sites_needed(bh, 40000.0, 53.0, 39.5, 8.1e6);
  EXPECT_GT(small, 10.0);
  EXPECT_NEAR(large / small, 5.0, 0.1);  // ceil() wiggle
}

TEST(Backhaul, RejectsBadInputs) {
  const SatelliteCapacityModel model;
  BackhaulModel bad;
  bad.feeder_links = 0;
  EXPECT_THROW((void)analyze_backhaul(model, bad), std::invalid_argument);
  const BackhaulModel bh;
  EXPECT_THROW((void)gateway_sites_needed(bh, 0.0, 53.0, 39.5, 8.1e6),
               std::invalid_argument);
  EXPECT_THROW((void)gateway_sites_needed(bh, 1000.0, 53.0, 39.5, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace leodivide::core

// Appended: serving economics (core/economics.hpp).
#include "leodivide/core/economics.hpp"

namespace leodivide::core {
namespace {

TEST(Economics, AmortisedFleetCost) {
  const CostModel cost;
  EXPECT_DOUBLE_EQ(cost.annual_fleet_cost_usd(5.0), 1'000'000.0);
  EXPECT_DOUBLE_EQ(cost.annual_fleet_cost_usd(0.0), 0.0);
  EXPECT_THROW((void)cost.annual_fleet_cost_usd(-1.0), std::invalid_argument);
  CostModel bad;
  bad.satellite_lifetime_years = 0.0;
  EXPECT_THROW((void)bad.annual_fleet_cost_usd(1.0), std::invalid_argument);
}

TEST(Economics, LongtailEconomicsOrderingAndMarginals) {
  std::vector<LongTailPoint> curve{
      {1000, 5000.0, 4, 37.0},   // serve all but 1000 with 5000 sats
      {5000, 4000.0, 3, 37.0},   // cheaper: 4000 sats, 5000 unserved
      {20000, 3000.0, 2, 37.0},  // cheapest
  };
  const CostModel cost;
  const auto econ = longtail_economics(curve, 100000, cost);
  ASSERT_EQ(econ.size(), 3U);
  // Ordered cheapest (most unserved) first.
  EXPECT_EQ(econ.front().locations_unserved, 20000U);
  EXPECT_EQ(econ.back().locations_unserved, 1000U);
  EXPECT_EQ(econ.front().locations_served, 80000U);
  // Average cost: 3000 sats * $1M / 5yr / 80k locations = $7,500.
  EXPECT_NEAR(econ.front().cost_per_location_year_usd, 7500.0, 1e-9);
  // Marginal from 80k to 95k served: (4000-3000) sats * $0.2M/yr each over
  // 15,000 extra locations = $13,333.33.
  EXPECT_NEAR(econ[1].marginal_cost_per_location_year_usd, 13333.33, 0.01);
  // Marginals grow toward the tail (diminishing returns).
  EXPECT_GT(econ[2].marginal_cost_per_location_year_usd,
            econ[1].marginal_cost_per_location_year_usd);
}

TEST(Economics, RejectsDegenerateInputs) {
  const CostModel cost;
  EXPECT_THROW((void)longtail_economics({}, 100, cost),
               std::invalid_argument);
  std::vector<LongTailPoint> curve{{10, 100.0, 1, 37.0}};
  EXPECT_THROW((void)longtail_economics(curve, 0, cost),
               std::invalid_argument);
}

TEST(Economics, RevenueCeilingMatchesAffordability) {
  const afford::AffordabilityAnalyzer analyzer(national_profile());
  const double rev = annual_revenue_ceiling_usd(
      analyzer, afford::starlink_residential());
  const auto r = analyzer.evaluate(afford::starlink_residential());
  const double affordable =
      analyzer.income().total_locations() - r.locations_unable;
  EXPECT_NEAR(rev, affordable * 120.0 * 12.0, 1.0);
  // ~25.5% of 4.67M at $1440/yr: about $1.7B.
  EXPECT_NEAR(rev, 1.72e9, 0.05e9);
}

TEST(Economics, NationalMarginalCostsExplodeInTheTail) {
  const SizingModel model;
  const auto curve = longtail_curve(national_profile(), model, 10.0, 20.0);
  const auto econ = longtail_economics(
      curve, national_profile().total_locations(), CostModel{});
  // The very last step (serving down to the residue) costs far more per
  // location-year than the deployment's average cost per location-year.
  ASSERT_GE(econ.size(), 3U);
  EXPECT_GT(econ.back().marginal_cost_per_location_year_usd,
            20.0 * econ.back().cost_per_location_year_usd);
}

}  // namespace
}  // namespace leodivide::core

// Appended: broader parameterized property suites.
namespace leodivide::core {
namespace {

class LongtailConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LongtailConsistency, FirstPointMatchesDirectSizing) {
  const auto [s, oversub] = GetParam();
  const SizingModel model;
  const auto curve = longtail_curve(national_profile(), model, s, oversub);
  const auto direct = size_with_cap(national_profile(), model, s, oversub);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.front().satellites, direct.satellites, 1e-6)
      << "s=" << s << " oversub=" << oversub;
  // Monotone non-increasing satellites along ascending unserved.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].satellites, curve[i - 1].satellites + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LongtailConsistency,
    ::testing::Combine(::testing::Values(1.0, 2.0, 5.0, 10.0, 15.0),
                       ::testing::Values(15.0, 20.0, 25.0)));

class ServedFractionMonotone
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ServedFractionMonotone, TighterParametersServeNoMore) {
  const auto [s, oversub] = GetParam();
  const SatelliteCapacityModel model;
  const double base =
      served_cell_fraction(national_profile(), model, s, oversub);
  EXPECT_LE(served_cell_fraction(national_profile(), model, s * 1.5, oversub),
            base + 1e-12);
  EXPECT_LE(served_cell_fraction(national_profile(), model, s, oversub * 0.5),
            base + 1e-12);
  EXPECT_GE(base, 0.0);
  EXPECT_LE(base, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServedFractionMonotone,
    ::testing::Combine(::testing::Values(1.0, 4.0, 8.0, 14.0),
                       ::testing::Values(5.0, 15.0, 30.0)));

}  // namespace
}  // namespace leodivide::core
