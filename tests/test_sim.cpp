// Unit tests for leodivide::sim — the time-stepped beam scheduler.

#include <gtest/gtest.h>

#include <set>

#include "leodivide/demand/generator.hpp"
#include "leodivide/geo/angle.hpp"
#include "leodivide/sim/beam.hpp"
#include "leodivide/sim/clock.hpp"
#include "leodivide/sim/coverage.hpp"
#include "leodivide/sim/metrics.hpp"
#include "leodivide/sim/simulation.hpp"

namespace leodivide::sim {
namespace {

demand::DemandProfile small_profile() {
  return demand::SyntheticGenerator({.seed = 17, .scale = 0.01})
      .generate_profile();
}

// ------------------------------------------------------------------- clock ----

TEST(Clock, EpochCountAndTimes) {
  const SimClock clock(600.0, 60.0);
  EXPECT_EQ(clock.epochs(), 11U);
  EXPECT_DOUBLE_EQ(clock.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(clock.time_at(10), 600.0);
  EXPECT_THROW(clock.time_at(11), std::out_of_range);
}

TEST(Clock, ZeroDurationHasOneEpoch) {
  EXPECT_EQ(SimClock(0.0, 10.0).epochs(), 1U);
}

TEST(Clock, RejectsBadArgs) {
  EXPECT_THROW(SimClock(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SimClock(-1.0, 1.0), std::invalid_argument);
}

// -------------------------------------------------------------- beam budget ----

TEST(BeamBudgetTest, WholeBeamReservation) {
  BeamBudget b(24, 5);
  EXPECT_TRUE(b.reserve_whole(4));
  EXPECT_EQ(b.beams_free(), 20U);
  EXPECT_EQ(b.beams_used(), 4U);
  EXPECT_FALSE(b.reserve_whole(21));
  EXPECT_TRUE(b.reserve_whole(20));
  EXPECT_EQ(b.beams_free(), 0U);
  EXPECT_FALSE(b.reserve_whole(1));
}

TEST(BeamBudgetTest, SharedSlotsPackToBeamspread) {
  BeamBudget b(2, 3);
  // First shared slot opens a beam with 3 slots.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.reserve_shared_slot());
  EXPECT_EQ(b.beams_free(), 1U);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.reserve_shared_slot());
  EXPECT_EQ(b.beams_free(), 0U);
  EXPECT_FALSE(b.reserve_shared_slot());
  EXPECT_EQ(b.cells_assigned(), 6U);
}

TEST(BeamBudgetTest, SlackCountsBeamsAndOpenSlots) {
  BeamBudget b(4, 5);
  EXPECT_EQ(b.slack(), 20U);
  ASSERT_TRUE(b.reserve_shared_slot());
  EXPECT_EQ(b.slack(), 19U);  // 3 free beams * 5 + 4 open slots
  ASSERT_TRUE(b.reserve_whole(3));
  EXPECT_EQ(b.slack(), 4U);
}

TEST(BeamBudgetTest, RejectsZeroConfig) {
  EXPECT_THROW(BeamBudget(0, 5), std::invalid_argument);
  EXPECT_THROW(BeamBudget(24, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- scheduler ----

TEST(Scheduler, CellsFromProfileComputeBeams) {
  const auto profile = small_profile();
  const auto cells = BeamScheduler::cells_from_profile(
      profile, core::SatelliteCapacityModel(), 20.0);
  ASSERT_EQ(cells.size(), profile.cell_count());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_GE(cells[i].beams_needed, 1U);
    EXPECT_LE(cells[i].beams_needed, 4U);
    EXPECT_EQ(cells[i].locations, profile.cells()[i].underserved);
  }
}

TEST(Scheduler, NoSatellitesMeansNothingServed) {
  const auto profile = small_profile();
  const BeamScheduler scheduler(
      BeamScheduler::cells_from_profile(profile,
                                        core::SatelliteCapacityModel(), 20.0),
      SchedulerConfig{});
  const ScheduleResult r = scheduler.schedule({});
  EXPECT_TRUE(r.assignments.empty());
  EXPECT_EQ(r.unassigned_cells.size(), profile.cell_count());
  EXPECT_EQ(r.locations_served, 0U);
}

TEST(Scheduler, SingleOverheadSatelliteServesNearbyCells) {
  // One satellite directly over a small cluster of cells.
  std::vector<SchedCell> cells;
  for (int i = 0; i < 10; ++i) {
    SchedCell c;
    c.center = {39.0 + 0.1 * i, -98.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 100;
    c.beams_needed = 1;
    cells.push_back(c);
  }
  const BeamScheduler scheduler(cells, SchedulerConfig{24, 5, 25.0});
  orbit::SatState sat;
  sat.subpoint = {39.5, -98.0};
  sat.ecef_km =
      geo::spherical_to_cartesian(sat.subpoint, geo::kEarthRadiusKm + 550.0);
  const ScheduleResult r = scheduler.schedule({sat});
  EXPECT_EQ(r.assignments.size(), 10U);
  EXPECT_EQ(r.locations_served, 1000U);
  // 10 single-beam cells at beamspread 5 need 2 beams.
  EXPECT_NEAR(r.mean_beam_utilization, 2.0 / 24.0, 1e-9);
}

TEST(Scheduler, BeamBudgetLimitsAssignments) {
  // 30 single-beam cells, beamspread 1, 24 beams: exactly 24 served.
  std::vector<SchedCell> cells;
  for (int i = 0; i < 30; ++i) {
    SchedCell c;
    c.center = {38.0 + 0.1 * i, -98.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 10;
    c.beams_needed = 1;
    cells.push_back(c);
  }
  const BeamScheduler scheduler(cells, SchedulerConfig{24, 1, 25.0});
  orbit::SatState sat;
  sat.subpoint = {39.5, -98.0};
  sat.ecef_km =
      geo::spherical_to_cartesian(sat.subpoint, geo::kEarthRadiusKm + 550.0);
  const ScheduleResult r = scheduler.schedule({sat});
  EXPECT_EQ(r.assignments.size(), 24U);
  EXPECT_EQ(r.unassigned_cells.size(), 6U);
}

TEST(Scheduler, MultiBeamCellsScheduledFirst) {
  // One 4-beam cell and 25 single-beam cells at beamspread 1: the 4-beam
  // cell must win its beams even though singles outnumber it.
  std::vector<SchedCell> cells;
  SchedCell heavy;
  heavy.center = {39.5, -98.0};
  heavy.ecef_km = geo::spherical_to_cartesian(heavy.center, geo::kEarthRadiusKm);
  heavy.locations = 3000;
  heavy.beams_needed = 4;
  cells.push_back(heavy);
  for (int i = 0; i < 25; ++i) {
    SchedCell c;
    c.center = {38.0 + 0.1 * i, -97.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 10;
    c.beams_needed = 1;
    cells.push_back(c);
  }
  const BeamScheduler scheduler(cells, SchedulerConfig{24, 1, 25.0});
  orbit::SatState sat;
  sat.subpoint = {39.0, -97.5};
  sat.ecef_km =
      geo::spherical_to_cartesian(sat.subpoint, geo::kEarthRadiusKm + 550.0);
  const ScheduleResult r = scheduler.schedule({sat});
  bool heavy_served = false;
  for (const auto& a : r.assignments) {
    if (a.cell == 0) {
      heavy_served = true;
      EXPECT_EQ(a.beams, 4U);
    }
  }
  EXPECT_TRUE(heavy_served);
  EXPECT_EQ(r.assignments.size(), 21U);  // 4 beams + 20 singles
}

TEST(Scheduler, FarawaySatelliteServesNothing) {
  std::vector<SchedCell> cells(1);
  cells[0].center = {39.0, -98.0};
  cells[0].ecef_km =
      geo::spherical_to_cartesian(cells[0].center, geo::kEarthRadiusKm);
  cells[0].locations = 10;
  cells[0].beams_needed = 1;
  const BeamScheduler scheduler(cells, SchedulerConfig{24, 5, 25.0});
  orbit::SatState sat;
  sat.subpoint = {-39.0, 98.0};
  sat.ecef_km =
      geo::spherical_to_cartesian(sat.subpoint, geo::kEarthRadiusKm + 550.0);
  const ScheduleResult r = scheduler.schedule({sat});
  EXPECT_TRUE(r.assignments.empty());
}

// ----------------------------------------------------------------- coverage ----

TEST(Coverage, SummarizeEpochCountsSatellites) {
  ScheduleResult r;
  r.assignments = {{0, 3, 0}, {1, 3, 0}, {2, 7, 4}};
  r.locations_total = 100;
  r.locations_served = 80;
  const EpochCoverage c = summarize_epoch(r, 5, 42.0);
  EXPECT_EQ(c.cells_served, 3U);
  EXPECT_EQ(c.cells_total, 5U);
  EXPECT_EQ(c.satellites_in_view, 2U);
  EXPECT_DOUBLE_EQ(c.cell_coverage(), 0.6);
  EXPECT_DOUBLE_EQ(c.location_coverage(), 0.8);
}

TEST(Coverage, EmptyTotalsCountAsFullCoverage) {
  const EpochCoverage c = summarize_epoch(ScheduleResult{}, 0, 0.0);
  EXPECT_DOUBLE_EQ(c.cell_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(c.location_coverage(), 1.0);
}

// ------------------------------------------------------------------ metrics ----

TEST(Metrics, SummarizeAggregates) {
  std::vector<EpochCoverage> epochs(2);
  epochs[0].cells_total = 10;
  epochs[0].cells_served = 5;
  epochs[1].cells_total = 10;
  epochs[1].cells_served = 10;
  const SimulationReport r = summarize(epochs);
  EXPECT_EQ(r.epochs, 2U);
  EXPECT_DOUBLE_EQ(r.min_cell_coverage, 0.5);
  EXPECT_DOUBLE_EQ(r.max_cell_coverage, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_cell_coverage, 0.75);
}

TEST(Metrics, RejectsEmptyTrace) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(Metrics, SingleEpochCollapsesMinMeanMax) {
  EpochCoverage e;
  e.time_s = 60.0;
  e.cells_total = 8;
  e.cells_served = 6;
  e.locations_total = 100;
  e.locations_served = 40;
  e.mean_beam_utilization = 0.7;
  e.satellites_in_view = 9;
  const SimulationReport r = summarize({e});
  EXPECT_EQ(r.epochs, 1U);
  EXPECT_DOUBLE_EQ(r.min_cell_coverage, 0.75);
  EXPECT_DOUBLE_EQ(r.mean_cell_coverage, 0.75);
  EXPECT_DOUBLE_EQ(r.max_cell_coverage, 0.75);
  EXPECT_DOUBLE_EQ(r.min_location_coverage, 0.4);
  EXPECT_DOUBLE_EQ(r.mean_location_coverage, 0.4);
  EXPECT_DOUBLE_EQ(r.mean_beam_utilization, 0.7);
  EXPECT_DOUBLE_EQ(r.mean_satellites_in_view, 9.0);
}

// ---------------------------------------------------------------- simulation ----

TEST(SimulationTest, Shell1CoversSomethingButNotEverything) {
  SimulationConfig config;
  config.duration_s = 300.0;
  config.step_s = 100.0;
  config.scheduler.beamspread = 5;
  const Simulation sim(config, small_profile());
  const auto trace = sim.run();
  ASSERT_EQ(trace.size(), 4U);
  const SimulationReport report = summarize(trace);
  // Shell 1 (1584 sats) over a 1%-scale demand profile: substantial but
  // incomplete coverage — the paper's headline claim in miniature.
  EXPECT_GT(report.mean_cell_coverage, 0.1);
  EXPECT_GT(report.mean_satellites_in_view, 3.0);
}

TEST(SimulationTest, MoreSatellitesNeverReduceCoverage) {
  SimulationConfig small_config;
  small_config.shell = orbit::WalkerShell{53.0, 550.0, 18, 11, 1};
  small_config.duration_s = 120.0;
  small_config.step_s = 60.0;
  SimulationConfig big_config = small_config;
  big_config.shell = orbit::WalkerShell{53.0, 550.0, 72, 22, 1};
  const auto profile = small_profile();
  const auto small_report = Simulation(small_config, profile).run_report();
  const auto big_report = Simulation(big_config, profile).run_report();
  EXPECT_GE(big_report.mean_cell_coverage,
            small_report.mean_cell_coverage - 1e-9);
}

TEST(SimulationTest, RunReportMatchesSummarizedRun) {
  SimulationConfig config;
  config.duration_s = 120.0;
  config.step_s = 60.0;
  const Simulation sim(config, small_profile());
  const SimulationReport a = sim.run_report();
  const SimulationReport b = summarize(sim.run());
  EXPECT_DOUBLE_EQ(a.mean_cell_coverage, b.mean_cell_coverage);
  EXPECT_DOUBLE_EQ(a.min_cell_coverage, b.min_cell_coverage);
}

}  // namespace
}  // namespace leodivide::sim

// Appended: scheduler strategy comparison.
namespace leodivide::sim {
namespace {

class StrategySweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategySweep, EveryStrategyServesTheEasyCase) {
  // One satellite overhead, few single-beam cells: every strategy must
  // serve all of them.
  std::vector<SchedCell> cells;
  for (int i = 0; i < 8; ++i) {
    SchedCell c;
    c.center = {39.0 + 0.1 * i, -98.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 50;
    c.beams_needed = 1;
    cells.push_back(c);
  }
  SchedulerConfig config{24, 5, 25.0, GetParam()};
  const BeamScheduler scheduler(cells, config);
  orbit::SatState sat;
  sat.subpoint = {39.4, -98.0};
  sat.ecef_km =
      geo::spherical_to_cartesian(sat.subpoint, geo::kEarthRadiusKm + 550.0);
  const ScheduleResult r = scheduler.schedule({sat});
  EXPECT_EQ(r.assignments.size(), 8U);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategySweep,
                         ::testing::Values(Strategy::kMostSlack,
                                           Strategy::kFirstFit,
                                           Strategy::kBestFit));

TEST(StrategyComparison, BestFitPacksTighterThanMostSlack) {
  // Two satellites visible; best-fit should fill one before touching the
  // other, most-slack should spread.
  std::vector<SchedCell> cells;
  for (int i = 0; i < 4; ++i) {
    SchedCell c;
    c.center = {39.0 + 0.05 * i, -98.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 10;
    c.beams_needed = 1;
    cells.push_back(c);
  }
  auto make_sat = [](double lon) {
    orbit::SatState s;
    s.subpoint = {39.1, lon};
    s.ecef_km =
        geo::spherical_to_cartesian(s.subpoint, geo::kEarthRadiusKm + 550.0);
    return s;
  };
  const std::vector<orbit::SatState> sats{make_sat(-98.2), make_sat(-97.8)};

  auto distinct_sats = [&](Strategy strategy) {
    SchedulerConfig config{24, 4, 25.0, strategy};
    const BeamScheduler scheduler(cells, config);
    const auto r = scheduler.schedule(sats);
    std::set<std::uint32_t> used;
    for (const auto& a : r.assignments) used.insert(a.sat);
    return used.size();
  };
  // Best-fit concentrates on one satellite (4 cells fit one shared beam
  // opened on it); most-slack keeps alternating between equals but after
  // the first assignment the fuller satellite has less slack, so it
  // spreads across both.
  EXPECT_EQ(distinct_sats(Strategy::kBestFit), 1U);
  EXPECT_EQ(distinct_sats(Strategy::kMostSlack), 2U);
}

}  // namespace
}  // namespace leodivide::sim

// Appended: max-flow and the optimal slot bound (sim/maxflow.hpp).
#include "leodivide/sim/maxflow.hpp"

namespace leodivide::sim {
namespace {

TEST(MaxFlowTest, TextbookGraph) {
  // Classic 6-vertex example with max flow 23.
  MaxFlow f(6);
  f.add_edge(0, 1, 16);
  f.add_edge(0, 2, 13);
  f.add_edge(1, 2, 10);
  f.add_edge(2, 1, 4);
  f.add_edge(1, 3, 12);
  f.add_edge(3, 2, 9);
  f.add_edge(2, 4, 14);
  f.add_edge(4, 3, 7);
  f.add_edge(3, 5, 20);
  f.add_edge(4, 5, 4);
  EXPECT_EQ(f.solve(0, 5), 23);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 5);
  f.add_edge(2, 3, 5);
  EXPECT_EQ(f.solve(0, 3), 0);
}

TEST(MaxFlowTest, ParallelEdgesAdd) {
  MaxFlow f(2);
  f.add_edge(0, 1, 3);
  f.add_edge(0, 1, 4);
  EXPECT_EQ(f.solve(0, 1), 7);
}

TEST(MaxFlowTest, RejectsBadUsage) {
  MaxFlow f(3);
  EXPECT_THROW(f.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(f.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW((void)f.solve(1, 1), std::invalid_argument);
  EXPECT_THROW(MaxFlow{1}, std::invalid_argument);
}

TEST(OptimalSlotBound, SingleSatelliteExactCapacity) {
  // 30 single-beam cells under one satellite with 24 beams, beamspread 1:
  // optimum serves exactly 24 slots of 30 demanded.
  std::vector<SchedCell> cells;
  for (int i = 0; i < 30; ++i) {
    SchedCell c;
    c.center = {38.0 + 0.1 * i, -98.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 10;
    c.beams_needed = 1;
    cells.push_back(c);
  }
  orbit::SatState sat;
  sat.subpoint = {39.5, -98.0};
  sat.ecef_km =
      geo::spherical_to_cartesian(sat.subpoint, geo::kEarthRadiusKm + 550.0);
  SchedulerConfig config;
  config.beamspread = 1;
  const FlowBound bound = optimal_slot_bound(cells, {sat}, config);
  EXPECT_EQ(bound.slots_demanded, 30);
  EXPECT_EQ(bound.slots_served, 24);
}

TEST(OptimalSlotBound, DominatesGreedy) {
  // On a random scenario the flow bound must be >= any greedy result.
  const auto profile =
      demand::SyntheticGenerator({.seed = 29, .scale = 0.01})
          .generate_profile();
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  const auto states = orbit::propagate_all(orbits, 100.0);
  const core::SatelliteCapacityModel capacity;
  const auto cells =
      BeamScheduler::cells_from_profile(profile, capacity, 20.0);
  SchedulerConfig config;
  config.beamspread = 2;
  const FlowBound bound = optimal_slot_bound(cells, states, config);
  for (Strategy strategy : {Strategy::kMostSlack, Strategy::kFirstFit,
                            Strategy::kBestFit}) {
    SchedulerConfig sc = config;
    sc.strategy = strategy;
    const BeamScheduler scheduler(cells, sc);
    const auto r = scheduler.schedule(states);
    std::int64_t slots = 0;
    for (const auto& a : r.assignments) {
      slots += cells[a.cell].beams_needed >= 2
                   ? static_cast<std::int64_t>(cells[a.cell].beams_needed) *
                         config.beamspread
                   : 1;
    }
    EXPECT_LE(slots, bound.slots_served);
  }
}

TEST(OptimalSlotBound, EmptyCellsAreFullyCovered) {
  const FlowBound bound = optimal_slot_bound({}, {}, SchedulerConfig{});
  EXPECT_DOUBLE_EQ(bound.slot_coverage, 1.0);
}

}  // namespace
}  // namespace leodivide::sim

// Appended: handover accounting (sim/handover.hpp).
#include "leodivide/sim/handover.hpp"

namespace leodivide::sim {
namespace {

TEST(Handover, CountsSwitchesDropsAndAcquisitions) {
  ScheduleResult before, after;
  before.assignments = {{0, 10, 0}, {1, 11, 0}, {2, 12, 0}};
  after.assignments = {{0, 10, 0}, {1, 99, 0}, {3, 7, 0}};
  const HandoverStats s = compare_schedules(before, after, 5);
  EXPECT_EQ(s.cells_tracked, 2U);   // cells 0 and 1
  EXPECT_EQ(s.handovers, 1U);       // cell 1 switched 11 -> 99
  EXPECT_EQ(s.cells_dropped, 1U);   // cell 2
  EXPECT_EQ(s.cells_acquired, 1U);  // cell 3
  EXPECT_DOUBLE_EQ(s.handover_rate(), 0.5);
}

TEST(Handover, IdenticalSchedulesHaveNoChurn) {
  ScheduleResult r;
  r.assignments = {{0, 1, 0}, {1, 2, 0}};
  const HandoverStats s = compare_schedules(r, r, 4);
  EXPECT_EQ(s.handovers, 0U);
  EXPECT_EQ(s.cells_dropped, 0U);
  EXPECT_DOUBLE_EQ(s.handover_rate(), 0.0);
}

TEST(Handover, RejectsOutOfRangeAssignments) {
  ScheduleResult bad;
  bad.assignments = {{9, 1, 0}};
  EXPECT_THROW((void)compare_schedules(bad, {}, 5), std::invalid_argument);
}

TEST(Handover, RealScheduleChurnsAsSatellitesMove) {
  // Two epochs 60 s apart: satellites move ~450 km, so some cells must
  // change serving satellite while overall coverage stays similar.
  const auto profile =
      demand::SyntheticGenerator({.seed = 31, .scale = 0.01})
          .generate_profile();
  const core::SatelliteCapacityModel capacity;
  const auto cells =
      BeamScheduler::cells_from_profile(profile, capacity, 20.0);
  const BeamScheduler scheduler(cells, SchedulerConfig{});
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  const auto r0 = scheduler.schedule(orbit::propagate_all(orbits, 0.0));
  const auto r1 = scheduler.schedule(orbit::propagate_all(orbits, 60.0));
  const HandoverStats s = compare_schedules(r0, r1, cells.size());
  EXPECT_GT(s.cells_tracked, 0U);
  EXPECT_GT(s.handovers, 0U);  // motion forces some churn
}

}  // namespace
}  // namespace leodivide::sim

// Appended: gateway placement (sim/gateway.hpp) and QoS (sim/qos.hpp).
#include "leodivide/sim/gateway.hpp"
#include "leodivide/sim/qos.hpp"

namespace leodivide::sim {
namespace {

TEST(GatewayPlacement, SingleCandidateCoversSmallRegion) {
  const std::vector<geo::GeoPoint> candidates{{39.0, -98.0}};
  const geo::BoundingBox region{37.0, 41.0, -100.0, -96.0};
  const auto placement =
      place_gateways(candidates, region, GatewayPlacementConfig{});
  EXPECT_EQ(placement.sites.size(), 1U);
  EXPECT_EQ(placement.uncovered_samples, 0U);
}

TEST(GatewayPlacement, GreedyPrefersCentralCandidates) {
  // A central candidate covering everything beats two edge candidates
  // (the region is wide enough that neither edge candidate reaches the
  // far side within the ~940 km feeder footprint).
  const std::vector<geo::GeoPoint> candidates{
      {39.0, -104.0}, {39.0, -98.0}, {39.0, -92.0}};
  const geo::BoundingBox region{37.0, 41.0, -103.0, -93.0};
  const auto placement =
      place_gateways(candidates, region, GatewayPlacementConfig{});
  ASSERT_GE(placement.sites.size(), 1U);
  EXPECT_NEAR(placement.sites.front().lon_deg, -98.0, 1e-9);
}

TEST(GatewayPlacement, WideRegionNeedsMultipleSites) {
  std::vector<geo::GeoPoint> candidates;
  for (double lon = -124.0; lon <= -68.0; lon += 4.0) {
    candidates.push_back({39.0, lon});
  }
  const geo::BoundingBox region{32.0, 46.0, -122.0, -70.0};
  const auto placement =
      place_gateways(candidates, region, GatewayPlacementConfig{});
  EXPECT_GT(placement.sites.size(), 3U);
  EXPECT_EQ(placement.uncovered_samples, 0U);
}

TEST(GatewayPlacement, ReportsUnreachableSamples) {
  // One candidate far from most of the region.
  const std::vector<geo::GeoPoint> candidates{{45.0, -120.0}};
  const geo::BoundingBox region{25.0, 48.0, -124.0, -70.0};
  const auto placement =
      place_gateways(candidates, region, GatewayPlacementConfig{});
  EXPECT_EQ(placement.sites.size(), 1U);
  EXPECT_GT(placement.uncovered_samples, 0U);
}

TEST(GatewayPlacement, RejectsBadInputs) {
  const geo::BoundingBox region{37.0, 41.0, -100.0, -96.0};
  EXPECT_THROW((void)place_gateways({}, region, GatewayPlacementConfig{}),
               std::invalid_argument);
  GatewayPlacementConfig bad;
  bad.sample_spacing_deg = 0.0;
  const std::vector<geo::GeoPoint> one{{39.0, -98.0}};
  EXPECT_THROW((void)place_gateways(one, region, bad),
               std::invalid_argument);
}

TEST(Qos, WholeBeamAndSharedCapacities) {
  std::vector<SchedCell> cells(2);
  cells[0].locations = 2000;  // gets 3 whole beams below
  cells[1].locations = 400;   // shared slot
  ScheduleResult schedule;
  schedule.assignments = {{0, 0, 3}, {1, 0, 0}};
  const core::SatelliteCapacityModel model;
  SchedulerConfig config;
  config.beamspread = 5;
  const auto qos = compute_qos(cells, schedule, model, config, 20.0);
  ASSERT_EQ(qos.size(), 2U);
  EXPECT_NEAR(qos[0].capacity_gbps, 3.0 * 4.33125, 1e-9);
  // demand 200 Gbps / 12.99 Gbps ~ 15.4:1 -> within 20:1.
  EXPECT_TRUE(qos[0].within_target);
  EXPECT_NEAR(qos[1].capacity_gbps, 4.33125 / 5.0, 1e-9);
  // demand 40 Gbps / 0.866 ~ 46:1 -> violates 20:1.
  EXPECT_FALSE(qos[1].within_target);
}

TEST(Qos, SummaryAggregates) {
  std::vector<CellQos> qos(3);
  qos[0].achieved_oversub = 10.0;
  qos[0].within_target = true;
  qos[1].achieved_oversub = 30.0;
  qos[2].achieved_oversub = 20.0;
  qos[2].within_target = true;
  const QosSummary s = summarize_qos(qos);
  EXPECT_EQ(s.cells_served, 3U);
  EXPECT_EQ(s.cells_within_target, 2U);
  EXPECT_DOUBLE_EQ(s.mean_oversub, 20.0);
  EXPECT_DOUBLE_EQ(s.worst_oversub, 30.0);
  EXPECT_NEAR(s.fraction_within_target, 2.0 / 3.0, 1e-12);
}

TEST(Qos, EmptyScheduleIsTriviallyWithinTarget) {
  const QosSummary s = summarize_qos({});
  EXPECT_DOUBLE_EQ(s.fraction_within_target, 1.0);
}

TEST(Qos, RejectsBadInputs) {
  const core::SatelliteCapacityModel model;
  ScheduleResult bad;
  bad.assignments = {{5, 0, 0}};
  EXPECT_THROW(
      (void)compute_qos({}, bad, model, SchedulerConfig{}, 20.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)compute_qos({}, ScheduleResult{}, model, SchedulerConfig{}, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace leodivide::sim
