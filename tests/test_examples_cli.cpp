// Example binaries must reject unknown `--flags` with a nonzero exit and
// name the offending flag — a typo'd `--snapshot-dri` must never silently
// run a full (uncached) analysis. Each case spawns the real binary via
// popen and inspects its exit status and output.
//
// Binary locations come from the LEODIVIDE_EXAMPLES_DIR compile definition
// (the build's examples/ output directory, set in tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `command` with stderr folded into stdout; returns exit code and
/// combined output.
RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> chunk{};
  while (std::fgets(chunk.data(), static_cast<int>(chunk.size()), pipe) !=
         nullptr) {
    result.output += chunk.data();
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

std::string example_path(const std::string& name) {
  return (fs::path(LEODIVIDE_EXAMPLES_DIR) / name).string();
}

class ExamplesCli : public ::testing::TestWithParam<const char*> {};

TEST_P(ExamplesCli, RejectsUnknownFlagNonzeroAndNamesIt) {
  const std::string binary = example_path(GetParam());
  if (!fs::exists(binary)) {
    GTEST_SKIP() << binary << " not built";
  }
  const RunResult r = run_command(binary + " --definitely-not-a-flag");
  EXPECT_NE(r.exit_code, 0) << "unknown flag accepted by " << GetParam()
                            << "\noutput:\n"
                            << r.output;
  EXPECT_NE(r.output.find("--definitely-not-a-flag"), std::string::npos)
      << GetParam() << " did not name the offending flag:\n"
      << r.output;
}

INSTANTIATE_TEST_SUITE_P(AllExamples, ExamplesCli,
                         ::testing::Values("national_analysis",
                                           "coverage_sim",
                                           "affordability_report",
                                           "constellation_planner",
                                           "quickstart",
                                           "market_compare"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ExamplesCli, MarketCompareBadScaleRejected) {
  const std::string binary = example_path("market_compare");
  if (!fs::exists(binary)) {
    GTEST_SKIP() << binary << " not built";
  }
  const RunResult r = run_command(binary + " --scale=not-a-number");
  EXPECT_EQ(r.exit_code, 2) << "non-numeric --scale accepted:\n" << r.output;
}

TEST(ExamplesCli, MarketCompareBadThreadsRejected) {
  const std::string binary = example_path("market_compare");
  if (!fs::exists(binary)) {
    GTEST_SKIP() << binary << " not built";
  }
  const RunResult r = run_command(binary + " --threads zero");
  EXPECT_EQ(r.exit_code, 2) << "bad --threads accepted:\n" << r.output;
  EXPECT_NE(r.output.find("--threads"), std::string::npos) << r.output;
}

TEST(ExamplesCli, EngineFlagUnknownValueRejected) {
  const std::string binary = example_path("coverage_sim");
  if (!fs::exists(binary)) {
    GTEST_SKIP() << binary << " not built";
  }
  const RunResult r = run_command(binary + " --engine=warp");
  EXPECT_NE(r.exit_code, 0) << "--engine=warp accepted:\n" << r.output;
  EXPECT_NE(r.output.find("--engine"), std::string::npos)
      << "coverage_sim did not name the offending flag:\n"
      << r.output;
}

TEST(ExamplesCli, SnapshotDirWithoutValueRejected) {
  const std::string binary = example_path("national_analysis");
  if (!fs::exists(binary)) {
    GTEST_SKIP() << binary << " not built";
  }
  const RunResult r = run_command(binary + " --snapshot-dir");
  EXPECT_NE(r.exit_code, 0) << "bare --snapshot-dir accepted:\n" << r.output;
}

}  // namespace
