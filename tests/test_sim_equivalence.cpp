// Golden equivalence suite for the spatially-indexed scheduling kernel:
// BeamScheduler::schedule (VisIndex-pruned) must produce byte-identical
// ScheduleResults to schedule_reference (the retained naive full scan) on
// every strategy, constellation and cell geometry — including polar caps
// and the date line — and the simulation trace must be identical at every
// thread count. Also pins the zero-allocation contract of the steady-state
// epoch loop via a counting global operator new.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "leodivide/demand/generator.hpp"
#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/ecef.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/visindex.hpp"
#include "leodivide/orbit/walker.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/sim/clock.hpp"
#include "leodivide/sim/coverage.hpp"
#include "leodivide/sim/scheduler.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/sim/workspace.hpp"
#include "leodivide/stats/rng.hpp"

// ------------------------------------------------------------------------
// Counting allocator hooks. Every operator new in the process bumps the
// counter; the steady-state test asserts the epoch loop leaves it
// untouched. delete stays the default-compatible free.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace leodivide::sim {
namespace {

constexpr Strategy kAllStrategies[] = {Strategy::kMostSlack,
                                       Strategy::kFirstFit,
                                       Strategy::kBestFit};

std::vector<SchedCell> random_cells(stats::Pcg32& rng, std::size_t n,
                                    double lat_min, double lat_max) {
  std::vector<SchedCell> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SchedCell c;
    c.center = {lat_min + rng.next_double() * (lat_max - lat_min),
                -180.0 + rng.next_double() * 360.0};
    c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
    c.locations = 1 + static_cast<std::uint32_t>(rng.next_below(2000));
    c.beams_needed = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    cells.push_back(c);
  }
  return cells;
}

orbit::SatState sat_at(double lat, double lon, double alt_km = 550.0) {
  orbit::SatState s;
  s.subpoint = {lat, lon};
  s.ecef_km =
      geo::spherical_to_cartesian(s.subpoint, geo::kEarthRadiusKm + alt_km);
  return s;
}

void expect_equivalent(const BeamScheduler& scheduler,
                       const std::vector<orbit::SatState>& states) {
  const ScheduleResult indexed = scheduler.schedule(states);
  const ScheduleResult naive = scheduler.schedule_reference(states);
  ASSERT_EQ(indexed.assignments.size(), naive.assignments.size());
  EXPECT_TRUE(indexed == naive);
}

// ---------------------------------------------------- randomized shells ----

TEST(IndexedEquivalence, RandomWalkerShellsMatchReferenceExactly) {
  stats::Pcg32 rng(20250806);
  for (int trial = 0; trial < 12; ++trial) {
    orbit::WalkerShell shell;
    shell.inclination_deg = 40.0 + rng.next_double() * 58.0;  // up to polar
    shell.altitude_km = 350.0 + rng.next_double() * 900.0;
    shell.planes = 6 + static_cast<std::uint32_t>(rng.next_below(10));
    shell.sats_per_plane = 4 + static_cast<std::uint32_t>(rng.next_below(12));
    shell.phasing = static_cast<std::uint32_t>(rng.next_below(shell.planes));
    const auto orbits = orbit::make_constellation(shell);
    const auto states =
        orbit::propagate_all(orbits, rng.next_double() * 6000.0);
    auto cells = random_cells(rng, 60, -85.0, 85.0);
    for (const Strategy strategy : kAllStrategies) {
      SchedulerConfig config;
      config.beamspread = 1 + static_cast<std::uint32_t>(rng.next_below(6));
      config.strategy = strategy;
      expect_equivalent(BeamScheduler(cells, config), states);
    }
  }
}

TEST(IndexedEquivalence, WorkspaceReuseAcrossEpochsMatchesReference) {
  // One workspace carried across many epochs (the simulation's pattern)
  // must give the same schedules as fresh naive runs at each epoch.
  const auto profile = demand::SyntheticGenerator({.seed = 17, .scale = 0.01})
                           .generate_profile();
  const auto cells = BeamScheduler::cells_from_profile(
      profile, core::SatelliteCapacityModel(), 20.0);
  const BeamScheduler scheduler(cells, SchedulerConfig{});
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  ScheduleWorkspace ws;
  ScheduleResult indexed;
  for (int e = 0; e < 6; ++e) {
    const double t = 47.0 * e;
    orbit::propagate_all(orbits, t, ws.states);
    scheduler.schedule(ws.states, ws, indexed);
    EXPECT_TRUE(indexed == scheduler.schedule_reference(ws.states))
        << "epoch " << e;
  }
}

// ------------------------------------------------------- edge geometries ----

TEST(IndexedEquivalence, PolarCellsMatchReference) {
  // Cells at and around the poles; a polar-orbiting constellation passes
  // directly over them, exercising the all-longitudes cap branch.
  stats::Pcg32 rng(7);
  std::vector<SchedCell> cells;
  for (double lat : {90.0, 89.9, 88.0, -88.0, -89.9, -90.0}) {
    for (double lon : {-170.0, -45.0, 0.0, 60.0, 179.0}) {
      SchedCell c;
      c.center = {lat, lon};
      c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
      c.locations = 1 + static_cast<std::uint32_t>(rng.next_below(500));
      c.beams_needed = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      cells.push_back(c);
    }
  }
  const orbit::WalkerShell polar{97.0, 600.0, 12, 12, 1};
  const auto states =
      orbit::propagate_all(orbit::make_constellation(polar), 321.0);
  for (const Strategy strategy : kAllStrategies) {
    SchedulerConfig config;
    config.strategy = strategy;
    expect_equivalent(BeamScheduler(cells, config), states);
  }
}

TEST(IndexedEquivalence, DateLineCellsMatchReference) {
  // Cells and satellites straddling the antimeridian: the index's sector
  // window wraps modulo 360 and must not lose the far side.
  stats::Pcg32 rng(11);
  std::vector<SchedCell> cells;
  for (double lon : {179.99, 179.5, 178.0, -178.0, -179.5, -179.99, 180.0}) {
    for (double lat : {-40.0, 0.0, 35.0, 62.0}) {
      SchedCell c;
      c.center = {lat, lon};
      c.ecef_km = geo::spherical_to_cartesian(c.center, geo::kEarthRadiusKm);
      c.locations = 1 + static_cast<std::uint32_t>(rng.next_below(500));
      c.beams_needed = 1;
      cells.push_back(c);
    }
  }
  std::vector<orbit::SatState> states;
  for (double lon : {179.9, 179.0, -179.9, -179.0, 178.5, -178.5}) {
    for (double lat : {-38.0, 1.0, 36.0, 60.0}) {
      states.push_back(sat_at(lat, lon));
    }
  }
  for (const Strategy strategy : kAllStrategies) {
    SchedulerConfig config;
    config.strategy = strategy;
    expect_equivalent(BeamScheduler(cells, config), states);
  }
}

TEST(IndexedEquivalence, NoSatellitesAndNoCells) {
  stats::Pcg32 rng(3);
  auto cells = random_cells(rng, 5, -60.0, 60.0);
  const BeamScheduler with_cells(cells, SchedulerConfig{});
  expect_equivalent(with_cells, {});
  const BeamScheduler no_cells(std::vector<SchedCell>{}, SchedulerConfig{});
  expect_equivalent(no_cells, {sat_at(10.0, 10.0)});
}

// ----------------------------------------------------- VisIndex contract ----

TEST(VisIndexContract, CandidatesAreSortedSupersetOfVisible) {
  stats::Pcg32 rng(99);
  const orbit::WalkerShell shell{53.0, 550.0, 24, 18, 7};
  const auto states =
      orbit::propagate_all(orbit::make_constellation(shell), 1234.5);
  const double psi_rad = 0.2;  // ~11.5 deg coverage cone
  const double cos_psi = std::cos(psi_rad);
  orbit::VisIndex index;
  index.build(states, psi_rad);
  std::vector<std::uint32_t> candidates;
  for (int i = 0; i < 200; ++i) {
    const geo::GeoPoint cell{-90.0 + rng.next_double() * 180.0,
                             -180.0 + rng.next_double() * 360.0};
    const geo::Vec3 cu =
        geo::spherical_to_cartesian(cell, geo::kEarthRadiusKm).unit();
    index.query(cell, candidates);
    ASSERT_TRUE(
        std::is_sorted(candidates.begin(), candidates.end()));
    ASSERT_EQ(std::adjacent_find(candidates.begin(), candidates.end()),
              candidates.end());
    // Every exactly-visible satellite must be in the candidate list.
    std::vector<std::uint32_t> visible;
    for (std::uint32_t si = 0; si < states.size(); ++si) {
      if (cu.dot(states[si].ecef_km.unit()) >= cos_psi) visible.push_back(si);
    }
    EXPECT_TRUE(std::includes(candidates.begin(), candidates.end(),
                              visible.begin(), visible.end()))
        << "cell " << cell.lat_deg << "," << cell.lon_deg;
  }
}

TEST(VisIndexContract, RejectsNonPositivePsi) {
  orbit::VisIndex index;
  EXPECT_THROW(index.build({}, 0.0), std::invalid_argument);
  EXPECT_THROW(index.build({}, -1.0), std::invalid_argument);
}

// ----------------------------------------------- thread-count invariance ----

TEST(TraceInvariance, IdenticalAcrossThreadCountsAndEqualToReference) {
  SimulationConfig config;
  config.duration_s = 300.0;
  config.step_s = 50.0;
  const auto profile = demand::SyntheticGenerator({.seed = 17, .scale = 0.01})
                           .generate_profile();
  const Simulation sim(config, profile);

  const auto serial = sim.run(runtime::serial_executor());
  runtime::ThreadPool pool4(4);
  const auto threads4 = sim.run(pool4);
  runtime::ThreadPool pool8(8);
  const auto threads8 = sim.run(pool8);
  EXPECT_TRUE(serial == threads4);
  EXPECT_TRUE(serial == threads8);

  // Hand-built reference trace through the naive kernel: replicate the
  // simulation's construction (same cells, config, orbits), schedule each
  // epoch with schedule_reference and summarize.
  const BeamScheduler scheduler(
      BeamScheduler::cells_from_profile(profile, core::SatelliteCapacityModel(),
                                        config.oversub_target),
      config.scheduler);
  const auto orbits = orbit::make_constellation(config.shell);
  const SimClock clock(config.duration_s, config.step_s);
  ASSERT_EQ(serial.size(), clock.epochs());
  for (std::size_t e = 0; e < clock.epochs(); ++e) {
    const double t = clock.time_at(e);
    const auto ref =
        scheduler.schedule_reference(orbit::propagate_all(orbits, t));
    EXPECT_TRUE(serial[e] ==
                summarize_epoch(ref, scheduler.cells().size(), t))
        << "epoch " << e;
  }
}

// ------------------------------------------------------- zero allocation ----

TEST(Workspace, SteadyStateEpochLoopIsAllocationFree) {
  const auto profile = demand::SyntheticGenerator({.seed = 17, .scale = 0.01})
                           .generate_profile();
  const BeamScheduler scheduler(
      BeamScheduler::cells_from_profile(profile, core::SatelliteCapacityModel(),
                                        20.0),
      SchedulerConfig{});
  const auto orbits = orbit::make_constellation(orbit::starlink_shell1());
  const SimClock clock(300.0, 100.0);

  ScheduleWorkspace ws;
  ScheduleResult schedule;
  auto run_epochs = [&] {
    for (std::size_t e = 0; e < clock.epochs(); ++e) {
      const double t = clock.time_at(e);
      orbit::propagate_all(orbits, t, ws.states);
      scheduler.schedule(ws.states, ws, schedule);
      (void)summarize_epoch(schedule, scheduler.cells().size(), t,
                            ws.sat_dedup);
    }
  };
  run_epochs();  // warm every buffer (and any lazy obs statics)

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  run_epochs();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "steady-state epoch loop performed " << (after - before)
      << " heap allocations";
}

}  // namespace
}  // namespace leodivide::sim
