// snapshot/ — LDSNAP container, artifact round trips, adversarial inputs,
// fingerprints, and the content-addressed stage cache.
//
// The adversarial cases are the load-bearing ones: every way a snapshot
// file can be malformed (truncation, bit flips, wrong version, wrong
// endianness, dangling indices) must surface as a typed SnapshotError —
// never UB — which the ASan CI job double-checks.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/event/engine.hpp"
#include "leodivide/io/csv.hpp"
#include "leodivide/io/fileio.hpp"
#include "leodivide/io/json.hpp"
#include "leodivide/market/market.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/snapshot/snapshot.hpp"

namespace {

using namespace leodivide;
namespace fs = std::filesystem;

// ------------------------------------------------------------ fixtures --

demand::CountyTable small_counties() {
  std::vector<demand::County> counties;
  counties.push_back({"10001", {39.0, -75.5}, 52000.0, 120});
  counties.push_back({"10003", {39.7, -75.6}, 71000.0, 45});
  return demand::CountyTable(std::move(counties));
}

demand::DemandProfile small_profile() {
  std::vector<demand::CellDemand> cells;
  cells.push_back({hex::CellId(3, {10, -4}), {39.1, -75.4}, 820, 0});
  cells.push_back({hex::CellId(3, {11, -4}), {39.6, -75.7}, 61, 1});
  cells.push_back({hex::CellId(3, {12, -5}), {39.9, -75.2}, 0, 1});
  return demand::DemandProfile(std::move(cells), small_counties());
}

demand::DemandDataset small_dataset() {
  std::vector<demand::Location> locations;
  locations.push_back({1, {39.10, -75.40}, 0, {25.0, 3.0},
                       demand::Technology::kDsl});
  locations.push_back({2, {39.61, -75.71}, 1, {0.0, 0.0},
                       demand::Technology::kNone});
  locations.push_back({7, {39.92, -75.23}, 1, {940.0, 35.0},
                       demand::Technology::kFiber});
  return demand::DemandDataset(std::move(locations), small_counties());
}

core::AnalysisResults small_analysis() {
  // A tiny but fully-populated AnalysisResults: every field participates
  // in the round trip.
  core::AnalysisResults r;
  r.table1 = {3850.0, 8850.0, 24, 28, 4.5, 17.325, 5998, 100.0, 20.0,
              599.8, 34.62};
  r.f1 = {17.325, 34.62, 3465, 2357212, 22428, 5103, 5, 0.99883};
  r.table2 = {{1.0, 9563.0, 9621.0}, {5.0, 1913.0, 1925.0}};
  r.fig2_beamspreads = {2.0, 4.0};
  r.fig2_oversubs = {5.0, 10.0};
  r.fig2_grid = {{10.0, 20.0}, {30.0, 40.0}};
  r.fig3 = {{5.0, 20.0, {{5103, 1925.0, 4, 36.9}, {9000, 1800.0, 3, 38.2}}}};
  r.fig4 = {{{"Starlink Residential", 120.0, {100.0, 20.0}}, 72000.0,
             1327000.0, 0.563}};
  r.fig4_lifeline_threshold_income = 66450.0;
  r.fig4_starlink_threshold_income = 72000.0;
  return r;
}

std::vector<sim::EpochCoverage> small_epochs() {
  return {{0.0, 100, 97, 50000, 48000, 0.83, 41},
          {60.0, 100, 99, 50000, 49800, 0.86, 43}};
}

event::EventTrace small_trace() {
  event::EventTrace t;
  t.duration_s = 600.0;
  t.step_s = 60.0;
  t.cells_total = 100;
  t.boundaries = 7;
  t.handovers = {90, 12, 3, 5};
  t.events = {
      {0.0, 0.0, 0.0, event::EventKind::kInitial, 0, 0},
      {118.25, 118.25, 118.251, event::EventKind::kRise, 4, 17},
      {301.5, 301.5, 301.501, event::EventKind::kSet, 9, 2},
      {550.0, 549.999, 550.001, event::EventKind::kGraze, 1, 8},
  };
  t.segments = {
      {0.0, 118.25, {0.0, 100, 97, 50000, 48000, 0.83, 41},
       {97, 90, 4.2, 19.5, 0.9}},
      {118.25, 600.0, {118.25, 100, 99, 50000, 49800, 0.86, 43},
       {99, 95, 4.0, 18.0, 0.95}},
  };
  return t;
}

market::MarketReport small_market_report() {
  // Two fully-populated operator outcomes: every field participates in the
  // round trip.
  market::MarketReport r;
  r.policy = market::SplitPolicy::kFairShare;
  r.beamspread = 10.0;
  r.oversub_cap = 20.0;
  market::OperatorOutcome a;
  a.name = "starlink";
  a.economic_share = 0.85;
  a.full = {9563.0, 36.9, 4, 2};
  a.capped = {9621.0, 37.1, 3, 1};
  a.served_cell_fraction = 0.97;
  a.served_location_fraction = 0.74;
  a.longtail = {{5103, 1925.0, 4, 36.9}, {9000, 1800.0, 3, 38.2}};
  a.cost_curve = {{9000, 1800.0, 4.5e8, 41000, 10975.6},
                  {5103, 1925.0, 4.8e8, 44897, 10691.2}};
  a.affordability = {{"Starlink Residential", 120.0, {100.0, 20.0}},
                     72000.0, 1327000.0, 0.563};
  market::OperatorOutcome b;
  b.name = "oneweb";
  b.economic_share = 0.5;
  b.full = {17937.0, 49.0, 2, 0};
  b.capped = {19811.0, 48.5, 2, 0};
  b.served_cell_fraction = 0.38;
  b.served_location_fraction = 0.02;
  b.longtail = {{1200, 900.0, 2, 49.0}};
  b.cost_curve = {{1200, 900.0, 2.1e8, 7000, 30000.0}};
  b.affordability = {{"oneweb_community", 99.0, {150.0, 20.0}},
                     59400.0, 900000.0, 0.42};
  r.operators = {std::move(a), std::move(b)};
  r.fairness.winner = {0, 1, -1, 0};
  r.fairness.operators = {{2, 3, 881}, {1, 1, 61}};
  r.fairness.jain_served_locations = 0.69;
  r.fairness.unserved_cells = 1;
  r.fairness.unserved_locations = 120;
  r.fairness.capacity_limited_cells = 1;
  r.fairness.split_limited_cells = 0;
  return r;
}

// ------------------------------------------------------- byte primitives --

TEST(ByteFormat, WriterReaderRoundTrip) {
  snapshot::ByteWriter w;
  w.u8(0x7F);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFU);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-1234.5678);
  w.str("hello, snapshot");
  const std::string buf = std::move(w).take();

  snapshot::ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0x7F);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.f64(), -1234.5678);
  EXPECT_EQ(r.str(), "hello, snapshot");
  EXPECT_TRUE(r.exhausted());
  EXPECT_NO_THROW(r.expect_exhausted("test"));
}

TEST(ByteFormat, LittleEndianOnTheWire) {
  snapshot::ByteWriter w;
  w.u32(0x01020304U);
  const std::string buf = w.buffer();
  ASSERT_EQ(buf.size(), 4U);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(ByteFormat, ReaderUnderRunThrowsTyped) {
  snapshot::ByteWriter w;
  w.u16(7);
  const std::string buf = w.buffer();
  snapshot::ByteReader r(buf);
  EXPECT_THROW((void)r.u32(), snapshot::SnapshotError);
}

TEST(ByteFormat, StringLengthGuard) {
  snapshot::ByteWriter w;
  w.u32(0xFFFFFFFFU);  // absurd length prefix from "corrupted" input
  const std::string buf = w.buffer();
  snapshot::ByteReader r(buf);
  EXPECT_THROW((void)r.str(), snapshot::SnapshotError);
}

TEST(ByteFormat, TrailingBytesRejected) {
  snapshot::ByteWriter w;
  w.u8(1);
  w.u8(2);
  const std::string buf = w.buffer();
  snapshot::ByteReader r(buf);
  (void)r.u8();
  EXPECT_THROW(r.expect_exhausted("test"), snapshot::SnapshotError);
}

// -------------------------------------------------------------- checksums --

TEST(Checksum, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(snapshot::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(snapshot::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(snapshot::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Checksum, ChunkedChecksumThreadCountInvariant) {
  // > 2 chunks so the parallel fold actually spans tasks.
  std::string big(5 * (1 << 20) / 2, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 131 + 7);
  }
  const std::uint64_t serial =
      snapshot::chunked_checksum(big, runtime::serial_executor());
  runtime::ThreadPool pool4(4);
  EXPECT_EQ(snapshot::chunked_checksum(big, pool4), serial);
  runtime::ThreadPool pool3(3);
  EXPECT_EQ(snapshot::chunked_checksum(big, pool3), serial);
}

// ------------------------------------------------------- container format --

TEST(Container, HeaderAndSectionsRoundTrip) {
  snapshot::SnapshotWriter w(snapshot::ArtifactKind::kProfile);
  w.add_section("alpha", "payload-a");
  w.add_section("beta", std::string("\x00\x01\x02", 3));
  const std::string file = std::move(w).finish();

  const auto reader = snapshot::SnapshotReader::parse(file);
  EXPECT_EQ(reader.kind(), snapshot::ArtifactKind::kProfile);
  EXPECT_EQ(reader.version(), snapshot::kFormatVersion);
  ASSERT_EQ(reader.sections().size(), 2U);
  EXPECT_EQ(reader.section("alpha"), "payload-a");
  EXPECT_EQ(reader.section("beta"), std::string_view("\x00\x01\x02", 3));
  EXPECT_THROW((void)reader.section("gamma"), snapshot::SnapshotError);
}

TEST(Container, MagicStartsTheFile) {
  snapshot::SnapshotWriter w(snapshot::ArtifactKind::kEpochs);
  w.add_section("s", "x");
  const std::string file = std::move(w).finish();
  ASSERT_GE(file.size(), 6U);
  EXPECT_EQ(file.substr(0, 6), "LDSNAP");
}

// ------------------------------------------------------ artifact round trips

TEST(Artifacts, DatasetRoundTripExact) {
  const demand::DemandDataset dataset = small_dataset();
  const std::string blob = snapshot::serialize(dataset);
  const demand::DemandDataset back = snapshot::deserialize_dataset(blob);
  EXPECT_EQ(back.locations(), dataset.locations());
  EXPECT_EQ(back.counties().all(), dataset.counties().all());
}

TEST(Artifacts, ProfileRoundTripExact) {
  const demand::DemandProfile profile = small_profile();
  const std::string blob = snapshot::serialize(profile);
  const demand::DemandProfile back = snapshot::deserialize_profile(blob);
  EXPECT_EQ(back.cells(), profile.cells());
  EXPECT_EQ(back.counties().all(), profile.counties().all());
}

TEST(Artifacts, GeneratedProfileRoundTripExact) {
  // A real (scaled-down) generator output: thousands of cells with
  // full-precision doubles, not hand-picked values.
  demand::GeneratorConfig config;
  config.scale = 0.02;
  const demand::DemandProfile profile =
      demand::SyntheticGenerator{config}.generate_profile();
  ASSERT_GT(profile.cell_count(), 0U);
  const demand::DemandProfile back =
      snapshot::deserialize_profile(snapshot::serialize(profile));
  EXPECT_EQ(back.cells(), profile.cells());
  EXPECT_EQ(back.counties().all(), profile.counties().all());
}

TEST(Artifacts, AnalysisRoundTripExact) {
  const core::AnalysisResults results = small_analysis();
  const std::string blob = snapshot::serialize(results);
  EXPECT_EQ(snapshot::deserialize_analysis(blob), results);
}

TEST(Artifacts, EpochsRoundTripExact) {
  const std::vector<sim::EpochCoverage> epochs = small_epochs();
  const std::string blob = snapshot::serialize(epochs);
  EXPECT_EQ(snapshot::deserialize_epochs(blob), epochs);
}

TEST(Artifacts, EventTraceRoundTripExact) {
  const event::EventTrace trace = small_trace();
  const std::string blob = snapshot::serialize(trace);
  const snapshot::SnapshotReader reader =
      snapshot::SnapshotReader::parse(blob);
  EXPECT_EQ(reader.kind(), snapshot::ArtifactKind::kEventTrace);
  EXPECT_EQ(to_string(reader.kind()), "event_trace");
  EXPECT_EQ(snapshot::deserialize_event_trace(blob), trace);
}

TEST(Artifacts, MarketReportRoundTripExact) {
  const market::MarketReport report = small_market_report();
  const std::string blob = snapshot::serialize(report);
  const snapshot::SnapshotReader reader =
      snapshot::SnapshotReader::parse(blob);
  EXPECT_EQ(reader.kind(), snapshot::ArtifactKind::kMarketReport);
  EXPECT_EQ(to_string(reader.kind()), "market_report");
  EXPECT_EQ(snapshot::deserialize_market_report(blob), report);
}

TEST(Artifacts, SerializationIsDeterministic) {
  EXPECT_EQ(snapshot::serialize(small_profile()),
            snapshot::serialize(small_profile()));
  EXPECT_EQ(snapshot::serialize(small_analysis()),
            snapshot::serialize(small_analysis()));
  EXPECT_EQ(snapshot::serialize(small_trace()),
            snapshot::serialize(small_trace()));
  EXPECT_EQ(snapshot::serialize(small_market_report()),
            snapshot::serialize(small_market_report()));
}

// -------------------------------------------------------- adversarial input

TEST(Adversarial, EveryTruncationFailsTyped) {
  const std::string blob = snapshot::serialize(small_profile());
  // Every strict prefix must fail with SnapshotError — never crash, never
  // parse. Step keeps the loop fast on the larger payloads.
  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 37)) {
    EXPECT_THROW((void)snapshot::deserialize_profile(blob.substr(0, len)),
                 snapshot::SnapshotError)
        << "prefix length " << len << " parsed";
  }
}

TEST(Adversarial, BitFlipFailsChecksumTyped) {
  const std::string blob = snapshot::serialize(small_profile());
  // Flip one bit in every region of the file: header flips fail header
  // validation, payload flips fail the section checksum.
  for (std::size_t pos = 0; pos < blob.size(); pos += 41) {
    std::string bad = blob;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    EXPECT_THROW((void)snapshot::deserialize_profile(bad),
                 snapshot::SnapshotError)
        << "bit flip at " << pos << " parsed";
  }
}

TEST(Adversarial, WrongVersionRejected) {
  std::string blob = snapshot::serialize(small_profile());
  blob[8] = static_cast<char>(snapshot::kFormatVersion + 1);  // version LSB
  EXPECT_THROW((void)snapshot::deserialize_profile(blob),
               snapshot::SnapshotError);
}

TEST(Adversarial, ByteSwappedEndianMarkerRejected) {
  std::string blob = snapshot::serialize(small_profile());
  std::swap(blob[6], blob[7]);  // 0xFEFF -> big-endian byte order
  try {
    (void)snapshot::deserialize_profile(blob);
    FAIL() << "byte-swapped endian marker parsed";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos);
  }
}

TEST(Adversarial, BadMagicRejected) {
  std::string blob = snapshot::serialize(small_profile());
  blob[0] = 'X';
  EXPECT_THROW((void)snapshot::deserialize_profile(blob),
               snapshot::SnapshotError);
  EXPECT_THROW((void)snapshot::SnapshotReader::parse("not a snapshot"),
               snapshot::SnapshotError);
  EXPECT_THROW((void)snapshot::SnapshotReader::parse(""),
               snapshot::SnapshotError);
}

TEST(Adversarial, TrailingGarbageRejected) {
  const std::string blob = snapshot::serialize(small_profile()) + "junk";
  EXPECT_THROW((void)snapshot::deserialize_profile(blob),
               snapshot::SnapshotError);
}

TEST(Adversarial, KindMismatchRejected) {
  const std::string blob = snapshot::serialize(small_epochs());
  EXPECT_THROW((void)snapshot::deserialize_profile(blob),
               snapshot::SnapshotError);
  EXPECT_THROW((void)snapshot::deserialize_analysis(blob),
               snapshot::SnapshotError);
  EXPECT_THROW((void)snapshot::deserialize_dataset(blob),
               snapshot::SnapshotError);
}

TEST(Adversarial, DanglingCountyIndexRejected) {
  // Hand-build a profile blob whose cell references county 9 of 2. The
  // container checksums are valid, so only the semantic validation can
  // catch it.
  snapshot::ByteWriter counties;
  counties.u64(1);
  counties.str("10001");
  counties.f64(39.0);
  counties.f64(-75.5);
  counties.f64(52000.0);
  counties.u64(120);
  snapshot::ByteWriter cells;
  cells.u64(1);
  cells.u64(hex::CellId(3, {10, -4}).bits());
  cells.f64(39.1);
  cells.f64(-75.4);
  cells.u32(820);
  cells.u32(9);  // dangling
  snapshot::SnapshotWriter w(snapshot::ArtifactKind::kProfile);
  w.add_section("counties", std::move(counties).take());
  w.add_section("cells", std::move(cells).take());
  EXPECT_THROW((void)snapshot::deserialize_profile(std::move(w).finish()),
               snapshot::SnapshotError);
}

TEST(Adversarial, EventTraceUnknownEventKindRejected) {
  // A container-valid event-trace snapshot whose single event carries an
  // out-of-range kind byte must fail the semantic re-validation, not
  // produce a bogus enum value.
  snapshot::ByteWriter meta;
  meta.f64(60.0);
  meta.f64(60.0);
  meta.u64(1);
  meta.u64(0);
  meta.u64(0);
  meta.u64(0);
  meta.u64(0);
  meta.u64(0);
  snapshot::ByteWriter events;
  events.u64(1);
  events.f64(0.0);
  events.f64(0.0);
  events.f64(0.0);
  events.u8(200);  // no such EventKind
  events.u32(0);
  events.u32(0);
  snapshot::ByteWriter segments;
  segments.u64(0);
  snapshot::SnapshotWriter sw(snapshot::ArtifactKind::kEventTrace);
  sw.add_section("meta", std::move(meta).take());
  sw.add_section("events", std::move(events).take());
  sw.add_section("segments", std::move(segments).take());
  const std::string blob = std::move(sw).finish();
  EXPECT_THROW((void)snapshot::deserialize_event_trace(blob),
               snapshot::SnapshotError);
}

TEST(Adversarial, MarketEveryTruncationFailsTyped) {
  const std::string blob = snapshot::serialize(small_market_report());
  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 37)) {
    EXPECT_THROW(
        (void)snapshot::deserialize_market_report(blob.substr(0, len)),
        snapshot::SnapshotError)
        << "prefix length " << len << " parsed";
  }
}

TEST(Adversarial, MarketBitFlipFailsChecksumTyped) {
  const std::string blob = snapshot::serialize(small_market_report());
  for (std::size_t pos = 0; pos < blob.size(); pos += 41) {
    std::string bad = blob;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    EXPECT_THROW((void)snapshot::deserialize_market_report(bad),
                 snapshot::SnapshotError)
        << "bit flip at " << pos << " parsed";
  }
}

TEST(Adversarial, MarketUnknownPolicyRejected) {
  // A container-valid snapshot whose policy byte is out of range must fail
  // the semantic re-validation, not produce a bogus enum value.
  market::MarketReport report = small_market_report();
  report.policy = static_cast<market::SplitPolicy>(9);
  EXPECT_THROW(
      (void)snapshot::deserialize_market_report(snapshot::serialize(report)),
      snapshot::SnapshotError);
}

TEST(Adversarial, MarketWinnerIndexOutOfRangeRejected) {
  market::MarketReport report = small_market_report();
  report.fairness.winner[1] = 7;  // only 2 operators
  EXPECT_THROW(
      (void)snapshot::deserialize_market_report(snapshot::serialize(report)),
      snapshot::SnapshotError);
  report = small_market_report();
  report.fairness.winner[1] = -2;  // only -1 means "unserved"
  EXPECT_THROW(
      (void)snapshot::deserialize_market_report(snapshot::serialize(report)),
      snapshot::SnapshotError);
}

TEST(Adversarial, MarketFairnessRowCountMismatchRejected) {
  market::MarketReport report = small_market_report();
  report.fairness.operators.pop_back();  // 1 row for 2 operators
  EXPECT_THROW(
      (void)snapshot::deserialize_market_report(snapshot::serialize(report)),
      snapshot::SnapshotError);
}

TEST(Adversarial, MarketKindMismatchRejected) {
  EXPECT_THROW((void)snapshot::deserialize_market_report(
                   snapshot::serialize(small_profile())),
               snapshot::SnapshotError);
  EXPECT_THROW((void)snapshot::deserialize_profile(
                   snapshot::serialize(small_market_report())),
               snapshot::SnapshotError);
}

TEST(Adversarial, UnknownTechnologyRejected) {
  snapshot::ByteWriter counties;
  counties.u64(1);
  counties.str("10001");
  counties.f64(39.0);
  counties.f64(-75.5);
  counties.f64(52000.0);
  counties.u64(120);
  snapshot::ByteWriter locations;
  locations.u64(1);
  locations.u64(1);
  locations.f64(39.1);
  locations.f64(-75.4);
  locations.u32(0);
  locations.f64(25.0);
  locations.f64(3.0);
  locations.u8(250);  // no such Technology
  snapshot::SnapshotWriter w(snapshot::ArtifactKind::kLocations);
  w.add_section("counties", std::move(counties).take());
  w.add_section("locations", std::move(locations).take());
  EXPECT_THROW((void)snapshot::deserialize_dataset(std::move(w).finish()),
               snapshot::SnapshotError);
}

// ------------------------------------------------------------ fingerprints --

TEST(Fingerprints, TypeTagsSeparateMixes) {
  snapshot::Fingerprint a;
  a.mix_u64(0);
  snapshot::Fingerprint b;
  b.mix_f64(0.0);
  EXPECT_NE(a.digest(), b.digest());

  snapshot::Fingerprint c;
  c.mix("ab").mix("c");
  snapshot::Fingerprint d;
  d.mix("a").mix("bc");
  EXPECT_NE(c.digest(), d.digest());
}

TEST(Fingerprints, StageNameAndVersionSeedTheHash) {
  EXPECT_NE(snapshot::stage_fingerprint("demand.profile").digest(),
            snapshot::stage_fingerprint("core.analysis").digest());
}

TEST(Fingerprints, ConfigFieldsChangeTheDigest) {
  demand::GeneratorConfig a;
  demand::GeneratorConfig b;
  b.seed = a.seed + 1;
  snapshot::Fingerprint fa = snapshot::stage_fingerprint("demand.profile");
  snapshot::mix(fa, a);
  snapshot::Fingerprint fb = snapshot::stage_fingerprint("demand.profile");
  snapshot::mix(fb, b);
  EXPECT_NE(fa.digest(), fb.digest());

  demand::GeneratorConfig c;
  c.scale = 0.5;
  snapshot::Fingerprint fc = snapshot::stage_fingerprint("demand.profile");
  snapshot::mix(fc, c);
  EXPECT_NE(fa.digest(), fc.digest());
}

TEST(Fingerprints, EventConfigFieldsChangeTheDigest) {
  const event::EventConfig base;
  snapshot::Fingerprint fa = snapshot::stage_fingerprint("sim.event");
  snapshot::mix(fa, base);

  event::EventConfig tweaked;
  tweaked.guard_s = base.guard_s * 2.0;
  snapshot::Fingerprint fb = snapshot::stage_fingerprint("sim.event");
  snapshot::mix(fb, tweaked);
  EXPECT_NE(fa.digest(), fb.digest());

  event::EventConfig again;
  snapshot::Fingerprint fc = snapshot::stage_fingerprint("sim.event");
  snapshot::mix(fc, again);
  EXPECT_EQ(fa.digest(), fc.digest());
}

TEST(Fingerprints, MarketConfigFieldsChangeTheDigest) {
  market::MarketConfig base;
  base.operators = market::default_market();
  snapshot::Fingerprint fa = snapshot::stage_fingerprint("market.report");
  snapshot::mix(fa, base);

  // The same config hashes the same...
  {
    market::MarketConfig again;
    again.operators = market::default_market();
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
    snapshot::mix(fp, again);
    EXPECT_EQ(fa.digest(), fp.digest());
  }
  // ...and every kind of field change lands in the digest: a plan price,
  // a band edge, a cost input, the sharing policy, a sweep parameter.
  {
    market::MarketConfig c = base;
    c.operators[0].plan.monthly_usd += 1.0;
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
    snapshot::mix(fp, c);
    EXPECT_NE(fa.digest(), fp.digest());
  }
  {
    market::MarketConfig c = base;
    c.operators[1].bands[0].hi_ghz += 0.1;
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
    snapshot::mix(fp, c);
    EXPECT_NE(fa.digest(), fp.digest());
  }
  {
    market::MarketConfig c = base;
    c.operators[2].costs.annual_opex_fraction += 0.01;
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
    snapshot::mix(fp, c);
    EXPECT_NE(fa.digest(), fp.digest());
  }
  {
    market::MarketConfig c = base;
    c.split.policy = market::SplitPolicy::kFairShare;
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
    snapshot::mix(fp, c);
    EXPECT_NE(fa.digest(), fp.digest());
  }
  {
    market::MarketConfig c = base;
    c.beamspread = 5.0;
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
    snapshot::mix(fp, c);
    EXPECT_NE(fa.digest(), fp.digest());
  }
}

TEST(Fingerprints, HexIs16LowercaseDigits) {
  const std::string hex = snapshot::stage_fingerprint("x").hex();
  ASSERT_EQ(hex.size(), 16U);
  for (char ch : hex) {
    EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'));
  }
}

// -------------------------------------------------------------- stage cache

class StageCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ldsnap_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(StageCacheTest, MissComputesAndStoresThenHits) {
  snapshot::StageCache cache(dir_.string());
  const demand::DemandProfile profile = small_profile();
  snapshot::Fingerprint fp = snapshot::stage_fingerprint("demand.profile");
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return small_profile();
  };
  auto ser = [](const demand::DemandProfile& p) {
    return snapshot::serialize(p);
  };
  auto de = [](std::string_view blob) {
    return snapshot::deserialize_profile(blob);
  };

  const demand::DemandProfile first =
      cache.get_or_compute("demand.profile", fp, compute, ser, de);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 0U);
  EXPECT_EQ(cache.misses(), 1U);
  EXPECT_TRUE(fs::exists(cache.blob_path("demand.profile", fp)));

  const demand::DemandProfile second =
      cache.get_or_compute("demand.profile", fp, compute, ser, de);
  EXPECT_EQ(computes, 1) << "hit must not recompute";
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(second.cells(), profile.cells());
}

TEST_F(StageCacheTest, DifferentFingerprintsDifferentBlobs) {
  snapshot::StageCache cache(dir_.string());
  snapshot::Fingerprint a = snapshot::stage_fingerprint("s");
  a.mix_u64(1);
  snapshot::Fingerprint b = snapshot::stage_fingerprint("s");
  b.mix_u64(2);
  EXPECT_NE(cache.blob_path("s", a), cache.blob_path("s", b));
}

TEST_F(StageCacheTest, CorruptBlobRecomputesAndRepairs) {
  snapshot::StageCache cache(dir_.string());
  snapshot::Fingerprint fp = snapshot::stage_fingerprint("demand.profile");
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return small_profile();
  };
  auto ser = [](const demand::DemandProfile& p) {
    return snapshot::serialize(p);
  };
  auto de = [](std::string_view blob) {
    return snapshot::deserialize_profile(blob);
  };
  (void)cache.get_or_compute("demand.profile", fp, compute, ser, de);
  ASSERT_EQ(computes, 1);

  // Corrupt the stored blob; the next lookup must detect it, recompute,
  // and leave a valid blob behind.
  const std::string path = cache.blob_path("demand.profile", fp);
  std::string blob = io::read_text_file(path);
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x40);
  io::write_text_file(path, blob);

  const demand::DemandProfile back =
      cache.get_or_compute("demand.profile", fp, compute, ser, de);
  EXPECT_EQ(computes, 2) << "corrupt blob must recompute";
  EXPECT_EQ(cache.misses(), 2U);
  EXPECT_EQ(cache.hits(), 0U);
  EXPECT_EQ(back.cells(), small_profile().cells());
  EXPECT_NO_THROW(
      (void)snapshot::deserialize_profile(io::read_text_file(path)));
}

TEST_F(StageCacheTest, CacheRestoreIsByteIdenticalAcrossThreadCounts) {
  // The acceptance property in miniature: a blob written under one
  // executor is bit-identical to one written under another, so a warm run
  // at any thread count restores the cold run's bytes.
  demand::GeneratorConfig config;
  config.scale = 0.02;
  const demand::DemandProfile profile =
      demand::SyntheticGenerator{config}.generate_profile();
  const std::string blob_serial = snapshot::serialize(profile);
  runtime::ThreadPool pool(4);
  // Checksums are the only executor-dependent part of the writer path.
  EXPECT_EQ(snapshot::chunked_checksum(blob_serial, pool),
            snapshot::chunked_checksum(blob_serial,
                                       runtime::serial_executor()));
  const demand::DemandProfile back =
      snapshot::deserialize_profile(blob_serial);
  EXPECT_EQ(snapshot::serialize(back), blob_serial);
}

TEST(SnapshotCli, ParseCliArgForms) {
  // Restore the global to "off" afterwards so other tests are unaffected.
  struct Restore {
    ~Restore() { snapshot::set_global_dir(""); }
  } restore;

  const fs::path dir = fs::temp_directory_path() / "ldsnap_cli_test";
  fs::remove_all(dir);
  const std::string eq_arg = "--snapshot-dir=" + dir.string();
  std::string flag = "--snapshot-dir";
  std::string val = dir.string();
  char* argv_pair[] = {flag.data(), flag.data(), val.data()};
  int i = 1;
  EXPECT_TRUE(snapshot::parse_cli_arg(3, argv_pair, i));
  EXPECT_EQ(i, 2) << "separate value argument must be consumed";
  ASSERT_NE(snapshot::global_cache(), nullptr);
  EXPECT_EQ(snapshot::global_cache()->dir(), dir.string());

  std::string eq = eq_arg;
  char* argv_eq[] = {flag.data(), eq.data()};
  i = 1;
  EXPECT_TRUE(snapshot::parse_cli_arg(2, argv_eq, i));
  EXPECT_EQ(i, 1);

  std::string other = "--threads";
  char* argv_other[] = {flag.data(), other.data()};
  i = 1;
  EXPECT_FALSE(snapshot::parse_cli_arg(2, argv_other, i));

  std::string bare = "--snapshot-dir";
  char* argv_bare[] = {flag.data(), bare.data()};
  i = 1;
  EXPECT_THROW((void)snapshot::parse_cli_arg(2, argv_bare, i),
               std::runtime_error);
  fs::remove_all(dir);
}

// --------------------------------------------------------------- io layer --

TEST(FileIo, WriteTextFileRoundTripsBinary) {
  const fs::path path = fs::temp_directory_path() / "ldsnap_io_test.bin";
  const std::string payload("\x00\x01LDSNAP\r\n\xFF", 11);
  io::write_text_file(path.string(), payload);
  EXPECT_EQ(io::read_text_file(path.string()), payload);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"))
      << "temp file must not survive a successful write";
  // Overwrite is atomic-replace, not append.
  io::write_text_file(path.string(), "short");
  EXPECT_EQ(io::read_text_file(path.string()), "short");
  fs::remove(path);
}

TEST(FileIo, WriteTextFileFailurePathThrows) {
  EXPECT_THROW(
      io::write_text_file("/nonexistent-dir-xyz/file.txt", "payload"),
      std::runtime_error);
}

TEST(FileIo, CsvWriterPropagatesStreamFailure) {
  std::ofstream out("/nonexistent-dir-xyz/out.csv");
  io::CsvWriter w(out);
  EXPECT_THROW(w.write_row({"a", "b"}), std::runtime_error);
}

TEST(FileIo, JsonWriterPropagatesStreamFailure) {
  std::ofstream out("/nonexistent-dir-xyz/out.json");
  io::JsonWriter json(out);
  EXPECT_THROW(json.begin_object(), std::runtime_error);
}

}  // namespace

// Appended: indexed-kernel compatibility. The scheduling kernel was swapped
// from a naive full scan to the VisIndex-pruned one; snapshots written by
// pre-index builds must keep working — same stage fingerprints (no silent
// cache invalidation) and byte-identical trace payloads.
namespace {

sim::SimulationConfig golden_sim_config() {
  sim::SimulationConfig config;
  config.duration_s = 300.0;
  config.step_s = 100.0;
  config.scheduler.beamspread = 5;
  return config;
}

TEST(IndexedKernelCompat, SimEpochsFingerprintIsStable) {
  snapshot::Fingerprint fp = snapshot::stage_fingerprint("sim.epochs");
  snapshot::mix(fp, golden_sim_config());
  // Captured from the pre-index build. The fingerprint mixes config fields
  // only, so swapping the kernel must not move it — a change here silently
  // invalidates every existing ldsnap cache entry.
  EXPECT_EQ(fp.hex(), "fef47cc646ddcf3e");
}

TEST(IndexedKernelCompat, TraceBlobMatchesPreIndexBuildByteForByte) {
  const auto profile =
      demand::SyntheticGenerator({.seed = 17, .scale = 0.01})
          .generate_profile();
  const sim::Simulation simulation(golden_sim_config(), profile);
  const auto trace = simulation.run(runtime::serial_executor());
  const std::string blob = snapshot::serialize(trace);
  // Size and digest of the blob the pre-index build serialized for this
  // exact scenario: a trace cached by an old build deserializes equal to a
  // fresh indexed-kernel run, so warm caches survive the kernel swap.
  EXPECT_EQ(blob.size(), 274U);
  snapshot::Fingerprint digest;
  digest.mix(blob);
  EXPECT_EQ(digest.hex(), "2b5efa2983576320");
  EXPECT_TRUE(snapshot::deserialize_epochs(blob) == trace);
}

// ------------------------------------------------- serve/ delta journal --

std::vector<demand::DeltaOp> small_journal() {
  std::vector<demand::DeltaOp> journal;
  demand::DeltaOp add;
  add.kind = demand::DeltaKind::kAddLocations;
  add.position = {39.1, -75.4};
  add.count = 37;
  add.county_index = 1;
  journal.push_back(add);
  demand::DeltaOp remove = add;
  remove.kind = demand::DeltaKind::kRemoveLocations;
  remove.count = 12;
  journal.push_back(remove);
  demand::DeltaOp upgrade = add;
  upgrade.kind = demand::DeltaKind::kUpgradeLocations;
  upgrade.count = 3;
  journal.push_back(upgrade);
  demand::DeltaOp price;
  price.kind = demand::DeltaKind::kSetPlanPrice;
  price.plan_name = "Starlink Residential";  // spaces must survive the trip
  price.value = 95.0;
  journal.push_back(price);
  demand::DeltaOp income;
  income.kind = demand::DeltaKind::kSetCountyIncome;
  income.county_index = 0;
  income.value = 48213.5;
  journal.push_back(income);
  return journal;
}

TEST(Artifacts, DeltaJournalRoundTripExact) {
  const std::vector<demand::DeltaOp> journal = small_journal();
  const std::string blob = snapshot::serialize(journal);
  const snapshot::SnapshotReader reader =
      snapshot::SnapshotReader::parse(blob);
  EXPECT_EQ(reader.kind(), snapshot::ArtifactKind::kDeltaJournal);
  EXPECT_EQ(to_string(reader.kind()), "delta_journal");
  EXPECT_EQ(snapshot::deserialize_delta_journal(blob), journal);
}

TEST(Artifacts, EmptyDeltaJournalRoundTrips) {
  const std::string blob = snapshot::serialize(std::vector<demand::DeltaOp>{});
  EXPECT_TRUE(snapshot::deserialize_delta_journal(blob).empty());
}

TEST(Adversarial, DeltaJournalEveryTruncationFailsTyped) {
  const std::string blob = snapshot::serialize(small_journal());
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(
        (void)snapshot::deserialize_delta_journal(blob.substr(0, len)),
        snapshot::SnapshotError)
        << "prefix length " << len << " parsed";
  }
}

TEST(Adversarial, DeltaJournalUnknownKindRejected) {
  // Container-valid journal whose single op carries kind byte 9: the
  // checksums pass, so only read_delta_op's kind validation can refuse it.
  snapshot::ByteWriter ops;
  ops.u64(1);
  ops.u8(9);  // no such DeltaKind
  ops.f64(39.1);
  ops.f64(-75.4);
  ops.u32(5);
  ops.u32(0);
  ops.str("");
  ops.f64(0.0);
  snapshot::SnapshotWriter w(snapshot::ArtifactKind::kDeltaJournal);
  w.add_section("ops", std::move(ops).take());
  EXPECT_THROW(
      (void)snapshot::deserialize_delta_journal(std::move(w).finish()),
      snapshot::SnapshotError);
}

TEST_F(StageCacheTest, UnwritableDirDegradesToRecomputeWithOneWarning) {
  // A stray regular file where the stage directory should be makes every
  // store fail (the test runs as root, so a read-only directory would not).
  // The cache must degrade to recompute-without-store: one stderr warning,
  // every store counted as a failure, every get_or_compute still answering.
  fs::create_directories(dir_);
  io::write_text_file((dir_ / "stage").string(), "not a directory");

  snapshot::StageCache cache(dir_.string());
  snapshot::Fingerprint fp = snapshot::stage_fingerprint("stage");
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return small_profile();
  };
  auto ser = [](const demand::DemandProfile& p) {
    return snapshot::serialize(p);
  };
  auto de = [](std::string_view blob) {
    return snapshot::deserialize_profile(blob);
  };

  ::testing::internal::CaptureStderr();
  const demand::DemandProfile first =
      cache.get_or_compute("stage", fp, compute, ser, de);
  const demand::DemandProfile second =
      cache.get_or_compute("stage", fp, compute, ser, de);
  const std::string warnings = ::testing::internal::GetCapturedStderr();

  EXPECT_EQ(computes, 2) << "nothing was stored, so nothing can hit";
  EXPECT_EQ(first.cells(), second.cells());
  EXPECT_EQ(cache.store_failures(), 2U);
  EXPECT_EQ(cache.hits(), 0U);
  const std::string needle = "is not writable";
  std::size_t count = 0;
  for (std::size_t pos = warnings.find(needle); pos != std::string::npos;
       pos = warnings.find(needle, pos + needle.size())) {
    ++count;
  }
  EXPECT_EQ(count, 1U) << "exactly one warning expected, got:\n" << warnings;
}

}  // namespace
