// Golden suite for the SIMD kernels in orbit/kernels.cpp: the dispatching
// entry points must be bit-identical to their retained `_scalar` twins on
// adversarial inputs — polar cells, date-line longitudes, grazing
// elevations that land exactly on the cos threshold, NaN lanes, and every
// tail-lane remainder around the compiled lane width. Also pins the
// consumers: propagate_all (batched rotation) against per-satellite
// ecef_position, and the scheduler's SIMD visibility filter against the
// naive reference on threshold geometries.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "leodivide/geo/angle.hpp"
#include "leodivide/geo/ecef.hpp"
#include "leodivide/orbit/kernels.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/walker.hpp"
#include "leodivide/sim/scheduler.hpp"
#include "leodivide/stats/rng.hpp"

namespace leodivide {
namespace {

// SoA satellite unit-vector set plus a cell direction, the exact operand
// shape of the visibility kernels.
struct SoaDirs {
  std::vector<double> ux, uy, uz;
  std::vector<std::uint32_t> candidates;

  void push(const geo::Vec3& u) {
    candidates.push_back(static_cast<std::uint32_t>(ux.size()));
    ux.push_back(u.x);
    uy.push_back(u.y);
    uz.push_back(u.z);
  }
  [[nodiscard]] std::size_t size() const { return ux.size(); }
};

SoaDirs random_dirs(stats::Pcg32& rng, std::size_t n) {
  SoaDirs d;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::GeoPoint p{-90.0 + rng.next_double() * 180.0,
                          -180.0 + rng.next_double() * 360.0};
    d.push(geo::spherical_to_cartesian(p, 1.0));
  }
  return d;
}

void expect_filter_matches_scalar(const SoaDirs& d, const geo::Vec3& cell,
                                  double cos_psi) {
  std::vector<std::uint32_t> simd_out(d.size() + 1, 0xdeadbeef);
  std::vector<std::uint32_t> scalar_out(d.size() + 1, 0xdeadbeef);
  const std::size_t simd_n = orbit::filter_visible(
      cell.x, cell.y, cell.z, d.ux.data(), d.uy.data(), d.uz.data(),
      d.candidates.data(), d.size(), cos_psi, simd_out.data());
  const std::size_t scalar_n = orbit::filter_visible_scalar(
      cell.x, cell.y, cell.z, d.ux.data(), d.uy.data(), d.uz.data(),
      d.candidates.data(), d.size(), cos_psi, scalar_out.data());
  ASSERT_EQ(simd_n, scalar_n);
  for (std::size_t i = 0; i < simd_n; ++i) {
    EXPECT_EQ(simd_out[i], scalar_out[i]) << "kept index " << i;
  }

  std::vector<std::uint8_t> simd_mask(d.size() + 1, 0xcc);
  std::vector<std::uint8_t> scalar_mask(d.size() + 1, 0xcc);
  orbit::visible_mask(cell.x, cell.y, cell.z, d.ux.data(), d.uy.data(),
                      d.uz.data(), d.size(), cos_psi, simd_mask.data());
  orbit::visible_mask_scalar(cell.x, cell.y, cell.z, d.ux.data(),
                             d.uy.data(), d.uz.data(), d.size(), cos_psi,
                             scalar_mask.data());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(simd_mask[i], scalar_mask[i]) << "mask lane " << i;
  }
  // The byte past the end is untouched.
  EXPECT_EQ(simd_mask[d.size()], 0xcc);
  EXPECT_EQ(scalar_mask[d.size()], 0xcc);
}

TEST(SimdKernels, BackendIsCoherent) {
  const std::size_t lanes = orbit::kernel_lanes();
  EXPECT_TRUE(lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8)
      << lanes;
  ASSERT_NE(orbit::kernel_backend(), nullptr);
  if (lanes == 1) EXPECT_STREQ(orbit::kernel_backend(), "scalar");
}

TEST(SimdKernels, FilterMatchesScalarOnEveryTailLength) {
  stats::Pcg32 rng(0x51D5u);
  const geo::Vec3 cell =
      geo::spherical_to_cartesian(geo::GeoPoint{40.0, -100.0}, 1.0);
  // Cover every remainder around the widest lane count (8) several times
  // over, plus larger sizes: n = 0..33, 63..65, 255..257.
  for (std::size_t n = 0; n <= 33; ++n) {
    const SoaDirs d = random_dirs(rng, n);
    expect_filter_matches_scalar(d, cell, 0.9);
  }
  for (const std::size_t n : {63U, 64U, 65U, 255U, 256U, 257U}) {
    const SoaDirs d = random_dirs(rng, n);
    expect_filter_matches_scalar(d, cell, 0.95);
  }
}

TEST(SimdKernels, GrazingExactlyAtThresholdIsKept) {
  // dot == cos_psi exactly: cell along +x, satellite at (cos_psi,
  // sin(acos cos_psi), 0) is approximate — instead build the product to be
  // exact: cell (1,0,0), satellite (cos_psi, 0, 0). 1.0 * cos_psi ==
  // cos_psi bit-for-bit, so >= must keep it in both implementations.
  const double cos_psi = 0.7193398003386512;  // arbitrary non-round value
  SoaDirs d;
  d.push({cos_psi, 0.0, 0.0});                                    // == keep
  d.push({std::nextafter(cos_psi, 0.0), 0.0, 0.0});               // < drop
  d.push({std::nextafter(cos_psi, 1.0), 0.0, 0.0});               // > keep
  d.push({cos_psi, 0.0, 0.0});  // tail-lane repeat of the exact case
  const geo::Vec3 cell{1.0, 0.0, 0.0};

  std::vector<std::uint32_t> out(d.size(), 0);
  const std::size_t kept = orbit::filter_visible(
      cell.x, cell.y, cell.z, d.ux.data(), d.uy.data(), d.uz.data(),
      d.candidates.data(), d.size(), cos_psi, out.data());
  ASSERT_EQ(kept, 3U);
  EXPECT_EQ(out[0], 0U);
  EXPECT_EQ(out[1], 2U);
  EXPECT_EQ(out[2], 3U);
  expect_filter_matches_scalar(d, cell, cos_psi);
}

TEST(SimdKernels, PolarAndDateLineDirections) {
  SoaDirs d;
  // Poles: unit z is exactly ±1, x and y exactly 0 for lat ±90 only if
  // the trig cancels — take whatever spherical_to_cartesian produces plus
  // the exact axis vectors.
  d.push(geo::spherical_to_cartesian(geo::GeoPoint{90.0, 0.0}, 1.0));
  d.push(geo::spherical_to_cartesian(geo::GeoPoint{-90.0, 135.0}, 1.0));
  d.push({0.0, 0.0, 1.0});
  d.push({0.0, 0.0, -1.0});
  // Date line: ±180 degrees map to the same meridian with opposite-signed
  // longitude sines — adversarial for any sign-sensitive compare.
  d.push(geo::spherical_to_cartesian(geo::GeoPoint{10.0, 180.0}, 1.0));
  d.push(geo::spherical_to_cartesian(geo::GeoPoint{10.0, -180.0}, 1.0));
  d.push(geo::spherical_to_cartesian(geo::GeoPoint{-10.0, 179.999999}, 1.0));

  for (const geo::GeoPoint cell_pt :
       {geo::GeoPoint{89.0, 45.0}, geo::GeoPoint{-89.0, -45.0},
        geo::GeoPoint{0.0, 180.0}, geo::GeoPoint{0.0, 0.0}}) {
    const geo::Vec3 cell = geo::spherical_to_cartesian(cell_pt, 1.0);
    for (const double cos_psi : {-1.0, 0.0, 0.5, 0.99, 1.0}) {
      expect_filter_matches_scalar(d, cell, cos_psi);
    }
  }
}

TEST(SimdKernels, NanLanesBehaveLikeScalar) {
  // A NaN dot product fails >= in IEEE; vector compares must agree.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SoaDirs d;
  d.push({nan, 0.0, 0.0});
  d.push({0.9, 0.1, 0.0});
  d.push({0.0, nan, nan});
  d.push({1.0, 0.0, 0.0});
  d.push({nan, nan, nan});
  expect_filter_matches_scalar(d, {1.0, 0.0, 0.0}, 0.5);
  std::vector<std::uint8_t> mask(d.size(), 9);
  orbit::visible_mask(1.0, 0.0, 0.0, d.ux.data(), d.uy.data(), d.uz.data(),
                      d.size(), 0.5, mask.data());
  EXPECT_EQ(mask[0], 0);  // NaN never passes
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 0);
  EXPECT_EQ(mask[3], 1);
  EXPECT_EQ(mask[4], 0);
}

TEST(SimdKernels, RotateMatchesScalarBitForBit) {
  stats::Pcg32 rng(0x707A7Eu);
  for (const std::size_t n : {0U, 1U, 3U, 4U, 5U, 7U, 8U, 9U, 31U, 100U}) {
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = -7000.0 + rng.next_double() * 14000.0;
      y[i] = -7000.0 + rng.next_double() * 14000.0;
    }
    for (const double theta : {0.0, 1e-9, 0.5, 3.14159, -2.0, 12345.678}) {
      const double c = std::cos(theta);
      const double s = std::sin(theta);
      std::vector<double> sx(n), sy(n), vx(n), vy(n);
      orbit::rotate_about_z_scalar(x.data(), y.data(), c, s, n, sx.data(),
                                   sy.data());
      orbit::rotate_about_z(x.data(), y.data(), c, s, n, vx.data(),
                            vy.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(vx[i]),
                  std::bit_cast<std::uint64_t>(sx[i]));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(vy[i]),
                  std::bit_cast<std::uint64_t>(sy[i]));
      }
      // In-place operation: both inputs load before either store.
      std::vector<double> ix = x, iy = y;
      orbit::rotate_about_z(ix.data(), iy.data(), c, s, n, ix.data(),
                            iy.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(ix[i]),
                  std::bit_cast<std::uint64_t>(sx[i]));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(iy[i]),
                  std::bit_cast<std::uint64_t>(sy[i]));
      }
    }
  }
}

// propagate_all routes every epoch rotation through the SIMD kernel; it
// must stay bit-identical to the per-satellite scalar path.
TEST(SimdKernels, PropagateAllMatchesPerSatelliteScalar) {
  orbit::WalkerShell shell = orbit::starlink_shell1();
  shell.planes = 12;
  shell.sats_per_plane = 11;  // 132 sats: not a multiple of 4 or 8
  const std::vector<orbit::CircularOrbit> orbits =
      orbit::make_constellation(shell);
  for (const double t_s : {0.0, 17.3, 5400.0, 86400.0 + 0.125}) {
    const std::vector<orbit::SatState> batch =
        orbit::propagate_all(orbits, t_s);
    ASSERT_EQ(batch.size(), orbits.size());
    for (std::size_t i = 0; i < orbits.size(); ++i) {
      const geo::Vec3 ref = orbit::ecef_position(orbits[i], t_s);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batch[i].ecef_km.x),
                std::bit_cast<std::uint64_t>(ref.x));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batch[i].ecef_km.y),
                std::bit_cast<std::uint64_t>(ref.y));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batch[i].ecef_km.z),
                std::bit_cast<std::uint64_t>(ref.z));
      const geo::GeoPoint sub = geo::cartesian_to_spherical(ref);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batch[i].subpoint.lat_deg),
                std::bit_cast<std::uint64_t>(sub.lat_deg));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batch[i].subpoint.lon_deg),
                std::bit_cast<std::uint64_t>(sub.lon_deg));
    }
  }
}

// End-to-end: the scheduler's SIMD filter_visible path must keep schedule
// byte-identical to schedule_reference on geometries built to graze the
// elevation mask (satellites right at the visibility cone's edge).
TEST(SimdKernels, SchedulerBitIdenticalOnGrazingGeometry) {
  std::vector<sim::SchedCell> cells;
  for (const geo::GeoPoint p :
       {geo::GeoPoint{89.5, 10.0}, geo::GeoPoint{-89.5, -170.0},
        geo::GeoPoint{0.0, 180.0}, geo::GeoPoint{0.0, -180.0},
        geo::GeoPoint{45.0, 0.0}}) {
    sim::SchedCell c;
    c.center = p;
    c.ecef_km = geo::spherical_to_cartesian(p, geo::kEarthRadiusKm);
    c.locations = 500;
    c.beams_needed = 2;
    cells.push_back(c);
  }
  sim::SchedulerConfig config;
  config.min_elevation_deg = 25.0;

  std::vector<orbit::SatState> sats;
  // A ring of satellites at small angular offsets from each cell, spanning
  // both sides of the visibility cone boundary for the configured mask.
  for (const sim::SchedCell& c : cells) {
    for (const double off_deg : {0.0, 5.0, 10.0, 14.9, 15.0, 15.1, 20.0}) {
      orbit::SatState s;
      s.subpoint = {c.center.lat_deg > 74.0 ? c.center.lat_deg - off_deg
                                            : c.center.lat_deg + off_deg,
                    c.center.lon_deg};
      s.ecef_km = geo::spherical_to_cartesian(s.subpoint,
                                              geo::kEarthRadiusKm + 550.0);
      sats.push_back(s);
    }
  }

  for (const sim::Strategy strategy :
       {sim::Strategy::kMostSlack, sim::Strategy::kFirstFit,
        sim::Strategy::kBestFit}) {
    config.strategy = strategy;
    const sim::BeamScheduler scheduler(cells, config);
    const sim::ScheduleResult indexed = scheduler.schedule(sats);
    const sim::ScheduleResult naive = scheduler.schedule_reference(sats);
    EXPECT_TRUE(indexed == naive);
  }
}

}  // namespace
}  // namespace leodivide
