// Tests for the runtime/ execution engine: thread-pool correctness (every
// task runs exactly once, exceptions propagate deterministically, nested
// batches don't deadlock), the chunking / map-reduce primitives, and —
// the load-bearing property — that the wired pipeline stages produce
// byte-identical output at every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/aggregate.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/hex/polyfill.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/map_reduce.hpp"
#include "leodivide/runtime/parallel_for.hpp"
#include "leodivide/runtime/rng_split.hpp"
#include "leodivide/runtime/thread_pool.hpp"
#include "leodivide/sim/simulation.hpp"

namespace {

using namespace leodivide;

// ---------------------------------------------------------------------------
// LEODIVIDE_THREADS parsing
// ---------------------------------------------------------------------------

TEST(ParseThreadCount, AcceptsPlainIntegers) {
  EXPECT_EQ(runtime::parse_thread_count("1"), 1U);
  EXPECT_EQ(runtime::parse_thread_count("4"), 4U);
  EXPECT_EQ(runtime::parse_thread_count("128"), 128U);
}

TEST(ParseThreadCount, TrimsSurroundingWhitespace) {
  EXPECT_EQ(runtime::parse_thread_count(" 8 "), 8U);
  EXPECT_EQ(runtime::parse_thread_count("\t2\n"), 2U);
}

TEST(ParseThreadCount, RejectsMalformedInput) {
  EXPECT_EQ(runtime::parse_thread_count("abc"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("-3"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("+4"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("1e9"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("4.5"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count(""), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("   "), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("4x"), std::nullopt);
}

TEST(ParseThreadCount, RejectsOutOfRangeValues) {
  EXPECT_EQ(runtime::parse_thread_count("0"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("99999999"), std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count("18446744073709551617"),
            std::nullopt);
  EXPECT_EQ(runtime::parse_thread_count(
                std::to_string(runtime::kMaxThreads)),
            runtime::kMaxThreads);
  EXPECT_EQ(runtime::parse_thread_count(
                std::to_string(runtime::kMaxThreads + 1)),
            std::nullopt);
}

// ---------------------------------------------------------------------------
// Worker-pool sizing (serve/ server, benches): env + CLI flag
// ---------------------------------------------------------------------------

TEST(WorkerCount, EnvOverridesFallback) {
  ASSERT_EQ(setenv("LEODIVIDE_WORKERS", "6", 1), 0);
  EXPECT_EQ(runtime::worker_count_from_env(2), 6U);
  ASSERT_EQ(unsetenv("LEODIVIDE_WORKERS"), 0);
  EXPECT_EQ(runtime::worker_count_from_env(2), 2U);
}

TEST(WorkerCount, MalformedEnvFallsBack) {
  ASSERT_EQ(setenv("LEODIVIDE_WORKERS", "lots", 1), 0);
  EXPECT_EQ(runtime::worker_count_from_env(3), 3U);
  ASSERT_EQ(setenv("LEODIVIDE_WORKERS", "0", 1), 0);
  EXPECT_EQ(runtime::worker_count_from_env(3), 3U);
  ASSERT_EQ(unsetenv("LEODIVIDE_WORKERS"), 0);
}

TEST(ParseWorkersArg, ConsumesSeparateAndInlineValues) {
  std::size_t workers = 0;
  {
    char a0[] = "prog", a1[] = "--workers", a2[] = "5";
    char* argv[] = {a0, a1, a2};
    int i = 1;
    EXPECT_TRUE(runtime::parse_workers_arg(3, argv, i, workers));
    EXPECT_EQ(workers, 5U);
    EXPECT_EQ(i, 2) << "must advance past the value argument";
  }
  {
    char a0[] = "prog", a1[] = "--workers=7";
    char* argv[] = {a0, a1};
    int i = 1;
    EXPECT_TRUE(runtime::parse_workers_arg(2, argv, i, workers));
    EXPECT_EQ(workers, 7U);
    EXPECT_EQ(i, 1) << "inline value consumes only its own argv slot";
  }
}

TEST(ParseWorkersArg, IgnoresOtherFlags) {
  std::size_t workers = 42;
  char a0[] = "prog", a1[] = "--threads";
  char* argv[] = {a0, a1};
  int i = 1;
  EXPECT_FALSE(runtime::parse_workers_arg(2, argv, i, workers));
  EXPECT_EQ(workers, 42U) << "non-matching flag must leave workers alone";
  EXPECT_EQ(i, 1);
}

TEST(ParseWorkersArg, MissingOrInvalidValueThrows) {
  std::size_t workers = 0;
  {
    char a0[] = "prog", a1[] = "--workers";
    char* argv[] = {a0, a1};
    int i = 1;
    EXPECT_THROW((void)runtime::parse_workers_arg(2, argv, i, workers),
                 std::runtime_error);
  }
  {
    char a0[] = "prog", a1[] = "--workers", a2[] = "zero";
    char* argv[] = {a0, a1, a2};
    int i = 1;
    EXPECT_THROW((void)runtime::parse_workers_arg(3, argv, i, workers),
                 std::runtime_error);
  }
  {
    char a0[] = "prog", a1[] = "--workers=";
    char* argv[] = {a0, a1};
    int i = 1;
    EXPECT_THROW((void)runtime::parse_workers_arg(2, argv, i, workers),
                 std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool / Executor contract
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_tasks(kTasks, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, IsReusableAcrossBatches) {
  runtime::ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.run_tasks(100, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 20ULL * (99ULL * 100ULL / 2ULL));
}

TEST(ThreadPool, EmptyAndSingletonBatches) {
  runtime::ThreadPool pool(2);
  int calls = 0;
  pool.run_tasks(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.run_tasks(1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0U);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, LowestIndexedExceptionWins) {
  runtime::ThreadPool pool(4);
  // Several tasks throw; regardless of which thread finishes first, the
  // exception from the lowest-indexed failing task must surface.
  for (int round = 0; round < 10; ++round) {
    try {
      pool.run_tasks(64, [](std::size_t i) {
        if (i == 7 || i == 8 || i == 63) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7");
    }
  }
}

TEST(ThreadPool, NestedRunTasksDoesNotDeadlock) {
  runtime::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run_tasks(4, [&](std::size_t) {
    pool.run_tasks(8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

// Regression: a batch submitted from inside a pool task must run inline on
// the calling thread (serial, index order), never re-enter the shared
// queue — re-entrant submission could deadlock once every worker was stuck
// waiting on a nested batch.
TEST(ThreadPool, NestedRunTasksRunsInlineInIndexOrder) {
  runtime::ThreadPool pool(2);
  EXPECT_FALSE(runtime::ThreadPool::inside_pool_task());
  std::atomic<bool> saw_inside{false};
  std::atomic<bool> nested_in_order{true};
  std::atomic<std::uint64_t> nested_runs{0};
  pool.run_tasks(4, [&](std::size_t) {
    saw_inside = saw_inside.load() || runtime::ThreadPool::inside_pool_task();
    // Runs inline: strictly sequential on this thread, so a plain local
    // suffices to check index order.
    std::size_t next = 0;
    pool.run_tasks(16, [&](std::size_t i) {
      if (i != next++) nested_in_order = false;
      ++nested_runs;
    });
    if (next != 16) nested_in_order = false;
  });
  EXPECT_TRUE(saw_inside.load());
  EXPECT_TRUE(nested_in_order.load());
  EXPECT_EQ(nested_runs.load(), 64U);
  EXPECT_FALSE(runtime::ThreadPool::inside_pool_task());
}

// Nested parallel_for over a pool must also degrade to inline execution —
// this is what makes TaskGraph node bodies free to call parallel helpers.
TEST(ThreadPool, NestedParallelForWritesEverySlot) {
  runtime::ThreadPool pool(4);
  std::vector<int> out(4 * 64, 0);
  pool.run_tasks(4, [&](std::size_t task) {
    runtime::parallel_for_each(
        pool, 0, 64,
        [&](std::size_t i) { out[task * 64 + i] = static_cast<int>(i) + 1; },
        /*grain=*/8);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i % 64) + 1) << "slot " << i;
  }
}

TEST(SerialExecutor, RunsInIndexOrder) {
  runtime::Executor& ex = runtime::serial_executor();
  EXPECT_EQ(ex.concurrency(), 1U);
  std::vector<std::size_t> order;
  ex.run_tasks(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(SerialExecutor, StopsAtFirstThrow) {
  runtime::Executor& ex = runtime::serial_executor();
  int executed = 0;
  EXPECT_THROW(ex.run_tasks(10,
                            [&](std::size_t i) {
                              ++executed;
                              if (i == 3) throw std::logic_error("boom");
                            }),
               std::logic_error);
  EXPECT_EQ(executed, 4);
}

TEST(GlobalExecutor, SetGlobalThreadsControlsConcurrency) {
  runtime::set_global_threads(3);
  EXPECT_EQ(runtime::global_executor().concurrency(), 3U);
  runtime::set_global_threads(1);
  EXPECT_EQ(runtime::global_executor().concurrency(), 1U);
  runtime::set_global_threads(0);  // restore the environment default
  EXPECT_EQ(runtime::global_executor().concurrency(),
            runtime::default_thread_count());
}

// ---------------------------------------------------------------------------
// Chunking / parallel_for / map_reduce
// ---------------------------------------------------------------------------

TEST(ChunkRange, PartitionsExactlyAndInOrder) {
  for (std::size_t n : {1UL, 2UL, 7UL, 64UL, 1001UL}) {
    for (std::size_t chunks : {1UL, 2UL, 3UL, 5UL, 8UL}) {
      if (chunks > n) continue;
      std::size_t expected_lo = 100;  // arbitrary non-zero begin
      for (std::size_t i = 0; i < chunks; ++i) {
        const auto r = runtime::chunk_range(100, 100 + n, chunks, i);
        EXPECT_EQ(r.lo, expected_lo);
        EXPECT_GE(r.hi, r.lo + n / chunks);
        expected_lo = r.hi;
      }
      EXPECT_EQ(expected_lo, 100 + n);
    }
  }
}

TEST(ChunkCount, RespectsGrainAndConcurrency) {
  runtime::ThreadPool pool(8);
  EXPECT_EQ(runtime::chunk_count(pool, 0, 1), 0U);
  EXPECT_EQ(runtime::chunk_count(pool, 100, 1), 8U);
  EXPECT_EQ(runtime::chunk_count(pool, 100, 50), 2U);
  EXPECT_EQ(runtime::chunk_count(pool, 100, 1000), 1U);
  EXPECT_EQ(runtime::chunk_count(runtime::serial_executor(), 100, 1), 1U);
}

TEST(ParallelFor, CoversRangeWithDisjointWrites) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<int> out(kN, 0);
  runtime::parallel_for_each(pool, 0, kN,
                             [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(MapReduce, OrderedConcatenationMatchesSerialOrder) {
  const auto fill = [](std::vector<std::size_t>& shard, std::size_t lo,
                       std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) shard.push_back(i * i);
  };
  const auto merge = [](std::vector<std::size_t>& into,
                        std::vector<std::size_t>&& from) {
    into.insert(into.end(), from.begin(), from.end());
  };
  const auto serial = runtime::map_reduce<std::vector<std::size_t>>(
      runtime::serial_executor(), 0, 997, fill, merge);
  runtime::ThreadPool pool(5);
  const auto parallel = runtime::map_reduce<std::vector<std::size_t>>(
      pool, 0, 997, fill, merge);
  EXPECT_EQ(serial, parallel);
  ASSERT_EQ(serial.size(), 997U);
  EXPECT_EQ(serial[31], 31U * 31U);
}

TEST(RngSplit, DeterministicAndShardDistinct) {
  EXPECT_EQ(runtime::split_seed(42, 0), runtime::split_seed(42, 0));
  EXPECT_NE(runtime::split_seed(42, 0), runtime::split_seed(42, 1));
  EXPECT_NE(runtime::split_seed(42, 0), runtime::split_seed(43, 0));
  // No collisions among the first few thousand shards of one seed.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    seeds.push_back(runtime::split_seed(7, s));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---------------------------------------------------------------------------
// Pipeline determinism: byte-identical output at threads in {1, 2, 8}
// ---------------------------------------------------------------------------

std::string profile_bytes(const demand::DemandProfile& profile) {
  std::ostringstream cells, counties;
  profile.save_csv(cells, counties);
  return cells.str() + '\x1f' + counties.str();
}

std::string dataset_bytes(const demand::DemandDataset& dataset) {
  std::ostringstream locations, counties;
  dataset.save_csv(locations, counties);
  return locations.str() + '\x1f' + counties.str();
}

constexpr demand::GeneratorConfig kSmallConfig{.seed = 42, .scale = 0.002};

TEST(PipelineDeterminism, GenerateExpandAggregateAcrossThreadCounts) {
  const demand::SyntheticGenerator gen(kSmallConfig);
  const hex::HexGrid grid;

  const auto profile1 = gen.generate_profile(runtime::serial_executor());
  const auto dataset1 =
      gen.expand_locations(profile1, 1.0, runtime::serial_executor());
  const auto agg1 =
      demand::aggregate(dataset1, grid, kSmallConfig.resolution,
                        runtime::serial_executor());

  for (std::size_t threads : {2UL, 8UL}) {
    runtime::ThreadPool pool(threads);
    const auto profile = gen.generate_profile(pool);
    EXPECT_EQ(profile_bytes(profile), profile_bytes(profile1))
        << "generate_profile at threads=" << threads;
    const auto dataset = gen.expand_locations(profile, 1.0, pool);
    EXPECT_EQ(dataset_bytes(dataset), dataset_bytes(dataset1))
        << "expand_locations at threads=" << threads;
    const auto agg =
        demand::aggregate(dataset, grid, kSmallConfig.resolution, pool);
    EXPECT_EQ(profile_bytes(agg), profile_bytes(agg1))
        << "aggregate at threads=" << threads;
  }
}

TEST(PipelineDeterminism, SameSeedTwiceIsByteIdentical) {
  runtime::ThreadPool pool(4);
  const demand::SyntheticGenerator gen(kSmallConfig);
  const auto a = gen.generate_profile(pool);
  const auto b = gen.generate_profile(pool);
  EXPECT_EQ(profile_bytes(a), profile_bytes(b));
  EXPECT_EQ(dataset_bytes(gen.expand_locations(a, 1.0, pool)),
            dataset_bytes(gen.expand_locations(b, 1.0, pool)));
}

TEST(PipelineDeterminism, PolyfillMatchesSerialScanOrder) {
  const hex::HexGrid grid;
  const geo::BoundingBox box{36.0, 42.0, -104.0, -94.0};
  const auto serial = hex::polyfill(grid, box, 5, runtime::serial_executor());
  runtime::ThreadPool pool(8);
  EXPECT_EQ(hex::polyfill(grid, box, 5, pool), serial);
}

TEST(PipelineDeterminism, SizingSweepMatchesSerial) {
  const demand::SyntheticGenerator gen(kSmallConfig);
  const auto profile = gen.generate_profile(runtime::serial_executor());
  const core::SizingModel model;
  const auto serial = core::size_with_cap(profile, model, 5.0, 20.0,
                                          runtime::serial_executor());
  runtime::ThreadPool pool(8);
  const auto parallel = core::size_with_cap(profile, model, 5.0, 20.0, pool);
  EXPECT_EQ(parallel.satellites, serial.satellites);
  EXPECT_EQ(parallel.binding_lat_deg, serial.binding_lat_deg);
  EXPECT_EQ(parallel.beams_on_binding, serial.beams_on_binding);
  EXPECT_EQ(parallel.binding_cell_index, serial.binding_cell_index);
}

TEST(PipelineDeterminism, SimulationTraceMatchesSerial) {
  const demand::SyntheticGenerator gen(kSmallConfig);
  const auto profile = gen.generate_profile(runtime::serial_executor());
  sim::SimulationConfig config;
  config.shell = orbit::WalkerShell{53.0, 550.0, 8, 6, 1};  // tiny shell
  config.duration_s = 240.0;
  config.step_s = 60.0;
  const sim::Simulation simulation(config, profile);
  const auto serial = simulation.run(runtime::serial_executor());
  runtime::ThreadPool pool(4);
  const auto parallel = simulation.run(pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(parallel[e].time_s, serial[e].time_s);
    EXPECT_EQ(parallel[e].cells_served, serial[e].cells_served);
    EXPECT_EQ(parallel[e].locations_served, serial[e].locations_served);
    EXPECT_EQ(parallel[e].mean_beam_utilization,
              serial[e].mean_beam_utilization);
    EXPECT_EQ(parallel[e].satellites_in_view, serial[e].satellites_in_view);
  }
}

}  // namespace
