// Adversarial and round-trip coverage for the LSRV wire protocol
// (serve/protocol), in the spirit of test_io_adversarial.cpp: every
// malformed input — truncation at every byte, oversized/undersized length
// prefixes, header corruption, checksum bit flips, random garbage — must
// surface as a typed ProtocolError or a clean "need more bytes", never a
// crash, hang, allocation blow-up, or foreign exception. CI runs this
// suite under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "leodivide/runtime/executor.hpp"
#include "leodivide/serve/protocol.hpp"
#include "leodivide/snapshot/artifacts.hpp"
#include "leodivide/stats/rng.hpp"

namespace {

using namespace leodivide;
using namespace leodivide::serve::protocol;

demand::DeltaOp sample_op() {
  demand::DeltaOp op;
  op.kind = demand::DeltaKind::kAddLocations;
  op.position = {40.25, -101.5};
  op.count = 120;
  op.county_index = 7;
  op.value = 0.0;
  return op;
}

// One valid frame with a nontrivial payload, used as the mutation corpus.
std::string valid_frame() {
  ApplyDeltaRequest req;
  req.ops = {sample_op(), sample_op()};
  return encode_frame(MsgType::kApplyDelta, encode(req));
}

// ------------------------------------------------------- message codecs --

TEST(ServeProtocolCodec, HelloRoundTrip) {
  const HelloRequest req{"client-x"};
  EXPECT_EQ(decode_hello_request(encode(req)), req);

  HelloReply reply;
  reply.server = "unit-test";
  reply.cells = 914;
  reply.counties = 741;
  reply.regions = 33;
  reply.paranoid = true;
  EXPECT_EQ(decode_hello_reply(encode(reply)), reply);
}

TEST(ServeProtocolCodec, ApplyDeltaRoundTrip) {
  ApplyDeltaRequest req;
  demand::DeltaOp price;
  price.kind = demand::DeltaKind::kSetPlanPrice;
  price.plan_name = "Starlink Residential";
  price.value = 95.0;
  req.ops = {sample_op(), price};
  EXPECT_EQ(decode_apply_delta_request(encode(req)), req);

  const DeltaAppliedReply reply{2, 1, 1, 17};
  EXPECT_EQ(decode_delta_applied_reply(encode(reply)), reply);
}

TEST(ServeProtocolCodec, QueryAndReplyRoundTrips) {
  const QueryResizeRequest resize{10.0, 20.0};
  EXPECT_EQ(decode_query_resize_request(encode(resize)), resize);

  ResizeReply rr;
  rr.full_satellites = 8287.6866502182111;
  rr.full_binding_lat_deg = 36.949308008585838;
  rr.full_beams = 4;
  rr.full_cell_index = 12;
  rr.capped_satellites = 8430.5056443500562;
  rr.capped_binding_lat_deg = 36.374430579709426;
  rr.capped_beams = 4;
  rr.capped_cell_index = 99;
  EXPECT_EQ(decode_resize_reply(encode(rr)), rr);

  const QueryAffordabilityRequest aff{"Starlink Residential", 0.03};
  EXPECT_EQ(decode_query_affordability_request(encode(aff)), aff);

  AffordabilityReply ar;
  ar.plan_name = "Starlink Residential";
  ar.monthly_usd = 120.0;
  ar.income_required_usd = 72000.0;
  ar.locations_unable = 173958.0;
  ar.fraction_unable = 0.7446;
  EXPECT_EQ(decode_affordability_reply(encode(ar)), ar);

  const QueryServedFractionRequest served{10.0, 20.0};
  EXPECT_EQ(decode_query_served_fraction_request(encode(served)), served);

  ServedFractionReply sr;
  sr.cell_fraction = 0.78;
  sr.location_fraction = 0.29;
  sr.served_cells = 714;
  sr.total_cells = 914;
  sr.served_locations = 68821;
  sr.total_locations = 233625;
  EXPECT_EQ(decode_served_fraction_reply(encode(sr)), sr);

  StatsReply stats;
  stats.counters = {{"serve.cells", 914}, {"serve.requests", 3}};
  EXPECT_EQ(decode_stats_reply(encode(stats)), stats);

  const ErrorReply err{"plan table: unknown plan 'nope'"};
  EXPECT_EQ(decode_error_reply(encode(err)), err);
}

TEST(ServeProtocolCodec, TruncatedPayloadsThrow) {
  const std::string hello = encode(HelloReply{});
  for (std::size_t n = 0; n < hello.size(); ++n) {
    EXPECT_THROW((void)decode_hello_reply(hello.substr(0, n)), ProtocolError)
        << "prefix length " << n;
  }
  const std::string delta = encode([] {
    ApplyDeltaRequest r;
    r.ops = {sample_op()};
    return r;
  }());
  for (std::size_t n = 0; n < delta.size(); ++n) {
    EXPECT_THROW((void)decode_apply_delta_request(delta.substr(0, n)),
                 ProtocolError)
        << "prefix length " << n;
  }
}

TEST(ServeProtocolCodec, TrailingGarbageAfterPayloadThrows) {
  const std::string ok = encode(QueryResizeRequest{10.0, 20.0});
  EXPECT_THROW((void)decode_query_resize_request(ok + "x"), ProtocolError);
}

TEST(ServeProtocolCodec, OversizedOpCountIsRejectedBeforeAllocation) {
  // Claim 2^60 ops in a payload with room for none: must throw the typed
  // error immediately instead of reserving petabytes.
  snapshot::ByteWriter w;
  w.u64(1ULL << 60);
  EXPECT_THROW((void)decode_apply_delta_request(std::move(w).take()),
               ProtocolError);
}

TEST(ServeProtocolCodec, UnknownDeltaKindCodeThrows) {
  snapshot::ByteWriter w;
  w.u64(1);
  snapshot::write_delta_op(w, sample_op());
  std::string payload = std::move(w).take();
  payload[8] = '\x09';  // first op's kind byte: 9 is not a DeltaKind
  EXPECT_THROW((void)decode_apply_delta_request(payload), ProtocolError);
}

// ------------------------------------------------------------- framing --

TEST(ServeProtocolFrame, FrameRoundTrip) {
  const std::string payload = encode(QueryResizeRequest{10.0, 20.0});
  FrameDecoder decoder;
  decoder.feed(encode_frame(MsgType::kQueryResize, payload));
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kQueryResize);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(ServeProtocolFrame, MultipleFramesInOneFeed) {
  const std::string a = encode_frame(MsgType::kHello, encode(HelloRequest{"a"}));
  const std::string b = encode_frame(MsgType::kStats, "");
  FrameDecoder decoder;
  decoder.feed(a + b);
  ASSERT_TRUE(decoder.next().has_value());
  const std::optional<Frame> second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kStats);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocolFrame, ByteAtATimeFeedingDecodes) {
  const std::string wire = valid_frame();
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(std::string_view(wire).substr(i, 1));
    EXPECT_FALSE(decoder.next().has_value()) << "byte " << i;
  }
  decoder.feed(std::string_view(wire).substr(wire.size() - 1, 1));
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(ServeProtocolFrame, EveryPrefixTruncationNeedsMoreBytesNeverThrows) {
  const std::string wire = valid_frame();
  for (std::size_t n = 0; n < wire.size(); ++n) {
    FrameDecoder decoder;
    decoder.feed(std::string_view(wire).substr(0, n));
    std::optional<Frame> frame;
    EXPECT_NO_THROW(frame = decoder.next()) << "prefix length " << n;
    EXPECT_FALSE(frame.has_value()) << "prefix length " << n;
  }
}

TEST(ServeProtocolFrame, UndersizedLengthPrefixThrows) {
  std::string wire = valid_frame();
  // Length prefix below kMinFrameLen (little-endian u32 at offset 0).
  wire[0] = static_cast<char>(kMinFrameLen - 1);
  wire[1] = wire[2] = wire[3] = 0;
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(ServeProtocolFrame, OversizedLengthPrefixThrowsBeforeBuffering) {
  std::string prefix(4, '\0');
  prefix[3] = '\x7f';  // ~2 GiB claimed length, only 4 bytes fed
  FrameDecoder decoder;
  decoder.feed(prefix);
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(ServeProtocolFrame, BadMagicThrowsEagerly) {
  std::string wire = valid_frame();
  wire[4] = 'X';
  FrameDecoder decoder;
  // Feed only the length prefix + magic: rejection must not wait for the
  // rest of the frame.
  decoder.feed(std::string_view(wire).substr(0, 8));
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(ServeProtocolFrame, ByteSwappedEndianMarkerThrowsEagerly) {
  std::string wire = valid_frame();
  std::swap(wire[8], wire[9]);  // 0xFEFF -> 0xFFFE
  FrameDecoder decoder;
  decoder.feed(std::string_view(wire).substr(0, 10));
  try {
    (void)decoder.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("byte-swapped"), std::string::npos);
  }
}

TEST(ServeProtocolFrame, UnknownVersionThrowsEagerly) {
  std::string wire = valid_frame();
  wire[10] = '\x63';  // version 99
  FrameDecoder decoder;
  decoder.feed(std::string_view(wire).substr(0, 12));
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(ServeProtocolFrame, NonzeroReservedFieldThrows) {
  // Rebuild a frame whose body carries a nonzero reserved field, with a
  // correct checksum so only the reserved check can object.
  snapshot::ByteWriter body;
  body.u16(static_cast<std::uint16_t>(MsgType::kStats));
  body.u16(1);  // reserved must be zero
  const std::string body_bytes = std::move(body).take();
  snapshot::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(kHeaderBytes + body_bytes.size()));
  w.bytes(kFrameMagic);
  w.u16(snapshot::kEndianMarker);
  w.u16(kProtocolVersion);
  w.u64(snapshot::chunked_checksum(body_bytes,
                                   runtime::serial_executor()));
  w.bytes(body_bytes);
  FrameDecoder decoder;
  decoder.feed(std::move(w).take());
  EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(ServeProtocolFrame, EveryBodyBitFlipIsDetected) {
  const std::string wire = valid_frame();
  // Flipping any bit anywhere past the header must be caught by the body
  // checksum (bits in the header itself are caught by the header checks or
  // the checksum-comparison failing the other way).
  for (std::size_t byte = 4 + kHeaderBytes; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = wire;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      FrameDecoder decoder;
      decoder.feed(mutated);
      EXPECT_THROW((void)decoder.next(), ProtocolError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ServeProtocolFrame, ChecksumFieldBitFlipIsDetected) {
  const std::string wire = valid_frame();
  for (std::size_t byte = 12; byte < 20; ++byte) {
    std::string mutated = wire;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x40);
    FrameDecoder decoder;
    decoder.feed(mutated);
    EXPECT_THROW((void)decoder.next(), ProtocolError) << "byte " << byte;
  }
}

TEST(ServeProtocolFrame, UnknownMessageTypeFlowsThroughTheDecoder) {
  // Type 77 is not a MsgType we know; the decoder must still deliver it
  // (checksummed) so the dispatcher can answer kError.
  FrameDecoder decoder;
  decoder.feed(encode_frame(static_cast<MsgType>(77), "payload"));
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(static_cast<std::uint16_t>(frame->type), 77);
  EXPECT_EQ(frame->payload, "payload");
}

TEST(ServeProtocolFrame, OverlongEncodeIsRejected) {
  EXPECT_THROW(
      (void)encode_frame(MsgType::kError, std::string(kMaxFrameBytes, 'x')),
      ProtocolError);
}

TEST(ServeProtocolFrame, DecoderRecoversAfterReset) {
  FrameDecoder decoder;
  decoder.feed("garbage that is certainly not an LSRV frame!");
  EXPECT_THROW((void)decoder.next(), ProtocolError);
  decoder.reset();
  decoder.feed(valid_frame());
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(ServeProtocolFrame, RandomBytesFuzzNeverCrashes) {
  // Deterministic fuzz loop: random chunks of random lengths into a
  // decoder; every outcome must be a frame, a need-more-bytes, or a
  // ProtocolError (after which the decoder is reset, as a server session
  // would drop the connection). Run under ASan/UBSan in CI.
  stats::Pcg32 rng(20250808);
  FrameDecoder decoder;
  std::size_t frames = 0;
  std::size_t errors = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t len = 1 + rng.next_below(64);
    std::string chunk(len, '\0');
    for (char& c : chunk) {
      c = static_cast<char>(rng.next_below(256));
    }
    // Bias the stream toward plausible prefixes so the fuzz reaches the
    // deeper checks too, not just the length-prefix guard.
    if (rng.next_below(8) == 0) {
      chunk = valid_frame().substr(0, 1 + rng.next_below(24));
    }
    decoder.feed(chunk);
    try {
      while (decoder.next().has_value()) ++frames;
    } catch (const ProtocolError&) {
      ++errors;
      decoder.reset();
    }
  }
  // The garbage stream must have tripped the validator at least once; a
  // zero count would mean the fuzz never exercised anything.
  EXPECT_GT(errors, 0U);
  SUCCEED() << frames << " frame(s), " << errors << " error(s)";
}

}  // namespace
