// Unit and property tests for leodivide::stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "leodivide/stats/cdf.hpp"
#include "leodivide/stats/distributions.hpp"
#include "leodivide/stats/histogram.hpp"
#include "leodivide/stats/interpolate.hpp"
#include "leodivide/stats/percentile.hpp"
#include "leodivide/stats/rng.hpp"
#include "leodivide/stats/summary.hpp"

namespace leodivide::stats {
namespace {

// ---------------------------------------------------------------- RNG ----

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a(), b());
}

TEST(Pcg32, IsDeterministic) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, NextDoubleMeanIsHalf) {
  Pcg32 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng(3);
  for (std::uint32_t bound : {1U, 2U, 7U, 100U, 1000U}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Pcg32, NextBelowZeroBoundIsZero) {
  Pcg32 rng(3);
  EXPECT_EQ(rng.next_below(0), 0U);
}

TEST(Pcg32, NextBelowIsRoughlyUniform) {
  Pcg32 rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(MixSeed, DistinctEntitiesGetDistinctSeeds) {
  EXPECT_NE(mix_seed(1, 1), mix_seed(1, 2));
  EXPECT_NE(mix_seed(1, 1), mix_seed(2, 1));
  EXPECT_EQ(mix_seed(9, 9), mix_seed(9, 9));
}

// ------------------------------------------------------- interpolation ----

TEST(LerpClamped, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(lerp_clamped(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp_clamped(xs, ys, 1.5), 25.0);
}

TEST(LerpClamped, ClampsOutside) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{3.0, 4.0};
  EXPECT_DOUBLE_EQ(lerp_clamped(xs, ys, -5.0), 3.0);
  EXPECT_DOUBLE_EQ(lerp_clamped(xs, ys, 5.0), 4.0);
}

TEST(LerpClamped, RejectsEmptyAndMismatched) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> one{1.0};
  EXPECT_THROW(lerp_clamped({}, {}, 0.0), std::invalid_argument);
  EXPECT_THROW(lerp_clamped(xs, one, 0.0), std::invalid_argument);
}

TEST(PiecewiseQuantile, PassesThroughAnchors) {
  const PiecewiseQuantile q({{0.0, 1.0}, {0.5, 10.0}, {1.0, 100.0}});
  EXPECT_DOUBLE_EQ(q(0.0), 1.0);
  EXPECT_NEAR(q(0.5), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(q(1.0), 100.0);
}

TEST(PiecewiseQuantile, IsLogLinearBetweenAnchors) {
  const PiecewiseQuantile q({{0.0, 1.0}, {1.0, 100.0}});
  EXPECT_NEAR(q(0.5), 10.0, 1e-9);  // geometric midpoint
}

TEST(PiecewiseQuantile, IsMonotone) {
  const PiecewiseQuantile q(
      {{0.0, 1.0}, {0.36, 62.0}, {0.9, 552.0}, {0.99, 1437.0}, {1.0, 3400.0}});
  double prev = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double v = q(i / 1000.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(PiecewiseQuantile, CdfInvertsQuantile) {
  const PiecewiseQuantile q(
      {{0.0, 1.0}, {0.36, 62.0}, {0.9, 552.0}, {1.0, 3400.0}});
  for (double p : {0.1, 0.36, 0.5, 0.77, 0.95}) {
    EXPECT_NEAR(q.cdf(q(p)), p, 1e-9);
  }
}

TEST(PiecewiseQuantile, CdfClampsOutsideRange) {
  const PiecewiseQuantile q({{0.0, 5.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(q.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(q.cdf(50.0), 1.0);
}

TEST(PiecewiseQuantile, MeanOfConstantIsConstant) {
  // Log-linear between equal anchors is flat.
  const PiecewiseQuantile q({{0.0, 7.0}, {1.0, 7.0}});
  EXPECT_NEAR(q.mean(1000), 7.0, 1e-9);
}

TEST(PiecewiseQuantile, MeanMatchesClosedForm) {
  // For Q(p) = exp(ln(a) + p ln(b/a)), the mean is (b - a) / ln(b/a).
  const PiecewiseQuantile q({{0.0, 2.0}, {1.0, 32.0}});
  const double expected = (32.0 - 2.0) / std::log(16.0);
  EXPECT_NEAR(q.mean(), expected, expected * 1e-5);
}

TEST(PiecewiseQuantile, RejectsBadAnchors) {
  EXPECT_THROW(PiecewiseQuantile({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseQuantile({{0.0, 1.0}, {0.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseQuantile({{0.0, 2.0}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseQuantile({{-0.1, 1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseQuantile({{0.0, -1.0}, {1.0, 2.0}}),
               std::invalid_argument);
}

// -------------------------------------------------------- distributions ----

TEST(Distributions, UniformRespectsRange) {
  Pcg32 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = sample_uniform(rng, -3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Distributions, UniformRejectsInvertedRange) {
  Pcg32 rng(1);
  EXPECT_THROW(sample_uniform(rng, 2.0, 1.0), std::invalid_argument);
}

TEST(Distributions, NormalMomentsMatch) {
  Pcg32 rng(2);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(sample_normal(rng, 5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Distributions, LognormalMedianIsExpMu) {
  Pcg32 rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 100001; ++i) samples.push_back(sample_lognormal(rng, 1.0, 0.5));
  EXPECT_NEAR(percentile(samples, 50.0), std::exp(1.0), 0.05);
}

TEST(Distributions, ParetoRespectsScale) {
  Pcg32 rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sample_pareto(rng, 3.0, 2.0), 3.0);
  }
}

TEST(Distributions, ParetoRejectsBadParams) {
  Pcg32 rng(4);
  EXPECT_THROW(sample_pareto(rng, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_pareto(rng, 1.0, 0.0), std::invalid_argument);
}

TEST(Distributions, TruncatedParetoStaysBelowCap) {
  Pcg32 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double v = sample_truncated_pareto(rng, 1.0, 1.2, 50.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 50.0 + 1e-9);
  }
}

TEST(Distributions, TruncatedParetoRejectsCapBelowScale) {
  Pcg32 rng(5);
  EXPECT_THROW(sample_truncated_pareto(rng, 2.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Distributions, ExponentialMeanIsInverseRate) {
  Pcg32 rng(6);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(sample_exponential(rng, 4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.005);
}

TEST(Distributions, PoissonMeanMatches) {
  Pcg32 rng(7);
  for (double lambda : {0.5, 3.0, 30.0, 200.0}) {
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
      stats.add(static_cast<double>(sample_poisson(rng, lambda)));
    }
    EXPECT_NEAR(stats.mean(), lambda, std::max(0.05, lambda * 0.03));
  }
}

TEST(Distributions, PoissonZeroLambdaIsZero) {
  Pcg32 rng(7);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0U);
}

TEST(Distributions, QuantileSamplingMatchesDistribution) {
  Pcg32 rng(8);
  const PiecewiseQuantile q({{0.0, 1.0}, {0.9, 552.0}, {1.0, 3400.0}});
  std::vector<double> samples;
  for (int i = 0; i < 100001; ++i) samples.push_back(sample_quantile(rng, q));
  EXPECT_NEAR(percentile(samples, 90.0), 552.0, 25.0);
}

TEST(WeightedSampling, RespectsWeights) {
  Pcg32 rng(9);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[sample_weighted(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(WeightedSampling, RejectsDegenerateWeights) {
  Pcg32 rng(9);
  const std::vector<double> zeros{0.0, 0.0};
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(sample_weighted(rng, zeros), std::invalid_argument);
  EXPECT_THROW(sample_weighted(rng, negative), std::invalid_argument);
}

TEST(WeightedAlias, MatchesDirectSampler) {
  Pcg32 rng(10);
  const std::vector<double> weights{5.0, 1.0, 0.0, 4.0};
  const WeightedAlias alias(weights);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[alias(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.4, 0.01);
}

TEST(WeightedAlias, RejectsEmptyAndZero) {
  const std::vector<double> zeros{0.0};
  EXPECT_THROW(WeightedAlias{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW(WeightedAlias{zeros}, std::invalid_argument);
}

// ----------------------------------------------------------- percentile ----

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 37.0), 7.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, RejectsBadInputs) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
}

TEST(Percentile, BatchMatchesSingle) {
  std::vector<double> v(101);
  std::iota(v.begin(), v.end(), 0.0);
  const std::vector<double> ps{10.0, 50.0, 90.0, 99.0};
  const auto batch = percentiles(v, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]));
  }
}

// ------------------------------------------------------------ histogram ----

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(2.5);
  h.add(9.9);
  h.add(10.0);  // exactly hi -> last bin
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 1U);
  EXPECT_EQ(h.count(4), 2U);
  EXPECT_EQ(h.total(), 4U);
}

TEST(HistogramTest, TracksOverflowAndUnderflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-1.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.total(), 2U);
}

TEST(HistogramTest, BinEdgesAreConsistent) {
  Histogram h(0.0, 100.0, 10);
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_DOUBLE_EQ(h.bin_hi(b) - h.bin_lo(b), h.bin_width());
    if (b > 0) EXPECT_DOUBLE_EQ(h.bin_lo(b), h.bin_hi(b - 1));
  }
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, AsciiRenderHasOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

// ------------------------------------------------------------------ cdf ----

TEST(EmpiricalCdfTest, StepFunctionValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileIsInverse) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const EmpiricalCdf cdf(v);
  const auto curve = cdf.curve(20);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(EmpiricalCdfTest, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(WeightedCdfTest, WeightsDriveFractions) {
  const std::vector<double> values{10.0, 20.0};
  const std::vector<double> weights{3.0, 1.0};
  const WeightedCdf cdf(values, weights);
  EXPECT_DOUBLE_EQ(cdf(10.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(20.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.weight_at_most(15.0), 3.0);
}

TEST(WeightedCdfTest, QuantileRespectsWeights) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const std::vector<double> weights{1.0, 8.0, 1.0};
  const WeightedCdf cdf(values, weights);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
}

TEST(WeightedCdfTest, RejectsBadInputs) {
  const std::vector<double> v{1.0};
  const std::vector<double> wneg{-1.0};
  const std::vector<double> w2{1.0, 2.0};
  EXPECT_THROW(WeightedCdf(v, w2), std::invalid_argument);
  EXPECT_THROW(WeightedCdf(v, wneg), std::invalid_argument);
}

// --------------------------------------------------------------- summary ----

TEST(KahanSumTest, RecoversSmallAddends) {
  KahanSum sum;
  sum.add(1e16);
  for (int i = 0; i < 10000; ++i) sum.add(1.0);
  sum.add(-1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 10000.0);
}

TEST(KahanSumTest, KsumMatchesExactSum) {
  std::vector<double> v(1000, 0.1);
  EXPECT_NEAR(ksum(v), 100.0, 1e-10);
}

TEST(RunningStatsTest, MomentsAndExtremes) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SampleVarianceUsesBessel) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatsTest, FewSamplesHaveZeroVariance) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// ------------------------------------------------ property-style sweeps ----

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const PiecewiseQuantile q(
      {{0.0, 1.0}, {0.36, 62.0}, {0.9, 552.0}, {0.99, 1437.0}, {1.0, 3400.0}});
  const double p = GetParam();
  EXPECT_NEAR(q.cdf(q(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileRoundTrip,
                         ::testing::Values(0.01, 0.1, 0.25, 0.36, 0.5, 0.7,
                                           0.9, 0.95, 0.99, 0.999));

class AliasVsDirect : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AliasVsDirect, SameDistributionDifferentSeeds) {
  const std::vector<double> weights{2.0, 3.0, 5.0};
  const WeightedAlias alias(weights);
  Pcg32 rng(GetParam());
  std::vector<double> counts(3, 0.0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[alias(rng)] += 1.0;
  EXPECT_NEAR(counts[0] / n, 0.2, 0.015);
  EXPECT_NEAR(counts[1] / n, 0.3, 0.015);
  EXPECT_NEAR(counts[2] / n, 0.5, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasVsDirect,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace leodivide::stats

// Appended: concentration statistics (stats/lorenz.hpp).
#include "leodivide/stats/lorenz.hpp"

namespace leodivide::stats {
namespace {

TEST(Gini, UniformValuesAreZero) {
  const std::vector<double> v(100, 5.0);
  EXPECT_NEAR(gini(v), 0.0, 1e-12);
}

TEST(Gini, FullConcentrationApproachesOne) {
  std::vector<double> v(1000, 0.0);
  v[0] = 100.0;
  EXPECT_NEAR(gini(v), 1.0 - 1.0 / 1000.0, 1e-9);
}

TEST(Gini, KnownTwoPointValue) {
  // {1, 3}: G = (|1-3| + |3-1|) / (2 * n^2 * mean) = 4 / (2*4*2) = 0.25.
  const std::vector<double> v{1.0, 3.0};
  EXPECT_NEAR(gini(v), 0.25, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> v{2.0, 5.0, 9.0, 14.0};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(x * 1000.0);
  EXPECT_NEAR(gini(v), gini(scaled), 1e-12);
}

TEST(Gini, RejectsDegenerateInputs) {
  const std::vector<double> neg{1.0, -1.0};
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)gini(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)gini(neg), std::invalid_argument);
  EXPECT_THROW((void)gini(zeros), std::invalid_argument);
}

TEST(Lorenz, CurveEndpointsAndMonotonicity) {
  const std::vector<double> v{1.0, 2.0, 3.0, 10.0, 50.0};
  const auto curve = lorenz_curve(v, 51);
  EXPECT_EQ(curve.front().first, 0.0);
  EXPECT_EQ(curve.front().second, 0.0);
  EXPECT_EQ(curve.back().first, 1.0);
  EXPECT_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    // Lorenz curve lies on or below the diagonal.
    EXPECT_LE(curve[i].second, curve[i].first + 1e-12);
  }
}

TEST(Lorenz, UniformCurveIsDiagonal) {
  const std::vector<double> v(50, 2.0);
  for (const auto& [p, share] : lorenz_curve(v, 11)) {
    EXPECT_NEAR(share, p, 0.021);  // steps of 1/50
  }
}

TEST(TopShare, KnownValues) {
  const std::vector<double> v{1.0, 1.0, 1.0, 1.0, 6.0};
  EXPECT_NEAR(top_share(v, 0.2), 0.6, 1e-12);
  EXPECT_NEAR(top_share(v, 1.0), 1.0, 1e-12);
  EXPECT_THROW((void)top_share(v, 0.0), std::invalid_argument);
  EXPECT_THROW((void)top_share(v, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace leodivide::stats
