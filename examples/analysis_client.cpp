// Analysis client: scripted driver for the LSRV analysis service, with a
// twin "batch" mode that answers the same script offline.
//
//   socket mode:
//   $ ./analysis_client --connect HOST --port N --script FILE --out FILE
//                       [--shutdown]
//
//   batch mode (no server; plain library full recompute):
//   $ ./analysis_client --batch --script FILE --out FILE
//                       [--scale S] [--seed N] [--threads N]
//
// Both modes read the same script and write query answers through the same
// formatter, so for any delta/query sequence the two --out files must be
// byte-identical — CI diffs them (the golden-equivalence gate). Doubles are
// printed as %.17g plus their IEEE-754 bit pattern, so "identical" means
// bit-identical, not almost-equal.
//
// Script grammar (one command per line, '#' starts a comment):
//   add <lat> <lon> <count> [county_index]   new un(der)served locations
//   remove <lat> <lon> <count>               locations leave the set
//   upgrade <lat> <lon> <count>              locations upgraded (subsidy)
//   price <plan name...> <usd>               reprice a retail plan
//   income <county_index> <usd>              county median-income revision
//   threshold <x>                            affordability threshold for
//                                            later afford queries (0 = default)
//   resize <beamspread> <oversub_cap>        constellation sizing query
//   afford <plan name...>                    affordability query
//   served <beamspread> <oversub>            served-fraction query
//   stats                                    server counters (stderr only)

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/beamspread.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/delta.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/serve/client.hpp"
#include "leodivide/serve/session.hpp"

namespace {

using namespace leodivide;

constexpr const char* kUsage =
    "usage: analysis_client --connect HOST --port N --script FILE --out FILE"
    " [--shutdown]\n"
    "       analysis_client --batch --script FILE --out FILE [--scale S]"
    " [--seed N] [--threads N]\n";

/// Bit-exact double rendering: decimal for humans, bit pattern for diff.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g:0x%016llx", v,
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

struct ResizeAnswerLine {
  double beamspread = 0.0;
  double oversub_cap = 0.0;
  double full_satellites = 0.0;
  double full_binding_lat_deg = 0.0;
  std::uint32_t full_beams = 0;
  std::uint64_t full_cell_index = 0;
  double capped_satellites = 0.0;
  double capped_binding_lat_deg = 0.0;
  std::uint32_t capped_beams = 0;
  std::uint64_t capped_cell_index = 0;
};

void write_resize(std::ostream& out, const ResizeAnswerLine& a) {
  out << "resize " << fmt(a.beamspread) << ' ' << fmt(a.oversub_cap)
      << " full sat=" << fmt(a.full_satellites)
      << " lat=" << fmt(a.full_binding_lat_deg) << " beams=" << a.full_beams
      << " cell=" << a.full_cell_index
      << " capped sat=" << fmt(a.capped_satellites)
      << " lat=" << fmt(a.capped_binding_lat_deg)
      << " beams=" << a.capped_beams << " cell=" << a.capped_cell_index
      << '\n';
}

void write_afford(std::ostream& out, const std::string& plan,
                  double monthly_usd, double income_required_usd,
                  double locations_unable, double fraction_unable) {
  out << "afford " << plan << " monthly=" << fmt(monthly_usd)
      << " income=" << fmt(income_required_usd)
      << " unable=" << fmt(locations_unable)
      << " fraction=" << fmt(fraction_unable) << '\n';
}

void write_served(std::ostream& out, double beamspread, double oversub,
                  double cell_fraction, std::uint64_t served_cells,
                  std::uint64_t total_cells, double location_fraction,
                  std::uint64_t served_locations,
                  std::uint64_t total_locations) {
  out << "served " << fmt(beamspread) << ' ' << fmt(oversub)
      << " cells=" << fmt(cell_fraction) << '(' << served_cells << '/'
      << total_cells << ')' << " locations=" << fmt(location_fraction) << '('
      << served_locations << '/' << total_locations << ')' << '\n';
}

/// One parsed script command.
struct Command {
  std::string verb;
  std::vector<std::string> args;  ///< whitespace-split operands
  std::size_t line_no = 0;
};

std::vector<Command> parse_script(std::istream& in) {
  std::vector<Command> commands;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    Command cmd;
    cmd.line_no = line_no;
    if (!(tokens >> cmd.verb)) continue;  // blank / comment-only line
    std::string tok;
    while (tokens >> tok) cmd.args.push_back(tok);
    commands.push_back(std::move(cmd));
  }
  return commands;
}

[[noreturn]] void script_fail(const Command& cmd, const std::string& what) {
  throw std::runtime_error("script line " + std::to_string(cmd.line_no) +
                           " (" + cmd.verb + "): " + what);
}

/// Joins args[0..n) into the plan name (plan names contain spaces).
std::string join_plan_name(const Command& cmd, std::size_t n) {
  if (n == 0) script_fail(cmd, "missing plan name");
  std::string name = cmd.args[0];
  for (std::size_t i = 1; i < n; ++i) {
    name += ' ';
    name += cmd.args[i];
  }
  return name;
}

/// Parses a delta command (add/remove/upgrade/price/income) into a DeltaOp;
/// returns false if `cmd` is not a delta command.
bool parse_delta(const Command& cmd, demand::DeltaOp& op) {
  if (cmd.verb == "add" || cmd.verb == "remove" || cmd.verb == "upgrade") {
    if (cmd.args.size() < 3) script_fail(cmd, "need <lat> <lon> <count>");
    op.kind = cmd.verb == "add"      ? demand::DeltaKind::kAddLocations
              : cmd.verb == "remove" ? demand::DeltaKind::kRemoveLocations
                                     : demand::DeltaKind::kUpgradeLocations;
    op.position = {std::stod(cmd.args[0]), std::stod(cmd.args[1])};
    op.count = static_cast<std::uint32_t>(std::stoul(cmd.args[2]));
    op.county_index = cmd.args.size() > 3
                          ? static_cast<std::uint32_t>(std::stoul(cmd.args[3]))
                          : 0;
    return true;
  }
  if (cmd.verb == "price") {
    if (cmd.args.size() < 2) script_fail(cmd, "need <plan name...> <usd>");
    op.kind = demand::DeltaKind::kSetPlanPrice;
    op.plan_name = join_plan_name(cmd, cmd.args.size() - 1);
    op.value = std::stod(cmd.args.back());
    return true;
  }
  if (cmd.verb == "income") {
    if (cmd.args.size() != 2) script_fail(cmd, "need <county_index> <usd>");
    op.kind = demand::DeltaKind::kSetCountyIncome;
    op.county_index = static_cast<std::uint32_t>(std::stoul(cmd.args[0]));
    op.value = std::stod(cmd.args[1]);
    return true;
  }
  return false;
}

int run_socket_mode(const std::string& host, std::uint16_t port,
                    const std::vector<Command>& commands, std::ostream& out,
                    bool shutdown_at_end) {
  serve::Client client;
  client.connect(host, port);
  const auto hello = client.hello("analysis_client");
  std::cerr << "connected to " << hello.server << ": " << hello.cells
            << " cells, " << hello.counties << " counties, " << hello.regions
            << " regions" << (hello.paranoid ? " (paranoid)" : "") << '\n';

  double threshold = 0.0;  // 0 = server default
  for (const Command& cmd : commands) {
    demand::DeltaOp op;
    if (parse_delta(cmd, op)) {
      const auto reply = client.apply_delta({op});
      std::cerr << "applied " << cmd.verb << ": " << reply.dirty_regions
                << " dirty region(s), journal length "
                << reply.journal_length << '\n';
    } else if (cmd.verb == "threshold") {
      if (cmd.args.size() != 1) script_fail(cmd, "need <x>");
      threshold = std::stod(cmd.args[0]);
    } else if (cmd.verb == "resize") {
      if (cmd.args.size() != 2) {
        script_fail(cmd, "need <beamspread> <oversub_cap>");
      }
      const double bs = std::stod(cmd.args[0]);
      const double cap = std::stod(cmd.args[1]);
      const auto reply = client.query_resize(bs, cap);
      write_resize(out, {bs, cap, reply.full_satellites,
                         reply.full_binding_lat_deg, reply.full_beams,
                         reply.full_cell_index, reply.capped_satellites,
                         reply.capped_binding_lat_deg, reply.capped_beams,
                         reply.capped_cell_index});
    } else if (cmd.verb == "afford") {
      const std::string plan = join_plan_name(cmd, cmd.args.size());
      const auto reply = client.query_affordability(plan, threshold);
      write_afford(out, reply.plan_name, reply.monthly_usd,
                   reply.income_required_usd, reply.locations_unable,
                   reply.fraction_unable);
    } else if (cmd.verb == "served") {
      if (cmd.args.size() != 2) script_fail(cmd, "need <beamspread> <oversub>");
      const double bs = std::stod(cmd.args[0]);
      const double os = std::stod(cmd.args[1]);
      const auto reply = client.query_served_fraction(bs, os);
      write_served(out, bs, os, reply.cell_fraction, reply.served_cells,
                   reply.total_cells, reply.location_fraction,
                   reply.served_locations, reply.total_locations);
    } else if (cmd.verb == "stats") {
      const auto reply = client.stats();
      for (const auto& [name, value] : reply.counters) {
        std::cerr << name << '=' << value << '\n';
      }
    } else {
      script_fail(cmd, "unknown command");
    }
  }
  if (shutdown_at_end) {
    client.shutdown_server();
    std::cerr << "server acknowledged shutdown\n";
  }
  return 0;
}

int run_batch_mode(const demand::GeneratorConfig& gen_config,
                   const std::vector<Command>& commands, std::ostream& out) {
  demand::DemandProfile profile =
      demand::SyntheticGenerator{gen_config}.generate_profile();
  std::cerr << "batch baseline: " << profile.cell_count() << " cells, "
            << profile.counties().size() << " counties\n";

  const hex::HexGrid grid;
  demand::DeltaApplier applier(profile, grid, hex::kServiceCellResolution);
  serve::PlanTable plans;
  const core::SizingModel model{};
  double threshold = 0.0;

  for (const Command& cmd : commands) {
    demand::DeltaOp op;
    if (parse_delta(cmd, op)) {
      if (op.kind == demand::DeltaKind::kSetPlanPrice) {
        plans.set_price(op.plan_name, op.value);
      } else {
        (void)applier.apply(op);
      }
    } else if (cmd.verb == "threshold") {
      if (cmd.args.size() != 1) script_fail(cmd, "need <x>");
      threshold = std::stod(cmd.args[0]);
    } else if (cmd.verb == "resize") {
      if (cmd.args.size() != 2) {
        script_fail(cmd, "need <beamspread> <oversub_cap>");
      }
      const double bs = std::stod(cmd.args[0]);
      const double cap = std::stod(cmd.args[1]);
      const core::SizingResult full =
          core::size_full_service(profile, model, bs);
      const core::SizingResult capped =
          core::size_with_cap(profile, model, bs, cap);
      write_resize(out,
                   {bs, cap, full.satellites, full.binding_lat_deg,
                    full.beams_on_binding, full.binding_cell_index,
                    capped.satellites, capped.binding_lat_deg,
                    capped.beams_on_binding, capped.binding_cell_index});
    } else if (cmd.verb == "afford") {
      const std::string name = join_plan_name(cmd, cmd.args.size());
      const afford::ServicePlan& plan = plans.find(name);
      const double t =
          threshold > 0.0 ? threshold : afford::kAffordabilityThreshold;
      const afford::PlanAffordability a =
          afford::AffordabilityAnalyzer(profile).evaluate(plan, t);
      write_afford(out, a.plan.name, a.plan.monthly_usd,
                   a.income_required_usd, a.locations_unable,
                   a.fraction_unable);
    } else if (cmd.verb == "served") {
      if (cmd.args.size() != 2) script_fail(cmd, "need <beamspread> <oversub>");
      const double bs = std::stod(cmd.args[0]);
      const double os = std::stod(cmd.args[1]);
      // Same integer evidence the server reports: count cells at or under
      // the per-cell location limit, then form the fractions.
      const std::uint64_t total_cells = profile.cell_count();
      const std::uint64_t total_locations = profile.total_locations();
      std::uint64_t served_cells = 0;
      std::uint64_t served_locations = 0;
      if (total_cells != 0) {
        const std::uint32_t limit =
            core::max_locations_spread(model.capacity, bs, os);
        for (const auto& cell : profile.cells()) {
          if (cell.underserved <= limit) {
            ++served_cells;
            served_locations += cell.underserved;
          }
        }
      }
      const double cell_fraction =
          total_cells == 0 ? 1.0
                           : static_cast<double>(served_cells) /
                                 static_cast<double>(total_cells);
      const double location_fraction =
          total_locations == 0 ? 1.0
                               : static_cast<double>(served_locations) /
                                     static_cast<double>(total_locations);
      write_served(out, bs, os, cell_fraction, served_cells, total_cells,
                   location_fraction, served_locations, total_locations);
    } else if (cmd.verb == "stats") {
      std::cerr << "stats: not available in batch mode\n";
    } else {
      script_fail(cmd, "unknown command");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool batch = false;
  bool shutdown_at_end = false;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string script_path;
  std::string out_path;
  demand::GeneratorConfig gen_config{};
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--batch") {
        batch = true;
      } else if (arg == "--shutdown") {
        shutdown_at_end = true;
      } else if (arg == "--connect" && i + 1 < argc) {
        host = argv[++i];
      } else if (arg == "--port" && i + 1 < argc) {
        port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
      } else if (arg == "--script" && i + 1 < argc) {
        script_path = argv[++i];
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--scale" && i + 1 < argc) {
        gen_config.scale = std::stod(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        gen_config.seed = std::stoull(argv[++i]);
      } else if (arg == "--threads" && i + 1 < argc) {
        if (const auto n = runtime::parse_thread_count(argv[++i])) {
          runtime::set_global_threads(*n);
        } else {
          std::cerr << "invalid --threads value: " << argv[i] << '\n';
          return 2;
        }
      } else {
        std::cerr << "unknown or malformed flag: " << arg << '\n' << kUsage;
        return 2;
      }
    }
    if (script_path.empty() || out_path.empty() || (!batch && port == 0)) {
      std::cerr << kUsage;
      return 2;
    }

    std::ifstream script_in(script_path);
    if (!script_in) {
      std::cerr << "cannot open script: " << script_path << '\n';
      return 2;
    }
    const std::vector<Command> commands = parse_script(script_in);

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output: " << out_path << '\n';
      return 2;
    }
    return batch ? run_batch_mode(gen_config, commands, out)
                 : run_socket_mode(host, port, commands, out, shutdown_at_end);
  } catch (const std::exception& e) {
    std::cerr << "analysis_client: " << e.what() << '\n';
    return 1;
  }
}
