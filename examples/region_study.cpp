// Region study: the paper's stated future work — how do the capacity and
// affordability conclusions change for service regions with different
// demand geographies and income distributions? Three illustrative regions
// are compared with the same pipeline used for the US analysis.
//
//   $ ./region_study

#include <cmath>
#include <iostream>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/oversubscription.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/region.hpp"
#include "leodivide/io/table.hpp"
#include "leodivide/stats/lorenz.hpp"

int main() {
  using namespace leodivide;

  const demand::RegionSpec specs[] = {
      demand::dense_compact_region(),
      demand::sparse_expansive_region(),
      demand::temperate_mixed_region(),
  };

  io::TextTable table;
  table.set_header({"region", "locations", "cells", "peak cell",
                    "demand Gini", "peak oversub",
                    "sats @s=2,20:1", "unable to afford $120 @2%"});
  for (const auto& spec : specs) {
    const demand::RegionGenerator generator(spec);
    const demand::DemandProfile profile = generator.generate();
    const core::SatelliteCapacityModel capacity;
    const core::SizingModel sizing;

    const auto f1 = core::analyze_oversubscription(profile, capacity);
    const double sats =
        core::size_with_cap(profile, sizing, 2.0, 20.0).satellites;
    const afford::AffordabilityAnalyzer afford_analyzer(profile);
    const auto starlink =
        afford_analyzer.evaluate(afford::starlink_residential());
    const auto counts = profile.counts_as_doubles();

    table.add_row({spec.name,
                   io::fmt_count(static_cast<long long>(
                       profile.total_locations())),
                   io::fmt_count(static_cast<long long>(profile.cell_count())),
                   io::fmt_count(profile.peak_cell_count()),
                   io::fmt(stats::gini(counts), 2),
                   io::fmt(f1.peak_oversubscription, 1) + ":1",
                   io::fmt_count(std::llround(sats)),
                   io::fmt_pct(starlink.fraction_unable, 1)});
  }
  std::cout << "Cross-region comparison (same model, different geography "
               "and incomes):\n\n"
            << table.render() << '\n';

  std::cout
      << "Observations:\n"
      << "  * The dense compact region needs >50:1 oversubscription at its "
         "peak cells even though its total demand is modest — peak density, "
         "not totals, drives the constellation (P2).\n"
      << "  * The sparse low-latitude region has tame peak cells yet still "
         "demands a huge fleet: a 53-degree constellation is thinnest near "
         "the tropics, so every beam there costs more total satellites — "
         "the latitude effect behind the paper's Table 2.\n"
      << "  * Both low-income regions fail the affordability test almost "
         "completely at $120/month; capacity and affordability barriers "
         "are independent, and a constellation sized for one does not "
         "solve the other. ('Another stone for the jar', Section 6.)\n";
  return 0;
}
