// Coverage simulation: propagate a Walker shell over time and watch the
// greedy beam scheduler serve the national demand cells epoch by epoch.
//
//   $ ./coverage_sim [--engine=epoch|event] [--snapshot-dir DIR] [planes]
//                    [sats_per_plane] [minutes] [beamspread]
//
// Defaults: Starlink shell 1 (72 x 22 at 53 deg / 550 km), 10 minutes,
// beamspread 5, the fixed-epoch engine. `--engine=event` runs the
// deterministic rise/set event queue instead — byte-identical output,
// computed only at contact changes. With `--snapshot-dir DIR` (or
// LEODIVIDE_SNAPSHOT_DIR) the generated demand profile and the epoch
// trace are cached as LDSNAP blobs keyed by their exact inputs, so a
// rerun with the same shell and horizon skips both generation and
// propagation.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "leodivide/demand/generator.hpp"
#include "leodivide/event/engine.hpp"
#include "leodivide/io/table.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/orbit/footprint.hpp"
#include "leodivide/sim/handover.hpp"
#include "leodivide/sim/simulation.hpp"
#include "leodivide/snapshot/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace leodivide;

  std::vector<std::string> positional;
  sim::Engine engine = sim::Engine::kEpoch;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (snapshot::parse_cli_arg(argc, argv, i)) {
        // Snapshot cache flag; consumed.
      } else if (arg == "--engine=epoch") {
        engine = sim::Engine::kEpoch;
      } else if (arg == "--engine=event") {
        engine = sim::Engine::kEvent;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "unknown or malformed flag: " << arg
                  << "\nusage: coverage_sim [--engine=epoch|event] "
                     "[--snapshot-dir DIR] [planes] "
                     "[sats_per_plane] [minutes] [beamspread]\n";
        return 2;
      } else {
        positional.push_back(arg);
      }
    }
  } catch (const std::runtime_error& e) {
    // e.g. --snapshot-dir with no value.
    std::cerr << "unknown or malformed flag: " << e.what() << '\n';
    return 2;
  }

  sim::SimulationConfig config;
  config.engine = engine;
  config.shell.planes =
      positional.size() > 0
          ? static_cast<std::uint32_t>(std::atoi(positional[0].c_str()))
          : 72U;
  config.shell.sats_per_plane =
      positional.size() > 1
          ? static_cast<std::uint32_t>(std::atoi(positional[1].c_str()))
          : 22U;
  const double minutes =
      positional.size() > 2 ? std::atof(positional[2].c_str()) : 10.0;
  config.scheduler.beamspread =
      positional.size() > 3
          ? static_cast<std::uint32_t>(std::atoi(positional[3].c_str()))
          : 5U;
  config.duration_s = minutes * 60.0;
  config.step_s = 60.0;
  if (config.shell.planes == 0 || config.shell.sats_per_plane == 0 ||
      minutes <= 0.0 || config.scheduler.beamspread == 0) {
    std::cerr << "usage: coverage_sim [--engine=epoch|event] "
                 "[--snapshot-dir DIR] [planes] "
                 "[sats_per_plane] [minutes] [beamspread]\n";
    return 1;
  }

  std::cout << "shell: " << config.shell.to_string() << " ("
            << io::fmt_count(config.shell.total_sats()) << " satellites)\n"
            << "footprint radius at 25 deg mask: "
            << io::fmt(orbit::footprint_radius_km(config.shell.altitude_km,
                                                  25.0),
                       0)
            << " km\nbeamspread: " << config.scheduler.beamspread
            << ", scheduling horizon: " << minutes << " min\n\n"
            << "generating national demand profile...\n";

  snapshot::StageCache* cache = snapshot::global_cache();
  const demand::GeneratorConfig gen_config{};
  auto generate = [&gen_config] {
    return demand::SyntheticGenerator{gen_config}.generate_profile();
  };
  demand::DemandProfile profile;
  if (cache != nullptr) {
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("demand.profile");
    snapshot::mix(fp, gen_config);
    profile = cache->get_or_compute(
        "demand.profile", fp, generate,
        [](const demand::DemandProfile& p) { return snapshot::serialize(p); },
        [](std::string_view blob) {
          return snapshot::deserialize_profile(blob);
        });
  } else {
    profile = generate();
  }
  std::cout << "  " << profile.cell_count() << " demand cells, "
            << io::fmt_count(static_cast<long long>(
                   profile.total_locations()))
            << " un(der)served locations\n\n";

  std::cout << "engine: "
            << (config.engine == sim::Engine::kEvent ? "event (rise/set queue)"
                                                     : "epoch (fixed step)")
            << "\n\n";

  // Both engines produce byte-identical traces, so the cache fingerprint
  // deliberately excludes the engine choice: a blob computed by one engine
  // is a valid hit for the other.
  auto run_sim = [&config, &profile] {
    return event::run_simulation(config, profile,
                                 core::SatelliteCapacityModel(),
                                 runtime::global_executor());
  };
  std::vector<sim::EpochCoverage> trace;
  if (cache != nullptr) {
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("sim.epochs");
    snapshot::mix(fp, config);
    fp.mix(snapshot::serialize(profile));
    trace = cache->get_or_compute(
        "sim.epochs", fp, run_sim,
        [](const std::vector<sim::EpochCoverage>& t) {
          return snapshot::serialize(t);
        },
        [](std::string_view blob) { return snapshot::deserialize_epochs(blob); });
  } else {
    trace = run_sim();
  }

  // Handover churn between the first two epochs (satellites move ~450 km
  // per minute, forcing cells to switch serving satellites).
  {
    const core::SatelliteCapacityModel capacity;
    const auto cells = sim::BeamScheduler::cells_from_profile(
        profile, capacity, config.oversub_target);
    const sim::BeamScheduler scheduler(cells, config.scheduler);
    const auto orbits = orbit::make_constellation(config.shell);
    const auto r0 = scheduler.schedule(orbit::propagate_all(orbits, 0.0));
    const auto r1 =
        scheduler.schedule(orbit::propagate_all(orbits, config.step_s));
    const sim::HandoverStats churn =
        sim::compare_schedules(r0, r1, cells.size());
    std::cout << "handover churn over one step (" << config.step_s
              << " s): " << io::fmt_pct(churn.handover_rate(), 1) << " of "
              << churn.cells_tracked << " tracked cells switched satellites ("
              << churn.cells_dropped << " dropped, " << churn.cells_acquired
              << " acquired)\n\n";
  }

  io::TextTable table;
  table.set_header({"t (min)", "cells served", "cell coverage",
                    "location coverage", "sats serving US",
                    "mean beam util"});
  for (const auto& epoch : trace) {
    table.add_row({io::fmt(epoch.time_s / 60.0, 1),
                   io::fmt_count(static_cast<long long>(epoch.cells_served)),
                   io::fmt_pct(epoch.cell_coverage(), 1),
                   io::fmt_pct(epoch.location_coverage(), 1),
                   io::fmt_count(static_cast<long long>(
                       epoch.satellites_in_view)),
                   io::fmt_pct(epoch.mean_beam_utilization, 1)});
  }
  std::cout << table.render() << '\n';

  const sim::SimulationReport report = sim::summarize(trace);
  std::cout << "summary over " << report.epochs
            << " epochs: mean cell coverage "
            << io::fmt_pct(report.mean_cell_coverage, 1) << " (min "
            << io::fmt_pct(report.min_cell_coverage, 1) << ", max "
            << io::fmt_pct(report.max_cell_coverage, 1)
            << "), mean location coverage "
            << io::fmt_pct(report.mean_location_coverage, 1) << '\n';
  if (report.mean_cell_coverage < 0.999) {
    std::cout << "\nThe shell cannot keep a beam on every demand cell — the "
                 "paper's capacity argument (P1/P2) in action. Try more "
                 "planes/satellites or higher beamspread.\n";
  }
  return 0;
}
