// National analysis: the full paper pipeline with dataset persistence.
//
//   $ ./national_analysis [--threads N] [--graph] [--trace FILE]
//                         [--metrics[=FILE]] [--snapshot-dir DIR]
//                         [output_dir]
//
// Generates the calibrated national profile, saves it as CSV (cells +
// counties) so it can be inspected or replaced with a real FCC Broadband
// Data Collection extract, reloads it, runs the complete analysis, and
// writes a machine-readable JSON summary next to the CSVs. `--threads N`
// sizes the process-global executor (results are identical for every N).
// `--trace FILE` writes a Chrome trace-event JSON of the pipeline stages
// and `--metrics[=FILE]` dumps the metrics registry at exit (see
// README.md, "Observability"); LEODIVIDE_TRACE / LEODIVIDE_METRICS work
// too. `--snapshot-dir DIR` (or LEODIVIDE_SNAPSHOT_DIR) turns on the
// content-addressed stage cache: the generated profile and the analysis
// results are stored as LDSNAP blobs keyed by their exact inputs, so a
// rerun with unchanged inputs skips generation and sizing entirely while
// producing byte-identical outputs (see README.md, "Snapshots &
// incremental re-runs"). `--graph` runs the same pipeline through the
// cache-aware StageGraph instead of straight-line code: the stage DAG
// (generate -> CSV round-trip -> analysis) is scheduled by the task-graph
// runtime, root-stage cache loads are prefetched and stores run behind
// compute on the async I/O thread. Every output file is byte-identical
// either way (the CI snapshot-cache job diffs them). The run always ends
// with one machine-readable bench line carrying wall time, stage
// breakdown and snapshot hit/miss counts.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "leodivide/core/report.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/demand/geojson.hpp"
#include "leodivide/io/json.hpp"
#include "leodivide/obs/obs.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/snapshot/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace leodivide;
  namespace fs = std::filesystem;

  // Wall time feeds the reporting-only bench line; it never enters results.
  // leolint:allow(no-wallclock): reporting-only bench-line wall time
  const auto wall_start = std::chrono::steady_clock::now();

  obs::Options obs_options = obs::options_from_env();
  fs::path out_dir = "national_analysis_out";
  bool graph_mode = false;
  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      if (const auto n = runtime::parse_thread_count(argv[++i])) {
        runtime::set_global_threads(*n);
      } else {
        std::cerr << "invalid --threads value: " << argv[i] << '\n';
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (const auto n = runtime::parse_thread_count(arg.substr(10))) {
        runtime::set_global_threads(*n);
      } else {
        std::cerr << "invalid --threads value: " << arg.substr(10) << '\n';
        return 2;
      }
    } else if (arg == "--graph") {
      graph_mode = true;
    } else if (obs::parse_cli_arg(obs_options, argc, argv, i)) {
      // Observability flag; consumed.
    } else if (snapshot::parse_cli_arg(argc, argv, i)) {
      // Snapshot cache flag; consumed.
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown or malformed flag: " << arg
                << "\nusage: national_analysis [--threads N] [--graph]"
                   " [--trace FILE] [--metrics[=FILE]] [--snapshot-dir DIR]"
                   " [output_dir]\n";
      return 2;
    } else {
      out_dir = arg;
    }
  }
  } catch (const std::runtime_error& e) {
    // e.g. --snapshot-dir with no value.
    std::cerr << "unknown or malformed flag: " << e.what() << '\n';
    return 2;
  }
  obs::apply(obs_options);
  std::cout << "using " << runtime::global_executor().concurrency()
            << " thread(s)\n";
  fs::create_directories(out_dir);
  snapshot::StageCache* cache = snapshot::global_cache();
  if (cache != nullptr) {
    std::cout << "snapshot cache: " << cache->dir() << '\n';
  }

  const demand::GeneratorConfig gen_config{};
  auto generate = [&gen_config] {
    return demand::SyntheticGenerator{gen_config}.generate_profile();
  };
  demand::DemandProfile loaded;
  core::AnalysisResults results;

  if (graph_mode) {
    // Stage-graph mode: the same pipeline as the straight-line path below,
    // expressed as a cache-aware DAG. The analysis stage's cache key binds
    // to the generated-profile blob digest (the CSV round-trip between
    // them is deterministic), root loads are prefetched through the async
    // I/O thread and stores run behind compute; run() drains, so the cache
    // is fully populated before the bench line prints.
    std::cout << "[graph] generate -> csv round-trip -> analysis...\n\n";
    std::optional<snapshot::AsyncIo> io;
    if (cache != nullptr) io.emplace();
    snapshot::StageGraph graph(cache, io.has_value() ? &*io : nullptr);
    auto profile_stage = graph.add_stage(
        "demand.profile", {},
        [&gen_config](snapshot::Fingerprint& fp) {
          snapshot::mix(fp, gen_config);
        },
        generate,
        [](const demand::DemandProfile& p) { return snapshot::serialize(p); },
        [](std::string_view blob) {
          return snapshot::deserialize_profile(blob);
        });
    const runtime::TaskGraph::TaskId csv_task = graph.add_task(
        "example.csv_roundtrip",
        [&out_dir, &loaded, profile_stage] {
          const demand::DemandProfile& p = profile_stage.value();
          {
            std::ofstream cells(out_dir / "cells.csv");
            std::ofstream counties(out_dir / "counties.csv");
            p.save_csv(cells, counties);
          }
          std::ifstream cells_in(out_dir / "cells.csv");
          std::ifstream counties_in(out_dir / "counties.csv");
          loaded = demand::DemandProfile::load_csv(cells_in, counties_in);
        },
        {profile_stage.id()});
    auto analysis_stage = graph.add_stage(
        "core.analysis", {profile_stage},
        [](snapshot::Fingerprint& fp) {
          snapshot::mix(fp, core::SizingModel{});
          snapshot::mix(fp, core::AnalysisConfig{});
        },
        [&loaded] { return core::run_full_analysis(loaded); },
        [](const core::AnalysisResults& r) { return snapshot::serialize(r); },
        [](std::string_view blob) {
          return snapshot::deserialize_analysis(blob);
        },
        {csv_task});
    graph.run(runtime::global_executor());
    std::cout << "      wrote " << (out_dir / "cells.csv") << " ("
              << profile_stage.value().cell_count() << " cells) and "
              << (out_dir / "counties.csv") << " ("
              << profile_stage.value().counties().size() << " counties)\n";
    results = analysis_stage.value();
  } else {
  // 1. Generate (or restore) and persist the dataset.
  std::cout << "[1/4] generating calibrated national demand profile...\n";
  demand::DemandProfile profile;
  if (cache != nullptr) {
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("demand.profile");
    snapshot::mix(fp, gen_config);
    profile = cache->get_or_compute(
        "demand.profile", fp, generate,
        [](const demand::DemandProfile& p) { return snapshot::serialize(p); },
        [](std::string_view blob) {
          return snapshot::deserialize_profile(blob);
        });
  } else {
    profile = generate();
  }
  {
    std::ofstream cells(out_dir / "cells.csv");
    std::ofstream counties(out_dir / "counties.csv");
    profile.save_csv(cells, counties);
  }
  std::cout << "      wrote " << (out_dir / "cells.csv") << " ("
            << profile.cell_count() << " cells) and "
            << (out_dir / "counties.csv") << " ("
            << profile.counties().size() << " counties)\n";

  // 2. Reload (the same path a user with real BDC data would take).
  std::cout << "[2/4] reloading profile from CSV...\n";
  std::ifstream cells_in(out_dir / "cells.csv");
  std::ifstream counties_in(out_dir / "counties.csv");
  loaded = demand::DemandProfile::load_csv(cells_in, counties_in);

  // 3. Run (or restore) the complete analysis.
  std::cout << "[3/4] running the full analysis...\n\n";
  auto analyze = [&loaded] { return core::run_full_analysis(loaded); };
  if (cache != nullptr) {
    // The analysis output is a pure function of the (reloaded) profile
    // bytes plus the default model and sweep config, so all three form the
    // cache key.
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("core.analysis");
    snapshot::mix(fp, core::SizingModel{});
    snapshot::mix(fp, core::AnalysisConfig{});
    fp.mix(snapshot::serialize(loaded));
    results = cache->get_or_compute(
        "core.analysis", fp, analyze,
        [](const core::AnalysisResults& r) { return snapshot::serialize(r); },
        [](std::string_view blob) {
          return snapshot::deserialize_analysis(blob);
        });
  } else {
    results = analyze();
  }
  }
  std::cout << core::render_report(results) << "\n";

  // 4. Export machine-readable results.
  std::cout << "[4/4] writing JSON summary...\n";
  std::ofstream json_out(out_dir / "results.json");
  io::JsonWriter json(json_out);
  json.begin_object();
  json.value("total_locations",
             static_cast<long long>(loaded.total_locations()));
  json.value("peak_cell_locations",
             static_cast<long long>(loaded.peak_cell_count()));
  json.value("peak_oversubscription", results.f1.peak_oversubscription);
  json.value("locations_above_20to1",
             static_cast<long long>(results.f1.locations_above_cap));
  json.value("unservable_at_20to1",
             static_cast<long long>(results.f1.locations_unservable_at_cap));
  json.begin_array("table2");
  for (const auto& row : results.table2) {
    json.begin_object();
    json.value("beamspread", row.beamspread);
    json.value("satellites_full_service", row.satellites_full_service);
    json.value("satellites_capped_20to1", row.satellites_capped);
    json.end_object();
  }
  json.end_array();
  json.begin_array("affordability");
  for (const auto& p : results.fig4) {
    json.begin_object();
    json.value("plan", p.plan.name);
    json.value("monthly_usd", p.plan.monthly_usd);
    json.value("locations_unable", p.locations_unable);
    json.value("fraction_unable", p.fraction_unable);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_out << '\n';
  std::cout << "      wrote " << (out_dir / "results.json") << '\n';

  // Bonus: the densest cells as GeoJSON for any GIS viewer.
  {
    std::ofstream geo_out(out_dir / "dense_cells.geojson");
    demand::write_geojson(geo_out, loaded, hex::HexGrid(),
                          /*min_locations=*/1000);
    std::cout << "      wrote " << (out_dir / "dense_cells.geojson")
              << " (cells with >= 1000 un(der)served locations)\n";
  }

  // leolint:allow(no-wallclock): reporting-only bench-line wall time
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  std::string line = obs::bench_line_json(
      "national_analysis", runtime::global_executor().concurrency(), wall_ms);
  line.pop_back();  // strip '}' to splice in the snapshot counters
  line += ",\"graph\":";
  line += graph_mode ? '1' : '0';
  line += ",\"snapshot_hits\":";
  line += std::to_string(cache != nullptr ? cache->hits() : 0);
  line += ",\"snapshot_misses\":";
  line += std::to_string(cache != nullptr ? cache->misses() : 0);
  line += '}';
  std::cout << line << '\n';

  obs::finalize(obs_options);
  return 0;
}
