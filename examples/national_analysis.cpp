// National analysis: the full paper pipeline with dataset persistence.
//
//   $ ./national_analysis [--threads N] [--trace FILE] [--metrics[=FILE]]
//                         [output_dir]
//
// Generates the calibrated national profile, saves it as CSV (cells +
// counties) so it can be inspected or replaced with a real FCC Broadband
// Data Collection extract, reloads it, runs the complete analysis, and
// writes a machine-readable JSON summary next to the CSVs. `--threads N`
// sizes the process-global executor (results are identical for every N).
// `--trace FILE` writes a Chrome trace-event JSON of the pipeline stages
// and `--metrics[=FILE]` dumps the metrics registry at exit (see
// README.md, "Observability"); LEODIVIDE_TRACE / LEODIVIDE_METRICS work
// too.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "leodivide/core/report.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/demand/geojson.hpp"
#include "leodivide/io/json.hpp"
#include "leodivide/obs/obs.hpp"
#include "leodivide/runtime/executor.hpp"

int main(int argc, char** argv) {
  using namespace leodivide;
  namespace fs = std::filesystem;

  obs::Options obs_options = obs::options_from_env();
  fs::path out_dir = "national_analysis_out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      if (const auto n = runtime::parse_thread_count(argv[++i])) {
        runtime::set_global_threads(*n);
      } else {
        std::cerr << "invalid --threads value: " << argv[i] << '\n';
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (const auto n = runtime::parse_thread_count(arg.substr(10))) {
        runtime::set_global_threads(*n);
      } else {
        std::cerr << "invalid --threads value: " << arg.substr(10) << '\n';
        return 2;
      }
    } else if (obs::parse_cli_arg(obs_options, argc, argv, i)) {
      // Observability flag; consumed.
    } else {
      out_dir = arg;
    }
  }
  obs::apply(obs_options);
  std::cout << "using " << runtime::global_executor().concurrency()
            << " thread(s)\n";
  fs::create_directories(out_dir);

  // 1. Generate and persist the dataset.
  std::cout << "[1/4] generating calibrated national demand profile...\n";
  const demand::SyntheticGenerator generator{demand::GeneratorConfig{}};
  const demand::DemandProfile profile = generator.generate_profile();
  {
    std::ofstream cells(out_dir / "cells.csv");
    std::ofstream counties(out_dir / "counties.csv");
    profile.save_csv(cells, counties);
  }
  std::cout << "      wrote " << (out_dir / "cells.csv") << " ("
            << profile.cell_count() << " cells) and "
            << (out_dir / "counties.csv") << " ("
            << profile.counties().size() << " counties)\n";

  // 2. Reload (the same path a user with real BDC data would take).
  std::cout << "[2/4] reloading profile from CSV...\n";
  std::ifstream cells_in(out_dir / "cells.csv");
  std::ifstream counties_in(out_dir / "counties.csv");
  const demand::DemandProfile loaded =
      demand::DemandProfile::load_csv(cells_in, counties_in);

  // 3. Run the complete analysis.
  std::cout << "[3/4] running the full analysis...\n\n";
  const core::AnalysisResults results = core::run_full_analysis(loaded);
  std::cout << core::render_report(results) << "\n";

  // 4. Export machine-readable results.
  std::cout << "[4/4] writing JSON summary...\n";
  std::ofstream json_out(out_dir / "results.json");
  io::JsonWriter json(json_out);
  json.begin_object();
  json.value("total_locations",
             static_cast<long long>(loaded.total_locations()));
  json.value("peak_cell_locations",
             static_cast<long long>(loaded.peak_cell_count()));
  json.value("peak_oversubscription", results.f1.peak_oversubscription);
  json.value("locations_above_20to1",
             static_cast<long long>(results.f1.locations_above_cap));
  json.value("unservable_at_20to1",
             static_cast<long long>(results.f1.locations_unservable_at_cap));
  json.begin_array("table2");
  for (const auto& row : results.table2) {
    json.begin_object();
    json.value("beamspread", row.beamspread);
    json.value("satellites_full_service", row.satellites_full_service);
    json.value("satellites_capped_20to1", row.satellites_capped);
    json.end_object();
  }
  json.end_array();
  json.begin_array("affordability");
  for (const auto& p : results.fig4) {
    json.begin_object();
    json.value("plan", p.plan.name);
    json.value("monthly_usd", p.plan.monthly_usd);
    json.value("locations_unable", p.locations_unable);
    json.value("fraction_unable", p.fraction_unable);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_out << '\n';
  std::cout << "      wrote " << (out_dir / "results.json") << '\n';

  // Bonus: the densest cells as GeoJSON for any GIS viewer.
  {
    std::ofstream geo_out(out_dir / "dense_cells.geojson");
    demand::write_geojson(geo_out, loaded, hex::HexGrid(),
                          /*min_locations=*/1000);
    std::cout << "      wrote " << (out_dir / "dense_cells.geojson")
              << " (cells with >= 1000 un(der)served locations)\n";
  }
  obs::finalize(obs_options);
  return 0;
}
