// Market comparison: the multi-operator market simulator across sharing
// regimes.
//
//   $ ./market_compare [--threads N] [--scale S] [--seed N] [--trace FILE]
//                      [--metrics[=FILE]] [--snapshot-dir DIR] [output_dir]
//
// Generates the calibrated national demand profile once, then runs the
// three-operator market (Starlink, OneWeb, Kuiper — market::default_market)
// under each spectrum-sharing policy (exclusive, proportional, fairshare)
// and writes:
//
//   operators.csv   one row per (policy, operator): sized fleets, served
//                   fractions, $/location-year, affordability
//   fairness.csv    one row per policy: Jain index, unserved attribution
//   market.json     the same results as one machine-readable document
//   market_<policy>.ldsnap   the full MarketReport snapshot per policy
//                   (when --snapshot-dir names a cache, reports are also
//                   cached there keyed by their exact inputs)
//
// Results are byte-identical for every --threads value. `--scale S` shrinks
// the synthetic demand profile (1.0 = the paper's 4.67M locations) and
// `--seed N` reseeds it; both enter the generator config only, so two runs
// with equal flags produce identical files.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "leodivide/demand/generator.hpp"
#include "leodivide/io/csv.hpp"
#include "leodivide/io/json.hpp"
#include "leodivide/market/market.hpp"
#include "leodivide/obs/obs.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/snapshot/snapshot.hpp"

namespace {

constexpr const char* kUsage =
    "usage: market_compare [--threads N] [--scale S] [--seed N]"
    " [--trace FILE] [--metrics[=FILE]] [--snapshot-dir DIR] [output_dir]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace leodivide;
  namespace fs = std::filesystem;

  // Wall time feeds the reporting-only bench line; it never enters results.
  // leolint:allow(no-wallclock): reporting-only bench-line wall time
  const auto wall_start = std::chrono::steady_clock::now();

  obs::Options obs_options = obs::options_from_env();
  fs::path out_dir = "market_compare_out";
  demand::GeneratorConfig gen_config{};
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threads" && i + 1 < argc) {
        if (const auto n = runtime::parse_thread_count(argv[++i])) {
          runtime::set_global_threads(*n);
        } else {
          std::cerr << "invalid --threads value: " << argv[i] << '\n';
          return 2;
        }
      } else if (arg.rfind("--threads=", 0) == 0) {
        if (const auto n = runtime::parse_thread_count(arg.substr(10))) {
          runtime::set_global_threads(*n);
        } else {
          std::cerr << "invalid --threads value: " << arg.substr(10) << '\n';
          return 2;
        }
      } else if (arg == "--scale" && i + 1 < argc) {
        gen_config.scale = std::stod(argv[++i]);
      } else if (arg.rfind("--scale=", 0) == 0) {
        gen_config.scale = std::stod(arg.substr(8));
      } else if (arg == "--seed" && i + 1 < argc) {
        gen_config.seed = std::stoull(argv[++i]);
      } else if (arg.rfind("--seed=", 0) == 0) {
        gen_config.seed = std::stoull(arg.substr(7));
      } else if (obs::parse_cli_arg(obs_options, argc, argv, i)) {
        // Observability flag; consumed.
      } else if (snapshot::parse_cli_arg(argc, argv, i)) {
        // Snapshot cache flag; consumed.
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "unknown or malformed flag: " << arg << '\n' << kUsage;
        return 2;
      } else {
        out_dir = arg;
      }
    }
  } catch (const std::exception& e) {
    // e.g. --snapshot-dir with no value, or a non-numeric --scale/--seed.
    std::cerr << "unknown or malformed flag: " << e.what() << '\n' << kUsage;
    return 2;
  }
  obs::apply(obs_options);
  std::cout << "using " << runtime::global_executor().concurrency()
            << " thread(s)\n";
  fs::create_directories(out_dir);
  snapshot::StageCache* cache = snapshot::global_cache();
  if (cache != nullptr) {
    std::cout << "snapshot cache: " << cache->dir() << '\n';
  }

  // 1. One demand profile shared by every market run.
  std::cout << "[1/3] generating demand profile (scale "
            << gen_config.scale << ", seed " << gen_config.seed << ")...\n";
  const demand::DemandProfile profile =
      demand::SyntheticGenerator{gen_config}.generate_profile();
  std::cout << "      " << profile.cell_count() << " cells, "
            << profile.total_locations() << " locations\n";

  // 2. The three-operator market under each sharing regime.
  const std::vector<market::SplitPolicy> policies = {
      market::SplitPolicy::kExclusive, market::SplitPolicy::kProportional,
      market::SplitPolicy::kFairShare};
  std::vector<market::MarketReport> reports;
  for (const market::SplitPolicy policy : policies) {
    std::cout << "[2/3] running market under " << to_string(policy)
              << "...\n";
    market::MarketConfig config;
    config.operators = market::default_market();
    config.split.policy = policy;
    const market::MarketSimulation simulation(std::move(config));

    auto compute = [&simulation, &profile] { return simulation.run(profile); };
    market::MarketReport report;
    if (cache != nullptr) {
      snapshot::Fingerprint fp = snapshot::stage_fingerprint("market.report");
      snapshot::mix(fp, gen_config);
      snapshot::mix(fp, simulation.config());
      report = cache->get_or_compute(
          "market.report", fp, compute,
          [](const market::MarketReport& r) { return snapshot::serialize(r); },
          [](std::string_view blob) {
            return snapshot::deserialize_market_report(blob);
          });
    } else {
      report = compute();
    }
    std::cout << market::render_market_report(report) << '\n';

    const fs::path snap_path =
        out_dir / ("market_" + std::string(to_string(policy)) + ".ldsnap");
    std::ofstream snap_out(snap_path, std::ios::binary);
    snap_out << snapshot::serialize(report);
    reports.push_back(std::move(report));
  }

  // 3. Machine-readable exports.
  std::cout << "[3/3] writing CSV + JSON...\n";
  {
    std::ofstream ops_out(out_dir / "operators.csv");
    io::CsvWriter csv(ops_out);
    csv.write_row({"policy", "operator", "economic_share", "sats_full",
                   "sats_capped", "served_cell_fraction",
                   "served_location_fraction", "cost_per_location_year_usd",
                   "fraction_unable_to_afford"});
    for (const market::MarketReport& report : reports) {
      for (const market::OperatorOutcome& op : report.operators) {
        const double dollars =
            op.cost_curve.empty()
                ? 0.0
                : op.cost_curve.front().cost_per_location_year_usd;
        csv.write_row({std::string(to_string(report.policy)), op.name,
                       std::to_string(op.economic_share),
                       std::to_string(op.full.satellites),
                       std::to_string(op.capped.satellites),
                       std::to_string(op.served_cell_fraction),
                       std::to_string(op.served_location_fraction),
                       std::to_string(dollars),
                       std::to_string(op.affordability.fraction_unable)});
      }
    }
  }
  {
    std::ofstream fair_out(out_dir / "fairness.csv");
    io::CsvWriter csv(fair_out);
    csv.write_row({"policy", "jain_served_locations", "unserved_cells",
                   "unserved_locations", "capacity_limited_cells",
                   "split_limited_cells"});
    for (const market::MarketReport& report : reports) {
      const market::FairnessReport& f = report.fairness;
      csv.write_row({std::string(to_string(report.policy)),
                     std::to_string(f.jain_served_locations),
                     std::to_string(f.unserved_cells),
                     std::to_string(f.unserved_locations),
                     std::to_string(f.capacity_limited_cells),
                     std::to_string(f.split_limited_cells)});
    }
  }
  {
    std::ofstream json_out(out_dir / "market.json");
    io::JsonWriter json(json_out);
    json.begin_object();
    json.begin_array("policies");
    for (const market::MarketReport& report : reports) {
      json.begin_object();
      json.value("policy", to_string(report.policy));
      json.value("jain_served_locations",
                 report.fairness.jain_served_locations);
      json.value("unserved_locations",
                 static_cast<long long>(report.fairness.unserved_locations));
      json.begin_array("operators");
      for (const market::OperatorOutcome& op : report.operators) {
        json.begin_object();
        json.value("name", op.name);
        json.value("economic_share", op.economic_share);
        json.value("satellites_full_service", op.full.satellites);
        json.value("satellites_capped", op.capped.satellites);
        json.value("served_location_fraction", op.served_location_fraction);
        json.value("fraction_unable_to_afford",
                   op.affordability.fraction_unable);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    json_out << '\n';
  }
  std::cout << "      wrote " << (out_dir / "operators.csv") << ", "
            << (out_dir / "fairness.csv") << " and "
            << (out_dir / "market.json") << '\n';

  // leolint:allow(no-wallclock): reporting-only bench-line wall time
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  std::cout << obs::bench_line_json("market_compare",
                                    runtime::global_executor().concurrency(),
                                    wall_ms)
            << '\n';

  obs::finalize(obs_options);
  return 0;
}
