// Analysis server: the always-on LSRV analysis service over a synthetic
// national baseline.
//
//   $ ./analysis_server [--port N] [--port-file FILE] [--workers N]
//                       [--scale S] [--seed N] [--paranoid] [--threads N]
//                       [--trace FILE] [--metrics[=FILE]] [--snapshot-dir DIR]
//
// Generates (or restores, with --snapshot-dir) the calibrated demand
// profile at the requested scale, loads it into the incremental engine and
// listens on loopback for LSRV clients (see analysis_client.cpp and
// README.md, "Analysis service"). `--port 0` (default) binds an ephemeral
// port; `--port-file FILE` writes the bound port so scripts can find it.
// `--workers N` (or LEODIVIDE_WORKERS) sizes the connection worker pool;
// `--paranoid` cross-checks every incremental answer against a full
// recompute. The process exits when a client sends a shutdown request.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "leodivide/demand/generator.hpp"
#include "leodivide/obs/obs.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/serve/server.hpp"
#include "leodivide/snapshot/snapshot.hpp"

namespace {

constexpr const char* kUsage =
    "usage: analysis_server [--port N] [--port-file FILE] [--workers N]\n"
    "                       [--scale S] [--seed N] [--paranoid] [--threads N]\n"
    "                       [--trace FILE] [--metrics[=FILE]]"
    " [--snapshot-dir DIR]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace leodivide;

  obs::Options obs_options = obs::options_from_env();
  demand::GeneratorConfig gen_config{};
  serve::ServiceConfig service_config{};
  serve::ServerConfig server_config{};
  server_config.workers = runtime::worker_count_from_env(2);
  std::string port_file;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--port" && i + 1 < argc) {
        server_config.port =
            static_cast<std::uint16_t>(std::stoul(argv[++i]));
      } else if (arg == "--port-file" && i + 1 < argc) {
        port_file = argv[++i];
      } else if (arg == "--scale" && i + 1 < argc) {
        gen_config.scale = std::stod(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        gen_config.seed = std::stoull(argv[++i]);
      } else if (arg == "--paranoid") {
        service_config.engine.paranoid = true;
      } else if (arg == "--threads" && i + 1 < argc) {
        if (const auto n = runtime::parse_thread_count(argv[++i])) {
          runtime::set_global_threads(*n);
        } else {
          std::cerr << "invalid --threads value: " << argv[i] << '\n';
          return 2;
        }
      } else if (runtime::parse_workers_arg(argc, argv, i,
                                            server_config.workers)) {
        // Worker-pool flag; consumed.
      } else if (obs::parse_cli_arg(obs_options, argc, argv, i)) {
        // Observability flag; consumed.
      } else if (snapshot::parse_cli_arg(argc, argv, i)) {
        // Snapshot cache flag; consumed.
      } else {
        std::cerr << "unknown or malformed flag: " << arg << '\n' << kUsage;
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bad flag: " << e.what() << '\n' << kUsage;
    return 2;
  }
  obs::apply(obs_options);
  snapshot::StageCache* cache = snapshot::global_cache();
  if (cache != nullptr) {
    std::cout << "snapshot cache: " << cache->dir() << '\n';
  }

  // Baseline profile: generated, or restored from the stage cache when the
  // exact same generator config was cached by a previous run.
  std::cout << "generating baseline profile (scale " << gen_config.scale
            << ", seed " << gen_config.seed << ")...\n";
  auto generate = [&gen_config] {
    return demand::SyntheticGenerator{gen_config}.generate_profile();
  };
  demand::DemandProfile baseline;
  if (cache != nullptr) {
    snapshot::Fingerprint fp = snapshot::stage_fingerprint("demand.profile");
    snapshot::mix(fp, gen_config);
    baseline = cache->get_or_compute(
        "demand.profile", fp, generate,
        [](const demand::DemandProfile& p) { return snapshot::serialize(p); },
        [](std::string_view blob) {
          return snapshot::deserialize_profile(blob);
        });
  } else {
    baseline = generate();
  }
  std::cout << "baseline: " << baseline.cell_count() << " cells, "
            << baseline.counties().size() << " counties\n";

  serve::ServiceState state(std::move(baseline), service_config, cache);
  serve::Server server(state, server_config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
  }
  std::cout << "listening on " << server_config.host << ":" << server.port()
            << " (" << server_config.workers << " worker(s)"
            << (service_config.engine.paranoid ? ", paranoid" : "") << ")\n"
            << std::flush;

  state.wait_for_shutdown();
  server.stop();

  const serve::EngineStats stats = state.engine_stats();
  std::cout << "shutdown: " << stats.deltas_applied << " delta(s), "
            << stats.region_recomputes << " region recompute(s), "
            << stats.partial_hits << " partial hit(s)\n";
  obs::finalize(obs_options);
  return 0;
}
