// Quickstart: generate the calibrated national demand profile and reproduce
// the paper's headline numbers in one call.
//
//   $ ./quickstart [scale]
//
// `scale` in (0, 1] shrinks the synthetic dataset (default 1.0 = the full
// 4.67M-location national profile).

#include <cstdlib>
#include <iostream>
#include <string>

#include "leodivide/core/report.hpp"
#include "leodivide/demand/generator.hpp"

int main(int argc, char** argv) {
  using namespace leodivide;

  // Positional args only: a stray --flag would otherwise parse as scale 0.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << argv[i]
                << "\nusage: quickstart [scale in (0,1]]\n";
      return 2;
    }
  }

  demand::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);
  if (config.scale <= 0.0 || config.scale > 1.0) {
    std::cerr << "usage: quickstart [scale in (0,1]]\n";
    return 1;
  }

  std::cout << "Generating calibrated synthetic demand profile (scale="
            << config.scale << ") ...\n";
  const demand::SyntheticGenerator generator(config);
  const demand::DemandProfile profile = generator.generate_profile();
  std::cout << "  cells: " << profile.cell_count()
            << ", un(der)served locations: " << profile.total_locations()
            << ", counties: " << profile.counties().size() << "\n\n";

  const auto results = core::run_full_analysis(profile);
  std::cout << core::render_report(results) << '\n';
  return 0;
}
