// Constellation planner: given a target service quality (max acceptable
// oversubscription) and a satellite budget, find the (beamspread,
// locations-left-unserved) operating points that fit the budget.
//
//   $ ./constellation_planner [satellite_budget] [oversub_cap]
//
// Defaults: 8000 satellites (roughly today's deployed fleet), 20:1 (the
// FCC's fixed-wireless benchmark).

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "leodivide/core/longtail.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/io/table.hpp"

int main(int argc, char** argv) {
  using namespace leodivide;

  // Positional args only: a stray --flag would otherwise parse as 0.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << argv[i]
                << "\nusage: constellation_planner [satellite_budget] "
                   "[oversub_cap]\n";
      return 2;
    }
  }

  const double budget = argc > 1 ? std::atof(argv[1]) : 8000.0;
  const double cap = argc > 2 ? std::atof(argv[2]) : 20.0;
  if (budget <= 0.0 || cap <= 0.0) {
    std::cerr << "usage: constellation_planner [satellite_budget] "
                 "[oversub_cap]\n";
    return 1;
  }

  std::cout << "Constellation planner: budget "
            << io::fmt_count(std::llround(budget))
            << " satellites, max oversubscription " << io::fmt(cap, 0)
            << ":1\n\ngenerating national demand profile...\n\n";
  const demand::DemandProfile profile =
      demand::SyntheticGenerator{demand::GeneratorConfig{}}
          .generate_profile();
  const core::SizingModel model;

  // For each beamspread: cost of full coverage at the cap, and what must be
  // left unserved to fit the budget (the Figure-3 curve at the budget).
  io::TextTable table;
  table.set_header({"beamspread", "sats for full service @cap",
                    "fits budget?", "min locations unserved within budget",
                    "per-cell capacity (Gbps)"});
  for (double s : {1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0}) {
    const double full = core::size_with_cap(profile, model, s, cap).satellites;
    const auto curve = core::longtail_curve(profile, model, s, cap);
    std::string min_unserved = "n/a (over budget at every step)";
    for (const auto& p : curve) {
      if (p.satellites <= budget) {
        min_unserved =
            io::fmt_count(static_cast<long long>(p.locations_unserved));
        break;
      }
    }
    table.add_row({io::fmt(s, 0), io::fmt_count(std::llround(full)),
                   full <= budget ? "yes" : "no", min_unserved,
                   io::fmt(model.capacity.cell_capacity_gbps() / s, 2)});
  }
  std::cout << table.render() << '\n';

  std::cout << "Reading the table: higher beamspread shrinks the fleet but "
               "divides per-cell capacity, pushing more cells over the "
            << io::fmt(cap, 0)
            << ":1 limit (Figure 2's tradeoff). The 'locations unserved' "
               "column is the Figure 3 curve evaluated at your budget.\n";
  return 0;
}
