// Affordability report: evaluate any plan price against the un(der)served
// income distribution, with and without the Lifeline subsidy, at a
// configurable affordability threshold.
//
//   $ ./affordability_report [monthly_usd] [threshold]
//
// Defaults: $120/month (Starlink Residential), 2% of monthly income (the
// A4AI / UN Broadband Commission "1 for 2" rule).

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/io/table.hpp"

int main(int argc, char** argv) {
  using namespace leodivide;

  // Positional args only: a stray --flag would otherwise parse as $0.00.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << argv[i]
                << "\nusage: affordability_report [monthly_usd] "
                   "[threshold]\n";
      return 2;
    }
  }

  const double monthly = argc > 1 ? std::atof(argv[1]) : 120.0;
  const double threshold = argc > 2 ? std::atof(argv[2]) : 0.02;
  if (monthly < 0.0 || threshold <= 0.0) {
    std::cerr << "usage: affordability_report [monthly_usd] [threshold]\n";
    return 1;
  }

  std::cout << "generating national demand profile...\n\n";
  const demand::DemandProfile profile =
      demand::SyntheticGenerator{demand::GeneratorConfig{}}
          .generate_profile();
  const afford::AffordabilityAnalyzer analyzer(profile);

  const afford::ServicePlan plan{"Custom plan", monthly, {100.0, 20.0}};
  const afford::ServicePlan subsidized{"Custom plan w/ Lifeline",
                                       afford::with_lifeline(monthly),
                                       {100.0, 20.0}};

  io::TextTable table;
  table.set_header({"Plan", "$/month", "Income needed",
                    "Locations unable", "Fraction"});
  for (const auto& p : {plan, subsidized}) {
    const auto r = analyzer.evaluate(p, threshold);
    table.add_row({p.name, io::fmt(p.monthly_usd, 2),
                   "$" + io::fmt_count(std::llround(r.income_required_usd)),
                   io::fmt_count(std::llround(r.locations_unable)),
                   io::fmt_pct(r.fraction_unable, 1)});
  }
  std::cout << "At a " << io::fmt_pct(threshold, 1)
            << "-of-monthly-income affordability rule:\n"
            << table.render() << '\n';

  // Price sensitivity: how cheap must the plan get?
  io::TextTable sweep;
  sweep.set_header({"$/month", "locations unable", "fraction"});
  for (double price : {20.0, 40.0, 50.0, 60.0, 80.0, 100.0, 110.75, 120.0,
                       150.0}) {
    const auto r = analyzer.evaluate(
        afford::ServicePlan{"sweep", price, {100.0, 20.0}}, threshold);
    sweep.add_row({io::fmt(price, 2),
                   io::fmt_count(std::llround(r.locations_unable)),
                   io::fmt_pct(r.fraction_unable, 2)});
  }
  std::cout << "Price sensitivity:\n" << sweep.render() << '\n';

  // Where does the price have to land for near-universal affordability?
  const double p999 = analyzer.income().income_quantile(0.001) * threshold /
                      12.0;
  std::cout << "For 99.9% of un(der)served locations to afford service at "
               "this rule, the monthly price must not exceed $"
            << io::fmt(p999, 2) << ".\n";
  return 0;
}
