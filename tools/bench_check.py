#!/usr/bin/env python3
"""Gate the sim.schedule bench harness output against BENCH_sim.json.

Usage: bench_check.py <harness-output-file> <baseline-json>

The harness (``micro_perf --sim-schedule``) prints one JSON line per case:

    {"bench":"sim.schedule","cells":N,"sats":N,"naive_ms":X,"indexed_ms":Y,"speedup":Z}

This script matches each baseline case by (cells, sats) and enforces the
host-independent gate ``speedup >= min_speedup``.  Absolute milliseconds are
compared against the recorded baseline informationally only (CI runners and
dev machines differ); the speedup ratio is what must hold.

Exits nonzero if any baseline case is missing from the output or fails the
speedup gate.
"""

import json
import sys


def parse_harness_lines(path):
    """Return {(cells, sats): record} for every sim.schedule JSON line."""
    results = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if rec.get("bench") != "sim.schedule":
                continue
            results[(rec["cells"], rec["sats"])] = rec
    return results


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    output_path, baseline_path = argv[1], argv[2]
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    min_speedup = float(baseline["min_speedup"])
    results = parse_harness_lines(output_path)
    if not results:
        print(f"FAIL: no sim.schedule JSON lines found in {output_path}")
        return 1

    failures = 0
    for case in baseline["cases"]:
        key = (case["cells"], case["sats"])
        rec = results.get(key)
        label = f"{key[0]} cells x {key[1]} sats"
        if rec is None:
            print(f"FAIL: {label}: missing from harness output")
            failures += 1
            continue

        speedup = float(rec["speedup"])
        ok = speedup >= min_speedup
        verdict = "ok" if ok else "FAIL"
        print(
            f"{verdict}: {label}: speedup {speedup:.2f}x "
            f"(gate >= {min_speedup:.1f}x, baseline {case['speedup']:.2f}x)"
        )
        drift = float(rec["indexed_ms"]) / float(case["indexed_ms"])
        print(
            f"  info: indexed {rec['indexed_ms']:.3f} ms vs baseline "
            f"{case['indexed_ms']:.3f} ms ({drift:.2f}x, informational); "
            f"naive {rec['naive_ms']:.3f} ms vs {case['naive_ms']:.3f} ms"
        )
        if not ok:
            failures += 1

    if failures:
        print(f"FAIL: {failures} case(s) below the {min_speedup:.1f}x gate")
        return 1
    print(f"ok: all {len(baseline['cases'])} case(s) meet the speedup gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
