#!/usr/bin/env python3
"""Gate micro_perf harness output against one or more JSON baselines.

Usage: bench_check.py <harness-output-file> <baseline-json> [<baseline-json>...]

Each harness mode prints one JSON line per case, tagged with its bench name:

    {"bench":"sim.schedule","cells":N,"sats":N,"naive_ms":X,"indexed_ms":Y,"speedup":Z}
    {"bench":"sim.event","cells":N,"sats":N,"epochs":N,"epoch_ms":X,"event_ms":Y,"speedup":Z}

A baseline file names its bench (``bench``), a file-level ``min_speedup``
default, and a list of ``cases``.  A case may carry its own ``min_speedup``,
which overrides the file-level default for that case alone — tighter gates
where the baseline has margin, looser ones where it is close.

Cases are matched to harness lines by every non-timing field (everything
except ``speedup``, ``median_speedup``, ``min_speedup`` and fields ending
in ``_ms``), so new bench kinds work without touching this script.
Absolute milliseconds are compared against the recorded baseline
informationally only (CI runners and dev machines differ); the best-of
speedup ratio is what must hold.  Harnesses may also report a
``median_speedup`` (median-of-runs rather than best-of) — it is printed as
a robustness diagnostic next to the gated best-of ratio, never gated
itself: best-of is the stable low-noise estimator, the median shows how
far a typical run sits from it.

Exits nonzero if any baseline case is missing from the output, fails its
speedup gate, or if a baseline is malformed (no ``bench``/``min_speedup``,
or an empty ``cases`` list — a baseline that gates nothing is a bug, not a
pass).
"""

import json
import sys

TIMING_KEYS = ("speedup", "median_speedup", "min_speedup")


def case_key(fields):
    """Host-independent identity of a case: every non-timing field."""
    return tuple(
        sorted(
            (k, v)
            for k, v in fields.items()
            if k not in TIMING_KEYS and not k.endswith("_ms") and k != "bench"
        )
    )


def parse_harness_lines(path):
    """Return {(bench, case_key): record} for every JSON line in the file."""
    results = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            bench = rec.get("bench")
            if bench is None or "speedup" not in rec:
                continue
            results[(bench, case_key(rec))] = rec
    return results


class BaselineError(Exception):
    """A baseline file that cannot gate anything (distinct from a miss)."""


def check_baseline(path, baseline, results):
    """Gate one baseline file's cases; returns (gate_failures, missing)."""
    for field in ("bench", "min_speedup", "cases"):
        if field not in baseline:
            raise BaselineError(f"{path}: baseline has no '{field}' field")
    bench = baseline["bench"]
    default_min = float(baseline["min_speedup"])
    if not baseline["cases"]:
        # An empty case list would "pass" while gating nothing.
        raise BaselineError(f"{path}: baseline '{bench}' declares no cases")
    if not any(b == bench for b, _ in results):
        print(
            f"FAIL: {path}: no harness lines for bench '{bench}' "
            "(bench did not run, or the name is wrong)"
        )
    failures = 0
    missing = 0
    for case in baseline["cases"]:
        key = case_key(case)
        rec = results.get((bench, key))
        label = bench + ": " + " ".join(f"{k}={v}" for k, v in key)
        min_speedup = float(case.get("min_speedup", default_min))
        if rec is None:
            print(f"FAIL: {label}: missing from harness output")
            missing += 1
            continue

        speedup = float(rec["speedup"])
        ok = speedup >= min_speedup
        verdict = "ok" if ok else "FAIL"
        source = "per-case" if "min_speedup" in case else "default"
        print(
            f"{verdict}: {label}: speedup {speedup:.2f}x "
            f"(gate >= {min_speedup:.1f}x {source}, "
            f"baseline {case['speedup']:.2f}x)"
        )
        if "median_speedup" in rec:
            median = float(rec["median_speedup"])
            note = ""
            if "median_speedup" in case:
                note = f", baseline {float(case['median_speedup']):.2f}x"
            print(
                f"  info: median_speedup {median:.2f}x vs gated best-of "
                f"{speedup:.2f}x{note} (informational)"
            )
        for field in sorted(case):
            if field.endswith("_ms") and field in rec:
                drift = float(rec[field]) / float(case[field])
                print(
                    f"  info: {field} {float(rec[field]):.3f} ms vs baseline "
                    f"{float(case[field]):.3f} ms ({drift:.2f}x, informational)"
                )
        if not ok:
            failures += 1
    return failures, missing


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    output_path, baseline_paths = argv[1], argv[2:]
    results = parse_harness_lines(output_path)
    if not results:
        print(f"FAIL: no bench JSON lines found in {output_path}")
        return 1

    failures = 0
    missing = 0
    checked = 0
    for baseline_path in baseline_paths:
        try:
            with open(baseline_path, encoding="utf-8") as f:
                baseline = json.load(f)
            if not isinstance(baseline, dict):
                raise BaselineError(f"{baseline_path}: baseline is not an object")
            case_failures, case_missing = check_baseline(
                baseline_path, baseline, results
            )
        except (OSError, json.JSONDecodeError, BaselineError) as err:
            print(f"FAIL: unusable baseline: {err}", file=sys.stderr)
            return 2
        failures += case_failures
        missing += case_missing
        checked += len(baseline["cases"])

    if failures or missing:
        print(
            f"FAIL: {failures} case(s) below their speedup gate, "
            f"{missing} case(s) missing from harness output"
        )
        return 1
    print(f"ok: all {checked} case(s) meet their speedup gates")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
