// ldsnap — inspect, verify and query LDSNAP snapshot files.
//
//   ldsnap inspect <file>            header + section table
//   ldsnap verify  <file>...         full validation (exit 0 clean, 1 bad)
//   ldsnap query   <file> <cell-id>  per-cell capacity / served-fraction
//
// `query` works on profile snapshots (artifact kind "profile") and answers
// in O(log n): the per-cell records are indexed once by cell id, then the
// requested cell is found by binary search. Cell ids use the same hex form
// the library writes to cells.csv.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "leodivide/core/capacity_model.hpp"
#include "leodivide/io/fileio.hpp"
#include "leodivide/snapshot/snapshot.hpp"

namespace {

using namespace leodivide;

void usage() {
  std::fputs(
      "usage: ldsnap <command> [args]\n"
      "\n"
      "  inspect <file>            print header and section table\n"
      "  verify <file>...          validate headers, bounds and checksums\n"
      "  query <file> <cell-id>    per-cell capacity and served fraction\n"
      "                            (profile snapshots; hex cell id as in\n"
      "                            cells.csv)\n"
      "\n"
      "Exit status: 0 ok, 1 invalid snapshot or cell not found, 2 usage.\n",
      stderr);
}

int cmd_inspect(const std::string& path) {
  const std::string file = io::read_text_file(path);
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::parse(file);
  std::printf(
      "%s: LDSNAP v%u, artifact kind: %s (%u), %zu section(s), %zu bytes\n",
      path.c_str(), reader.version(),
      std::string(to_string(reader.kind())).c_str(),
      static_cast<unsigned>(reader.kind()), reader.sections().size(),
      file.size());
  for (const auto& s : reader.sections()) {
    std::printf("  section %-12s %12zu bytes  checksum %016llx\n",
                s.name.c_str(), s.payload.size(),
                static_cast<unsigned long long>(s.checksum));
  }
  return 0;
}

// Full validation: container parse (header, bounds, checksums) plus the
// kind-specific deserializer, so semantic corruption (dangling county
// indices, unknown enum values) fails verify too.
void deep_verify(const std::string& file) {
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::parse(file);
  switch (reader.kind()) {
    case snapshot::ArtifactKind::kLocations:
      (void)snapshot::deserialize_dataset(file);
      break;
    case snapshot::ArtifactKind::kProfile:
      (void)snapshot::deserialize_profile(file);
      break;
    case snapshot::ArtifactKind::kAnalysis:
      (void)snapshot::deserialize_analysis(file);
      break;
    case snapshot::ArtifactKind::kEpochs:
      (void)snapshot::deserialize_epochs(file);
      break;
    case snapshot::ArtifactKind::kEventTrace:
      (void)snapshot::deserialize_event_trace(file);
      break;
    case snapshot::ArtifactKind::kDeltaJournal:
      (void)snapshot::deserialize_delta_journal(file);
      break;
    case snapshot::ArtifactKind::kServePartial:
      // Serve partials are engine-internal (serve/incremental.cpp owns the
      // section layout), so the container parse above is the whole check.
      break;
    case snapshot::ArtifactKind::kMarketReport:
      (void)snapshot::deserialize_market_report(file);
      break;
  }
}

int cmd_verify(const std::vector<std::string>& paths) {
  int bad = 0;
  for (const auto& path : paths) {
    try {
      const std::string file = io::read_text_file(path);
      deep_verify(file);
      std::printf("%s: OK\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), e.what());
      bad = 1;
    }
  }
  return bad;
}

int cmd_query(const std::string& path, const std::string& cell_hex) {
  char* end = nullptr;
  const std::uint64_t want_bits = std::strtoull(cell_hex.c_str(), &end, 16);
  if (end == cell_hex.c_str() || *end != '\0') {
    std::fprintf(stderr, "ldsnap query: not a hex cell id: '%s'\n",
                 cell_hex.c_str());
    return 2;
  }

  const std::string file = io::read_text_file(path);
  const demand::DemandProfile profile = snapshot::deserialize_profile(file);

  // Index once (cells are stored sorted by cell id, but sorting an index is
  // cheap insurance), then answer by binary search: O(log n) per query.
  std::vector<std::pair<std::uint64_t, std::size_t>> index;
  index.reserve(profile.cells().size());
  for (std::size_t i = 0; i < profile.cells().size(); ++i) {
    index.emplace_back(profile.cells()[i].cell.bits(), i);
  }
  std::sort(index.begin(), index.end());
  const auto it = std::lower_bound(
      index.begin(), index.end(),
      std::make_pair(want_bits, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == index.end() || it->first != want_bits) {
    std::fprintf(stderr, "%s: no cell %s in this snapshot (%zu cells)\n",
                 path.c_str(), cell_hex.c_str(), profile.cells().size());
    return 1;
  }

  const demand::CellDemand& cell = profile.cells()[it->second];
  const core::SatelliteCapacityModel model;
  const double capacity = model.cell_capacity_gbps();
  const double demand = model.cell_demand_gbps(cell.underserved);
  const std::uint32_t servable_20to1 = model.max_locations_at(20.0);
  const double served_fraction =
      cell.underserved == 0
          ? 1.0
          : std::min(1.0, static_cast<double>(servable_20to1) /
                              static_cast<double>(cell.underserved));
  const demand::County& county = profile.counties().at(cell.county_index);

  std::printf("cell %s\n", cell.cell.to_string().c_str());
  std::printf("  center:                 %.4f, %.4f\n", cell.center.lat_deg,
              cell.center.lon_deg);
  std::printf("  county:                 %s (median income $%.0f)\n",
              county.fips.c_str(), county.median_income_usd);
  std::printf("  underserved locations:  %u\n", cell.underserved);
  std::printf("  demand at 100 Mbps:     %.3f Gbps\n", demand);
  std::printf("  max cell capacity:      %.3f Gbps\n", capacity);
  std::printf("  required oversub:       %.2f:1\n",
              model.required_oversubscription(cell.underserved));
  std::printf("  servable at 20:1:       %u locations\n", servable_20to1);
  std::printf("  served fraction (20:1): %.4f\n", served_fraction);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "-h" || cmd == "--help") {
      usage();
      return 0;
    }
    if (cmd == "inspect" && argc == 3) {
      return cmd_inspect(argv[2]);
    }
    if (cmd == "verify" && argc >= 3) {
      return cmd_verify(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (cmd == "query" && argc == 4) {
      return cmd_query(argv[2], argv[3]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldsnap %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  usage();
  return 2;
}
