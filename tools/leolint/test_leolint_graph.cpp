// Phase-2 (whole-program) leolint tests: the graph fixture corpus, the
// seeded-mutation suites (delete a mixer line and R9 must fire, inject a
// back-edge include and R8 must fire, reintroduce a by-ref capture and
// R10 must fire), waiver parsing edge cases, manifest hygiene, and the
// DESIGN.md-vs-layers.txt consistency check.

#include "analyze.hpp"
#include "lint.hpp"
#include "project.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using leolint::build_project;
using leolint::build_project_from_paths;
using leolint::ExemptionManifest;
using leolint::Finding;
using leolint::Layers;
using leolint::parse_exemptions;
using leolint::parse_layers;
using leolint::ProjectModel;
using leolint::run_project_rules;
using leolint::SourceText;

std::string fixture(const std::string& name) {
  return std::string(LEOLINT_FIXTURES_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The graph fixture corpus as in-memory sources, so tests can mutate a
/// file and assert the corresponding rule fires.
std::vector<SourceText> graph_sources() {
  std::vector<SourceText> out;
  for (const std::string& path :
       leolint::enumerate_sources({fixture("graph/src")})) {
    out.push_back(SourceText{path, read_file(path)});
  }
  return out;
}

Layers graph_layers() {
  return parse_layers(read_file(fixture("graph/layers.txt")));
}

ExemptionManifest graph_exemptions() {
  const std::string path = fixture("graph/exemptions.txt");
  return parse_exemptions(path, read_file(path));
}

/// Replaces `from` with `to` in the source whose path ends in
/// `path_suffix`; fails the test if the file or needle is missing.
void mutate(std::vector<SourceText>& sources, const std::string& path_suffix,
            const std::string& from, const std::string& to) {
  for (SourceText& src : sources) {
    if (src.path.size() >= path_suffix.size() &&
        src.path.compare(src.path.size() - path_suffix.size(),
                         path_suffix.size(), path_suffix) == 0) {
      const std::size_t at = src.text.find(from);
      ASSERT_NE(at, std::string::npos)
          << "needle '" << from << "' not in " << src.path;
      src.text.replace(at, from.size(), to);
      return;
    }
  }
  FAIL() << "no source ends in " << path_suffix;
}

std::map<std::string, int> rule_counts(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[f.rule];
  return counts;
}

// ------------------------------------------------------------ baseline --

TEST(LeolintGraph, CleanCorpusHasNoFindings) {
  const ProjectModel model = build_project(graph_sources());
  const auto findings =
      run_project_rules(model, graph_layers(), graph_exemptions());
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : leolint::format(findings.front()));
}

TEST(LeolintGraph, DiskAndMemoryBuildsAgree) {
  const ProjectModel disk = build_project_from_paths({fixture("graph/src")});
  const ProjectModel mem = build_project(graph_sources());
  EXPECT_EQ(disk.file_module, mem.file_module);
  EXPECT_EQ(disk.includes.size(), mem.includes.size());
  EXPECT_EQ(disk.structs.size(), mem.structs.size());
  EXPECT_EQ(disk.mixers.size(), mem.mixers.size());
  EXPECT_EQ(disk.parallel_sites.size(), mem.parallel_sites.size());
}

TEST(LeolintGraph, ModelSeesTheCorpus) {
  const ProjectModel model = build_project(graph_sources());
  ASSERT_EQ(model.mixers.size(), 1U);
  EXPECT_EQ(model.mixers[0].qualified_type, "sim::MiniConfig");
  EXPECT_EQ(model.structs.count("sim::MiniConfig"), 1U);
  EXPECT_EQ(model.structs.count("sim::ShellSpec"), 1U);
  EXPECT_EQ(model.structs.count("geo::GeoPoint"), 1U);
  ASSERT_EQ(model.parallel_sites.size(), 1U);
  EXPECT_EQ(model.parallel_sites[0].callee, "parallel_for_each");
}

// ----------------------------------------------------- seeded mutations --

TEST(LeolintGraphMutation, DeletedMixerLineFiresFingerprintGap) {
  auto sources = graph_sources();
  mutate(sources, "snapshot/fp.cpp",
         "  fp.mix_u64(static_cast<unsigned long long>(config.step_s));\n",
         "");
  const auto findings = run_project_rules(build_project(std::move(sources)),
                                          graph_layers(), graph_exemptions());
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "fingerprint-gap");
  EXPECT_NE(findings[0].message.find("sim::MiniConfig::step_s"),
            std::string::npos);
}

TEST(LeolintGraphMutation, DeletedNestedMixLineFiresFingerprintGap) {
  auto sources = graph_sources();
  mutate(sources, "snapshot/fp.cpp",
         "  fp.mix_u64(static_cast<unsigned long long>(config.shell.planes));"
         "\n",
         "");
  const auto findings = run_project_rules(build_project(std::move(sources)),
                                          graph_layers(), graph_exemptions());
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "fingerprint-gap");
  EXPECT_NE(findings[0].message.find("sim::MiniConfig::shell.planes"),
            std::string::npos);
}

TEST(LeolintGraphMutation, InjectedBackEdgeFiresLayerViolationAndCycle) {
  auto sources = graph_sources();
  // geo (base) reaching up into sim (top) is both a layering violation
  // and, because sim already includes geo, a module cycle {geo, sim}.
  mutate(sources, "geo/point.hpp", "#pragma once\n",
         "#pragma once\n#include \"leodivide/sim/config.hpp\"\n");
  const auto findings = run_project_rules(build_project(std::move(sources)),
                                          graph_layers(), graph_exemptions());
  const auto counts = rule_counts(findings);
  EXPECT_EQ(counts.at("layer-violation"), 1);
  EXPECT_EQ(counts.at("layer-cycle"), 2);  // both edges of the cycle
}

TEST(LeolintGraphMutation, ByRefCaptureFiresParallelCapture) {
  auto sources = graph_sources();
  mutate(sources, "sim/run.cpp",
         "      // leolint:allow(parallel-capture): each task writes only "
         "its own out[i] slot\n      [&out, scale](std::size_t i) {",
         "      [&](std::size_t i) {");
  const auto findings = run_project_rules(build_project(std::move(sources)),
                                          graph_layers(), graph_exemptions());
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "parallel-capture");
  EXPECT_NE(findings[0].message.find("[&]"), std::string::npos);
}

TEST(LeolintGraphMutation, UnlayeredModuleFiresLayerUnknown) {
  auto sources = graph_sources();
  sources.push_back(SourceText{
      fixture("graph/src") + "/leodivide/mystery/widget.hpp",
      "#pragma once\n#include \"leodivide/geo/point.hpp\"\n"});
  const auto findings = run_project_rules(build_project(std::move(sources)),
                                          graph_layers(), graph_exemptions());
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "layer-unknown");
  EXPECT_NE(findings[0].message.find("mystery"), std::string::npos);
}

// ------------------------------------------------------- R10 waivering --

std::vector<Finding> with_run_cpp_lambda(const std::string& replacement) {
  auto sources = graph_sources();
  mutate(sources, "sim/run.cpp",
         "      // leolint:allow(parallel-capture): each task writes only "
         "its own out[i] slot\n      [&out, scale](std::size_t i) {",
         replacement);
  return run_project_rules(build_project(std::move(sources)), graph_layers(),
                           graph_exemptions());
}

TEST(LeolintGraphWaiver, WaiverOnWrongLineDoesNotApply) {
  // Two lines above the lambda: the annotation binds to the blank line
  // below it, not to the capture.
  const auto findings = with_run_cpp_lambda(
      "      // leolint:allow(parallel-capture): too far away\n\n"
      "      [&out, scale](std::size_t i) {");
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "parallel-capture");
}

TEST(LeolintGraphWaiver, EmptyJustificationDoesNotWaive) {
  const auto findings = with_run_cpp_lambda(
      "      // leolint:allow(parallel-capture):\n"
      "      [&out, scale](std::size_t i) {");
  const auto counts = rule_counts(findings);
  EXPECT_EQ(counts.at("parallel-capture"), 1);
}

TEST(LeolintGraphWaiver, UnknownRuleDoesNotWaive) {
  const auto findings = with_run_cpp_lambda(
      "      // leolint:allow(parallel-capture-typo): disjoint slots\n"
      "      [&out, scale](std::size_t i) {");
  const auto counts = rule_counts(findings);
  EXPECT_EQ(counts.at("parallel-capture"), 1);
}

TEST(LeolintGraphWaiver, MultipleRulesInOneAnnotationApply) {
  const auto findings = with_run_cpp_lambda(
      "      // leolint:allow(parallel-capture, unordered-iter): disjoint "
      "out[i] slots\n"
      "      [&out, scale](std::size_t i) {");
  EXPECT_TRUE(findings.empty());
}

TEST(LeolintGraphWaiver, SameLineWaiverApplies) {
  const auto findings = with_run_cpp_lambda(
      "      [&out, scale](std::size_t i) {  "
      "// leolint:allow(parallel-capture): disjoint out[i] slots");
  EXPECT_TRUE(findings.empty());
}

// Phase 1 reports the malformed annotations themselves; phase 2 only
// refuses to honor them. Check the phase-1 side of the contract too.
TEST(LeolintGraphWaiver, MalformedAnnotationsAreBadAnnotationFindings) {
  const std::string no_justification =
      "int f() {\n"
      "  // leolint:allow(parallel-capture):\n"
      "  return 0;\n"
      "}\n";
  const std::string unknown_rule =
      "int f() {\n"
      "  // leolint:allow(not-a-rule): because\n"
      "  return 0;\n"
      "}\n";
  for (const std::string& text : {no_justification, unknown_rule}) {
    const auto findings = leolint::lint_source("src/leodivide/x/f.cpp", text);
    ASSERT_EQ(findings.size(), 1U);
    EXPECT_EQ(findings[0].rule, "bad-annotation");
    EXPECT_EQ(findings[0].line, 2U);
  }
}

// ------------------------------------------------------------ manifests --

TEST(LeolintGraphManifest, StaleExemptionIsReported) {
  auto manifest = graph_exemptions();
  leolint::Exemption stale;
  stale.struct_qualified = "sim::MiniConfig";
  stale.field_path = "not_a_field";
  stale.justification = "points at nothing";
  stale.line = 99;
  manifest.entries.push_back(stale);
  const auto findings = run_project_rules(build_project(graph_sources()),
                                          graph_layers(), manifest);
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "stale-exemption");
  EXPECT_EQ(findings[0].line, 99U);
  EXPECT_EQ(findings[0].file, manifest.file);
}

TEST(LeolintGraphManifest, EntryWithoutJustificationIsBadExemption) {
  const auto manifest =
      parse_exemptions("x.txt", "sim::MiniConfig::debug_label\n");
  EXPECT_TRUE(manifest.entries.empty());
  ASSERT_EQ(manifest.errors.size(), 1U);
  const auto findings = run_project_rules(build_project(graph_sources()),
                                          graph_layers(), manifest);
  // debug_label loses its exemption, so the gap resurfaces alongside the
  // malformed manifest line.
  const auto counts = rule_counts(findings);
  EXPECT_EQ(counts.at("bad-exemption"), 1);
  EXPECT_EQ(counts.at("fingerprint-gap"), 1);
}

TEST(LeolintGraphManifest, MalformedKeyIsAnError) {
  const auto manifest = parse_exemptions("x.txt", "debug_label: why\n");
  EXPECT_TRUE(manifest.entries.empty());
  EXPECT_EQ(manifest.errors.size(), 1U);
}

TEST(LeolintGraphManifest, NestedFieldPathResolves) {
  // An exemption addressed into a nested struct resolves (not stale).
  auto manifest = graph_exemptions();
  leolint::Exemption nested;
  nested.struct_qualified = "sim::MiniConfig";
  nested.field_path = "shell.planes";
  nested.justification = "resolves through ShellSpec";
  nested.line = 50;
  manifest.entries.push_back(nested);
  const auto findings = run_project_rules(build_project(graph_sources()),
                                          graph_layers(), manifest);
  EXPECT_TRUE(findings.empty());
}

// --------------------------------------------------------- layers file --

TEST(LeolintGraphLayers, DuplicateModuleThrows) {
  EXPECT_THROW(parse_layers("layer a: geo\nlayer b: geo\n"),
               std::runtime_error);
}

TEST(LeolintGraphLayers, MalformedLineThrows) {
  EXPECT_THROW(parse_layers("tier base: geo\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("layer base geo\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("# only comments\n"), std::runtime_error);
}

TEST(LeolintGraphLayers, ParsesBottomUpOrder) {
  const Layers layers = parse_layers("layer a: m1\nlayer b: m2 m3\n");
  ASSERT_EQ(layers.names.size(), 2U);
  EXPECT_EQ(layers.module_layer.at("m1"), 0U);
  EXPECT_EQ(layers.module_layer.at("m2"), 1U);
  EXPECT_EQ(layers.module_layer.at("m3"), 1U);
}

// ----------------------------------------------------------- artifacts --

TEST(LeolintGraphArtifacts, DotIsDeterministicAndClustered) {
  const ProjectModel model = build_project(graph_sources());
  const Layers layers = graph_layers();
  const std::string a = leolint::to_dot(model, layers);
  const std::string b = leolint::to_dot(model, layers);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("digraph"), std::string::npos);
  EXPECT_NE(a.find("label = \"base\""), std::string::npos);
  EXPECT_NE(a.find("\"sim\" -> \"geo\""), std::string::npos);
  EXPECT_EQ(a.find("color = red"), std::string::npos);
}

TEST(LeolintGraphArtifacts, DotHighlightsBackEdges) {
  auto sources = graph_sources();
  mutate(sources, "geo/point.hpp", "#pragma once\n",
         "#pragma once\n#include \"leodivide/sim/config.hpp\"\n");
  const std::string dot =
      leolint::to_dot(build_project(std::move(sources)), graph_layers());
  EXPECT_NE(dot.find("\"geo\" -> \"sim\" [color = red"), std::string::npos);
}

TEST(LeolintGraphArtifacts, CoverageReportShowsExemptAndSummary) {
  const ProjectModel model = build_project(graph_sources());
  const std::string report =
      leolint::coverage_report(model, graph_exemptions());
  EXPECT_NE(report.find("sim::MiniConfig"), std::string::npos);
  EXPECT_NE(report.find("shell.planes"), std::string::npos);
  EXPECT_NE(report.find("exempt: presentation-only"), std::string::npos);
  EXPECT_NE(report.find("0 gaps"), std::string::npos);
}

// ---------------------------------------------- real tree + DESIGN sync --

TEST(LeolintGraphRealTree, LayersFileParsesAndCoversKnownModules) {
  const Layers layers =
      parse_layers(read_file(std::string(LEOLINT_TOOL_DIR) + "/layers.txt"));
  ASSERT_EQ(layers.names.size(), 4U);
  for (const char* mod : {"geo", "stats", "io", "runtime", "obs", "hex",
                          "demand", "orbit", "core", "afford", "spectrum",
                          "sim", "event", "snapshot", "serve"}) {
    EXPECT_EQ(layers.module_layer.count(mod), 1U) << mod;
  }
}

TEST(LeolintGraphRealTree, DesignTableMatchesLayersFile) {
  const Layers layers =
      parse_layers(read_file(std::string(LEOLINT_TOOL_DIR) + "/layers.txt"));
  // DESIGN.md's "Module layering" table rows: `| layer | `mod`, `mod` |`.
  const std::string design = read_file(LEOLINT_DESIGN_MD);
  const std::regex kRow(R"(\|\s*(\w+)\s*\|\s*(`[a-z`,\s]+`)\s*\|)");
  std::map<std::string, std::set<std::string>> design_layers;
  std::vector<std::string> design_order;
  for (auto it = std::sregex_iterator(design.begin(), design.end(), kRow);
       it != std::sregex_iterator(); ++it) {
    const std::string layer = (*it)[1].str();
    if (std::find(layers.names.begin(), layers.names.end(), layer) ==
        layers.names.end()) {
      continue;  // header or unrelated table row
    }
    design_order.push_back(layer);
    std::string mods = (*it)[2].str();
    for (char& c : mods) {
      if (c == ',' || c == '`') c = ' ';
    }
    std::istringstream stream(mods);
    std::string mod;
    while (stream >> mod) design_layers[layer].insert(mod);
  }
  ASSERT_EQ(design_order.size(), layers.names.size())
      << "DESIGN.md module-layering table must list every layer in "
         "layers.txt exactly once";
  EXPECT_EQ(design_order, layers.names) << "layer order must match";
  for (std::size_t i = 0; i < layers.names.size(); ++i) {
    std::set<std::string> expected;
    for (const auto& [mod, layer] : layers.module_layer) {
      if (layer == i) expected.insert(mod);
    }
    EXPECT_EQ(design_layers[layers.names[i]], expected)
        << "modules of layer " << layers.names[i];
  }
}

TEST(LeolintGraphRealTree, WholeTreeRunsClean) {
  // The same invariant `lint.graph` gates in CI: zero unwaived phase-2
  // findings over src/.
  const std::string src = std::string(LEOLINT_TOOL_DIR) + "/../../src";
  const ProjectModel model = build_project_from_paths({src});
  const Layers layers =
      parse_layers(read_file(std::string(LEOLINT_TOOL_DIR) + "/layers.txt"));
  const std::string manifest_path =
      std::string(LEOLINT_TOOL_DIR) + "/fingerprint_exemptions.txt";
  const auto manifest =
      parse_exemptions(manifest_path, read_file(manifest_path));
  const auto findings = run_project_rules(model, layers, manifest);
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : leolint::format(findings.front()));
  EXPECT_FALSE(model.mixers.empty());
  EXPECT_FALSE(model.parallel_sites.empty());
}

}  // namespace
