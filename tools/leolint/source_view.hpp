#pragma once
// Shared lexical layer for both leolint phases: the comment/string
// stripper that turns a file into per-line "code" text, the
// leolint:allow(...) annotation parser, and small path helpers. Phase 1
// (per-file rules, lint.cpp) and phase 2 (whole-program rules,
// project.cpp/analyze.cpp) must agree byte-for-byte on what counts as
// code and what counts as a waiver, so they share this one implementation.

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace leolint {

/// A file split into lines twice: `raw` is the text as written (where
/// annotations live, inside comments), `code` has comments, string/char
/// literals and raw strings blanked to spaces (columns preserved) so rule
/// regexes never fire on quoted decoys.
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

[[nodiscard]] FileView make_view(std::string_view text);

/// One parsed `leolint:allow(rule[, rule...]): justification` comment.
struct Annotation {
  std::set<std::string> rules;
  bool valid = false;       ///< has a non-empty justification
  bool whole_line = false;  ///< comment is the entire line (applies below)
};

/// Every rule id an annotation may name — phase 1 and phase 2 combined.
[[nodiscard]] const std::set<std::string>& known_rules();

/// Parses an annotation out of a raw line. Returns true if the marker is
/// present at all; `out.valid` distinguishes well-formed waivers from
/// malformed ones (whose defect is described in `error`).
bool parse_annotation(const std::string& raw, Annotation& out,
                      std::string& error);

/// Per-file waiver table: the parsed annotation (if any) of every line,
/// plus the `bad-annotation` findings for malformed ones, as (line, error)
/// pairs (1-based lines).
struct AnnotationTable {
  std::vector<Annotation> by_line;
  std::vector<std::pair<std::size_t, std::string>> errors;

  /// True if `rule` is waived at 0-based line `line_index` — by a
  /// same-line annotation or a whole-line annotation immediately above.
  [[nodiscard]] bool allows(std::size_t line_index,
                            const std::string& rule) const;
};

[[nodiscard]] AnnotationTable collect_annotations(
    const std::vector<std::string>& raw_lines);

/// True if `comp` appears as a whole path component of `path`.
[[nodiscard]] bool path_has_component(std::string_view path,
                                      std::string_view comp);

[[nodiscard]] bool is_header(std::string_view path);

[[nodiscard]] bool ident_char(char c);

}  // namespace leolint
