#pragma once
// leolint — the project's determinism linter. Scans C++ sources for
// constructs that break bit-reproducibility or the header hygiene the
// build relies on, and reports them as machine-checkable findings.
//
// Rules (stable ids; R# is the shorthand used in ISSUE/README tables):
//   R1 no-rand          rand()/srand()/std::random_device outside stats/
//   R2 no-wallclock     wall-clock reads (steady_clock::now() & friends)
//                       outside obs/ and bench/
//   R3 unordered-iter   iteration over std::unordered_{map,set} (range-for
//                       or .begin()/.cbegin()) — hash layout must never
//                       reach emitted or returned ordered data
//   R4 float-eq         floating-point ==/!= (literal operands, or
//                       operands declared double/float in the same file)
//   R5 pragma-once      headers must contain #pragma once
//   R6 using-namespace  `using namespace` in headers
//   R7 raw-cast         reinterpret_cast outside snapshot/ (the LDSNAP
//                       bounds-checked readers are the one sanctioned
//                       place for byte-level reinterpretation)
//
// Phase 2 (whole-program rules R8–R10: module layering, fingerprint
// coverage, parallel-capture safety) lives in project.hpp/analyze.hpp and
// runs over a ProjectModel built from many files at once.
//
// A finding can be waived with a same-line (or immediately preceding
// whole-line) annotation carrying a justification:
//   ... // leolint:allow(unordered-iter): count only, order never observed
// An annotation without a justification, or naming an unknown rule, is
// itself reported (rule id `bad-annotation`).
//
// The scanner is textual, not a real C++ front end: string/char literals,
// raw strings and comments are stripped before matching, so quoted decoys
// never fire, but type information is limited to what the file itself
// declares. The documented limitations: R3 cannot see through typedefs or
// functions returning unordered containers, and R4 only sees literal
// operands or identifiers declared double/float in the same file.

#include <string>
#include <string_view>
#include <vector>

namespace leolint {

/// One rule violation at a specific source line.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;      ///< stable rule id, e.g. "no-rand"
  std::string message;
};

/// Lints one file's contents. `path` drives path-based exemptions (a
/// `stats` path component waives R1; `obs` or `bench` components waive R2;
/// a `snapshot` component waives R7) and whether header-only rules (R5,
/// R6) apply.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view text);

/// Recursively lints every C++ source file (.cpp .cc .cxx .hpp .hh .h
/// .hxx) under each root (a root may also be a single file). Results are
/// sorted by (file, line, rule) so output is deterministic regardless of
/// directory enumeration order. Throws std::runtime_error for a root that
/// does not exist.
[[nodiscard]] std::vector<Finding> lint_paths(
    const std::vector<std::string>& roots);

/// The sorted, deduplicated list of C++ sources lint_paths would visit —
/// shared with phase 2 so both phases see the same file set. Throws
/// std::runtime_error for a root that does not exist.
[[nodiscard]] std::vector<std::string> enumerate_sources(
    const std::vector<std::string>& roots);

/// "file:line: rule-id message" — the format CI greps for.
[[nodiscard]] std::string format(const Finding& f);

}  // namespace leolint
