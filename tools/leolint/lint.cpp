#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <regex>
#include <set>
#include <stdexcept>

#include "leodivide/io/fileio.hpp"
#include "source_view.hpp"

namespace leolint {

namespace {

// --------------------------------------------------------------- helpers --

// The set of identifiers declared in this file with an unordered container
// type (variables, parameters, data members) — the working set for R3.
std::set<std::string> collect_unordered_names(const std::string& code) {
  std::set<std::string> names;
  static const std::regex kUnordered(
      R"(\bunordered_(?:multi)?(?:map|set)\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kUnordered);
       it != std::sregex_iterator(); ++it) {
    std::size_t i = static_cast<std::size_t>(it->position()) + it->length();
    while (i < code.size() && std::isspace(static_cast<unsigned char>(
                                  code[i])) != 0) {
      ++i;
    }
    if (i >= code.size() || code[i] != '<') continue;
    int depth = 0;
    for (; i < code.size(); ++i) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>' && --depth == 0) {
        ++i;
        break;
      }
    }
    // Skip reference/pointer qualifiers and whitespace before the name.
    while (i < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[i])) != 0 ||
            code[i] == '&' || code[i] == '*')) {
      ++i;
    }
    std::string name;
    while (i < code.size() && ident_char(code[i])) name.push_back(code[i++]);
    if (name.empty() || name == "const") continue;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(
                                  code[i])) != 0) {
      ++i;
    }
    // Only a declarator position counts — `unordered_map<K,V> x;`,
    // an initialised/braced declarator, or a parameter.
    if (i >= code.size() || code[i] == ';' || code[i] == '=' ||
        code[i] == '{' || code[i] == '(' || code[i] == ',' ||
        code[i] == ')') {
      names.insert(name);
    }
  }
  return names;
}

// Identifiers declared double/float in this file — R4's second heuristic.
std::set<std::string> collect_float_names(const std::string& code) {
  std::set<std::string> names;
  static const std::regex kFloatDecl(R"(\b(?:double|float)\s+(\w+))");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kFloatDecl);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

bool is_float_literal(std::string_view tok) {
  static const std::regex kFloat(
      R"(^[-+]?(\d+\.\d*|\.\d+|\d+\.|\d+[eE][-+]?\d+)([eE][-+]?\d+)?[fFlL]?$)");
  return std::regex_match(tok.begin(), tok.end(), kFloat);
}

// Last token (identifier, number, or member-access tail) ending at `end`.
std::string token_before(const std::string& s, std::size_t end) {
  std::size_t i = end;
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1])) != 0) {
    --i;
  }
  std::size_t stop = i;
  while (i > 0) {
    if (ident_char(s[i - 1]) || s[i - 1] == '.') {
      --i;
    } else if ((s[i - 1] == '-' || s[i - 1] == '+') && i > 1 &&
               (s[i - 2] == 'e' || s[i - 2] == 'E')) {
      --i;  // exponent sign inside a float literal, e.g. 1e-9
    } else {
      break;
    }
  }
  return s.substr(i, stop - i);
}

std::string token_after(const std::string& s, std::size_t begin) {
  std::size_t i = begin;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  std::size_t start = i;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
  while (i < s.size()) {
    if (ident_char(s[i]) || s[i] == '.') {
      ++i;
    } else if ((s[i] == '-' || s[i] == '+') && i > start &&
               (s[i - 1] == 'e' || s[i - 1] == 'E')) {
      ++i;  // exponent sign inside a float literal, e.g. 1e-9
    } else {
      break;
    }
  }
  return s.substr(start, i - start);
}

// Member-access tail: "b.offer.down_mbps" -> "down_mbps".
std::string_view tail_identifier(std::string_view tok) {
  const std::size_t dot = tok.rfind('.');
  return dot == std::string_view::npos ? tok : tok.substr(dot + 1);
}

}  // namespace

// ------------------------------------------------------------------ lint --

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view text) {
  const std::string file(path);
  const FileView view = make_view(text);
  const bool header = is_header(path);
  const bool exempt_rand = path_has_component(path, "stats");
  const bool exempt_clock =
      path_has_component(path, "obs") || path_has_component(path, "bench");
  const bool exempt_cast = path_has_component(path, "snapshot");

  // Raw findings before annotation filtering: (line, rule, message).
  std::vector<Finding> raw_findings;
  auto report = [&](std::size_t line, std::string rule, std::string msg) {
    raw_findings.push_back(
        Finding{file, line, std::move(rule), std::move(msg)});
  };

  std::string joined;
  for (const auto& l : view.code) {
    joined += l;
    joined += '\n';
  }

  const std::set<std::string> unordered_names =
      collect_unordered_names(joined);
  const std::set<std::string> float_names = collect_float_names(joined);

  // Annotations, and annotation syntax errors (reported unconditionally).
  const AnnotationTable annotations = collect_annotations(view.raw);
  std::vector<Finding> meta_findings;
  for (const auto& [line, error] : annotations.errors) {
    meta_findings.push_back(Finding{file, line, "bad-annotation", error});
  }

  static const std::regex kRand(
      R"(\b(?:std\s*::\s*)?(?:rand|srand)\s*\(|\brandom_device\b)");
  static const std::regex kClock(
      R"(\b(?:system_clock|steady_clock|high_resolution_clock|utc_clock|file_clock)\s*::\s*now\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))");
  static const std::regex kUsingNamespace(R"(^\s*using\s+namespace\b)");
  static const std::regex kRawCast(R"(\breinterpret_cast\b)");
  static const std::regex kRangeFor(R"(\bfor\s*\()");
  static const std::regex kBeginCall(R"(\b(\w+)\s*\.\s*c?begin\s*\()");

  bool saw_pragma_once = false;

  for (std::size_t li = 0; li < view.code.size(); ++li) {
    const std::string& code = view.code[li];
    const std::size_t line = li + 1;

    // Code view, not raw: "#pragma once" inside a comment must not count.
    if (code.find("#pragma once") != std::string::npos) {
      saw_pragma_once = true;
    }

    // R1 — randomness outside stats/.
    if (!exempt_rand && std::regex_search(code, kRand)) {
      report(line, "no-rand",
             "nondeterministic randomness source; use "
             "leodivide::stats RNG utilities (seeded, splittable) instead");
    }

    // R2 — wall-clock reads outside obs/ and bench/.
    if (!exempt_clock && std::regex_search(code, kClock)) {
      report(line, "no-wallclock",
             "wall-clock read in a deterministic path; timing belongs in "
             "obs/ spans or bench/ harnesses");
    }

    // R6 — using namespace in headers.
    if (header && std::regex_search(code, kUsingNamespace)) {
      report(line, "using-namespace",
             "'using namespace' in a header leaks into every includer");
    }

    // R7 — reinterpret_cast outside snapshot/'s checked reader helpers.
    if (!exempt_cast && std::regex_search(code, kRawCast)) {
      report(line, "raw-cast",
             "reinterpret_cast punning is UB on untrusted or misaligned "
             "bytes; use std::bit_cast or the snapshot/ bounds-checked "
             "readers");
    }

    // R3a — explicit iterator access on a known unordered container.
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kBeginCall);
         it != std::sregex_iterator(); ++it) {
      if (unordered_names.count((*it)[1].str()) != 0) {
        report(line, "unordered-iter",
               "iterator over unordered container '" + (*it)[1].str() +
                   "' — hash layout order can leak into output; sort "
                   "first or use an ordered container");
      }
    }

    // R3b — range-for whose range names an unordered container.
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kRangeFor);
         it != std::sregex_iterator(); ++it) {
      // Window: this line plus a few continuations, to find the header.
      std::string window = code.substr(
          static_cast<std::size_t>(it->position()) + it->length() - 1);
      for (std::size_t k = li + 1; k < view.code.size() && k < li + 6; ++k) {
        window += ' ';
        window += view.code[k];
      }
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      for (std::size_t i = 0; i < window.size(); ++i) {
        const char c = window[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          if (--depth == 0) {
            close = i;
            break;
          }
        }
        if (c == ';' && depth == 1) break;  // classic for-loop
        if (c == ':' && depth == 1) {
          const bool scope = (i > 0 && window[i - 1] == ':') ||
                             (i + 1 < window.size() && window[i + 1] == ':');
          if (!scope && colon == std::string::npos) colon = i;
        }
      }
      if (colon == std::string::npos || close == std::string::npos) continue;
      const std::string range = window.substr(colon + 1, close - colon - 1);
      for (std::size_t i = 0; i < range.size();) {
        if (!ident_char(range[i])) {
          ++i;
          continue;
        }
        std::size_t start = i;
        while (i < range.size() && ident_char(range[i])) ++i;
        if (unordered_names.count(range.substr(start, i - start)) != 0) {
          report(line, "unordered-iter",
                 "range-for over unordered container '" +
                     range.substr(start, i - start) +
                     "' — hash layout order can leak into output; sort "
                     "first or use an ordered container");
          break;
        }
      }
    }

    // R4 — floating-point ==/!=.
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
      const bool eq = code[i] == '=' && code[i + 1] == '=';
      const bool neq = code[i] == '!' && code[i + 1] == '=';
      if (!eq && !neq) continue;
      if (eq && i > 0 &&
          (code[i - 1] == '=' || code[i - 1] == '!' || code[i - 1] == '<' ||
           code[i - 1] == '>' || code[i - 1] == '+' || code[i - 1] == '-' ||
           code[i - 1] == '*' || code[i - 1] == '/' || code[i - 1] == '%' ||
           code[i - 1] == '&' || code[i - 1] == '|' || code[i - 1] == '^')) {
        continue;  // <=, >=, !=, op= — not an equality comparison
      }
      const std::string lhs = token_before(code, i);
      const std::string rhs = token_after(code, i + 2);
      // A pointer/bool sentinel on either side means this is not a
      // floating-point comparison even if the other operand's name is
      // also used as a double elsewhere in the file.
      auto is_non_float_sentinel = [](const std::string& tok) {
        return tok == "nullptr" || tok == "NULL" || tok == "true" ||
               tok == "false";
      };
      if (is_non_float_sentinel(lhs) || is_non_float_sentinel(rhs)) {
        continue;
      }
      const bool lhs_float =
          is_float_literal(lhs) ||
          float_names.count(std::string(tail_identifier(lhs))) != 0;
      const bool rhs_float =
          is_float_literal(rhs) ||
          float_names.count(std::string(tail_identifier(rhs))) != 0;
      if (lhs_float || rhs_float) {
        report(line, "float-eq",
               std::string("floating-point ") + (eq ? "==" : "!=") +
                   " comparison; use an epsilon or annotate an exact "
                   "sentinel check");
        i += 1;
      }
    }
  }

  // R5 — headers must carry #pragma once.
  if (header && !saw_pragma_once) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  std::vector<Finding> out = std::move(meta_findings);
  for (auto& f : raw_findings) {
    if (!annotations.allows(f.line - 1, f.rule)) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<std::string> enumerate_sources(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    for (std::string_view e :
         {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".hxx"}) {
      if (ext == e) return true;
    }
    return false;
  };
  for (const auto& root : roots) {
    const fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp.generic_string());
    } else if (fs::is_directory(rp)) {
      for (const auto& entry : fs::recursive_directory_iterator(rp)) {
        if (entry.is_regular_file() && want(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      throw std::runtime_error("leolint: no such file or directory: " + root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& roots) {
  std::vector<Finding> out;
  for (const auto& f : enumerate_sources(roots)) {
    const std::string text = leodivide::io::read_text_file(f);
    std::vector<Finding> found = lint_source(f, text);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + " " +
         f.message;
}

}  // namespace leolint
