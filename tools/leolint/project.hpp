#pragma once
// leolint phase 2 — the whole-program project model. Phase 1 judges one
// file at a time; the properties that keep the pipeline cache-correct at
// scale are cross-file: the module DAG must stay layered, every config
// field must reach its stage fingerprint, and no parallel lambda may
// mutate shared state by reference. This header models exactly the facts
// those rules need:
//
//   * the include graph over `leodivide/<module>/...` headers,
//   * a field inventory for every struct a fingerprint mixer consumes,
//   * the field paths each `mix(Fingerprint&, const T&)` body actually
//     touches,
//   * the capture list of every lambda handed to runtime::parallel_for /
//     parallel_for_each / map_reduce / run_tasks.
//
// The model is built from (path, text) pairs so tests can mutate sources
// in memory (delete a mixer line, inject a back-edge include) and assert
// the corresponding rule fires — the seeded-mutation suites in
// test_leolint_graph.cpp do exactly that.
//
// Like phase 1 this is a textual analyzer, not a C++ front end. The
// documented limitations: namespaces are assumed to mirror module
// directories (leodivide::sim lives in src/leodivide/sim/), struct
// parsing understands plain data structs (member functions are skipped,
// templates are not resolved), and lambdas are only attributed to a
// parallel call site when passed inline or through a named `auto var =
// [...]` in the same file.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "source_view.hpp"

namespace leolint {

/// One source file handed to the model builder.
struct SourceText {
  std::string path;
  std::string text;
};

/// One `#include "leodivide/<module>/..."` directive.
struct IncludeEdge {
  std::string file;
  std::size_t line = 0;          ///< 1-based
  std::string from_module;       ///< empty when the includer is outside
                                 ///< a leodivide/ module directory
  std::string to_module;
  std::string target;            ///< the quoted include path
};

/// One data member of an inventoried struct.
struct StructField {
  std::string name;
  std::string type;  ///< declarator type text, e.g. "orbit::WalkerShell"
  std::size_t line = 0;
};

/// One struct definition, keyed by "module::Name".
struct StructDef {
  std::string qualified;
  std::string file;
  std::size_t line = 0;
  std::vector<StructField> fields;
};

/// One `void mix(Fingerprint&, const T& p)` definition. `full_paths`
/// holds every dotted member path the body consumes whole: a leaf read
/// (`p.shell.planes` -> "shell.planes") or a method call on a prefix
/// (`p.capacity.plan()` -> "capacity" — the call consumes the member as a
/// whole). A field is *partially* referenced when it only appears as a
/// proper prefix of some full path.
struct MixerSite {
  std::string qualified_type;  ///< "module::Struct", leolint-normalized
  std::string param;
  std::string file;
  std::size_t line = 0;
  std::set<std::string> full_paths;
};

/// One capture of a lambda at a parallel call site.
struct Capture {
  enum class Kind {
    kDefaultRef,   ///< [&]
    kDefaultCopy,  ///< [=]
    kThis,         ///< this / *this
    kByRef,        ///< &name (including &name = init)
    kByValue,      ///< name / name = init
  };
  Kind kind = Kind::kByValue;
  std::string name;  ///< empty for defaults/this
};

/// One lambda handed to a parallel primitive. `line` anchors the lambda's
/// '[' (where a leolint:allow(parallel-capture) waiver belongs).
struct ParallelSite {
  std::string callee;  ///< parallel_for / parallel_for_each / map_reduce /
                       ///< run_tasks
  std::string file;
  std::size_t line = 0;
  std::vector<Capture> captures;
};

/// The assembled whole-program model.
struct ProjectModel {
  /// Per-file raw lines (for annotation/waiver lookups) keyed by path.
  std::map<std::string, AnnotationTable> annotations;
  /// Module of each file ("" when outside a leodivide module directory).
  std::map<std::string, std::string> file_module;
  std::vector<IncludeEdge> includes;
  std::map<std::string, StructDef> structs;  ///< key: "module::Name"
  std::vector<MixerSite> mixers;
  std::vector<ParallelSite> parallel_sites;
  /// Identifiers declared const/constexpr, per file — the R10 whitelist.
  std::map<std::string, std::set<std::string>> const_names;
};

/// Builds the model from in-memory sources (deterministic: inputs are
/// processed in sorted path order regardless of the order given).
[[nodiscard]] ProjectModel build_project(std::vector<SourceText> sources);

/// Convenience: enumerate + read every C++ source under `roots` (see
/// enumerate_sources) and build the model from disk.
[[nodiscard]] ProjectModel build_project_from_paths(
    const std::vector<std::string>& roots);

/// Module of a path: the component following the last "leodivide"
/// component ("" if the path has none, or "leodivide" is terminal).
[[nodiscard]] std::string module_of_path(std::string_view path);

}  // namespace leolint
