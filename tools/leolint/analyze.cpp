#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>

namespace leolint {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) lines.push_back(line);
  return lines;
}

// ----------------------------------------------------------- R9 plumbing --

/// Resolves a field's declarator type text to an inventoried struct.
/// Returns nullptr for templates, std:: types, and anything not in the
/// model — the analyzer treats those as opaque.
const StructDef* find_struct(const ProjectModel& model, std::string type,
                             const std::string& fallback_module) {
  std::string flat;
  for (char c : type) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) flat.push_back(c);
  }
  if (flat.empty() || flat.find('<') != std::string::npos) return nullptr;
  const std::string lp = "leodivide::";
  if (flat.compare(0, lp.size(), lp) == 0) flat = flat.substr(lp.size());
  // Drop leading cv-qualifier if the declarator carried one.
  const std::string cq = "const";
  if (flat.compare(0, cq.size(), cq) == 0 && flat.size() > cq.size()) {
    flat = flat.substr(cq.size());
  }
  if (flat.find("::") == std::string::npos) {
    flat = fallback_module + "::" + flat;
  }
  const auto it = model.structs.find(flat);
  return it == model.structs.end() ? nullptr : &it->second;
}

std::string module_of_qualified(const std::string& qualified) {
  const std::size_t at = qualified.find("::");
  return at == std::string::npos ? std::string() : qualified.substr(0, at);
}

enum class FieldState { kMixed, kOpaquePartial, kExempt, kGap };

struct FieldStatus {
  std::string path;  ///< dotted path from the mixed struct's root
  FieldState state = FieldState::kGap;
  const Exemption* exemption = nullptr;
};

/// Walks the field tree of `def` under `prefix` and classifies every leaf
/// against what the mixer body actually touches.
void classify_fields(const ProjectModel& model, const MixerSite& mixer,
                     const StructDef& def, const std::string& prefix,
                     const std::map<std::string, const Exemption*>& exempt,
                     std::set<std::string>& visiting,
                     std::vector<FieldStatus>& out) {
  const bool whole_object = mixer.full_paths.count("") != 0;
  for (const StructField& field : def.fields) {
    const std::string path =
        prefix.empty() ? field.name : prefix + "." + field.name;
    FieldStatus status;
    status.path = path;
    if (whole_object || mixer.full_paths.count(path) != 0) {
      status.state = FieldState::kMixed;
      out.push_back(std::move(status));
      continue;
    }
    const std::string deep = path + ".";
    const bool partial = std::any_of(
        mixer.full_paths.begin(), mixer.full_paths.end(),
        [&](const std::string& p) { return p.compare(0, deep.size(), deep) == 0; });
    if (partial) {
      const StructDef* sub =
          find_struct(model, field.type, module_of_qualified(def.qualified));
      if (sub != nullptr && visiting.count(sub->qualified) == 0) {
        // The mixer reaches into this member: audit the nested struct's
        // fields one by one (catches "WalkerShell grew a field but the
        // SimulationConfig mixer was never updated").
        visiting.insert(sub->qualified);
        classify_fields(model, mixer, *sub, path, exempt, visiting, out);
        visiting.erase(sub->qualified);
      } else {
        // Partially referenced but opaque (std:: type, template, or a
        // struct outside the scan) — trust the reference.
        status.state = FieldState::kOpaquePartial;
        out.push_back(std::move(status));
      }
      continue;
    }
    const auto ex = exempt.find(mixer.qualified_type + "::" + path);
    if (ex != exempt.end()) {
      status.state = FieldState::kExempt;
      status.exemption = ex->second;
    } else {
      status.state = FieldState::kGap;
    }
    out.push_back(std::move(status));
  }
}

std::vector<FieldStatus> mixer_field_statuses(
    const ProjectModel& model, const MixerSite& mixer,
    const ExemptionManifest& exemptions) {
  std::vector<FieldStatus> out;
  const auto it = model.structs.find(mixer.qualified_type);
  if (it == model.structs.end()) return out;
  std::map<std::string, const Exemption*> exempt;
  for (const Exemption& e : exemptions.entries) {
    exempt.emplace(e.struct_qualified + "::" + e.field_path, &e);
  }
  std::set<std::string> visiting{mixer.qualified_type};
  classify_fields(model, mixer, it->second, "", exempt, visiting, out);
  return out;
}

/// True if `entry` names a field (or nested field path) that exists in the
/// model's struct inventory — the liveness test behind stale-exemption.
bool exemption_resolves(const ProjectModel& model, const Exemption& entry) {
  const auto it = model.structs.find(entry.struct_qualified);
  if (it == model.structs.end()) return false;
  const StructDef* def = &it->second;
  std::string path = entry.field_path;
  while (true) {
    const std::size_t dot = path.find('.');
    const std::string head = dot == std::string::npos ? path
                                                      : path.substr(0, dot);
    const StructField* found = nullptr;
    for (const StructField& f : def->fields) {
      if (f.name == head) {
        found = &f;
        break;
      }
    }
    if (found == nullptr) return false;
    if (dot == std::string::npos) return true;
    def = find_struct(model, found->type,
                      module_of_qualified(def->qualified));
    if (def == nullptr) return false;
    path = path.substr(dot + 1);
  }
}

// ----------------------------------------------------------- R8 plumbing --

/// Strongly connected components of the module graph (iterative DFS over
/// a handful of modules; order is deterministic because inputs are maps).
std::vector<std::vector<std::string>> sccs(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> order;
  std::set<std::string> seen;
  std::function<void(const std::string&)> dfs1 = [&](const std::string& u) {
    seen.insert(u);
    const auto it = adj.find(u);
    if (it != adj.end()) {
      for (const std::string& v : it->second) {
        if (seen.count(v) == 0 && adj.count(v) != 0) dfs1(v);
      }
    }
    order.push_back(u);
  };
  for (const auto& [u, unused] : adj) {
    if (seen.count(u) == 0) dfs1(u);
  }

  std::map<std::string, std::set<std::string>> rev;
  for (const auto& [u, vs] : adj) {
    for (const std::string& v : vs) {
      if (adj.count(v) != 0) rev[v].insert(u);
    }
  }
  std::vector<std::vector<std::string>> components;
  std::set<std::string> assigned;
  std::function<void(const std::string&, std::vector<std::string>&)> dfs2 =
      [&](const std::string& u, std::vector<std::string>& comp) {
        assigned.insert(u);
        comp.push_back(u);
        const auto it = rev.find(u);
        if (it != rev.end()) {
          for (const std::string& v : it->second) {
            if (assigned.count(v) == 0) dfs2(v, comp);
          }
        }
      };
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (assigned.count(*it) == 0) {
      std::vector<std::string> comp;
      dfs2(*it, comp);
      std::sort(comp.begin(), comp.end());
      components.push_back(std::move(comp));
    }
  }
  return components;
}

bool waived(const ProjectModel& model, const std::string& file,
            std::size_t line, const std::string& rule) {
  const auto it = model.annotations.find(file);
  return it != model.annotations.end() && line > 0 &&
         it->second.allows(line - 1, rule);
}

}  // namespace

// ---------------------------------------------------------------- layers --

Layers parse_layers(const std::string& text) {
  Layers layers;
  const std::vector<std::string> lines = split_lines(text);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string line = lines[li];
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::string kw = "layer";
    if (line.compare(0, kw.size(), kw) != 0) {
      throw std::runtime_error("layers.txt:" + std::to_string(li + 1) +
                               ": expected 'layer <name>: <module>...'");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("layers.txt:" + std::to_string(li + 1) +
                               ": missing ':' after layer name");
    }
    const std::string name = trim(line.substr(kw.size(), colon - kw.size()));
    if (name.empty()) {
      throw std::runtime_error("layers.txt:" + std::to_string(li + 1) +
                               ": empty layer name");
    }
    const std::size_t index = layers.names.size();
    layers.names.push_back(name);
    std::istringstream mods(line.substr(colon + 1));
    std::string mod;
    while (mods >> mod) {
      if (!layers.module_layer.emplace(mod, index).second) {
        throw std::runtime_error("layers.txt:" + std::to_string(li + 1) +
                                 ": module '" + mod +
                                 "' already assigned to a layer");
      }
    }
  }
  if (layers.names.empty()) {
    throw std::runtime_error("layers.txt declares no layers");
  }
  return layers;
}

// ------------------------------------------------------------ exemptions --

ExemptionManifest parse_exemptions(const std::string& path,
                                   const std::string& text) {
  ExemptionManifest manifest;
  manifest.file = path;
  const std::vector<std::string> lines = split_lines(text);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string line = lines[li];
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    // The key/justification separator is the first ':' that is not part
    // of a '::' qualifier.
    std::size_t sep = std::string::npos;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] != ':') continue;
      const bool dbl = (i + 1 < line.size() && line[i + 1] == ':') ||
                       (i > 0 && line[i - 1] == ':');
      if (!dbl) {
        sep = i;
        break;
      }
    }
    if (sep == std::string::npos) {
      manifest.errors.emplace_back(
          li + 1,
          "exemption missing justification: write "
          "'ns::Struct::field: why this field is deliberately "
          "unfingerprinted'");
      continue;
    }
    const std::string key = trim(line.substr(0, sep));
    const std::string justification = trim(line.substr(sep + 1));
    if (justification.empty()) {
      manifest.errors.emplace_back(
          li + 1, "exemption has an empty justification for '" + key + "'");
      continue;
    }
    const std::size_t last = key.rfind("::");
    if (last == std::string::npos || last == 0 ||
        key.find("::") == last) {
      manifest.errors.emplace_back(
          li + 1, "malformed exemption key '" + key +
                      "': expected ns::Struct::field[.subfield]");
      continue;
    }
    Exemption entry;
    entry.struct_qualified = key.substr(0, last);
    entry.field_path = key.substr(last + 2);
    entry.justification = justification;
    entry.line = li + 1;
    if (entry.field_path.empty()) {
      manifest.errors.emplace_back(li + 1, "exemption key '" + key +
                                               "' names no field");
      continue;
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

// ------------------------------------------------------------ rule runs --

std::vector<Finding> run_project_rules(const ProjectModel& model,
                                       const Layers& layers,
                                       const ExemptionManifest& exemptions) {
  std::vector<Finding> findings;
  auto report = [&](std::string file, std::size_t line, std::string rule,
                    std::string msg) {
    findings.push_back(
        Finding{std::move(file), line, std::move(rule), std::move(msg)});
  };

  // ---- R8: module layering over the include graph. ----
  std::set<std::string> unknown_reported;
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, const IncludeEdge*>
      first_edge;
  for (const IncludeEdge& edge : model.includes) {
    if (edge.from_module.empty()) continue;  // outside the module tree
    const auto from = layers.module_layer.find(edge.from_module);
    const auto to = layers.module_layer.find(edge.to_module);
    if (from == layers.module_layer.end()) {
      if (unknown_reported.insert(edge.from_module).second) {
        report(edge.file, edge.line, "layer-unknown",
               "module '" + edge.from_module +
                   "' is not assigned to any layer in layers.txt — every "
                   "module must take a position in the architecture");
      }
      continue;
    }
    if (to == layers.module_layer.end()) {
      if (unknown_reported.insert(edge.to_module).second) {
        report(edge.file, edge.line, "layer-unknown",
               "included module '" + edge.to_module +
                   "' is not assigned to any layer in layers.txt");
      }
      continue;
    }
    if (edge.from_module == edge.to_module) continue;
    adj[edge.from_module].insert(edge.to_module);
    adj.emplace(edge.to_module, std::set<std::string>{});
    first_edge.emplace(std::make_pair(edge.from_module, edge.to_module),
                       &edge);
    if (from->second < to->second &&
        !waived(model, edge.file, edge.line, "layer-violation")) {
      report(edge.file, edge.line, "layer-violation",
             "layering back-edge: module '" + edge.from_module + "' (layer " +
                 layers.names[from->second] + ") must not include '" +
                 edge.target + "' from higher layer '" +
                 layers.names[to->second] + "'");
    }
  }
  for (const std::vector<std::string>& comp : sccs(adj)) {
    if (comp.size() < 2) continue;
    std::string members = comp[0];
    for (std::size_t i = 1; i < comp.size(); ++i) members += ", " + comp[i];
    const std::set<std::string> in_comp(comp.begin(), comp.end());
    for (const auto& [pair, edge] : first_edge) {
      if (in_comp.count(pair.first) != 0 && in_comp.count(pair.second) != 0) {
        report(edge->file, edge->line, "layer-cycle",
               "module include cycle {" + members + "}: this edge '" +
                   pair.first + "' -> '" + pair.second +
                   "' participates in the cycle");
      }
    }
  }

  // ---- R9: fingerprint coverage. ----
  for (const MixerSite& mixer : model.mixers) {
    for (const FieldStatus& status :
         mixer_field_statuses(model, mixer, exemptions)) {
      if (status.state != FieldState::kGap) continue;
      if (waived(model, mixer.file, mixer.line, "fingerprint-gap")) continue;
      report(mixer.file, mixer.line, "fingerprint-gap",
             "field '" + mixer.qualified_type + "::" + status.path +
                 "' is never mixed into the fingerprint — a config change "
                 "there would hit stale cache blobs; mix it or add a "
                 "justified entry to the exemption manifest");
    }
  }
  for (const Exemption& entry : exemptions.entries) {
    if (!exemption_resolves(model, entry)) {
      report(exemptions.file, entry.line, "stale-exemption",
             "exemption '" + entry.struct_qualified + "::" +
                 entry.field_path +
                 "' matches no field in the project — remove or fix it");
    }
  }
  for (const auto& [line, error] : exemptions.errors) {
    report(exemptions.file, line, "bad-exemption", error);
  }

  // ---- R10: parallel-capture safety. ----
  for (const ParallelSite& site : model.parallel_sites) {
    if (waived(model, site.file, site.line, "parallel-capture")) continue;
    const auto consts = model.const_names.find(site.file);
    for (const Capture& cap : site.captures) {
      if (cap.kind == Capture::Kind::kDefaultRef) {
        report(site.file, site.line, "parallel-capture",
               "default by-reference capture '[&]' in a lambda passed to '" +
                   site.callee +
                   "' — name every capture so shared mutable state is "
                   "auditable, or waive with a justification");
      } else if (cap.kind == Capture::Kind::kByRef &&
                 (consts == model.const_names.end() ||
                  consts->second.count(cap.name) == 0)) {
        report(site.file, site.line, "parallel-capture",
               "by-reference capture '&" + cap.name +
                   "' of a non-const variable in a lambda passed to '" +
                   site.callee +
                   "' — capture by value, declare it const, or waive with "
                   "a justification for why concurrent mutation is safe");
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

// ------------------------------------------------------------------ dot --

std::string to_dot(const ProjectModel& model, const Layers& layers) {
  std::set<std::pair<std::string, std::string>> edges;
  std::set<std::string> modules;
  for (const IncludeEdge& edge : model.includes) {
    if (edge.from_module.empty() || edge.from_module == edge.to_module) {
      continue;
    }
    edges.emplace(edge.from_module, edge.to_module);
    modules.insert(edge.from_module);
    modules.insert(edge.to_module);
  }
  for (const auto& [mod, unused] : layers.module_layer) modules.insert(mod);

  std::ostringstream out;
  out << "digraph leodivide_modules {\n"
      << "  rankdir = \"BT\";\n"
      << "  node [shape = box, fontname = \"monospace\"];\n";
  for (std::size_t i = 0; i < layers.names.size(); ++i) {
    out << "  subgraph cluster_" << i << " {\n"
        << "    label = \"" << layers.names[i] << "\";\n";
    for (const std::string& mod : modules) {
      const auto it = layers.module_layer.find(mod);
      if (it != layers.module_layer.end() && it->second == i) {
        out << "    \"" << mod << "\";\n";
      }
    }
    out << "  }\n";
  }
  bool any_unlayered = false;
  for (const std::string& mod : modules) {
    if (layers.module_layer.count(mod) == 0) {
      if (!any_unlayered) {
        out << "  subgraph cluster_unlayered {\n"
            << "    label = \"UNLAYERED\";\n    color = red;\n";
        any_unlayered = true;
      }
      out << "    \"" << mod << "\";\n";
    }
  }
  if (any_unlayered) out << "  }\n";
  for (const auto& [from, to] : edges) {
    const auto fi = layers.module_layer.find(from);
    const auto ti = layers.module_layer.find(to);
    const bool back = fi != layers.module_layer.end() &&
                      ti != layers.module_layer.end() &&
                      fi->second < ti->second;
    out << "  \"" << from << "\" -> \"" << to << "\"";
    if (back) out << " [color = red, penwidth = 2]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

// --------------------------------------------------------------- report --

std::string coverage_report(const ProjectModel& model,
                            const ExemptionManifest& exemptions) {
  std::ostringstream out;
  out << "# leolint fingerprint coverage (R9)\n";
  std::size_t total = 0;
  std::size_t mixed = 0;
  std::size_t exempt = 0;
  std::size_t gaps = 0;

  std::vector<const MixerSite*> mixers;
  for (const MixerSite& m : model.mixers) mixers.push_back(&m);
  std::sort(mixers.begin(), mixers.end(),
            [](const MixerSite* a, const MixerSite* b) {
              return std::tie(a->qualified_type, a->file, a->line) <
                     std::tie(b->qualified_type, b->file, b->line);
            });

  for (const MixerSite* mixer : mixers) {
    out << "\n" << mixer->qualified_type << " (mixer at " << mixer->file
        << ":" << mixer->line << ")\n";
    if (model.structs.count(mixer->qualified_type) == 0) {
      out << "  UNRESOLVED: struct definition not found in the scanned "
             "tree\n";
      continue;
    }
    for (const FieldStatus& status :
         mixer_field_statuses(model, *mixer, exemptions)) {
      ++total;
      out << "  " << status.path;
      for (std::size_t pad = status.path.size(); pad < 32; ++pad) out << ' ';
      switch (status.state) {
        case FieldState::kMixed:
          ++mixed;
          out << " mixed\n";
          break;
        case FieldState::kOpaquePartial:
          ++mixed;
          out << " mixed (partial, opaque member type)\n";
          break;
        case FieldState::kExempt:
          ++exempt;
          out << " exempt: " << status.exemption->justification << "\n";
          break;
        case FieldState::kGap:
          ++gaps;
          out << " GAP\n";
          break;
      }
    }
  }
  out << "\nsummary: " << mixers.size() << " mixers, " << total
      << " fields, " << mixed << " mixed, " << exempt << " exempt, " << gaps
      << " gaps\n";
  return out.str();
}

}  // namespace leolint
