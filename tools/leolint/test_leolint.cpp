// Fixture-driven tests for every leolint rule (R1–R6), the annotation
// machinery, and the CLI-visible output format. Each fixture under
// fixtures/ encodes one rule's positive and negative cases at known line
// numbers.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using leolint::Finding;
using leolint::lint_paths;
using leolint::lint_source;

std::string fixture(const std::string& name) {
  return std::string(LEOLINT_FIXTURES_DIR) + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_paths({fixture(name)});
}

// (line, rule) pairs, sorted — the shape every expectation checks.
std::vector<std::pair<std::size_t, std::string>> shape(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::size_t, std::string>> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

TEST(LeolintFixtures, R1NoRand) {
  const auto found = shape(lint_fixture("r1_no_rand.cpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {5, "no-rand"}, {6, "no-rand"}, {7, "no-rand"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, R2NoWallclock) {
  const auto found = shape(lint_fixture("r2_no_wallclock.cpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {6, "no-wallclock"}, {9, "no-wallclock"}, {11, "no-wallclock"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, R3UnorderedIter) {
  const auto found = shape(lint_fixture("r3_unordered_iter.cpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {8, "unordered-iter"}, {16, "unordered-iter"}, {21, "unordered-iter"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, R4FloatEq) {
  const auto found = shape(lint_fixture("r4_float_eq.cpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {3, "float-eq"}, {4, "float-eq"}, {5, "float-eq"}, {7, "float-eq"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, R5PragmaOnce) {
  const auto found = shape(lint_fixture("r5_missing_pragma.hpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {1, "pragma-once"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, R6UsingNamespace) {
  const auto found = shape(lint_fixture("r6_using_namespace.hpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {7, "using-namespace"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, R7RawCast) {
  const auto found = shape(lint_fixture("r7_raw_cast.cpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {5, "raw-cast"}, {8, "raw-cast"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, BadAnnotationsAreRejected) {
  const auto found = shape(lint_fixture("bad_annotation.cpp"));
  // An invalid annotation does not waive the underlying finding, and is
  // reported itself.
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {6, "bad-annotation"},
      {6, "unordered-iter"},
      {10, "bad-annotation"},
      {10, "float-eq"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintFixtures, CleanFileHasNoFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(LeolintFixtures, EventComparatorIdiomIsCovered) {
  // The event queue's total order (event.hpp event_less) must be inside
  // the determinism rules' example corpus: the strict-< idiom the engine
  // uses lints clean, and the naive ==-on-time tie-break it replaced is
  // diagnosed by R4.
  const auto found = shape(lint_fixture("event_comparator.cpp"));
  const std::vector<std::pair<std::size_t, std::string>> expected{
      {28, "float-eq"}};
  EXPECT_EQ(found, expected);
}

TEST(LeolintRules, PathExemptions) {
  const std::string rng = "double noise() { return rand() / 32768.0; }\n";
  EXPECT_TRUE(lint_source("src/leodivide/stats/rng.cpp", rng).empty());
  EXPECT_EQ(lint_source("src/leodivide/core/sizing.cpp", rng).size(), 1U);

  const std::string clock =
      "long t() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n";
  EXPECT_TRUE(lint_source("src/leodivide/obs/trace.cpp", clock).empty());
  EXPECT_TRUE(
      lint_source("bench/bench_common.hpp", "#pragma once\n" + clock).empty());
  EXPECT_EQ(lint_source("src/leodivide/sim/clock.cpp", clock).size(), 1U);

  const std::string cast =
      "const char* c(const void* p) {"
      " return reinterpret_cast<const char*>(p); }\n";
  EXPECT_TRUE(
      lint_source("src/leodivide/snapshot/format.cpp", cast).empty());
  EXPECT_EQ(lint_source("src/leodivide/io/csv.cpp", cast).size(), 1U);
}

// The acceptance-criteria scenario: seeding a rand() call into
// core/sizing.cpp must produce a nonzero-exit diagnostic with file:line.
TEST(LeolintRules, SeededRandInSizingIsDiagnosed) {
  const std::string seeded =
      "#include <cstdlib>\n"
      "namespace leodivide::core {\n"
      "int jitter() { return rand() % 3; }\n"
      "}  // namespace leodivide::core\n";
  const auto findings = lint_source("src/leodivide/core/sizing.cpp", seeded);
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "no-rand");
  EXPECT_EQ(findings[0].line, 3U);
  EXPECT_EQ(leolint::format(findings[0]).substr(0, 34),
            "src/leodivide/core/sizing.cpp:3: n");
}

TEST(LeolintRules, AnnotationOnPrecedingLineApplies) {
  const std::string text =
      "#include <unordered_set>\n"
      "int f() {\n"
      "  std::unordered_set<int> s;\n"
      "  int total = 0;\n"
      "  // leolint:allow(unordered-iter): sum is order-independent\n"
      "  for (int v : s) total += v;\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/leodivide/x.cpp", text).empty());
}

TEST(LeolintRules, WholeTreeScanIsSortedAndDeterministic) {
  const auto a = lint_paths({std::string(LEOLINT_FIXTURES_DIR)});
  const auto b = lint_paths({std::string(LEOLINT_FIXTURES_DIR)});
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file, b[i].file);
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const Finding& x, const Finding& y) {
                               return std::tie(x.file, x.line, x.rule) <
                                      std::tie(y.file, y.line, y.rule);
                             }));
}

TEST(LeolintRules, MissingPathThrows) {
  EXPECT_THROW((void)lint_paths({fixture("does_not_exist.cpp")}),
               std::runtime_error);
}

}  // namespace
