#include "source_view.hpp"

#include <cctype>

namespace leolint {

FileView make_view(std::string_view text) {
  FileView v;
  std::string raw_line;
  std::string code_line;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of the active raw string
  char prev_code = '\0';

  auto flush_line = [&] {
    v.raw.push_back(raw_line);
    v.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
    if (state == State::kLineComment) state = State::kCode;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      flush_line();
      continue;
    }
    raw_line.push_back(c);
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
        } else if (c == '"' && prev_code == 'R') {
          // Raw string literal: R"delim( ... )delim". Find the opening
          // parenthesis to learn the delimiter.
          std::size_t open = text.find('(', i + 1);
          if (open == std::string_view::npos) {
            code_line.push_back(' ');  // malformed; treat rest as literal
            state = State::kString;
          } else {
            raw_end = ")";
            raw_end.append(text.substr(i + 1, open - (i + 1)));
            raw_end.push_back('"');
            state = State::kRawString;
            code_line.push_back(' ');
          }
          prev_code = '\0';
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back(' ');
          prev_code = '\0';
        } else if (c == '\'' && !(std::isalnum(static_cast<unsigned char>(
                                      prev_code)) != 0 ||
                                  prev_code == '_')) {
          // A quote after an identifier/digit is a digit separator
          // (1'000'000) or a literal suffix, not a char literal.
          state = State::kChar;
          code_line.push_back(' ');
          prev_code = '\0';
        } else {
          code_line.push_back(c);
          if (std::isspace(static_cast<unsigned char>(c)) == 0) {
            prev_code = c;
          }
        }
        break;
      case State::kLineComment: code_line.push_back(' '); break;
      case State::kBlockComment:
        code_line.push_back(' ');
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0' && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0' && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        code_line.push_back(' ');
        if (c == raw_end.front() &&
            text.substr(i, raw_end.size()) == raw_end) {
          // Consume the rest of the terminator (it cannot contain '\n').
          for (std::size_t k = 1; k < raw_end.size(); ++k) {
            raw_line.push_back(text[i + k]);
            code_line.push_back(' ');
          }
          i += raw_end.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (!raw_line.empty() || text.empty() || text.back() == '\n') {
    // Final unterminated line (or preserve an empty trailing line slot for
    // empty files so headers still get an R5 anchor line).
    v.raw.push_back(raw_line);
    v.code.push_back(code_line);
  }
  return v;
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules{
      // Phase 1 — per-file determinism and hygiene rules.
      "no-rand", "no-wallclock", "unordered-iter", "float-eq", "pragma-once",
      "using-namespace", "raw-cast",
      // Phase 2 — whole-program rules (R8 layering, R9 fingerprint
      // coverage, R10 parallel-capture safety).
      "layer-cycle", "layer-violation", "layer-unknown", "fingerprint-gap",
      "stale-exemption", "parallel-capture",
  };
  return kRules;
}

bool parse_annotation(const std::string& raw, Annotation& out,
                      std::string& error) {
  const std::size_t at = raw.find("leolint:allow");
  if (at == std::string::npos) return false;
  std::size_t i = at + std::string("leolint:allow").size();
  if (i >= raw.size() || raw[i] != '(') {
    error = "malformed annotation: expected 'leolint:allow(rule): reason'";
    return true;
  }
  const std::size_t close = raw.find(')', ++i);
  if (close == std::string::npos) {
    error = "malformed annotation: missing ')'";
    return true;
  }
  std::string rule;
  for (std::size_t k = i; k <= close; ++k) {
    const char c = raw[k];
    if (c == ',' || c == ')') {
      while (!rule.empty() && rule.back() == ' ') rule.pop_back();
      std::size_t b = 0;
      while (b < rule.size() && rule[b] == ' ') ++b;
      rule = rule.substr(b);
      if (rule.empty()) {
        error = "malformed annotation: empty rule id";
        return true;
      }
      if (known_rules().count(rule) == 0) {
        error = "annotation names unknown rule '" + rule + "'";
        return true;
      }
      out.rules.insert(rule);
      rule.clear();
    } else {
      rule.push_back(c);
    }
  }
  // Justification: a ':' after the ')' followed by non-space text.
  std::size_t j = close + 1;
  while (j < raw.size() && raw[j] == ' ') ++j;
  if (j >= raw.size() || raw[j] != ':') {
    error =
        "annotation missing justification: write "
        "'leolint:allow(rule): why this site is exempt'";
    return true;
  }
  ++j;
  while (j < raw.size() && std::isspace(static_cast<unsigned char>(raw[j]))) {
    ++j;
  }
  if (j >= raw.size()) {
    error = "annotation missing justification text after ':'";
    return true;
  }
  out.valid = true;
  // Whole-line annotation: nothing but whitespace before the comment.
  const std::size_t slash = raw.find("//");
  out.whole_line =
      slash != std::string::npos &&
      raw.find_first_not_of(" \t") == slash;
  return true;
}

bool AnnotationTable::allows(std::size_t line_index,
                             const std::string& rule) const {
  if (line_index >= by_line.size()) return false;
  const Annotation& same = by_line[line_index];
  if (same.valid && same.rules.count(rule) != 0) return true;
  if (line_index > 0) {
    const Annotation& above = by_line[line_index - 1];
    if (above.valid && above.whole_line && above.rules.count(rule) != 0) {
      return true;
    }
  }
  return false;
}

AnnotationTable collect_annotations(const std::vector<std::string>& raw_lines) {
  AnnotationTable table;
  table.by_line.resize(raw_lines.size());
  for (std::size_t li = 0; li < raw_lines.size(); ++li) {
    Annotation a;
    std::string error;
    if (!parse_annotation(raw_lines[li], a, error)) continue;
    if (!a.valid) {
      table.errors.emplace_back(li + 1, error);
      continue;
    }
    table.by_line[li] = a;
  }
  return table;
}

bool path_has_component(std::string_view path, std::string_view comp) {
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find_first_of("/\\", start);
    if (end == std::string_view::npos) end = path.size();
    if (path.substr(start, end - start) == comp) return true;
    start = end + 1;
  }
  return false;
}

bool is_header(std::string_view path) {
  for (std::string_view ext : {".hpp", ".hh", ".h", ".hxx"}) {
    if (path.size() >= ext.size() &&
        path.substr(path.size() - ext.size()) == ext) {
      return true;
    }
  }
  return false;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace leolint
