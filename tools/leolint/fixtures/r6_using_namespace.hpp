#pragma once
// Fixture: R6 using-namespace — namespace-scope using directive in a
// header.

#include <string>

using namespace std;  // line 7

inline string fixture_name() { return "r6"; }
