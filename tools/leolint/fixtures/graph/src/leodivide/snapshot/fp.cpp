// graph fixture: fingerprint mixer covering every MiniConfig field except
// the exempted debug_label (see exemptions.txt).

#include "leodivide/sim/config.hpp"

namespace leodivide::snapshot {

struct Fingerprint {
  unsigned long long h = 1469598103934665603ULL;
  void mix_u64(unsigned long long v) { h = (h ^ v) * 1099511628211ULL; }
};

void mix(Fingerprint& fp, const sim::MiniConfig& config) {
  fp.mix_u64(static_cast<unsigned long long>(config.shell.altitude_km));
  fp.mix_u64(static_cast<unsigned long long>(config.shell.planes));
  fp.mix_u64(static_cast<unsigned long long>(config.origin.lat_deg));
  fp.mix_u64(static_cast<unsigned long long>(config.origin.lon_deg));
  fp.mix_u64(static_cast<unsigned long long>(config.step_s));
}

}  // namespace leodivide::snapshot
