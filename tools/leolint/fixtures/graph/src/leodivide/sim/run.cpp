// graph fixture: a parallel call site with an explicit, waived capture
// list — the clean shape R10 expects.

#include "leodivide/runtime/pool.hpp"
#include "leodivide/sim/config.hpp"

namespace leodivide::sim {

double run(const MiniConfig& config, runtime::Executor& executor) {
  double out[4] = {0.0, 0.0, 0.0, 0.0};
  const double scale = config.step_s;
  runtime::parallel_for_each(
      executor, 0, 4,
      // leolint:allow(parallel-capture): each task writes only its own out[i] slot
      [&out, scale](std::size_t i) {
        out[i] = scale * static_cast<double>(i);
      });
  return out[0] + out[3];
}

}  // namespace leodivide::sim
