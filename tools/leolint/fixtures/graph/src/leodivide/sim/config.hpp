#pragma once
// graph fixture: top-layer config structs consumed by the snapshot mixer.

#include "leodivide/geo/point.hpp"

namespace leodivide::sim {

struct ShellSpec {
  double altitude_km = 550.0;
  int planes = 72;
};

struct MiniConfig {
  ShellSpec shell;
  geo::GeoPoint origin;
  double step_s = 1.0;
  int debug_label = 0;  // exempt: presentation-only (see exemptions.txt)
};

}  // namespace leodivide::sim
