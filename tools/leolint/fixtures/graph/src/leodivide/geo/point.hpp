#pragma once
// graph fixture: bottom-layer module with a plain data struct.

namespace leodivide::geo {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

}  // namespace leodivide::geo
