#pragma once
// graph fixture: infra-layer parallel primitives (stubs — phase 2 only
// needs the call-site names).

#include <cstddef>

namespace leodivide::runtime {

struct Executor {};

template <typename Body>
void parallel_for_each(Executor&, std::size_t lo, std::size_t hi, Body body) {
  for (std::size_t i = lo; i < hi; ++i) body(i);
}

}  // namespace leodivide::runtime
