// Fixture: R2 no-wallclock — wall-clock reads outside obs/ and bench/.
#include <chrono>
#include <ctime>

long bad_steady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // 6
}
long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 9
}
long bad_ctime() { return time(nullptr); }  // line 11
// A comment mentioning steady_clock::now() must NOT fire.
const char* ok_string() { return "steady_clock::now()"; }
