// Fixture: a clean file full of decoys — none of these may fire.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

// rand() and srand() in a comment are fine; steady_clock::now() too.
const char* decoy_string() { return "rand() srand(1) time(nullptr)"; }

const char* decoy_raw_string() {
  return R"json({"clock": "steady_clock::now()", "x": 1.0})json";
}

bool epsilon_compare(double a, double b) { return (a - b) < 1e-12; }

int ordered_iteration() {
  std::map<int, int> counts{{1, 2}, {3, 4}};
  int total = 0;
  for (const auto& [k, v] : counts) total += k + v;
  return total;
}

int thousands() { return 1'000'000; }

bool integer_eq(int n) { return n == 0; }
