// Fixture: R1 no-rand — every seeded randomness source must fire.
#include <cstdlib>
#include <random>

int bad_rand() { return rand() % 10; }                  // line 5: rand()
void bad_srand() { srand(42); }                         // line 6: srand()
unsigned bad_device() { return std::random_device{}(); }  // line 7
int ok_operand(int operand(int)) { return operand(1); }  // no finding
