// Fixture: R5 pragma-once — header deliberately missing #pragma once.

inline int fixture_value() { return 42; }
