// Fixture: R3 unordered-iter — iteration over unordered containers.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

void bad_range_for() {
  std::unordered_map<int, int> histogram;
  for (const auto& [k, v] : histogram) std::printf("%d %d\n", k, v);  // 8
}

void bad_member_chain() {
  struct Shard {
    std::unordered_set<int> ids;
  };
  Shard shard;
  for (int id : shard.ids) std::printf("%d\n", id);  // line 16
}

void bad_begin() {
  std::unordered_map<int, int> counts;
  auto it = counts.begin();  // line 21
  (void)it;
}

void ok_annotated() {
  std::unordered_set<int> seen;
  // leolint:allow(unordered-iter): count accumulation is commutative
  for (int s : seen) (void)s;
}

void ok_no_iteration() {
  std::unordered_map<int, int> lookup;
  (void)lookup.size();
  (void)lookup.find(3);
}
