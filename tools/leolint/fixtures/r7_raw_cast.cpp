// Fixture: R7 raw-cast — reinterpret_cast outside snapshot/.
#include <cstdint>

double bad_pun(std::uint64_t bits) {
  return *reinterpret_cast<double*>(&bits);  // line 5
}
const char* bad_bytes(const std::uint8_t* p) {
  return reinterpret_cast<const char*>(p);  // line 8
}
// leolint:allow(raw-cast): mmap'd page is alignment-checked two lines up
const char* waived(const void* p) { return reinterpret_cast<const char*>(p); }
// A comment mentioning reinterpret_cast must NOT fire.
const char* ok_string() { return "reinterpret_cast<double*>"; }
