// Fixture: annotations must carry a justification and a known rule id.
#include <unordered_set>

void missing_justification() {
  std::unordered_set<int> pool;
  for (int p : pool) (void)p;  // leolint:allow(unordered-iter)
}

void unknown_rule(double q) {
  (void)(q == 0.0);  // leolint:allow(no-such-rule): nope
}
