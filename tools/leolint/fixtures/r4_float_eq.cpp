// Fixture: R4 float-eq — exact floating-point equality comparisons.

bool bad_literal_rhs(double x) { return x == 0.0; }      // line 3
bool bad_literal_lhs(double y) { return 1.5 != y; }      // line 4
bool bad_exponent(double z) { return z == 1e-9; }        // line 5

bool bad_declared_pair(double a, double b) { return a == b; }  // line 7

bool ok_int(int n) { return n == 0; }
bool ok_le(double w) { return w <= 0.5; }

bool ok_annotated(double v) {
  return v == 0.0;  // leolint:allow(float-eq): exact sentinel from init
}
