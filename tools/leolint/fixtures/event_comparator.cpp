// Fixture: the event queue's comparator idiom. The real comparator
// (src/leodivide/event/event.hpp, event_less) orders on
// (time, kind, cell, sat) with strict < only — its double field never
// meets == or != — so R4 must stay silent on it. The naive variant that
// tie-breaks with == on the double time field is what R4 exists to catch.

#include <cstdint>

struct Ev {
  double time_s = 0.0;
  int kind = 0;
  std::uint32_t cell = 0;
  std::uint32_t sat = 0;
};

// Mirrors event::event_less — clean: strict < on the double field, integer
// tie-breaks after.
constexpr bool event_less(const Ev& a, const Ev& b) {
  if (a.time_s < b.time_s) return true;
  if (b.time_s < a.time_s) return false;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.sat < b.sat;
}

// The rejected idiom: exact float equality as the tie test.
bool naive_less(const Ev& a, const Ev& b) {
  if (a.time_s == b.time_s) return a.sat < b.sat;  // line 28: float-eq
  return a.time_s < b.time_s;
}
