#pragma once
// leolint phase 2 — the whole-program rule families over a ProjectModel:
//
//   R8  layer-cycle / layer-violation / layer-unknown
//       The module include graph must respect the checked-in layering
//       (layers.txt): a module may include modules in its own or lower
//       layers, never higher ones, and the whole module graph must be
//       acyclic. Modules absent from layers.txt are themselves findings —
//       every module must take a position in the architecture.
//
//   R9  fingerprint-gap / stale-exemption
//       Every field of every struct consumed by a `mix(Fingerprint&,
//       const T&)` overload must either be mixed into the fingerprint
//       (directly, through a nested field path, or via a method call that
//       consumes the member whole) or carry a justified entry in the
//       exemption manifest. Manifest entries that match no existing field
//       are reported as stale, so the manifest can never rot.
//
//   R10 parallel-capture
//       Lambdas handed to runtime::parallel_for / parallel_for_each /
//       map_reduce / run_tasks must not use a default by-reference
//       capture, and must not capture non-const variables by reference —
//       unless the site carries a leolint:allow(parallel-capture) waiver
//       justifying why the shared mutation is safe (e.g. disjoint writes).
//
// All findings reuse the phase-1 Finding shape and waiver machinery, so
// CI greps one format and annotations work identically in both phases.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint.hpp"
#include "project.hpp"

namespace leolint {

/// The checked-in module layering (tools/leolint/layers.txt). Layers are
/// ordered bottom-up: a module may depend on its own layer or any earlier
/// one.
struct Layers {
  std::vector<std::string> names;                   ///< bottom-up order
  std::map<std::string, std::size_t> module_layer;  ///< module -> index
};

/// Parses layers.txt text: `layer <name>: <module>...` lines, '#'
/// comments and blank lines. Throws std::runtime_error on malformed lines
/// or modules claimed by two layers.
[[nodiscard]] Layers parse_layers(const std::string& text);

/// One justified non-fingerprinted field.
struct Exemption {
  std::string struct_qualified;  ///< e.g. "sim::SimulationConfig"
  std::string field_path;        ///< e.g. "engine" or "shell.phasing"
  std::string justification;
  std::size_t line = 0;
};

struct ExemptionManifest {
  std::string file;  ///< for findings on the manifest itself
  std::vector<Exemption> entries;
  /// Malformed lines: (line, error). Reported as `bad-exemption`.
  std::vector<std::pair<std::size_t, std::string>> errors;
};

/// Parses the exemption manifest: one `ns::Struct::field.path:
/// justification` entry per line, '#' comments and blank lines. Entries
/// with no justification text land in `errors` rather than `entries`.
[[nodiscard]] ExemptionManifest parse_exemptions(const std::string& path,
                                                 const std::string& text);

/// Runs R8–R10 and returns findings sorted by (file, line, rule), with
/// annotation waivers already applied.
[[nodiscard]] std::vector<Finding> run_project_rules(
    const ProjectModel& model, const Layers& layers,
    const ExemptionManifest& exemptions);

/// Graphviz DOT of the module include graph, clustered by layer, with
/// back-edges (violations) highlighted. Deterministic output.
[[nodiscard]] std::string to_dot(const ProjectModel& model,
                                 const Layers& layers);

/// Human-readable fingerprint-coverage report: per mixed struct, every
/// field path with its status (mixed / exempt / gap / opaque).
[[nodiscard]] std::string coverage_report(const ProjectModel& model,
                                          const ExemptionManifest& exemptions);

}  // namespace leolint
