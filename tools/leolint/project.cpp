#include "project.hpp"

#include <algorithm>
#include <regex>
#include <stdexcept>

#include "leodivide/io/fileio.hpp"
#include "lint.hpp"

namespace leolint {

namespace {

// --------------------------------------------------------------- lexical --

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

/// 1-based line of offset `pos` in a joined '\n'-separated code string.
struct LineIndex {
  std::vector<std::size_t> starts;  // offset of each line's first char

  explicit LineIndex(const std::string& joined) {
    starts.push_back(0);
    for (std::size_t i = 0; i < joined.size(); ++i) {
      if (joined[i] == '\n') starts.push_back(i + 1);
    }
  }
  [[nodiscard]] std::size_t line_of(std::size_t pos) const {
    const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<std::size_t>(it - starts.begin());
  }
};

/// Position just past the '}' matching the '{' at `open`. Returns
/// std::string::npos when unbalanced (truncated file) — callers stop.
std::size_t skip_braced(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '{') ++depth;
    if (s[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Position just past the ';' terminating the statement starting at `pos`,
/// skipping nested parens/braces (initializer lists, default arguments).
std::size_t skip_to_semicolon(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '{' || c == '(') ++depth;
    if (c == '}' || c == ')') --depth;
    if (c == ';' && depth <= 0) return i + 1;
  }
  return std::string::npos;
}

std::string strip_attributes(std::string stmt) {
  std::size_t at;
  while ((at = stmt.find("[[")) != std::string::npos) {
    const std::size_t end = stmt.find("]]", at);
    if (end == std::string::npos) break;
    stmt.erase(at, end + 2 - at);
  }
  return stmt;
}

std::string last_identifier(const std::string& s) {
  std::size_t e = s.size();
  while (e > 0 && !ident_char(s[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, e - b);
}

bool starts_with_keyword(const std::string& stmt, std::string_view kw) {
  if (stmt.size() < kw.size() || stmt.compare(0, kw.size(), kw) != 0) {
    return false;
  }
  return stmt.size() == kw.size() || !ident_char(stmt[kw.size()]);
}

// ---------------------------------------------------------- struct parse --

/// Parses the members of the struct whose body opens at `open` (offset of
/// '{'). Data members only: member functions, nested types, usings,
/// friends and operators are skipped. Multi-declarator members
/// (`double a, b;`) record the first declarator only — the inventoried
/// config structs declare one field per statement.
std::vector<StructField> parse_struct_fields(const std::string& code,
                                             std::size_t open,
                                             const LineIndex& lines) {
  std::vector<StructField> fields;
  std::size_t i = open + 1;
  std::string stmt;
  std::size_t stmt_start = i;
  int paren = 0;
  int angle = 0;

  auto reset = [&](std::size_t next) {
    stmt.clear();
    stmt_start = next;
    paren = 0;
    angle = 0;
    i = next;
  };

  auto finish_field = [&](char trigger) {
    const std::string cleaned = strip_attributes(trim(stmt));
    const bool skip = cleaned.empty() ||
                      starts_with_keyword(cleaned, "using") ||
                      starts_with_keyword(cleaned, "typedef") ||
                      starts_with_keyword(cleaned, "friend") ||
                      starts_with_keyword(cleaned, "static") ||
                      starts_with_keyword(cleaned, "template") ||
                      cleaned.find("operator") != std::string::npos ||
                      cleaned.find('(') != std::string::npos;
    if (!skip) {
      const std::string name = last_identifier(cleaned);
      if (!name.empty()) {
        std::string type = cleaned.substr(0, cleaned.rfind(name));
        while (!type.empty() &&
               (std::isspace(static_cast<unsigned char>(type.back())) != 0 ||
                type.back() == '&' || type.back() == '*')) {
          type.pop_back();
        }
        fields.push_back(StructField{name, type, lines.line_of(stmt_start)});
      }
    }
    // Consume the remainder of the statement (initializer and ';').
    const std::size_t next = trigger == ';'
                                 ? i + 1
                                 : skip_to_semicolon(code, i);
    reset(next == std::string::npos ? code.size() : next);
  };

  while (i < code.size()) {
    const char c = code[i];
    if (paren == 0 && angle == 0) {
      if (c == '}') return fields;  // struct body ends
      if (c == '{' ) {
        const std::string cleaned = strip_attributes(trim(stmt));
        const bool nested_type = starts_with_keyword(cleaned, "struct") ||
                                 starts_with_keyword(cleaned, "class") ||
                                 starts_with_keyword(cleaned, "enum") ||
                                 starts_with_keyword(cleaned, "union");
        const bool function = !nested_type &&
                              cleaned.find('(') != std::string::npos &&
                              cleaned.find('=') == std::string::npos;
        if (nested_type || function) {
          std::size_t next = skip_braced(code, i);
          if (next == std::string::npos) return fields;
          if (nested_type) {
            next = skip_to_semicolon(code, next);
            if (next == std::string::npos) return fields;
          }
          reset(next);
          continue;
        }
        finish_field('{');
        continue;
      }
      if (c == '=' ) {
        finish_field('=');
        continue;
      }
      if (c == ';') {
        finish_field(';');
        continue;
      }
      if (c == ':' && (i + 1 >= code.size() || code[i + 1] != ':') &&
          (i == 0 || code[i - 1] != ':')) {
        // Access-specifier label (or base-class list of a skipped nested
        // type) — discard the pending statement.
        reset(i + 1);
        continue;
      }
    }
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    if (paren == 0) {
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
    }
    stmt.push_back(c);
    ++i;
  }
  return fields;
}

void collect_structs(const std::string& path, const std::string& module,
                     const std::string& code, const LineIndex& lines,
                     std::map<std::string, StructDef>& out) {
  if (module.empty()) return;
  static const std::regex kStruct(R"(\bstruct\s+(\w+)\s*(?:final\s*)?\{)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kStruct);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    StructDef def;
    def.qualified = module + "::" + name;
    def.file = path;
    def.line = lines.line_of(static_cast<std::size_t>(it->position()));
    def.fields = parse_struct_fields(code, open, lines);
    // First definition wins (redefinitions across files would be an ODR
    // bug the compiler reports; headers are scanned before their .cpp in
    // sorted order only by accident, so keep whichever parsed fields).
    auto [slot, inserted] = out.emplace(def.qualified, def);
    if (!inserted && slot->second.fields.empty() && !def.fields.empty()) {
      slot->second = def;
    }
  }
}

// ----------------------------------------------------------- mixer parse --

/// Normalizes "leodivide::sim::SimulationConfig" / "sim :: Simulation…"
/// to "sim::SimulationConfig"; unqualified names get the host module.
std::string normalize_type(std::string type, const std::string& module) {
  std::string flat;
  for (char c : type) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) flat.push_back(c);
  }
  const std::string prefix = "leodivide::";
  if (flat.compare(0, prefix.size(), prefix) == 0) {
    flat = flat.substr(prefix.size());
  }
  if (flat.find("::") == std::string::npos && !module.empty()) {
    flat = module + "::" + flat;
  }
  return flat;
}

void collect_mixers(const std::string& path, const std::string& module,
                    const std::string& code, const LineIndex& lines,
                    std::vector<MixerSite>& out) {
  static const std::regex kMixer(
      R"(\bvoid\s+mix\s*\(\s*Fingerprint\s*&\s*\w+\s*,\s*const\s+((?:\w+\s*::\s*)*\w+)\s*&\s*(\w+)\s*\)\s*\{)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kMixer);
       it != std::sregex_iterator(); ++it) {
    MixerSite site;
    site.qualified_type = normalize_type((*it)[1].str(), module);
    site.param = (*it)[2].str();
    site.file = path;
    site.line = lines.line_of(static_cast<std::size_t>(it->position()));

    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    const std::size_t close = skip_braced(code, open);
    const std::string body = code.substr(
        open, (close == std::string::npos ? code.size() : close) - open);

    // Every `param.a.b...` chain in the body. A chain truncates at the
    // first member *call*: `p.capacity.plan()` consumes `capacity` whole.
    const std::regex kParam("\\b" + site.param + R"(\s*\.)");
    for (auto pit = std::sregex_iterator(body.begin(), body.end(), kParam);
         pit != std::sregex_iterator(); ++pit) {
      std::size_t i = static_cast<std::size_t>(pit->position()) +
                      pit->length();
      std::vector<std::string> parts;
      bool whole_object_call = false;
      while (true) {
        std::string id;
        while (i < body.size() && ident_char(body[i])) id.push_back(body[i++]);
        if (id.empty()) break;
        std::size_t j = i;
        while (j < body.size() &&
               std::isspace(static_cast<unsigned char>(body[j])) != 0) {
          ++j;
        }
        if (j < body.size() && body[j] == '(') {
          // Method call: the chain so far is consumed as a whole.
          whole_object_call = parts.empty();
          break;
        }
        parts.push_back(id);
        if (j < body.size() && body[j] == '.') {
          i = j + 1;
          continue;
        }
        break;
      }
      if (!parts.empty()) {
        std::string joined_path = parts[0];
        for (std::size_t k = 1; k < parts.size(); ++k) {
          joined_path += '.';
          joined_path += parts[k];
        }
        site.full_paths.insert(joined_path);
      } else if (whole_object_call) {
        site.full_paths.insert("");  // whole-object use, e.g. p.digest()
      }
    }
    out.push_back(std::move(site));
  }
}

// ----------------------------------------------------- parallel captures --

std::vector<Capture> parse_capture_list(const std::string& code,
                                        std::size_t open_bracket) {
  std::vector<Capture> captures;
  // Find the matching ']' (init-captures may nest brackets).
  int depth = 0;
  std::size_t close = std::string::npos;
  for (std::size_t i = open_bracket; i < code.size(); ++i) {
    if (code[i] == '[') ++depth;
    if (code[i] == ']' && --depth == 0) {
      close = i;
      break;
    }
  }
  if (close == std::string::npos) return captures;

  std::vector<std::string> items;
  std::string item;
  int inner = 0;
  for (std::size_t i = open_bracket + 1; i < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '{' || c == '[' || c == '<') ++inner;
    if (c == ')' || c == '}' || c == ']' || c == '>') --inner;
    if (c == ',' && inner == 0) {
      items.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  items.push_back(item);

  for (const std::string& raw : items) {
    const std::string tok = trim(raw);
    if (tok.empty()) continue;
    Capture cap;
    if (tok == "&") {
      cap.kind = Capture::Kind::kDefaultRef;
    } else if (tok == "=") {
      cap.kind = Capture::Kind::kDefaultCopy;
    } else if (tok == "this" || tok == "*this") {
      cap.kind = Capture::Kind::kThis;
    } else if (tok[0] == '&') {
      cap.kind = Capture::Kind::kByRef;
      std::size_t i = 1;
      while (i < tok.size() &&
             std::isspace(static_cast<unsigned char>(tok[i])) != 0) {
        ++i;
      }
      while (i < tok.size() && ident_char(tok[i])) cap.name.push_back(tok[i++]);
    } else {
      cap.kind = Capture::Kind::kByValue;
      std::size_t i = 0;
      while (i < tok.size() && ident_char(tok[i])) cap.name.push_back(tok[i++]);
    }
    captures.push_back(std::move(cap));
  }
  return captures;
}

/// `auto name = [...]` lambdas, so call sites passing the name resolve.
std::map<std::string, std::size_t> collect_named_lambdas(
    const std::string& code) {
  std::map<std::string, std::size_t> out;
  static const std::regex kNamed(R"(\bauto\s+(\w+)\s*=\s*\[)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kNamed);
       it != std::sregex_iterator(); ++it) {
    out.emplace((*it)[1].str(),
                static_cast<std::size_t>(it->position()) + it->length() - 1);
  }
  return out;
}

void collect_parallel_sites(const std::string& path, const std::string& module,
                            const std::string& code, const LineIndex& lines,
                            std::vector<ParallelSite>& out) {
  // The runtime module *implements* the primitives; its internal lambdas
  // are the machinery itself (mirrors the stats/ exemption for R1).
  if (module == "runtime") return;

  const std::map<std::string, std::size_t> named = collect_named_lambdas(code);
  static const std::regex kCall(
      R"(\b(?:runtime\s*::\s*)?(parallel_for_each|parallel_for|map_reduce|run_tasks)\s*)");

  for (auto it = std::sregex_iterator(code.begin(), code.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::string callee = (*it)[1].str();
    std::size_t i = static_cast<std::size_t>(it->position()) + it->length();
    // Optional explicit template argument list: map_reduce<Shard>(...).
    if (i < code.size() && code[i] == '<') {
      int angle = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++angle;
        if (code[i] == '>' && --angle == 0) {
          ++i;
          break;
        }
      }
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
    }
    if (i >= code.size() || code[i] != '(') continue;  // not a call

    // Scan the argument list. Lambdas and named-lambda arguments are only
    // recognised at the call's own nesting level (paren depth 1, brace
    // depth 0) so brackets inside lambda bodies never confuse the parser.
    int paren = 0;
    int brace = 0;
    char prev = '\0';
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') ++paren;
      if (c == ')' && --paren == 0) break;
      if (c == '{') ++brace;
      if (c == '}') --brace;
      if (paren == 1 && brace == 0) {
        if (c == '[' && !ident_char(prev) && prev != ')' && prev != ']') {
          ParallelSite site;
          site.callee = callee;
          site.file = path;
          site.line = lines.line_of(i);
          site.captures = parse_capture_list(code, i);
          out.push_back(std::move(site));
          // Jump past the capture list so its contents aren't rescanned.
          int depth = 0;
          for (; i < code.size(); ++i) {
            if (code[i] == '[') ++depth;
            if (code[i] == ']' && --depth == 0) break;
          }
        } else if (ident_char(c) && !ident_char(prev)) {
          std::string id;
          std::size_t j = i;
          while (j < code.size() && ident_char(code[j])) id.push_back(code[j++]);
          const auto named_it = named.find(id);
          if (named_it != named.end()) {
            std::size_t k = j;
            while (k < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[k])) != 0) {
              ++k;
            }
            if (k < code.size() && (code[k] == ',' || code[k] == ')')) {
              ParallelSite site;
              site.callee = callee;
              site.file = path;
              site.line = lines.line_of(named_it->second);
              site.captures = parse_capture_list(code, named_it->second);
              out.push_back(std::move(site));
            }
          }
          i = j - 1;
        }
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) prev = c;
    }
  }
}

// ------------------------------------------------------------ const set --

std::set<std::string> collect_const_names(const std::string& code) {
  std::set<std::string> names;
  static const std::regex kConst(
      R"((?:\bconst\b|\bconstexpr\b)[\w:<>,&*\s\[\]]*?\b(\w+)\s*[=;,){])");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kConst);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

// -------------------------------------------------------------- includes --

void collect_includes(const std::string& path, const std::string& module,
                      const FileView& view, std::vector<IncludeEdge>& out) {
  // Matched against *raw* lines (the code view blanks string contents,
  // which would erase the include path). The code view is consulted to
  // reject directives that live inside comments.
  static const std::regex kInclude(
      R"rx(^\s*#\s*include\s*"(leodivide/(\w+)/[^"]*)")rx");
  for (std::size_t li = 0; li < view.raw.size(); ++li) {
    const std::string& code = view.code[li];
    const std::size_t first = code.find_first_not_of(" \t");
    if (first == std::string::npos || code[first] != '#') continue;
    std::smatch m;
    if (std::regex_search(view.raw[li], m, kInclude)) {
      IncludeEdge edge;
      edge.file = path;
      edge.line = li + 1;
      edge.from_module = module;
      edge.to_module = m[2].str();
      edge.target = m[1].str();
      out.push_back(std::move(edge));
    }
  }
}

}  // namespace

std::string module_of_path(std::string_view path) {
  std::string last;
  std::size_t start = 0;
  std::string prev;
  while (start <= path.size()) {
    std::size_t end = path.find_first_of("/\\", start);
    if (end == std::string_view::npos) end = path.size();
    const std::string comp(path.substr(start, end - start));
    if (prev == "leodivide" && !comp.empty()) last = comp;
    prev = comp;
    start = end + 1;
  }
  // A file directly under leodivide/ (no module subdirectory) has none.
  if (!last.empty() && last.find('.') != std::string::npos) return "";
  return last;
}

ProjectModel build_project(std::vector<SourceText> sources) {
  std::sort(sources.begin(), sources.end(),
            [](const SourceText& a, const SourceText& b) {
              return a.path < b.path;
            });
  ProjectModel model;
  for (const SourceText& src : sources) {
    const FileView view = make_view(src.text);
    std::string joined;
    for (const auto& l : view.code) {
      joined += l;
      joined += '\n';
    }
    const LineIndex lines(joined);
    const std::string module = module_of_path(src.path);

    model.annotations.emplace(src.path, collect_annotations(view.raw));
    model.file_module.emplace(src.path, module);
    model.const_names.emplace(src.path, collect_const_names(joined));
    collect_includes(src.path, module, view, model.includes);
    collect_structs(src.path, module, joined, lines, model.structs);
    collect_mixers(src.path, module, joined, lines, model.mixers);
    collect_parallel_sites(src.path, module, joined, lines,
                           model.parallel_sites);
  }
  return model;
}

ProjectModel build_project_from_paths(const std::vector<std::string>& roots) {
  std::vector<SourceText> sources;
  for (const std::string& f : enumerate_sources(roots)) {
    sources.push_back(SourceText{f, leodivide::io::read_text_file(f)});
  }
  return build_project(std::move(sources));
}

}  // namespace leolint
