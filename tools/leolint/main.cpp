// leolint CLI. Usage: leolint [options] <path>... — lints every C++
// source under the given files/directories and exits nonzero on any
// finding, so it can gate CI and ctest (`lint.leolint`, `lint.graph`).
//
// Phase 1 (per-file rules R1–R7) always runs. Phase 2 (whole-program
// rules R8–R10) runs when --project is given: it builds one model over
// all roots and checks module layering, fingerprint coverage and
// parallel-capture safety on top of the per-file findings.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "lint.hpp"
#include "project.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: leolint [options] <path>...\n"
      "\n"
      "Lints C++ sources (.cpp .cc .cxx .hpp .hh .h .hxx) under each path\n"
      "for determinism and hygiene violations. Exit status: 0 clean,\n"
      "1 findings, 2 usage or I/O error.\n"
      "\n"
      "Phase 1 rules: no-rand (R1), no-wallclock (R2), unordered-iter\n"
      "(R3), float-eq (R4), pragma-once (R5), using-namespace (R6),\n"
      "raw-cast (R7).\n"
      "\n"
      "Options (phase 2, whole-program):\n"
      "  --project             also run R8-R10 over one project model\n"
      "  --layers <file>       module layering DAG (required w/ --project)\n"
      "  --exemptions <file>   fingerprint exemption manifest (R9)\n"
      "  --dot <file>          write the module include graph as Graphviz\n"
      "  --coverage <file>     write the fingerprint-coverage report\n"
      "\n"
      "Phase 2 rules: layer-cycle / layer-violation / layer-unknown (R8),\n"
      "fingerprint-gap / stale-exemption (R9), parallel-capture (R10).\n"
      "Waive a site with: // leolint:allow(rule-id): justification\n",
      stderr);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("leolint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("leolint: cannot write " + path);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool project = false;
  std::string layers_path;
  std::string exemptions_path;
  std::string dot_path;
  std::string coverage_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "leolint: %s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--layers") {
      layers_path = value("--layers");
    } else if (arg == "--exemptions") {
      exemptions_path = value("--exemptions");
    } else if (arg == "--dot") {
      dot_path = value("--dot");
    } else if (arg == "--coverage") {
      coverage_path = value("--coverage");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "leolint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage();
    return 2;
  }
  if (project && layers_path.empty()) {
    std::fprintf(stderr, "leolint: --project requires --layers\n");
    return 2;
  }

  try {
    std::vector<leolint::Finding> findings = leolint::lint_paths(roots);

    if (project) {
      const leolint::ProjectModel model =
          leolint::build_project_from_paths(roots);
      const leolint::Layers layers =
          leolint::parse_layers(read_file(layers_path));
      leolint::ExemptionManifest manifest;
      manifest.file = exemptions_path.empty() ? "<no-exemptions>"
                                              : exemptions_path;
      if (!exemptions_path.empty()) {
        manifest = leolint::parse_exemptions(exemptions_path,
                                             read_file(exemptions_path));
      }
      std::vector<leolint::Finding> phase2 =
          leolint::run_project_rules(model, layers, manifest);
      findings.insert(findings.end(),
                      std::make_move_iterator(phase2.begin()),
                      std::make_move_iterator(phase2.end()));
      if (!dot_path.empty()) {
        write_file(dot_path, leolint::to_dot(model, layers));
      }
      if (!coverage_path.empty()) {
        write_file(coverage_path, leolint::coverage_report(model, manifest));
      }
    }

    for (const auto& f : findings) {
      std::fprintf(stdout, "%s\n", leolint::format(f).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "leolint: %zu finding(s)\n", findings.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
