// leolint CLI. Usage: leolint <path>... — lints every C++ source under
// the given files/directories and exits nonzero on any finding, so it can
// gate CI and ctest (`lint.leolint`).

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: leolint <path>...\n"
      "\n"
      "Lints C++ sources (.cpp .cc .cxx .hpp .hh .h .hxx) under each path\n"
      "for determinism and hygiene violations. Exit status: 0 clean,\n"
      "1 findings, 2 usage or I/O error.\n"
      "\n"
      "Rules: no-rand (R1), no-wallclock (R2), unordered-iter (R3),\n"
      "float-eq (R4), pragma-once (R5), using-namespace (R6),\n"
      "raw-cast (R7).\n"
      "Waive a site with: // leolint:allow(rule-id): justification\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    usage();
    return 2;
  }
  try {
    const std::vector<leolint::Finding> findings = leolint::lint_paths(roots);
    for (const auto& f : findings) {
      std::fprintf(stdout, "%s\n", leolint::format(f).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "leolint: %zu finding(s)\n", findings.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
