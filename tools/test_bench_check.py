#!/usr/bin/env python3
"""CLI tests for bench_check.py: exit codes and diagnostics for the happy
path, missing cases, empty/absent case lists, unknown bench names, gate
failures and malformed baselines. Registered as the ``tools.bench_check``
ctest."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_check.py")

HARNESS_LINES = "\n".join(
    [
        "leodivide micro_perf harness",  # non-JSON noise must be ignored
        json.dumps(
            {
                "bench": "sim.schedule",
                "cells": 100,
                "sats": 24,
                "naive_ms": 10.0,
                "indexed_ms": 2.0,
                "speedup": 5.0,
            }
        ),
        json.dumps(
            {
                "bench": "sim.schedule",
                "cells": 400,
                "sats": 24,
                "naive_ms": 40.0,
                "indexed_ms": 4.0,
                "speedup": 10.0,
            }
        ),
        "not json {",
    ]
)


def baseline(cases, bench="sim.schedule", min_speedup=2.0, **extra):
    data = {"bench": bench, "min_speedup": min_speedup, "cases": cases}
    data.update(extra)
    return data


def case(cells, speedup, **extra):
    data = {"cells": cells, "sats": 24, "indexed_ms": 2.0, "speedup": speedup}
    data.update(extra)
    return data


class BenchCheckCli(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.output = self.write("output.txt", HARNESS_LINES)

    def write(self, name, text):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def write_baseline(self, name, data):
        return self.write(name, json.dumps(data))

    def run_check(self, *argv):
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True,
            text=True,
            check=False,
        )

    def test_happy_path_passes(self):
        path = self.write_baseline(
            "b.json", baseline([case(100, 4.8), case(400, 9.5)])
        )
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("ok: all 2 case(s)", proc.stdout)

    def test_missing_case_fails(self):
        path = self.write_baseline("b.json", baseline([case(999, 4.0)]))
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("missing from harness output", proc.stdout)
        self.assertIn("1 case(s) missing", proc.stdout)

    def test_empty_case_list_is_an_error_not_a_pass(self):
        path = self.write_baseline("b.json", baseline([]))
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("declares no cases", proc.stderr)

    def test_absent_case_list_is_an_error(self):
        path = self.write_baseline(
            "b.json", {"bench": "sim.schedule", "min_speedup": 2.0}
        )
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("has no 'cases'", proc.stderr)

    def test_unknown_bench_name_is_diagnosed(self):
        path = self.write_baseline(
            "b.json", baseline([case(100, 4.0)], bench="sim.schedul")
        )
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("no harness lines for bench 'sim.schedul'", proc.stdout)

    def test_gate_failure_fails(self):
        path = self.write_baseline(
            "b.json", baseline([case(100, 4.8)], min_speedup=6.0)
        )
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("1 case(s) below their speedup gate", proc.stdout)

    def test_per_case_gate_overrides_default(self):
        path = self.write_baseline(
            "b.json",
            baseline([case(100, 4.8, min_speedup=4.5)], min_speedup=6.0),
        )
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_malformed_baseline_json_is_an_error(self):
        path = self.write("b.json", "{not json")
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("unusable baseline", proc.stderr)

    def test_baseline_without_min_speedup_is_an_error(self):
        path = self.write_baseline(
            "b.json", {"bench": "sim.schedule", "cases": [case(100, 4.0)]}
        )
        proc = self.run_check(self.output, path)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("has no 'min_speedup'", proc.stderr)

    def test_output_without_any_bench_lines_fails(self):
        empty = self.write("empty.txt", "no json here\n")
        path = self.write_baseline("b.json", baseline([case(100, 4.0)]))
        proc = self.run_check(empty, path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("no bench JSON lines", proc.stdout)

    def test_usage_without_args_exits_2(self):
        proc = self.run_check()
        self.assertEqual(proc.returncode, 2)

    def test_median_speedup_is_reported_not_gated_nor_matched(self):
        # A harness line carrying median_speedup must still match a
        # baseline case without it (timing fields never enter the case
        # key), the median must print as a diagnostic, and a median below
        # the gate must not fail while best-of passes.
        lines = HARNESS_LINES + "\n" + json.dumps(
            {
                "bench": "graph.pipeline",
                "chains": 4,
                "seq_ms": 100.0,
                "graph_ms": 25.0,
                "speedup": 4.0,
                "median_speedup": 1.1,
            }
        )
        output = self.write("median_output.txt", lines)
        path = self.write_baseline(
            "b.json",
            baseline(
                [{"chains": 4, "graph_ms": 30.0, "speedup": 3.9}],
                bench="graph.pipeline",
                min_speedup=2.0,
            ),
        )
        proc = self.run_check(output, path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("median_speedup 1.10x", proc.stdout)
        self.assertIn("informational", proc.stdout)

    def test_median_speedup_baseline_value_shown_for_context(self):
        lines = HARNESS_LINES + "\n" + json.dumps(
            {
                "bench": "graph.pipeline",
                "chains": 4,
                "speedup": 4.0,
                "median_speedup": 3.5,
            }
        )
        output = self.write("median_output.txt", lines)
        path = self.write_baseline(
            "b.json",
            baseline(
                [{"chains": 4, "speedup": 3.9, "median_speedup": 3.4}],
                bench="graph.pipeline",
            ),
        )
        proc = self.run_check(output, path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("median_speedup 3.50x", proc.stdout)
        self.assertIn("baseline 3.40x", proc.stdout)


if __name__ == "__main__":
    unittest.main()
