#include "leodivide/market/operator.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace leodivide::market {

namespace {

void require_finite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument(std::string("OperatorConfig: non-finite ") +
                                what);
  }
}

}  // namespace

double OperatorCosts::annual_cost_usd(double satellites) const {
  if (!std::isfinite(satellites) || satellites < 0.0) {
    throw std::invalid_argument("annual_cost_usd: negative fleet");
  }
  if (!std::isfinite(satellite_capex_usd) || satellite_capex_usd < 0.0 ||
      !std::isfinite(launch_capex_usd) || launch_capex_usd < 0.0 ||
      !std::isfinite(ground_capex_usd) || ground_capex_usd < 0.0 ||
      !std::isfinite(annual_opex_fraction) || annual_opex_fraction < 0.0) {
    throw std::invalid_argument("OperatorCosts: malformed capex/opex inputs");
  }
  if (!std::isfinite(satellite_lifetime_years) ||
      satellite_lifetime_years <= 0.0) {
    throw std::invalid_argument("OperatorCosts: non-positive lifetime");
  }
  const double total_capex =
      satellites * (satellite_capex_usd + launch_capex_usd) + ground_capex_usd;
  return total_capex / satellite_lifetime_years +
         annual_opex_fraction * total_capex;
}

orbit::MultiShellConstellation OperatorConfig::constellation() const {
  return orbit::MultiShellConstellation(shells);
}

spectrum::SpectrumPlan OperatorConfig::spectrum() const {
  return spectrum::SpectrumPlan(bands);
}

core::SizingModel OperatorConfig::sizing_model() const {
  core::SizingModel model;
  model.capacity = core::SatelliteCapacityModel(spectrum::BeamPlan(
      spectrum(), beams_per_full_cell, spectral_efficiency_bps_hz));
  model.inclination_deg = sizing_inclination_deg;
  return model;
}

core::SizingModel OperatorConfig::sizing_model(double spectrum_share) const {
  if (!std::isfinite(spectrum_share) || spectrum_share <= 0.0 ||
      spectrum_share > 1.0) {
    throw std::invalid_argument("sizing_model: share outside (0, 1]");
  }
  // A full share must not re-derive band edges (lo + (hi - lo) is not
  // guaranteed to round back to hi): return the unscaled model exactly.
  if (std::bit_cast<std::uint64_t>(spectrum_share) ==
      std::bit_cast<std::uint64_t>(1.0)) {
    return sizing_model();
  }
  std::vector<spectrum::Band> scaled = bands;
  for (spectrum::Band& band : scaled) {
    if (band.usage == spectrum::BeamUsage::kUserDownlink ||
        band.usage == spectrum::BeamUsage::kUserOrGatewayDownlink) {
      band.hi_ghz = band.lo_ghz + (band.hi_ghz - band.lo_ghz) * spectrum_share;
    }
  }
  core::SizingModel model;
  model.capacity = core::SatelliteCapacityModel(
      spectrum::BeamPlan(spectrum::SpectrumPlan(std::move(scaled)),
                         beams_per_full_cell, spectral_efficiency_bps_hz));
  model.inclination_deg = sizing_inclination_deg;
  return model;
}

void validate(const OperatorConfig& config) {
  if (config.name.empty()) {
    throw std::invalid_argument("OperatorConfig: empty name");
  }
  if (config.shells.empty()) {
    throw std::invalid_argument("OperatorConfig: no shells");
  }
  for (const orbit::WalkerShell& shell : config.shells) {
    require_finite(shell.inclination_deg, "shell inclination");
    require_finite(shell.altitude_km, "shell altitude");
    if (shell.inclination_deg <= 0.0 || shell.inclination_deg >= 180.0 ||
        shell.altitude_km <= 0.0 || shell.planes == 0 ||
        shell.sats_per_plane == 0) {
      throw std::invalid_argument("OperatorConfig: malformed shell");
    }
  }
  // SpectrumPlan validates band shapes (non-empty, positive widths).
  const spectrum::SpectrumPlan plan = config.spectrum();
  if (plan.user_downlink_mhz() <= 0.0) {
    throw std::invalid_argument("OperatorConfig: no user-downlink spectrum");
  }
  if (config.beams_per_full_cell == 0 ||
      config.beams_per_full_cell > plan.user_beams()) {
    throw std::invalid_argument(
        "OperatorConfig: beams_per_full_cell outside [1, user_beams]");
  }
  require_finite(config.spectral_efficiency_bps_hz, "spectral efficiency");
  if (config.spectral_efficiency_bps_hz <= 0.0) {
    throw std::invalid_argument(
        "OperatorConfig: non-positive spectral efficiency");
  }
  require_finite(config.sizing_inclination_deg, "sizing inclination");
  if (config.sizing_inclination_deg <= 0.0 ||
      config.sizing_inclination_deg >= 180.0) {
    throw std::invalid_argument("OperatorConfig: bad sizing inclination");
  }
  if (config.plan.name.empty()) {
    throw std::invalid_argument("OperatorConfig: unnamed service plan");
  }
  require_finite(config.plan.monthly_usd, "plan price");
  if (config.plan.monthly_usd < 0.0) {
    throw std::invalid_argument("OperatorConfig: negative plan price");
  }
  // annual_cost_usd(0) exercises every cost-parameter check.
  (void)config.costs.annual_cost_usd(0.0);
}

OperatorConfig starlink_operator() {
  OperatorConfig config;
  config.name = "starlink";
  config.shells = orbit::starlink_gen1().shells();
  config.bands = spectrum::starlink_schedule_s().bands();
  config.beams_per_full_cell = 4;
  config.spectral_efficiency_bps_hz = spectrum::kPaperSpectralEfficiency;
  config.sizing_inclination_deg = 53.0;
  config.plan = afford::starlink_residential();
  config.costs = OperatorCosts{.satellite_capex_usd = 500'000.0,
                               .launch_capex_usd = 250'000.0,
                               .ground_capex_usd = 150e6,
                               .satellite_lifetime_years = 5.0,
                               .annual_opex_fraction = 0.08};
  return config;
}

OperatorConfig oneweb_operator() {
  OperatorConfig config;
  config.name = "oneweb";
  config.shells = {{.inclination_deg = 87.9,
                    .altitude_km = 1200.0,
                    .planes = 12,
                    .sats_per_plane = 49,
                    .phasing = 1}};
  config.bands = {{.name = "10.7-12.7 GHz",
                   .lo_ghz = 10.70,
                   .hi_ghz = 12.70,
                   .beams = 16,
                   .usage = spectrum::BeamUsage::kUserDownlink},
                  {.name = "17.8-18.6 GHz",
                   .lo_ghz = 17.80,
                   .hi_ghz = 18.60,
                   .beams = 4,
                   .usage = spectrum::BeamUsage::kGatewayDownlink}};
  config.beams_per_full_cell = 2;
  config.spectral_efficiency_bps_hz = 3.5;
  config.sizing_inclination_deg = 87.9;
  config.plan = afford::ServicePlan{
      .name = "oneweb_community",
      .monthly_usd = 99.0,
      .speeds = {.down_mbps = 150.0, .up_mbps = 20.0}};
  config.costs = OperatorCosts{.satellite_capex_usd = 1'000'000.0,
                               .launch_capex_usd = 600'000.0,
                               .ground_capex_usd = 80e6,
                               .satellite_lifetime_years = 7.0,
                               .annual_opex_fraction = 0.10};
  return config;
}

OperatorConfig kuiper_operator() {
  OperatorConfig config;
  config.name = "kuiper";
  config.shells = {{.inclination_deg = 51.9,
                    .altitude_km = 630.0,
                    .planes = 34,
                    .sats_per_plane = 34,
                    .phasing = 1},
                   {.inclination_deg = 42.0,
                    .altitude_km = 610.0,
                    .planes = 36,
                    .sats_per_plane = 36,
                    .phasing = 1},
                   {.inclination_deg = 33.0,
                    .altitude_km = 590.0,
                    .planes = 28,
                    .sats_per_plane = 28,
                    .phasing = 1}};
  config.bands = {{.name = "17.7-18.6 GHz",
                   .lo_ghz = 17.70,
                   .hi_ghz = 18.60,
                   .beams = 8,
                   .usage = spectrum::BeamUsage::kUserDownlink},
                  {.name = "18.8-19.3 GHz",
                   .lo_ghz = 18.80,
                   .hi_ghz = 19.30,
                   .beams = 4,
                   .usage = spectrum::BeamUsage::kUserDownlink},
                  {.name = "19.7-20.2 GHz",
                   .lo_ghz = 19.70,
                   .hi_ghz = 20.20,
                   .beams = 4,
                   .usage = spectrum::BeamUsage::kUserDownlink}};
  config.beams_per_full_cell = 3;
  config.spectral_efficiency_bps_hz = 4.2;
  config.sizing_inclination_deg = 51.9;
  config.plan = afford::ServicePlan{
      .name = "kuiper_residential",
      .monthly_usd = 80.0,
      .speeds = {.down_mbps = 400.0, .up_mbps = 20.0}};
  config.costs = OperatorCosts{.satellite_capex_usd = 750'000.0,
                               .launch_capex_usd = 400'000.0,
                               .ground_capex_usd = 120e6,
                               .satellite_lifetime_years = 7.0,
                               .annual_opex_fraction = 0.09};
  return config;
}

std::vector<OperatorConfig> default_market() {
  return {starlink_operator(), oneweb_operator(), kuiper_operator()};
}

}  // namespace leodivide::market
