#pragma once
// One LEO market participant. The paper's pipeline models Starlink alone;
// the real market is Starlink, OneWeb and Kuiper competing over shared
// Ku/Ka spectrum. An OperatorConfig bundles everything the existing
// pipeline needs to size and price one of them: a Walker shell set
// (orbit/shells), a Schedule-S style band table (spectrum/band), beam-plan
// parameters, a retail plan (afford/plan), and the capex/opex cost inputs
// following the Osoro-Oughton techno-economic decomposition
// (arXiv 2108.10834), which costs exactly these three constellations.

#include <cstdint>
#include <string>
#include <vector>

#include "leodivide/afford/plan.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/orbit/shells.hpp"
#include "leodivide/spectrum/band.hpp"

namespace leodivide::market {

/// Per-operator cost inputs, following the arXiv 2108.10834 decomposition:
/// space-segment capex per satellite (manufacture + launch), a fleet-wide
/// ground-segment capex, straight-line depreciation over the satellite
/// lifetime, and annual opex as a fraction of total capex.
struct OperatorCosts {
  double satellite_capex_usd = 500'000.0;  ///< manufacture, per satellite
  double launch_capex_usd = 250'000.0;     ///< launch share, per satellite
  double ground_capex_usd = 100e6;         ///< gateways + ops, fleet-wide
  double satellite_lifetime_years = 5.0;   ///< depreciation horizon
  double annual_opex_fraction = 0.10;      ///< of total capex, per year

  /// Annualised cost of a fleet of `satellites`: total capex depreciated
  /// over the satellite lifetime plus the annual opex fraction of that
  /// capex. Throws std::invalid_argument on a negative fleet or
  /// non-finite / non-positive cost parameters.
  [[nodiscard]] double annual_cost_usd(double satellites) const;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const OperatorCosts&, const OperatorCosts&) = default;
};

/// One market participant.
struct OperatorConfig {
  std::string name;
  std::vector<orbit::WalkerShell> shells;  ///< deployed Walker shells
  std::vector<spectrum::Band> bands;       ///< Schedule-S style band table
  std::uint32_t beams_per_full_cell = 4;
  double spectral_efficiency_bps_hz = spectrum::kPaperSpectralEfficiency;

  /// Inclination the single-inclination sizing abstraction uses; must be at
  /// least the highest latitude of the region under study (CONUS: ~49.4 N)
  /// or coverage_units() has no solution at the binding cell.
  double sizing_inclination_deg = 53.0;

  afford::ServicePlan plan;  ///< retail plan priced against afford/
  OperatorCosts costs;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const OperatorConfig&,
                         const OperatorConfig&) = default;

  [[nodiscard]] orbit::MultiShellConstellation constellation() const;

  /// The operator's full spectrum plan. Throws std::invalid_argument on an
  /// empty or malformed band table (SpectrumPlan validates).
  [[nodiscard]] spectrum::SpectrumPlan spectrum() const;

  /// Sizing model over the operator's full spectrum. With the Starlink
  /// preset this is bit-identical to the default core::SizingModel{}, so
  /// the market layer is a strict generalization of the single-operator
  /// pipeline.
  [[nodiscard]] core::SizingModel sizing_model() const;

  /// Sizing model with every user-downlink-capable band's width scaled by
  /// `spectrum_share` in (0, 1] — the per-cell capacity an operator keeps
  /// under a spectrum split. A share of exactly 1.0 returns the unscaled
  /// model (bit-identical, no rescaling round-off). Throws
  /// std::invalid_argument for shares outside (0, 1].
  [[nodiscard]] core::SizingModel sizing_model(double spectrum_share) const;
};

/// Validates one operator config: non-empty name, at least one shell, a
/// well-formed band table with positive user-downlink spectrum, positive
/// beam/efficiency parameters, finite non-negative plan price, and finite
/// positive cost parameters. Throws std::invalid_argument.
void validate(const OperatorConfig& config);

/// Starlink preset: Gen1 shells, the paper's Schedule-S table and beam
/// plan, the $120/mo residential plan. Its sizing_model() reproduces the
/// default core::SizingModel{} bit-for-bit.
[[nodiscard]] OperatorConfig starlink_operator();

/// OneWeb preset: polar Ku constellation (87.9 deg / 1200 km), Ku user
/// downlink overlapping Starlink's 10.7-12.7 GHz.
[[nodiscard]] OperatorConfig oneweb_operator();

/// Kuiper preset: three mid-inclination shells, Ka user downlink
/// (17.7-20.2 GHz) overlapping Starlink's Ka bands.
[[nodiscard]] OperatorConfig kuiper_operator();

/// The three-operator market the presets describe, Starlink first.
[[nodiscard]] std::vector<OperatorConfig> default_market();

}  // namespace leodivide::market
