#pragma once
// Multi-operator spectrum sharing. When several operators' Schedule-S
// tables overlap (Starlink and OneWeb both claim 10.7-12.7 GHz Ku;
// Starlink and Kuiper share the Ka downlink bands), a sharing regime
// decides how much of its filed user-downlink spectrum each operator can
// actually energise over a cell. Three policies:
//
//   * kExclusive     — the regulatory fiction the paper implicitly assumes:
//                      every operator uses its full table everywhere.
//   * kProportional  — each contested slice is divided equally among its
//                      claimants, everywhere (a static coordination split).
//   * kFairShare     — a FairShare-style geographic split (arXiv
//                      2601.09641): latitude zones rotate priority among
//                      the operators; in its priority zones an operator
//                      takes `priority_weight` of each contested slice it
//                      claims, the rest is divided among the other
//                      claimants.
//
// The resulting share — the usable fraction of an operator's user-downlink
// spectrum — depends only on (operator, zone-priority operator), so the
// whole policy reduces to an n x n share matrix computed once from the
// elementary intervals of the overlapping band tables.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "leodivide/market/operator.hpp"

namespace leodivide::market {

/// How contested spectrum is divided among claimants.
enum class SplitPolicy : std::uint8_t {
  kExclusive = 0,
  kProportional = 1,
  kFairShare = 2,
};

[[nodiscard]] std::string_view to_string(SplitPolicy policy) noexcept;

/// Parses "exclusive" / "proportional" / "fairshare"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] SplitPolicy split_policy_from_string(std::string_view name);

/// Sharing-regime parameters.
struct SpectrumSplitConfig {
  SplitPolicy policy = SplitPolicy::kExclusive;

  /// FairShare latitude-zone height [deg]; zone k spans
  /// [-90 + k*zone_deg, -90 + (k+1)*zone_deg) and has priority operator
  /// k mod n.
  double zone_deg = 5.0;

  /// FairShare: fraction of a contested slice the zone's priority operator
  /// takes when it is a claimant, in [0, 1]. At 1.0 the other claimants
  /// get nothing there (their share may reach zero — such cells are simply
  /// unservable by them).
  double priority_weight = 0.7;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const SpectrumSplitConfig&,
                         const SpectrumSplitConfig&) = default;
};

/// Validates policy parameters; throws std::invalid_argument.
void validate(const SpectrumSplitConfig& config);

/// The resolved share matrix for one operator set under one policy.
class SpectrumSplit {
 public:
  /// Computes the shares from the operators' user-downlink-capable bands.
  /// Every operator must pass market::validate (positive user spectrum).
  SpectrumSplit(const std::vector<OperatorConfig>& operators,
                SpectrumSplitConfig config);

  [[nodiscard]] const SpectrumSplitConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t operator_count() const noexcept { return n_; }

  /// Priority operator of the latitude's zone (kFairShare rotation). The
  /// other policies are zone-independent; 0 is returned so callers can use
  /// a single code path.
  [[nodiscard]] std::size_t priority_operator(double lat_deg) const;

  /// Usable fraction of operator `op`'s user-downlink spectrum when
  /// `priority_op` holds zone priority, in [0, 1].
  [[nodiscard]] double share(std::size_t op, std::size_t priority_op) const;

  /// share() at a concrete latitude.
  [[nodiscard]] double share_at(std::size_t op, double lat_deg) const;

  /// Whether `op`'s share is the same in every zone (always true for
  /// kExclusive / kProportional; true under kFairShare iff none of the
  /// operator's spectrum is contested).
  [[nodiscard]] bool uniform(std::size_t op) const;

  /// Zone-averaged share — the single number the economic ($/location-year)
  /// curves use for an operator under a geographic split. Equals share(op,
  /// 0) exactly for uniform operators.
  [[nodiscard]] double economic_share(std::size_t op) const;

 private:
  SpectrumSplitConfig config_;
  std::size_t n_ = 0;
  std::vector<double> matrix_;        ///< n*n, [op * n_ + priority_op]
  std::vector<bool> has_contested_;   ///< per op: claims a shared slice
};

}  // namespace leodivide::market
