#include "leodivide/market/fairness.hpp"

#include <cmath>
#include <stdexcept>

namespace leodivide::market {

double jain_index(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    if (!std::isfinite(x) || x < 0.0) {
      throw std::invalid_argument("jain_index: negative or non-finite entry");
    }
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;  // all-zero: trivially equal
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace leodivide::market
