#pragma once
// Market-level fairness accounting: who serves which cell, how evenly
// service is distributed across operators (Jain's index), and why the
// remaining unserved cells are unserved — a capacity limit no operator
// could overcome even with its full spectrum, or a casualty of the
// sharing regime itself.

#include <cstdint>
#include <vector>

namespace leodivide::market {

/// Per-operator service tallies over one profile.
struct OperatorFairness {
  std::uint64_t cells_won = 0;   ///< cells where this operator is the winner
  std::uint64_t cells_served = 0;      ///< cells it can serve at all
  std::uint64_t locations_served = 0;  ///< locations in its served cells

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const OperatorFairness&,
                         const OperatorFairness&) = default;
};

/// Market fairness over one profile under one sharing regime.
struct FairnessReport {
  /// Per cell (profile order): index of the winning operator — the serving
  /// operator with the most capacity headroom, earliest index on exact
  /// ties — or -1 when no operator serves the cell.
  std::vector<std::int32_t> winner;

  std::vector<OperatorFairness> operators;  ///< config order

  /// Jain's index over per-operator locations_served: 1.0 when the market
  /// splits evenly, 1/n when one operator serves everything.
  double jain_served_locations = 0.0;

  std::uint64_t unserved_cells = 0;
  std::uint64_t unserved_locations = 0;

  /// Unserved because no operator could serve the cell even with its full
  /// (unsplit) spectrum — the paper's capacity wall.
  std::uint64_t capacity_limited_cells = 0;

  /// Unserved only because of the sharing regime: some operator could have
  /// served the cell with its full spectrum but none can with its split
  /// share.
  std::uint64_t split_limited_cells = 0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const FairnessReport&,
                         const FairnessReport&) = default;
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
/// allocations: 1.0 when all equal, 1/n when one participant takes all.
/// Defined as 1.0 for an all-zero vector (trivially equal) and 0.0 for an
/// empty one. Throws std::invalid_argument on negative or non-finite
/// entries.
[[nodiscard]] double jain_index(const std::vector<double>& allocations);

}  // namespace leodivide::market
