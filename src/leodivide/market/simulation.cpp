#include "leodivide/market/simulation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "leodivide/core/beamspread.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/runtime/map_reduce.hpp"
#include "leodivide/runtime/task_graph.hpp"

namespace leodivide::market {

void validate(const MarketConfig& config) {
  if (config.operators.empty()) {
    throw std::invalid_argument("MarketConfig: no operators");
  }
  for (std::size_t i = 0; i < config.operators.size(); ++i) {
    validate(config.operators[i]);
    for (std::size_t j = i + 1; j < config.operators.size(); ++j) {
      if (config.operators[i].name == config.operators[j].name) {
        throw std::invalid_argument("MarketConfig: duplicate operator name \"" +
                                    config.operators[i].name + "\"");
      }
    }
  }
  validate(config.split);
  if (!std::isfinite(config.beamspread) || config.beamspread < 1.0) {
    throw std::invalid_argument("MarketConfig: beamspread must be >= 1");
  }
  if (!std::isfinite(config.oversub_cap) || config.oversub_cap <= 0.0) {
    throw std::invalid_argument("MarketConfig: oversub_cap must be > 0");
  }
}

namespace {

/// Per-(operator, priority-zone) capacity state. Absent when the split
/// leaves the operator no spectrum in that zone.
struct ZoneModel {
  core::SizingModel model;
  std::uint32_t cap_locs = 0;      ///< per-cell cap at oversub_cap
  std::uint32_t served_limit = 0;  ///< Figure-2 served criterion limit
};

using ZoneModels = std::vector<std::optional<ZoneModel>>;

bool is_one(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v) == std::bit_cast<std::uint64_t>(1.0);
}

ZoneModels zone_models(const OperatorConfig& op, const SpectrumSplit& split,
                       std::size_t index, double beamspread,
                       double oversub_cap) {
  ZoneModels zones(split.operator_count());
  for (std::size_t p = 0; p < split.operator_count(); ++p) {
    const double share = split.share(index, p);
    if (share <= 0.0) continue;
    ZoneModel zone;
    zone.model = op.sizing_model(share);
    zone.cap_locs = zone.model.capacity.max_locations_at(oversub_cap);
    zone.served_limit =
        core::max_locations_spread(zone.model.capacity, beamspread,
                                   oversub_cap);
    zones[p] = std::move(zone);
  }
  return zones;
}

/// core::size_with_cap generalized to a per-cell (zone) capacity model.
/// Mirrors its shard algebra, grain and tie-breaks exactly, so a uniform
/// full share reproduces the core result bit-for-bit.
core::SizingResult scaled_size_with_cap(const demand::DemandProfile& profile,
                                        const ZoneModels& zones,
                                        const SpectrumSplit& split,
                                        double beamspread, double oversub_cap,
                                        runtime::Executor& executor) {
  struct Shard {
    core::SizingResult best;
    bool found = false;
  };
  const Shard reduced = runtime::map_reduce<Shard>(
      executor, 0, profile.cell_count(),
      [&profile, &zones, &split, beamspread, oversub_cap](
          Shard& shard, std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& cell = profile.cells()[i];
          const auto& zone =
              zones[split.priority_operator(cell.center.lat_deg)];
          if (!zone) continue;  // no spectrum here: the cell cannot bind
          const std::uint32_t served =
              std::min(cell.underserved, zone->cap_locs);
          const std::uint32_t beams =
              zone->model.capacity.beams_needed(served, oversub_cap);
          if (beams < 2) continue;  // demand-driven binding needs >= 2 beams
          const double sats = core::satellites_for_binding_cell(
              zone->model, cell.center.lat_deg, beamspread, beams);
          if (!shard.found || sats > shard.best.satellites) {
            shard.found = true;
            shard.best.satellites = sats;
            shard.best.binding_lat_deg = cell.center.lat_deg;
            shard.best.beams_on_binding = beams;
            shard.best.binding_cell_index = i;
          }
        }
      },
      [](Shard& into, Shard&& from) {
        if (from.found &&
            (!into.found || from.best.satellites > into.best.satellites)) {
          into = from;
        }
      },
      /*grain=*/1024);
  if (reduced.found) return reduced.best;
  // No cell needs more than one beam: the largest cell with any usable
  // spectrum binds with a single beam (core's fallback, zone-aware).
  for (std::size_t i : profile.cells_by_count_desc()) {
    const auto& cell = profile.cells()[i];
    const auto& zone = zones[split.priority_operator(cell.center.lat_deg)];
    if (!zone) continue;
    core::SizingResult best;
    best.binding_cell_index = i;
    best.binding_lat_deg = cell.center.lat_deg;
    best.beams_on_binding = 1;
    best.satellites = core::satellites_for_binding_cell(
        zone->model, best.binding_lat_deg, beamspread, 1);
    return best;
  }
  throw std::invalid_argument(
      "market: operator has no usable spectrum over the profile");
}

OperatorOutcome run_operator(const demand::DemandProfile& profile,
                             const afford::AffordabilityAnalyzer& analyzer,
                             const SpectrumSplit& split,
                             const MarketConfig& config,
                             const ZoneModels& zones, std::size_t index,
                             runtime::Executor& inner) {
  const OperatorConfig& op = config.operators[index];
  OperatorOutcome out;
  out.name = op.name;
  out.economic_share = split.economic_share(index);
  const core::SizingModel model = op.sizing_model();
  out.full = core::size_full_service(profile, model, config.beamspread);
  if (split.uniform(index) && is_one(split.share(index, 0))) {
    // Full spectrum everywhere: delegate to the single-operator pipeline —
    // this is the strict-generalization guarantee the golden tests pin.
    out.capped = core::size_with_cap(profile, model, config.beamspread,
                                     config.oversub_cap, inner);
  } else {
    out.capped = scaled_size_with_cap(profile, zones, split, config.beamspread,
                                      config.oversub_cap, inner);
  }
  // Served fractions, mirroring core::served_cell_fraction /
  // served_location_fraction with the per-zone limit.
  {
    std::size_t served_cells = 0;
    std::uint64_t served_locations = 0;
    for (const auto& cell : profile.cells()) {
      const auto& zone = zones[split.priority_operator(cell.center.lat_deg)];
      const std::uint32_t limit = zone ? zone->served_limit : 0;
      if (cell.underserved <= limit) {
        ++served_cells;
        served_locations += cell.underserved;
      }
    }
    out.served_cell_fraction = static_cast<double>(served_cells) /
                               static_cast<double>(profile.cell_count());
    const std::uint64_t total = profile.total_locations();
    out.served_location_fraction =
        total == 0 ? 1.0
                   : static_cast<double>(served_locations) /
                         static_cast<double>(total);
  }
  const core::SizingModel econ = op.sizing_model(out.economic_share);
  out.longtail = core::longtail_curve(profile, econ, config.beamspread,
                                      config.oversub_cap);
  // $/location-year curve, fewest served first (core::longtail_economics
  // order) with the operator's own capex/opex decomposition.
  std::vector<core::LongTailPoint> ordered = out.longtail;
  std::sort(ordered.begin(), ordered.end(),
            [](const core::LongTailPoint& a, const core::LongTailPoint& b) {
              return a.locations_unserved > b.locations_unserved;
            });
  const std::uint64_t total = profile.total_locations();
  out.cost_curve.reserve(ordered.size());
  for (const core::LongTailPoint& p : ordered) {
    MarketCostPoint c;
    c.locations_unserved = p.locations_unserved;
    c.satellites = p.satellites;
    c.annual_cost_usd = op.costs.annual_cost_usd(p.satellites);
    c.locations_served = total > p.locations_unserved
                             ? total - p.locations_unserved
                             : 0;
    c.cost_per_location_year_usd =
        c.locations_served == 0
            ? 0.0
            : c.annual_cost_usd / static_cast<double>(c.locations_served);
    out.cost_curve.push_back(c);
  }
  out.affordability = analyzer.evaluate(op.plan);
  return out;
}

FairnessReport compute_fairness(const demand::DemandProfile& profile,
                                const std::vector<ZoneModels>& zones,
                                const std::vector<std::uint32_t>& full_limits,
                                const SpectrumSplit& split,
                                runtime::Executor& executor) {
  const std::size_t n = split.operator_count();
  struct Shard {
    std::vector<std::int32_t> winner;  // ordered concat across shards
    std::vector<OperatorFairness> ops;
    std::uint64_t unserved_cells = 0;
    std::uint64_t unserved_locations = 0;
    std::uint64_t capacity_limited = 0;
    std::uint64_t split_limited = 0;
  };
  Shard reduced = runtime::map_reduce<Shard>(
      executor, 0, profile.cell_count(),
      [&profile, &zones, &full_limits, &split, n](
          Shard& shard, std::size_t lo, std::size_t hi, std::size_t) {
        if (shard.ops.size() != n) shard.ops.assign(n, OperatorFairness{});
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& cell = profile.cells()[i];
          const std::size_t p = split.priority_operator(cell.center.lat_deg);
          std::int32_t win = -1;
          std::uint32_t win_limit = 0;
          for (std::size_t o = 0; o < n; ++o) {
            const auto& zone = zones[o][p];
            const std::uint32_t limit = zone ? zone->served_limit : 0;
            if (cell.underserved > limit) continue;
            ++shard.ops[o].cells_served;
            shard.ops[o].locations_served += cell.underserved;
            // Winner: most capacity headroom; earliest index on exact ties.
            if (win < 0 || limit > win_limit) {
              win = static_cast<std::int32_t>(o);
              win_limit = limit;
            }
          }
          shard.winner.push_back(win);
          if (win >= 0) {
            ++shard.ops[static_cast<std::size_t>(win)].cells_won;
          } else {
            ++shard.unserved_cells;
            shard.unserved_locations += cell.underserved;
            bool full_spectrum_could = false;
            for (std::size_t o = 0; o < n; ++o) {
              if (cell.underserved <= full_limits[o]) {
                full_spectrum_could = true;
                break;
              }
            }
            if (full_spectrum_could) {
              ++shard.split_limited;
            } else {
              ++shard.capacity_limited;
            }
          }
        }
      },
      [n](Shard& into, Shard&& from) {
        if (into.ops.size() != n) into.ops.assign(n, OperatorFairness{});
        if (from.ops.size() != n) from.ops.assign(n, OperatorFairness{});
        into.winner.insert(into.winner.end(), from.winner.begin(),
                           from.winner.end());
        for (std::size_t o = 0; o < n; ++o) {
          into.ops[o].cells_won += from.ops[o].cells_won;
          into.ops[o].cells_served += from.ops[o].cells_served;
          into.ops[o].locations_served += from.ops[o].locations_served;
        }
        into.unserved_cells += from.unserved_cells;
        into.unserved_locations += from.unserved_locations;
        into.capacity_limited += from.capacity_limited;
        into.split_limited += from.split_limited;
      },
      /*grain=*/1024);
  if (reduced.ops.size() != n) reduced.ops.assign(n, OperatorFairness{});
  FairnessReport report;
  report.winner = std::move(reduced.winner);
  report.operators = std::move(reduced.ops);
  std::vector<double> served;
  served.reserve(n);
  for (const OperatorFairness& f : report.operators) {
    served.push_back(static_cast<double>(f.locations_served));
  }
  report.jain_served_locations = jain_index(served);
  report.unserved_cells = reduced.unserved_cells;
  report.unserved_locations = reduced.unserved_locations;
  report.capacity_limited_cells = reduced.capacity_limited;
  report.split_limited_cells = reduced.split_limited;
  return report;
}

}  // namespace

MarketSimulation::MarketSimulation(MarketConfig config)
    : config_(std::move(config)) {
  validate(config_);
}

MarketReport MarketSimulation::run(const demand::DemandProfile& profile,
                                   runtime::Executor& executor) const {
  if (profile.cell_count() == 0) {
    throw std::invalid_argument("MarketSimulation: empty profile");
  }
  const obs::Span span("market.run");
  const std::size_t n = config_.operators.size();
  const SpectrumSplit split(config_.operators, config_.split);
  const afford::AffordabilityAnalyzer analyzer(profile);
  std::vector<ZoneModels> zones;
  std::vector<std::uint32_t> full_limits;
  zones.reserve(n);
  full_limits.reserve(n);
  for (std::size_t o = 0; o < n; ++o) {
    zones.push_back(zone_models(config_.operators[o], split, o,
                                config_.beamspread, config_.oversub_cap));
    full_limits.push_back(core::max_locations_spread(
        config_.operators[o].sizing_model().capacity, config_.beamspread,
        config_.oversub_cap));
  }
  MarketReport report;
  report.policy = config_.split.policy;
  report.beamspread = config_.beamspread;
  report.oversub_cap = config_.oversub_cap;
  report.operators.resize(n);
  // Operators are independent of each other *and* of the fairness report —
  // fairness depends only on the zone models, limits and split, never on
  // operator outcomes — so all n + 1 units run as one dependency-free task
  // graph: on a pool the fairness pass overlaps the operator pipelines
  // instead of barriering behind them. Each node runs its inner loops
  // serially and writes only its own slot, so the report lands in config
  // order byte-identically at every thread count (golden-tested).
  runtime::TaskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    graph.add_task("market.operator",
                   [&report, &profile, &analyzer, &split, &zones, this, i] {
                     report.operators[i] =
                         run_operator(profile, analyzer, split, config_,
                                      zones[i], i, runtime::serial_executor());
                   });
  }
  graph.add_task("market.fairness",
                 [&report, &profile, &zones, &full_limits, &split] {
                   report.fairness =
                       compute_fairness(profile, zones, full_limits, split,
                                        runtime::serial_executor());
                 });
  graph.run(executor);
  return report;
}

MarketReport MarketSimulation::run(const demand::DemandProfile& profile) const {
  return run(profile, runtime::global_executor());
}

}  // namespace leodivide::market
