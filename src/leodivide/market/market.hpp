#pragma once
// Umbrella header for the market subsystem: operators (operator.hpp),
// spectrum sharing (split.hpp), fairness accounting (fairness.hpp), the
// market driver (simulation.hpp) and console rendering (report.hpp).

#include "leodivide/market/fairness.hpp"
#include "leodivide/market/operator.hpp"
#include "leodivide/market/report.hpp"
#include "leodivide/market/simulation.hpp"
#include "leodivide/market/split.hpp"
