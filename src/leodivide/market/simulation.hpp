#pragma once
// The multi-operator market simulator: runs the paper's sizing ->
// affordability pipeline once per operator under a shared-spectrum regime
// and adds the market-level outputs the single-operator pipeline cannot
// produce — per-cell winner maps, Jain-style served-fraction fairness, and
// unserved-cell attribution (capacity wall vs sharing-regime casualty).
//
// Determinism contract (PR 1-8 conventions): operators are evaluated as
// independent tasks over a runtime::Executor and merged in config order;
// the per-cell scans are sharded first-strict-max / ordered-concat
// map_reduce reductions. The report is byte-identical for every thread
// count, and a single-operator Starlink market under the exclusive policy
// reproduces the existing core/ + afford/ pipeline bit-for-bit.

#include <cstdint>
#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/longtail.hpp"
#include "leodivide/core/oversubscription.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/dataset.hpp"
#include "leodivide/market/fairness.hpp"
#include "leodivide/market/operator.hpp"
#include "leodivide/market/split.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::market {

/// One market scenario.
struct MarketConfig {
  std::vector<OperatorConfig> operators;
  SpectrumSplitConfig split;
  double beamspread = 10.0;
  double oversub_cap = core::kFccOversubscriptionCap;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const MarketConfig&, const MarketConfig&) = default;
};

/// Validates a scenario: at least one operator, unique non-empty names,
/// every operator valid (market::validate), a valid split config,
/// beamspread >= 1 and oversub_cap > 0. Throws std::invalid_argument.
void validate(const MarketConfig& config);

/// One $/location-year point, from the operator's long-tail curve and its
/// Osoro-Oughton cost inputs.
struct MarketCostPoint {
  std::uint64_t locations_unserved = 0;
  double satellites = 0.0;
  double annual_cost_usd = 0.0;
  std::uint64_t locations_served = 0;
  double cost_per_location_year_usd = 0.0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const MarketCostPoint&,
                         const MarketCostPoint&) = default;
};

/// Everything the pipeline produces for one operator under the split.
struct OperatorOutcome {
  std::string name;

  /// Usable fraction of the operator's user-downlink spectrum feeding the
  /// economic curves (zone-averaged under kFairShare).
  double economic_share = 0.0;

  core::SizingResult full;    ///< full-service sizing (spectrum-independent)
  core::SizingResult capped;  ///< cap-bounded sizing under the split
  double served_cell_fraction = 0.0;
  double served_location_fraction = 0.0;
  std::vector<core::LongTailPoint> longtail;  ///< at the economic share
  std::vector<MarketCostPoint> cost_curve;    ///< fewest-served first
  afford::PlanAffordability affordability;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const OperatorOutcome&,
                         const OperatorOutcome&) = default;
};

/// The market-level result.
struct MarketReport {
  SplitPolicy policy = SplitPolicy::kExclusive;
  double beamspread = 0.0;
  double oversub_cap = 0.0;
  std::vector<OperatorOutcome> operators;  ///< config order
  FairnessReport fairness;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const MarketReport&, const MarketReport&) = default;
};

/// Driver. Construction validates the scenario (throws
/// std::invalid_argument); run() is const and reusable across profiles.
class MarketSimulation {
 public:
  explicit MarketSimulation(MarketConfig config);

  [[nodiscard]] const MarketConfig& config() const noexcept { return config_; }

  /// Runs every operator's pipeline (as executor tasks, merged in config
  /// order) and the fairness scans. Byte-identical for every executor
  /// concurrency. Throws std::invalid_argument on an empty profile and
  /// whatever the underlying pipeline throws (e.g. no un(der)served
  /// locations for the affordability view).
  [[nodiscard]] MarketReport run(const demand::DemandProfile& profile,
                                 runtime::Executor& executor) const;

  /// As above, on the process-global executor (LEODIVIDE_THREADS).
  [[nodiscard]] MarketReport run(const demand::DemandProfile& profile) const;

 private:
  MarketConfig config_;
};

}  // namespace leodivide::market
