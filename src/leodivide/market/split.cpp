#include "leodivide/market/split.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leodivide::market {

std::string_view to_string(SplitPolicy policy) noexcept {
  switch (policy) {
    case SplitPolicy::kExclusive: return "exclusive";
    case SplitPolicy::kProportional: return "proportional";
    case SplitPolicy::kFairShare: return "fairshare";
  }
  return "unknown";
}

SplitPolicy split_policy_from_string(std::string_view name) {
  if (name == "exclusive") return SplitPolicy::kExclusive;
  if (name == "proportional") return SplitPolicy::kProportional;
  if (name == "fairshare") return SplitPolicy::kFairShare;
  throw std::invalid_argument("unknown split policy: " + std::string(name));
}

void validate(const SpectrumSplitConfig& config) {
  if (config.policy != SplitPolicy::kExclusive &&
      config.policy != SplitPolicy::kProportional &&
      config.policy != SplitPolicy::kFairShare) {
    throw std::invalid_argument("SpectrumSplitConfig: unknown policy");
  }
  if (!std::isfinite(config.zone_deg) || config.zone_deg <= 0.0 ||
      config.zone_deg > 180.0) {
    throw std::invalid_argument("SpectrumSplitConfig: zone_deg outside "
                                "(0, 180]");
  }
  if (!std::isfinite(config.priority_weight) ||
      config.priority_weight < 0.0 || config.priority_weight > 1.0) {
    throw std::invalid_argument(
        "SpectrumSplitConfig: priority_weight outside [0, 1]");
  }
}

namespace {

bool user_downlink_capable(const spectrum::Band& band) noexcept {
  return band.usage == spectrum::BeamUsage::kUserDownlink ||
         band.usage == spectrum::BeamUsage::kUserOrGatewayDownlink;
}

}  // namespace

SpectrumSplit::SpectrumSplit(const std::vector<OperatorConfig>& operators,
                             SpectrumSplitConfig config)
    : config_(config), n_(operators.size()) {
  validate(config_);
  if (n_ == 0) {
    throw std::invalid_argument("SpectrumSplit: no operators");
  }
  // Elementary-interval sweep over every operator's user-downlink band
  // edges: between two adjacent edges the claimant set is constant, so
  // each elementary interval is credited whole.
  std::vector<double> edges;
  for (const OperatorConfig& op : operators) {
    for (const spectrum::Band& band : op.bands) {
      if (!user_downlink_capable(band)) continue;
      edges.push_back(band.lo_ghz);
      edges.push_back(band.hi_ghz);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // usable[op][p]: MHz operator `op` keeps when `p` has zone priority.
  std::vector<double> total(n_, 0.0);
  std::vector<std::vector<double>> usable(
      n_, std::vector<double>(n_, 0.0));
  has_contested_.assign(n_, false);
  std::vector<std::size_t> claimants;
  for (std::size_t e = 0; e + 1 < edges.size(); ++e) {
    const double lo = edges[e];
    const double hi = edges[e + 1];
    const double mid = lo + (hi - lo) / 2.0;
    const double width_mhz = (hi - lo) * 1000.0;
    claimants.clear();
    for (std::size_t o = 0; o < n_; ++o) {
      for (const spectrum::Band& band : operators[o].bands) {
        if (user_downlink_capable(band) && band.lo_ghz <= mid &&
            mid < band.hi_ghz) {
          claimants.push_back(o);
          break;
        }
      }
    }
    if (claimants.empty()) continue;
    const double k = static_cast<double>(claimants.size());
    for (std::size_t o : claimants) {
      total[o] += width_mhz;
      if (claimants.size() > 1) has_contested_[o] = true;
    }
    for (std::size_t p = 0; p < n_; ++p) {
      const bool priority_claims =
          std::find(claimants.begin(), claimants.end(), p) != claimants.end();
      for (std::size_t o : claimants) {
        double credit = 0.0;
        switch (config_.policy) {
          case SplitPolicy::kExclusive:
            credit = width_mhz;
            break;
          case SplitPolicy::kProportional:
            credit = width_mhz / k;
            break;
          case SplitPolicy::kFairShare:
            if (claimants.size() == 1) {
              credit = width_mhz;  // uncontested: claimant keeps it whole
            } else if (!priority_claims) {
              credit = width_mhz / k;  // priority absent: equal split
            } else if (o == p) {
              credit = width_mhz * config_.priority_weight;
            } else {
              credit = width_mhz * (1.0 - config_.priority_weight) / (k - 1.0);
            }
            break;
        }
        usable[o][p] += credit;
      }
    }
  }

  matrix_.assign(n_ * n_, 0.0);
  for (std::size_t o = 0; o < n_; ++o) {
    if (total[o] <= 0.0) {
      throw std::invalid_argument("SpectrumSplit: operator \"" +
                                  operators[o].name +
                                  "\" has no user-downlink spectrum");
    }
    for (std::size_t p = 0; p < n_; ++p) {
      matrix_[o * n_ + p] = usable[o][p] / total[o];
    }
  }
}

std::size_t SpectrumSplit::priority_operator(double lat_deg) const {
  if (config_.policy != SplitPolicy::kFairShare) return 0;
  if (!std::isfinite(lat_deg) || lat_deg < -90.0 || lat_deg > 90.0) {
    throw std::invalid_argument("priority_operator: latitude outside "
                                "[-90, 90]");
  }
  const auto zone = static_cast<std::size_t>(
      std::floor((lat_deg + 90.0) / config_.zone_deg));
  return zone % n_;
}

double SpectrumSplit::share(std::size_t op, std::size_t priority_op) const {
  if (op >= n_ || priority_op >= n_) {
    throw std::out_of_range("SpectrumSplit::share: index out of range");
  }
  return matrix_[op * n_ + priority_op];
}

double SpectrumSplit::share_at(std::size_t op, double lat_deg) const {
  return share(op, priority_operator(lat_deg));
}

bool SpectrumSplit::uniform(std::size_t op) const {
  if (op >= n_) {
    throw std::out_of_range("SpectrumSplit::uniform: index out of range");
  }
  return config_.policy != SplitPolicy::kFairShare || !has_contested_[op];
}

double SpectrumSplit::economic_share(std::size_t op) const {
  if (op >= n_) {
    throw std::out_of_range("SpectrumSplit::economic_share: out of range");
  }
  if (uniform(op)) return matrix_[op * n_];  // exact: no averaging round-off
  double sum = 0.0;
  for (std::size_t p = 0; p < n_; ++p) sum += matrix_[op * n_ + p];
  return sum / static_cast<double>(n_);
}

}  // namespace leodivide::market
