#include "leodivide/market/report.hpp"

#include <iomanip>
#include <sstream>

namespace leodivide::market {

std::string render_market_report(const MarketReport& report) {
  std::ostringstream out;
  out << "Market simulation - policy: " << to_string(report.policy)
      << ", beamspread " << report.beamspread << ", cap "
      << report.oversub_cap << ":1\n\n";
  out << std::left << std::setw(12) << "operator" << std::right
      << std::setw(8) << "share" << std::setw(12) << "sats(full)"
      << std::setw(12) << "sats(cap)" << std::setw(10) << "cells%"
      << std::setw(10) << "locs%" << std::setw(14) << "$/loc-yr"
      << std::setw(10) << "unaff%" << '\n';
  for (const OperatorOutcome& op : report.operators) {
    const double dollars_per_loc_year =
        op.cost_curve.empty() ? 0.0
                              : op.cost_curve.front().cost_per_location_year_usd;
    out << std::left << std::setw(12) << op.name << std::right
        << std::fixed << std::setprecision(3) << std::setw(8)
        << op.economic_share << std::setprecision(0) << std::setw(12)
        << op.full.satellites << std::setw(12) << op.capped.satellites
        << std::setprecision(1) << std::setw(9)
        << 100.0 * op.served_cell_fraction << '%' << std::setw(9)
        << 100.0 * op.served_location_fraction << '%' << std::setprecision(2)
        << std::setw(14) << dollars_per_loc_year << std::setprecision(1)
        << std::setw(9) << 100.0 * op.affordability.fraction_unable << '%'
        << '\n';
    out.unsetf(std::ios::fixed);
  }
  const FairnessReport& f = report.fairness;
  out << "\nfairness: Jain(served locations) = " << std::fixed
      << std::setprecision(4) << f.jain_served_locations;
  out.unsetf(std::ios::fixed);
  out << "\nunserved: " << f.unserved_cells << " cells / "
      << f.unserved_locations << " locations (" << f.capacity_limited_cells
      << " capacity-limited, " << f.split_limited_cells
      << " split-limited)\n";
  for (std::size_t o = 0; o < report.operators.size(); ++o) {
    const OperatorFairness& of = f.operators[o];
    out << "  " << report.operators[o].name << ": wins " << of.cells_won
        << " cells, serves " << of.cells_served << " cells / "
        << of.locations_served << " locations\n";
  }
  return out.str();
}

}  // namespace leodivide::market
