#pragma once
// Console rendering for market simulation results.

#include <string>

#include "leodivide/market/simulation.hpp"

namespace leodivide::market {

/// Renders a MarketReport as a console table: one row per operator
/// (sized fleets, served fractions, first/last $/location-year points,
/// affordability) plus the market-level fairness summary.
[[nodiscard]] std::string render_market_report(const MarketReport& report);

}  // namespace leodivide::market
