#include "leodivide/sim/coverage.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "leodivide/runtime/parallel_for.hpp"

namespace leodivide::sim {

EpochCoverage summarize_epoch(const ScheduleResult& schedule,
                              std::size_t cells_total, double time_s,
                              std::vector<std::uint32_t>& scratch) {
  EpochCoverage out;
  out.time_s = time_s;
  out.cells_total = cells_total;
  out.cells_served = schedule.assignments.size();
  out.locations_total = schedule.locations_total;
  out.locations_served = schedule.locations_served;
  out.mean_beam_utilization = schedule.mean_beam_utilization;
  // Sorted-vector dedup: the distinct count is computed from a fully
  // ordered sequence, so no hash-container layout is ever consulted. The
  // caller's scratch keeps its capacity across epochs, and the count is an
  // iterator difference — no erase, no allocation at steady state.
  scratch.clear();
  for (const auto& a : schedule.assignments) scratch.push_back(a.sat);
  std::sort(scratch.begin(), scratch.end());
  out.satellites_in_view = static_cast<std::size_t>(
      std::unique(scratch.begin(), scratch.end()) - scratch.begin());
  return out;
}

EpochCoverage summarize_epoch(const ScheduleResult& schedule,
                              std::size_t cells_total, double time_s) {
  std::vector<std::uint32_t> scratch;
  scratch.reserve(schedule.assignments.size());
  return summarize_epoch(schedule, cells_total, time_s, scratch);
}

std::vector<EpochCoverage> summarize_epochs(
    const std::vector<ScheduleResult>& schedules, std::size_t cells_total,
    const std::vector<double>& times, runtime::Executor& executor) {
  if (schedules.size() != times.size()) {
    throw std::invalid_argument(
        "summarize_epochs: schedules/times length mismatch");
  }
  std::vector<EpochCoverage> trace(schedules.size());
  runtime::parallel_for_each(
      executor, 0, schedules.size(),
      // leolint:allow(parallel-capture): each iteration writes only its own trace[e] slot
      [&trace, &schedules, cells_total, &times](std::size_t e) {
        trace[e] = summarize_epoch(schedules[e], cells_total, times[e]);
      });
  return trace;
}

}  // namespace leodivide::sim
