#include "leodivide/sim/coverage.hpp"

#include <unordered_set>

namespace leodivide::sim {

EpochCoverage summarize_epoch(const ScheduleResult& schedule,
                              std::size_t cells_total, double time_s) {
  EpochCoverage out;
  out.time_s = time_s;
  out.cells_total = cells_total;
  out.cells_served = schedule.assignments.size();
  out.locations_total = schedule.locations_total;
  out.locations_served = schedule.locations_served;
  out.mean_beam_utilization = schedule.mean_beam_utilization;
  std::unordered_set<std::uint32_t> sats;
  for (const auto& a : schedule.assignments) sats.insert(a.sat);
  out.satellites_in_view = sats.size();
  return out;
}

}  // namespace leodivide::sim
