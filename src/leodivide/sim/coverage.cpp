#include "leodivide/sim/coverage.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "leodivide/runtime/parallel_for.hpp"

namespace leodivide::sim {

EpochCoverage summarize_epoch(const ScheduleResult& schedule,
                              std::size_t cells_total, double time_s) {
  EpochCoverage out;
  out.time_s = time_s;
  out.cells_total = cells_total;
  out.cells_served = schedule.assignments.size();
  out.locations_total = schedule.locations_total;
  out.locations_served = schedule.locations_served;
  out.mean_beam_utilization = schedule.mean_beam_utilization;
  // Sorted-vector dedup: the distinct count is computed from a fully
  // ordered sequence, so no hash-container layout is ever consulted.
  std::vector<std::uint32_t> sats;
  sats.reserve(schedule.assignments.size());
  for (const auto& a : schedule.assignments) sats.push_back(a.sat);
  std::sort(sats.begin(), sats.end());
  sats.erase(std::unique(sats.begin(), sats.end()), sats.end());
  out.satellites_in_view = sats.size();
  return out;
}

std::vector<EpochCoverage> summarize_epochs(
    const std::vector<ScheduleResult>& schedules, std::size_t cells_total,
    const std::vector<double>& times, runtime::Executor& executor) {
  if (schedules.size() != times.size()) {
    throw std::invalid_argument(
        "summarize_epochs: schedules/times length mismatch");
  }
  std::vector<EpochCoverage> trace(schedules.size());
  runtime::parallel_for_each(executor, 0, schedules.size(), [&](std::size_t e) {
    trace[e] = summarize_epoch(schedules[e], cells_total, times[e]);
  });
  return trace;
}

}  // namespace leodivide::sim
