#include "leodivide/sim/coverage.hpp"

#include <stdexcept>
#include <unordered_set>

#include "leodivide/runtime/parallel_for.hpp"

namespace leodivide::sim {

EpochCoverage summarize_epoch(const ScheduleResult& schedule,
                              std::size_t cells_total, double time_s) {
  EpochCoverage out;
  out.time_s = time_s;
  out.cells_total = cells_total;
  out.cells_served = schedule.assignments.size();
  out.locations_total = schedule.locations_total;
  out.locations_served = schedule.locations_served;
  out.mean_beam_utilization = schedule.mean_beam_utilization;
  std::unordered_set<std::uint32_t> sats;
  for (const auto& a : schedule.assignments) sats.insert(a.sat);
  out.satellites_in_view = sats.size();
  return out;
}

std::vector<EpochCoverage> summarize_epochs(
    const std::vector<ScheduleResult>& schedules, std::size_t cells_total,
    const std::vector<double>& times, runtime::Executor& executor) {
  if (schedules.size() != times.size()) {
    throw std::invalid_argument(
        "summarize_epochs: schedules/times length mismatch");
  }
  std::vector<EpochCoverage> trace(schedules.size());
  runtime::parallel_for_each(executor, 0, schedules.size(), [&](std::size_t e) {
    trace[e] = summarize_epoch(schedules[e], cells_total, times[e]);
  });
  return trace;
}

}  // namespace leodivide::sim
