#pragma once
// Simulation clock: fixed-step epochs over a duration.

#include <cstddef>
#include <stdexcept>

namespace leodivide::sim {

/// Fixed-step simulation clock. Epoch 0 is t = 0; the final epoch is the
/// last step not exceeding the duration.
class SimClock {
 public:
  SimClock(double duration_s, double step_s);

  [[nodiscard]] double duration_s() const noexcept { return duration_s_; }
  [[nodiscard]] double step_s() const noexcept { return step_s_; }

  /// Number of epochs (>= 1).
  [[nodiscard]] std::size_t epochs() const noexcept { return epochs_; }

  /// Time of epoch `i` [s]; throws std::out_of_range past the end.
  [[nodiscard]] double time_at(std::size_t i) const;

 private:
  double duration_s_;
  double step_s_;
  std::size_t epochs_;
};

}  // namespace leodivide::sim
