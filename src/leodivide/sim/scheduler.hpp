#pragma once
// Greedy beam->cell scheduler: at one epoch, assign every demand cell to a
// visible satellite within the per-satellite beam budget. This is the
// operational counterpart of the paper's analytical lower bound — the
// ablation bench compares the two.

#include <cstdint>
#include <vector>

#include "leodivide/core/capacity_model.hpp"
#include "leodivide/geo/ecef.hpp"
#include "leodivide/orbit/propagate.hpp"
#include "leodivide/sim/workspace.hpp"

namespace leodivide::sim {

/// A demand cell prepared for scheduling (positions precomputed).
struct SchedCell {
  geo::GeoPoint center;
  geo::Vec3 ecef_km;           ///< surface position, precomputed
  std::uint32_t locations = 0;
  std::uint32_t beams_needed = 1;  ///< at the scheduler's oversub target
};

/// One successful assignment.
struct Assignment {
  std::uint32_t cell = 0;  ///< index into the scheduler's cell list
  std::uint32_t sat = 0;   ///< index into the epoch's satellite states
  std::uint32_t beams = 1; ///< whole beams (0 means a shared slot)

  friend bool operator==(const Assignment&, const Assignment&) = default;
};

/// How the scheduler picks among visible satellites with room.
enum class Strategy {
  kMostSlack,  ///< balance load: satellite with the most remaining capacity
  kFirstFit,   ///< cheapest: first visible satellite with room
  kBestFit,    ///< pack tightly: least remaining capacity that still fits
};

/// Scheduler configuration.
struct SchedulerConfig {
  std::uint32_t beams_per_satellite = 24;
  std::uint32_t beamspread = 5;
  double min_elevation_deg = 25.0;  ///< Starlink's terminal mask
  Strategy strategy = Strategy::kMostSlack;
};

/// Result of scheduling one epoch.
struct ScheduleResult {
  std::vector<Assignment> assignments;
  std::vector<std::uint32_t> unassigned_cells;  ///< indices
  std::uint64_t locations_served = 0;
  std::uint64_t locations_total = 0;
  double mean_beam_utilization = 0.0;  ///< over satellites that saw demand

  /// Exact (bit-level) equality; the indexed-vs-naive golden equivalence
  /// suite relies on it.
  friend bool operator==(const ScheduleResult&, const ScheduleResult&) =
      default;
};

/// Greedy scheduler over a fixed cell list.
class BeamScheduler {
 public:
  BeamScheduler(std::vector<SchedCell> cells, SchedulerConfig config);

  /// Schedules one epoch given satellite states. Cells are processed in
  /// descending beam need then descending demand; each picks among the
  /// visible satellites per the configured strategy. Internally the cell →
  /// satellite search runs through a per-epoch spatial index
  /// (orbit::VisIndex), pruning the candidate set from O(sats) to O(k)
  /// per cell; the result is byte-identical to schedule_reference.
  [[nodiscard]] ScheduleResult schedule(
      const std::vector<orbit::SatState>& sats) const;

  /// As above, reusing `workspace` scratch and `out`'s vector capacity:
  /// repeated epochs over a constellation of fixed size perform zero heap
  /// allocations once the buffers have warmed up. `workspace` must not be
  /// shared between threads.
  void schedule(const std::vector<orbit::SatState>& sats,
                ScheduleWorkspace& workspace, ScheduleResult& out) const;

  /// The retained naive O(cells x sats) reference kernel (the pre-index
  /// implementation, kept verbatim): scans every satellite per cell. The
  /// golden equivalence suite and the sim.schedule bench compare the
  /// indexed kernel against it; never used on the hot path.
  [[nodiscard]] ScheduleResult schedule_reference(
      const std::vector<orbit::SatState>& sats) const;

  [[nodiscard]] const std::vector<SchedCell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Builds SchedCells from a demand profile at an oversubscription target
  /// (beams_needed computed from the capacity model).
  [[nodiscard]] static std::vector<SchedCell> cells_from_profile(
      const demand::DemandProfile& profile,
      const core::SatelliteCapacityModel& model, double oversub);

 private:
  std::vector<SchedCell> cells_;
  SchedulerConfig config_;
  std::vector<std::uint32_t> order_;      ///< processing order, precomputed
  std::vector<geo::Vec3> cell_units_;     ///< unit radials, precomputed
};

}  // namespace leodivide::sim
