#pragma once
// Per-cell quality of service from a schedule: the capacity each served
// cell actually received and the oversubscription its subscribers
// experience — the simulator-side counterpart of the paper's per-cell
// oversubscription analysis (F1).

#include <vector>

#include "leodivide/core/capacity_model.hpp"
#include "leodivide/sim/scheduler.hpp"

namespace leodivide::sim {

/// Delivered service at one served cell.
struct CellQos {
  std::uint32_t cell = 0;            ///< index into the scheduler's cells
  double capacity_gbps = 0.0;        ///< beam capacity allocated to the cell
  double achieved_oversub = 0.0;     ///< demand / capacity
  bool within_target = false;        ///< achieved <= target oversub
};

/// Aggregate view of one epoch's QoS.
struct QosSummary {
  std::size_t cells_served = 0;
  std::size_t cells_within_target = 0;
  double mean_oversub = 0.0;   ///< over served cells with demand
  double worst_oversub = 0.0;
  double fraction_within_target = 0.0;

  /// Exact (bit-level) equality; event-trace snapshot round trips rely on
  /// it.
  friend bool operator==(const QosSummary&, const QosSummary&) = default;
};

/// Computes per-cell QoS for a schedule. Whole-beam assignments receive
/// beams * per-beam capacity; shared-slot assignments receive
/// per-beam / beamspread.
[[nodiscard]] std::vector<CellQos> compute_qos(
    const std::vector<SchedCell>& cells, const ScheduleResult& schedule,
    const core::SatelliteCapacityModel& model, const SchedulerConfig& config,
    double target_oversub);

/// As above, writing into caller-owned `out` (cleared first): repeated
/// calls at warm capacity perform no heap allocation. The event engine's
/// steady-state loop uses this overload.
void compute_qos(const std::vector<SchedCell>& cells,
                 const ScheduleResult& schedule,
                 const core::SatelliteCapacityModel& model,
                 const SchedulerConfig& config, double target_oversub,
                 std::vector<CellQos>& out);

/// Reduces per-cell QoS to a summary.
[[nodiscard]] QosSummary summarize_qos(const std::vector<CellQos>& qos);

}  // namespace leodivide::sim
