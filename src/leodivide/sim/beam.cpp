#include "leodivide/sim/beam.hpp"

#include <stdexcept>

namespace leodivide::sim {

BeamBudget::BeamBudget(std::uint32_t total_beams, std::uint32_t beamspread)
    : total_(total_beams), beamspread_(beamspread), beams_free_(total_beams) {
  if (total_beams == 0 || beamspread == 0) {
    throw std::invalid_argument("BeamBudget: zero beams or beamspread");
  }
}

bool BeamBudget::reserve_whole(std::uint32_t beams) noexcept {
  if (beams == 0 || beams > beams_free_) return false;
  beams_free_ -= beams;
  ++cells_assigned_;
  return true;
}

bool BeamBudget::reserve_shared_slot() noexcept {
  if (shared_slots_free_ == 0) {
    if (beams_free_ == 0) return false;
    --beams_free_;
    shared_slots_free_ = beamspread_;
  }
  --shared_slots_free_;
  ++cells_assigned_;
  return true;
}

std::uint32_t BeamBudget::slack() const noexcept {
  return beams_free_ * beamspread_ + shared_slots_free_;
}

}  // namespace leodivide::sim
