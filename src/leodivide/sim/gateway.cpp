#include "leodivide/sim/gateway.hpp"

#include <algorithm>
#include <stdexcept>

#include "leodivide/geo/greatcircle.hpp"
#include "leodivide/orbit/footprint.hpp"

namespace leodivide::sim {

GatewayPlacement place_gateways(const std::vector<geo::GeoPoint>& candidates,
                                const geo::BoundingBox& region,
                                const GatewayPlacementConfig& config) {
  if (candidates.empty()) {
    throw std::invalid_argument("place_gateways: no candidates");
  }
  if (!region.valid() || config.sample_spacing_deg <= 0.0) {
    throw std::invalid_argument("place_gateways: bad region or spacing");
  }
  // Sub-satellite sample points across the region.
  std::vector<geo::GeoPoint> samples;
  for (double lat = region.lat_min; lat <= region.lat_max;
       lat += config.sample_spacing_deg) {
    for (double lon = region.lon_min; lon <= region.lon_max;
         lon += config.sample_spacing_deg) {
      samples.push_back({lat, lon});
    }
  }
  const double radius_km = orbit::footprint_radius_km(
      config.altitude_km, config.gateway_elevation_deg);

  // Coverage sets: candidate -> sample indices within the footprint.
  std::vector<std::vector<std::size_t>> covers(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    for (std::size_t s = 0; s < samples.size(); ++s) {
      if (geo::distance_km(candidates[c], samples[s]) <= radius_km) {
        covers[c].push_back(s);
      }
    }
  }

  GatewayPlacement out;
  out.sample_points = samples.size();
  std::vector<bool> covered(samples.size(), false);
  std::size_t remaining = samples.size();
  // Samples no candidate reaches can never be covered.
  {
    std::vector<bool> reachable(samples.size(), false);
    for (const auto& cover : covers) {
      for (std::size_t s : cover) reachable[s] = true;
    }
    for (std::size_t s = 0; s < samples.size(); ++s) {
      if (!reachable[s]) {
        covered[s] = true;  // exclude from the greedy loop
        --remaining;
        ++out.uncovered_samples;
      }
    }
  }
  std::vector<bool> used(candidates.size(), false);
  while (remaining > 0) {
    std::size_t best = candidates.size();
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      std::size_t gain = 0;
      for (std::size_t s : covers[c]) {
        if (!covered[s]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size()) break;  // defensive; cannot happen
    used[best] = true;
    out.sites.push_back(candidates[best]);
    for (std::size_t s : covers[best]) {
      if (!covered[s]) {
        covered[s] = true;
        --remaining;
      }
    }
  }
  return out;
}

}  // namespace leodivide::sim
