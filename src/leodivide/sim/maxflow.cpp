#include "leodivide/sim/maxflow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"

namespace leodivide::sim {

MaxFlow::MaxFlow(std::size_t vertices) : graph_(vertices) {
  if (vertices < 2) throw std::invalid_argument("MaxFlow: need >= 2 vertices");
}

void MaxFlow::add_edge(std::uint32_t u, std::uint32_t v, std::int64_t cap) {
  if (u >= graph_.size() || v >= graph_.size()) {
    throw std::out_of_range("MaxFlow::add_edge");
  }
  if (cap < 0) throw std::invalid_argument("MaxFlow: negative capacity");
  graph_[u].push_back({v, static_cast<std::uint32_t>(graph_[v].size()), cap});
  graph_[v].push_back(
      {u, static_cast<std::uint32_t>(graph_[u].size() - 1), 0});
}

bool MaxFlow::bfs(std::uint32_t s, std::uint32_t t) {
  level_.assign(graph_.size(), -1);
  std::queue<std::uint32_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::uint32_t v = q.front();
    q.pop();
    for (const Edge& e : graph_[v]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlow::dfs(std::uint32_t v, std::uint32_t t,
                          std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.cap <= 0 || level_[v] + 1 != level_[e.to]) continue;
    const std::int64_t d = dfs(e.to, t, std::min(pushed, e.cap));
    if (d > 0) {
      e.cap -= d;
      graph_[e.to][e.rev].cap += d;
      return d;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(std::uint32_t s, std::uint32_t t) {
  if (s >= graph_.size() || t >= graph_.size() || s == t) {
    throw std::invalid_argument("MaxFlow::solve: bad terminals");
  }
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const std::int64_t pushed =
          dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

FlowBound optimal_slot_bound(const std::vector<SchedCell>& cells,
                             const std::vector<orbit::SatState>& sats,
                             const SchedulerConfig& config) {
  FlowBound bound;
  if (cells.empty()) {
    bound.slot_coverage = 1.0;
    return bound;
  }
  // Vertex layout: 0 = source, 1..C = cells, C+1..C+S = satellites,
  // C+S+1 = sink.
  const std::size_t c_count = cells.size();
  const std::size_t s_count = sats.size();
  MaxFlow flow(c_count + s_count + 2);
  const auto source = static_cast<std::uint32_t>(0);
  const auto sink = static_cast<std::uint32_t>(c_count + s_count + 1);

  double alt_km = 550.0;
  if (!sats.empty()) {
    alt_km = sats.front().ecef_km.norm() - geo::kEarthRadiusKm;
  }
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + alt_km);
  const double eps = geo::deg2rad(config.min_elevation_deg);
  const double cos_psi = std::cos(std::acos(ratio * std::cos(eps)) - eps);

  std::vector<geo::Vec3> sat_units;
  sat_units.reserve(s_count);
  for (const auto& s : sats) sat_units.push_back(s.ecef_km.unit());

  for (std::size_t ci = 0; ci < c_count; ++ci) {
    // Slot accounting mirrors BeamBudget: a whole-beam cell consumes
    // beams * beamspread slots; a single-beam cell shares a beam and
    // consumes one slot.
    const auto slots =
        cells[ci].beams_needed >= 2
            ? static_cast<std::int64_t>(cells[ci].beams_needed) *
                  config.beamspread
            : 1;
    bound.slots_demanded += slots;
    flow.add_edge(source, static_cast<std::uint32_t>(1 + ci), slots);
    const geo::Vec3 cell_unit = cells[ci].ecef_km.unit();
    for (std::size_t si = 0; si < s_count; ++si) {
      if (cell_unit.dot(sat_units[si]) < cos_psi) continue;
      flow.add_edge(static_cast<std::uint32_t>(1 + ci),
                    static_cast<std::uint32_t>(1 + c_count + si), slots);
    }
  }
  const auto sat_slots = static_cast<std::int64_t>(
      config.beams_per_satellite) * config.beamspread;
  for (std::size_t si = 0; si < s_count; ++si) {
    flow.add_edge(static_cast<std::uint32_t>(1 + c_count + si), sink,
                  sat_slots);
  }
  bound.slots_served = flow.solve(source, sink);
  bound.slot_coverage =
      bound.slots_demanded == 0
          ? 1.0
          : static_cast<double>(bound.slots_served) /
                static_cast<double>(bound.slots_demanded);
  return bound;
}

}  // namespace leodivide::sim
