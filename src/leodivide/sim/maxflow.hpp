#pragma once
// Max-flow (Dinic) and the optimal beam-allocation upper bound.
//
// The greedy scheduler (scheduler.hpp) is an online heuristic. To know how
// much of its shortfall is *fundamental* (not enough satellites in view)
// versus *algorithmic* (bad packing), we solve the fractional relaxation
// exactly: model beam capacity in "slots" (one beam = beamspread slots,
// a cell needing b beams = b * beamspread slots), connect cells to visible
// satellites, and compute the maximum slot flow. No scheduler — greedy,
// optimal, or otherwise — can serve more slots than this bound.

#include <cstdint>
#include <vector>

#include "leodivide/sim/scheduler.hpp"

namespace leodivide::sim {

/// Dinic's max-flow over an explicit graph. Vertices are dense indices;
/// capacities are 64-bit.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t vertices);

  /// Adds a directed edge u -> v with capacity `cap` (and a residual
  /// reverse edge of zero capacity).
  void add_edge(std::uint32_t u, std::uint32_t v, std::int64_t cap);

  /// Computes the maximum flow from s to t. May be called once.
  [[nodiscard]] std::int64_t solve(std::uint32_t s, std::uint32_t t);

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return graph_.size();
  }

 private:
  struct Edge {
    std::uint32_t to;
    std::uint32_t rev;  ///< index of the reverse edge in graph_[to]
    std::int64_t cap;
  };
  bool bfs(std::uint32_t s, std::uint32_t t);
  std::int64_t dfs(std::uint32_t v, std::uint32_t t, std::int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

/// Result of the relaxation.
struct FlowBound {
  std::int64_t slots_demanded = 0;  ///< sum over cells of beams * beamspread
  std::int64_t slots_served = 0;    ///< max-flow value
  double slot_coverage = 0.0;       ///< served / demanded
};

/// Solves the slot relaxation for one epoch: every cell may split its
/// demand across all satellites visible at `min_elevation_deg`; each
/// satellite offers beams_per_satellite * beamspread slots.
[[nodiscard]] FlowBound optimal_slot_bound(
    const std::vector<SchedCell>& cells,
    const std::vector<orbit::SatState>& sats, const SchedulerConfig& config);

}  // namespace leodivide::sim
