#include "leodivide/sim/clock.hpp"

#include <cmath>

namespace leodivide::sim {

SimClock::SimClock(double duration_s, double step_s)
    : duration_s_(duration_s), step_s_(step_s) {
  if (duration_s < 0.0 || step_s <= 0.0) {
    throw std::invalid_argument("SimClock: bad duration/step");
  }
  epochs_ = static_cast<std::size_t>(std::floor(duration_s / step_s)) + 1;
}

double SimClock::time_at(std::size_t i) const {
  if (i >= epochs_) throw std::out_of_range("SimClock::time_at");
  return static_cast<double>(i) * step_s_;
}

}  // namespace leodivide::sim
