#include "leodivide/sim/clock.hpp"

#include <cmath>

namespace leodivide::sim {

namespace {

// Epoch-count ceiling: casting a double >= 2^62 to std::size_t is already
// undefined behaviour territory on 32-bit size_t and nonsensical as a loop
// bound everywhere. Any horizon/step ratio beyond this is a configuration
// error, not a simulation.
constexpr double kMaxEpochs = 1e15;

}  // namespace

SimClock::SimClock(double duration_s, double step_s)
    : duration_s_(duration_s), step_s_(step_s) {
  // The explicit >= 0 / > 0 forms also reject NaN (every comparison with
  // NaN is false), so non-finite inputs cannot reach the cast below.
  if (!(duration_s >= 0.0) || !(step_s > 0.0) || !std::isfinite(duration_s) ||
      !std::isfinite(step_s)) {
    throw std::invalid_argument("SimClock: bad duration/step");
  }
  const double epochs = std::floor(duration_s / step_s) + 1.0;
  if (!(epochs <= kMaxEpochs)) {
    throw std::invalid_argument("SimClock: horizon/step yields too many epochs");
  }
  epochs_ = static_cast<std::size_t>(epochs);
}

double SimClock::time_at(std::size_t i) const {
  if (i >= epochs_) throw std::out_of_range("SimClock::time_at");
  return static_cast<double>(i) * step_s_;
}

}  // namespace leodivide::sim
