#include "leodivide/sim/handover.hpp"

#include <stdexcept>
#include <vector>

namespace leodivide::sim {

namespace {

constexpr std::int64_t kUnassigned = -1;

void assignment_map(const ScheduleResult& schedule, std::size_t cell_count,
                    std::vector<std::int64_t>& map) {
  map.assign(cell_count, kUnassigned);
  for (const auto& a : schedule.assignments) {
    if (a.cell >= cell_count) {
      throw std::invalid_argument("compare_schedules: assignment out of range");
    }
    map[a.cell] = static_cast<std::int64_t>(a.sat);
  }
}

}  // namespace

HandoverStats compare_schedules(const ScheduleResult& before,
                                const ScheduleResult& after,
                                std::size_t cell_count,
                                HandoverScratch& scratch) {
  assignment_map(before, cell_count, scratch.before);
  assignment_map(after, cell_count, scratch.after);
  HandoverStats stats;
  for (std::size_t i = 0; i < cell_count; ++i) {
    const bool was = scratch.before[i] != kUnassigned;
    const bool is = scratch.after[i] != kUnassigned;
    if (was && is) {
      ++stats.cells_tracked;
      if (scratch.before[i] != scratch.after[i]) ++stats.handovers;
    } else if (was) {
      ++stats.cells_dropped;
    } else if (is) {
      ++stats.cells_acquired;
    }
  }
  return stats;
}

HandoverStats compare_schedules(const ScheduleResult& before,
                                const ScheduleResult& after,
                                std::size_t cell_count) {
  HandoverScratch scratch;
  return compare_schedules(before, after, cell_count, scratch);
}

}  // namespace leodivide::sim
