#include "leodivide/sim/handover.hpp"

#include <stdexcept>
#include <vector>

namespace leodivide::sim {

namespace {

constexpr std::int64_t kUnassigned = -1;

std::vector<std::int64_t> assignment_map(const ScheduleResult& schedule,
                                         std::size_t cell_count) {
  std::vector<std::int64_t> map(cell_count, kUnassigned);
  for (const auto& a : schedule.assignments) {
    if (a.cell >= cell_count) {
      throw std::invalid_argument("compare_schedules: assignment out of range");
    }
    map[a.cell] = static_cast<std::int64_t>(a.sat);
  }
  return map;
}

}  // namespace

HandoverStats compare_schedules(const ScheduleResult& before,
                                const ScheduleResult& after,
                                std::size_t cell_count) {
  const auto prev = assignment_map(before, cell_count);
  const auto cur = assignment_map(after, cell_count);
  HandoverStats stats;
  for (std::size_t i = 0; i < cell_count; ++i) {
    const bool was = prev[i] != kUnassigned;
    const bool is = cur[i] != kUnassigned;
    if (was && is) {
      ++stats.cells_tracked;
      if (prev[i] != cur[i]) ++stats.handovers;
    } else if (was) {
      ++stats.cells_dropped;
    } else if (is) {
      ++stats.cells_acquired;
    }
  }
  return stats;
}

}  // namespace leodivide::sim
