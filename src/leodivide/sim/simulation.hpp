#pragma once
// The simulation driver: propagate a Walker shell over time, schedule beams
// to demand cells each epoch, and report achieved coverage. Empirically
// validates the analytic sizing model (the paper's lower bound can only be
// optimistic; the simulator shows by how much).

#include <vector>

#include "leodivide/orbit/walker.hpp"
#include "leodivide/sim/clock.hpp"
#include "leodivide/sim/metrics.hpp"
#include "leodivide/sim/scheduler.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::sim {

/// Which simulator core executes the run. Both produce byte-identical
/// `EpochCoverage` traces; the event engine (event/engine.hpp) reschedules
/// only at certified visibility changes, so it wins whenever the step is
/// fine relative to contact dynamics. The choice is deliberately *not*
/// part of any snapshot fingerprint: by the golden-equivalence guarantee
/// it cannot change the output bytes.
enum class Engine {
  kEpoch,  ///< fixed-step: full reschedule at every epoch
  kEvent,  ///< event-driven: reschedule only at rise/set crossing windows
};

/// Simulation parameters.
struct SimulationConfig {
  orbit::WalkerShell shell = orbit::starlink_shell1();
  SchedulerConfig scheduler;
  double duration_s = 600.0;
  double step_s = 60.0;
  double oversub_target = 20.0;  ///< beams_needed computed at this ratio
  Engine engine = Engine::kEpoch;
};

/// Runs a full simulation against a demand profile.
class Simulation {
 public:
  Simulation(SimulationConfig config, const demand::DemandProfile& profile,
             const core::SatelliteCapacityModel& model = {});

  /// Runs every epoch; returns the per-epoch trace. Epochs are mutually
  /// independent (propagate → schedule → summarize), so they run in
  /// parallel over `executor` with each epoch writing its own trace slot —
  /// the trace is identical for every thread count. Each worker chunk reuses
  /// one ScheduleWorkspace, so the steady-state epoch loop performs no heap
  /// allocations.
  [[nodiscard]] std::vector<EpochCoverage> run(
      runtime::Executor& executor) const;

  /// As above, on the process-global executor (LEODIVIDE_THREADS).
  [[nodiscard]] std::vector<EpochCoverage> run() const;

  /// Runs and reduces to a report.
  [[nodiscard]] SimulationReport run_report() const;

  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return config_;
  }
  /// The scheduler this run drives (cell list, strategy, geometry inputs).
  /// The event engine builds its crossing solvers against the same state.
  [[nodiscard]] const BeamScheduler& scheduler() const noexcept {
    return scheduler_;
  }
  /// The constellation's orbital elements, in satellite-index order.
  [[nodiscard]] const std::vector<orbit::CircularOrbit>& orbits()
      const noexcept {
    return orbits_;
  }

 private:
  SimulationConfig config_;
  BeamScheduler scheduler_;
  std::vector<orbit::CircularOrbit> orbits_;
};

}  // namespace leodivide::sim
