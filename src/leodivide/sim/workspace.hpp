#pragma once
// Reusable per-executor-thread scratch for the epoch scheduling loop. One
// workspace per worker (the simulation driver creates one per parallel_for
// chunk) lets every epoch after the first reuse the satellite budgets,
// touched flags, candidate lists, SoA unit-vector components and the
// spatial index storage — the steady-state epoch loop performs zero heap
// allocations (pinned by tests/test_sim_equivalence.cpp).

#include <cstdint>
#include <vector>

#include "leodivide/orbit/propagate.hpp"
#include "leodivide/orbit/visindex.hpp"
#include "leodivide/sim/beam.hpp"

namespace leodivide::sim {

/// Memoized coverage-cone geometry. Keyed on the exact bit patterns of the
/// orbit radius and elevation mask: repeated epochs of one shell re-derive
/// the acos/cos constants only once per workspace, and a key miss merely
/// recomputes them, so exact float comparison is the correct cache test.
struct CoverageGeometry {
  double radius_km = -1.0;          ///< key: |sat position| (< 0 = unset)
  double min_elevation_deg = -1.0;  ///< key: terminal mask
  double psi_rad = 0.0;             ///< coverage central angle
  double cos_psi = 0.0;             ///< visibility threshold on unit dot

  [[nodiscard]] bool matches(double radius, double elevation) const noexcept {
    // leolint:allow(float-eq): exact-bit memo key; a miss only recomputes
    return radius == radius_km && elevation == min_elevation_deg;
  }
};

/// Scratch buffers for BeamScheduler::schedule and the simulation's epoch
/// loop. Not thread-safe: use one instance per worker thread.
struct ScheduleWorkspace {
  CoverageGeometry geometry;
  orbit::VisIndex index;

  std::vector<BeamBudget> budgets;        ///< per-satellite beam budgets
  std::vector<std::uint8_t> sat_touched;  ///< per-satellite "saw demand"
  std::vector<double> unit_x;             ///< SoA satellite unit vectors
  std::vector<double> unit_y;
  std::vector<double> unit_z;
  std::vector<std::uint32_t> candidates;  ///< per-cell index query output
  std::vector<std::uint32_t> visible;     ///< SIMD-compacted visible subset
  std::vector<orbit::SatState> states;    ///< propagate_all target
  std::vector<std::uint32_t> sat_dedup;   ///< summarize_epoch scratch
};

}  // namespace leodivide::sim
