#pragma once
// Aggregation of per-epoch coverage into a simulation report.

#include <vector>

#include "leodivide/sim/coverage.hpp"

namespace leodivide::sim {

/// Summary of a complete simulation run.
struct SimulationReport {
  std::size_t epochs = 0;
  double min_cell_coverage = 0.0;
  double mean_cell_coverage = 0.0;
  double max_cell_coverage = 0.0;
  double min_location_coverage = 0.0;
  double mean_location_coverage = 0.0;
  double mean_beam_utilization = 0.0;
  double mean_satellites_in_view = 0.0;
};

/// Reduces epoch snapshots to a report; throws std::invalid_argument on an
/// empty input.
[[nodiscard]] SimulationReport summarize(
    const std::vector<EpochCoverage>& epochs);

}  // namespace leodivide::sim
