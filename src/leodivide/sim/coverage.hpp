#pragma once
// Per-epoch coverage statistics derived from a schedule.

#include <cstdint>
#include <vector>

#include "leodivide/sim/scheduler.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::sim {

/// Coverage snapshot of one epoch.
struct EpochCoverage {
  double time_s = 0.0;
  std::size_t cells_total = 0;
  std::size_t cells_served = 0;
  std::uint64_t locations_total = 0;
  std::uint64_t locations_served = 0;
  double mean_beam_utilization = 0.0;
  std::size_t satellites_in_view = 0;  ///< sats with >= 1 assignment

  [[nodiscard]] double cell_coverage() const noexcept {
    return cells_total == 0
               ? 1.0
               : static_cast<double>(cells_served) /
                     static_cast<double>(cells_total);
  }
  [[nodiscard]] double location_coverage() const noexcept {
    return locations_total == 0
               ? 1.0
               : static_cast<double>(locations_served) /
                     static_cast<double>(locations_total);
  }

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const EpochCoverage&, const EpochCoverage&) = default;
};

/// Summarises a schedule result into an epoch snapshot.
[[nodiscard]] EpochCoverage summarize_epoch(const ScheduleResult& schedule,
                                            std::size_t cells_total,
                                            double time_s);

/// As above, using caller-owned dedup scratch so repeated epochs allocate
/// nothing once the scratch capacity has warmed up.
[[nodiscard]] EpochCoverage summarize_epoch(
    const ScheduleResult& schedule, std::size_t cells_total, double time_s,
    std::vector<std::uint32_t>& scratch);

/// Summarises a whole trace of per-epoch schedules in parallel over
/// `executor`. Epoch e of the result is summarize_epoch(schedules[e],
/// cells_total, times[e]); epochs are independent, so the trace is
/// identical for every thread count. `times` must match `schedules` in
/// length.
[[nodiscard]] std::vector<EpochCoverage> summarize_epochs(
    const std::vector<ScheduleResult>& schedules, std::size_t cells_total,
    const std::vector<double>& times, runtime::Executor& executor);

}  // namespace leodivide::sim
