#pragma once
// Gateway site placement. Bent-pipe operation requires every satellite
// serving a region to see a gateway; this module picks gateway sites from
// candidate locations with a greedy set-cover so that any satellite
// position over the region (sampled on a grid) has at least one gateway
// within its feeder footprint. Complements core/backhaul.hpp's capacity
// check with the geometric one.

#include <vector>

#include "leodivide/geo/bbox.hpp"
#include "leodivide/geo/geopoint.hpp"

namespace leodivide::sim {

/// Placement parameters.
struct GatewayPlacementConfig {
  double altitude_km = 550.0;
  /// Minimum elevation of the satellite as seen from a gateway dish.
  double gateway_elevation_deg = 25.0;
  /// Grid spacing for satellite-position sample points [deg].
  double sample_spacing_deg = 2.0;
};

/// Result of a placement.
struct GatewayPlacement {
  std::vector<geo::GeoPoint> sites;   ///< chosen gateway locations
  std::size_t sample_points = 0;      ///< satellite positions sampled
  std::size_t uncovered_samples = 0;  ///< samples no candidate could cover
};

/// Greedy set cover: repeatedly picks the candidate covering the most
/// still-uncovered satellite sample positions until every coverable sample
/// is covered. A sample is covered by a candidate when their great-circle
/// separation is within the feeder footprint radius (same geometry as the
/// user-terminal footprint at gateway_elevation_deg). Throws
/// std::invalid_argument on empty candidates or a degenerate region.
[[nodiscard]] GatewayPlacement place_gateways(
    const std::vector<geo::GeoPoint>& candidates,
    const geo::BoundingBox& region, const GatewayPlacementConfig& config);

}  // namespace leodivide::sim
