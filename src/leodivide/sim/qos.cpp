#include "leodivide/sim/qos.hpp"

#include <algorithm>
#include <stdexcept>

namespace leodivide::sim {

void compute_qos(const std::vector<SchedCell>& cells,
                 const ScheduleResult& schedule,
                 const core::SatelliteCapacityModel& model,
                 const SchedulerConfig& config, double target_oversub,
                 std::vector<CellQos>& out) {
  if (target_oversub <= 0.0) {
    throw std::invalid_argument("compute_qos: target must be > 0");
  }
  const double per_beam = model.beam_capacity_gbps();
  out.clear();
  out.reserve(schedule.assignments.size());
  for (const auto& a : schedule.assignments) {
    if (a.cell >= cells.size()) {
      throw std::invalid_argument("compute_qos: assignment out of range");
    }
    CellQos q;
    q.cell = a.cell;
    q.capacity_gbps =
        a.beams >= 2
            ? static_cast<double>(a.beams) * per_beam
            : per_beam / static_cast<double>(config.beamspread);
    const double demand = model.cell_demand_gbps(cells[a.cell].locations);
    q.achieved_oversub =
        q.capacity_gbps > 0.0 ? demand / q.capacity_gbps : 0.0;
    q.within_target = q.achieved_oversub <= target_oversub;
    out.push_back(q);
  }
}

std::vector<CellQos> compute_qos(const std::vector<SchedCell>& cells,
                                 const ScheduleResult& schedule,
                                 const core::SatelliteCapacityModel& model,
                                 const SchedulerConfig& config,
                                 double target_oversub) {
  std::vector<CellQos> out;
  compute_qos(cells, schedule, model, config, target_oversub, out);
  return out;
}

QosSummary summarize_qos(const std::vector<CellQos>& qos) {
  QosSummary s;
  s.cells_served = qos.size();
  double sum = 0.0;
  std::size_t with_demand = 0;
  for (const auto& q : qos) {
    if (q.within_target) ++s.cells_within_target;
    if (q.achieved_oversub > 0.0) {
      sum += q.achieved_oversub;
      ++with_demand;
    }
    s.worst_oversub = std::max(s.worst_oversub, q.achieved_oversub);
  }
  s.mean_oversub = with_demand == 0 ? 0.0 : sum / static_cast<double>(
                                                with_demand);
  s.fraction_within_target =
      qos.empty() ? 1.0
                  : static_cast<double>(s.cells_within_target) /
                        static_cast<double>(qos.size());
  return s;
}

}  // namespace leodivide::sim
