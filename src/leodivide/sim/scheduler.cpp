#include "leodivide/sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"
#include "leodivide/sim/beam.hpp"

namespace leodivide::sim {

BeamScheduler::BeamScheduler(std::vector<SchedCell> cells,
                             SchedulerConfig config)
    : cells_(std::move(cells)), config_(config) {
  if (config_.beams_per_satellite == 0 || config_.beamspread == 0) {
    throw std::invalid_argument("BeamScheduler: zero beams or beamspread");
  }
  order_.resize(cells_.size());
  std::iota(order_.begin(), order_.end(), 0U);
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (cells_[a].beams_needed != cells_[b].beams_needed) {
                return cells_[a].beams_needed > cells_[b].beams_needed;
              }
              return cells_[a].locations > cells_[b].locations;
            });
}

std::vector<SchedCell> BeamScheduler::cells_from_profile(
    const demand::DemandProfile& profile,
    const core::SatelliteCapacityModel& model, double oversub) {
  std::vector<SchedCell> out;
  out.reserve(profile.cell_count());
  for (const auto& cell : profile.cells()) {
    SchedCell sc;
    sc.center = cell.center;
    sc.ecef_km = geo::spherical_to_cartesian(cell.center, geo::kEarthRadiusKm);
    sc.locations = cell.underserved;
    sc.beams_needed = std::max(1U, model.beams_needed(cell.underserved,
                                                      oversub));
    out.push_back(sc);
  }
  return out;
}

ScheduleResult BeamScheduler::schedule(
    const std::vector<orbit::SatState>& sats) const {
  ScheduleResult result;
  if (cells_.empty()) return result;

  // Precompute the geometry threshold: a satellite is usable by a cell when
  // the cell lies within the coverage central angle for the elevation mask.
  // All satellites share one altitude in a Walker shell; derive it from the
  // first state (robust to small numerical spread).
  double alt_km = 550.0;
  if (!sats.empty()) {
    alt_km = sats.front().ecef_km.norm() - geo::kEarthRadiusKm;
  }
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + alt_km);
  const double eps = geo::deg2rad(config_.min_elevation_deg);
  const double psi = std::acos(ratio * std::cos(eps)) - eps;
  const double cos_psi = std::cos(psi);

  std::vector<BeamBudget> budgets(
      sats.size(), BeamBudget(config_.beams_per_satellite, config_.beamspread));

  // Unit vectors of satellite positions for the cheap visibility test:
  // cell "sees" sat iff the central angle between their radials is <= psi.
  std::vector<geo::Vec3> sat_units;
  sat_units.reserve(sats.size());
  for (const auto& s : sats) sat_units.push_back(s.ecef_km.unit());

  std::vector<bool> sat_touched(sats.size(), false);

  for (std::uint32_t ci : order_) {
    const SchedCell& cell = cells_[ci];
    result.locations_total += cell.locations;
    const geo::Vec3 cell_unit = cell.ecef_km.unit();

    std::int64_t best_sat = -1;
    std::uint32_t best_slack = 0;
    for (std::size_t si = 0; si < sats.size(); ++si) {
      if (cell_unit.dot(sat_units[si]) < cos_psi) continue;  // not visible
      const std::uint32_t slack = budgets[si].slack();
      if (slack == 0) continue;
      // Whole-beam cells need enough free whole beams.
      if (cell.beams_needed >= 2 &&
          budgets[si].beams_free() < cell.beams_needed) {
        continue;
      }
      bool take = best_sat < 0;
      switch (config_.strategy) {
        case Strategy::kMostSlack:
          take = take || slack > best_slack;
          break;
        case Strategy::kBestFit:
          take = take || slack < best_slack;
          break;
        case Strategy::kFirstFit:
          break;  // keep the first feasible satellite
      }
      if (take) {
        best_sat = static_cast<std::int64_t>(si);
        best_slack = slack;
        if (config_.strategy == Strategy::kFirstFit) break;
      }
    }
    if (best_sat < 0) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    auto& budget = budgets[static_cast<std::size_t>(best_sat)];
    const bool ok = cell.beams_needed >= 2
                        ? budget.reserve_whole(cell.beams_needed)
                        : budget.reserve_shared_slot();
    if (!ok) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    sat_touched[static_cast<std::size_t>(best_sat)] = true;
    result.assignments.push_back(
        Assignment{ci, static_cast<std::uint32_t>(best_sat),
                   cell.beams_needed >= 2 ? cell.beams_needed : 0U});
    result.locations_served += cell.locations;
  }

  double util_sum = 0.0;
  std::size_t util_n = 0;
  for (std::size_t si = 0; si < sats.size(); ++si) {
    if (!sat_touched[si]) continue;
    util_sum += static_cast<double>(budgets[si].beams_used()) /
                static_cast<double>(config_.beams_per_satellite);
    ++util_n;
  }
  result.mean_beam_utilization = util_n == 0 ? 0.0 : util_sum /
                                                         static_cast<double>(
                                                             util_n);
  return result;
}

}  // namespace leodivide::sim
