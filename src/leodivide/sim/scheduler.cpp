#include "leodivide/sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/orbit/kernels.hpp"
#include "leodivide/sim/beam.hpp"

namespace leodivide::sim {

namespace {

// Derives the coverage-cone geometry for an orbit radius and elevation
// mask. The operation order is kept exactly as the original inline
// derivation (alt = radius - R; ratio = R / (R + alt)) so cos_psi — and
// therefore every schedule — stays bit-identical with traces produced by
// pre-index builds. All satellites share one altitude in a Walker shell;
// the radius comes from the first state (robust to small numerical
// spread). Memoized per workspace via CoverageGeometry::matches.
CoverageGeometry derive_geometry(double radius_km,
                                 double min_elevation_deg) {
  CoverageGeometry g;
  g.radius_km = radius_km;
  g.min_elevation_deg = min_elevation_deg;
  const double alt_km = radius_km - geo::kEarthRadiusKm;
  const double ratio = geo::kEarthRadiusKm / (geo::kEarthRadiusKm + alt_km);
  const double eps = geo::deg2rad(min_elevation_deg);
  g.psi_rad = std::acos(ratio * std::cos(eps)) - eps;
  g.cos_psi = std::cos(g.psi_rad);
  return g;
}

// Radius used when there are no satellite states (the geometry is then
// irrelevant — nothing can be assigned — but psi must stay well-defined
// for the index). Matches the historical 550 km default.
double first_radius_km(const std::vector<orbit::SatState>& sats) {
  return sats.empty() ? geo::kEarthRadiusKm + 550.0
                      : sats.front().ecef_km.norm();
}

}  // namespace

BeamScheduler::BeamScheduler(std::vector<SchedCell> cells,
                             SchedulerConfig config)
    : cells_(std::move(cells)), config_(config) {
  if (config_.beams_per_satellite == 0 || config_.beamspread == 0) {
    throw std::invalid_argument("BeamScheduler: zero beams or beamspread");
  }
  order_.resize(cells_.size());
  std::iota(order_.begin(), order_.end(), 0U);
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (cells_[a].beams_needed != cells_[b].beams_needed) {
                return cells_[a].beams_needed > cells_[b].beams_needed;
              }
              return cells_[a].locations > cells_[b].locations;
            });
  cell_units_.reserve(cells_.size());
  for (const auto& cell : cells_) cell_units_.push_back(cell.ecef_km.unit());
}

std::vector<SchedCell> BeamScheduler::cells_from_profile(
    const demand::DemandProfile& profile,
    const core::SatelliteCapacityModel& model, double oversub) {
  std::vector<SchedCell> out;
  out.reserve(profile.cell_count());
  for (const auto& cell : profile.cells()) {
    SchedCell sc;
    sc.center = cell.center;
    sc.ecef_km = geo::spherical_to_cartesian(cell.center, geo::kEarthRadiusKm);
    sc.locations = cell.underserved;
    sc.beams_needed = std::max(1U, model.beams_needed(cell.underserved,
                                                      oversub));
    out.push_back(sc);
  }
  return out;
}

ScheduleResult BeamScheduler::schedule(
    const std::vector<orbit::SatState>& sats) const {
  ScheduleWorkspace workspace;
  ScheduleResult result;
  schedule(sats, workspace, result);
  return result;
}

void BeamScheduler::schedule(const std::vector<orbit::SatState>& sats,
                             ScheduleWorkspace& ws,
                             ScheduleResult& result) const {
  const obs::Span span("sim.schedule");
  result.assignments.clear();
  result.unassigned_cells.clear();
  result.locations_served = 0;
  result.locations_total = 0;
  result.mean_beam_utilization = 0.0;
  if (cells_.empty()) return;

  const double radius_km = first_radius_km(sats);
  if (!ws.geometry.matches(radius_km, config_.min_elevation_deg)) {
    ws.geometry = derive_geometry(radius_km, config_.min_elevation_deg);
  }
  const double cos_psi = ws.geometry.cos_psi;

  ws.budgets.assign(
      sats.size(), BeamBudget(config_.beams_per_satellite, config_.beamspread));
  ws.sat_touched.assign(sats.size(), 0);

  // SoA unit vectors of the satellite positions for the cheap visibility
  // test: cell "sees" sat iff the central angle between their radials is
  // <= psi, i.e. the unit dot is >= cos(psi).
  ws.unit_x.resize(sats.size());
  ws.unit_y.resize(sats.size());
  ws.unit_z.resize(sats.size());
  ws.visible.resize(sats.size());
  for (std::size_t si = 0; si < sats.size(); ++si) {
    const geo::Vec3 u = sats[si].ecef_km.unit();
    ws.unit_x[si] = u.x;
    ws.unit_y[si] = u.y;
    ws.unit_z[si] = u.z;
  }

  if (!sats.empty()) ws.index.build(sats, ws.geometry.psi_rad);

  std::uint64_t candidates_scanned = 0;
  for (std::uint32_t ci : order_) {
    const SchedCell& cell = cells_[ci];
    result.locations_total += cell.locations;
    if (sats.empty()) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    const geo::Vec3& cell_unit = cell_units_[ci];
    ws.index.query_unsorted(cell.center, ws.candidates);
    candidates_scanned += ws.candidates.size();

    // SIMD exact-visibility compaction: keep the candidates whose unit dot
    // with the cell radial passes cos_psi, in candidate order. The kernel
    // is bit-identical to the scalar test it replaced (tests/test_simd.cpp)
    // so the survivor sequence — and therefore the schedule — is unchanged.
    const std::size_t n_visible = orbit::filter_visible(
        cell_unit.x, cell_unit.y, cell_unit.z, ws.unit_x.data(),
        ws.unit_y.data(), ws.unit_z.data(), ws.candidates.data(),
        ws.candidates.size(), cos_psi, ws.visible.data());

    // Selection is order-independent: the naive ascending scan with strict
    // improvement picks the lowest-indexed feasible satellite attaining
    // the best slack (max for kMostSlack, min for kBestFit, any for
    // kFirstFit), so scanning the unsorted candidate set with an explicit
    // index tie-break chooses the identical satellite — byte-identical
    // schedules without sorting candidates per cell (pinned by the
    // equivalence suite).
    std::int64_t best_sat = -1;
    std::uint32_t best_slack = 0;
    for (std::size_t vi = 0; vi < n_visible; ++vi) {
      const std::uint32_t si = ws.visible[vi];
      const std::uint32_t slack = ws.budgets[si].slack();
      if (slack == 0) continue;
      // Whole-beam cells need enough free whole beams.
      if (cell.beams_needed >= 2 &&
          ws.budgets[si].beams_free() < cell.beams_needed) {
        continue;
      }
      const auto sat = static_cast<std::int64_t>(si);
      bool take = best_sat < 0;
      switch (config_.strategy) {
        case Strategy::kMostSlack:
          take = take || slack > best_slack ||
                 (slack == best_slack && sat < best_sat);
          break;
        case Strategy::kBestFit:
          take = take || slack < best_slack ||
                 (slack == best_slack && sat < best_sat);
          break;
        case Strategy::kFirstFit:
          take = take || sat < best_sat;
          break;
      }
      if (take) {
        best_sat = sat;
        best_slack = slack;
      }
    }
    if (best_sat < 0) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    auto& budget = ws.budgets[static_cast<std::size_t>(best_sat)];
    const bool ok = cell.beams_needed >= 2
                        ? budget.reserve_whole(cell.beams_needed)
                        : budget.reserve_shared_slot();
    if (!ok) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    ws.sat_touched[static_cast<std::size_t>(best_sat)] = 1;
    result.assignments.push_back(
        Assignment{ci, static_cast<std::uint32_t>(best_sat),
                   cell.beams_needed >= 2 ? cell.beams_needed : 0U});
    result.locations_served += cell.locations;
  }

  double util_sum = 0.0;
  std::size_t util_n = 0;
  for (std::size_t si = 0; si < sats.size(); ++si) {
    if (ws.sat_touched[si] == 0) continue;
    util_sum += static_cast<double>(ws.budgets[si].beams_used()) /
                static_cast<double>(config_.beams_per_satellite);
    ++util_n;
  }
  result.mean_beam_utilization = util_n == 0 ? 0.0 : util_sum /
                                                         static_cast<double>(
                                                             util_n);

  if (obs::metrics_enabled()) {
    static obs::Counter& candidates =
        obs::registry().counter("sim.sched.candidates");
    static obs::Counter& pruned = obs::registry().counter("sim.sched.pruned");
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(cells_.size()) *
        static_cast<std::uint64_t>(sats.size());
    candidates.add(candidates_scanned);
    pruned.add(pairs - candidates_scanned);
  }
}

ScheduleResult BeamScheduler::schedule_reference(
    const std::vector<orbit::SatState>& sats) const {
  ScheduleResult result;
  if (cells_.empty()) return result;

  // Precompute the geometry threshold: a satellite is usable by a cell when
  // the cell lies within the coverage central angle for the elevation mask.
  const double cos_psi =
      derive_geometry(first_radius_km(sats), config_.min_elevation_deg)
          .cos_psi;

  std::vector<BeamBudget> budgets(
      sats.size(), BeamBudget(config_.beams_per_satellite, config_.beamspread));

  // Unit vectors of satellite positions for the cheap visibility test.
  std::vector<geo::Vec3> sat_units;
  sat_units.reserve(sats.size());
  for (const auto& s : sats) sat_units.push_back(s.ecef_km.unit());

  std::vector<bool> sat_touched(sats.size(), false);

  for (std::uint32_t ci : order_) {
    const SchedCell& cell = cells_[ci];
    result.locations_total += cell.locations;
    const geo::Vec3 cell_unit = cell.ecef_km.unit();

    std::int64_t best_sat = -1;
    std::uint32_t best_slack = 0;
    for (std::size_t si = 0; si < sats.size(); ++si) {
      if (cell_unit.dot(sat_units[si]) < cos_psi) continue;  // not visible
      const std::uint32_t slack = budgets[si].slack();
      if (slack == 0) continue;
      // Whole-beam cells need enough free whole beams.
      if (cell.beams_needed >= 2 &&
          budgets[si].beams_free() < cell.beams_needed) {
        continue;
      }
      bool take = best_sat < 0;
      switch (config_.strategy) {
        case Strategy::kMostSlack:
          take = take || slack > best_slack;
          break;
        case Strategy::kBestFit:
          take = take || slack < best_slack;
          break;
        case Strategy::kFirstFit:
          break;  // keep the first feasible satellite
      }
      if (take) {
        best_sat = static_cast<std::int64_t>(si);
        best_slack = slack;
        if (config_.strategy == Strategy::kFirstFit) break;
      }
    }
    if (best_sat < 0) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    auto& budget = budgets[static_cast<std::size_t>(best_sat)];
    const bool ok = cell.beams_needed >= 2
                        ? budget.reserve_whole(cell.beams_needed)
                        : budget.reserve_shared_slot();
    if (!ok) {
      result.unassigned_cells.push_back(ci);
      continue;
    }
    sat_touched[static_cast<std::size_t>(best_sat)] = true;
    result.assignments.push_back(
        Assignment{ci, static_cast<std::uint32_t>(best_sat),
                   cell.beams_needed >= 2 ? cell.beams_needed : 0U});
    result.locations_served += cell.locations;
  }

  double util_sum = 0.0;
  std::size_t util_n = 0;
  for (std::size_t si = 0; si < sats.size(); ++si) {
    if (!sat_touched[si]) continue;
    util_sum += static_cast<double>(budgets[si].beams_used()) /
                static_cast<double>(config_.beams_per_satellite);
    ++util_n;
  }
  result.mean_beam_utilization = util_n == 0 ? 0.0 : util_sum /
                                                         static_cast<double>(
                                                             util_n);
  return result;
}

}  // namespace leodivide::sim
