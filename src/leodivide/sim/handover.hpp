#pragma once
// Handover accounting. Because LEO satellites sweep overhead (Section 2.2:
// "satellites constantly replace their spot beams ... as old cells exit the
// satellite's field of view"), a cell's serving satellite changes every few
// minutes. This module measures that churn across consecutive schedules —
// a service-quality dimension the capacity model abstracts away.

#include <cstdint>
#include <vector>

#include "leodivide/sim/scheduler.hpp"

namespace leodivide::sim {

/// Churn between two consecutive epoch schedules over the same cell list.
struct HandoverStats {
  std::size_t cells_tracked = 0;   ///< cells assigned in both epochs
  std::size_t handovers = 0;       ///< tracked cells whose satellite changed
  std::size_t cells_dropped = 0;   ///< assigned before, unassigned now
  std::size_t cells_acquired = 0;  ///< unassigned before, assigned now

  /// Fraction of tracked cells that switched satellites.
  [[nodiscard]] double handover_rate() const noexcept {
    return cells_tracked == 0
               ? 0.0
               : static_cast<double>(handovers) /
                     static_cast<double>(cells_tracked);
  }

  /// Field-wise accumulation: totals across a sequence of transitions (the
  /// event engine sums the churn of every schedule change it observes).
  HandoverStats& operator+=(const HandoverStats& other) noexcept {
    cells_tracked += other.cells_tracked;
    handovers += other.handovers;
    cells_dropped += other.cells_dropped;
    cells_acquired += other.cells_acquired;
    return *this;
  }

  friend bool operator==(const HandoverStats&, const HandoverStats&) = default;
};

/// Reusable per-cell assignment maps for compare_schedules; one instance
/// per caller, reused across transitions so the steady-state comparison
/// loop performs no heap allocation.
struct HandoverScratch {
  std::vector<std::int64_t> before;
  std::vector<std::int64_t> after;
};

/// Compares two schedules. `cell_count` is the size of the scheduler's
/// cell list (assignments index into it); throws std::invalid_argument if
/// any assignment is out of range.
[[nodiscard]] HandoverStats compare_schedules(const ScheduleResult& before,
                                              const ScheduleResult& after,
                                              std::size_t cell_count);

/// As above, reusing `scratch`'s map capacity (zero allocations once
/// warmed to `cell_count`).
[[nodiscard]] HandoverStats compare_schedules(const ScheduleResult& before,
                                              const ScheduleResult& after,
                                              std::size_t cell_count,
                                              HandoverScratch& scratch);

}  // namespace leodivide::sim
