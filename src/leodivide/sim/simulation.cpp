#include "leodivide/sim/simulation.hpp"

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/parallel_for.hpp"
#include "leodivide/sim/coverage.hpp"
#include "leodivide/sim/workspace.hpp"

namespace leodivide::sim {

Simulation::Simulation(SimulationConfig config,
                       const demand::DemandProfile& profile,
                       const core::SatelliteCapacityModel& model)
    : config_(config),
      scheduler_(BeamScheduler::cells_from_profile(profile, model,
                                                   config.oversub_target),
                 config.scheduler),
      orbits_(orbit::make_constellation(config.shell)) {}

std::vector<EpochCoverage> Simulation::run(
    runtime::Executor& executor) const {
  const obs::Span obs_span("sim.run");
  const SimClock clock(config_.duration_s, config_.step_s);
  if (obs::metrics_enabled()) {
    static obs::Counter& epochs = obs::registry().counter("sim.epochs");
    epochs.add(clock.epochs());
  }
  std::vector<EpochCoverage> trace(clock.epochs());
  // One workspace + schedule buffer per chunk: after the first epoch of a
  // chunk warms the buffers, the remaining epochs run without any heap
  // allocation (pinned by the equivalence suite). Each epoch is still
  // computed independently and writes only its own trace slot, so the body
  // is range-oblivious and the trace is identical for every thread count.
  runtime::parallel_for(
      executor, 0, clock.epochs(),
      // leolint:allow(parallel-capture): each epoch writes only its own trace slot
      [this, &trace, &clock](std::size_t lo, std::size_t hi) {
        ScheduleWorkspace workspace;
        ScheduleResult schedule;
        for (std::size_t e = lo; e < hi; ++e) {
          const obs::Span epoch_span("sim.epoch");
          const double t = clock.time_at(e);
          orbit::propagate_all(orbits_, t, workspace.states);
          scheduler_.schedule(workspace.states, workspace, schedule);
          trace[e] = summarize_epoch(schedule, scheduler_.cells().size(), t,
                                     workspace.sat_dedup);
        }
      });
  return trace;
}

std::vector<EpochCoverage> Simulation::run() const {
  return run(runtime::global_executor());
}

SimulationReport Simulation::run_report() const { return summarize(run()); }

}  // namespace leodivide::sim
