#include "leodivide/sim/simulation.hpp"

namespace leodivide::sim {

Simulation::Simulation(SimulationConfig config,
                       const demand::DemandProfile& profile,
                       const core::SatelliteCapacityModel& model)
    : config_(config),
      scheduler_(BeamScheduler::cells_from_profile(profile, model,
                                                   config.oversub_target),
                 config.scheduler),
      orbits_(orbit::make_constellation(config.shell)) {}

std::vector<EpochCoverage> Simulation::run() const {
  const SimClock clock(config_.duration_s, config_.step_s);
  std::vector<EpochCoverage> trace;
  trace.reserve(clock.epochs());
  for (std::size_t e = 0; e < clock.epochs(); ++e) {
    const double t = clock.time_at(e);
    const auto states = orbit::propagate_all(orbits_, t);
    const auto schedule = scheduler_.schedule(states);
    trace.push_back(summarize_epoch(schedule, scheduler_.cells().size(), t));
  }
  return trace;
}

SimulationReport Simulation::run_report() const { return summarize(run()); }

}  // namespace leodivide::sim
