#include "leodivide/sim/simulation.hpp"

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/parallel_for.hpp"

namespace leodivide::sim {

Simulation::Simulation(SimulationConfig config,
                       const demand::DemandProfile& profile,
                       const core::SatelliteCapacityModel& model)
    : config_(config),
      scheduler_(BeamScheduler::cells_from_profile(profile, model,
                                                   config.oversub_target),
                 config.scheduler),
      orbits_(orbit::make_constellation(config.shell)) {}

std::vector<EpochCoverage> Simulation::run(
    runtime::Executor& executor) const {
  const obs::Span obs_span("sim.run");
  const SimClock clock(config_.duration_s, config_.step_s);
  if (obs::metrics_enabled()) {
    static obs::Counter& epochs = obs::registry().counter("sim.epochs");
    epochs.add(clock.epochs());
  }
  std::vector<double> times(clock.epochs());
  std::vector<ScheduleResult> schedules(clock.epochs());
  runtime::parallel_for_each(executor, 0, clock.epochs(), [&](std::size_t e) {
    const obs::Span epoch_span("sim.epoch");
    times[e] = clock.time_at(e);
    const auto states = orbit::propagate_all(orbits_, times[e]);
    schedules[e] = scheduler_.schedule(states);
  });
  return summarize_epochs(schedules, scheduler_.cells().size(), times,
                          executor);
}

std::vector<EpochCoverage> Simulation::run() const {
  return run(runtime::global_executor());
}

SimulationReport Simulation::run_report() const { return summarize(run()); }

}  // namespace leodivide::sim
