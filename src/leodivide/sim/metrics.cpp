#include "leodivide/sim/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace leodivide::sim {

SimulationReport summarize(const std::vector<EpochCoverage>& epochs) {
  if (epochs.empty()) {
    throw std::invalid_argument("summarize: no epochs");
  }
  SimulationReport r;
  r.epochs = epochs.size();
  r.min_cell_coverage = 1.0;
  r.min_location_coverage = 1.0;
  for (const auto& e : epochs) {
    const double cc = e.cell_coverage();
    const double lc = e.location_coverage();
    r.min_cell_coverage = std::min(r.min_cell_coverage, cc);
    r.max_cell_coverage = std::max(r.max_cell_coverage, cc);
    r.mean_cell_coverage += cc;
    r.min_location_coverage = std::min(r.min_location_coverage, lc);
    r.mean_location_coverage += lc;
    r.mean_beam_utilization += e.mean_beam_utilization;
    r.mean_satellites_in_view += static_cast<double>(e.satellites_in_view);
  }
  const auto n = static_cast<double>(epochs.size());
  r.mean_cell_coverage /= n;
  r.mean_location_coverage /= n;
  r.mean_beam_utilization /= n;
  r.mean_satellites_in_view /= n;
  return r;
}

}  // namespace leodivide::sim
