#pragma once
// Beam bookkeeping for the scheduler: what one satellite's beams are doing
// at an epoch.

#include <cstdint>

namespace leodivide::sim {

/// Per-satellite beam budget tracker. A satellite has `total_beams` user
/// beams. A cell needing b >= 2 beams consumes b whole beams. Cells needing
/// one beam are packed into shared beams: each shared beam carries up to
/// `beamspread` cells.
class BeamBudget {
 public:
  BeamBudget(std::uint32_t total_beams, std::uint32_t beamspread);

  /// Attempts to reserve `beams` whole beams; false if insufficient.
  [[nodiscard]] bool reserve_whole(std::uint32_t beams) noexcept;

  /// Attempts to reserve one shared-slot (a 1/beamspread share of a beam);
  /// opens a new shared beam when needed. False when no beam is free.
  [[nodiscard]] bool reserve_shared_slot() noexcept;

  [[nodiscard]] std::uint32_t beams_free() const noexcept {
    return beams_free_;
  }
  [[nodiscard]] std::uint32_t beams_used() const noexcept {
    return total_ - beams_free_;
  }
  [[nodiscard]] std::uint32_t shared_slots_free() const noexcept {
    return shared_slots_free_;
  }
  [[nodiscard]] std::uint32_t cells_assigned() const noexcept {
    return cells_assigned_;
  }

  /// Remaining capacity in cell units: whole-beam cells it could still take
  /// plus open shared slots (used by the scheduler's satellite choice).
  [[nodiscard]] std::uint32_t slack() const noexcept;

 private:
  std::uint32_t total_;
  std::uint32_t beamspread_;
  std::uint32_t beams_free_;
  std::uint32_t shared_slots_free_ = 0;
  std::uint32_t cells_assigned_ = 0;
};

}  // namespace leodivide::sim
