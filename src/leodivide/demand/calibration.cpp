#include "leodivide/demand/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "leodivide/geo/angle.hpp"
#include "leodivide/demand/location.hpp"

namespace leodivide::demand::paper {

double binding_latitude_for_k(double k, double cell_area_km2,
                              double inclination_deg) {
  if (k <= 0.0 || cell_area_km2 <= 0.0) {
    throw std::invalid_argument("binding_latitude_for_k: non-positive input");
  }
  const double r2 = geo::kEarthRadiusKm * geo::kEarthRadiusKm;
  const double term =
      k * cell_area_km2 / (2.0 * geo::kPi * geo::kPi * r2);
  const double si = std::sin(geo::deg2rad(inclination_deg));
  const double sin2_phi = si * si - term * term;
  if (sin2_phi < 0.0) {
    throw std::domain_error(
        "binding_latitude_for_k: K unreachable at this inclination");
  }
  return geo::rad2deg(std::asin(std::sqrt(sin2_phi)));
}

stats::PiecewiseQuantile cell_count_quantile() {
  return stats::PiecewiseQuantile{{
      {0.00, 1.0},
      {0.36, 62.0},
      {0.90, kPerCellP90},
      {0.99, kPerCellP99},
      {1.00, 3400.0},
  }};
}

stats::PiecewiseQuantile income_quantile() {
  return stats::PiecewiseQuantile{{
      {0.0, kMinCountyIncomeUsd},
      // F4: comparable plans (Spectrum $50/mo -> $30,000 threshold) are
      // affordable for > 99.99% of locations, so at most 0.01% of the
      // location-weighted mass sits below $30,000.
      {0.0001, 30'000.0},
      {kFractionBelowLifelineThreshold, 66'450.0},
      {kFractionBelowStarlinkThreshold, 72'000.0},
      {1.0, kMaxCountyIncomeUsd},
  }};
}

std::uint32_t max_locations_at_oversub(double cell_capacity_gbps,
                                       double oversub) {
  if (cell_capacity_gbps <= 0.0 || oversub <= 0.0) {
    throw std::invalid_argument("max_locations_at_oversub: non-positive input");
  }
  return static_cast<std::uint32_t>(
      std::floor(cell_capacity_gbps * oversub / location_demand_gbps()));
}

}  // namespace leodivide::demand::paper
