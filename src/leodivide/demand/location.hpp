#pragma once
// Broadband-serviceable locations, FCC Broadband Data Collection style.
// A location is a structure (house, business) that could be served by
// broadband; the FCC National Broadband Map records the best service each
// ISP claims to offer there. A location is "served" under the federal
// reliable-broadband definition if some ISP offers >= 100 Mbps down and
// >= 20 Mbps up; otherwise it is unserved or underserved ("un(der)served").

#include <cstdint>
#include <string>

#include "leodivide/geo/geopoint.hpp"

namespace leodivide::demand {

/// Federal "reliable broadband" thresholds (FCC), Mbps.
inline constexpr double kReliableDownMbps = 100.0;
inline constexpr double kReliableUpMbps = 20.0;

/// Access technology of a location's best offer.
enum class Technology : std::uint8_t {
  kNone = 0,        ///< no terrestrial offer at all
  kDsl,
  kCable,
  kFiber,
  kFixedWireless,
  kGeoSatellite,    ///< legacy GEO satellite offers (not "reliable")
};

[[nodiscard]] std::string to_string(Technology t);

/// Parses the string produced by to_string; throws std::invalid_argument
/// for unknown names.
[[nodiscard]] Technology technology_from_string(const std::string& s);

/// Advertised service speeds of an offer.
struct ServiceLevel {
  double down_mbps = 0.0;
  double up_mbps = 0.0;
  friend bool operator==(const ServiceLevel&, const ServiceLevel&) = default;
};

/// True if the offer meets the federal reliable-broadband definition.
[[nodiscard]] bool is_reliable(const ServiceLevel& offer) noexcept;

/// One broadband-serviceable location.
struct Location {
  std::uint64_t id = 0;
  geo::GeoPoint position;
  std::uint32_t county_index = 0;  ///< index into the dataset's county table
  ServiceLevel best_offer;
  Technology technology = Technology::kNone;

  /// Unserved or underserved under the federal definition.
  [[nodiscard]] bool underserved() const noexcept {
    return !is_reliable(best_offer);
  }

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const Location&, const Location&) = default;
};

/// Per-location downlink demand [Gbps] implied by the federal definition:
/// every location must be offered kReliableDownMbps.
[[nodiscard]] double location_demand_gbps() noexcept;

}  // namespace leodivide::demand
