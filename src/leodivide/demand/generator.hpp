#pragma once
// Synthetic national demand generator. Produces a DemandProfile (and
// optionally a location-level DemandDataset) over real CONUS geography whose
// per-cell count distribution and location-weighted county income
// distribution match every statistic the paper reports (see calibration.hpp
// and DESIGN.md). Generation is deterministic for a given config: location
// synthesis draws from per-cell RNG streams split off the seed with
// SplitMix64 (runtime/rng_split.hpp), so the output is byte-identical for
// every executor thread count.

#include <array>
#include <cstdint>

#include "leodivide/demand/dataset.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::demand {

/// Generator parameters.
struct GeneratorConfig {
  std::uint64_t seed = 42;

  /// Service-cell resolution (Starlink uses the res-5 equivalent).
  int resolution = hex::kServiceCellResolution;

  /// County-equivalents are groups of service cells sharing a parent cell
  /// at this coarser resolution.
  int county_resolution = 3;

  /// Overall scale knob: 1.0 reproduces the paper's 4.67M locations;
  /// smaller values generate proportionally smaller datasets for tests.
  double scale = 1.0;

  /// Plant the five >3465-location peak cells from the paper. Disabled
  /// automatically when scale is too small to fit them.
  bool plant_peak_cells = true;

  /// Cells that need the maximum beam count are constrained to latitudes
  /// at or above this bound so the calibrated binding cells stay binding.
  double heavy_cell_min_lat_deg = 37.0;
};

/// Deterministic synthetic generator, calibrated to the paper.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(GeneratorConfig config = {});

  /// Cell-level profile: per-cell un(der)served counts + county incomes.
  /// Runs the CONUS polyfill and peak-cell placement scans on `executor`;
  /// the profile is byte-identical for every thread count.
  [[nodiscard]] DemandProfile generate_profile(
      runtime::Executor& executor) const;

  /// As above, on the process-global executor (LEODIVIDE_THREADS).
  [[nodiscard]] DemandProfile generate_profile() const;

  /// Expands a profile to individual locations. `sample_fraction` in (0,1]
  /// keeps that fraction of each cell's locations (rounded up), for
  /// memory-bounded tests. Cells are filled in parallel on `executor`, each
  /// from its own split RNG stream into a precomputed slice, so ids,
  /// positions and offers are byte-identical for every thread count.
  [[nodiscard]] DemandDataset expand_locations(const DemandProfile& profile,
                                               double sample_fraction,
                                               runtime::Executor& executor) const;

  /// As above, on the process-global executor.
  [[nodiscard]] DemandDataset expand_locations(
      const DemandProfile& profile, double sample_fraction = 1.0) const;

  [[nodiscard]] const GeneratorConfig& config() const noexcept {
    return config_;
  }

  /// Geographic targets of the five planted peak cells. The first two sit
  /// at the latitudes derived from the paper's Table-2 constants (the
  /// full-service and 20:1 binding cells); see calibration.hpp.
  [[nodiscard]] static std::array<geo::GeoPoint, 5> planted_targets(
      int resolution);

 private:
  GeneratorConfig config_;
};

}  // namespace leodivide::demand
