#pragma once
// The two dataset granularities the analysis runs on:
//
//  * DemandProfile  — per-service-cell un(der)served location counts plus a
//    county table. This is the paper's working set: every capacity result
//    (Figs 1-3, Table 2) is a function of the per-cell count distribution,
//    and every affordability result (Fig 4) is a function of the
//    location-weighted county income distribution.
//
//  * DemandDataset  — individual FCC-BDC-style location records. Used by
//    examples and when loading real Broadband Data Collection extracts;
//    aggregate() reduces it to a DemandProfile.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "leodivide/demand/county.hpp"
#include "leodivide/demand/location.hpp"
#include "leodivide/hex/cellid.hpp"

namespace leodivide::demand {

/// Aggregate demand of one service cell.
struct CellDemand {
  hex::CellId cell;
  geo::GeoPoint center;
  std::uint32_t underserved = 0;   ///< un(der)served locations in the cell
  std::uint32_t county_index = 0;  ///< dominant county of the cell

  /// Downlink demand [Gbps] at the federal 100 Mbps per location.
  [[nodiscard]] double demand_gbps() const noexcept;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const CellDemand&, const CellDemand&) = default;
};

/// Cell-level demand profile: the paper's working dataset.
class DemandProfile {
 public:
  DemandProfile() = default;
  DemandProfile(std::vector<CellDemand> cells, CountyTable counties);

  [[nodiscard]] const std::vector<CellDemand>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const CountyTable& counties() const noexcept {
    return counties_;
  }
  [[nodiscard]] CountyTable& counties() noexcept { return counties_; }

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Mutable cell record, bounds-checked — the delta-application surface
  /// (see delta.hpp). Callers own the invariant that county aggregates stay
  /// consistent with per-cell edits; DeltaApplier maintains it for them.
  [[nodiscard]] CellDemand& cell_at(std::size_t index);

  /// Appends a cell (cells are append-only: existing indices never move,
  /// so per-cell state keyed by index survives). Validates the cell's
  /// county index against the county table; returns the new cell's index.
  std::size_t add_cell(CellDemand cell);

  /// Total un(der)served locations.
  [[nodiscard]] std::uint64_t total_locations() const noexcept;

  /// Per-cell counts as doubles, for the stats machinery.
  [[nodiscard]] std::vector<double> counts_as_doubles() const;

  /// The largest per-cell count (the "peak cell" of P2).
  [[nodiscard]] std::uint32_t peak_cell_count() const noexcept;

  /// Cells sorted by count descending (indices into cells()).
  [[nodiscard]] std::vector<std::size_t> cells_by_count_desc() const;

  /// Writes/reads the profile as two CSV streams (cells, counties).
  void save_csv(std::ostream& cells_out, std::ostream& counties_out) const;
  [[nodiscard]] static DemandProfile load_csv(std::istream& cells_in,
                                              std::istream& counties_in);

 private:
  std::vector<CellDemand> cells_;
  CountyTable counties_;
};

/// Location-level dataset.
class DemandDataset {
 public:
  DemandDataset() = default;
  DemandDataset(std::vector<Location> locations, CountyTable counties);

  [[nodiscard]] const std::vector<Location>& locations() const noexcept {
    return locations_;
  }
  [[nodiscard]] const CountyTable& counties() const noexcept {
    return counties_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return locations_.size(); }

  /// Number of locations failing the reliable-broadband test.
  [[nodiscard]] std::uint64_t underserved_count() const noexcept;

  /// CSV round trip (locations stream carries county FIPS by index).
  void save_csv(std::ostream& locations_out, std::ostream& counties_out) const;
  [[nodiscard]] static DemandDataset load_csv(std::istream& locations_in,
                                              std::istream& counties_in);

 private:
  std::vector<Location> locations_;
  CountyTable counties_;
};

}  // namespace leodivide::demand
