#include "leodivide/demand/region.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "leodivide/hex/polyfill.hpp"
#include "leodivide/stats/rng.hpp"

namespace leodivide::demand {

RegionGenerator::RegionGenerator(RegionSpec spec) : spec_(std::move(spec)) {
  if (spec_.total_locations == 0) {
    throw std::invalid_argument("RegionGenerator: zero locations");
  }
  if (spec_.county_resolution >= spec_.resolution) {
    throw std::invalid_argument(
        "RegionGenerator: county_resolution must be coarser than resolution");
  }
}

DemandProfile RegionGenerator::generate() const {
  const hex::HexGrid grid;
  const auto region = hex::polyfill(grid, spec_.outline, spec_.resolution);
  if (region.empty()) {
    throw std::runtime_error("RegionGenerator: outline contains no cells");
  }

  // Stratified counts.
  const double mean = spec_.cell_quantile.mean();
  auto n_cells = static_cast<std::size_t>(std::llround(
      static_cast<double>(spec_.total_locations) / std::max(1.0, mean)));
  n_cells = std::clamp<std::size_t>(n_cells, 1, region.size());
  std::vector<std::uint32_t> counts(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(n_cells);
    counts[i] = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(spec_.cell_quantile(p))));
  }
  // Exact-total fixup.
  long long diff = static_cast<long long>(spec_.total_locations);
  for (std::uint32_t c : counts) diff -= c;
  std::size_t cursor = n_cells / 2;
  std::size_t stuck_guard = 0;
  while (diff != 0 && stuck_guard < 100 * n_cells + 100) {
    auto& c = counts[cursor];
    if (diff > 0) {
      ++c;
      --diff;
    } else if (c > 1) {
      --c;
      ++diff;
    }
    cursor = (cursor + 1) % n_cells;
    ++stuck_guard;
  }

  // Seeded geographic shuffle.
  std::vector<std::size_t> order(region.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  stats::Pcg32 rng(spec_.seed, /*stream=*/11);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[rng.next_below(static_cast<std::uint32_t>(i))]);
  }

  std::vector<CellDemand> cells;
  cells.reserve(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const hex::CellId id = region[order[i]];
    cells.push_back(CellDemand{id, grid.center_of(id), counts[i], 0});
  }

  // Counties: coarse-parent groups, income stratified over location weight
  // in hash-shuffled order (decorrelated from geography).
  std::map<hex::CellId, std::vector<std::size_t>> by_parent;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    by_parent[grid.parent_of(cells[i].cell, spec_.county_resolution)]
        .push_back(i);
  }
  struct Draft {
    hex::CellId parent;
    std::uint64_t weight = 0;
    std::uint64_t key = 0;
  };
  std::vector<Draft> drafts;
  for (const auto& [parent, members] : by_parent) {
    Draft d;
    d.parent = parent;
    for (std::size_t i : members) d.weight += cells[i].underserved;
    d.key = stats::mix_seed(spec_.seed, parent.bits());
    drafts.push_back(d);
  }
  std::sort(drafts.begin(), drafts.end(),
            [](const Draft& a, const Draft& b) { return a.key < b.key; });
  const double total_weight = static_cast<double>(
      std::accumulate(drafts.begin(), drafts.end(), std::uint64_t{0},
                      [](std::uint64_t acc, const Draft& d) {
                        return acc + d.weight;
                      }));
  CountyTable counties;
  std::map<hex::CellId, std::uint32_t> county_of;
  double cum = 0.0;
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    const double mid =
        (cum + static_cast<double>(drafts[i].weight) / 2.0) / total_weight;
    cum += static_cast<double>(drafts[i].weight);
    County county;
    county.fips = std::to_string(10000 + i);
    county.fips[0] = '8';
    county.centroid = grid.center_of(drafts[i].parent);
    county.median_income_usd = std::round(spec_.income_quantile(mid));
    county.underserved_locations = drafts[i].weight;
    county_of[drafts[i].parent] = counties.add(std::move(county));
  }
  for (auto& cell : cells) {
    cell.county_index =
        county_of.at(grid.parent_of(cell.cell, spec_.county_resolution));
  }
  return DemandProfile(std::move(cells), std::move(counties));
}

namespace {

geo::Polygon rectangle(double lat_lo, double lat_hi, double lon_lo,
                       double lon_hi) {
  return geo::Polygon{{{lat_lo, lon_lo},
                       {lat_hi, lon_lo},
                       {lat_hi, lon_hi},
                       {lat_lo, lon_hi}}};
}

}  // namespace

RegionSpec dense_compact_region() {
  RegionSpec spec;
  spec.name = "dense-compact (delta)";
  spec.outline = rectangle(22.0, 26.0, 88.0, 92.5);
  spec.total_locations = 900'000;
  spec.cell_quantile = stats::PiecewiseQuantile{
      {{0.0, 20.0}, {0.5, 400.0}, {0.9, 2500.0}, {1.0, 9000.0}}};
  spec.income_quantile = stats::PiecewiseQuantile{
      {{0.0, 2'000.0}, {0.5, 6'000.0}, {0.9, 15'000.0}, {1.0, 40'000.0}}};
  spec.seed = 101;
  return spec;
}

RegionSpec sparse_expansive_region() {
  RegionSpec spec;
  spec.name = "sparse-expansive (plateau)";
  spec.outline = rectangle(-30.0, -18.0, 16.0, 28.0);
  spec.total_locations = 250'000;
  spec.cell_quantile = stats::PiecewiseQuantile{
      {{0.0, 1.0}, {0.8, 40.0}, {0.99, 300.0}, {1.0, 900.0}}};
  spec.income_quantile = stats::PiecewiseQuantile{
      {{0.0, 3'000.0}, {0.5, 9'000.0}, {1.0, 50'000.0}}};
  spec.seed = 102;
  return spec;
}

RegionSpec temperate_mixed_region() {
  RegionSpec spec;
  spec.name = "temperate-mixed (US-like)";
  spec.outline = rectangle(42.0, 50.0, 2.0, 16.0);
  spec.total_locations = 600'000;
  spec.cell_quantile = stats::PiecewiseQuantile{
      {{0.0, 1.0}, {0.36, 62.0}, {0.9, 552.0}, {0.99, 1437.0}, {1.0, 3400.0}}};
  spec.income_quantile = stats::PiecewiseQuantile{
      {{0.0, 20'000.0}, {0.6, 55'000.0}, {1.0, 110'000.0}}};
  spec.seed = 103;
  return spec;
}

}  // namespace leodivide::demand
