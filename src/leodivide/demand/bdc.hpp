#pragma once
// FCC Broadband Data Collection (BDC) ingestion. The National Broadband
// Map publishes per-provider availability CSVs with the schema
//
//   frn,provider_id,brand_name,location_id,technology,max_advertised_
//   download_speed,max_advertised_upload_speed,low_latency,business_
//   residential_code,state_usps,block_geoid,h3_res8_id
//
// plus a "location fabric" of coordinates. This module parses the
// availability schema (column order detected from the header, extra
// columns ignored), maps FCC technology codes to the library's enum,
// reduces multiple provider offers per location to the best offer, and
// joins coordinates — producing the same DemandDataset the synthetic
// generator yields, so real extracts drop straight into the analysis.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "leodivide/demand/dataset.hpp"

namespace leodivide::demand {

/// One parsed availability record (one provider's offer at one location).
struct BdcRecord {
  std::uint64_t location_id = 0;
  int technology_code = 0;
  double down_mbps = 0.0;
  double up_mbps = 0.0;
  bool low_latency = true;
  std::string state;
};

/// Maps an FCC BDC technology code to the library's Technology enum:
/// 10 copper/DSL, 40 cable, 50 fiber, 60/61 GEO/NGSO satellite,
/// 70/71/72 fixed wireless. Unknown codes map to kNone.
[[nodiscard]] Technology technology_from_bdc_code(int code);

/// Parses a BDC availability CSV. The first row must be a header
/// containing at least location_id, technology,
/// max_advertised_download_speed and max_advertised_upload_speed (any
/// order; other columns are ignored). Throws std::runtime_error on a
/// missing required column or malformed rows.
[[nodiscard]] std::vector<BdcRecord> read_bdc_availability(std::istream& in);

/// Coordinates for locations (the BDC "location fabric"): location_id ->
/// position. Parsed from a CSV with header columns location_id, latitude,
/// longitude (any order, extras ignored). Ordered map so that any
/// iteration downstream is deterministic by location id.
[[nodiscard]] std::map<std::uint64_t, geo::GeoPoint> read_bdc_fabric(
    std::istream& in);

/// Reduces availability records to one Location per location_id with the
/// best offer (max download, ties by upload), joined with fabric
/// coordinates. Records without fabric coordinates are dropped (their
/// count is returned via `dropped` when non-null). Low-latency=false
/// offers (GEO satellite) are excluded from "best" per the FCC's reliable
/// broadband definition. Locations are assigned to the single `county`
/// provided (real pipelines would join a county shapefile).
[[nodiscard]] DemandDataset build_dataset(
    const std::vector<BdcRecord>& records,
    const std::map<std::uint64_t, geo::GeoPoint>& fabric, County county,
    std::size_t* dropped = nullptr);

}  // namespace leodivide::demand
