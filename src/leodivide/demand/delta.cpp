#include "leodivide/demand/delta.hpp"

#include <limits>
#include <stdexcept>

namespace leodivide::demand {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("delta: " + what);
}

}  // namespace

std::string_view to_string(DeltaKind kind) noexcept {
  switch (kind) {
    case DeltaKind::kAddLocations:
      return "add_locations";
    case DeltaKind::kRemoveLocations:
      return "remove_locations";
    case DeltaKind::kUpgradeLocations:
      return "upgrade_locations";
    case DeltaKind::kSetPlanPrice:
      return "set_plan_price";
    case DeltaKind::kSetCountyIncome:
      return "set_county_income";
  }
  return "unknown";
}

DeltaApplier::DeltaApplier(DemandProfile& profile, const hex::HexGrid& grid,
                           int resolution)
    : profile_(&profile), grid_(&grid), resolution_(resolution) {
  const auto& cells = profile.cells();
  index_.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!index_.emplace(cells[i].cell.bits(), i).second) {
      fail("profile has duplicate cells");
    }
  }
}

DeltaEffect DeltaApplier::apply(const DeltaOp& op) {
  DeltaEffect effect;
  switch (op.kind) {
    case DeltaKind::kAddLocations: {
      if (op.count == 0) fail("add with zero count");
      if (!op.position.valid()) fail("add at invalid position");
      const hex::CellId id = grid_->cell_of(op.position, resolution_);
      const auto it = index_.find(id.bits());
      if (it != index_.end()) {
        // Existing cell: bump it (and its own county — op.county_index is
        // ignored, the cell keeps the county it was aggregated into).
        CellDemand& cell = profile_->cell_at(it->second);
        if (cell.underserved >
            std::numeric_limits<std::uint32_t>::max() - op.count) {
          fail("add overflows cell count");
        }
        cell.underserved += op.count;
        profile_->counties().at(cell.county_index).underserved_locations +=
            op.count;
        effect.cell_index = it->second;
      } else {
        if (op.county_index >= profile_->counties().size()) {
          fail("add with county index out of range");
        }
        // New cell: canonical center (same as the generator's aggregation),
        // appended so existing indices stay valid.
        const std::size_t idx = profile_->add_cell(
            CellDemand{id, grid_->center_of(id), op.count, op.county_index});
        index_.emplace(id.bits(), idx);
        profile_->counties().at(op.county_index).underserved_locations +=
            op.count;
        effect.cell_index = idx;
        effect.cell_added = true;
      }
      effect.cells_changed = true;
      effect.counties_changed = true;
      return effect;
    }
    case DeltaKind::kRemoveLocations:
    case DeltaKind::kUpgradeLocations: {
      const char* verb =
          op.kind == DeltaKind::kRemoveLocations ? "remove" : "upgrade";
      if (op.count == 0) fail(std::string(verb) + " with zero count");
      if (!op.position.valid()) {
        fail(std::string(verb) + " at invalid position");
      }
      const hex::CellId id = grid_->cell_of(op.position, resolution_);
      const auto it = index_.find(id.bits());
      if (it == index_.end()) {
        fail(std::string(verb) + " from a cell with no locations");
      }
      CellDemand& cell = profile_->cell_at(it->second);
      if (op.count > cell.underserved) {
        fail(std::string(verb) + " of more locations than the cell has");
      }
      // Cells may drain to zero but are kept: indices stay stable, and an
      // empty cell contributes nothing to any downstream aggregate.
      cell.underserved -= op.count;
      profile_->counties().at(cell.county_index).underserved_locations -=
          op.count;
      effect.cell_index = it->second;
      effect.cells_changed = true;
      effect.counties_changed = true;
      return effect;
    }
    case DeltaKind::kSetCountyIncome: {
      if (op.county_index >= profile_->counties().size()) {
        fail("income for county index out of range");
      }
      if (!(op.value > 0.0)) fail("income must be positive");
      profile_->counties().at(op.county_index).median_income_usd = op.value;
      effect.counties_changed = true;
      return effect;
    }
    case DeltaKind::kSetPlanPrice:
      fail("plan-price ops apply to a plan table, not a demand profile");
  }
  fail("unknown delta kind");
}

void apply_deltas(DemandProfile& profile, const hex::HexGrid& grid,
                  int resolution, const std::vector<DeltaOp>& ops) {
  DeltaApplier applier(profile, grid, resolution);
  for (const auto& op : ops) applier.apply(op);
}

}  // namespace leodivide::demand
