#pragma once
// Parametric region generator — the paper's stated future work ("we leave
// the analysis of Starlink's impact on other countries' connectivity goals
// as future work"). A RegionSpec describes any service region: its
// geographic outline, how many un(der)served locations it holds, how
// concentrated they are (a per-cell quantile function), and its income
// distribution. RegionGenerator turns a spec into a DemandProfile that the
// entire core analysis runs on unchanged.

#include <string>

#include "leodivide/demand/dataset.hpp"
#include "leodivide/geo/polygon.hpp"
#include "leodivide/hex/hexgrid.hpp"
#include "leodivide/stats/interpolate.hpp"

namespace leodivide::demand {

/// A hypothetical (or real) service region.
struct RegionSpec {
  std::string name;

  /// Region outline (lat/lon polygon). Defaults to a placeholder triangle;
  /// set it to the real region.
  geo::Polygon outline{
      std::vector<geo::GeoPoint>{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}};

  /// Total un(der)served locations in the region.
  std::uint64_t total_locations = 100'000;

  /// Quantile function of locations per non-empty cell.
  stats::PiecewiseQuantile cell_quantile{
      {{0.0, 1.0}, {0.9, 300.0}, {1.0, 2000.0}}};

  /// Location-weighted quantile function of county median income [USD-
  /// equivalent per year].
  stats::PiecewiseQuantile income_quantile{
      {{0.0, 5'000.0}, {0.5, 15'000.0}, {1.0, 60'000.0}}};

  std::uint64_t seed = 7;
  int resolution = hex::kServiceCellResolution;
  int county_resolution = 3;
};

/// Generates a cell-level DemandProfile for a region spec. Counts are
/// stratified draws from the cell quantile (deterministic for a seed),
/// assigned to a seeded shuffle of the region's cells; counties are
/// coarse-parent groups with incomes stratified over the income quantile,
/// exactly as the national generator does (see generator.cpp).
class RegionGenerator {
 public:
  explicit RegionGenerator(RegionSpec spec);

  [[nodiscard]] DemandProfile generate() const;
  [[nodiscard]] const RegionSpec& spec() const noexcept { return spec_; }

 private:
  RegionSpec spec_;
};

/// Ready-made hypothetical regions for cross-country comparison studies
/// (examples/region_study.cpp). Shapes and parameters are illustrative,
/// not census data.

/// A compact, densely settled region: small area, highly concentrated
/// demand, mid incomes (think a populous river delta).
[[nodiscard]] RegionSpec dense_compact_region();

/// A large sparse region: big area, low density, thin tail, low incomes
/// (think a sparsely settled plateau).
[[nodiscard]] RegionSpec sparse_expansive_region();

/// A mid-latitude temperate region resembling the US profile in miniature.
[[nodiscard]] RegionSpec temperate_mixed_region();

}  // namespace leodivide::demand
