#pragma once
// Calibration constants and distributions anchored to every statistic the
// paper reports. The real inputs (FCC National Broadband Map, Census ACS)
// are not redistributable; this module captures the statistics the paper's
// analysis actually consumes, so the synthetic generator reproduces the
// paper's numbers exactly. See DESIGN.md ("Substitutions") for the full
// derivation of each constant.

#include <array>
#include <cstdint>

#include "leodivide/stats/interpolate.hpp"

namespace leodivide::demand::paper {

// ---- Figure 1 / Section 2.2.1 statistics -------------------------------

/// Total un(der)served residential locations. Derived from the paper: the
/// 22,428 locations served above 20:1 are "0.48% of total".
inline constexpr std::uint64_t kTotalLocations = 4'672'500;

/// The five cells with more locations than a full-capacity cell can carry
/// at 20:1 oversubscription (the ">3465 locations" cells). Their existence
/// and sum are pinned by the paper: sum = 22,428; max = 5,998; count = 5
/// (22,428 - 5128 unservable = 17,300 = 5 x 3460 at the rounded 17.3 Gbps).
inline constexpr std::array<std::uint32_t, 5> kPlantedPeakCells{5998, 4580,
                                                                4200, 3900,
                                                                3750};

/// Sum of kPlantedPeakCells — the locations served above 20:1 in the
/// full-service deployment (F1).
inline constexpr std::uint64_t kPeakCellLocationSum = 22'428;

/// Published percentiles of the per-cell distribution (Fig 1).
inline constexpr double kPerCellP90 = 552.0;
inline constexpr double kPerCellP99 = 1437.0;
inline constexpr double kPerCellMax = 5998.0;

// ---- Table 2 reverse-engineered sizing constants ------------------------

/// Every row of the paper's Table 2 satisfies N(s) * (1 + 20 s) = K with
/// K constant per scenario to within 1e-4 relative spread. K is the
/// "cell-coverage units" the constellation must supply given the binding
/// cell's latitude; see core/sizing.
inline constexpr double kKFullService = 1'665'076.0;
inline constexpr double kK20To1 = 1'691'819.0;

/// Starlink shell-1 inclination [deg] used by the latitude-density model.
inline constexpr double kInclinationDeg = 53.0;

/// Latitude [deg] whose Walker-density satellite requirement equals K for
/// a given cell area: K * A = 2 pi^2 R^2 sqrt(sin^2 i - sin^2 phi).
/// Throws std::domain_error if K is unreachable at this inclination.
[[nodiscard]] double binding_latitude_for_k(double k, double cell_area_km2,
                                            double inclination_deg =
                                                kInclinationDeg);

// ---- Affordability constants (Section 4 / Figure 4) ---------------------

/// Minimum county median income implied by Fig 4's curve endpoints
/// (proportion 0.050 at $120/mo => $28,800/yr).
inline constexpr double kMinCountyIncomeUsd = 28'800.0;

/// Location-weighted fraction of un(der)served locations in counties whose
/// median income cannot afford Starlink with Lifeline ($66,450 threshold):
/// "nearly 3 million" of 4.67M.
inline constexpr double kFractionBelowLifelineThreshold = 0.635;

/// ... and without Lifeline ($72,000 threshold): 74.5% (abstract; 3.5M).
inline constexpr double kFractionBelowStarlinkThreshold = 0.745;

/// Richest-county median income for the synthetic income distribution
/// (loosely the top US county; the right tail does not affect any result).
inline constexpr double kMaxCountyIncomeUsd = 150'000.0;

// ---- Calibrated distributions -------------------------------------------

/// Quantile function of un(der)served locations per cell for cells with at
/// least one such location. Anchors: Fig 2's served-fraction floor implies
/// F(62) ~= 0.36; Fig 1 pins p90 = 552 and p99 = 1437; the upper anchor
/// 3400 keeps every *generated* cell below the 3465-location 20:1 limit so
/// that exactly the five planted cells exceed it.
[[nodiscard]] stats::PiecewiseQuantile cell_count_quantile();

/// Location-weighted quantile function of county median income for
/// un(der)served locations.
[[nodiscard]] stats::PiecewiseQuantile income_quantile();

/// Locations-per-cell threshold above which a full-capacity (4-beam) cell
/// exceeds `oversub`:1 oversubscription: floor(C * oversub / 0.1 Gbps).
[[nodiscard]] std::uint32_t max_locations_at_oversub(double cell_capacity_gbps,
                                                     double oversub);

}  // namespace leodivide::demand::paper
