#include "leodivide/demand/dataset.hpp"

#include <algorithm>
#include <charconv>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

#include "leodivide/io/csv.hpp"

namespace leodivide::demand {

namespace {

double to_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("CSV: bad double for ") + what +
                             ": '" + s + "'");
  }
}

std::uint64_t to_u64(const std::string& s, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("CSV: bad integer for ") + what +
                             ": '" + s + "'");
  }
  return v;
}

}  // namespace

double CellDemand::demand_gbps() const noexcept {
  return static_cast<double>(underserved) * location_demand_gbps();
}

DemandProfile::DemandProfile(std::vector<CellDemand> cells,
                             CountyTable counties)
    : cells_(std::move(cells)), counties_(std::move(counties)) {
  for (const auto& c : cells_) {
    if (c.county_index >= counties_.size()) {
      throw std::invalid_argument("DemandProfile: cell county out of range");
    }
  }
}

CellDemand& DemandProfile::cell_at(std::size_t index) {
  if (index >= cells_.size()) {
    throw std::out_of_range("DemandProfile: cell index out of range");
  }
  return cells_[index];
}

std::size_t DemandProfile::add_cell(CellDemand cell) {
  if (cell.county_index >= counties_.size()) {
    throw std::invalid_argument("DemandProfile: cell county out of range");
  }
  cells_.push_back(cell);
  return cells_.size() - 1;
}

std::uint64_t DemandProfile::total_locations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.underserved;
  return total;
}

std::vector<double> DemandProfile::counts_as_doubles() const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(static_cast<double>(c.underserved));
  return out;
}

std::uint32_t DemandProfile::peak_cell_count() const noexcept {
  std::uint32_t best = 0;
  for (const auto& c : cells_) best = std::max(best, c.underserved);
  return best;
}

std::vector<std::size_t> DemandProfile::cells_by_count_desc() const {
  std::vector<std::size_t> order(cells_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cells_[a].underserved != cells_[b].underserved) {
      return cells_[a].underserved > cells_[b].underserved;
    }
    return cells_[a].cell < cells_[b].cell;  // stable, deterministic tiebreak
  });
  return order;
}

void DemandProfile::save_csv(std::ostream& cells_out,
                             std::ostream& counties_out) const {
  io::CsvWriter cw(cells_out);
  cw.write_row({"cell_id", "lat", "lon", "underserved", "county_index"});
  for (const auto& c : cells_) {
    cw.write_row({c.cell.to_string(), std::to_string(c.center.lat_deg),
                  std::to_string(c.center.lon_deg),
                  std::to_string(c.underserved),
                  std::to_string(c.county_index)});
  }
  io::CsvWriter kw(counties_out);
  kw.write_row({"fips", "lat", "lon", "median_income_usd", "underserved"});
  for (const auto& k : counties_.all()) {
    kw.write_row({k.fips, std::to_string(k.centroid.lat_deg),
                  std::to_string(k.centroid.lon_deg),
                  std::to_string(k.median_income_usd),
                  std::to_string(k.underserved_locations)});
  }
}

DemandProfile DemandProfile::load_csv(std::istream& cells_in,
                                      std::istream& counties_in) {
  io::CsvRow row;
  CountyTable counties;
  {
    io::CsvReader reader(counties_in);
    bool header = true;
    while (reader.next(row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 5) throw std::runtime_error("county CSV: bad width");
      counties.add(County{row[0],
                          {to_double(row[1], "lat"), to_double(row[2], "lon")},
                          to_double(row[3], "income"),
                          to_u64(row[4], "underserved")});
    }
  }
  std::vector<CellDemand> cells;
  {
    io::CsvReader reader(cells_in);
    bool header = true;
    while (reader.next(row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 5) throw std::runtime_error("cell CSV: bad width");
      CellDemand cd;
      cd.cell = hex::CellId::from_bits(
          std::stoull(row[0], nullptr, 16));
      cd.center = {to_double(row[1], "lat"), to_double(row[2], "lon")};
      cd.underserved = static_cast<std::uint32_t>(to_u64(row[3], "count"));
      cd.county_index = static_cast<std::uint32_t>(to_u64(row[4], "county"));
      cells.push_back(cd);
    }
  }
  return DemandProfile(std::move(cells), std::move(counties));
}

DemandDataset::DemandDataset(std::vector<Location> locations,
                             CountyTable counties)
    : locations_(std::move(locations)), counties_(std::move(counties)) {
  for (const auto& l : locations_) {
    if (l.county_index >= counties_.size()) {
      throw std::invalid_argument("DemandDataset: location county out of range");
    }
  }
}

std::uint64_t DemandDataset::underserved_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : locations_) {
    if (l.underserved()) ++n;
  }
  return n;
}

void DemandDataset::save_csv(std::ostream& locations_out,
                             std::ostream& counties_out) const {
  io::CsvWriter lw(locations_out);
  lw.write_row({"id", "lat", "lon", "county_index", "down_mbps", "up_mbps",
                "technology"});
  for (const auto& l : locations_) {
    lw.write_row({std::to_string(l.id), std::to_string(l.position.lat_deg),
                  std::to_string(l.position.lon_deg),
                  std::to_string(l.county_index),
                  std::to_string(l.best_offer.down_mbps),
                  std::to_string(l.best_offer.up_mbps),
                  to_string(l.technology)});
  }
  io::CsvWriter kw(counties_out);
  kw.write_row({"fips", "lat", "lon", "median_income_usd", "underserved"});
  for (const auto& k : counties_.all()) {
    kw.write_row({k.fips, std::to_string(k.centroid.lat_deg),
                  std::to_string(k.centroid.lon_deg),
                  std::to_string(k.median_income_usd),
                  std::to_string(k.underserved_locations)});
  }
}

DemandDataset DemandDataset::load_csv(std::istream& locations_in,
                                      std::istream& counties_in) {
  io::CsvRow row;
  CountyTable counties;
  {
    io::CsvReader reader(counties_in);
    bool header = true;
    while (reader.next(row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 5) throw std::runtime_error("county CSV: bad width");
      counties.add(County{row[0],
                          {to_double(row[1], "lat"), to_double(row[2], "lon")},
                          to_double(row[3], "income"),
                          to_u64(row[4], "underserved")});
    }
  }
  std::vector<Location> locations;
  {
    io::CsvReader reader(locations_in);
    bool header = true;
    while (reader.next(row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 7) throw std::runtime_error("location CSV: bad width");
      Location l;
      l.id = to_u64(row[0], "id");
      l.position = {to_double(row[1], "lat"), to_double(row[2], "lon")};
      l.county_index = static_cast<std::uint32_t>(to_u64(row[3], "county"));
      l.best_offer = {to_double(row[4], "down"), to_double(row[5], "up")};
      l.technology = technology_from_string(row[6]);
      locations.push_back(l);
    }
  }
  return DemandDataset(std::move(locations), std::move(counties));
}

}  // namespace leodivide::demand
