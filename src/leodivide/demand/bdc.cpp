#include "leodivide/demand/bdc.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <stdexcept>

#include "leodivide/io/csv.hpp"

namespace leodivide::demand {

namespace {

std::size_t require_column(const io::CsvRow& header, const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::runtime_error("BDC: missing required column '" + name + "'");
}

std::int64_t find_column(const io::CsvRow& header, const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

double cell_to_double(const io::CsvRow& row, std::size_t col,
                      const char* what) {
  if (col >= row.size()) {
    throw std::runtime_error(std::string("BDC: short row at ") + what);
  }
  try {
    return std::stod(row[col]);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("BDC: bad value for ") + what +
                             ": '" + row[col] + "'");
  }
}

std::uint64_t cell_to_u64(const io::CsvRow& row, std::size_t col,
                          const char* what) {
  if (col >= row.size()) {
    throw std::runtime_error(std::string("BDC: short row at ") + what);
  }
  std::uint64_t v = 0;
  const std::string& s = row[col];
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("BDC: bad integer for ") + what +
                             ": '" + s + "'");
  }
  return v;
}

}  // namespace

Technology technology_from_bdc_code(int code) {
  switch (code) {
    case 10: return Technology::kDsl;
    case 40: return Technology::kCable;
    case 50: return Technology::kFiber;
    case 60:
    case 61: return Technology::kGeoSatellite;
    case 70:
    case 71:
    case 72: return Technology::kFixedWireless;
    default: return Technology::kNone;
  }
}

std::vector<BdcRecord> read_bdc_availability(std::istream& in) {
  io::CsvReader reader(in);
  io::CsvRow row;
  if (!reader.next(row)) {
    throw std::runtime_error("BDC: empty availability file");
  }
  const std::size_t col_loc = require_column(row, "location_id");
  const std::size_t col_tech = require_column(row, "technology");
  const std::size_t col_down =
      require_column(row, "max_advertised_download_speed");
  const std::size_t col_up =
      require_column(row, "max_advertised_upload_speed");
  const std::int64_t col_lat = find_column(row, "low_latency");
  const std::int64_t col_state = find_column(row, "state_usps");

  std::vector<BdcRecord> out;
  while (reader.next(row)) {
    BdcRecord rec;
    rec.location_id = cell_to_u64(row, col_loc, "location_id");
    rec.technology_code =
        static_cast<int>(cell_to_double(row, col_tech, "technology"));
    rec.down_mbps = cell_to_double(row, col_down, "download speed");
    rec.up_mbps = cell_to_double(row, col_up, "upload speed");
    if (col_lat >= 0 && static_cast<std::size_t>(col_lat) < row.size()) {
      rec.low_latency = row[static_cast<std::size_t>(col_lat)] != "0";
    }
    if (col_state >= 0 && static_cast<std::size_t>(col_state) < row.size()) {
      rec.state = row[static_cast<std::size_t>(col_state)];
    }
    out.push_back(std::move(rec));
  }
  return out;
}

std::map<std::uint64_t, geo::GeoPoint> read_bdc_fabric(std::istream& in) {
  io::CsvReader reader(in);
  io::CsvRow row;
  if (!reader.next(row)) {
    throw std::runtime_error("BDC: empty fabric file");
  }
  const std::size_t col_loc = require_column(row, "location_id");
  const std::size_t col_lat = require_column(row, "latitude");
  const std::size_t col_lon = require_column(row, "longitude");
  std::map<std::uint64_t, geo::GeoPoint> out;
  while (reader.next(row)) {
    const std::uint64_t id = cell_to_u64(row, col_loc, "location_id");
    out[id] = geo::GeoPoint{cell_to_double(row, col_lat, "latitude"),
                            cell_to_double(row, col_lon, "longitude")}
                  .normalized();
  }
  return out;
}

DemandDataset build_dataset(
    const std::vector<BdcRecord>& records,
    const std::map<std::uint64_t, geo::GeoPoint>& fabric, County county,
    std::size_t* dropped) {
  struct Best {
    ServiceLevel offer;
    Technology tech = Technology::kNone;
  };
  // std::map keeps output deterministic by location id.
  std::map<std::uint64_t, Best> best;
  for (const auto& rec : records) {
    // GEO offers don't satisfy the low-latency leg of the reliable
    // broadband definition; keep them only as a fallback technology tag.
    const bool eligible = rec.low_latency;
    auto& b = best[rec.location_id];
    const bool better =
        eligible && (rec.down_mbps > b.offer.down_mbps ||
                     (rec.down_mbps == b.offer.down_mbps &&
                      rec.up_mbps > b.offer.up_mbps));
    if (better) {
      b.offer = {rec.down_mbps, rec.up_mbps};
      b.tech = technology_from_bdc_code(rec.technology_code);
    } else if (b.tech == Technology::kNone) {
      b.tech = technology_from_bdc_code(rec.technology_code);
    }
  }
  CountyTable counties;
  county.underserved_locations = 0;
  const std::uint32_t county_index = counties.add(std::move(county));

  std::vector<Location> locations;
  std::size_t missing = 0;
  for (const auto& [id, b] : best) {
    const auto it = fabric.find(id);
    if (it == fabric.end()) {
      ++missing;
      continue;
    }
    Location loc;
    loc.id = id;
    loc.position = it->second;
    loc.county_index = county_index;
    loc.best_offer = b.offer;
    loc.technology = b.tech;
    if (loc.underserved()) {
      ++counties.at(county_index).underserved_locations;
    }
    locations.push_back(loc);
  }
  if (dropped != nullptr) *dropped = missing;
  return DemandDataset(std::move(locations), std::move(counties));
}

}  // namespace leodivide::demand
