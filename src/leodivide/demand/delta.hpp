#pragma once
// Demand deltas: the unit of change the analysis service applies between
// queries. The paper's what-if questions — what if a subsidy upgrades the
// locations of one tract, what if a plan price drops, what if new
// un(der)served locations appear — are all small edits to the demand
// profile (and its county table) that leave almost every cell untouched.
// A DeltaOp records one such edit; DeltaApplier applies ops to a
// DemandProfile in O(1) per op while keeping the county aggregates
// consistent, so the serving layer (serve/) can recompute only what an op
// actually dirtied.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "leodivide/demand/dataset.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::demand {

/// What one delta does.
enum class DeltaKind : std::uint8_t {
  kAddLocations = 1,      ///< new un(der)served locations at a position
  kRemoveLocations = 2,   ///< locations leave the un(der)served set
  kUpgradeLocations = 3,  ///< locations upgraded to reliable service
  kSetPlanPrice = 4,      ///< retail plan price change (plan table, not cells)
  kSetCountyIncome = 5,   ///< county median-income revision
};

/// Human-readable kind name ("add_locations", ...).
[[nodiscard]] std::string_view to_string(DeltaKind kind) noexcept;

/// One edit to the working scenario. Field use by kind:
///
///   kAddLocations      position, count, county_index (county of a cell
///                      that does not exist yet; ignored for existing cells,
///                      which keep their county)
///   kRemoveLocations   position, count
///   kUpgradeLocations  position, count (same cell arithmetic as remove;
///                      tracked separately because it models a subsidy, not
///                      attrition)
///   kSetPlanPrice      plan_name, value [USD/month]
///   kSetCountyIncome   county_index, value [USD/year]
struct DeltaOp {
  DeltaKind kind = DeltaKind::kAddLocations;
  geo::GeoPoint position;
  std::uint32_t count = 0;
  std::uint32_t county_index = 0;
  std::string plan_name;
  double value = 0.0;

  /// Exact (bit-level) equality; journal round-trip tests rely on it.
  friend bool operator==(const DeltaOp&, const DeltaOp&) = default;
};

/// What applying one op changed, for dirty tracking.
struct DeltaEffect {
  std::size_t cell_index = 0;     ///< touched cell (when cells_changed)
  bool cell_added = false;        ///< a new cell was appended to the profile
  bool cells_changed = false;     ///< some cell record mutated
  bool counties_changed = false;  ///< the county table mutated
};

/// Applies DeltaOps to one DemandProfile. Holds a cell-id index so each op
/// is O(1); new cells are *appended* (existing cell indices never move), so
/// downstream per-cell state keyed by index stays valid across ops.
///
/// The profile and grid are borrowed and must outlive the applier; the
/// profile must not be mutated by anyone else while the applier is live.
class DeltaApplier {
 public:
  DeltaApplier(DemandProfile& profile, const hex::HexGrid& grid,
               int resolution);

  /// Applies one op in place. Throws std::invalid_argument on any invalid
  /// op (zero count, unknown cell for remove/upgrade, removing more
  /// locations than a cell has, bad county index, non-positive income,
  /// plan-price op — plan prices live in a plan table, not the profile).
  /// The profile is unchanged when apply throws.
  DeltaEffect apply(const DeltaOp& op);

  [[nodiscard]] const DemandProfile& profile() const noexcept {
    return *profile_;
  }
  [[nodiscard]] int resolution() const noexcept { return resolution_; }

 private:
  DemandProfile* profile_;
  const hex::HexGrid* grid_;
  int resolution_;
  // Cell id bits -> index into profile().cells(). Lookups only; nothing
  // ever iterates it, so the map's order can't leak into results.
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

/// One-shot convenience: applies `ops` in order via a fresh DeltaApplier
/// (O(cells) index build + O(1) per op). Throws on the first invalid op,
/// with prior ops applied — callers needing atomicity apply to a copy.
void apply_deltas(DemandProfile& profile, const hex::HexGrid& grid,
                  int resolution, const std::vector<DeltaOp>& ops);

}  // namespace leodivide::demand
