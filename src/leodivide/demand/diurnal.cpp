#include "leodivide/demand/diurnal.hpp"

#include <cmath>
#include <stdexcept>

namespace leodivide::demand {

DiurnalCurve::DiurnalCurve(const std::array<double, 24>& hourly)
    : hourly_(hourly) {
  double sum = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    const double a = hourly_[h];
    if (a < 0.0 || a > 1.0) {
      throw std::invalid_argument("DiurnalCurve: activity outside [0, 1]");
    }
    sum += a;
    if (a > peak_) {
      peak_ = a;
      peak_hour_ = h;
    }
  }
  if (peak_ <= 0.0) {
    throw std::invalid_argument("DiurnalCurve: all-zero activity");
  }
  mean_ = sum / 24.0;
}

double DiurnalCurve::activity(double hour) const {
  double h = std::fmod(hour, 24.0);
  if (h < 0.0) h += 24.0;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = (lo + 1) % 24;
  const double t = h - std::floor(h);
  return hourly_[lo] + t * (hourly_[hi] - hourly_[lo]);
}

double DiurnalCurve::max_acceptable_oversubscription() const noexcept {
  return 1.0 / peak_;
}

DiurnalCurve residential_evening_peak() {
  return DiurnalCurve{{
      0.012, 0.008, 0.006, 0.005, 0.005, 0.007,  // 00-05: overnight trough
      0.010, 0.016, 0.022, 0.024, 0.024, 0.025,  // 06-11: morning shoulder
      0.026, 0.026, 0.026, 0.028, 0.031, 0.036,  // 12-17: afternoon ramp
      0.042, 0.047, 0.049, 0.050, 0.044, 0.028,  // 18-23: evening peak @21
  }};
}

}  // namespace leodivide::demand
