#pragma once
// GeoJSON export: render demand profiles and hex cells as FeatureCollections
// for inspection in any GIS tool (kepler.gl, QGIS, geojson.io). Each cell
// becomes a hexagon Polygon feature carrying its un(der)served count.

#include <iosfwd>

#include "leodivide/demand/dataset.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::demand {

/// Writes a profile's cells as a GeoJSON FeatureCollection. Each feature's
/// geometry is the cell's hexagon boundary; properties carry `cell_id`,
/// `underserved`, `demand_gbps`, and the county's `median_income_usd`.
/// Cells with fewer than `min_locations` un(der)served locations are
/// skipped (0 keeps everything).
void write_geojson(std::ostream& out, const DemandProfile& profile,
                   const hex::HexGrid& grid,
                   std::uint32_t min_locations = 0);

}  // namespace leodivide::demand
