#include "leodivide/demand/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "leodivide/demand/calibration.hpp"
#include "leodivide/geo/greatcircle.hpp"
#include "leodivide/geo/us_outline.hpp"
#include "leodivide/hex/polyfill.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/map_reduce.hpp"
#include "leodivide/runtime/rng_split.hpp"
#include "leodivide/stats/distributions.hpp"
#include "leodivide/stats/rng.hpp"

namespace leodivide::demand {

namespace {

// Locations-per-cell above which a cell needs two or more beams at the
// oversubscription ratios the paper sweeps (>= 15:1); such cells must
// respect the generator's latitude floor so the calibrated binding cells
// remain binding — a multi-beam cell further from the inclination latitude
// would otherwise dominate the sizing (see DESIGN.md).
constexpr std::uint32_t kHeavyCellThreshold = 650;

std::vector<std::size_t> shuffled_indices(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  stats::Pcg32 rng(seed, /*stream=*/1);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(static_cast<std::uint32_t>(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

// Index of the nearest not-yet-taken region cell to `target`. A sharded
// first-strict-min reduction: every shard keeps its first minimum and the
// in-order merge keeps the earliest, matching the serial scan exactly.
std::size_t nearest_free_cell(const hex::HexGrid& grid,
                              const std::vector<hex::CellId>& region,
                              const std::vector<bool>& taken,
                              const geo::GeoPoint& target,
                              runtime::Executor& executor) {
  struct Best {
    double d = 1e30;
    std::size_t i = 0;
    bool found = false;
  };
  const Best best = runtime::map_reduce<Best>(
      executor, 0, region.size(),
      [&grid, &region, &taken, &target](
          Best& shard, std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (taken[i]) continue;
          const double d = geo::distance_km(grid.center_of(region[i]), target);
          if (!shard.found || d < shard.d) {
            shard.d = d;
            shard.i = i;
            shard.found = true;
          }
        }
      },
      [](Best& into, Best&& from) {
        if (from.found && (!into.found || from.d < into.d)) into = from;
      },
      /*grain=*/512);
  return best.found ? best.i : region.size();
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(GeneratorConfig config)
    : config_(config) {
  if (config_.scale <= 0.0 || config_.scale > 1.0) {
    throw std::invalid_argument("GeneratorConfig: scale must be in (0, 1]");
  }
  if (config_.county_resolution >= config_.resolution) {
    throw std::invalid_argument(
        "GeneratorConfig: county_resolution must be coarser than resolution");
  }
}

std::array<geo::GeoPoint, 5> SyntheticGenerator::planted_targets(
    int resolution) {
  const double area = hex::cell_area_km2(resolution);
  // The two binding latitudes are derived from the paper's Table-2
  // constants; the remaining peaks sit safely north of both.
  const double lat_full = paper::binding_latitude_for_k(
      paper::kKFullService, area);
  const double lat_cap = paper::binding_latitude_for_k(paper::kK20To1, area);
  return {geo::GeoPoint{lat_full, -92.3},   // 5998: Ozarks, MO
          geo::GeoPoint{lat_cap, -89.7},    // 4580: TN/MO bootheel
          geo::GeoPoint{38.9, -83.1},       // 4200: Appalachian OH
          geo::GeoPoint{37.8, -81.2},       // 3900: West Virginia
          geo::GeoPoint{40.6, -78.4}};      // 3750: central PA
}

DemandProfile SyntheticGenerator::generate_profile(
    runtime::Executor& executor) const {
  const obs::Span obs_span("demand.generate_profile");
  const hex::HexGrid grid;
  const auto region =
      hex::polyfill(grid, geo::conus_outline(), config_.resolution, executor);
  if (region.empty()) {
    throw std::runtime_error("SyntheticGenerator: empty region polyfill");
  }

  const auto target_total = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(paper::kTotalLocations) *
                   config_.scale));

  // Decide whether the planted peaks fit at this scale.
  const bool plant = config_.plant_peak_cells &&
                     target_total > 2 * paper::kPeakCellLocationSum;
  const std::uint64_t planted_sum = plant ? paper::kPeakCellLocationSum : 0;
  const std::uint64_t target_other = target_total - planted_sum;

  // Stratified counts from the calibrated quantile function.
  const auto quantile = paper::cell_count_quantile();
  const double mean = quantile.mean();
  auto n_other = static_cast<std::size_t>(
      std::llround(static_cast<double>(target_other) / mean));
  n_other = std::max<std::size_t>(n_other, 1);
  const std::size_t n_planted = plant ? paper::kPlantedPeakCells.size() : 0;
  if (n_other + n_planted > region.size()) {
    throw std::runtime_error(
        "SyntheticGenerator: region too small for requested scale");
  }

  std::vector<std::uint32_t> counts(n_other);
  for (std::size_t i = 0; i < n_other; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(n_other);
    counts[i] = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(quantile(p))));
  }

  // Fix up rounding so the total matches the target exactly. Adjust +-1 per
  // cell round-robin, never pushing a generated cell above the upper anchor
  // (3400) or below 1.
  long long diff = static_cast<long long>(target_other);
  for (std::uint32_t c : counts) diff -= c;
  std::size_t cursor = n_other / 2;
  while (diff != 0 && n_other > 0) {
    auto& c = counts[cursor];
    if (diff > 0 && c < 3400) {
      ++c;
      --diff;
    } else if (diff < 0 && c > 1) {
      --c;
      ++diff;
    }
    cursor = (cursor + 1) % n_other;
  }

  // Geographic assignment. Planted peaks snap to their calibrated targets;
  // the rest fill a seeded shuffle of the region, with heavy cells
  // constrained to the latitude floor.
  std::vector<bool> taken(region.size(), false);
  std::vector<CellDemand> cells;
  cells.reserve(n_other + n_planted);

  if (plant) {
    const auto targets = planted_targets(config_.resolution);
    for (std::size_t k = 0; k < targets.size(); ++k) {
      // Nearest unassigned region cell to the target point.
      const std::size_t best =
          nearest_free_cell(grid, region, taken, targets[k], executor);
      if (best == region.size()) {
        throw std::runtime_error("SyntheticGenerator: ran out of cells");
      }
      taken[best] = true;
      cells.push_back(CellDemand{region[best], grid.center_of(region[best]),
                                 paper::kPlantedPeakCells[k], 0});
    }
  }

  const auto order = shuffled_indices(region.size(), config_.seed);
  // Assign heavy generated counts first so latitude-constrained slots are
  // available; then the remainder in shuffle order.
  std::vector<std::size_t> count_order(n_other);
  std::iota(count_order.begin(), count_order.end(), std::size_t{0});
  std::sort(count_order.begin(), count_order.end(),
            [&](std::size_t a, std::size_t b) { return counts[a] > counts[b]; });
  std::size_t scan = 0;
  for (std::size_t ci : count_order) {
    const bool heavy = counts[ci] > kHeavyCellThreshold;
    std::size_t pick = region.size();
    if (heavy) {
      for (std::size_t j = 0; j < order.size(); ++j) {
        const std::size_t i = order[j];
        if (taken[i]) continue;
        if (grid.center_of(region[i]).lat_deg >= config_.heavy_cell_min_lat_deg) {
          pick = i;
          break;
        }
      }
    } else {
      while (scan < order.size() && taken[order[scan]]) ++scan;
      if (scan < order.size()) pick = order[scan];
    }
    if (pick == region.size()) {
      throw std::runtime_error("SyntheticGenerator: ran out of cells");
    }
    taken[pick] = true;
    cells.push_back(
        CellDemand{region[pick], grid.center_of(region[pick]), counts[ci], 0});
  }

  // County-equivalents: group cells by their coarse parent, in sorted parent
  // order for determinism.
  std::map<hex::CellId, std::vector<std::size_t>> by_parent;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    by_parent[grid.parent_of(cells[i].cell, config_.county_resolution)]
        .push_back(i);
  }

  struct CountyDraft {
    hex::CellId parent;
    std::uint64_t weight = 0;
    std::uint64_t shuffle_key = 0;
  };
  std::vector<CountyDraft> drafts;
  drafts.reserve(by_parent.size());
  for (const auto& [parent, members] : by_parent) {
    CountyDraft d;
    d.parent = parent;
    for (std::size_t i : members) d.weight += cells[i].underserved;
    d.shuffle_key = stats::mix_seed(config_.seed, parent.bits());
    drafts.push_back(d);
  }
  // Income decorrelated from geography via the hash order; stratified over
  // cumulative location weight so the location-weighted income CDF matches
  // the calibrated quantile function exactly (up to county granularity).
  std::sort(drafts.begin(), drafts.end(),
            [](const CountyDraft& a, const CountyDraft& b) {
              return a.shuffle_key < b.shuffle_key;
            });
  const auto income_q = paper::income_quantile();
  const double total_weight = static_cast<double>(std::accumulate(
      drafts.begin(), drafts.end(), std::uint64_t{0},
      [](std::uint64_t acc, const CountyDraft& d) { return acc + d.weight; }));

  // The smallest county carries the distribution's minimum income exactly:
  // Fig 4's curve endpoints (proportions 0.050 / 0.046) come from the
  // poorest county's $28,800 median, and making it the *smallest* county
  // keeps the mass below $30k under the 0.01% anchor.
  std::size_t poorest = 0;
  for (std::size_t i = 1; i < drafts.size(); ++i) {
    if (drafts[i].weight < drafts[poorest].weight) poorest = i;
  }

  CountyTable counties;
  std::map<hex::CellId, std::uint32_t> county_of_parent;
  double cum = 0.0;
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    const double mid =
        (cum + static_cast<double>(drafts[i].weight) / 2.0) / total_weight;
    cum += static_cast<double>(drafts[i].weight);
    County county;
    county.fips = std::to_string(10000 + i);
    county.fips[0] = '9';
    county.centroid = grid.center_of(drafts[i].parent);
    county.median_income_usd =
        i == poorest ? paper::kMinCountyIncomeUsd : std::round(income_q(mid));
    county.underserved_locations = drafts[i].weight;
    county_of_parent[drafts[i].parent] = counties.add(std::move(county));
  }
  for (auto& cell : cells) {
    cell.county_index = county_of_parent.at(
        grid.parent_of(cell.cell, config_.county_resolution));
  }

  if (obs::metrics_enabled()) {
    static obs::Counter& generated =
        obs::registry().counter("demand.cells_generated");
    generated.add(cells.size());
  }
  return DemandProfile(std::move(cells), std::move(counties));
}

DemandProfile SyntheticGenerator::generate_profile() const {
  return generate_profile(runtime::global_executor());
}

DemandDataset SyntheticGenerator::expand_locations(
    const DemandProfile& profile, double sample_fraction,
    runtime::Executor& executor) const {
  if (sample_fraction <= 0.0 || sample_fraction > 1.0) {
    throw std::invalid_argument("expand_locations: fraction outside (0, 1]");
  }
  const obs::Span obs_span("demand.expand_locations");
  const hex::HexGrid grid;
  const double circumradius = hex::edge_length_km(config_.resolution);
  const auto& cells = profile.cells();

  // Per-cell location counts and output offsets, so every cell owns a fixed
  // slice of the output and a fixed id range regardless of thread count.
  std::vector<std::uint64_t> offset(cells.size() + 1, 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    offset[i + 1] = offset[i] + static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(cells[i].underserved) * sample_fraction));
  }
  std::vector<Location> locations(offset.back());

  runtime::parallel_for_each(
      executor, 0, cells.size(),
      // leolint:allow(parallel-capture): offset is read-only here; each cell writes only its own disjoint locations slice
      [this, &cells, &offset, &locations, &grid, circumradius](
          std::size_t ci) {
        const auto& cell = cells[ci];
        // Split RNG stream per cell: draws depend only on (seed, cell
        // index), never on scheduling.
        stats::Pcg32 rng(runtime::split_seed(config_.seed, ci), /*stream=*/2);
        const auto want =
            static_cast<std::uint32_t>(offset[ci + 1] - offset[ci]);
        for (std::uint32_t k = 0; k < want; ++k) {
          // Rejection-sample a point inside the hexagon.
          geo::GeoPoint pos = cell.center;
          for (int attempt = 0; attempt < 16; ++attempt) {
            const double ang = stats::sample_uniform(rng, 0.0, 360.0);
            const double rad =
                circumradius * std::sqrt(rng.next_double());
            const geo::GeoPoint candidate =
                geo::destination(cell.center, ang, rad);
            if (grid.cell_of(candidate, config_.resolution) == cell.cell) {
              pos = candidate;
              break;
            }
          }
          Location loc;
          loc.id = offset[ci] + k + 1;
          loc.position = pos;
          loc.county_index = cell.county_index;
          // Best-offer mix for un(der)served locations: all fail 100/20.
          const double u = rng.next_double();
          if (u < 0.15) {
            loc.technology = Technology::kNone;
            loc.best_offer = {0.0, 0.0};
          } else if (u < 0.50) {
            loc.technology = Technology::kDsl;
            loc.best_offer = {25.0, 3.0};
          } else if (u < 0.75) {
            loc.technology = Technology::kFixedWireless;
            loc.best_offer = {50.0, 10.0};
          } else if (u < 0.85) {
            loc.technology = Technology::kGeoSatellite;
            loc.best_offer = {100.0, 3.0};
          } else {
            loc.technology = Technology::kCable;
            loc.best_offer = {100.0, 10.0};
          }
          locations[offset[ci] + k] = loc;
        }
      });

  if (obs::metrics_enabled()) {
    static obs::Counter& expanded =
        obs::registry().counter("demand.locations_expanded");
    expanded.add(locations.size());
  }
  CountyTable counties(profile.counties().all());
  return DemandDataset(std::move(locations), std::move(counties));
}

DemandDataset SyntheticGenerator::expand_locations(
    const DemandProfile& profile, double sample_fraction) const {
  return expand_locations(profile, sample_fraction,
                          runtime::global_executor());
}

}  // namespace leodivide::demand
