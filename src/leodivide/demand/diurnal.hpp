#pragma once
// Diurnal demand model. The paper's oversubscription machinery implicitly
// assumes not everyone is active at once ("degrading service quality at
// busy times"); this module makes the assumption explicit. A diurnal
// activity curve gives the fraction of subscribers active at each hour;
// the busy-hour activity is what bounds the oversubscription ratio an
// operator can adopt while still delivering rated speeds to active users:
//     max_oversub = 1 / busy_hour_activity.

#include <array>
#include <cstddef>

namespace leodivide::demand {

/// Fraction of subscribers simultaneously active, by local hour [0, 24).
class DiurnalCurve {
 public:
  /// Builds from 24 hourly activity fractions in [0, 1]. Throws
  /// std::invalid_argument if any value is outside [0, 1] or all are zero.
  explicit DiurnalCurve(const std::array<double, 24>& hourly);

  /// Activity at a (possibly fractional) local hour, with linear
  /// interpolation between hourly samples and wraparound at midnight.
  [[nodiscard]] double activity(double hour) const;

  /// Peak (busy-hour) activity.
  [[nodiscard]] double busy_hour_activity() const noexcept { return peak_; }

  /// The hour at which activity peaks.
  [[nodiscard]] std::size_t busy_hour() const noexcept { return peak_hour_; }

  /// Mean activity over the day.
  [[nodiscard]] double mean_activity() const noexcept { return mean_; }

  /// The largest oversubscription ratio that still gives every *active*
  /// subscriber their rated speed at the busy hour: 1 / busy_hour_activity.
  [[nodiscard]] double max_acceptable_oversubscription() const noexcept;

 private:
  std::array<double, 24> hourly_;
  double peak_ = 0.0;
  double mean_ = 0.0;
  std::size_t peak_hour_ = 0;
};

/// A typical residential fixed-broadband activity curve: quiet overnight,
/// a small morning shoulder, and an evening busy hour around 21:00 at ~5%
/// simultaneous activity — consistent with the FCC's 20:1 fixed-wireless
/// oversubscription benchmark (1 / 0.05).
[[nodiscard]] DiurnalCurve residential_evening_peak();

}  // namespace leodivide::demand
