#include "leodivide/demand/geojson.hpp"

#include <ostream>

#include "leodivide/io/json.hpp"

namespace leodivide::demand {

void write_geojson(std::ostream& out, const DemandProfile& profile,
                   const hex::HexGrid& grid, std::uint32_t min_locations) {
  io::JsonWriter json(out, /*pretty=*/false);
  json.begin_object();
  json.value("type", "FeatureCollection");
  json.begin_array("features");
  for (const auto& cell : profile.cells()) {
    if (cell.underserved < min_locations) continue;
    json.begin_object();
    json.value("type", "Feature");
    json.begin_object("properties");
    json.value("cell_id", cell.cell.to_string());
    json.value("underserved", static_cast<long long>(cell.underserved));
    json.value("demand_gbps", cell.demand_gbps());
    json.value("median_income_usd",
               profile.counties().at(cell.county_index).median_income_usd);
    json.end_object();
    json.begin_object("geometry");
    json.value("type", "Polygon");
    json.begin_array("coordinates");
    json.begin_array();  // exterior ring
    const auto boundary = grid.boundary_of(cell.cell);
    auto emit_vertex = [&json](const geo::GeoPoint& p) {
      json.begin_array();
      json.element(p.lon_deg);  // GeoJSON order: [lon, lat]
      json.element(p.lat_deg);
      json.end_array();
    };
    for (const auto& v : boundary) emit_vertex(v);
    emit_vertex(boundary.front());  // close the ring
    json.end_array();
    json.end_array();
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace leodivide::demand
