#pragma once
// County registry: the affordability analysis joins un(der)served locations
// with the median household income of their county (US Census ACS style).

#include <cstdint>
#include <string>
#include <vector>

#include "leodivide/geo/geopoint.hpp"

namespace leodivide::demand {

/// One county (or county-equivalent cluster in synthetic data).
struct County {
  std::string fips;                 ///< 5-digit FIPS code (synthetic ok)
  geo::GeoPoint centroid;
  double median_income_usd = 0.0;   ///< annual household median income
  std::uint64_t underserved_locations = 0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const County&, const County&) = default;
};

/// Flat county table with FIPS lookup.
class CountyTable {
 public:
  CountyTable() = default;
  explicit CountyTable(std::vector<County> counties);

  /// Appends a county; returns its index. Throws std::invalid_argument on
  /// duplicate FIPS.
  std::uint32_t add(County county);

  [[nodiscard]] const County& at(std::uint32_t index) const;
  [[nodiscard]] County& at(std::uint32_t index);

  /// Index of a county by FIPS, or -1 if absent.
  [[nodiscard]] std::int64_t find(const std::string& fips) const;

  [[nodiscard]] std::size_t size() const noexcept { return counties_.size(); }
  [[nodiscard]] const std::vector<County>& all() const noexcept {
    return counties_;
  }

  /// Total un(der)served locations across counties.
  [[nodiscard]] std::uint64_t total_underserved() const noexcept;

 private:
  std::vector<County> counties_;
};

}  // namespace leodivide::demand
