#include "leodivide/demand/county.hpp"

#include <stdexcept>

namespace leodivide::demand {

CountyTable::CountyTable(std::vector<County> counties) {
  for (auto& c : counties) add(std::move(c));
}

std::uint32_t CountyTable::add(County county) {
  if (find(county.fips) >= 0) {
    throw std::invalid_argument("CountyTable: duplicate FIPS " + county.fips);
  }
  counties_.push_back(std::move(county));
  return static_cast<std::uint32_t>(counties_.size() - 1);
}

const County& CountyTable::at(std::uint32_t index) const {
  if (index >= counties_.size()) throw std::out_of_range("CountyTable::at");
  return counties_[index];
}

County& CountyTable::at(std::uint32_t index) {
  if (index >= counties_.size()) throw std::out_of_range("CountyTable::at");
  return counties_[index];
}

std::int64_t CountyTable::find(const std::string& fips) const {
  for (std::size_t i = 0; i < counties_.size(); ++i) {
    if (counties_[i].fips == fips) return static_cast<std::int64_t>(i);
  }
  return -1;
}

std::uint64_t CountyTable::total_underserved() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counties_) total += c.underserved_locations;
  return total;
}

}  // namespace leodivide::demand
