#pragma once
// Aggregation of location-level data into per-service-cell demand — the
// paper's Section 2.2 step of grouping user terminals into H3-style cells.

#include "leodivide/demand/dataset.hpp"
#include "leodivide/hex/hexgrid.hpp"

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::demand {

/// Aggregates a location dataset to a cell-level profile at `resolution`.
/// Only un(der)served locations contribute to cell counts (the paper's
/// best-case model: demand comes solely from un(der)served locations). Each
/// cell's county is the county contributing the most locations to it.
/// County underserved totals are recomputed from the aggregation.
///
/// Bucketing runs as a sharded map-reduce over `executor`: each worker
/// fills a thread-local ordered cell map over a contiguous location slice
/// and the shards are merged in shard order, so the profile is bit-identical
/// for every thread count (including the serial path).
[[nodiscard]] DemandProfile aggregate(const DemandDataset& dataset,
                                      const hex::HexGrid& grid,
                                      int resolution,
                                      runtime::Executor& executor);

/// As above, on the process-global executor (LEODIVIDE_THREADS).
[[nodiscard]] DemandProfile aggregate(const DemandDataset& dataset,
                                      const hex::HexGrid& grid,
                                      int resolution);

}  // namespace leodivide::demand
