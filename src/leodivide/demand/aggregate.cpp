#include "leodivide/demand/aggregate.hpp"

#include <map>

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"
#include "leodivide/runtime/map_reduce.hpp"

namespace leodivide::demand {

namespace {

// Locations per map-reduce work item: large enough that shard bookkeeping
// is negligible next to the per-location cell_of projection.
constexpr std::size_t kAggregateGrain = 8192;

}  // namespace

DemandProfile aggregate(const DemandDataset& dataset, const hex::HexGrid& grid,
                        int resolution, runtime::Executor& executor) {
  const obs::Span span("demand.aggregate");
  if (obs::metrics_enabled()) {
    static obs::Counter& locations =
        obs::registry().counter("demand.aggregate.locations");
    locations.add(dataset.locations().size());
  }
  struct Bucket {
    std::uint32_t count = 0;
    // Ordered so every loop below walks counties in index order — the
    // emitted per-county totals and tie-breaks never depend on hash layout.
    std::map<std::uint32_t, std::uint32_t> by_county;
  };
  // std::map keeps cell order deterministic across runs and thread counts.
  using CellMap = std::map<hex::CellId, Bucket>;

  const auto& locations = dataset.locations();
  const CellMap buckets = runtime::map_reduce<CellMap>(
      executor, 0, locations.size(),
      [&locations, &grid, resolution](
          CellMap& shard, std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& loc = locations[i];
          if (!loc.underserved()) continue;
          Bucket& b = shard[grid.cell_of(loc.position, resolution)];
          ++b.count;
          ++b.by_county[loc.county_index];
        }
      },
      [](CellMap& into, CellMap&& from) {
        for (auto& [id, bucket] : from) {
          Bucket& dst = into[id];
          dst.count += bucket.count;
          for (const auto& [county, n] : bucket.by_county) {
            dst.by_county[county] += n;
          }
        }
      },
      kAggregateGrain);

  std::vector<County> counties = dataset.counties().all();
  for (auto& c : counties) c.underserved_locations = 0;

  std::vector<CellDemand> cells;
  cells.reserve(buckets.size());
  for (const auto& [id, bucket] : buckets) {
    CellDemand cd;
    cd.cell = id;
    cd.center = grid.center_of(id);
    cd.underserved = bucket.count;
    std::uint32_t best_county = 0;
    std::uint32_t best_n = 0;
    for (const auto& [county, n] : bucket.by_county) {
      if (n > best_n || (n == best_n && county < best_county)) {
        best_n = n;
        best_county = county;
      }
    }
    cd.county_index = best_county;
    cells.push_back(cd);
    for (const auto& [county, n] : bucket.by_county) {
      counties[county].underserved_locations += n;
    }
  }
  return DemandProfile(std::move(cells), CountyTable(std::move(counties)));
}

DemandProfile aggregate(const DemandDataset& dataset, const hex::HexGrid& grid,
                        int resolution) {
  return aggregate(dataset, grid, resolution, runtime::global_executor());
}

}  // namespace leodivide::demand
