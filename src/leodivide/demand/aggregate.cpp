#include "leodivide/demand/aggregate.hpp"

#include <map>
#include <unordered_map>

namespace leodivide::demand {

DemandProfile aggregate(const DemandDataset& dataset, const hex::HexGrid& grid,
                        int resolution) {
  struct Bucket {
    std::uint32_t count = 0;
    std::unordered_map<std::uint32_t, std::uint32_t> by_county;
  };
  // std::map keeps cell order deterministic across runs.
  std::map<hex::CellId, Bucket> buckets;
  for (const auto& loc : dataset.locations()) {
    if (!loc.underserved()) continue;
    Bucket& b = buckets[grid.cell_of(loc.position, resolution)];
    ++b.count;
    ++b.by_county[loc.county_index];
  }

  std::vector<County> counties = dataset.counties().all();
  for (auto& c : counties) c.underserved_locations = 0;

  std::vector<CellDemand> cells;
  cells.reserve(buckets.size());
  for (const auto& [id, bucket] : buckets) {
    CellDemand cd;
    cd.cell = id;
    cd.center = grid.center_of(id);
    cd.underserved = bucket.count;
    std::uint32_t best_county = 0;
    std::uint32_t best_n = 0;
    for (const auto& [county, n] : bucket.by_county) {
      if (n > best_n || (n == best_n && county < best_county)) {
        best_n = n;
        best_county = county;
      }
    }
    cd.county_index = best_county;
    cells.push_back(cd);
    for (const auto& [county, n] : bucket.by_county) {
      counties[county].underserved_locations += n;
    }
  }
  return DemandProfile(std::move(cells), CountyTable(std::move(counties)));
}

}  // namespace leodivide::demand
