#include "leodivide/demand/location.hpp"

#include <stdexcept>

namespace leodivide::demand {

std::string to_string(Technology t) {
  switch (t) {
    case Technology::kNone: return "none";
    case Technology::kDsl: return "dsl";
    case Technology::kCable: return "cable";
    case Technology::kFiber: return "fiber";
    case Technology::kFixedWireless: return "fixed_wireless";
    case Technology::kGeoSatellite: return "geo_satellite";
  }
  return "unknown";
}

Technology technology_from_string(const std::string& s) {
  if (s == "none") return Technology::kNone;
  if (s == "dsl") return Technology::kDsl;
  if (s == "cable") return Technology::kCable;
  if (s == "fiber") return Technology::kFiber;
  if (s == "fixed_wireless") return Technology::kFixedWireless;
  if (s == "geo_satellite") return Technology::kGeoSatellite;
  throw std::invalid_argument("technology_from_string: unknown '" + s + "'");
}

bool is_reliable(const ServiceLevel& offer) noexcept {
  return offer.down_mbps >= kReliableDownMbps &&
         offer.up_mbps >= kReliableUpMbps;
}

double location_demand_gbps() noexcept { return kReliableDownMbps / 1000.0; }

}  // namespace leodivide::demand
