#include "leodivide/snapshot/artifacts.hpp"

#include <utility>

namespace leodivide::snapshot {

namespace {

// Shared section encodings. Every vector is written as a u64 count
// followed by fixed-layout records; strings are u32-length-prefixed.

std::string encode_counties(const demand::CountyTable& counties) {
  ByteWriter w;
  w.u64(counties.size());
  for (const demand::County& c : counties.all()) {
    w.str(c.fips);
    w.f64(c.centroid.lat_deg);
    w.f64(c.centroid.lon_deg);
    w.f64(c.median_income_usd);
    w.u64(c.underserved_locations);
  }
  return std::move(w).take();
}

demand::CountyTable decode_counties(std::string_view payload) {
  ByteReader r(payload);
  const std::uint64_t n = r.u64();
  std::vector<demand::County> counties;
  counties.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    demand::County c;
    c.fips = r.str();
    c.centroid.lat_deg = r.f64();
    c.centroid.lon_deg = r.f64();
    c.median_income_usd = r.f64();
    c.underserved_locations = r.u64();
    counties.push_back(std::move(c));
  }
  r.expect_exhausted("counties section");
  try {
    return demand::CountyTable(std::move(counties));
  } catch (const std::exception& e) {
    // CountyTable rejects duplicate FIPS; map that to the typed error.
    throw SnapshotError(std::string("LDSNAP: invalid county table: ") +
                        e.what());
  }
}

std::string encode_cells(const std::vector<demand::CellDemand>& cells) {
  ByteWriter w;
  w.u64(cells.size());
  for (const demand::CellDemand& c : cells) {
    w.u64(c.cell.bits());
    w.f64(c.center.lat_deg);
    w.f64(c.center.lon_deg);
    w.u32(c.underserved);
    w.u32(c.county_index);
  }
  return std::move(w).take();
}

std::vector<demand::CellDemand> decode_cells(std::string_view payload,
                                             std::size_t county_count) {
  ByteReader r(payload);
  const std::uint64_t n = r.u64();
  std::vector<demand::CellDemand> cells;
  cells.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    demand::CellDemand c;
    c.cell = hex::CellId::from_bits(r.u64());
    c.center.lat_deg = r.f64();
    c.center.lon_deg = r.f64();
    c.underserved = r.u32();
    c.county_index = r.u32();
    if (c.county_index >= county_count) {
      throw SnapshotError("LDSNAP: cell " + std::to_string(i) +
                          " references county " +
                          std::to_string(c.county_index) + " of " +
                          std::to_string(county_count));
    }
    cells.push_back(c);
  }
  r.expect_exhausted("cells section");
  return cells;
}

std::string encode_locations(const std::vector<demand::Location>& locations) {
  ByteWriter w;
  w.u64(locations.size());
  for (const demand::Location& l : locations) {
    w.u64(l.id);
    w.f64(l.position.lat_deg);
    w.f64(l.position.lon_deg);
    w.u32(l.county_index);
    w.f64(l.best_offer.down_mbps);
    w.f64(l.best_offer.up_mbps);
    w.u8(static_cast<std::uint8_t>(l.technology));
  }
  return std::move(w).take();
}

std::vector<demand::Location> decode_locations(std::string_view payload,
                                               std::size_t county_count) {
  ByteReader r(payload);
  const std::uint64_t n = r.u64();
  std::vector<demand::Location> locations;
  locations.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    demand::Location l;
    l.id = r.u64();
    l.position.lat_deg = r.f64();
    l.position.lon_deg = r.f64();
    l.county_index = r.u32();
    l.best_offer.down_mbps = r.f64();
    l.best_offer.up_mbps = r.f64();
    const std::uint8_t tech = r.u8();
    if (tech > static_cast<std::uint8_t>(demand::Technology::kGeoSatellite)) {
      throw SnapshotError("LDSNAP: location " + std::to_string(i) +
                          " has unknown technology code " +
                          std::to_string(tech));
    }
    l.technology = static_cast<demand::Technology>(tech);
    if (l.county_index >= county_count) {
      throw SnapshotError("LDSNAP: location " + std::to_string(i) +
                          " references county " +
                          std::to_string(l.county_index) + " of " +
                          std::to_string(county_count));
    }
    locations.push_back(l);
  }
  r.expect_exhausted("locations section");
  return locations;
}

void encode_f64_vec(ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double x : v) w.f64(x);
}

std::vector<double> decode_f64_vec(ByteReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

SnapshotReader parse_expecting(std::string_view file, ArtifactKind kind) {
  SnapshotReader reader = SnapshotReader::parse(file);
  if (reader.kind() != kind) {
    throw SnapshotError("LDSNAP: expected a " + std::string(to_string(kind)) +
                        " snapshot, found " +
                        std::string(to_string(reader.kind())));
  }
  return reader;
}

}  // namespace

std::string serialize(const demand::DemandDataset& dataset) {
  SnapshotWriter w(ArtifactKind::kLocations);
  w.add_section("counties", encode_counties(dataset.counties()));
  w.add_section("locations", encode_locations(dataset.locations()));
  return std::move(w).finish();
}

demand::DemandDataset deserialize_dataset(std::string_view file) {
  const SnapshotReader reader = parse_expecting(file, ArtifactKind::kLocations);
  demand::CountyTable counties = decode_counties(reader.section("counties"));
  std::vector<demand::Location> locations =
      decode_locations(reader.section("locations"), counties.size());
  return demand::DemandDataset(std::move(locations), std::move(counties));
}

std::string serialize(const demand::DemandProfile& profile) {
  SnapshotWriter w(ArtifactKind::kProfile);
  w.add_section("counties", encode_counties(profile.counties()));
  w.add_section("cells", encode_cells(profile.cells()));
  return std::move(w).finish();
}

demand::DemandProfile deserialize_profile(std::string_view file) {
  const SnapshotReader reader = parse_expecting(file, ArtifactKind::kProfile);
  demand::CountyTable counties = decode_counties(reader.section("counties"));
  std::vector<demand::CellDemand> cells =
      decode_cells(reader.section("cells"), counties.size());
  return demand::DemandProfile(std::move(cells), std::move(counties));
}

std::string serialize(const core::AnalysisResults& results) {
  ByteWriter w;
  // Table 1, in declaration order.
  const core::Table1Summary& t1 = results.table1;
  w.f64(t1.ut_downlink_mhz);
  w.f64(t1.total_mhz);
  w.u32(t1.ut_beams);
  w.u32(t1.total_beams);
  w.f64(t1.spectral_efficiency);
  w.f64(t1.max_cell_capacity_gbps);
  w.u32(t1.peak_cell_users);
  w.f64(t1.required_down_mbps);
  w.f64(t1.required_up_mbps);
  w.f64(t1.peak_cell_demand_gbps);
  w.f64(t1.max_oversubscription);
  // F1.
  const core::OversubscriptionReport& f1 = results.f1;
  w.f64(f1.cell_capacity_gbps);
  w.f64(f1.peak_oversubscription);
  w.u32(f1.max_locations_at_cap);
  w.u64(f1.total_locations);
  w.u64(f1.locations_above_cap);
  w.u64(f1.locations_unservable_at_cap);
  w.u32(f1.cells_above_cap);
  w.f64(f1.servable_fraction_at_cap);
  // Table 2.
  w.u64(results.table2.size());
  for (const core::Table2Row& row : results.table2) {
    w.f64(row.beamspread);
    w.f64(row.satellites_full_service);
    w.f64(row.satellites_capped);
  }
  // Figure 2.
  encode_f64_vec(w, results.fig2_beamspreads);
  encode_f64_vec(w, results.fig2_oversubs);
  w.u64(results.fig2_grid.size());
  for (const std::vector<double>& row : results.fig2_grid) {
    encode_f64_vec(w, row);
  }
  // Figure 3.
  w.u64(results.fig3.size());
  for (const core::Fig3Curve& curve : results.fig3) {
    w.f64(curve.beamspread);
    w.f64(curve.oversub);
    w.u64(curve.points.size());
    for (const core::LongTailPoint& p : curve.points) {
      w.u64(p.locations_unserved);
      w.f64(p.satellites);
      w.u32(p.beams_on_binding);
      w.f64(p.binding_lat_deg);
    }
  }
  // Figure 4.
  w.u64(results.fig4.size());
  for (const afford::PlanAffordability& p : results.fig4) {
    w.str(p.plan.name);
    w.f64(p.plan.monthly_usd);
    w.f64(p.plan.speeds.down_mbps);
    w.f64(p.plan.speeds.up_mbps);
    w.f64(p.income_required_usd);
    w.f64(p.locations_unable);
    w.f64(p.fraction_unable);
  }
  w.f64(results.fig4_lifeline_threshold_income);
  w.f64(results.fig4_starlink_threshold_income);

  SnapshotWriter sw(ArtifactKind::kAnalysis);
  sw.add_section("analysis", std::move(w).take());
  return std::move(sw).finish();
}

core::AnalysisResults deserialize_analysis(std::string_view file) {
  const SnapshotReader reader = parse_expecting(file, ArtifactKind::kAnalysis);
  ByteReader r(reader.section("analysis"));
  core::AnalysisResults out;
  core::Table1Summary& t1 = out.table1;
  t1.ut_downlink_mhz = r.f64();
  t1.total_mhz = r.f64();
  t1.ut_beams = r.u32();
  t1.total_beams = r.u32();
  t1.spectral_efficiency = r.f64();
  t1.max_cell_capacity_gbps = r.f64();
  t1.peak_cell_users = r.u32();
  t1.required_down_mbps = r.f64();
  t1.required_up_mbps = r.f64();
  t1.peak_cell_demand_gbps = r.f64();
  t1.max_oversubscription = r.f64();
  core::OversubscriptionReport& f1 = out.f1;
  f1.cell_capacity_gbps = r.f64();
  f1.peak_oversubscription = r.f64();
  f1.max_locations_at_cap = r.u32();
  f1.total_locations = r.u64();
  f1.locations_above_cap = r.u64();
  f1.locations_unservable_at_cap = r.u64();
  f1.cells_above_cap = r.u32();
  f1.servable_fraction_at_cap = r.f64();
  const std::uint64_t n_table2 = r.u64();
  out.table2.reserve(static_cast<std::size_t>(n_table2));
  for (std::uint64_t i = 0; i < n_table2; ++i) {
    core::Table2Row row;
    row.beamspread = r.f64();
    row.satellites_full_service = r.f64();
    row.satellites_capped = r.f64();
    out.table2.push_back(row);
  }
  out.fig2_beamspreads = decode_f64_vec(r);
  out.fig2_oversubs = decode_f64_vec(r);
  const std::uint64_t n_grid = r.u64();
  out.fig2_grid.reserve(static_cast<std::size_t>(n_grid));
  for (std::uint64_t i = 0; i < n_grid; ++i) {
    out.fig2_grid.push_back(decode_f64_vec(r));
  }
  const std::uint64_t n_fig3 = r.u64();
  out.fig3.reserve(static_cast<std::size_t>(n_fig3));
  for (std::uint64_t i = 0; i < n_fig3; ++i) {
    core::Fig3Curve curve;
    curve.beamspread = r.f64();
    curve.oversub = r.f64();
    const std::uint64_t n_points = r.u64();
    curve.points.reserve(static_cast<std::size_t>(n_points));
    for (std::uint64_t k = 0; k < n_points; ++k) {
      core::LongTailPoint p;
      p.locations_unserved = r.u64();
      p.satellites = r.f64();
      p.beams_on_binding = r.u32();
      p.binding_lat_deg = r.f64();
      curve.points.push_back(p);
    }
    out.fig3.push_back(std::move(curve));
  }
  const std::uint64_t n_fig4 = r.u64();
  out.fig4.reserve(static_cast<std::size_t>(n_fig4));
  for (std::uint64_t i = 0; i < n_fig4; ++i) {
    afford::PlanAffordability p;
    p.plan.name = r.str();
    p.plan.monthly_usd = r.f64();
    p.plan.speeds.down_mbps = r.f64();
    p.plan.speeds.up_mbps = r.f64();
    p.income_required_usd = r.f64();
    p.locations_unable = r.f64();
    p.fraction_unable = r.f64();
    out.fig4.push_back(std::move(p));
  }
  out.fig4_lifeline_threshold_income = r.f64();
  out.fig4_starlink_threshold_income = r.f64();
  r.expect_exhausted("analysis section");
  return out;
}

std::string serialize(const std::vector<sim::EpochCoverage>& epochs) {
  ByteWriter w;
  w.u64(epochs.size());
  for (const sim::EpochCoverage& e : epochs) {
    w.f64(e.time_s);
    w.u64(e.cells_total);
    w.u64(e.cells_served);
    w.u64(e.locations_total);
    w.u64(e.locations_served);
    w.f64(e.mean_beam_utilization);
    w.u64(e.satellites_in_view);
  }
  SnapshotWriter sw(ArtifactKind::kEpochs);
  sw.add_section("epochs", std::move(w).take());
  return std::move(sw).finish();
}

std::vector<sim::EpochCoverage> deserialize_epochs(std::string_view file) {
  const SnapshotReader reader = parse_expecting(file, ArtifactKind::kEpochs);
  ByteReader r(reader.section("epochs"));
  const std::uint64_t n = r.u64();
  std::vector<sim::EpochCoverage> epochs;
  epochs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    sim::EpochCoverage e;
    e.time_s = r.f64();
    e.cells_total = static_cast<std::size_t>(r.u64());
    e.cells_served = static_cast<std::size_t>(r.u64());
    e.locations_total = r.u64();
    e.locations_served = r.u64();
    e.mean_beam_utilization = r.f64();
    e.satellites_in_view = static_cast<std::size_t>(r.u64());
    epochs.push_back(e);
  }
  r.expect_exhausted("epochs section");
  return epochs;
}

namespace {

void write_coverage(ByteWriter& w, const sim::EpochCoverage& e) {
  w.f64(e.time_s);
  w.u64(e.cells_total);
  w.u64(e.cells_served);
  w.u64(e.locations_total);
  w.u64(e.locations_served);
  w.f64(e.mean_beam_utilization);
  w.u64(e.satellites_in_view);
}

[[nodiscard]] sim::EpochCoverage read_coverage(ByteReader& r) {
  sim::EpochCoverage e;
  e.time_s = r.f64();
  e.cells_total = static_cast<std::size_t>(r.u64());
  e.cells_served = static_cast<std::size_t>(r.u64());
  e.locations_total = r.u64();
  e.locations_served = r.u64();
  e.mean_beam_utilization = r.f64();
  e.satellites_in_view = static_cast<std::size_t>(r.u64());
  return e;
}

}  // namespace

std::string serialize(const event::EventTrace& trace) {
  ByteWriter meta;
  meta.f64(trace.duration_s);
  meta.f64(trace.step_s);
  meta.u64(trace.cells_total);
  meta.u64(trace.boundaries);
  meta.u64(trace.handovers.cells_tracked);
  meta.u64(trace.handovers.handovers);
  meta.u64(trace.handovers.cells_dropped);
  meta.u64(trace.handovers.cells_acquired);

  ByteWriter events;
  events.u64(trace.events.size());
  for (const event::Event& e : trace.events) {
    events.f64(e.time_s);
    events.f64(e.window_lo_s);
    events.f64(e.window_hi_s);
    events.u8(static_cast<std::uint8_t>(e.kind));
    events.u32(e.cell);
    events.u32(e.sat);
  }

  ByteWriter segments;
  segments.u64(trace.segments.size());
  for (const event::CoverageSegment& s : trace.segments) {
    segments.f64(s.begin_s);
    segments.f64(s.end_s);
    write_coverage(segments, s.coverage);
    segments.u64(s.qos.cells_served);
    segments.u64(s.qos.cells_within_target);
    segments.f64(s.qos.mean_oversub);
    segments.f64(s.qos.worst_oversub);
    segments.f64(s.qos.fraction_within_target);
  }

  SnapshotWriter sw(ArtifactKind::kEventTrace);
  sw.add_section("meta", std::move(meta).take());
  sw.add_section("events", std::move(events).take());
  sw.add_section("segments", std::move(segments).take());
  return std::move(sw).finish();
}

event::EventTrace deserialize_event_trace(std::string_view file) {
  const SnapshotReader reader = parse_expecting(file, ArtifactKind::kEventTrace);
  event::EventTrace out;

  ByteReader meta(reader.section("meta"));
  out.duration_s = meta.f64();
  out.step_s = meta.f64();
  out.cells_total = meta.u64();
  out.boundaries = meta.u64();
  out.handovers.cells_tracked = static_cast<std::size_t>(meta.u64());
  out.handovers.handovers = static_cast<std::size_t>(meta.u64());
  out.handovers.cells_dropped = static_cast<std::size_t>(meta.u64());
  out.handovers.cells_acquired = static_cast<std::size_t>(meta.u64());
  meta.expect_exhausted("event_trace meta section");

  ByteReader events(reader.section("events"));
  const std::uint64_t n_events = events.u64();
  out.events.reserve(static_cast<std::size_t>(n_events));
  for (std::uint64_t i = 0; i < n_events; ++i) {
    event::Event e;
    e.time_s = events.f64();
    e.window_lo_s = events.f64();
    e.window_hi_s = events.f64();
    const std::uint8_t kind = events.u8();
    if (kind > static_cast<std::uint8_t>(event::EventKind::kGraze)) {
      throw SnapshotError("event_trace: unknown event kind " +
                          std::to_string(kind));
    }
    e.kind = static_cast<event::EventKind>(kind);
    e.cell = events.u32();
    e.sat = events.u32();
    out.events.push_back(e);
  }
  events.expect_exhausted("event_trace events section");

  ByteReader segments(reader.section("segments"));
  const std::uint64_t n_segments = segments.u64();
  out.segments.reserve(static_cast<std::size_t>(n_segments));
  for (std::uint64_t i = 0; i < n_segments; ++i) {
    event::CoverageSegment s;
    s.begin_s = segments.f64();
    s.end_s = segments.f64();
    s.coverage = read_coverage(segments);
    s.qos.cells_served = static_cast<std::size_t>(segments.u64());
    s.qos.cells_within_target = static_cast<std::size_t>(segments.u64());
    s.qos.mean_oversub = segments.f64();
    s.qos.worst_oversub = segments.f64();
    s.qos.fraction_within_target = segments.f64();
    out.segments.push_back(s);
  }
  segments.expect_exhausted("event_trace segments section");

  return out;
}

void write_delta_op(ByteWriter& w, const demand::DeltaOp& op) {
  w.u8(static_cast<std::uint8_t>(op.kind));
  w.f64(op.position.lat_deg);
  w.f64(op.position.lon_deg);
  w.u32(op.count);
  w.u32(op.county_index);
  w.str(op.plan_name);
  w.f64(op.value);
}

demand::DeltaOp read_delta_op(ByteReader& r) {
  demand::DeltaOp op;
  const std::uint8_t kind = r.u8();
  if (kind < static_cast<std::uint8_t>(demand::DeltaKind::kAddLocations) ||
      kind > static_cast<std::uint8_t>(demand::DeltaKind::kSetCountyIncome)) {
    throw SnapshotError("delta op: unknown kind code " + std::to_string(kind));
  }
  op.kind = static_cast<demand::DeltaKind>(kind);
  op.position.lat_deg = r.f64();
  op.position.lon_deg = r.f64();
  op.count = r.u32();
  op.county_index = r.u32();
  op.plan_name = r.str();
  op.value = r.f64();
  return op;
}

std::string serialize(const std::vector<demand::DeltaOp>& journal) {
  ByteWriter w;
  w.u64(journal.size());
  for (const demand::DeltaOp& op : journal) write_delta_op(w, op);
  SnapshotWriter sw(ArtifactKind::kDeltaJournal);
  sw.add_section("ops", std::move(w).take());
  return std::move(sw).finish();
}

std::vector<demand::DeltaOp> deserialize_delta_journal(std::string_view file) {
  const SnapshotReader reader =
      parse_expecting(file, ArtifactKind::kDeltaJournal);
  ByteReader r(reader.section("ops"));
  const std::uint64_t n = r.u64();
  std::vector<demand::DeltaOp> ops;
  ops.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) ops.push_back(read_delta_op(r));
  r.expect_exhausted("delta_journal ops section");
  return ops;
}

namespace {

void write_sizing(ByteWriter& w, const core::SizingResult& s) {
  w.f64(s.satellites);
  w.f64(s.binding_lat_deg);
  w.u32(s.beams_on_binding);
  w.u64(s.binding_cell_index);
}

[[nodiscard]] core::SizingResult read_sizing(ByteReader& r) {
  core::SizingResult s;
  s.satellites = r.f64();
  s.binding_lat_deg = r.f64();
  s.beams_on_binding = r.u32();
  s.binding_cell_index = static_cast<std::size_t>(r.u64());
  return s;
}

}  // namespace

std::string serialize(const market::MarketReport& report) {
  ByteWriter ops;
  ops.u8(static_cast<std::uint8_t>(report.policy));
  ops.f64(report.beamspread);
  ops.f64(report.oversub_cap);
  ops.u64(report.operators.size());
  for (const market::OperatorOutcome& op : report.operators) {
    ops.str(op.name);
    ops.f64(op.economic_share);
    write_sizing(ops, op.full);
    write_sizing(ops, op.capped);
    ops.f64(op.served_cell_fraction);
    ops.f64(op.served_location_fraction);
    ops.u64(op.longtail.size());
    for (const core::LongTailPoint& p : op.longtail) {
      ops.u64(p.locations_unserved);
      ops.f64(p.satellites);
      ops.u32(p.beams_on_binding);
      ops.f64(p.binding_lat_deg);
    }
    ops.u64(op.cost_curve.size());
    for (const market::MarketCostPoint& p : op.cost_curve) {
      ops.u64(p.locations_unserved);
      ops.f64(p.satellites);
      ops.f64(p.annual_cost_usd);
      ops.u64(p.locations_served);
      ops.f64(p.cost_per_location_year_usd);
    }
    const afford::PlanAffordability& a = op.affordability;
    ops.str(a.plan.name);
    ops.f64(a.plan.monthly_usd);
    ops.f64(a.plan.speeds.down_mbps);
    ops.f64(a.plan.speeds.up_mbps);
    ops.f64(a.income_required_usd);
    ops.f64(a.locations_unable);
    ops.f64(a.fraction_unable);
  }

  const market::FairnessReport& f = report.fairness;
  ByteWriter fair;
  fair.u64(f.winner.size());
  for (std::int32_t wv : f.winner) fair.u32(std::bit_cast<std::uint32_t>(wv));
  fair.u64(f.operators.size());
  for (const market::OperatorFairness& of : f.operators) {
    fair.u64(of.cells_won);
    fair.u64(of.cells_served);
    fair.u64(of.locations_served);
  }
  fair.f64(f.jain_served_locations);
  fair.u64(f.unserved_cells);
  fair.u64(f.unserved_locations);
  fair.u64(f.capacity_limited_cells);
  fair.u64(f.split_limited_cells);

  SnapshotWriter sw(ArtifactKind::kMarketReport);
  sw.add_section("operators", std::move(ops).take());
  sw.add_section("fairness", std::move(fair).take());
  return std::move(sw).finish();
}

market::MarketReport deserialize_market_report(std::string_view file) {
  const SnapshotReader reader =
      parse_expecting(file, ArtifactKind::kMarketReport);
  market::MarketReport out;

  ByteReader ops(reader.section("operators"));
  const std::uint8_t policy = ops.u8();
  if (policy > static_cast<std::uint8_t>(market::SplitPolicy::kFairShare)) {
    throw SnapshotError("market_report: unknown split policy code " +
                        std::to_string(policy));
  }
  out.policy = static_cast<market::SplitPolicy>(policy);
  out.beamspread = ops.f64();
  out.oversub_cap = ops.f64();
  const std::uint64_t n_ops = ops.u64();
  out.operators.reserve(static_cast<std::size_t>(n_ops));
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    market::OperatorOutcome op;
    op.name = ops.str();
    op.economic_share = ops.f64();
    op.full = read_sizing(ops);
    op.capped = read_sizing(ops);
    op.served_cell_fraction = ops.f64();
    op.served_location_fraction = ops.f64();
    const std::uint64_t n_tail = ops.u64();
    op.longtail.reserve(static_cast<std::size_t>(n_tail));
    for (std::uint64_t k = 0; k < n_tail; ++k) {
      core::LongTailPoint p;
      p.locations_unserved = ops.u64();
      p.satellites = ops.f64();
      p.beams_on_binding = ops.u32();
      p.binding_lat_deg = ops.f64();
      op.longtail.push_back(p);
    }
    const std::uint64_t n_cost = ops.u64();
    op.cost_curve.reserve(static_cast<std::size_t>(n_cost));
    for (std::uint64_t k = 0; k < n_cost; ++k) {
      market::MarketCostPoint p;
      p.locations_unserved = ops.u64();
      p.satellites = ops.f64();
      p.annual_cost_usd = ops.f64();
      p.locations_served = ops.u64();
      p.cost_per_location_year_usd = ops.f64();
      op.cost_curve.push_back(p);
    }
    afford::PlanAffordability& a = op.affordability;
    a.plan.name = ops.str();
    a.plan.monthly_usd = ops.f64();
    a.plan.speeds.down_mbps = ops.f64();
    a.plan.speeds.up_mbps = ops.f64();
    a.income_required_usd = ops.f64();
    a.locations_unable = ops.f64();
    a.fraction_unable = ops.f64();
    out.operators.push_back(std::move(op));
  }
  ops.expect_exhausted("market_report operators section");

  ByteReader fair(reader.section("fairness"));
  market::FairnessReport& f = out.fairness;
  const std::uint64_t n_winner = fair.u64();
  f.winner.reserve(static_cast<std::size_t>(n_winner));
  for (std::uint64_t i = 0; i < n_winner; ++i) {
    const auto wv = std::bit_cast<std::int32_t>(fair.u32());
    if (wv < -1 || wv >= static_cast<std::int64_t>(n_ops)) {
      throw SnapshotError("market_report: winner index " + std::to_string(wv) +
                          " out of range for " + std::to_string(n_ops) +
                          " operators");
    }
    f.winner.push_back(wv);
  }
  const std::uint64_t n_fair = fair.u64();
  if (n_fair != n_ops) {
    throw SnapshotError(
        "market_report: fairness rows (" + std::to_string(n_fair) +
        ") do not match operator count (" + std::to_string(n_ops) + ")");
  }
  f.operators.reserve(static_cast<std::size_t>(n_fair));
  for (std::uint64_t i = 0; i < n_fair; ++i) {
    market::OperatorFairness of;
    of.cells_won = fair.u64();
    of.cells_served = fair.u64();
    of.locations_served = fair.u64();
    f.operators.push_back(of);
  }
  f.jain_served_locations = fair.f64();
  f.unserved_cells = fair.u64();
  f.unserved_locations = fair.u64();
  f.capacity_limited_cells = fair.u64();
  f.split_limited_cells = fair.u64();
  fair.expect_exhausted("market_report fairness section");

  return out;
}

}  // namespace leodivide::snapshot
