#pragma once
// Cache-aware stage DAG: the task-graph runtime driven by the same
// upstream-digest edges the snapshot fingerprints have always encoded. Each
// stage declares its config mix and its upstream stages; at run time the
// stage's fingerprint is stage_fingerprint(name) + the config mix + the
// blob digests of its dependencies in declaration order — exactly the
// fingerprint recipe the sequential pipeline uses, so a stage restored from
// cache and a stage recomputed feed identical digests downstream, and
// graph-scheduled results are byte-identical to the sequential reference at
// every thread count (golden-tested in tests/test_task_graph.cpp).
//
// Independent stages overlap on the executor, root-stage loads are
// prefetched through AsyncIo at graph-build time, and stores run behind
// compute on the I/O thread; run() drains, so every artifact is on disk
// when it returns. Both the cache and the AsyncIo are optional — a null
// cache turns the graph into pure compute, a null AsyncIo makes I/O
// synchronous inside each stage node.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "leodivide/runtime/task_graph.hpp"
#include "leodivide/snapshot/async.hpp"
#include "leodivide/snapshot/cache.hpp"
#include "leodivide/snapshot/fingerprint.hpp"

namespace leodivide::snapshot {

class StageGraph {
  /// Type-erased per-stage result metadata, shared with Stage handles.
  struct DigestSlot {
    std::uint64_t digest = 0;
    bool restored = false;
  };

  template <typename T>
  struct Slot : DigestSlot {
    std::optional<T> value;
  };

 public:
  /// Typed handle to a stage's output. Copyable; value() is valid once
  /// run() has executed (or restored) the stage.
  template <typename T>
  class Stage {
   public:
    [[nodiscard]] const T& value() const {
      if (!slot_->value.has_value()) {
        throw std::logic_error("StageGraph::Stage: value read before run()");
      }
      return *slot_->value;
    }
    [[nodiscard]] std::uint64_t digest() const noexcept {
      return slot_->digest;
    }
    [[nodiscard]] bool restored() const noexcept { return slot_->restored; }
    [[nodiscard]] runtime::TaskGraph::TaskId id() const noexcept {
      return id_;
    }

   private:
    friend class StageGraph;
    Stage(std::shared_ptr<Slot<T>> slot, runtime::TaskGraph::TaskId id)
        : slot_(std::move(slot)), id_(id) {}
    std::shared_ptr<Slot<T>> slot_;
    runtime::TaskGraph::TaskId id_ = 0;
  };

  /// Type-erased dependency reference; any Stage<T> converts implicitly.
  class StageRef {
   public:
    template <typename T>
    StageRef(const Stage<T>& stage)  // NOLINT(google-explicit-constructor)
        : id_(stage.id()), digest_(stage.slot_) {}

   private:
    friend class StageGraph;
    runtime::TaskGraph::TaskId id_;
    std::shared_ptr<const DigestSlot> digest_;
  };

  /// Both optional: null cache = pure compute, null io = synchronous I/O.
  explicit StageGraph(const StageCache* cache = nullptr,
                      AsyncIo* io = nullptr)
      : cache_(cache), io_(io) {}

  /// Adds a cached stage. `name` must have static storage duration (it is
  /// the cache stage name and the trace span label). `mix(Fingerprint&)`
  /// folds the stage's own config; upstream blob digests are mixed
  /// automatically in `deps` order. `extra_deps` adds plain scheduling
  /// edges (no digest) on tasks added via add_task. Dependency-free stages
  /// are prefetched through the AsyncIo immediately.
  template <typename Mix, typename Compute, typename Serialize,
            typename Deserialize>
  auto add_stage(const char* name, const std::vector<StageRef>& deps,
                 Mix mix, Compute compute, Serialize serialize,
                 Deserialize deserialize,
                 const std::vector<runtime::TaskGraph::TaskId>& extra_deps =
                     {}) -> Stage<decltype(compute())> {
    using T = decltype(compute());
    auto slot = std::make_shared<Slot<T>>();
    std::vector<std::shared_ptr<const DigestSlot>> upstream;
    upstream.reserve(deps.size());
    std::vector<runtime::TaskGraph::TaskId> dep_ids;
    dep_ids.reserve(deps.size() + extra_deps.size());
    for (const StageRef& d : deps) {
      upstream.push_back(d.digest_);
      dep_ids.push_back(d.id_);
    }
    for (const runtime::TaskGraph::TaskId id : extra_deps) {
      dep_ids.push_back(id);
    }
    AsyncIo::Ticket ticket;
    if (deps.empty() && cache_ != nullptr && io_ != nullptr) {
      ticket = io_->prefetch(*cache_, name, fingerprint_of(name, mix, {}));
    }
    const runtime::TaskGraph::TaskId id = graph_.add_task(
        name,
        [this, name, mix, compute, serialize, deserialize, slot, upstream,
         ticket]() {
          const Fingerprint fp = fingerprint_of(name, mix, upstream);
          Staged<T> staged = staged_compute(cache_, io_, name, fp, compute,
                                            serialize, deserialize, ticket);
          slot->value = std::move(staged.value);
          slot->digest = staged.blob_digest;
          slot->restored = staged.restored;
        },
        dep_ids);
    return Stage<T>(std::move(slot), id);
  }

  /// Adds a plain (uncached) node — glue work between stages, e.g. writing
  /// a derived report. Mixed stage/task dependencies go through the ids.
  runtime::TaskGraph::TaskId add_task(
      const char* name, std::function<void()> fn,
      const std::vector<runtime::TaskGraph::TaskId>& deps = {}) {
    return graph_.add_task(name, std::move(fn), deps);
  }

  [[nodiscard]] std::size_t task_count() const noexcept {
    return graph_.task_count();
  }

  /// Runs the DAG on `ex` (see TaskGraph::run for the determinism and
  /// failure contract), then drains the AsyncIo so every store enqueued by
  /// the run is on disk before this returns.
  void run(runtime::Executor& ex) {
    try {
      graph_.run(ex);
    } catch (...) {
      if (io_ != nullptr) io_->drain();
      throw;
    }
    if (io_ != nullptr) io_->drain();
  }

 private:
  template <typename Mix>
  [[nodiscard]] Fingerprint fingerprint_of(
      const char* name, const Mix& mix,
      const std::vector<std::shared_ptr<const DigestSlot>>& upstream) const {
    Fingerprint fp = stage_fingerprint(name);
    mix(fp);
    for (const auto& d : upstream) fp.mix_u64(d->digest);
    return fp;
  }

  runtime::TaskGraph graph_;
  const StageCache* cache_;
  AsyncIo* io_;
};

}  // namespace leodivide::snapshot
