#include "leodivide/snapshot/async.hpp"

#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"

namespace leodivide::snapshot {

std::optional<std::string> AsyncIo::LoadTicket::take() {
  std::unique_lock<std::mutex> lk(m_);
  done_cv_.wait(lk, [this] { return done_; });
  return std::move(blob_);
}

AsyncIo::AsyncIo() : io_thread_([this] { io_loop(); }) {}

AsyncIo::~AsyncIo() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  io_thread_.join();
}

void AsyncIo::enqueue_store(const StageCache& cache, std::string stage,
                            const Fingerprint& fp, std::string blob) {
  stores_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(m_);
    Job job;
    job.cache = &cache;
    job.stage = std::move(stage);
    job.fp = fp;
    job.blob = std::move(blob);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

AsyncIo::Ticket AsyncIo::prefetch(const StageCache& cache, std::string stage,
                                  const Fingerprint& fp) {
  prefetches_.fetch_add(1, std::memory_order_relaxed);
  Ticket ticket = std::make_shared<LoadTicket>();
  {
    std::lock_guard<std::mutex> lk(m_);
    Job job;
    job.cache = &cache;
    job.stage = std::move(stage);
    job.fp = fp;
    job.ticket = ticket;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return ticket;
}

void AsyncIo::drain() {
  std::unique_lock<std::mutex> lk(m_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

void AsyncIo::io_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    if (job.ticket != nullptr) {
      const obs::Span span("snapshot.async.load");
      std::optional<std::string> blob = job.cache->load(job.stage, job.fp);
      {
        std::lock_guard<std::mutex> tlk(job.ticket->m_);
        job.ticket->blob_ = std::move(blob);
        job.ticket->done_ = true;
      }
      job.ticket->done_cv_.notify_all();
    } else {
      const obs::Span span("snapshot.async.store");
      job.cache->store(job.stage, job.fp, job.blob);
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace leodivide::snapshot
