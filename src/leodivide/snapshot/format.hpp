#pragma once
// LDSNAP — the library's versioned little-endian binary snapshot container.
// A snapshot file holds one serialized pipeline artifact (see
// artifacts.hpp) as named sections, each carried with its own FNV-1a
// checksum so corruption is detected section-by-section:
//
//   offset 0 : char[6]  magic "LDSNAP"
//   offset 6 : u16      endian marker 0xFEFF (bytes FF FE when little-endian)
//   offset 8 : u16      format version (kFormatVersion)
//   offset 10: u16      artifact kind (ArtifactKind)
//   offset 12: u32      section count
//   then per section:
//     u32 name length, name bytes,
//     u64 payload length, payload bytes,
//     u64 chunked FNV-1a checksum of the payload
//
// All multi-byte integers are little-endian regardless of host order;
// doubles travel as the little-endian bytes of their IEEE-754 bit pattern
// (std::bit_cast — never reinterpret_cast, and never a raw cast of
// untrusted bytes). Readers are bounds-checked: every malformed input —
// truncation, bad magic, wrong endianness, unknown version, checksum
// mismatch, trailing garbage — surfaces as a typed SnapshotError, not UB.

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace leodivide::runtime {
class Executor;
}

namespace leodivide::snapshot {

/// Current LDSNAP format version. Bump on any layout change; readers
/// reject every version they do not know.
inline constexpr std::uint16_t kFormatVersion = 1;

/// The endianness canary written at offset 6. A snapshot produced by a
/// hypothetical big-endian writer reads back as 0xFFFE and is rejected.
inline constexpr std::uint16_t kEndianMarker = 0xFEFF;

/// The file magic ("LDSNAP", no terminator).
inline constexpr std::string_view kMagic{"LDSNAP"};

/// Which pipeline artifact a snapshot holds.
enum class ArtifactKind : std::uint16_t {
  kLocations = 1,  ///< demand::DemandDataset (expanded Location records)
  kProfile = 2,    ///< demand::DemandProfile (per-cell aggregates)
  kAnalysis = 3,   ///< core::AnalysisResults (sizing/affordability results)
  kEpochs = 4,     ///< std::vector<sim::EpochCoverage> (sim epoch summaries)
  kEventTrace = 5, ///< event::EventTrace (event-driven run: events+segments)
  kDeltaJournal = 6,  ///< std::vector<demand::DeltaOp> (serve/ delta journal)
  kServePartial = 7,  ///< serve/ per-region sub-stage partial (cache blobs)
  kMarketReport = 8,  ///< market::MarketReport (multi-operator market run)
};

/// Human-readable artifact-kind name ("locations", "profile", ...).
[[nodiscard]] std::string_view to_string(ArtifactKind kind) noexcept;

/// Typed error for every malformed, truncated or corrupted snapshot.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// 64-bit FNV-1a over a byte range, continuing from `seed` (pass the
/// default to start a fresh hash).
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = kFnvOffset);

/// Section-payload checksum: the payload is split at fixed 1 MiB
/// boundaries, each chunk is FNV-1a hashed independently (in parallel over
/// `executor` — chunk boundaries are fixed, so the digest is identical for
/// every thread count), and the per-chunk digests are folded in chunk
/// order. The overload without an executor runs on the process-global one.
[[nodiscard]] std::uint64_t chunked_checksum(std::string_view bytes,
                                             runtime::Executor& executor);
[[nodiscard]] std::uint64_t chunked_checksum(std::string_view bytes);

/// Little-endian byte-buffer writer. Appends primitives to an owned
/// string; no pointer punning anywhere.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::string_view b) { buf_.append(b); }
  /// Length-prefixed string: u32 length + bytes.
  void str(std::string_view s);

  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::string take() && noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range. Every
/// read validates the remaining length first and throws SnapshotError
/// (with the byte offset) on under-run; untrusted bytes are assembled by
/// shifts, never cast.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string_view bytes(std::size_t n);
  /// Length-prefixed string written by ByteWriter::str. `max_len` guards
  /// against absurd lengths decoded from corrupted input.
  [[nodiscard]] std::string str(std::size_t max_len = kMaxStringLen);

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  /// Throws SnapshotError unless every byte has been consumed.
  void expect_exhausted(std::string_view what) const;

  static constexpr std::size_t kMaxStringLen = 1 << 20;

 private:
  void require(std::size_t n) const;
  [[nodiscard]] std::uint64_t read_le(std::size_t n);
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Builds one LDSNAP file in memory. Sections are emitted in add order.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(ArtifactKind kind) noexcept : kind_(kind) {}

  void add_section(std::string name, std::string payload);

  /// Renders header + sections + checksums; the writer is spent afterwards.
  [[nodiscard]] std::string finish() &&;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  ArtifactKind kind_;
  std::vector<Section> sections_;
};

/// Parses and validates one LDSNAP file (header, bounds, per-section
/// checksums, no trailing garbage). Holds views into the caller's buffer,
/// which must outlive the reader.
class SnapshotReader {
 public:
  struct Section {
    std::string name;
    std::string_view payload;
    std::uint64_t checksum = 0;
  };

  /// Throws SnapshotError on any malformation.
  [[nodiscard]] static SnapshotReader parse(std::string_view file);

  [[nodiscard]] ArtifactKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint16_t version() const noexcept { return version_; }
  [[nodiscard]] const std::vector<Section>& sections() const noexcept {
    return sections_;
  }
  /// Payload of the section named `name`; throws SnapshotError if absent.
  [[nodiscard]] std::string_view section(std::string_view name) const;

 private:
  SnapshotReader() = default;
  ArtifactKind kind_ = ArtifactKind::kProfile;
  std::uint16_t version_ = 0;
  std::vector<Section> sections_;
};

}  // namespace leodivide::snapshot
