#include "leodivide/snapshot/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "leodivide/io/fileio.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/obs/trace.hpp"

namespace leodivide::snapshot {

namespace fs = std::filesystem;

StageCache::StageCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("StageCache: cannot create '" + dir_ +
                             "': " + ec.message());
  }
}

std::string StageCache::blob_path(std::string_view stage,
                                  const Fingerprint& fp) const {
  std::string path = dir_;
  path += '/';
  path += stage;
  path += '/';
  path += fp.hex();
  path += ".ldsnap";
  return path;
}

std::optional<std::string> StageCache::load(std::string_view stage,
                                            const Fingerprint& fp) const {
  obs::Span span("snapshot.load");
  const std::string path = blob_path(stage, fp);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("snapshot.misses").add();
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("snapshot.misses").add();
    return std::nullopt;
  }
  std::string blob = std::move(buf).str();
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter("snapshot.hits").add();
  obs::registry().counter("snapshot.load_bytes").add(blob.size());
  return blob;
}

void StageCache::store(std::string_view stage, const Fingerprint& fp,
                       std::string_view blob) const {
  if (store_disabled_.load(std::memory_order_relaxed)) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("snapshot.store_failures").add();
    return;
  }
  obs::Span span("snapshot.store");
  const std::string path = blob_path(stage, fp);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  std::string failure;
  if (ec) {
    failure = "cannot create stage dir for '" + path + "': " + ec.message();
  } else {
    try {
      io::write_text_file(path, blob);
    } catch (const std::exception& e) {
      failure = e.what();
    }
  }
  if (!failure.empty()) {
    // Degrade to recompute-without-store: warn once, count every skipped
    // store, and keep serving loads (the directory may still be readable).
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("snapshot.store_failures").add();
    if (!store_disabled_.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "leodivide: warning: snapshot cache '%s' is not writable "
                   "(%s); continuing without storing\n",
                   dir_.c_str(), failure.c_str());
    }
    return;
  }
  obs::registry().counter("snapshot.store_bytes").add(blob.size());
}

void StageCache::note_bad_blob() const noexcept {
  hits_.fetch_sub(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter("snapshot.bad_blobs").add();
}

namespace {

std::mutex g_mutex;
std::unique_ptr<StageCache> g_cache;
bool g_initialized = false;

void set_global_dir_locked(std::string dir) {
  if (dir.empty()) {
    g_cache.reset();
  } else {
    g_cache = std::make_unique<StageCache>(std::move(dir));
  }
  g_initialized = true;
}

}  // namespace

StageCache* global_cache() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_initialized) {
    const char* env = std::getenv("LEODIVIDE_SNAPSHOT_DIR");
    set_global_dir_locked(env != nullptr ? std::string(env) : std::string());
  }
  return g_cache.get();
}

void set_global_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(g_mutex);
  set_global_dir_locked(std::move(dir));
}

bool parse_cli_arg(int argc, char** argv, int& i) {
  const std::string_view arg = argv[i];
  constexpr std::string_view kFlag = "--snapshot-dir";
  if (arg == kFlag) {
    if (i + 1 >= argc) {
      throw std::runtime_error("--snapshot-dir requires a directory");
    }
    set_global_dir(argv[++i]);
    return true;
  }
  if (arg.substr(0, kFlag.size()) == kFlag && arg.size() > kFlag.size() &&
      arg[kFlag.size()] == '=') {
    set_global_dir(std::string(arg.substr(kFlag.size() + 1)));
    return true;
  }
  return false;
}

}  // namespace leodivide::snapshot
