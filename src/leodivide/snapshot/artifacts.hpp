#pragma once
// LDSNAP serializers for the heavy pipeline artifacts:
//
//   demand::DemandDataset            (kLocations — expanded Location sets)
//   demand::DemandProfile            (kProfile   — per-cell aggregates)
//   core::AnalysisResults            (kAnalysis  — sizing/report results)
//   std::vector<sim::EpochCoverage>  (kEpochs    — simulation summaries)
//   event::EventTrace                (kEventTrace — event-driven run traces)
//   std::vector<demand::DeltaOp>     (kDeltaJournal — serve/ delta journal)
//   market::MarketReport             (kMarketReport — multi-operator runs)
//
// Round trips are exact: doubles travel as IEEE-754 bit patterns, so
// deserialize(serialize(x)) == x bit-for-bit and a cached stage can replace
// recomputation without perturbing downstream output. Deserializers
// re-validate semantic invariants (county indices in range, known
// technology codes) and throw SnapshotError — corrupted input that passes
// the checksums still cannot reach undefined behaviour.

#include <string>
#include <string_view>
#include <vector>

#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/dataset.hpp"
#include "leodivide/demand/delta.hpp"
#include "leodivide/event/trace.hpp"
#include "leodivide/market/simulation.hpp"
#include "leodivide/sim/coverage.hpp"
#include "leodivide/snapshot/format.hpp"

namespace leodivide::snapshot {

[[nodiscard]] std::string serialize(const demand::DemandDataset& dataset);
[[nodiscard]] std::string serialize(const demand::DemandProfile& profile);
[[nodiscard]] std::string serialize(const core::AnalysisResults& results);
[[nodiscard]] std::string serialize(const std::vector<sim::EpochCoverage>& epochs);
[[nodiscard]] std::string serialize(const event::EventTrace& trace);
[[nodiscard]] std::string serialize(const std::vector<demand::DeltaOp>& journal);
[[nodiscard]] std::string serialize(const market::MarketReport& report);

[[nodiscard]] demand::DemandDataset deserialize_dataset(std::string_view file);
[[nodiscard]] demand::DemandProfile deserialize_profile(std::string_view file);
[[nodiscard]] core::AnalysisResults deserialize_analysis(std::string_view file);
[[nodiscard]] std::vector<sim::EpochCoverage> deserialize_epochs(
    std::string_view file);
[[nodiscard]] event::EventTrace deserialize_event_trace(std::string_view file);
[[nodiscard]] std::vector<demand::DeltaOp> deserialize_delta_journal(
    std::string_view file);
[[nodiscard]] market::MarketReport deserialize_market_report(
    std::string_view file);

/// Wire codec for one DeltaOp. Shared between the kDeltaJournal artifact
/// and the serve/ protocol's ApplyDelta request, so the two encodings can
/// never drift apart. read_delta_op validates the kind code and throws
/// SnapshotError on anything unknown.
void write_delta_op(ByteWriter& w, const demand::DeltaOp& op);
[[nodiscard]] demand::DeltaOp read_delta_op(ByteReader& r);

}  // namespace leodivide::snapshot
