#pragma once
// Umbrella header for the snapshot subsystem: LDSNAP binary artifact
// serialization (format.hpp, artifacts.hpp), input fingerprints
// (fingerprint.hpp), the content-addressed stage cache (cache.hpp), the
// async I/O thread (async.hpp) and the cache-aware stage DAG
// (stage_graph.hpp).

#include "leodivide/snapshot/artifacts.hpp"
#include "leodivide/snapshot/async.hpp"
#include "leodivide/snapshot/cache.hpp"
#include "leodivide/snapshot/fingerprint.hpp"
#include "leodivide/snapshot/format.hpp"
#include "leodivide/snapshot/stage_graph.hpp"
