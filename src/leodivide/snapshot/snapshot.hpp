#pragma once
// Umbrella header for the snapshot subsystem: LDSNAP binary artifact
// serialization (format.hpp, artifacts.hpp), input fingerprints
// (fingerprint.hpp) and the content-addressed stage cache (cache.hpp).

#include "leodivide/snapshot/artifacts.hpp"
#include "leodivide/snapshot/cache.hpp"
#include "leodivide/snapshot/fingerprint.hpp"
#include "leodivide/snapshot/format.hpp"
