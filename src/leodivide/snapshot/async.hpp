#pragma once
// Asynchronous snapshot I/O: a single background thread that runs
// StageCache loads (prefetch) and stores behind compute, so the pipeline
// never barriers on the filesystem. Determinism is untouched by design —
// the cache is content-addressed, stores are atomic temp+rename and
// idempotent per (stage, fingerprint), and nothing schedule-dependent can
// enter a blob — so moving I/O off the compute thread changes *when* bytes
// reach disk, never what any stage computes.
//
// Ordering: jobs execute FIFO in enqueue order on one thread, so a
// prefetch enqueued after a store of the same key observes that store.
// drain() is the visibility barrier: once it returns, every job enqueued
// before the call has completed (every store is on disk). The destructor
// drains.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "leodivide/snapshot/cache.hpp"

namespace leodivide::snapshot {

class AsyncIo {
 public:
  /// Completion handle for one prefetch. take() blocks until the load has
  /// run and yields the blob (or std::nullopt on a cache miss); it may be
  /// called once — the blob is moved out.
  class LoadTicket {
   public:
    [[nodiscard]] std::optional<std::string> take();

   private:
    friend class AsyncIo;
    std::mutex m_;
    std::condition_variable done_cv_;
    bool done_ = false;
    std::optional<std::string> blob_;
  };
  using Ticket = std::shared_ptr<LoadTicket>;

  /// Starts the I/O thread.
  AsyncIo();

  /// Drains outstanding jobs, then joins the I/O thread.
  ~AsyncIo();

  AsyncIo(const AsyncIo&) = delete;
  AsyncIo& operator=(const AsyncIo&) = delete;

  /// Fire-and-forget store of `blob` under (stage, fp) in `cache`, which
  /// must outlive this AsyncIo (or at least the next drain()). Failures
  /// degrade exactly like the synchronous path — StageCache::store warns
  /// once and never throws.
  void enqueue_store(const StageCache& cache, std::string stage,
                     const Fingerprint& fp, std::string blob);

  /// Starts loading (stage, fp) from `cache` in the background; the ticket
  /// resolves to the blob bytes or std::nullopt on a miss.
  [[nodiscard]] Ticket prefetch(const StageCache& cache, std::string stage,
                                const Fingerprint& fp);

  /// Blocks until every job enqueued before this call has completed.
  void drain();

  /// Jobs accepted since construction.
  [[nodiscard]] std::uint64_t stores() const noexcept {
    return stores_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t prefetches() const noexcept {
    return prefetches_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    const StageCache* cache = nullptr;
    std::string stage;
    Fingerprint fp;
    std::string blob;    ///< store payload (unused for loads)
    Ticket ticket;       ///< load completion (null for stores)
  };

  void io_loop();

  std::mutex m_;
  std::condition_variable work_cv_;   ///< signals the I/O thread
  std::condition_variable idle_cv_;   ///< signals drain() waiters
  std::deque<Job> queue_;
  bool busy_ = false;     ///< a job is executing right now
  bool stopping_ = false;
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> prefetches_{0};
  std::thread io_thread_;
};

/// Result of one cache-aware stage execution (see staged_compute).
template <typename T>
struct Staged {
  T value;
  std::uint64_t blob_digest = 0;  ///< FNV-1a digest of the serialized
                                  ///< bytes; 0 when caching is off
  bool restored = false;          ///< true when `value` came from a blob
};

/// FNV-1a digest of a serialized blob — the "upstream digest" a dependent
/// stage mixes into its own fingerprint (the same edge the snapshot
/// fingerprints have always encoded; see stage_graph.hpp).
[[nodiscard]] inline std::uint64_t blob_digest(std::string_view blob) {
  return Fingerprint().mix(blob).digest();
}

/// StageCache::get_or_compute, extended two ways for the task-graph
/// runtime: the store can be offloaded to an AsyncIo (null `io` = store
/// synchronously), and the returned Staged carries the blob digest for
/// downstream fingerprint edges plus whether the value was restored.
/// `cache` may be null (caching off): compute runs, nothing is stored, the
/// digest is 0. An optional `prefetched` ticket (from AsyncIo::prefetch of
/// the same stage+fp) replaces the synchronous load.
template <typename Compute, typename Serialize, typename Deserialize>
auto staged_compute(const StageCache* cache, AsyncIo* io,
                    std::string_view stage, const Fingerprint& fp,
                    Compute&& compute, Serialize&& serialize,
                    Deserialize&& deserialize,
                    AsyncIo::Ticket prefetched = nullptr)
    -> Staged<decltype(compute())> {
  using T = decltype(compute());
  if (cache == nullptr) return Staged<T>{compute(), 0, false};
  std::optional<std::string> blob =
      prefetched != nullptr ? prefetched->take() : cache->load(stage, fp);
  if (blob) {
    try {
      T value = deserialize(std::string_view(*blob));
      return Staged<T>{std::move(value), blob_digest(*blob), true};
    } catch (const SnapshotError&) {
      // Invalid blob: recompute below; the store replaces it.
      cache->note_bad_blob();
    }
  }
  T value = compute();
  std::string bytes = serialize(value);
  const std::uint64_t digest = blob_digest(bytes);
  if (io != nullptr) {
    io->enqueue_store(*cache, std::string(stage), fp, std::move(bytes));
  } else {
    cache->store(stage, fp, bytes);
  }
  return Staged<T>{std::move(value), digest, false};
}

}  // namespace leodivide::snapshot
