#include "leodivide/snapshot/fingerprint.hpp"

#include <bit>

#include "leodivide/core/scenario.hpp"
#include "leodivide/demand/delta.hpp"
#include "leodivide/demand/generator.hpp"
#include "leodivide/event/engine.hpp"
#include "leodivide/market/simulation.hpp"
#include "leodivide/sim/simulation.hpp"

namespace leodivide::snapshot {

namespace {

// Type tags: structural separators so differently-typed mixes of the same
// byte pattern hash apart.
constexpr std::uint8_t kTagBytes = 1;
constexpr std::uint8_t kTagU64 = 2;
constexpr std::uint8_t kTagF64 = 3;

}  // namespace

Fingerprint& Fingerprint::tag(std::uint8_t t) {
  h_ ^= t;
  h_ *= kFnvPrime;
  return *this;
}

Fingerprint& Fingerprint::mix(std::string_view bytes) {
  tag(kTagBytes);
  mix_u64(bytes.size());
  h_ = fnv1a64(bytes, h_);
  return *this;
}

Fingerprint& Fingerprint::mix_u64(std::uint64_t v) {
  tag(kTagU64);
  for (int b = 0; b < 8; ++b) {
    h_ ^= static_cast<std::uint8_t>(v >> (8 * b));
    h_ *= kFnvPrime;
  }
  return *this;
}

Fingerprint& Fingerprint::mix_f64(double v) {
  tag(kTagF64);
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int b = 0; b < 8; ++b) {
    h_ ^= static_cast<std::uint8_t>(bits >> (8 * b));
    h_ *= kFnvPrime;
  }
  return *this;
}

std::string Fingerprint::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        kDigits[(h_ >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

Fingerprint stage_fingerprint(std::string_view stage) {
  Fingerprint fp;
  fp.mix("ldsnap").mix_u64(kFormatVersion).mix(stage);
  return fp;
}

Fingerprint substage_fingerprint(std::string_view stage,
                                 std::string_view substage) {
  Fingerprint fp = stage_fingerprint(stage);
  fp.mix(substage);
  return fp;
}

void mix(Fingerprint& fp, const demand::GeneratorConfig& config) {
  fp.mix_u64(config.seed)
      .mix_i64(config.resolution)
      .mix_i64(config.county_resolution)
      .mix_f64(config.scale)
      .mix_bool(config.plant_peak_cells)
      .mix_f64(config.heavy_cell_min_lat_deg);
}

void mix(Fingerprint& fp, const core::SizingModel& model) {
  const spectrum::BeamPlan& plan = model.capacity.plan();
  fp.mix_f64(plan.full_cell_capacity_gbps())
      .mix_f64(plan.spectral_efficiency())
      .mix_u64(plan.user_beams())
      .mix_u64(plan.beams_per_full_cell())
      .mix_f64(model.inclination_deg)
      .mix_f64(model.cell_area_km2);
}

void mix(Fingerprint& fp, const core::AnalysisConfig& config) {
  auto mix_vec = [&fp](const std::vector<double>& v) {
    fp.mix_u64(v.size());
    for (double x : v) fp.mix_f64(x);
  };
  mix_vec(config.table2_beamspreads);
  mix_vec(config.fig2_beamspreads);
  mix_vec(config.fig2_oversubs);
  fp.mix_u64(config.fig3_curves.size());
  for (const auto& [s, o] : config.fig3_curves) {
    fp.mix_f64(s).mix_f64(o);
  }
  fp.mix_f64(config.oversub_cap);
}

void mix(Fingerprint& fp, const sim::SimulationConfig& config) {
  fp.mix_f64(config.shell.inclination_deg)
      .mix_f64(config.shell.altitude_km)
      .mix_u64(config.shell.planes)
      .mix_u64(config.shell.sats_per_plane)
      .mix_u64(config.shell.phasing)
      .mix_u64(config.scheduler.beams_per_satellite)
      .mix_u64(config.scheduler.beamspread)
      .mix_f64(config.scheduler.min_elevation_deg)
      .mix_u64(static_cast<std::uint64_t>(config.scheduler.strategy))
      .mix_f64(config.duration_s)
      .mix_f64(config.step_s)
      .mix_f64(config.oversub_target);
}

void mix(Fingerprint& fp, const event::EventConfig& config) {
  fp.mix_f64(config.window_s)
      .mix_f64(config.eval_slack)
      .mix_f64(config.guard_s);
}

void mix(Fingerprint& fp, const market::OperatorCosts& costs) {
  fp.mix_f64(costs.satellite_capex_usd)
      .mix_f64(costs.launch_capex_usd)
      .mix_f64(costs.ground_capex_usd)
      .mix_f64(costs.satellite_lifetime_years)
      .mix_f64(costs.annual_opex_fraction);
}

void mix(Fingerprint& fp, const market::OperatorConfig& config) {
  fp.mix(config.name);
  fp.mix_u64(config.shells.size());
  for (const orbit::WalkerShell& s : config.shells) {
    fp.mix_f64(s.inclination_deg)
        .mix_f64(s.altitude_km)
        .mix_u64(s.planes)
        .mix_u64(s.sats_per_plane)
        .mix_u64(s.phasing);
  }
  fp.mix_u64(config.bands.size());
  for (const spectrum::Band& b : config.bands) {
    fp.mix(b.name)
        .mix_f64(b.lo_ghz)
        .mix_f64(b.hi_ghz)
        .mix_u64(b.beams)
        .mix_u64(static_cast<std::uint64_t>(b.usage));
  }
  fp.mix_u64(config.beams_per_full_cell)
      .mix_f64(config.spectral_efficiency_bps_hz)
      .mix_f64(config.sizing_inclination_deg)
      .mix(config.plan.name)
      .mix_f64(config.plan.monthly_usd)
      .mix_f64(config.plan.speeds.down_mbps)
      .mix_f64(config.plan.speeds.up_mbps);
  mix(fp, config.costs);
}

void mix(Fingerprint& fp, const market::SpectrumSplitConfig& config) {
  fp.mix_u64(static_cast<std::uint64_t>(config.policy))
      .mix_f64(config.zone_deg)
      .mix_f64(config.priority_weight);
}

void mix(Fingerprint& fp, const market::MarketConfig& config) {
  fp.mix_u64(config.operators.size());
  for (const market::OperatorConfig& op : config.operators) mix(fp, op);
  mix(fp, config.split);
  fp.mix_f64(config.beamspread).mix_f64(config.oversub_cap);
}

void mix(Fingerprint& fp, const demand::DeltaOp& op) {
  fp.mix_u64(static_cast<std::uint64_t>(op.kind))
      .mix_f64(op.position.lat_deg)
      .mix_f64(op.position.lon_deg)
      .mix_u64(op.count)
      .mix_u64(op.county_index)
      .mix(op.plan_name)
      .mix_f64(op.value);
}

}  // namespace leodivide::snapshot
