#include "leodivide/snapshot/format.hpp"

#include <utility>

#include "leodivide/runtime/executor.hpp"

namespace leodivide::snapshot {

namespace {

// Fixed chunk size for chunked_checksum. Boundaries must not depend on the
// executor's concurrency or the digest would vary with the thread count.
constexpr std::size_t kChecksumChunk = 1 << 20;

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw SnapshotError("LDSNAP: " + std::string(what) + " at byte offset " +
                      std::to_string(offset));
}

}  // namespace

std::string_view to_string(ArtifactKind kind) noexcept {
  switch (kind) {
    case ArtifactKind::kLocations: return "locations";
    case ArtifactKind::kProfile: return "profile";
    case ArtifactKind::kAnalysis: return "analysis";
    case ArtifactKind::kEpochs: return "epochs";
    case ArtifactKind::kEventTrace: return "event_trace";
    case ArtifactKind::kDeltaJournal: return "delta_journal";
    case ArtifactKind::kServePartial: return "serve_partial";
    case ArtifactKind::kMarketReport: return "market_report";
  }
  return "unknown";
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t chunked_checksum(std::string_view bytes,
                               runtime::Executor& executor) {
  if (bytes.empty()) return fnv1a64(bytes);
  const std::size_t chunks = (bytes.size() + kChecksumChunk - 1) /
                             kChecksumChunk;
  std::vector<std::uint64_t> digests(chunks);
  // leolint:allow(parallel-capture): each task writes only its own digests[i] slot
  executor.run_tasks(chunks, [bytes, &digests](std::size_t i) {
    const std::size_t lo = i * kChecksumChunk;
    digests[i] = fnv1a64(bytes.substr(lo, kChecksumChunk));
  });
  // Fold the per-chunk digests in chunk order: feed each digest's eight
  // little-endian bytes through the running FNV-1a state.
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t d : digests) {
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<std::uint8_t>(d >> (8 * b));
      h *= kFnvPrime;
    }
  }
  return h;
}

std::uint64_t chunked_checksum(std::string_view bytes) {
  return chunked_checksum(bytes, runtime::global_executor());
}

// ------------------------------------------------------------ ByteWriter --

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int b = 0; b < 4; ++b) u8(static_cast<std::uint8_t>(v >> (8 * b)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int b = 0; b < 8; ++b) u8(static_cast<std::uint8_t>(v >> (8 * b)));
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s);
}

// ------------------------------------------------------------ ByteReader --

void ByteReader::require(std::size_t n) const {
  if (n > data_.size() - pos_) {
    fail("truncated input (need " + std::to_string(n) + " more byte(s), have " +
             std::to_string(data_.size() - pos_) + ")",
         pos_);
  }
}

std::uint64_t ByteReader::read_le(std::size_t n) {
  require(n);
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < n; ++b) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + b]))
         << (8 * b);
  }
  pos_ += n;
  return v;
}

std::uint8_t ByteReader::u8() { return static_cast<std::uint8_t>(read_le(1)); }

std::uint16_t ByteReader::u16() {
  return static_cast<std::uint16_t>(read_le(2));
}

std::uint32_t ByteReader::u32() {
  return static_cast<std::uint32_t>(read_le(4));
}

std::uint64_t ByteReader::u64() { return read_le(8); }

std::string_view ByteReader::bytes(std::size_t n) {
  require(n);
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t max_len) {
  const std::uint32_t n = u32();
  if (n > max_len) {
    fail("string length " + std::to_string(n) + " exceeds limit " +
             std::to_string(max_len),
         pos_ - 4);
  }
  return std::string(bytes(n));
}

void ByteReader::expect_exhausted(std::string_view what) const {
  if (!exhausted()) {
    fail(std::string(what) + ": " + std::to_string(remaining()) +
             " trailing byte(s)",
         pos_);
  }
}

// --------------------------------------------------------- writer/reader --

void SnapshotWriter::add_section(std::string name, std::string payload) {
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

std::string SnapshotWriter::finish() && {
  ByteWriter w;
  w.bytes(kMagic);
  w.u16(kEndianMarker);
  w.u16(kFormatVersion);
  w.u16(static_cast<std::uint16_t>(kind_));
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.str(s.name);
    w.u64(s.payload.size());
    w.bytes(s.payload);
    w.u64(chunked_checksum(s.payload));
  }
  return std::move(w).take();
}

SnapshotReader SnapshotReader::parse(std::string_view file) {
  ByteReader r(file);
  if (std::string_view magic = r.bytes(kMagic.size()); magic != kMagic) {
    fail("bad magic (not an LDSNAP file)", 0);
  }
  if (const std::uint16_t endian = r.u16(); endian != kEndianMarker) {
    if (endian == 0xFFFE) {
      fail("byte-swapped endian marker (snapshot written on a big-endian "
           "host)",
           kMagic.size());
    }
    fail("bad endian marker", kMagic.size());
  }
  SnapshotReader out;
  out.version_ = r.u16();
  if (out.version_ != kFormatVersion) {
    fail("unsupported format version " + std::to_string(out.version_) +
             " (reader understands " + std::to_string(kFormatVersion) + ")",
         kMagic.size() + 2);
  }
  const std::uint16_t kind = r.u16();
  if (kind < static_cast<std::uint16_t>(ArtifactKind::kLocations) ||
      kind > static_cast<std::uint16_t>(ArtifactKind::kMarketReport)) {
    fail("unknown artifact kind " + std::to_string(kind), kMagic.size() + 4);
  }
  out.kind_ = static_cast<ArtifactKind>(kind);
  const std::uint32_t n_sections = r.u32();
  out.sections_.reserve(n_sections);
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    s.name = r.str();
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) {
      fail("section '" + s.name + "' claims " + std::to_string(len) +
               " byte(s) but only " + std::to_string(r.remaining()) +
               " remain",
           r.offset() - 8);
    }
    s.payload = r.bytes(static_cast<std::size_t>(len));
    s.checksum = r.u64();
    if (const std::uint64_t got = chunked_checksum(s.payload);
        got != s.checksum) {
      throw SnapshotError("LDSNAP: checksum mismatch in section '" + s.name +
                          "' (stored " + std::to_string(s.checksum) +
                          ", computed " + std::to_string(got) + ")");
    }
    out.sections_.push_back(std::move(s));
  }
  r.expect_exhausted("after last section");
  return out;
}

std::string_view SnapshotReader::section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return s.payload;
  }
  throw SnapshotError("LDSNAP: missing section '" + std::string(name) + "'");
}

}  // namespace leodivide::snapshot
