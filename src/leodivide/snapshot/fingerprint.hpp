#pragma once
// Content fingerprints for the stage cache: a streaming 64-bit FNV-1a hash
// over every input that determines a stage's output — config struct fields
// (mixed field-by-field, never as raw struct bytes, so padding and ABI
// layout can't leak in), seeds, the library format version, and upstream
// artifact digests. Two runs with equal fingerprints are guaranteed equal
// inputs under the library's determinism contract, so their outputs are
// byte-identical and a cached blob can stand in for recomputation.
//
// Thread counts, wall-clock time and environment never enter a
// fingerprint: a snapshot produced at --threads 8 must hit for a rerun at
// --threads 1.

#include <cstdint>
#include <string>
#include <string_view>

#include "leodivide/snapshot/format.hpp"

namespace leodivide::demand {
struct GeneratorConfig;
struct DeltaOp;
}
namespace leodivide::core {
struct SizingModel;
struct AnalysisConfig;
}
namespace leodivide::sim {
struct SimulationConfig;
}
namespace leodivide::event {
struct EventConfig;
}
namespace leodivide::market {
struct OperatorCosts;
struct OperatorConfig;
struct SpectrumSplitConfig;
struct MarketConfig;
}

namespace leodivide::snapshot {

/// Streaming FNV-1a fingerprint. Every mix folds a type tag first, so
/// mix_u64(0) and mix_f64(0.0) — or "ab" + "c" vs "a" + "bc" — never
/// collide structurally.
class Fingerprint {
 public:
  Fingerprint& mix(std::string_view bytes);
  Fingerprint& mix_u64(std::uint64_t v);
  Fingerprint& mix_i64(std::int64_t v) {
    return mix_u64(static_cast<std::uint64_t>(v));
  }
  Fingerprint& mix_f64(double v);
  Fingerprint& mix_bool(bool v) { return mix_u64(v ? 1 : 0); }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }
  /// 16 lowercase hex digits — the blob filename stem under the cache.
  [[nodiscard]] std::string hex() const;

 private:
  Fingerprint& tag(std::uint8_t t);
  std::uint64_t h_ = kFnvOffset;
};

/// Fresh fingerprint seeded with the stage name and the LDSNAP format
/// version — every stage fingerprint starts here, so a format bump
/// invalidates every cached blob at once.
[[nodiscard]] Fingerprint stage_fingerprint(std::string_view stage);

/// Sub-stage fingerprint: a stage fingerprint further scoped by a sub-stage
/// name (e.g. one region of a per-region recompute). Serve/'s incremental
/// engine keys its per-region partials with these so a region's cached
/// artifact can never collide with another region's, or with the parent
/// stage's whole-output blob.
[[nodiscard]] Fingerprint substage_fingerprint(std::string_view stage,
                                               std::string_view substage);

/// Field-by-field config mixers (every field participates; extend these
/// when a config grows a field, or stale cache blobs will hit).
void mix(Fingerprint& fp, const demand::GeneratorConfig& config);
void mix(Fingerprint& fp, const core::SizingModel& model);
void mix(Fingerprint& fp, const core::AnalysisConfig& config);
void mix(Fingerprint& fp, const sim::SimulationConfig& config);
void mix(Fingerprint& fp, const event::EventConfig& config);
void mix(Fingerprint& fp, const demand::DeltaOp& op);
void mix(Fingerprint& fp, const market::OperatorCosts& costs);
void mix(Fingerprint& fp, const market::OperatorConfig& config);
void mix(Fingerprint& fp, const market::SpectrumSplitConfig& config);
void mix(Fingerprint& fp, const market::MarketConfig& config);

}  // namespace leodivide::snapshot
