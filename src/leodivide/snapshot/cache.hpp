#pragma once
// Content-addressed stage cache: skips recomputation of a pipeline stage
// when a snapshot of its output already exists for the exact inputs.
//
// A blob lives at <dir>/<stage>/<fingerprint-hex>.ldsnap, where the
// fingerprint hashes everything the stage's output depends on (config
// fields, seeds, upstream artifact digests, the LDSNAP format version —
// see fingerprint.hpp). Lookups are pure functions of the fingerprint, so
// hit/miss behaviour is identical at every thread count; nothing
// schedule-dependent ever enters a cache key.
//
// A corrupted or truncated blob is never trusted: deserialization failures
// (SnapshotError) count as a miss, the stage recomputes, and the fresh
// blob atomically replaces the bad one. Stores go through
// io::write_text_file (write-temp-then-rename), so a crashed writer can't
// leave a half-written blob behind for the next run to trip over.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "leodivide/snapshot/fingerprint.hpp"
#include "leodivide/snapshot/format.hpp"

namespace leodivide::snapshot {

class StageCache {
 public:
  /// Binds the cache to `dir` (created, with parents, if absent). Throws
  /// std::runtime_error when the directory cannot be created.
  explicit StageCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Path of the blob for (stage, fingerprint).
  [[nodiscard]] std::string blob_path(std::string_view stage,
                                      const Fingerprint& fp) const;

  /// Raw blob bytes if present, std::nullopt on a miss. Counts the
  /// hit/miss and records load bytes + latency in obs.
  [[nodiscard]] std::optional<std::string> load(std::string_view stage,
                                                const Fingerprint& fp) const;

  /// Atomically stores a blob for (stage, fingerprint). A cache directory
  /// that exists but cannot be written (read-only mount, a stray file where
  /// the stage directory should be) degrades to recompute-without-store:
  /// the first failure prints one warning to stderr and disables further
  /// stores for this cache; it never throws. This matches the corrupt-blob
  /// philosophy — a broken cache costs recomputation, never the run.
  void store(std::string_view stage, const Fingerprint& fp,
             std::string_view blob) const;

  /// The cache's core operation: returns the deserialized cached artifact
  /// when a valid blob exists, otherwise runs `compute`, stores
  /// `serialize(result)` and returns the result. A blob that fails to
  /// deserialize (SnapshotError) is treated as a miss and overwritten.
  ///
  /// `compute()` -> T, `serialize(const T&)` -> std::string,
  /// `deserialize(std::string_view)` -> T.
  template <typename Compute, typename Serialize, typename Deserialize>
  auto get_or_compute(std::string_view stage, const Fingerprint& fp,
                      Compute&& compute, Serialize&& serialize,
                      Deserialize&& deserialize) -> decltype(compute()) {
    if (std::optional<std::string> blob = load(stage, fp)) {
      try {
        return deserialize(std::string_view(*blob));
      } catch (const SnapshotError&) {
        // Invalid blob: fall through to recompute; the store below
        // replaces it.
        note_bad_blob();
      }
    }
    auto result = compute();
    store(stage, fp, serialize(result));
    return result;
  }

  /// Validated hits / misses since construction. A blob that existed but
  /// failed deserialization counts as a miss, not a hit.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Stores that failed (and were swallowed) since construction. Nonzero
  /// means the cache has degraded to recompute-without-store.
  [[nodiscard]] std::uint64_t store_failures() const noexcept {
    return store_failures_.load(std::memory_order_relaxed);
  }

  /// Reclassifies the last load() hit as a miss (blob failed validation).
  /// Call after a load()ed blob fails deserialization outside
  /// get_or_compute — async.hpp's staged_compute uses this to keep the
  /// hit/miss counters truthful on its manual load path.
  void note_bad_blob() const noexcept;

 private:
  std::string dir_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> store_failures_{0};
  mutable std::atomic<bool> store_disabled_{false};
};

/// Process-global cache, for CLI/env wiring.
///
/// The first global_cache() call initialises it from the
/// LEODIVIDE_SNAPSHOT_DIR environment variable (unset or empty = caching
/// off); set_global_dir() overrides that — an empty dir disables caching.
/// Returns nullptr when caching is off.
[[nodiscard]] StageCache* global_cache();
void set_global_dir(std::string dir);

/// Consumes `--snapshot-dir <dir>` / `--snapshot-dir=<dir>` at argv[i]
/// (advancing i past a separate value argument) and routes it to
/// set_global_dir. Returns false when argv[i] is not a snapshot flag.
/// Throws std::runtime_error when the flag is present but the value is
/// missing.
bool parse_cli_arg(int argc, char** argv, int& i);

}  // namespace leodivide::snapshot
