#pragma once
// Location-weighted income view over a demand profile: each un(der)served
// location is assigned its county's median household income (the paper's
// assumption), producing the weighted income distribution that drives every
// affordability result.

#include "leodivide/demand/dataset.hpp"
#include "leodivide/stats/cdf.hpp"

namespace leodivide::afford {

/// Weighted county-income distribution over un(der)served locations.
class IncomeView {
 public:
  /// Builds from a profile's county table. Throws std::invalid_argument if
  /// no county has any un(der)served location.
  explicit IncomeView(const demand::DemandProfile& profile);

  /// Number of locations in counties with median income <= `income_usd`.
  [[nodiscard]] double locations_with_income_at_most(double income_usd) const;

  /// Location-weighted CDF value at `income_usd`.
  [[nodiscard]] double fraction_with_income_at_most(double income_usd) const;

  /// Location-weighted income quantile.
  [[nodiscard]] double income_quantile(double p) const;

  [[nodiscard]] double total_locations() const noexcept;
  [[nodiscard]] double min_income() const noexcept;
  [[nodiscard]] double max_income() const noexcept;

 private:
  stats::WeightedCdf cdf_;
};

}  // namespace leodivide::afford
