#include "leodivide/afford/affordability.hpp"

#include <stdexcept>

namespace leodivide::afford {

double income_required_usd(double monthly_usd, double threshold) {
  if (threshold <= 0.0) {
    throw std::invalid_argument("income_required_usd: threshold must be > 0");
  }
  return monthly_usd * 12.0 / threshold;
}

bool is_affordable(double monthly_usd, double annual_income_usd,
                   double threshold) {
  return monthly_usd <= threshold * annual_income_usd / 12.0;
}

AffordabilityAnalyzer::AffordabilityAnalyzer(
    const demand::DemandProfile& profile)
    : income_(profile) {}

PlanAffordability AffordabilityAnalyzer::evaluate(const ServicePlan& plan,
                                                  double threshold) const {
  PlanAffordability out;
  out.plan = plan;
  out.income_required_usd = income_required_usd(plan.monthly_usd, threshold);
  // Counties strictly below the required income cannot afford the plan.
  // weight_at_most is inclusive, so probe just under the threshold.
  const double epsilon = 1e-6;
  out.locations_unable =
      income_.locations_with_income_at_most(out.income_required_usd - epsilon);
  out.fraction_unable = out.locations_unable / income_.total_locations();
  return out;
}

std::vector<PlanAffordability> AffordabilityAnalyzer::evaluate_paper_plans()
    const {
  std::vector<PlanAffordability> out;
  for (const auto& plan : paper_plans()) out.push_back(evaluate(plan));
  return out;
}

std::vector<AffordabilityPoint> AffordabilityAnalyzer::curve(
    const ServicePlan& plan, double x_max, std::size_t points) const {
  if (points < 2 || x_max <= 0.0) {
    throw std::invalid_argument("curve: need >= 2 points and x_max > 0");
  }
  std::vector<AffordabilityPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = x_max * static_cast<double>(i + 1) /
                     static_cast<double>(points);
    out.push_back(AffordabilityPoint{
        x, evaluate(plan, x).locations_unable});
  }
  return out;
}

double AffordabilityAnalyzer::curve_end(const ServicePlan& plan) const {
  return plan.monthly_usd / (income_.min_income() / 12.0);
}

}  // namespace leodivide::afford
