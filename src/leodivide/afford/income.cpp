#include "leodivide/afford/income.hpp"

#include <stdexcept>

namespace leodivide::afford {

namespace {

stats::WeightedCdf build_cdf(const demand::DemandProfile& profile) {
  std::vector<double> incomes;
  std::vector<double> weights;
  for (const auto& county : profile.counties().all()) {
    if (county.underserved_locations == 0) continue;
    incomes.push_back(county.median_income_usd);
    weights.push_back(static_cast<double>(county.underserved_locations));
  }
  if (incomes.empty()) {
    throw std::invalid_argument("IncomeView: no un(der)served locations");
  }
  return stats::WeightedCdf(incomes, weights);
}

}  // namespace

IncomeView::IncomeView(const demand::DemandProfile& profile)
    : cdf_(build_cdf(profile)) {}

double IncomeView::locations_with_income_at_most(double income_usd) const {
  return cdf_.weight_at_most(income_usd);
}

double IncomeView::fraction_with_income_at_most(double income_usd) const {
  return cdf_(income_usd);
}

double IncomeView::income_quantile(double p) const { return cdf_.quantile(p); }

double IncomeView::total_locations() const noexcept {
  return cdf_.total_weight();
}

double IncomeView::min_income() const noexcept { return cdf_.min(); }
double IncomeView::max_income() const noexcept { return cdf_.max(); }

}  // namespace leodivide::afford
