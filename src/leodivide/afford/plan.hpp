#pragma once
// Retail broadband service plans and subsidies (Section 4 of the paper).

#include <string>
#include <vector>

#include "leodivide/demand/location.hpp"

namespace leodivide::afford {

/// A retail fixed-broadband plan.
struct ServicePlan {
  std::string name;
  double monthly_usd = 0.0;
  demand::ServiceLevel speeds;

  /// Meets the federal reliable-broadband definition.
  [[nodiscard]] bool reliable() const noexcept {
    return demand::is_reliable(speeds);
  }

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const ServicePlan&, const ServicePlan&) = default;
};

/// The Lifeline subsidy: $9.25/mo off Internet service for households below
/// 135% of the Federal poverty limit (the paper applies it as the common
/// best case).
inline constexpr double kLifelineSubsidyUsd = 9.25;

/// Monthly price after applying Lifeline (floored at zero).
[[nodiscard]] double with_lifeline(double monthly_usd) noexcept;

/// Plans used in the paper's comparison (Fig 4).
[[nodiscard]] ServicePlan starlink_residential();       ///< $120/mo
[[nodiscard]] ServicePlan starlink_residential_lifeline();  ///< $110.75/mo
[[nodiscard]] ServicePlan xfinity_300();                ///< $40/mo, 300 Mbps
[[nodiscard]] ServicePlan spectrum_premier();           ///< $50/mo, 500 Mbps

/// All four plans in the paper's Figure 4, cheapest first.
[[nodiscard]] std::vector<ServicePlan> paper_plans();

}  // namespace leodivide::afford
