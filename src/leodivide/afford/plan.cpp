#include "leodivide/afford/plan.hpp"

#include <algorithm>

namespace leodivide::afford {

double with_lifeline(double monthly_usd) noexcept {
  return std::max(0.0, monthly_usd - kLifelineSubsidyUsd);
}

ServicePlan starlink_residential() {
  return {"Starlink Residential", 120.0, {150.0, 20.0}};
}

ServicePlan starlink_residential_lifeline() {
  return {"Starlink Residential w/ Lifeline",
          with_lifeline(120.0),
          {150.0, 20.0}};
}

ServicePlan xfinity_300() { return {"Xfinity 300", 40.0, {300.0, 20.0}}; }

ServicePlan spectrum_premier() {
  return {"Spectrum Internet Premier", 50.0, {500.0, 20.0}};
}

std::vector<ServicePlan> paper_plans() {
  return {xfinity_300(), spectrum_premier(), starlink_residential_lifeline(),
          starlink_residential()};
}

}  // namespace leodivide::afford
