#pragma once
// The affordability analysis of Section 4 / Figure 4: under the A4AI /
// UN Broadband Commission "1 for 2" rule, Internet service is affordable if
// it costs no more than 2% of monthly household income.

#include <vector>

#include "leodivide/afford/income.hpp"
#include "leodivide/afford/plan.hpp"

namespace leodivide::afford {

/// The A4AI "1 for 2" affordability threshold: service should cost at most
/// this fraction of monthly household income.
inline constexpr double kAffordabilityThreshold = 0.02;

/// Annual income needed for `monthly_usd` to fall within `threshold` of
/// monthly income: monthly_usd * 12 / threshold.
[[nodiscard]] double income_required_usd(
    double monthly_usd, double threshold = kAffordabilityThreshold);

/// True if a plan at `monthly_usd` is affordable at `annual_income_usd`.
[[nodiscard]] bool is_affordable(double monthly_usd, double annual_income_usd,
                                 double threshold = kAffordabilityThreshold);

/// Affordability of one plan over a demand profile.
struct PlanAffordability {
  ServicePlan plan;
  double income_required_usd = 0.0;  ///< annual income at the 2% rule
  double locations_unable = 0.0;     ///< un(der)served locations priced out
  double fraction_unable = 0.0;

  /// Exact (bit-level) equality; snapshot round-trip tests rely on it.
  friend bool operator==(const PlanAffordability&,
                         const PlanAffordability&) = default;
};

/// One point of a Figure-4 curve: at proportion-of-income x, how many
/// locations cannot afford the plan.
struct AffordabilityPoint {
  double proportion_of_income = 0.0;
  double locations_unable = 0.0;
};

/// Affordability analyzer bound to a demand profile's income view.
class AffordabilityAnalyzer {
 public:
  explicit AffordabilityAnalyzer(const demand::DemandProfile& profile);

  /// Evaluates one plan at the given threshold.
  [[nodiscard]] PlanAffordability evaluate(
      const ServicePlan& plan,
      double threshold = kAffordabilityThreshold) const;

  /// Evaluates the paper's four plans at the 2% threshold.
  [[nodiscard]] std::vector<PlanAffordability> evaluate_paper_plans() const;

  /// The Figure-4 curve for a plan: locations unable to afford it as the
  /// acceptable proportion of income sweeps (0, x_max]. The curve ends at
  /// plan price / (min county income / 12) — beyond that even the poorest
  /// county can afford the plan.
  [[nodiscard]] std::vector<AffordabilityPoint> curve(const ServicePlan& plan,
                                                      double x_max = 0.05,
                                                      std::size_t points =
                                                          100) const;

  /// Largest proportion-of-income any location would need for this plan
  /// (the x at which the plan's curve reaches zero).
  [[nodiscard]] double curve_end(const ServicePlan& plan) const;

  [[nodiscard]] const IncomeView& income() const noexcept { return income_; }

 private:
  IncomeView income_;
};

}  // namespace leodivide::afford
