#pragma once
// Blocking-socket server loop: one acceptor thread plus a fixed worker
// pool (sized via runtime::worker_count_from_env / --workers) pulling
// accepted connections off a queue. Each worker runs a session: recv →
// FrameDecoder → ServiceState::handle → send reply. No event loop, no
// external dependencies — plain POSIX sockets on loopback, the service's
// deployment target (the heavy lifting is in the engine, not the I/O).
//
// stop() is teardown-safe against blocked I/O: it closes the listening
// socket (unblocking accept), half-closes every active session socket via
// shutdown() (unblocking recv), wakes the queue, and joins every thread.

#include <cstdint>
#include <mutex>
#include <condition_variable>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "leodivide/serve/session.hpp"

namespace leodivide::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read the bound port via port())
  std::size_t workers = 2;
  int backlog = 64;
};

class Server {
 public:
  /// Borrows `state`, which must outlive the server.
  Server(ServiceState& state, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + workers. Throws
  /// std::runtime_error on any socket failure.
  void start();

  /// Stops accepting, unblocks and joins every thread, closes every
  /// socket. Idempotent.
  void stop();

  /// The bound port (meaningful after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// start() + block until the state saw a kShutdown request + stop().
  void serve_until_shutdown();

 private:
  void accept_loop();
  void worker_loop();
  void run_session(int fd);

  ServiceState& state_;
  ServerConfig config_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  bool stopping_ = false;
  std::deque<int> pending_;     ///< accepted, not yet picked up
  std::set<int> active_;        ///< sockets inside run_session
  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace leodivide::serve
