#pragma once
// The incremental-recompute engine behind the analysis service. The
// baseline demand profile is partitioned into *regions* — coarse hex cells
// (region_resolution) covering the service cells — and every query is a
// deterministic merge of per-region partial results:
//
//   resize          per-region first-strict-max sizing candidates
//   served fraction per-region served-cell / served-location integer sums
//   peak cell       per-region (count desc, cell-id asc) maxima
//
// Each region carries a content digest (a snapshot::Fingerprint over its
// member cells). A partial is valid only while its recorded digest matches
// the region's current digest, so ApplyDelta just updates the one dirtied
// region's digest and O(dirty) partials recompute at the next query while
// every untouched region is served from its cached partial. With a
// StageCache attached, partials also spill to disk as kServePartial blobs
// keyed by sub-stage fingerprints (substage_fingerprint), so a restarted
// server warm-starts from the cache.
//
// Determinism contract: every answer is byte-identical to the plain
// library call (core::size_full_service / size_with_cap /
// served_*_fraction, afford::AffordabilityAnalyzer) on the mutated
// profile, at every thread count. The merges reproduce the libraries'
// serial scan orders exactly: sizing keeps the earliest strict maximum
// (ties broken toward the smaller global cell index), the peak merge uses
// cells_by_count_desc's (count desc, cell-id asc) comparator, and the
// fraction sums are integer partials, which are partition-invariant.
// --paranoid mode re-runs the full computation on every query and throws
// ParanoiaError on any bit difference.

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "leodivide/afford/affordability.hpp"
#include "leodivide/core/sizing.hpp"
#include "leodivide/demand/delta.hpp"
#include "leodivide/hex/hexgrid.hpp"
#include "leodivide/snapshot/async.hpp"
#include "leodivide/snapshot/cache.hpp"

namespace leodivide::serve {

/// Engine tuning knobs plus the sizing model every query evaluates.
struct EngineConfig {
  int cell_resolution = hex::kServiceCellResolution;
  /// Region granularity. Aperture-4 ladder: resolution 2 puts ~64 service
  /// cells (resolution 5) in one region — small enough that a delta dirties
  /// little, large enough that per-region bookkeeping stays cheap.
  int region_resolution = 2;
  bool paranoid = false;  ///< cross-check every answer against full recompute
  core::SizingModel model;
};

/// A paranoid-mode cross-check failed: an incremental answer differed from
/// the full recompute at the bit level. This is always an engine bug.
class ParanoiaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Counters since engine construction.
struct EngineStats {
  std::uint64_t deltas_applied = 0;
  std::uint64_t dirty_regions = 0;      ///< cumulative regions dirtied
  std::uint64_t region_recomputes = 0;  ///< partials actually recomputed
  std::uint64_t partial_hits = 0;       ///< partials served from memory
  std::uint64_t partial_misses = 0;
  std::uint64_t paranoid_checks = 0;
  std::uint64_t cells = 0;    ///< current profile cell count
  std::uint64_t regions = 0;  ///< current region count
};

/// What one applied delta touched.
struct ApplyOutcome {
  demand::DeltaEffect effect;
  std::size_t region = 0;     ///< dirtied region (when effect.cells_changed)
  bool region_added = false;  ///< the op created a brand-new region
};

/// Resize answer: both deployment options of F1.
struct ResizeAnswer {
  core::SizingResult full;    ///< full service (unbounded oversubscription)
  core::SizingResult capped;  ///< capped at the requested oversubscription

  friend bool operator==(const ResizeAnswer&, const ResizeAnswer&) = default;
};

/// Served-fraction answer with the integer evidence behind the ratios.
struct ServedFractionAnswer {
  double cell_fraction = 0.0;
  double location_fraction = 0.0;
  std::uint64_t served_cells = 0;
  std::uint64_t total_cells = 0;
  std::uint64_t served_locations = 0;
  std::uint64_t total_locations = 0;

  friend bool operator==(const ServedFractionAnswer&,
                         const ServedFractionAnswer&) = default;
};

/// The engine. NOT thread-safe: the serving layer serializes access (one
/// mutation or query at a time) under its own lock. Non-copyable and
/// non-movable — the internal DeltaApplier borrows the owned profile.
class IncrementalEngine {
 public:
  /// Takes ownership of the baseline profile. `cache` (optional, borrowed,
  /// may be nullptr) persists per-region partials across restarts. `io`
  /// (optional, borrowed; only used when `cache` is set) offloads partial
  /// blob stores to the async I/O thread so queries never wait on the
  /// filesystem — stores are visible after AsyncIo::drain() (or its
  /// destructor), and both `cache` and `io` must outlive the engine.
  IncrementalEngine(demand::DemandProfile baseline, EngineConfig config,
                    snapshot::StageCache* cache = nullptr,
                    snapshot::AsyncIo* io = nullptr);

  IncrementalEngine(const IncrementalEngine&) = delete;
  IncrementalEngine& operator=(const IncrementalEngine&) = delete;

  /// Applies one delta (kSetPlanPrice is rejected here — plan prices live
  /// in the serving layer's plan table). Throws std::invalid_argument on
  /// invalid ops; the profile is unchanged when apply throws.
  ApplyOutcome apply(const demand::DeltaOp& op);

  /// Byte-identical to core::size_full_service + core::size_with_cap on
  /// the current profile. Throws std::invalid_argument on an empty profile.
  [[nodiscard]] ResizeAnswer query_resize(double beamspread,
                                          double oversub_cap);

  /// Byte-identical to core::served_cell_fraction +
  /// core::served_location_fraction on the current profile.
  [[nodiscard]] ServedFractionAnswer query_served_fraction(double beamspread,
                                                           double oversub);

  /// Byte-identical to afford::AffordabilityAnalyzer(profile).evaluate on
  /// the current profile (the analyzer is rebuilt only when the county
  /// table actually changed). Throws std::invalid_argument when no county
  /// has un(der)served locations.
  [[nodiscard]] afford::PlanAffordability query_affordability(
      const afford::ServicePlan& plan, double threshold);

  [[nodiscard]] const demand::DemandProfile& profile() const noexcept {
    return applier_.profile();
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t region_count() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] EngineStats stats() const noexcept;

 private:
  struct Region {
    std::vector<std::size_t> members;  ///< cell indices, ascending
    std::uint64_t digest = 0;          ///< content fingerprint of members
  };

  // Per-region partials. `digest` records the region content each was
  // computed against; a partial is live only while it matches.
  struct SizingPartial {
    bool valid = false;
    std::uint64_t digest = 0;
    bool found = false;  ///< region has a demand-driven (>= 2 beam) cell
    core::SizingResult best;
  };
  struct PeakPartial {
    bool valid = false;
    std::uint64_t digest = 0;
    std::uint32_t max_count = 0;
    std::uint64_t best_cell_bits = 0;
    std::size_t cell_index = 0;
  };
  struct ServedPartial {
    bool valid = false;
    std::uint64_t digest = 0;
    std::uint64_t served_cells = 0;
    std::uint64_t served_locations = 0;
  };

  using SizeKey = std::pair<std::uint64_t, std::uint64_t>;  // bit patterns
  using AffordKey = std::tuple<std::string, std::uint64_t, std::uint64_t,
                               std::uint64_t, std::uint64_t>;

  /// Region of a cell id, creating the region if new (returns its index).
  std::size_t region_of(hex::CellId cell);
  void refresh_region_digest(std::size_t region);
  [[nodiscard]] std::uint64_t region_content_digest(
      const Region& region) const;

  const SizingPartial& sizing_partial(std::size_t region, double beamspread,
                                      double oversub_cap,
                                      std::vector<SizingPartial>& partials);
  const PeakPartial& peak_partial(std::size_t region);
  const ServedPartial& served_partial(std::size_t region, std::uint32_t limit,
                                      std::vector<ServedPartial>& partials);

  [[nodiscard]] SizingPartial compute_sizing_partial(
      const Region& region, double beamspread, double oversub_cap) const;
  [[nodiscard]] PeakPartial compute_peak_partial(const Region& region) const;
  [[nodiscard]] ServedPartial compute_served_partial(
      const Region& region, std::uint32_t limit) const;

  /// Index of the global peak cell (cells_by_count_desc().front()).
  [[nodiscard]] std::size_t merged_peak_index();

  void rebuild_analyzer_if_stale();

  void paranoid_check_resize(double beamspread, double oversub_cap,
                             const ResizeAnswer& answer);
  void paranoid_check_served(double beamspread, double oversub,
                             const ServedFractionAnswer& answer);
  void paranoid_check_affordability(const afford::ServicePlan& plan,
                                    double threshold,
                                    const afford::PlanAffordability& answer);

  EngineConfig config_;
  hex::HexGrid grid_;
  demand::DemandProfile profile_;
  demand::DeltaApplier applier_;  // borrows profile_ and grid_
  snapshot::StageCache* cache_;
  snapshot::AsyncIo* io_;

  std::vector<Region> regions_;
  std::vector<std::size_t> cell_region_;  ///< cell index -> region index
  // Region-parent cell bits -> region index. Lookups only; nothing ever
  // iterates it, so the map's order can't leak into results.
  std::unordered_map<std::uint64_t, std::size_t> region_index_;

  std::uint64_t total_locations_ = 0;

  std::map<SizeKey, std::vector<SizingPartial>> sizing_memo_;
  std::vector<PeakPartial> peak_memo_;
  std::map<std::uint32_t, std::vector<ServedPartial>> served_memo_;

  std::optional<afford::AffordabilityAnalyzer> analyzer_;
  std::uint64_t analyzer_digest_ = 0;
  bool county_digest_valid_ = false;
  std::uint64_t county_digest_ = 0;
  std::map<AffordKey, afford::PlanAffordability> afford_memo_;

  EngineStats stats_;
};

}  // namespace leodivide::serve
