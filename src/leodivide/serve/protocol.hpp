#pragma once
// LSRV — the analysis service's length-prefixed binary wire protocol.
// Framing reuses the LDSNAP conventions (magic, endian canary, version,
// chunked FNV-1a checksum, bounds-checked ByteReader) so one hardening
// story covers both the at-rest and on-the-wire formats:
//
//   offset 0 : u32      frame length (header + body, excluding this field)
//   offset 4 : char[4]  magic "LSRV"
//   offset 8 : u16      endian marker 0xFEFF (shared with LDSNAP)
//   offset 10: u16      protocol version (kProtocolVersion)
//   offset 12: u64      chunked FNV-1a checksum of the body
//   offset 20: body     u16 message type, u16 reserved (0), payload bytes
//
// The checksum covers the whole body — type field included — so a bit flip
// anywhere past the header is detected, not dispatched. All integers are
// little-endian; doubles travel as IEEE-754 bit patterns. Every malformed
// input — truncation (handled by buffering), oversized length, bad magic,
// byte-swapped canary, unknown version, checksum mismatch — surfaces as a
// typed ProtocolError, never UB; a FrameDecoder fed random bytes must not
// crash (tests/test_serve_protocol.cpp fuzzes exactly that under ASan).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "leodivide/demand/delta.hpp"
#include "leodivide/snapshot/format.hpp"

namespace leodivide::serve::protocol {

/// Current LSRV protocol version; like LDSNAP, readers reject every
/// version they do not know.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// The frame magic ("LSRV", no terminator).
inline constexpr std::string_view kFrameMagic{"LSRV"};

/// Fixed header bytes after the length prefix: magic + canary + version +
/// checksum.
inline constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8;

/// Minimum legal frame length (header + the body's type/reserved fields).
inline constexpr std::uint32_t kMinFrameLen = kHeaderBytes + 4;

/// Ceiling on one frame. Delta batches and stats replies are small; a
/// length prefix beyond this is corruption (or an attack), not a message.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Typed error for every malformed frame or message payload.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Message types. Requests are low codes, replies have the top bit of the
/// low byte set; kError answers any request the server cannot satisfy.
enum class MsgType : std::uint16_t {
  kHello = 1,
  kApplyDelta = 2,
  kQueryResize = 3,
  kQueryAffordability = 4,
  kQueryServedFraction = 5,
  kStats = 6,
  kShutdown = 7,

  kHelloReply = 129,
  kDeltaApplied = 130,
  kResizeResult = 131,
  kAffordabilityResult = 132,
  kServedFractionResult = 133,
  kStatsReply = 134,
  kShutdownAck = 135,
  kError = 255,
};

/// Human-readable message-type name ("hello", "apply_delta", ...).
[[nodiscard]] std::string_view to_string(MsgType type) noexcept;

/// One decoded frame. `type` carries the raw u16 — unknown values flow
/// through the decoder (their checksum still verified) so the dispatcher
/// can answer kError instead of dropping the connection.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Renders one complete frame (length prefix + header + body).
[[nodiscard]] std::string encode_frame(MsgType type, std::string_view payload);

/// Incremental frame decoder over a byte stream. Feed whatever the socket
/// produced; next() returns one decoded frame when complete bytes for it
/// have arrived, std::nullopt when more input is needed, and throws
/// ProtocolError as soon as a malformation is provable — an oversized or
/// undersized length prefix, bad magic, byte-swapped canary, unknown
/// version (all checked eagerly, before the full frame arrives), or a body
/// checksum mismatch.
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void feed(std::string_view bytes);

  /// Decodes the next complete frame, if buffered.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

  /// Drops all buffered bytes (e.g. after a protocol error reply).
  void reset() noexcept {
    buf_.clear();
    pos_ = 0;
  }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- messages --
// Payload structs with exact encode/decode pairs. Decoders bounds-check
// everything via snapshot::ByteReader and re-throw its SnapshotError as
// ProtocolError; every decoder requires full payload consumption.

struct HelloRequest {
  std::string client;  ///< free-form client identification

  friend bool operator==(const HelloRequest&, const HelloRequest&) = default;
};

struct HelloReply {
  std::uint16_t protocol_version = kProtocolVersion;
  std::string server;          ///< free-form server identification
  std::uint64_t cells = 0;     ///< baseline profile cell count
  std::uint64_t counties = 0;  ///< baseline county count
  std::uint64_t regions = 0;   ///< incremental-engine region count
  bool paranoid = false;       ///< server cross-checks every answer

  friend bool operator==(const HelloReply&, const HelloReply&) = default;
};

struct ApplyDeltaRequest {
  std::vector<demand::DeltaOp> ops;  ///< applied in order

  friend bool operator==(const ApplyDeltaRequest&,
                         const ApplyDeltaRequest&) = default;
};

struct DeltaAppliedReply {
  std::uint64_t ops_applied = 0;
  std::uint64_t dirty_regions = 0;   ///< regions dirtied by this batch
  std::uint64_t cells_touched = 0;   ///< cells mutated or added
  std::uint64_t journal_length = 0;  ///< total ops journaled since startup

  friend bool operator==(const DeltaAppliedReply&,
                         const DeltaAppliedReply&) = default;
};

struct QueryResizeRequest {
  double beamspread = 1.0;
  double oversub_cap = 1.0;

  friend bool operator==(const QueryResizeRequest&,
                         const QueryResizeRequest&) = default;
};

struct ResizeReply {
  // Full-service sizing (P2: serve the peak cell everywhere).
  double full_satellites = 0.0;
  double full_binding_lat_deg = 0.0;
  std::uint32_t full_beams = 0;
  std::uint64_t full_cell_index = 0;
  // Capped sizing at the requested oversubscription cap.
  double capped_satellites = 0.0;
  double capped_binding_lat_deg = 0.0;
  std::uint32_t capped_beams = 0;
  std::uint64_t capped_cell_index = 0;

  friend bool operator==(const ResizeReply&, const ResizeReply&) = default;
};

struct QueryAffordabilityRequest {
  std::string plan_name;
  double threshold = 0.0;  ///< <= 0 means the server's default threshold

  friend bool operator==(const QueryAffordabilityRequest&,
                         const QueryAffordabilityRequest&) = default;
};

struct AffordabilityReply {
  std::string plan_name;
  double monthly_usd = 0.0;
  double income_required_usd = 0.0;
  double locations_unable = 0.0;
  double fraction_unable = 0.0;

  friend bool operator==(const AffordabilityReply&,
                         const AffordabilityReply&) = default;
};

struct QueryServedFractionRequest {
  double beamspread = 1.0;
  double oversub = 1.0;

  friend bool operator==(const QueryServedFractionRequest&,
                         const QueryServedFractionRequest&) = default;
};

struct ServedFractionReply {
  double cell_fraction = 0.0;
  double location_fraction = 0.0;
  std::uint64_t served_cells = 0;
  std::uint64_t total_cells = 0;
  std::uint64_t served_locations = 0;
  std::uint64_t total_locations = 0;

  friend bool operator==(const ServedFractionReply&,
                         const ServedFractionReply&) = default;
};

struct StatsReply {
  /// Name/value pairs in a server-chosen but deterministic order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

struct ErrorReply {
  std::string message;

  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

[[nodiscard]] std::string encode(const HelloRequest& m);
[[nodiscard]] std::string encode(const HelloReply& m);
[[nodiscard]] std::string encode(const ApplyDeltaRequest& m);
[[nodiscard]] std::string encode(const DeltaAppliedReply& m);
[[nodiscard]] std::string encode(const QueryResizeRequest& m);
[[nodiscard]] std::string encode(const ResizeReply& m);
[[nodiscard]] std::string encode(const QueryAffordabilityRequest& m);
[[nodiscard]] std::string encode(const AffordabilityReply& m);
[[nodiscard]] std::string encode(const QueryServedFractionRequest& m);
[[nodiscard]] std::string encode(const ServedFractionReply& m);
[[nodiscard]] std::string encode(const StatsReply& m);
[[nodiscard]] std::string encode(const ErrorReply& m);

[[nodiscard]] HelloRequest decode_hello_request(std::string_view payload);
[[nodiscard]] HelloReply decode_hello_reply(std::string_view payload);
[[nodiscard]] ApplyDeltaRequest decode_apply_delta_request(
    std::string_view payload);
[[nodiscard]] DeltaAppliedReply decode_delta_applied_reply(
    std::string_view payload);
[[nodiscard]] QueryResizeRequest decode_query_resize_request(
    std::string_view payload);
[[nodiscard]] ResizeReply decode_resize_reply(std::string_view payload);
[[nodiscard]] QueryAffordabilityRequest decode_query_affordability_request(
    std::string_view payload);
[[nodiscard]] AffordabilityReply decode_affordability_reply(
    std::string_view payload);
[[nodiscard]] QueryServedFractionRequest decode_query_served_fraction_request(
    std::string_view payload);
[[nodiscard]] ServedFractionReply decode_served_fraction_reply(
    std::string_view payload);
[[nodiscard]] StatsReply decode_stats_reply(std::string_view payload);
[[nodiscard]] ErrorReply decode_error_reply(std::string_view payload);

}  // namespace leodivide::serve::protocol
