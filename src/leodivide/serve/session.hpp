#pragma once
// The service's request dispatcher: one ServiceState owns the incremental
// engine, the retail plan table, the delta journal and the shutdown latch,
// and turns each decoded request frame into a reply frame. handle() runs
// under a single internal mutex — the engine's memos mutate on queries, so
// sessions serialize here and any number of connection threads stay
// data-race-free (the TSan concurrent-session test hammers exactly this).
//
// Error philosophy: a request the server cannot satisfy (unknown plan,
// invalid delta, empty profile) answers with a kError frame naming the
// problem; the connection stays up. Only transport-level malformation
// (ProtocolError in the framing layer) tears a session down.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "leodivide/afford/plan.hpp"
#include "leodivide/demand/delta.hpp"
#include "leodivide/serve/incremental.hpp"
#include "leodivide/serve/protocol.hpp"

namespace leodivide::serve {

/// The retail plans the affordability queries price against. Seeded with
/// the paper's four plans; kSetPlanPrice deltas reprice an existing plan or
/// add a new one (at the federal reliable-broadband speeds).
class PlanTable {
 public:
  PlanTable();

  /// Reprices `name` (creating it at 100/20 Mbps when unknown). Throws
  /// std::invalid_argument on a negative price or empty name.
  void set_price(const std::string& name, double monthly_usd);

  /// Plan by name; throws std::invalid_argument when unknown.
  [[nodiscard]] const afford::ServicePlan& find(const std::string& name) const;

  [[nodiscard]] const std::vector<afford::ServicePlan>& all() const noexcept {
    return plans_;
  }

 private:
  std::vector<afford::ServicePlan> plans_;
};

/// Service configuration beyond the engine's.
struct ServiceConfig {
  EngineConfig engine;
  std::string server_name = "leodivide-serve";
  double default_threshold = afford::kAffordabilityThreshold;
};

/// Shared state behind every session. Thread-safe: handle() and the other
/// accessors lock internally.
class ServiceState {
 public:
  /// Takes ownership of the baseline profile; `cache` (optional, borrowed)
  /// persists the engine's per-region partials across restarts. When a
  /// cache is attached the state also owns an async I/O thread so partial
  /// blob stores run behind request handling; the thread drains when the
  /// state is destroyed, so every store is on disk by then.
  ServiceState(demand::DemandProfile baseline, ServiceConfig config,
               snapshot::StageCache* cache = nullptr);

  /// Dispatches one request frame to a reply frame. Never throws for
  /// request-level problems (those become kError replies).
  [[nodiscard]] protocol::Frame handle(const protocol::Frame& request);

  /// Blocks until a kShutdown request has been handled.
  void wait_for_shutdown();
  [[nodiscard]] bool shutdown_requested() const;

  /// Every op applied since startup (including plan repricings), in order.
  [[nodiscard]] std::vector<demand::DeltaOp> journal_copy() const;
  /// The journal as a kDeltaJournal LDSNAP blob.
  [[nodiscard]] std::string serialized_journal() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] EngineStats engine_stats() const;

 private:
  [[nodiscard]] protocol::Frame dispatch(const protocol::Frame& request);

  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;

  ServiceConfig config_;
  // Declared before engine_: the engine borrows the I/O thread, so it must
  // be destroyed (and drained) after the engine.
  std::unique_ptr<snapshot::AsyncIo> io_;
  IncrementalEngine engine_;
  PlanTable plans_;
  std::vector<demand::DeltaOp> journal_;
  std::uint64_t requests_ = 0;
};

}  // namespace leodivide::serve
