#include "leodivide/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace leodivide::serve {

namespace {

[[nodiscard]] std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

[[nodiscard]] const sockaddr* as_sockaddr(const sockaddr_in& addr) noexcept {
  return static_cast<const sockaddr*>(static_cast<const void*>(&addr));
}

}  // namespace

Client::~Client() { close(); }

void Client::connect(const std::string& host, std::uint16_t port) {
  if (fd_ >= 0) throw std::runtime_error("serve client: already connected");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("serve client: bad host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("serve client: socket() failed: " +
                             errno_message());
  }
  if (::connect(fd, as_sockaddr(addr), sizeof(addr)) != 0) {
    const std::string msg = errno_message();
    ::close(fd);
    throw std::runtime_error("serve client: connect(" + host + ":" +
                             std::to_string(port) + ") failed: " + msg);
  }
  fd_ = fd;
  decoder_.reset();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_.reset();
}

protocol::Frame Client::call(protocol::MsgType type,
                             const std::string& payload) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");

  const std::string wire = encode_frame(type, payload);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("serve client: send failed: " +
                               errno_message());
    }
    off += static_cast<std::size_t>(n);
  }

  char buf[64 * 1024];
  for (;;) {
    if (auto frame = decoder_.next()) return *frame;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("serve client: recv failed: " +
                               errno_message());
    }
    if (n == 0) {
      throw std::runtime_error("serve client: server closed connection");
    }
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

const protocol::Frame& Client::expect(const protocol::Frame& frame,
                                      protocol::MsgType expected) {
  if (frame.type == expected) return frame;
  if (frame.type == protocol::MsgType::kError) {
    throw ServiceError(protocol::decode_error_reply(frame.payload).message);
  }
  throw ServiceError(
      "serve client: expected " + std::string(to_string(expected)) +
      " reply, got " + std::string(to_string(frame.type)));
}

protocol::HelloReply Client::hello(const std::string& client_name) {
  protocol::HelloRequest req;
  req.client = client_name;
  const protocol::Frame reply = call(protocol::MsgType::kHello, encode(req));
  return protocol::decode_hello_reply(
      expect(reply, protocol::MsgType::kHelloReply).payload);
}

protocol::DeltaAppliedReply Client::apply_delta(
    const std::vector<demand::DeltaOp>& ops) {
  protocol::ApplyDeltaRequest req;
  req.ops = ops;
  const protocol::Frame reply =
      call(protocol::MsgType::kApplyDelta, encode(req));
  return protocol::decode_delta_applied_reply(
      expect(reply, protocol::MsgType::kDeltaApplied).payload);
}

protocol::ResizeReply Client::query_resize(double beamspread,
                                           double oversub_cap) {
  protocol::QueryResizeRequest req;
  req.beamspread = beamspread;
  req.oversub_cap = oversub_cap;
  const protocol::Frame reply =
      call(protocol::MsgType::kQueryResize, encode(req));
  return protocol::decode_resize_reply(
      expect(reply, protocol::MsgType::kResizeResult).payload);
}

protocol::AffordabilityReply Client::query_affordability(
    const std::string& plan_name, double threshold) {
  protocol::QueryAffordabilityRequest req;
  req.plan_name = plan_name;
  req.threshold = threshold;
  const protocol::Frame reply =
      call(protocol::MsgType::kQueryAffordability, encode(req));
  return protocol::decode_affordability_reply(
      expect(reply, protocol::MsgType::kAffordabilityResult).payload);
}

protocol::ServedFractionReply Client::query_served_fraction(double beamspread,
                                                            double oversub) {
  protocol::QueryServedFractionRequest req;
  req.beamspread = beamspread;
  req.oversub = oversub;
  const protocol::Frame reply =
      call(protocol::MsgType::kQueryServedFraction, encode(req));
  return protocol::decode_served_fraction_reply(
      expect(reply, protocol::MsgType::kServedFractionResult).payload);
}

protocol::StatsReply Client::stats() {
  const protocol::Frame reply = call(protocol::MsgType::kStats, std::string());
  return protocol::decode_stats_reply(
      expect(reply, protocol::MsgType::kStatsReply).payload);
}

void Client::shutdown_server() {
  const protocol::Frame reply =
      call(protocol::MsgType::kShutdown, std::string());
  (void)expect(reply, protocol::MsgType::kShutdownAck);
}

}  // namespace leodivide::serve
