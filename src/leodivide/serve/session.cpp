#include "leodivide/serve/session.hpp"

#include <exception>
#include <set>
#include <utility>

#include "leodivide/obs/metrics.hpp"
#include "leodivide/snapshot/artifacts.hpp"

namespace leodivide::serve {

PlanTable::PlanTable() : plans_(afford::paper_plans()) {}

void PlanTable::set_price(const std::string& name, double monthly_usd) {
  if (name.empty()) {
    throw std::invalid_argument("plan table: empty plan name");
  }
  if (monthly_usd < 0.0) {
    throw std::invalid_argument("plan table: negative price for plan '" +
                                name + "'");
  }
  for (afford::ServicePlan& plan : plans_) {
    if (plan.name == name) {
      plan.monthly_usd = monthly_usd;
      return;
    }
  }
  plans_.push_back(afford::ServicePlan{
      name, monthly_usd,
      {demand::kReliableDownMbps, demand::kReliableUpMbps}});
}

const afford::ServicePlan& PlanTable::find(const std::string& name) const {
  for (const afford::ServicePlan& plan : plans_) {
    if (plan.name == name) return plan;
  }
  throw std::invalid_argument("plan table: unknown plan '" + name + "'");
}

ServiceState::ServiceState(demand::DemandProfile baseline,
                           ServiceConfig config, snapshot::StageCache* cache)
    : config_(std::move(config)),
      io_(cache != nullptr ? std::make_unique<snapshot::AsyncIo>() : nullptr),
      engine_(std::move(baseline), config_.engine, cache, io_.get()) {}

protocol::Frame ServiceState::handle(const protocol::Frame& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  obs::registry().counter("serve.requests").add();
  obs::ScopedLatency latency(obs::registry().histogram(
      "serve.latency." + std::string(to_string(request.type))));
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    // Request-level failure: the session survives, the client hears why.
    return protocol::Frame{protocol::MsgType::kError,
                           encode(protocol::ErrorReply{e.what()})};
  }
}

protocol::Frame ServiceState::dispatch(const protocol::Frame& request) {
  using protocol::Frame;
  using protocol::MsgType;
  switch (request.type) {
    case MsgType::kHello: {
      (void)protocol::decode_hello_request(request.payload);
      protocol::HelloReply reply;
      reply.server = config_.server_name;
      reply.cells = engine_.profile().cell_count();
      reply.counties = engine_.profile().counties().size();
      reply.regions = engine_.region_count();
      reply.paranoid = config_.engine.paranoid;
      return Frame{MsgType::kHelloReply, encode(reply)};
    }
    case MsgType::kApplyDelta: {
      const protocol::ApplyDeltaRequest req =
          protocol::decode_apply_delta_request(request.payload);
      protocol::DeltaAppliedReply reply;
      std::set<std::size_t> dirty;
      for (std::size_t i = 0; i < req.ops.size(); ++i) {
        const demand::DeltaOp& op = req.ops[i];
        try {
          if (op.kind == demand::DeltaKind::kSetPlanPrice) {
            plans_.set_price(op.plan_name, op.value);
          } else {
            const ApplyOutcome outcome = engine_.apply(op);
            if (outcome.effect.cells_changed) {
              dirty.insert(outcome.region);
              ++reply.cells_touched;
            }
          }
        } catch (const std::exception& e) {
          // Prior ops stay applied (and journaled); the client hears
          // exactly how far the batch got.
          throw std::invalid_argument(
              "apply_delta op " + std::to_string(i) + " (" +
              std::string(to_string(op.kind)) + "): " + e.what() + "; " +
              std::to_string(reply.ops_applied) + " op(s) applied");
        }
        journal_.push_back(op);
        ++reply.ops_applied;
      }
      reply.dirty_regions = dirty.size();
      reply.journal_length = journal_.size();
      return Frame{MsgType::kDeltaApplied, encode(reply)};
    }
    case MsgType::kQueryResize: {
      const protocol::QueryResizeRequest req =
          protocol::decode_query_resize_request(request.payload);
      const ResizeAnswer answer =
          engine_.query_resize(req.beamspread, req.oversub_cap);
      protocol::ResizeReply reply;
      reply.full_satellites = answer.full.satellites;
      reply.full_binding_lat_deg = answer.full.binding_lat_deg;
      reply.full_beams = answer.full.beams_on_binding;
      reply.full_cell_index = answer.full.binding_cell_index;
      reply.capped_satellites = answer.capped.satellites;
      reply.capped_binding_lat_deg = answer.capped.binding_lat_deg;
      reply.capped_beams = answer.capped.beams_on_binding;
      reply.capped_cell_index = answer.capped.binding_cell_index;
      return Frame{MsgType::kResizeResult, encode(reply)};
    }
    case MsgType::kQueryAffordability: {
      const protocol::QueryAffordabilityRequest req =
          protocol::decode_query_affordability_request(request.payload);
      const double threshold =
          req.threshold > 0.0 ? req.threshold : config_.default_threshold;
      const afford::ServicePlan& plan = plans_.find(req.plan_name);
      const afford::PlanAffordability answer =
          engine_.query_affordability(plan, threshold);
      protocol::AffordabilityReply reply;
      reply.plan_name = answer.plan.name;
      reply.monthly_usd = answer.plan.monthly_usd;
      reply.income_required_usd = answer.income_required_usd;
      reply.locations_unable = answer.locations_unable;
      reply.fraction_unable = answer.fraction_unable;
      return Frame{MsgType::kAffordabilityResult, encode(reply)};
    }
    case MsgType::kQueryServedFraction: {
      const protocol::QueryServedFractionRequest req =
          protocol::decode_query_served_fraction_request(request.payload);
      const ServedFractionAnswer answer =
          engine_.query_served_fraction(req.beamspread, req.oversub);
      protocol::ServedFractionReply reply;
      reply.cell_fraction = answer.cell_fraction;
      reply.location_fraction = answer.location_fraction;
      reply.served_cells = answer.served_cells;
      reply.total_cells = answer.total_cells;
      reply.served_locations = answer.served_locations;
      reply.total_locations = answer.total_locations;
      return Frame{MsgType::kServedFractionResult, encode(reply)};
    }
    case MsgType::kStats: {
      const EngineStats s = engine_.stats();
      protocol::StatsReply reply;
      reply.counters = {
          {"serve.cells", s.cells},
          {"serve.regions", s.regions},
          {"serve.deltas_applied", s.deltas_applied},
          {"serve.dirty_regions", s.dirty_regions},
          {"serve.region_recomputes", s.region_recomputes},
          {"serve.partial_hits", s.partial_hits},
          {"serve.partial_misses", s.partial_misses},
          {"serve.paranoid_checks", s.paranoid_checks},
          {"serve.requests", requests_},
          {"serve.journal_length", journal_.size()},
      };
      return Frame{MsgType::kStatsReply, encode(reply)};
    }
    case MsgType::kShutdown: {
      shutdown_ = true;
      shutdown_cv_.notify_all();
      return Frame{MsgType::kShutdownAck, std::string()};
    }
    default:
      return Frame{
          protocol::MsgType::kError,
          encode(protocol::ErrorReply{
              "unsupported message type " +
              std::to_string(static_cast<std::uint16_t>(request.type))})};
  }
}

void ServiceState::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_; });
}

bool ServiceState::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

std::vector<demand::DeltaOp> ServiceState::journal_copy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return journal_;
}

std::string ServiceState::serialized_journal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot::serialize(journal_);
}

EngineStats ServiceState::engine_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.stats();
}

}  // namespace leodivide::serve
