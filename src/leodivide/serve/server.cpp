#include "leodivide/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace leodivide::serve {

namespace {

[[nodiscard]] std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

// The sockets API wants sockaddr*; the lint bans reinterpret_cast, so go
// through void* — well-defined here because sockaddr_in and sockaddr are
// layout-compatible for this use by POSIX contract.
[[nodiscard]] const sockaddr* as_sockaddr(const sockaddr_in& addr) noexcept {
  return static_cast<const sockaddr*>(static_cast<const void*>(&addr));
}
[[nodiscard]] sockaddr* as_sockaddr(sockaddr_in& addr) noexcept {
  return static_cast<sockaddr*>(static_cast<void*>(&addr));
}

/// Sends the whole buffer, retrying on EINTR. Returns false on any other
/// send failure (peer gone — the session just ends).
[[nodiscard]] bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServiceState& state, ServerConfig config)
    : state_(state), config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::runtime_error("serve: server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " + errno_message());
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bad host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, as_sockaddr(addr), sizeof(addr)) != 0) {
    const std::string msg = errno_message();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bind(" + config_.host + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + msg);
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    const std::string msg = errno_message();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed: " + msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, as_sockaddr(bound), &len) != 0) {
    const std::string msg = errno_message();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: getsockname() failed: " + msg);
  }
  port_ = ntohs(bound.sin_port);

  started_ = true;
  stopping_ = false;
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Unblock every worker stuck in recv(): half-close their sockets. The
    // fds stay open (run_session owns the close), so no fd reuse race.
    for (int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  // Unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();

  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();

  ::close(listen_fd_);
  listen_fd_ = -1;
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  started_ = false;
}

void Server::serve_until_shutdown() {
  start();
  state_.wait_for_shutdown();
  stop();
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket was shut down (stop()) or broke
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      fd = pending_.front();
      pending_.pop_front();
      active_.insert(fd);
    }
    run_session(fd);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

void Server::run_session(int fd) {
  protocol::FrameDecoder decoder;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // peer closed (or stop() half-closed us)
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    try {
      while (auto frame = decoder.next()) {
        const protocol::Frame reply = state_.handle(*frame);
        const std::string wire = encode_frame(reply.type, reply.payload);
        if (!send_all(fd, wire)) return;
      }
    } catch (const protocol::ProtocolError& e) {
      // The byte stream is broken; tell the client why (best effort) and
      // drop the session — there is no resynchronizing a framing error.
      const std::string wire = encode_frame(
          protocol::MsgType::kError,
          encode(protocol::ErrorReply{e.what()}));
      (void)send_all(fd, wire);
      return;
    }
  }
}

}  // namespace leodivide::serve
