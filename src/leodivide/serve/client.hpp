#pragma once
// Blocking client for the LSRV analysis service: connect, send a request
// frame, block until the reply frame arrives. One outstanding request at a
// time (the protocol is strictly request/reply per connection), so the
// client needs no threads and no internal queueing.
//
// Typed helpers wrap the raw call(): they encode the request, decode the
// reply, and turn a kError reply into a thrown ServiceError so callers
// handle failures as exceptions rather than by inspecting frame types.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "leodivide/demand/delta.hpp"
#include "leodivide/serve/protocol.hpp"

namespace leodivide::serve {

/// The server answered with a kError frame (request-level failure), or the
/// reply type did not match the request.
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. Throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one frame and blocks for the next reply frame. Throws
  /// std::runtime_error when the connection drops and ProtocolError when
  /// the reply stream is malformed. Does NOT interpret kError replies —
  /// the typed helpers below do.
  [[nodiscard]] protocol::Frame call(protocol::MsgType type,
                                     const std::string& payload);

  // Typed helpers. Each throws ServiceError when the server answers with
  // kError or an unexpected reply type.
  [[nodiscard]] protocol::HelloReply hello(const std::string& client_name);
  [[nodiscard]] protocol::DeltaAppliedReply apply_delta(
      const std::vector<demand::DeltaOp>& ops);
  [[nodiscard]] protocol::ResizeReply query_resize(double beamspread,
                                                   double oversub_cap);
  [[nodiscard]] protocol::AffordabilityReply query_affordability(
      const std::string& plan_name, double threshold = 0.0);
  [[nodiscard]] protocol::ServedFractionReply query_served_fraction(
      double beamspread, double oversub);
  [[nodiscard]] protocol::StatsReply stats();
  /// Asks the server to shut down; returns once the ack arrives.
  void shutdown_server();

 private:
  /// Validates that `frame` is `expected`, throwing ServiceError on kError
  /// (with the server's message) or on any other type mismatch.
  [[nodiscard]] static const protocol::Frame& expect(
      const protocol::Frame& frame, protocol::MsgType expected);

  int fd_ = -1;
  protocol::FrameDecoder decoder_;
};

}  // namespace leodivide::serve
