#include "leodivide/serve/protocol.hpp"

#include <utility>

#include "leodivide/runtime/executor.hpp"
#include "leodivide/snapshot/artifacts.hpp"

namespace leodivide::serve::protocol {

namespace {

using snapshot::ByteReader;
using snapshot::ByteWriter;

// Body checksums run on the serial executor: frames are small (one chunk),
// and sessions checksum concurrently — the global pool must not be a
// hidden serialization point (or a reentrancy hazard) here. The digest is
// identical either way; chunk boundaries are fixed.
[[nodiscard]] std::uint64_t body_checksum(std::string_view body) {
  return snapshot::chunked_checksum(body, runtime::serial_executor());
}

[[noreturn]] void fail(const std::string& what) {
  throw ProtocolError("LSRV: " + what);
}

// Runs a payload decoder, converting ByteReader's SnapshotError (bounds,
// string limits) into the protocol's typed error.
template <typename Fn>
auto decode_payload(std::string_view what, Fn&& fn) {
  try {
    return fn();
  } catch (const snapshot::SnapshotError& e) {
    throw ProtocolError("LSRV: bad " + std::string(what) + " payload: " +
                        e.what());
  }
}

// Smallest possible wire size of one DeltaOp (kind + position + count +
// county + empty plan name + value); bounds batch counts before reserve.
constexpr std::uint64_t kMinOpBytes = 1 + 8 + 8 + 4 + 4 + 4 + 8;

}  // namespace

std::string_view to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kApplyDelta: return "apply_delta";
    case MsgType::kQueryResize: return "query_resize";
    case MsgType::kQueryAffordability: return "query_affordability";
    case MsgType::kQueryServedFraction: return "query_served_fraction";
    case MsgType::kStats: return "stats";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHelloReply: return "hello_reply";
    case MsgType::kDeltaApplied: return "delta_applied";
    case MsgType::kResizeResult: return "resize_result";
    case MsgType::kAffordabilityResult: return "affordability_result";
    case MsgType::kServedFractionResult: return "served_fraction_result";
    case MsgType::kStatsReply: return "stats_reply";
    case MsgType::kShutdownAck: return "shutdown_ack";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

std::string encode_frame(MsgType type, std::string_view payload) {
  ByteWriter body;
  body.u16(static_cast<std::uint16_t>(type));
  body.u16(0);  // reserved
  body.bytes(payload);
  const std::string body_bytes = std::move(body).take();

  const std::uint64_t frame_len = kHeaderBytes + body_bytes.size();
  if (frame_len > kMaxFrameBytes) {
    fail("frame of " + std::to_string(frame_len) + " byte(s) exceeds the " +
         std::to_string(kMaxFrameBytes) + "-byte limit");
  }

  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(frame_len));
  w.bytes(kFrameMagic);
  w.u16(snapshot::kEndianMarker);
  w.u16(kProtocolVersion);
  w.u64(body_checksum(body_bytes));
  w.bytes(body_bytes);
  return std::move(w).take();
}

void FrameDecoder::feed(std::string_view bytes) {
  // Compact consumed bytes before growing; a long-lived session must not
  // accumulate every frame it ever decoded.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

std::optional<Frame> FrameDecoder::next() {
  const std::string_view avail = std::string_view(buf_).substr(pos_);
  if (avail.size() < 4) return std::nullopt;

  ByteReader len_reader(avail);
  const std::uint32_t frame_len = len_reader.u32();
  // An impossible length prefix is provable malformation right now; do not
  // wait for (or worse, allocate) the claimed bytes.
  if (frame_len < kMinFrameLen) {
    fail("frame length " + std::to_string(frame_len) + " below the " +
         std::to_string(kMinFrameLen) + "-byte minimum");
  }
  if (frame_len > kMaxFrameBytes) {
    fail("frame length " + std::to_string(frame_len) + " exceeds the " +
         std::to_string(kMaxFrameBytes) + "-byte limit");
  }

  // Validate the header eagerly, as soon as its bytes are in: a client
  // that is not speaking LSRV should be rejected on its first bytes.
  if (avail.size() >= 4 + kFrameMagic.size()) {
    const std::string_view magic = avail.substr(4, kFrameMagic.size());
    if (magic != kFrameMagic) fail("bad magic (not an LSRV frame)");
  }
  if (avail.size() >= 4 + kFrameMagic.size() + 2) {
    ByteReader hdr(avail.substr(4 + kFrameMagic.size()));
    const std::uint16_t endian = hdr.u16();
    if (endian != snapshot::kEndianMarker) {
      if (endian == 0xFFFE) {
        fail("byte-swapped endian marker (frame written on a big-endian "
             "host)");
      }
      fail("bad endian marker");
    }
    if (avail.size() >= 4 + kFrameMagic.size() + 4) {
      const std::uint16_t version = hdr.u16();
      if (version != kProtocolVersion) {
        fail("unsupported protocol version " + std::to_string(version) +
             " (decoder understands " + std::to_string(kProtocolVersion) +
             ")");
      }
    }
  }

  if (avail.size() < 4u + frame_len) return std::nullopt;

  ByteReader r(avail.substr(4, frame_len));
  (void)r.bytes(kFrameMagic.size());  // validated above
  (void)r.u16();
  (void)r.u16();
  const std::uint64_t stored = r.u64();
  const std::string_view body = r.bytes(frame_len - kHeaderBytes);
  if (const std::uint64_t got = body_checksum(body); got != stored) {
    fail("body checksum mismatch (stored " + std::to_string(stored) +
         ", computed " + std::to_string(got) + ")");
  }

  ByteReader b(body);
  Frame frame;
  frame.type = static_cast<MsgType>(b.u16());
  if (const std::uint16_t reserved = b.u16(); reserved != 0) {
    fail("nonzero reserved field " + std::to_string(reserved));
  }
  frame.payload = std::string(b.bytes(b.remaining()));
  pos_ += 4u + frame_len;
  return frame;
}

// ------------------------------------------------------------- messages --

std::string encode(const HelloRequest& m) {
  ByteWriter w;
  w.str(m.client);
  return std::move(w).take();
}

HelloRequest decode_hello_request(std::string_view payload) {
  return decode_payload("hello", [&] {
    ByteReader r(payload);
    HelloRequest m;
    m.client = r.str();
    r.expect_exhausted("hello payload");
    return m;
  });
}

std::string encode(const HelloReply& m) {
  ByteWriter w;
  w.u16(m.protocol_version);
  w.str(m.server);
  w.u64(m.cells);
  w.u64(m.counties);
  w.u64(m.regions);
  w.u8(m.paranoid ? 1 : 0);
  return std::move(w).take();
}

HelloReply decode_hello_reply(std::string_view payload) {
  return decode_payload("hello_reply", [&] {
    ByteReader r(payload);
    HelloReply m;
    m.protocol_version = r.u16();
    m.server = r.str();
    m.cells = r.u64();
    m.counties = r.u64();
    m.regions = r.u64();
    m.paranoid = r.u8() != 0;
    r.expect_exhausted("hello_reply payload");
    return m;
  });
}

std::string encode(const ApplyDeltaRequest& m) {
  ByteWriter w;
  w.u64(m.ops.size());
  for (const demand::DeltaOp& op : m.ops) snapshot::write_delta_op(w, op);
  return std::move(w).take();
}

ApplyDeltaRequest decode_apply_delta_request(std::string_view payload) {
  return decode_payload("apply_delta", [&] {
    ByteReader r(payload);
    ApplyDeltaRequest m;
    const std::uint64_t n = r.u64();
    if (n > r.remaining() / kMinOpBytes) {
      fail("apply_delta claims " + std::to_string(n) + " op(s) in " +
           std::to_string(r.remaining()) + " byte(s)");
    }
    m.ops.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      m.ops.push_back(snapshot::read_delta_op(r));
    }
    r.expect_exhausted("apply_delta payload");
    return m;
  });
}

std::string encode(const DeltaAppliedReply& m) {
  ByteWriter w;
  w.u64(m.ops_applied);
  w.u64(m.dirty_regions);
  w.u64(m.cells_touched);
  w.u64(m.journal_length);
  return std::move(w).take();
}

DeltaAppliedReply decode_delta_applied_reply(std::string_view payload) {
  return decode_payload("delta_applied", [&] {
    ByteReader r(payload);
    DeltaAppliedReply m;
    m.ops_applied = r.u64();
    m.dirty_regions = r.u64();
    m.cells_touched = r.u64();
    m.journal_length = r.u64();
    r.expect_exhausted("delta_applied payload");
    return m;
  });
}

std::string encode(const QueryResizeRequest& m) {
  ByteWriter w;
  w.f64(m.beamspread);
  w.f64(m.oversub_cap);
  return std::move(w).take();
}

QueryResizeRequest decode_query_resize_request(std::string_view payload) {
  return decode_payload("query_resize", [&] {
    ByteReader r(payload);
    QueryResizeRequest m;
    m.beamspread = r.f64();
    m.oversub_cap = r.f64();
    r.expect_exhausted("query_resize payload");
    return m;
  });
}

std::string encode(const ResizeReply& m) {
  ByteWriter w;
  w.f64(m.full_satellites);
  w.f64(m.full_binding_lat_deg);
  w.u32(m.full_beams);
  w.u64(m.full_cell_index);
  w.f64(m.capped_satellites);
  w.f64(m.capped_binding_lat_deg);
  w.u32(m.capped_beams);
  w.u64(m.capped_cell_index);
  return std::move(w).take();
}

ResizeReply decode_resize_reply(std::string_view payload) {
  return decode_payload("resize_result", [&] {
    ByteReader r(payload);
    ResizeReply m;
    m.full_satellites = r.f64();
    m.full_binding_lat_deg = r.f64();
    m.full_beams = r.u32();
    m.full_cell_index = r.u64();
    m.capped_satellites = r.f64();
    m.capped_binding_lat_deg = r.f64();
    m.capped_beams = r.u32();
    m.capped_cell_index = r.u64();
    r.expect_exhausted("resize_result payload");
    return m;
  });
}

std::string encode(const QueryAffordabilityRequest& m) {
  ByteWriter w;
  w.str(m.plan_name);
  w.f64(m.threshold);
  return std::move(w).take();
}

QueryAffordabilityRequest decode_query_affordability_request(
    std::string_view payload) {
  return decode_payload("query_affordability", [&] {
    ByteReader r(payload);
    QueryAffordabilityRequest m;
    m.plan_name = r.str();
    m.threshold = r.f64();
    r.expect_exhausted("query_affordability payload");
    return m;
  });
}

std::string encode(const AffordabilityReply& m) {
  ByteWriter w;
  w.str(m.plan_name);
  w.f64(m.monthly_usd);
  w.f64(m.income_required_usd);
  w.f64(m.locations_unable);
  w.f64(m.fraction_unable);
  return std::move(w).take();
}

AffordabilityReply decode_affordability_reply(std::string_view payload) {
  return decode_payload("affordability_result", [&] {
    ByteReader r(payload);
    AffordabilityReply m;
    m.plan_name = r.str();
    m.monthly_usd = r.f64();
    m.income_required_usd = r.f64();
    m.locations_unable = r.f64();
    m.fraction_unable = r.f64();
    r.expect_exhausted("affordability_result payload");
    return m;
  });
}

std::string encode(const QueryServedFractionRequest& m) {
  ByteWriter w;
  w.f64(m.beamspread);
  w.f64(m.oversub);
  return std::move(w).take();
}

QueryServedFractionRequest decode_query_served_fraction_request(
    std::string_view payload) {
  return decode_payload("query_served_fraction", [&] {
    ByteReader r(payload);
    QueryServedFractionRequest m;
    m.beamspread = r.f64();
    m.oversub = r.f64();
    r.expect_exhausted("query_served_fraction payload");
    return m;
  });
}

std::string encode(const ServedFractionReply& m) {
  ByteWriter w;
  w.f64(m.cell_fraction);
  w.f64(m.location_fraction);
  w.u64(m.served_cells);
  w.u64(m.total_cells);
  w.u64(m.served_locations);
  w.u64(m.total_locations);
  return std::move(w).take();
}

ServedFractionReply decode_served_fraction_reply(std::string_view payload) {
  return decode_payload("served_fraction_result", [&] {
    ByteReader r(payload);
    ServedFractionReply m;
    m.cell_fraction = r.f64();
    m.location_fraction = r.f64();
    m.served_cells = r.u64();
    m.total_cells = r.u64();
    m.served_locations = r.u64();
    m.total_locations = r.u64();
    r.expect_exhausted("served_fraction_result payload");
    return m;
  });
}

std::string encode(const StatsReply& m) {
  ByteWriter w;
  w.u64(m.counters.size());
  for (const auto& [name, value] : m.counters) {
    w.str(name);
    w.u64(value);
  }
  return std::move(w).take();
}

StatsReply decode_stats_reply(std::string_view payload) {
  return decode_payload("stats_reply", [&] {
    ByteReader r(payload);
    StatsReply m;
    const std::uint64_t n = r.u64();
    // Each counter costs at least a name length prefix plus the value.
    if (n > r.remaining() / 12) {
      fail("stats_reply claims " + std::to_string(n) + " counter(s) in " +
           std::to_string(r.remaining()) + " byte(s)");
    }
    m.counters.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name = r.str();
      const std::uint64_t value = r.u64();
      m.counters.emplace_back(std::move(name), value);
    }
    r.expect_exhausted("stats_reply payload");
    return m;
  });
}

std::string encode(const ErrorReply& m) {
  ByteWriter w;
  w.str(m.message);
  return std::move(w).take();
}

ErrorReply decode_error_reply(std::string_view payload) {
  return decode_payload("error", [&] {
    ByteReader r(payload);
    ErrorReply m;
    m.message = r.str();
    r.expect_exhausted("error payload");
    return m;
  });
}

}  // namespace leodivide::serve::protocol
