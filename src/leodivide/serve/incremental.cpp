#include "leodivide/serve/incremental.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "leodivide/core/beamspread.hpp"
#include "leodivide/core/served_fraction.hpp"
#include "leodivide/obs/metrics.hpp"
#include "leodivide/runtime/executor.hpp"
#include "leodivide/snapshot/format.hpp"

namespace leodivide::serve {

namespace {

[[nodiscard]] std::uint64_t bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

// kServePartial blob codecs for the disk spill. The in-memory bookkeeping
// fields (valid, digest) are deliberately not stored: the blob's identity
// IS the sub-stage fingerprint, which already binds the region content.

std::string serialize_sizing_blob(const core::SizingResult& best, bool found) {
  snapshot::ByteWriter w;
  w.u8(found ? 1 : 0);
  w.f64(best.satellites);
  w.f64(best.binding_lat_deg);
  w.u32(best.beams_on_binding);
  w.u64(best.binding_cell_index);
  snapshot::SnapshotWriter sw(snapshot::ArtifactKind::kServePartial);
  sw.add_section("sizing", std::move(w).take());
  return std::move(sw).finish();
}

std::pair<core::SizingResult, bool> deserialize_sizing_blob(
    std::string_view file) {
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::parse(file);
  if (reader.kind() != snapshot::ArtifactKind::kServePartial) {
    throw snapshot::SnapshotError("LDSNAP: expected a serve_partial snapshot");
  }
  snapshot::ByteReader r(reader.section("sizing"));
  const bool found = r.u8() != 0;
  core::SizingResult best;
  best.satellites = r.f64();
  best.binding_lat_deg = r.f64();
  best.beams_on_binding = r.u32();
  best.binding_cell_index = static_cast<std::size_t>(r.u64());
  r.expect_exhausted("serve_partial sizing section");
  return {best, found};
}

std::string serialize_peak_blob(std::uint32_t max_count,
                                std::uint64_t best_cell_bits,
                                std::size_t cell_index) {
  snapshot::ByteWriter w;
  w.u32(max_count);
  w.u64(best_cell_bits);
  w.u64(cell_index);
  snapshot::SnapshotWriter sw(snapshot::ArtifactKind::kServePartial);
  sw.add_section("peak", std::move(w).take());
  return std::move(sw).finish();
}

std::tuple<std::uint32_t, std::uint64_t, std::size_t> deserialize_peak_blob(
    std::string_view file) {
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::parse(file);
  if (reader.kind() != snapshot::ArtifactKind::kServePartial) {
    throw snapshot::SnapshotError("LDSNAP: expected a serve_partial snapshot");
  }
  snapshot::ByteReader r(reader.section("peak"));
  const std::uint32_t max_count = r.u32();
  const std::uint64_t best_cell_bits = r.u64();
  const std::size_t cell_index = static_cast<std::size_t>(r.u64());
  r.expect_exhausted("serve_partial peak section");
  return {max_count, best_cell_bits, cell_index};
}

std::string serialize_served_blob(std::uint64_t served_cells,
                                  std::uint64_t served_locations) {
  snapshot::ByteWriter w;
  w.u64(served_cells);
  w.u64(served_locations);
  snapshot::SnapshotWriter sw(snapshot::ArtifactKind::kServePartial);
  sw.add_section("served", std::move(w).take());
  return std::move(sw).finish();
}

std::pair<std::uint64_t, std::uint64_t> deserialize_served_blob(
    std::string_view file) {
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::parse(file);
  if (reader.kind() != snapshot::ArtifactKind::kServePartial) {
    throw snapshot::SnapshotError("LDSNAP: expected a serve_partial snapshot");
  }
  snapshot::ByteReader r(reader.section("served"));
  const std::uint64_t served_cells = r.u64();
  const std::uint64_t served_locations = r.u64();
  r.expect_exhausted("serve_partial served section");
  return {served_cells, served_locations};
}

void count_metric(const char* name, std::uint64_t n = 1) {
  if (!obs::metrics_enabled()) return;
  obs::registry().counter(name).add(n);
}

}  // namespace

IncrementalEngine::IncrementalEngine(demand::DemandProfile baseline,
                                     EngineConfig config,
                                     snapshot::StageCache* cache,
                                     snapshot::AsyncIo* io)
    : config_(config),
      grid_(),
      profile_(std::move(baseline)),
      applier_(profile_, grid_, config_.cell_resolution),
      cache_(cache),
      io_(io) {
  const auto& cells = profile_.cells();
  cell_region_.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t region = region_of(cells[i].cell);
    regions_[region].members.push_back(i);
    cell_region_.push_back(region);
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    regions_[r].digest = region_content_digest(regions_[r]);
  }
  total_locations_ = profile_.total_locations();
}

std::size_t IncrementalEngine::region_of(hex::CellId cell) {
  const hex::CellId parent = grid_.parent_of(cell, config_.region_resolution);
  const auto [it, inserted] =
      region_index_.emplace(parent.bits(), regions_.size());
  if (inserted) regions_.emplace_back();
  return it->second;
}

std::uint64_t IncrementalEngine::region_content_digest(
    const Region& region) const {
  snapshot::Fingerprint fp =
      snapshot::substage_fingerprint("serve.region", "content");
  const auto& cells = profile_.cells();
  for (std::size_t i : region.members) {
    const demand::CellDemand& c = cells[i];
    fp.mix_u64(i)
        .mix_u64(c.cell.bits())
        .mix_f64(c.center.lat_deg)
        .mix_f64(c.center.lon_deg)
        .mix_u64(c.underserved)
        .mix_u64(c.county_index);
  }
  return fp.digest();
}

void IncrementalEngine::refresh_region_digest(std::size_t region) {
  regions_[region].digest = region_content_digest(regions_[region]);
}

ApplyOutcome IncrementalEngine::apply(const demand::DeltaOp& op) {
  ApplyOutcome out;
  out.effect = applier_.apply(op);
  ++stats_.deltas_applied;
  count_metric("serve.deltas");
  if (out.effect.cells_changed) {
    if (out.effect.cell_added) {
      const std::size_t before = regions_.size();
      const std::size_t region =
          region_of(profile_.cells()[out.effect.cell_index].cell);
      out.region_added = regions_.size() != before;
      regions_[region].members.push_back(out.effect.cell_index);
      cell_region_.push_back(region);
      out.region = region;
    } else {
      out.region = cell_region_[out.effect.cell_index];
    }
    refresh_region_digest(out.region);
    ++stats_.dirty_regions;
    count_metric("serve.dirty_regions");
    if (op.kind == demand::DeltaKind::kAddLocations) {
      total_locations_ += op.count;
    } else {
      total_locations_ -= op.count;
    }
  }
  if (out.effect.counties_changed) county_digest_valid_ = false;
  return out;
}

// ---------------------------------------------------------------- resize --

IncrementalEngine::SizingPartial IncrementalEngine::compute_sizing_partial(
    const Region& region, double beamspread, double oversub_cap) const {
  // Mirrors one shard of core::size_with_cap: members ascend in global
  // index, and only a strictly larger requirement displaces the incumbent,
  // so the kept candidate is the region's earliest strict maximum.
  SizingPartial p;
  const std::uint32_t cap_locs =
      config_.model.capacity.max_locations_at(oversub_cap);
  const auto& cells = profile_.cells();
  for (std::size_t i : region.members) {
    const demand::CellDemand& cell = cells[i];
    const std::uint32_t served = std::min(cell.underserved, cap_locs);
    const std::uint32_t beams =
        config_.model.capacity.beams_needed(served, oversub_cap);
    if (beams < 2) continue;  // demand-driven binding needs >= 2 beams
    const double sats = core::satellites_for_binding_cell(
        config_.model, cell.center.lat_deg, beamspread, beams);
    if (!p.found || sats > p.best.satellites) {
      p.found = true;
      p.best.satellites = sats;
      p.best.binding_lat_deg = cell.center.lat_deg;
      p.best.beams_on_binding = beams;
      p.best.binding_cell_index = i;
    }
  }
  return p;
}

const IncrementalEngine::SizingPartial& IncrementalEngine::sizing_partial(
    std::size_t region, double beamspread, double oversub_cap,
    std::vector<SizingPartial>& partials) {
  if (partials.size() < regions_.size()) partials.resize(regions_.size());
  SizingPartial& p = partials[region];
  if (p.valid && p.digest == regions_[region].digest) {
    ++stats_.partial_hits;
    count_metric("serve.partial_hits");
    return p;
  }
  ++stats_.partial_misses;
  count_metric("serve.partial_misses");
  snapshot::Fingerprint fp =
      snapshot::substage_fingerprint("serve.sizing", "region");
  mix(fp, config_.model);
  fp.mix_f64(beamspread)
      .mix_f64(oversub_cap)
      .mix_u64(regions_[region].digest);
  // staged_compute handles both the cached and cache-off (null) cases, and
  // routes the blob store through io_ when one is attached so the query
  // never waits on the filesystem.
  const auto [best, found] =
      snapshot::staged_compute(
          cache_, io_, "serve.sizing", fp,
          [&] {
            ++stats_.region_recomputes;
            count_metric("serve.region_recomputes");
            const SizingPartial fresh = compute_sizing_partial(
                regions_[region], beamspread, oversub_cap);
            return std::pair<core::SizingResult, bool>{fresh.best,
                                                       fresh.found};
          },
          [](const std::pair<core::SizingResult, bool>& v) {
            return serialize_sizing_blob(v.first, v.second);
          },
          deserialize_sizing_blob)
          .value;
  p.best = best;
  p.found = found;
  p.valid = true;
  p.digest = regions_[region].digest;
  return p;
}

IncrementalEngine::PeakPartial IncrementalEngine::compute_peak_partial(
    const Region& region) const {
  // cells_by_count_desc's comparator: count descending, cell id ascending.
  PeakPartial p;
  const auto& cells = profile_.cells();
  bool init = false;
  for (std::size_t i : region.members) {
    const demand::CellDemand& c = cells[i];
    if (!init || c.underserved > p.max_count ||
        (c.underserved == p.max_count && c.cell.bits() < p.best_cell_bits)) {
      init = true;
      p.max_count = c.underserved;
      p.best_cell_bits = c.cell.bits();
      p.cell_index = i;
    }
  }
  return p;
}

const IncrementalEngine::PeakPartial& IncrementalEngine::peak_partial(
    std::size_t region) {
  if (peak_memo_.size() < regions_.size()) peak_memo_.resize(regions_.size());
  PeakPartial& p = peak_memo_[region];
  if (p.valid && p.digest == regions_[region].digest) {
    ++stats_.partial_hits;
    count_metric("serve.partial_hits");
    return p;
  }
  ++stats_.partial_misses;
  count_metric("serve.partial_misses");
  snapshot::Fingerprint fp =
      snapshot::substage_fingerprint("serve.peak", "region");
  fp.mix_u64(regions_[region].digest);
  const auto [max_count, best_cell_bits, cell_index] =
      snapshot::staged_compute(
          cache_, io_, "serve.peak", fp,
          [&] {
            ++stats_.region_recomputes;
            count_metric("serve.region_recomputes");
            const PeakPartial fresh = compute_peak_partial(regions_[region]);
            return std::tuple<std::uint32_t, std::uint64_t, std::size_t>{
                fresh.max_count, fresh.best_cell_bits, fresh.cell_index};
          },
          [](const std::tuple<std::uint32_t, std::uint64_t, std::size_t>& v) {
            return serialize_peak_blob(std::get<0>(v), std::get<1>(v),
                                       std::get<2>(v));
          },
          deserialize_peak_blob)
          .value;
  p.max_count = max_count;
  p.best_cell_bits = best_cell_bits;
  p.cell_index = cell_index;
  p.valid = true;
  p.digest = regions_[region].digest;
  return p;
}

std::size_t IncrementalEngine::merged_peak_index() {
  // Every region is nonempty by construction (created on first member), so
  // each partial holds a genuine candidate; cell ids are unique, making the
  // (count desc, cell-id asc) order total — the merge winner is exactly
  // cells_by_count_desc().front().
  bool init = false;
  std::uint32_t max_count = 0;
  std::uint64_t best_cell_bits = 0;
  std::size_t best_index = 0;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const PeakPartial& p = peak_partial(r);
    if (!init || p.max_count > max_count ||
        (p.max_count == max_count && p.best_cell_bits < best_cell_bits)) {
      init = true;
      max_count = p.max_count;
      best_cell_bits = p.best_cell_bits;
      best_index = p.cell_index;
    }
  }
  return best_index;
}

ResizeAnswer IncrementalEngine::query_resize(double beamspread,
                                             double oversub_cap) {
  if (profile_.cell_count() == 0) {
    throw std::invalid_argument("size_full_service: empty profile");
  }
  ResizeAnswer answer;

  const std::size_t peak = merged_peak_index();
  const std::uint32_t full_beams =
      config_.model.capacity.plan().beams_per_full_cell();
  answer.full.binding_cell_index = peak;
  answer.full.binding_lat_deg = profile_.cells()[peak].center.lat_deg;
  answer.full.beams_on_binding = full_beams;
  answer.full.satellites = core::satellites_for_binding_cell(
      config_.model, answer.full.binding_lat_deg, beamspread, full_beams);

  std::vector<SizingPartial>& partials =
      sizing_memo_[SizeKey{bits(beamspread), bits(oversub_cap)}];
  bool found = false;
  core::SizingResult best;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const SizingPartial& p = sizing_partial(r, beamspread, oversub_cap,
                                            partials);
    if (!p.found) continue;
    // Strictly-larger wins; an exact (bit-level) tie goes to the smaller
    // global cell index — together equivalent to the serial first-strict-max
    // scan, because each partial already kept its region's earliest max.
    if (!found || p.best.satellites > best.satellites ||
        (bits(p.best.satellites) == bits(best.satellites) &&
         p.best.binding_cell_index < best.binding_cell_index)) {
      found = true;
      best = p.best;
    }
  }
  if (!found) {
    // No cell needs more than one beam at this cap: the peak cell binds
    // with a single beam (same fallback as core::size_with_cap).
    best.binding_cell_index = peak;
    best.binding_lat_deg = profile_.cells()[peak].center.lat_deg;
    best.beams_on_binding = 1;
    best.satellites = core::satellites_for_binding_cell(
        config_.model, best.binding_lat_deg, beamspread, 1);
  }
  answer.capped = best;

  if (config_.paranoid) paranoid_check_resize(beamspread, oversub_cap, answer);
  return answer;
}

// ------------------------------------------------------- served fraction --

IncrementalEngine::ServedPartial IncrementalEngine::compute_served_partial(
    const Region& region, std::uint32_t limit) const {
  ServedPartial p;
  const auto& cells = profile_.cells();
  for (std::size_t i : region.members) {
    const demand::CellDemand& c = cells[i];
    if (c.underserved <= limit) {
      ++p.served_cells;
      p.served_locations += c.underserved;
    }
  }
  return p;
}

const IncrementalEngine::ServedPartial& IncrementalEngine::served_partial(
    std::size_t region, std::uint32_t limit,
    std::vector<ServedPartial>& partials) {
  if (partials.size() < regions_.size()) partials.resize(regions_.size());
  ServedPartial& p = partials[region];
  if (p.valid && p.digest == regions_[region].digest) {
    ++stats_.partial_hits;
    count_metric("serve.partial_hits");
    return p;
  }
  ++stats_.partial_misses;
  count_metric("serve.partial_misses");
  snapshot::Fingerprint fp =
      snapshot::substage_fingerprint("serve.served", "region");
  fp.mix_u64(limit).mix_u64(regions_[region].digest);
  const auto [served_cells, served_locations] =
      snapshot::staged_compute(
          cache_, io_, "serve.served", fp,
          [&] {
            ++stats_.region_recomputes;
            count_metric("serve.region_recomputes");
            const ServedPartial fresh =
                compute_served_partial(regions_[region], limit);
            return std::pair<std::uint64_t, std::uint64_t>{
                fresh.served_cells, fresh.served_locations};
          },
          [](const std::pair<std::uint64_t, std::uint64_t>& v) {
            return serialize_served_blob(v.first, v.second);
          },
          deserialize_served_blob)
          .value;
  p.served_cells = served_cells;
  p.served_locations = served_locations;
  p.valid = true;
  p.digest = regions_[region].digest;
  return p;
}

ServedFractionAnswer IncrementalEngine::query_served_fraction(double beamspread,
                                                              double oversub) {
  ServedFractionAnswer answer;
  answer.total_cells = profile_.cell_count();
  answer.total_locations = total_locations_;
  if (answer.total_cells != 0) {
    const std::uint32_t limit =
        core::max_locations_spread(config_.model.capacity, beamspread, oversub);
    std::vector<ServedPartial>& partials = served_memo_[limit];
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      const ServedPartial& p = served_partial(r, limit, partials);
      answer.served_cells += p.served_cells;
      answer.served_locations += p.served_locations;
    }
  }
  // Same divisions (and the same empty-input conventions) as
  // core::served_cell_fraction / served_location_fraction.
  answer.cell_fraction =
      answer.total_cells == 0
          ? 1.0
          : static_cast<double>(answer.served_cells) /
                static_cast<double>(answer.total_cells);
  answer.location_fraction =
      answer.total_locations == 0
          ? 1.0
          : static_cast<double>(answer.served_locations) /
                static_cast<double>(answer.total_locations);

  if (config_.paranoid) paranoid_check_served(beamspread, oversub, answer);
  return answer;
}

// ----------------------------------------------------------- afford ------

void IncrementalEngine::rebuild_analyzer_if_stale() {
  if (!county_digest_valid_) {
    snapshot::Fingerprint fp =
        snapshot::substage_fingerprint("serve.afford", "counties");
    for (const demand::County& c : profile_.counties().all()) {
      fp.mix(c.fips)
          .mix_f64(c.centroid.lat_deg)
          .mix_f64(c.centroid.lon_deg)
          .mix_f64(c.median_income_usd)
          .mix_u64(c.underserved_locations);
    }
    county_digest_ = fp.digest();
    county_digest_valid_ = true;
  }
  if (!analyzer_.has_value() || analyzer_digest_ != county_digest_) {
    analyzer_.emplace(profile_);
    analyzer_digest_ = county_digest_;
    afford_memo_.clear();
  }
}

afford::PlanAffordability IncrementalEngine::query_affordability(
    const afford::ServicePlan& plan, double threshold) {
  rebuild_analyzer_if_stale();
  const AffordKey key{plan.name, bits(plan.monthly_usd),
                      bits(plan.speeds.down_mbps), bits(plan.speeds.up_mbps),
                      bits(threshold)};
  const auto it = afford_memo_.find(key);
  afford::PlanAffordability answer;
  if (it != afford_memo_.end()) {
    ++stats_.partial_hits;
    count_metric("serve.partial_hits");
    answer = it->second;
  } else {
    ++stats_.partial_misses;
    count_metric("serve.partial_misses");
    answer = analyzer_->evaluate(plan, threshold);
    afford_memo_.emplace(key, answer);
  }
  if (config_.paranoid) paranoid_check_affordability(plan, threshold, answer);
  return answer;
}

// ----------------------------------------------------------- paranoia ----

namespace {

[[nodiscard]] bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

[[nodiscard]] bool same_sizing(const core::SizingResult& a,
                               const core::SizingResult& b) {
  return same_bits(a.satellites, b.satellites) &&
         same_bits(a.binding_lat_deg, b.binding_lat_deg) &&
         a.beams_on_binding == b.beams_on_binding &&
         a.binding_cell_index == b.binding_cell_index;
}

[[noreturn]] void paranoia_fail(const std::string& what) {
  throw ParanoiaError("serve: paranoid cross-check failed for " + what +
                      " (incremental answer differs from full recompute)");
}

}  // namespace

void IncrementalEngine::paranoid_check_resize(double beamspread,
                                              double oversub_cap,
                                              const ResizeAnswer& answer) {
  ++stats_.paranoid_checks;
  count_metric("serve.paranoid_checks");
  const core::SizingResult full =
      core::size_full_service(profile_, config_.model, beamspread);
  const core::SizingResult capped =
      core::size_with_cap(profile_, config_.model, beamspread, oversub_cap,
                          runtime::serial_executor());
  if (!same_sizing(full, answer.full) || !same_sizing(capped, answer.capped)) {
    paranoia_fail("query_resize");
  }
}

void IncrementalEngine::paranoid_check_served(
    double beamspread, double oversub, const ServedFractionAnswer& answer) {
  ++stats_.paranoid_checks;
  count_metric("serve.paranoid_checks");
  const double cell_fraction = core::served_cell_fraction(
      profile_, config_.model.capacity, beamspread, oversub);
  const double location_fraction = core::served_location_fraction(
      profile_, config_.model.capacity, beamspread, oversub);
  if (!same_bits(cell_fraction, answer.cell_fraction) ||
      !same_bits(location_fraction, answer.location_fraction)) {
    paranoia_fail("query_served_fraction");
  }
}

void IncrementalEngine::paranoid_check_affordability(
    const afford::ServicePlan& plan, double threshold,
    const afford::PlanAffordability& answer) {
  ++stats_.paranoid_checks;
  count_metric("serve.paranoid_checks");
  const afford::AffordabilityAnalyzer fresh(profile_);
  const afford::PlanAffordability expected = fresh.evaluate(plan, threshold);
  const bool same =
      expected.plan.name == answer.plan.name &&
      same_bits(expected.plan.monthly_usd, answer.plan.monthly_usd) &&
      same_bits(expected.plan.speeds.down_mbps, answer.plan.speeds.down_mbps) &&
      same_bits(expected.plan.speeds.up_mbps, answer.plan.speeds.up_mbps) &&
      same_bits(expected.income_required_usd, answer.income_required_usd) &&
      same_bits(expected.locations_unable, answer.locations_unable) &&
      same_bits(expected.fraction_unable, answer.fraction_unable);
  if (!same) paranoia_fail("query_affordability");
}

EngineStats IncrementalEngine::stats() const noexcept {
  EngineStats s = stats_;
  s.cells = profile_.cell_count();
  s.regions = regions_.size();
  return s;
}

}  // namespace leodivide::serve
