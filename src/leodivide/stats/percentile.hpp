#pragma once
// Percentile and quantile estimation over samples.

#include <span>
#include <vector>

namespace leodivide::stats {

/// Returns the p-th percentile (p in [0, 100]) of `sorted` using linear
/// interpolation between order statistics (the "linear" / type-7 method, the
/// same default as NumPy). `sorted` must be non-decreasing and non-empty.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double p);

/// Convenience: copies, sorts, and evaluates the percentile.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Evaluates many percentiles with a single sort.
[[nodiscard]] std::vector<double> percentiles(std::span<const double> values,
                                              std::span<const double> ps);

}  // namespace leodivide::stats
