#pragma once
// Samplers for the distributions used across the library. All samplers take
// an explicit Pcg32 so sampling is deterministic and thread-confined.

#include <vector>

#include "leodivide/stats/interpolate.hpp"
#include "leodivide/stats/rng.hpp"

namespace leodivide::stats {

/// Uniform double in [lo, hi).
[[nodiscard]] double sample_uniform(Pcg32& rng, double lo, double hi);

/// Standard normal via Box–Muller (one value per call; the spare is
/// discarded to keep the call deterministic in a single stream).
[[nodiscard]] double sample_normal(Pcg32& rng, double mean = 0.0,
                                   double stddev = 1.0);

/// Log-normal with parameters of the underlying normal.
[[nodiscard]] double sample_lognormal(Pcg32& rng, double mu, double sigma);

/// Pareto (type I) with scale x_m > 0 and shape alpha > 0.
[[nodiscard]] double sample_pareto(Pcg32& rng, double x_m, double alpha);

/// Pareto truncated to [x_m, cap] by inverse-CDF restriction (not rejection),
/// so it stays O(1) regardless of cap.
[[nodiscard]] double sample_truncated_pareto(Pcg32& rng, double x_m,
                                             double alpha, double cap);

/// Exponential with rate lambda > 0.
[[nodiscard]] double sample_exponential(Pcg32& rng, double lambda);

/// Poisson with mean lambda (Knuth for small lambda, normal approximation
/// above 64 — adequate for workload generation).
[[nodiscard]] unsigned sample_poisson(Pcg32& rng, double lambda);

/// Draws from an arbitrary distribution given its quantile function
/// (inverse-CDF sampling).
[[nodiscard]] double sample_quantile(Pcg32& rng, const PiecewiseQuantile& q);

/// Weighted index sampler: picks i with probability weights[i] / sum(weights).
/// Prefer WeightedAlias for repeated draws from the same weights.
[[nodiscard]] std::size_t sample_weighted(Pcg32& rng,
                                          std::span<const double> weights);

/// Walker/Vose alias method for O(1) repeated draws from a fixed categorical
/// distribution. Used to assign millions of locations to counties.
class WeightedAlias {
 public:
  /// Builds alias tables from non-negative weights (at least one positive).
  explicit WeightedAlias(std::span<const double> weights);

  /// Number of categories.
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Draws one category index.
  [[nodiscard]] std::size_t operator()(Pcg32& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace leodivide::stats
