#include "leodivide/stats/summary.hpp"

#include <cmath>

namespace leodivide::stats {

void KahanSum::add(double v) noexcept {
  const double t = sum_ + v;
  if (std::abs(sum_) >= std::abs(v)) {
    carry_ += (sum_ - t) + v;
  } else {
    carry_ += (v - t) + sum_;
  }
  sum_ = t;
}

double ksum(std::span<const double> values) noexcept {
  KahanSum acc;
  for (double v : values) acc.add(v);
  return acc.value();
}

void RunningStats::add(double v) noexcept {
  if (n_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace leodivide::stats
