#pragma once
// Concentration statistics: Lorenz curve and Gini coefficient. The paper's
// whole argument rests on demand being *concentrated* (a long tail of
// dense cells drives the constellation size); these quantify that
// concentration for the Figure-1 companion analysis.

#include <span>
#include <utility>
#include <vector>

namespace leodivide::stats {

/// Gini coefficient of non-negative values in [0, 1): 0 = perfectly even,
/// -> 1 = fully concentrated. Throws std::invalid_argument on empty input,
/// negative values, or an all-zero input.
[[nodiscard]] double gini(std::span<const double> values);

/// Lorenz curve sampled at `points` evenly spaced population fractions:
/// pairs (fraction of cells, fraction of total locations held by the
/// poorest such cells). First point is (0,0), last is (1,1).
[[nodiscard]] std::vector<std::pair<double, double>> lorenz_curve(
    std::span<const double> values, std::size_t points = 101);

/// Share of the total held by the top `fraction` of values (e.g. "the top
/// 1% of cells hold X% of all un(der)served locations").
[[nodiscard]] double top_share(std::span<const double> values,
                               double fraction);

}  // namespace leodivide::stats
