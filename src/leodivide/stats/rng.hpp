#pragma once
// Deterministic, seedable random number generators.
//
// Every stochastic component in leodivide (synthetic dataset generation,
// Monte-Carlo density estimation, simulator jitter) draws from these engines
// rather than std::mt19937 so that results are bit-reproducible across
// platforms and standard-library implementations. Both engines satisfy the
// C++ UniformRandomBitGenerator concept.

#include <cstdint>
#include <limits>

namespace leodivide::stats {

/// SplitMix64: a tiny, high-quality 64-bit generator. Primarily used to seed
/// other generators and for cheap hashing of ids into uniform bits.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Advances the state and returns the next 64 random bits.
  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (O'Neill): 32 bits of output, 64-bit state + stream. The workhorse
/// generator for all sampling in the library.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Constructs a generator from a seed and an optional stream id; distinct
  /// stream ids yield statistically independent sequences for the same seed.
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 32 bits of resolution.
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  [[nodiscard]] std::uint32_t next_below(std::uint32_t bound) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Stable 64-bit hash of an arbitrary id, suitable for deriving per-entity
/// seeds (e.g. one RNG stream per county) from a global seed.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t global_seed,
                                     std::uint64_t entity_id) noexcept;

}  // namespace leodivide::stats
